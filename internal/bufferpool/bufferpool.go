// Package bufferpool simulates the DBMS buffer pool. It is a real LRU
// cache over page identifiers: the workload generator produces page
// accesses (skewed hot/cold, like OLTP working sets), and the hit/miss
// outcome decides whether a transaction's logical read turns into
// physical disk I/O. Varying pool size against database size is how the
// paper turns the same benchmark into CPU-bound (everything cached,
// e.g. W_CPU-inventory: 1 GB data / 1 GB pool) or I/O-bound workloads
// (W_IO-inventory: 6 GB data / 100 MB pool).
package bufferpool

import (
	"fmt"
	"math"

	"extsched/internal/sim"
)

// lruNode is one arena slot of the pool's intrusive recency list.
// prev/next are arena indices; -1 terminates.
type lruNode struct {
	page       uint64
	prev, next int32
}

// Pool is an LRU page cache with dirty-page tracking for the
// background flusher (checkpointer).
//
// The recency list is an intrusive doubly-linked list over a node
// arena rather than a container/list: a node is allocated once per
// resident slot and reused in place on eviction, so steady-state
// accesses (and pool warm-up) allocate nothing. At fleet scale — a
// thousand simulated backends each warming a pool — per-insert
// element allocation was the dominant build cost.
type Pool struct {
	capacity   int
	nodes      []lruNode // arena; grows to capacity, then slots recycle
	head, tail int32     // head = most recent, -1 = empty
	pages      map[uint64]int32
	hits       uint64
	misses     uint64
	dirty      map[uint64]struct{}
	// evictedDirty counts dirty pages pushed out by eviction; a real
	// engine must write those back synchronously, so a high count
	// signals an undersized pool or a lazy flusher.
	evictedDirty uint64
}

// New returns a pool holding capacity pages (>= 1).
func New(capacity int) *Pool {
	if capacity < 1 {
		panic(fmt.Sprintf("bufferpool: capacity %d must be >= 1", capacity))
	}
	return &Pool{
		capacity: capacity,
		head:     -1,
		tail:     -1,
		pages:    make(map[uint64]int32, capacity),
		dirty:    make(map[uint64]struct{}),
	}
}

// Capacity returns the pool size in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Resident returns the number of cached pages.
func (p *Pool) Resident() int { return len(p.pages) }

// unlink detaches arena node i from the recency list.
func (p *Pool) unlink(i int32) {
	n := p.nodes[i]
	if n.prev >= 0 {
		p.nodes[n.prev].next = n.next
	} else {
		p.head = n.next
	}
	if n.next >= 0 {
		p.nodes[n.next].prev = n.prev
	} else {
		p.tail = n.prev
	}
}

// pushFront makes arena node i the most recently used.
func (p *Pool) pushFront(i int32) {
	p.nodes[i].prev, p.nodes[i].next = -1, p.head
	if p.head >= 0 {
		p.nodes[p.head].prev = i
	}
	p.head = i
	if p.tail < 0 {
		p.tail = i
	}
}

// Hits returns the number of accesses served from the pool.
func (p *Pool) Hits() uint64 { return p.hits }

// Misses returns the number of accesses requiring disk I/O.
func (p *Pool) Misses() uint64 { return p.misses }

// HitRatio returns hits / (hits+misses), or 0 before any access.
func (p *Pool) HitRatio() float64 {
	total := p.hits + p.misses
	if total == 0 {
		return 0
	}
	return float64(p.hits) / float64(total)
}

// Access touches a page: returns true on hit. On miss the page is
// loaded (caller is responsible for charging the disk I/O), possibly
// evicting the least recently used page.
func (p *Pool) Access(page uint64) bool {
	if i, ok := p.pages[page]; ok {
		p.hits++
		if p.head != i {
			p.unlink(i)
			p.pushFront(i)
		}
		return true
	}
	p.misses++
	var i int32
	if len(p.nodes) < p.capacity {
		i = int32(len(p.nodes))
		p.nodes = append(p.nodes, lruNode{page: page})
	} else {
		// Full: recycle the least recently used slot in place.
		i = p.tail
		victim := p.nodes[i].page
		delete(p.pages, victim)
		if _, wasDirty := p.dirty[victim]; wasDirty {
			delete(p.dirty, victim)
			p.evictedDirty++
		}
		p.unlink(i)
		p.nodes[i].page = page
	}
	p.pages[page] = i
	p.pushFront(i)
	return false
}

// MarkDirty flags a resident page as modified. Non-resident pages are
// ignored (the write already went through on its miss path).
func (p *Pool) MarkDirty(page uint64) {
	if _, ok := p.pages[page]; ok {
		p.dirty[page] = struct{}{}
	}
}

// DirtyCount returns the number of dirty resident pages.
func (p *Pool) DirtyCount() int { return len(p.dirty) }

// EvictedDirty returns how many dirty pages were lost to eviction
// before the flusher got to them.
func (p *Pool) EvictedDirty() uint64 { return p.evictedDirty }

// CollectDirty removes and returns up to max dirty page ids — the
// flusher's work list. Order is unspecified.
func (p *Pool) CollectDirty(max int) []uint64 {
	if max <= 0 || len(p.dirty) == 0 {
		return nil
	}
	out := make([]uint64, 0, min(max, len(p.dirty)))
	for page := range p.dirty {
		out = append(out, page)
		delete(p.dirty, page)
		if len(out) >= max {
			break
		}
	}
	return out
}

// ResetStats clears hit/miss counters (contents stay, so a warmed pool
// can be measured in steady state).
func (p *Pool) ResetStats() {
	p.hits, p.misses = 0, 0
}

// AccessPattern generates page accesses with a hot/cold skew: a
// fraction HotAccess of accesses touch a hot set of HotFrac·DBPages
// pages, the rest are uniform over the full database. This is the
// standard OLTP locality model; with HotAccess=0.8, HotFrac=0.2 it is
// the classic 80/20 rule.
type AccessPattern struct {
	DBPages   uint64  // database size in pages
	HotFrac   float64 // fraction of pages in the hot set
	HotAccess float64 // probability an access goes to the hot set
}

// Validate checks the pattern's parameters.
func (a AccessPattern) Validate() error {
	if a.DBPages < 1 {
		return fmt.Errorf("bufferpool: DBPages %d must be >= 1", a.DBPages)
	}
	if a.HotFrac <= 0 || a.HotFrac > 1 {
		return fmt.Errorf("bufferpool: HotFrac %v must be in (0,1]", a.HotFrac)
	}
	if a.HotAccess < 0 || a.HotAccess > 1 {
		return fmt.Errorf("bufferpool: HotAccess %v must be in [0,1]", a.HotAccess)
	}
	return nil
}

// Sample draws a page id.
func (a AccessPattern) Sample(g *sim.RNG) uint64 {
	hot := uint64(float64(a.DBPages) * a.HotFrac)
	if hot < 1 {
		hot = 1
	}
	if g.Float64() < a.HotAccess {
		return g.Uint64() % hot
	}
	if a.DBPages == hot {
		return g.Uint64() % hot
	}
	return hot + g.Uint64()%(a.DBPages-hot)
}

// ExpectedMissRatio approximates the steady-state miss ratio of an LRU
// pool of the given capacity under this pattern using Che's
// characteristic-time approximation: a page with access probability p
// is resident with probability 1 − e^(−p·T), where T solves
// Σ_pages (1 − e^(−p·T)) = capacity. It captures the cold-access
// pollution that evicts hot pages, which a naive "hot pages stay
// cached" model misses. Used by the analytic jump-start; the simulator
// runs the real LRU.
func (a AccessPattern) ExpectedMissRatio(capacity int) float64 {
	total := float64(a.DBPages)
	c := float64(capacity)
	if c >= total {
		return 0
	}
	hot := math.Max(1, math.Floor(total*a.HotFrac))
	cold := total - hot
	pHot := a.HotAccess / hot
	var pCold float64
	if cold > 0 {
		pCold = (1 - a.HotAccess) / cold
	}
	// Occupancy as a function of the characteristic time T.
	occupancy := func(t float64) float64 {
		occ := hot * (1 - math.Exp(-pHot*t))
		if cold > 0 {
			occ += cold * (1 - math.Exp(-pCold*t))
		}
		return occ
	}
	// Bisect for T with occupancy(T) = capacity. Occupancy is
	// increasing in T from 0 to DBPages.
	lo, hi := 0.0, 1.0
	for occupancy(hi) < c {
		hi *= 2
		if hi > 1e18 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if occupancy(mid) < c {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (lo + hi) / 2
	miss := a.HotAccess * math.Exp(-pHot*t)
	if cold > 0 {
		miss += (1 - a.HotAccess) * math.Exp(-pCold*t)
	}
	return miss
}

// Package cluster adds the multi-backend layer on top of the paper's
// single-gate external scheduler: a Dispatcher fans one admitted
// transaction stream out across N shard frontends (each its own MPL
// gate over its own backend), and pluggable dispatch policies decide
// which shard receives the next item. Schroeder et al. tune ONE gate;
// real deployments front replica or shard fleets, where the dispatch
// decision dominates tail latency as much as the MPL itself — a slow
// shard behind a blind round-robin drags the aggregate p95 long before
// it costs throughput.
//
// The policy vocabulary is deliberately tiny and side-effect free
// (Pick reads per-member Load views and returns an index), so the same
// four policies serve the deterministic simulator (Dispatcher, below)
// and live wall-clock traffic (gate.Pool). Ties always break toward
// the lowest index, which is what keeps multi-shard simulation runs
// bit-identical across reruns.
package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"extsched/internal/core"
	"extsched/internal/sim"
)

// Load is one member's state as seen by a dispatch decision.
type Load struct {
	// Backlog is the number of items at the member: external queue plus
	// admitted-and-executing.
	Backlog int
	// Work is the outstanding size-hint seconds routed to the member
	// and not yet completed (at unit speed).
	Work float64
	// Speed is the member's relative service speed (1 = nominal);
	// work-aware policies normalize Work by it.
	Speed float64
}

// Policy picks the member that receives the next item. Implementations
// may keep state (round-robin's cursor) but must be deterministic:
// equal inputs and history yield equal picks. A Policy instance
// belongs to one dispatcher; do not share.
type Policy interface {
	// Name identifies the policy in reports and scenario files.
	Name() string
	// Pick returns the index of the member to dispatch to. loads is
	// never empty; class and size describe the item (size 0 = unknown).
	Pick(loads []Load, class core.Class, size float64) int
}

// Policy names accepted by NewPolicy (and scenario SetDispatch events).
const (
	// PolicyRoundRobin cycles through members in order, blind to load —
	// the baseline every smarter policy is measured against.
	PolicyRoundRobin = "rr"
	// PolicyJSQ joins the shortest queue: the member with the smallest
	// backlog (queued + executing), ties to the lowest index.
	PolicyJSQ = "jsq"
	// PolicyLeastWork routes to the member with the least outstanding
	// size-hint work, normalized by member speed — JSQ's size-aware
	// sibling, sharper when service demands are highly variable or the
	// fleet is heterogeneous.
	PolicyLeastWork = "lwl"
	// PolicyAffinity pins each priority class to one member
	// (index = class mod members): cache and isolation affinity at the
	// cost of balance.
	PolicyAffinity = "affinity"
	// PolicyJSQSampled is power-of-d-choices JSQ ("jsq-d", optionally
	// "jsq-d:<d>", default d=2): sample d distinct members from a
	// seeded deterministic stream and join the shortest queue among
	// them, ties to the lowest member index. O(d) per pick instead of
	// O(N) — the only dispatch shape that stays affordable at N>=1000.
	PolicyJSQSampled = "jsq-d"
	// PolicyLeastWorkSampled is the size-aware sibling ("lwl-d",
	// "lwl-d:<d>"): least speed-normalized work among d sampled members.
	PolicyLeastWorkSampled = "lwl-d"
)

// sampleStream is the dedicated RNG stream id for sampled dispatch
// (kept distinct from recovery backoff 101, reservoirs 31/37/41/424242
// and churn 211+i, so arming one feature never perturbs another's
// draws).
const sampleStream = 509

// defaultSampleD is the classic power-of-two-choices default.
const defaultSampleD = 2

// ParsePolicyName splits a dispatch policy name into its base name and
// sample width d. Plain policies return d=0; "jsq-d"/"lwl-d" return
// the default d=2; "jsq-d:<d>"/"lwl-d:<d>" parse d and reject d < 1
// loudly. It validates the name without instantiating anything.
func ParsePolicyName(name string) (base string, d int, err error) {
	base = name
	if i := strings.IndexByte(name, ':'); i >= 0 {
		base = name[:i]
		if base != PolicyJSQSampled && base != PolicyLeastWorkSampled {
			return "", 0, fmt.Errorf("cluster: policy %q does not take a parameter", name)
		}
		d, err = strconv.Atoi(name[i+1:])
		if err != nil {
			return "", 0, fmt.Errorf("cluster: bad sample width in policy %q: %v", name, err)
		}
		if d < 1 {
			return "", 0, fmt.Errorf("cluster: policy %q needs a sample width >= 1 (got %d)", name, d)
		}
		return base, d, nil
	}
	switch base {
	case PolicyJSQSampled, PolicyLeastWorkSampled:
		return base, defaultSampleD, nil
	case "", PolicyRoundRobin, PolicyJSQ, PolicyLeastWork, PolicyAffinity:
		return base, 0, nil
	default:
		return "", 0, fmt.Errorf("cluster: unknown dispatch policy %q (want %s, %s, %s, %s, %s[:d] or %s[:d])",
			name, PolicyRoundRobin, PolicyJSQ, PolicyLeastWork, PolicyAffinity,
			PolicyJSQSampled, PolicyLeastWorkSampled)
	}
}

// NewPolicy builds a built-in dispatch policy by name ("" = round-
// robin). Each call returns a fresh instance. Sampled policies get
// seed 0 — validation-only call sites may use this, but anything that
// actually routes traffic should call NewPolicySeeded so the sampling
// stream follows the run seed.
func NewPolicy(name string) (Policy, error) {
	return NewPolicySeeded(name, 0)
}

// NewPolicySeeded is NewPolicy with the experiment seed: sampled
// policies ("jsq-d", "lwl-d") draw their member samples from
// sim.NewRNG(seed, sampleStream), so equal seeds replay the identical
// sampling sequence and multi-shard runs stay bit-identical. The seed
// is ignored by the deterministic full-scan policies.
func NewPolicySeeded(name string, seed uint64) (Policy, error) {
	base, d, err := ParsePolicyName(name)
	if err != nil {
		return nil, err
	}
	switch base {
	case "", PolicyRoundRobin:
		return &RoundRobin{}, nil
	case PolicyJSQ:
		return JSQ{}, nil
	case PolicyLeastWork:
		return LeastWork{}, nil
	case PolicyAffinity:
		return Affinity{}, nil
	case PolicyJSQSampled:
		return newSampled(PolicyJSQSampled, d, seed), nil
	case PolicyLeastWorkSampled:
		return newSampled(PolicyLeastWorkSampled, d, seed), nil
	default:
		return nil, fmt.Errorf("cluster: unknown dispatch policy %q", name)
	}
}

// RoundRobin cycles through members in index order.
type RoundRobin struct {
	next int
}

func (p *RoundRobin) Name() string { return PolicyRoundRobin }

func (p *RoundRobin) Pick(loads []Load, _ core.Class, _ float64) int {
	i := p.next % len(loads)
	p.next = (i + 1) % len(loads)
	return i
}

// JSQ joins the shortest queue.
type JSQ struct{}

func (JSQ) Name() string { return PolicyJSQ }

func (JSQ) Pick(loads []Load, _ core.Class, _ float64) int {
	best := 0
	for i := 1; i < len(loads); i++ {
		if loads[i].Backlog < loads[best].Backlog {
			best = i
		}
	}
	return best
}

// LeastWork routes to the member whose outstanding work, in member-
// local service seconds (Work/Speed), is smallest.
type LeastWork struct{}

func (LeastWork) Name() string { return PolicyLeastWork }

func (LeastWork) Pick(loads []Load, _ core.Class, _ float64) int {
	best, bestW := 0, normWork(loads[0])
	for i := 1; i < len(loads); i++ {
		if w := normWork(loads[i]); w < bestW {
			best, bestW = i, w
		}
	}
	return best
}

// normWork is a member's outstanding work scaled to its speed.
func normWork(l Load) float64 {
	s := l.Speed
	if s <= 0 {
		s = 1
	}
	return l.Work / s
}

// Affinity pins class c to member c mod N.
type Affinity struct{}

func (Affinity) Name() string { return PolicyAffinity }

func (Affinity) Pick(loads []Load, class core.Class, _ float64) int {
	i := int(class) % len(loads)
	if i < 0 {
		i += len(loads)
	}
	return i
}

// IndexedPolicy is the O(d) pick entry: instead of a fully
// materialized []Load (O(N) to build per transaction), the policy is
// handed the member count and a random-access load reader and touches
// only the members it actually samples. The Dispatcher prefers this
// path when the policy provides it; Pick remains for callers that
// already hold a load slice (gate.Pool's filtered view).
type IndexedPolicy interface {
	Policy
	// PickIndexed returns a member index in [0,n). at(i) returns member
	// i's current load; implementations must call it O(d) times.
	PickIndexed(n int, at func(int) Load, class core.Class, size float64) int
}

// Sampled is power-of-d-choices dispatch: sample D distinct members
// from a seeded deterministic stream, then route to the best of the
// sample — smallest backlog (jsq-d) or least speed-normalized work
// (lwl-d), ties to the lowest member index. When the member count is
// within 2·D a full scan is both cheaper than rejection sampling and
// strictly better, so small fleets degrade to exact JSQ/LWL (and
// consume no random draws, keeping the stream aligned across fleets
// that never exceed the threshold).
type Sampled struct {
	name string
	d    int
	work bool // compare normWork instead of Backlog
	rng  *sim.RNG
	// samp holds the last pick's sampled member indices (scratch; also
	// what the whitebox property tests inspect to verify best-of-sample).
	samp []int
}

// newSampled builds a sampled policy (name is jsq-d or lwl-d, d >= 1).
func newSampled(name string, d int, seed uint64) *Sampled {
	return &Sampled{
		name: name,
		d:    d,
		work: name == PolicyLeastWorkSampled,
		rng:  sim.NewRNG(seed, sampleStream),
		samp: make([]int, 0, d),
	}
}

// Name reports the parameterized form ("jsq-d:3") so reports and
// round-tripped scenarios keep the width.
func (p *Sampled) Name() string { return fmt.Sprintf("%s:%d", p.name, p.d) }

// D returns the sample width.
func (p *Sampled) D() int { return p.d }

// sample fills p.samp with min(d, n) distinct member indices. For
// n <= 2d it lists every member (exact scan, no draws); otherwise it
// rejection-samples, which terminates fast because at least half the
// population is always unsampled.
func (p *Sampled) sample(n int) {
	p.samp = p.samp[:0]
	if n <= 2*p.d {
		for i := 0; i < n; i++ {
			p.samp = append(p.samp, i)
		}
		return
	}
	for len(p.samp) < p.d {
		c := p.rng.IntN(n)
		dup := false
		for _, s := range p.samp {
			if s == c {
				dup = true
				break
			}
		}
		if !dup {
			p.samp = append(p.samp, c)
		}
	}
}

// better reports whether load a beats load b under the policy's
// criterion; strict, so ties resolve to the earlier (lower) index.
func (p *Sampled) better(a, b Load) bool {
	if p.work {
		return normWork(a) < normWork(b)
	}
	return a.Backlog < b.Backlog
}

// PickIndexed samples d members and returns the best, reading only the
// sampled loads. Ties break to the lowest member index (the explicit
// i < best clause), so the winner is independent of the random order
// the sample was drawn in and reruns stay bit-identical.
func (p *Sampled) PickIndexed(n int, at func(int) Load, _ core.Class, _ float64) int {
	p.sample(n)
	best := -1
	var bestLoad Load
	for _, i := range p.samp {
		l := at(i)
		if best < 0 || p.better(l, bestLoad) || (!p.better(bestLoad, l) && i < best) {
			best, bestLoad = i, l
		}
	}
	return best
}

// Pick is the slice form of PickIndexed for callers that already built
// a load view (gate.Pool). Same sampling stream, same tie rule.
func (p *Sampled) Pick(loads []Load, _ core.Class, _ float64) int {
	p.sample(len(loads))
	best := -1
	var bestLoad Load
	for _, i := range p.samp {
		l := loads[i]
		if best < 0 || p.better(l, bestLoad) || (!p.better(bestLoad, l) && i < best) {
			best, bestLoad = i, l
		}
	}
	return best
}

package core

import (
	"testing"

	"extsched/internal/sim"
)

// backendFunc is defined in core_test.go; these tests reuse it.

// TestDeadlineExpiredNeverDispatches pins the shedding contract: a
// queued item whose admission deadline passes before a slot frees is
// shed — its done callback and the OnShed hook fire, it is counted in
// Shed, and the backend NEVER executes it.
func TestDeadlineExpiredNeverDispatches(t *testing.T) {
	eng := sim.NewEngine()
	var executed []*Item
	var fe *Frontend
	fe = New(eng.Clock(), backendFunc(func(it *Item) { executed = append(executed, it) }), 1, NewFIFO())
	fe.SetAdmitDeadline(ClassLow, 0.5)

	var shedHook []*Item
	fe.OnShed = func(it *Item) { shedHook = append(shedHook, it) }

	blocker := &Item{}
	fe.Submit(blocker, nil)
	if len(executed) != 1 {
		t.Fatalf("blocker not dispatched")
	}

	var doneCalls []*Item
	victim := &Item{}
	fe.Submit(victim, func(it *Item) { doneCalls = append(doneCalls, it) })
	if got := fe.QueueLen(); got != 1 {
		t.Fatalf("QueueLen = %d, want 1", got)
	}

	// Let the deadline expire while the slot is still held, then free
	// the slot: the dispatch refill must shed the victim, not run it.
	eng.Run(1.0)
	fe.Complete(blocker, Outcome{})

	if len(executed) != 1 {
		t.Fatalf("deadline-expired item was dispatched (executed %d items)", len(executed))
	}
	if !victim.WasShed() {
		t.Error("victim not marked shed")
	}
	if len(doneCalls) != 1 || doneCalls[0] != victim {
		t.Errorf("done callback calls = %v, want exactly the victim", doneCalls)
	}
	if len(shedHook) != 1 || shedHook[0] != victim {
		t.Errorf("OnShed calls = %v, want exactly the victim", shedHook)
	}
	if fe.Shed() != 1 || fe.ShedByClass(ClassLow) != 1 || fe.ShedByClass(ClassHigh) != 0 {
		t.Errorf("shed counters = %d (low %d, high %d), want 1/1/0",
			fe.Shed(), fe.ShedByClass(ClassLow), fe.ShedByClass(ClassHigh))
	}
	if got := fe.QueueLen(); got != 0 {
		t.Errorf("QueueLen = %d after shed, want 0", got)
	}
	// The shed instant and wait are stamped.
	if victim.Complete != 1.0 || victim.Dispatch != 0 {
		t.Errorf("victim stamps: complete %v dispatch %v, want 1.0 and 0", victim.Complete, victim.Dispatch)
	}
	// Metrics must NOT count the shed as a completion.
	if m := fe.Metrics(); m.Completed != 1 {
		t.Errorf("Completed = %d, want 1 (the blocker only)", m.Completed)
	}
}

// TestShedQueuedImmediate pins the eager path the live gate's deadline
// timers use: ShedQueued withdraws a queued item on the spot.
func TestShedQueuedImmediate(t *testing.T) {
	eng := sim.NewEngine()
	var executed int
	fe := New(eng.Clock(), backendFunc(func(*Item) { executed++ }), 1, NewFIFO())

	blocker := &Item{}
	fe.Submit(blocker, nil)
	victim := &Item{}
	fe.Submit(victim, nil)

	if !fe.ShedQueued(victim) {
		t.Fatal("ShedQueued refused a queued item")
	}
	if fe.ShedQueued(victim) {
		t.Error("ShedQueued shed the same item twice")
	}
	if fe.CancelQueued(victim) {
		t.Error("CancelQueued withdrew a shed item")
	}
	if fe.Shed() != 1 || fe.QueueLen() != 0 {
		t.Errorf("shed %d queue %d, want 1 and 0", fe.Shed(), fe.QueueLen())
	}
	// Completing the blocker must not resurrect the shed item.
	fe.Complete(blocker, Outcome{})
	if executed != 1 {
		t.Errorf("executed %d items, want 1", executed)
	}
	// Dispatched items cannot be shed.
	next := &Item{}
	fe.Submit(next, nil)
	if fe.ShedQueued(next) {
		t.Error("ShedQueued withdrew a dispatched item")
	}
}

// TestClassLimitsPartition: with a {high: 1, low: 1} partition on an
// MPL-2 gate, a backlog of low work cannot starve the high class — the
// first freed slot goes to a waiting high item even under FIFO, because
// the low class is at its limit.
func TestClassLimitsPartition(t *testing.T) {
	eng := sim.NewEngine()
	var executed []*Item
	fe := New(eng.Clock(), backendFunc(func(it *Item) { executed = append(executed, it) }), 2, NewFIFO())
	fe.SetClassLimits(map[Class]int{ClassHigh: 1, ClassLow: 1})

	// Two low items fill the gate: one by right, one borrowed from the
	// idle high share (work conservation — capacity never idles).
	low := make([]*Item, 4)
	for i := range low {
		low[i] = &Item{Class: ClassLow}
		fe.Submit(low[i], nil)
	}
	if len(executed) != 2 {
		t.Fatalf("dispatched %d, want 2 (1 low share + 1 borrowed)", len(executed))
	}
	high := &Item{Class: ClassHigh}
	fe.Submit(high, nil)

	// Free one slot: with two more low items queued AHEAD of the high
	// one in FIFO order, the high item must still dispatch first — low
	// is at (indeed beyond) its limit.
	fe.Complete(executed[0], Outcome{})
	if len(executed) != 3 || executed[2] != high {
		t.Fatalf("freed slot went to %+v, want the high item", executed[len(executed)-1])
	}
	// Clearing the partition restores pure FIFO refill.
	fe.SetClassLimits(nil)
	fe.Complete(executed[1], Outcome{})
	if len(executed) != 4 || executed[3].Class != ClassLow {
		t.Fatalf("after clearing limits, freed slot went to %+v, want a low item", executed[len(executed)-1])
	}
}

// TestStrictPartitionNeverBorrows: under SetStrictPartition(true) a
// class at its limit holds even while capacity idles — the hard-cap
// mode the fairness controller's strict option drives. Relaxing back
// to work-conserving dispatches the deferred backlog at once.
func TestStrictPartitionNeverBorrows(t *testing.T) {
	eng := sim.NewEngine()
	var executed []*Item
	fe := New(eng.Clock(), backendFunc(func(it *Item) { executed = append(executed, it) }), 2, NewFIFO())
	fe.SetClassLimits(map[Class]int{ClassHigh: 1, ClassLow: 1})
	fe.SetStrictPartition(true)
	if !fe.StrictPartition() {
		t.Fatal("StrictPartition not reported")
	}

	// Two low items: the first takes the low share, the second must NOT
	// borrow the idle high slot — strict limits are hard caps.
	a, b := &Item{Class: ClassLow}, &Item{Class: ClassLow}
	fe.Submit(a, nil)
	fe.Submit(b, nil)
	if len(executed) != 1 {
		t.Fatalf("dispatched %d, want 1 (no borrowing under strict)", len(executed))
	}
	if got := fe.Inside(); got != 1 {
		t.Fatalf("Inside = %d, want 1 with a slot idling", got)
	}

	// A high arrival takes the idle high slot as usual.
	h := &Item{Class: ClassHigh}
	fe.Submit(h, nil)
	if len(executed) != 2 || executed[1] != h {
		t.Fatalf("high item not dispatched into its own share")
	}
	fe.Complete(h, Outcome{})
	if len(executed) != 2 {
		t.Fatalf("freed high slot went to deferred low work under strict")
	}

	// Relaxing to work-conserving lends the idle slot immediately.
	fe.SetStrictPartition(false)
	if len(executed) != 3 || executed[2] != b {
		t.Fatalf("relaxing strict did not dispatch the deferred low item")
	}
}

// TestClassLimitsValidation: limits below 1 are a programming error.
func TestClassLimitsValidation(t *testing.T) {
	eng := sim.NewEngine()
	fe := New(eng.Clock(), backendFunc(func(*Item) {}), 2, nil)
	defer func() {
		if recover() == nil {
			t.Error("zero class limit accepted")
		}
	}()
	fe.SetClassLimits(map[Class]int{ClassHigh: 0})
}

// TestClassPercentiles: per-class reservoirs split the response-time
// tail by class.
func TestClassPercentiles(t *testing.T) {
	eng := sim.NewEngine()
	var last *Item
	fe := New(eng.Clock(), backendFunc(func(it *Item) { last = it }), 1, nil)
	fe.EnablePercentiles(100, 1)
	for i := 0; i < 20; i++ {
		class := ClassLow
		dur := 1.0
		if i%2 == 0 {
			class, dur = ClassHigh, 0.1
		}
		it := &Item{Class: class}
		fe.Submit(it, nil)
		eng.Run(eng.Now() + dur)
		fe.Complete(last, Outcome{InsideTime: dur})
	}
	hi := fe.ClassResponseTimePercentile(ClassHigh, 95)
	lo := fe.ClassResponseTimePercentile(ClassLow, 95)
	if hi <= 0 || lo <= 0 || hi >= lo {
		t.Errorf("class p95s: high %v, low %v — want 0 < high < low", hi, lo)
	}
	if all := fe.ResponseTimePercentile(95); all < hi || all > lo {
		t.Errorf("overall p95 %v outside [%v, %v]", all, hi, lo)
	}
}

package controller

import (
	"testing"

	"extsched/internal/core"
	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/dist"
	"extsched/internal/sim"
)

// unitRig builds a minimal frontend for reaction-logic tests: a fast
// CPU-bound DB driven manually.
func unitRig(t *testing.T, mpl int) (*sim.Engine, *dbfe.Frontend) {
	t.Helper()
	eng := sim.NewEngine()
	db, err := dbms.New(eng, dbms.Config{
		CPUs: 1, Disks: 1,
		LogService: dist.NewDeterministic(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, dbfe.New(eng, db, mpl, nil)
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Targets: Targets{MaxThroughputLoss: 0.05}}.withDefaults()
	if c.MinObservations != 100 {
		t.Errorf("MinObservations = %d", c.MinObservations)
	}
	if c.Confidence != 0.95 || c.MaxRelCI != 0.15 {
		t.Errorf("CI defaults wrong: %v %v", c.Confidence, c.MaxRelCI)
	}
	if c.TputRelCI != 0.025 {
		t.Errorf("TputRelCI = %v, want loss/2 = 0.025", c.TputRelCI)
	}
	if c.MaxWindow != 5000 {
		t.Errorf("MaxWindow = %d, want 50x observations", c.MaxWindow)
	}
	if !*c.AdaptiveStep || c.MaxStep != 16 {
		t.Error("adaptive step defaults wrong")
	}
	// Tiny loss: CI floor applies.
	c2 := Config{Targets: Targets{MaxThroughputLoss: 0.01}}.withDefaults()
	if c2.TputRelCI != 0.02 {
		t.Errorf("TputRelCI floor = %v, want 0.02", c2.TputRelCI)
	}
}

func TestNextStepAdaptive(t *testing.T) {
	eng, fe := unitRig(t, 5)
	ctl, err := New(eng.Clock(), fe, Config{
		Targets:   Targets{MaxThroughputLoss: 0.05},
		Reference: Reference{MaxThroughput: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Repeated same-direction steps double up to the cap.
	got := []int{}
	ctl.lastAction = Increase
	for i := 0; i < 6; i++ {
		got = append(got, ctl.nextStep(Increase))
		ctl.lastAction = Increase
	}
	want := []int{2, 4, 8, 16, 16, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("adaptive steps = %v, want %v", got, want)
		}
	}
	// Direction change resets.
	if s := ctl.nextStep(Decrease); s != 1 {
		t.Errorf("step after reversal = %d, want 1", s)
	}
}

func TestNextStepConstantWhenDisabled(t *testing.T) {
	eng, fe := unitRig(t, 5)
	off := false
	ctl, err := New(eng.Clock(), fe, Config{
		Targets:      Targets{MaxThroughputLoss: 0.05},
		Reference:    Reference{MaxThroughput: 100},
		AdaptiveStep: &off,
		Step:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.lastAction = Increase
	for i := 0; i < 4; i++ {
		if s := ctl.nextStep(Increase); s != 2 {
			t.Fatalf("constant step = %d, want 2", s)
		}
		ctl.lastAction = Increase
	}
}

func TestReactIncreasesOnViolation(t *testing.T) {
	eng, fe := unitRig(t, 3)
	ctl, err := New(eng.Clock(), fe, Config{
		Targets:   Targets{MaxThroughputLoss: 0.05},
		Reference: Reference{MaxThroughput: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Feed a synthetic window: throughput far below target.
	m := syntheticWindow(50, 0.1, 200)
	ctl.react(m)
	if fe.MPL() != 4 {
		t.Errorf("MPL = %d after violation, want 4", fe.MPL())
	}
	if ctl.floor != 3 {
		t.Errorf("floor = %d, want 3 (marked infeasible)", ctl.floor)
	}
	d := ctl.History()[0]
	if d.Action != Increase || d.TputOK {
		t.Errorf("decision = %+v", d)
	}
}

func TestReactDecreasesWithMargin(t *testing.T) {
	eng, fe := unitRig(t, 10)
	ctl, err := New(eng.Clock(), fe, Config{
		Targets:   Targets{MaxThroughputLoss: 0.05},
		Reference: Reference{MaxThroughput: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Comfortably above target (100 > 95 + margin).
	ctl.react(syntheticWindow(100, 0.05, 200))
	if fe.MPL() != 9 {
		t.Errorf("MPL = %d, want 9 (probe lower)", fe.MPL())
	}
}

func TestReactHoldsAtBoundary(t *testing.T) {
	eng, fe := unitRig(t, 4)
	ctl, err := New(eng.Clock(), fe, Config{
		Targets:     Targets{MaxThroughputLoss: 0.05},
		Reference:   Reference{MaxThroughput: 100},
		HoldWindows: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.floor = 3 // 3 known infeasible
	ctl.react(syntheticWindow(96, 0.05, 200))
	if fe.MPL() != 4 {
		t.Errorf("MPL = %d, want hold at 4", fe.MPL())
	}
	if ctl.Converged() {
		t.Error("converged after one hold, want 2")
	}
	ctl.react(syntheticWindow(96, 0.05, 200))
	if !ctl.Converged() {
		t.Error("not converged after HoldWindows holds")
	}
}

func TestReactRTViolation(t *testing.T) {
	eng, fe := unitRig(t, 4)
	ctl, err := New(eng.Clock(), fe, Config{
		Targets:   Targets{MaxThroughputLoss: 0.05, MaxRTIncrease: 0.10},
		Reference: Reference{MaxThroughput: 100, OptimalRT: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Throughput fine but RT 50% above the reference → increase.
	ctl.react(syntheticWindow(99, 0.15, 200))
	if fe.MPL() != 5 {
		t.Errorf("MPL = %d, want 5 (RT violated)", fe.MPL())
	}
	d := ctl.History()[0]
	if d.RTOK || !d.TputOK {
		t.Errorf("decision flags wrong: %+v", d)
	}
}

// syntheticWindow fabricates a Metrics value with the given throughput
// (completions over 1s), mean RT, and completion count.
func syntheticWindow(tput float64, meanRT float64, n int) core.Metrics {
	var m core.Metrics
	m.Completed = uint64(tput) // windowTime normalized below
	for i := 0; i < n; i++ {
		m.All.Add(meanRT)
	}
	// Completions over exactly one second → Throughput() == tput.
	return m.WithWindow(1.0)
}

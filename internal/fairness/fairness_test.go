package fairness

import (
	"math/rand"
	"testing"

	"extsched/internal/core"
)

// fakeGate is a synthetic Gate whose windows the tests author
// directly: completions per class are proportional to the class's slot
// share (a backlogged tenant's throughput scales with its slots, which
// is exactly the regime the controller steers in), capped by the
// tenant's demand.
type fakeGate struct {
	mpl    int
	limits map[core.Class]int
	strict bool
	m      core.Metrics
}

func (g *fakeGate) MPL() int                            { return g.mpl }
func (g *fakeGate) SetClassLimits(l map[core.Class]int) { g.limits = l }
func (g *fakeGate) Metrics() core.Metrics               { return g.m }
func (g *fakeGate) ResetMetrics()                       { g.m = core.Metrics{} }
func (g *fakeGate) SetStrictPartition(strict bool)      { g.strict = strict }

// window synthesizes one observation window: perSlot completions per
// held slot, capped at demand[c] (absent = unlimited backlog, zero =
// idle).
func (g *fakeGate) window(perSlot int, demand map[core.Class]int) {
	g.m = core.Metrics{}
	for c, l := range g.limits {
		n := l * perSlot
		if cap, ok := demand[c]; ok && n > cap {
			n = cap
		}
		if n == 0 {
			continue
		}
		cm := core.ClassMetric{Class: c}
		for i := 0; i < n; i++ {
			cm.RT.Add(1)
		}
		g.m.Classes = append(g.m.Classes, cm)
		g.m.Completed += uint64(n)
	}
}

// checkInvariants asserts the two partition invariants the package
// pins: limits sum to the MPL and every governed class holds >= 1.
func checkInvariants(t *testing.T, g *fakeGate, weights map[core.Class]float64) {
	t.Helper()
	sum := 0
	for c, l := range g.limits {
		if _, ok := weights[c]; !ok {
			t.Fatalf("limit for ungoverned class %d", c)
		}
		if l < 1 {
			t.Fatalf("class %d limit %d below floor", c, l)
		}
		sum += l
	}
	if len(g.limits) != len(weights) {
		t.Fatalf("partition covers %d classes, want %d", len(g.limits), len(weights))
	}
	if sum != g.mpl {
		t.Fatalf("limits sum %d != MPL %d", sum, g.mpl)
	}
}

func TestAllocate(t *testing.T) {
	cases := []struct {
		mpl     int
		weights map[core.Class]float64
		want    map[core.Class]int
	}{
		{4, map[core.Class]float64{0: 1, 1: 1, 2: 1, 3: 1}, map[core.Class]int{0: 1, 1: 1, 2: 1, 3: 1}},
		{10, map[core.Class]float64{0: 1, 1: 1, 2: 1, 3: 1}, map[core.Class]int{0: 3, 1: 3, 2: 2, 3: 2}},
		{12, map[core.Class]float64{0: 1, 1: 2, 2: 3}, map[core.Class]int{0: 3, 1: 4, 2: 5}},
		{16, map[core.Class]float64{0: 1, 1: 1, 2: 2}, map[core.Class]int{0: 4, 1: 4, 2: 8}},
		// A huge weight cannot push a small tenant below the floor.
		{5, map[core.Class]float64{0: 1000, 1: 1}, map[core.Class]int{0: 4, 1: 1}},
	}
	for _, c := range cases {
		got := Allocate(c.mpl, c.weights)
		if len(got) != len(c.want) {
			t.Fatalf("Allocate(%d, %v) = %v, want %v", c.mpl, c.weights, got, c.want)
		}
		sum := 0
		for cl, l := range got {
			sum += l
			if l != c.want[cl] {
				t.Errorf("Allocate(%d, %v)[%d] = %d, want %d", c.mpl, c.weights, cl, l, c.want[cl])
			}
		}
		if sum != c.mpl {
			t.Errorf("Allocate(%d, %v) sums to %d", c.mpl, c.weights, sum)
		}
	}
}

func TestAllocatePanicsBelowFloor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MPL below class count did not panic")
		}
	}()
	Allocate(2, map[core.Class]float64{0: 1, 1: 1, 2: 1})
}

// TestInvariantsProperty drives the controller through randomized
// weights, demands, and mid-run MPL changes, asserting the partition
// invariants after every single reaction.
func TestInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		weights := make(map[core.Class]float64, n)
		for i := 0; i < n; i++ {
			weights[core.Class(i)] = 1 + rng.Float64()*9
		}
		g := &fakeGate{mpl: n + rng.Intn(40)}
		ctl, err := New(g, Config{Weights: weights, MinObservations: 10})
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, g, weights)
		for w := 0; w < 40; w++ {
			if w == 20 {
				// Mid-run MPL change: the controller must re-spread.
				g.mpl = n + rng.Intn(40)
			}
			demand := map[core.Class]int{}
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.3 {
					demand[core.Class(i)] = rng.Intn(30)
				}
			}
			g.window(20, demand)
			ctl.Observe()
			checkInvariants(t, g, weights)
		}
	}
}

// TestConvergesToWeightedShares is the max-min property: with every
// tenant backlogged, the partition converges to the weighted fair
// shares (within one slot of the exact largest-remainder split) and
// stays there — no tenant sits below its fair share while another sits
// above.
func TestConvergesToWeightedShares(t *testing.T) {
	weights := map[core.Class]float64{0: 1, 1: 1, 2: 2, 3: 4}
	g := &fakeGate{mpl: 24}
	ctl, err := New(g, Config{Weights: weights, MinObservations: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Perturb hard: hand almost everything to tenant 0 — the
	// controller must claw it back one slot per window.
	g.limits = map[core.Class]int{0: 21, 1: 1, 2: 1, 3: 1}
	for k, v := range g.limits {
		ctl.limits[k] = v
	}
	for w := 0; w < 60; w++ {
		g.window(20, nil)
		ctl.Observe()
		checkInvariants(t, g, weights)
	}
	fair := Allocate(24, weights) // {0:3, 1:3, 2:6, 3:12}
	for c, want := range fair {
		got := g.limits[c]
		if got < want-1 || got > want+1 {
			t.Errorf("class %d limit = %d, want %d±1 (final %v)", c, got, want, g.limits)
		}
	}
	if ctl.Moves() == 0 {
		t.Error("controller never moved a slot")
	}
}

// TestIdleDonation: an idle tenant's reservation drains down to the
// one-slot floor (without hysteresis — it was being lent out anyway)
// and comes back once the tenant wakes up.
func TestIdleDonation(t *testing.T) {
	weights := map[core.Class]float64{0: 1, 1: 1}
	g := &fakeGate{mpl: 10}
	ctl, err := New(g, Config{Weights: weights, MinObservations: 10})
	if err != nil {
		t.Fatal(err)
	}
	idle := map[core.Class]int{1: 0}
	for w := 0; w < 10; w++ {
		g.window(20, idle)
		ctl.Observe()
		checkInvariants(t, g, weights)
	}
	if g.limits[1] != 1 {
		t.Fatalf("idle tenant kept %d slots, want floor 1", g.limits[1])
	}
	// Tenant 1 wakes up backlogged: slots flow back toward the even
	// split.
	for w := 0; w < 20; w++ {
		g.window(20, nil)
		ctl.Observe()
		checkInvariants(t, g, weights)
	}
	if g.limits[1] < 4 {
		t.Errorf("woken tenant recovered only %d slots (final %v)", g.limits[1], g.limits)
	}
}

// TestHysteresisHoldsBalance: a balanced system must not oscillate —
// with scores equal, no slot moves.
func TestHysteresisHoldsBalance(t *testing.T) {
	weights := map[core.Class]float64{0: 1, 1: 1}
	g := &fakeGate{mpl: 8}
	ctl, err := New(g, Config{Weights: weights, MinObservations: 10})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 10; w++ {
		g.window(20, nil)
		ctl.Observe()
	}
	if ctl.Moves() != 0 {
		t.Errorf("balanced system moved %d slots", ctl.Moves())
	}
	if g.limits[0] != 4 || g.limits[1] != 4 {
		t.Errorf("balanced partition drifted to %v", g.limits)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	g := &fakeGate{mpl: 8}
	if _, err := New(g, Config{Weights: map[core.Class]float64{0: 1}}); err == nil {
		t.Error("single class accepted")
	}
	if _, err := New(g, Config{Weights: map[core.Class]float64{0: 1, 1: -1}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := New(g, Config{Weights: map[core.Class]float64{0: 1, 1: 1}, Hysteresis: 0.5}); err == nil {
		t.Error("hysteresis < 1 accepted")
	}
	g.mpl = 1
	if _, err := New(g, Config{Weights: map[core.Class]float64{0: 1, 1: 1}}); err == nil {
		t.Error("MPL below class count accepted")
	}
}

package gate

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRoundRobinSpreads(t *testing.T) {
	p, err := NewPool(PoolConfig{Members: 3, Member: Config{Limit: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var tickets []*PoolTicket
	for i := 0; i < 6; i++ {
		tk, err := p.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if tk.Member() != i%3 {
			t.Errorf("acquire %d routed to member %d, want %d (round-robin)", i, tk.Member(), i%3)
		}
		tickets = append(tickets, tk)
	}
	for _, r := range p.Routed() {
		if r != 2 {
			t.Errorf("routed = %v, want 2 per member", p.Routed())
			break
		}
	}
	agg := p.Stats()
	if agg.Inflight != 6 || agg.Limit != 6 {
		t.Errorf("aggregate inflight=%d limit=%d, want 6/6", agg.Inflight, agg.Limit)
	}
	if len(agg.Shards) != 3 {
		t.Fatalf("aggregate has %d shard stats, want 3", len(agg.Shards))
	}
	for _, tk := range tickets {
		tk.Release(Result{})
		tk.Release(Result{}) // double release is a no-op
	}
	agg = p.Stats()
	if agg.Inflight != 0 || agg.Completed != 6 {
		t.Errorf("after release: inflight=%d completed=%d, want 0/6", agg.Inflight, agg.Completed)
	}
}

func TestPoolJSQAvoidsBusyMember(t *testing.T) {
	p, err := NewPool(PoolConfig{Members: 2, Dispatch: "jsq", Member: Config{Limit: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Load member 0 directly (bypassing the pool), then route through
	// the pool: JSQ must prefer the idle member 1.
	busy, err := p.Member(0).Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Release(Result{})
	for i := 0; i < 3; i++ {
		tk, err := p.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		defer tk.Release(Result{})
		if i == 0 && tk.Member() != 1 {
			t.Errorf("JSQ routed to member %d with member 0 busy, want 1", tk.Member())
		}
	}
}

func TestPoolLeastWorkNormalizesBySpeed(t *testing.T) {
	p, err := NewPool(PoolConfig{
		Members: 2, Dispatch: "lwl", Speeds: []float64{1, 0.25},
		Member: Config{Limit: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Equal outstanding work on both members reads as 4x the local
	// service time on the slow one, so new work lands on member 0.
	a, err := p.AcquireRequest(ctx, Request{SizeHint: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release(Result{})
	if a.Member() != 0 {
		t.Fatalf("first request routed to %d, want 0 (tie toward lowest index)", a.Member())
	}
	b, err := p.AcquireRequest(ctx, Request{SizeHint: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release(Result{})
	if b.Member() != 1 {
		t.Fatalf("second request routed to %d, want 1 (least work)", b.Member())
	}
	// work: member0=1, member1=1 -> normalized 1 vs 4: pick 0.
	c, err := p.AcquireRequest(ctx, Request{SizeHint: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release(Result{})
	if c.Member() != 0 {
		t.Errorf("third request routed to %d, want 0 (slow member carries 4x normalized work)", c.Member())
	}
}

func TestPoolAffinityPinsClasses(t *testing.T) {
	p, err := NewPool(PoolConfig{Members: 2, Dispatch: "affinity", Member: Config{Limit: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		class := Class(i % 2)
		tk, err := p.AcquireRequest(ctx, Request{Class: class})
		if err != nil {
			t.Fatal(err)
		}
		if tk.Member() != int(class) {
			t.Errorf("class %d routed to member %d, want %d", class, tk.Member(), class)
		}
		tk.Release(Result{})
	}
}

func TestPoolQueueFullRefundsRouting(t *testing.T) {
	p, err := NewPool(PoolConfig{Members: 1, Member: Config{Limit: 1, QueueLimit: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tk, err := p.AcquireRequest(ctx, Request{SizeHint: 5})
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		q, err := p.AcquireRequest(ctx, Request{SizeHint: 5})
		if err == nil {
			q.Release(Result{})
		}
		queued <- err
	}()
	// Wait until the second request occupies the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for p.Member(0).Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	_, err = p.AcquireRequest(ctx, Request{SizeHint: 5})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire: err = %v, want ErrQueueFull", err)
	}
	if got := p.Routed()[0]; got != 2 {
		t.Errorf("routed = %d after rejected acquire, want 2 (refunded)", got)
	}
	tk.Release(Result{})
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	p.Stats() // must not panic with refunded accounting
}

func TestPoolInvalidConfig(t *testing.T) {
	cases := []PoolConfig{
		{Members: 0},
		{Members: 2, Dispatch: "nope"},
		{Members: 2, Speeds: []float64{1}},
		{Members: 2, Speeds: []float64{1, -1}},
		{Members: 1, Member: Config{Limit: -1}},
	}
	for i, cfg := range cases {
		if _, err := NewPool(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
	p, err := NewPool(PoolConfig{Members: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetDispatch("nope"); err == nil {
		t.Error("SetDispatch accepted unknown policy")
	}
	if err := p.SetMemberSpeed(5, 1); err == nil {
		t.Error("SetMemberSpeed accepted out-of-range member")
	}
	if err := p.SetMemberSpeed(0, 0); err == nil {
		t.Error("SetMemberSpeed accepted zero speed")
	}
}

func TestPoolSetLimitSplits(t *testing.T) {
	p, err := NewPool(PoolConfig{Members: 3, Member: Config{Limit: 1}})
	if err != nil {
		t.Fatal(err)
	}
	p.SetLimit(7)
	want := []int{3, 2, 2}
	for i, w := range want {
		if got := p.Member(i).Limit(); got != w {
			t.Errorf("member %d limit = %d, want %d", i, got, w)
		}
	}
	if p.Limit() != 7 {
		t.Errorf("pool limit = %d, want 7", p.Limit())
	}
	p.SetLimit(0)
	if p.Limit() != 0 {
		t.Errorf("pool limit = %d, want 0 (unlimited)", p.Limit())
	}
	// A cluster-wide limit below the member count still keeps every
	// member finite (never accidentally unlimited).
	p.SetLimit(2)
	for i := 0; i < 3; i++ {
		if got := p.Member(i).Limit(); got < 1 {
			t.Errorf("member %d limit = %d, want >= 1", i, got)
		}
	}
}

// TestPoolConcurrentStress drives a pool from many goroutines across
// every policy while speeds and dispatch flip mid-flight — run under
// -race in CI; the conservation check catches lost or double-counted
// accounting.
func TestPoolConcurrentStress(t *testing.T) {
	p, err := NewPool(PoolConfig{Members: 4, Dispatch: "jsq", Member: Config{Limit: 3}})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	const perWorker = 200
	var wg sync.WaitGroup
	var completed atomic.Uint64
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				switch i % 50 {
				case 17:
					_ = p.SetDispatch([]string{"rr", "jsq", "lwl", "affinity"}[rng.Intn(4)])
				case 31:
					_ = p.SetMemberSpeed(rng.Intn(4), 0.25+rng.Float64())
				}
				tk, err := p.AcquireRequest(context.Background(),
					Request{Class: Class(rng.Intn(3)), SizeHint: rng.Float64()})
				if err != nil {
					t.Error(err)
					return
				}
				tk.Release(Result{})
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	agg := p.Stats()
	if agg.Completed != completed.Load() {
		t.Errorf("aggregate completed = %d, want %d", agg.Completed, completed.Load())
	}
	if agg.Inflight != 0 || agg.Queued != 0 {
		t.Errorf("pool not drained: inflight=%d queued=%d", agg.Inflight, agg.Queued)
	}
	var routed uint64
	for _, r := range p.Routed() {
		routed += r
	}
	if routed != completed.Load() {
		t.Errorf("routed sum = %d, want %d", routed, completed.Load())
	}
}

// TestPoolCancellationRefunds cancels queued acquisitions mid-wait and
// verifies the routing accounting is refunded, not leaked.
func TestPoolCancellationRefunds(t *testing.T) {
	p, err := NewPool(PoolConfig{Members: 2, Dispatch: "lwl", Member: Config{Limit: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a, _ := p.AcquireRequest(ctx, Request{SizeHint: 2})
	b, _ := p.AcquireRequest(ctx, Request{SizeHint: 2})
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		tk, err := p.AcquireRequest(cctx, Request{SizeHint: 7})
		if err == nil {
			tk.Release(Result{})
		}
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for p.Member(0).Queued()+p.Member(1).Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire: err = %v", err)
	}
	a.Release(Result{})
	b.Release(Result{})
	// All work charges settled: a fresh LWL acquire ties to member 0.
	tk, err := p.AcquireRequest(ctx, Request{SizeHint: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Release(Result{})
	if tk.Member() != 0 {
		t.Errorf("post-drain LWL routed to %d, want 0 (all charges refunded)", tk.Member())
	}
}

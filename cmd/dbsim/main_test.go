package main

import (
	"strings"
	"testing"
)

// TestRunTinyClosed drives one small closed-system simulation end to
// end through the CLI surface.
func TestRunTinyClosed(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-setup", "1", "-mpl", "5", "-clients", "20", "-warmup", "2", "-measure", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"mpl:", "throughput:", "mean RT:", "cpu util:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "mpl:              5") {
		t.Errorf("MPL not echoed:\n%s", s)
	}
}

func TestRunTinyOpen(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-setup", "1", "-mpl", "10", "-lambda", "30", "-warmup", "2", "-measure", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "throughput:") {
		t.Errorf("open-system output incomplete:\n%s", out.String())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cases := [][]string{
		{},                                // neither setup nor workload
		{"-setup", "99"},                  // unknown setup
		{"-setup", "1", "-policy", "zzz"}, // unknown policy
		{"-workload", "W_CPU-inventory", "-iso", "XX"}, // unknown isolation
		{"-no-such-flag"}, // flag parse error
	}
	for i, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v): invalid invocation accepted", i, args)
		}
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil {
		t.Errorf("-h returned %v, want nil", err)
	}
	if !strings.Contains(out.String(), "Usage") {
		t.Errorf("-h did not print usage:\n%s", out.String())
	}
}

package extsched

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// tenantScenario is the N-tenant acceptance scenario: four weighted
// tenants, the fairness controller in strict mode, and a mid-phase
// per-tenant deadline event.
func tenantScenario() Scenario {
	return Scenario{
		Name:           "tenants",
		Warmup:         5,
		SampleInterval: 5,
		Tenants: []TenantSpec{
			{Name: "batch", Weight: 1, Share: 0.4},
			{Name: "web", Weight: 4, Share: 0.3},
			{Name: "api", Weight: 4, Share: 0.2, SLOTarget: 2},
			{Name: "admin", Share: 0.1}, // weight 0 = 1
		},
		Fairness: &FairnessSpec{Strict: true, MinObservations: 60},
		Phases: []Phase{
			{Name: "steady", Kind: PhaseOpen, Lambda: 40, Duration: 30},
			{Name: "deadlined", Kind: PhaseOpen, Lambda: 60, Duration: 30,
				Events: []Event{{At: 5, SetTenantDeadlines: map[string]float64{"batch": 3}}}},
		},
	}
}

// TestTenantScenarioRerunBitIdentical: an N-tenant fairness scenario
// run twice on one System reproduces bit-for-bit — per-tenant
// breakdown, fairness trajectory and snapshots included.
func TestTenantScenarioRerunBitIdentical(t *testing.T) {
	sys, err := NewSystem(Config{SetupID: 1, MPL: 8, PercentileSamples: 2000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	sc := tenantScenario()
	r1, err := sys.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("tenant scenario re-run not bit-identical:\n%+v\nvs\n%+v", r1.Total, r2.Total)
	}
	if len(r1.Total.Classes) != 4 {
		t.Fatalf("per-tenant breakdown has %d classes, want 4: %+v", len(r1.Total.Classes), r1.Total.Classes)
	}
	names := map[string]bool{}
	for _, c := range r1.Total.Classes {
		names[c.Name] = true
		if c.Completed == 0 {
			t.Errorf("tenant %q completed nothing", c.Name)
		}
		if c.P95 <= 0 || c.MeanRT <= 0 {
			t.Errorf("tenant %q stats not populated: %+v", c.Name, c)
		}
	}
	for _, n := range []string{"batch", "web", "api", "admin"} {
		if !names[n] {
			t.Errorf("tenant %q missing from Classes: %v", n, names)
		}
	}
	fr := r1.Fairness
	if fr == nil {
		t.Fatal("Result.Fairness nil with Scenario.Fairness set")
	}
	sum := 0
	for _, l := range fr.Limits {
		if l < 1 {
			t.Errorf("fairness limit below the one-slot floor: %v", fr.Limits)
		}
		sum += l
	}
	if sum != 8 {
		t.Errorf("fairness limits %v sum to %d, want the MPL 8", fr.Limits, sum)
	}
}

// Test100TenantScenarioBoundedMemory: a 100-tenant run keeps its
// metrics footprint bounded — the whole-run report carries all 100
// tenants, but interval snapshots elide the per-class slice past
// the 64-class bound rather than allocating 100 entries per tick.
func Test100TenantScenarioBoundedMemory(t *testing.T) {
	const n = 100
	tenants := make([]TenantSpec, n)
	for i := range tenants {
		tenants[i] = TenantSpec{Name: "t" + string(rune('a'+i/26)) + string(rune('a'+i%26)), Share: 1.0 / n}
	}
	sys, err := NewSystem(Config{SetupID: 1, MPL: 8, PercentileSamples: 1000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run(context.Background(), Scenario{
		Warmup:         2,
		SampleInterval: 5,
		Tenants:        tenants,
		Phases:         []Phase{{Kind: PhaseOpen, Lambda: 60, Duration: 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Total.Classes) != n {
		t.Errorf("whole-run breakdown has %d classes, want %d", len(r.Total.Classes), n)
	}
	if len(r.Snapshots) == 0 {
		t.Fatal("no interval snapshots")
	}
	for _, s := range r.Snapshots {
		if len(s.Classes) != 0 {
			t.Fatalf("snapshot carries %d per-class entries, want 0 past the %d-class bound", len(s.Classes), 64)
		}
	}
}

// TestTenantScenarioParse pins the tenants-block JSON vocabulary:
// a valid file round-trips, and the rejects a hand-written file can
// hit (duplicate names, bad shares, unknown tenant in an event,
// fairness without tenants) all error with a pointed message.
func TestTenantScenarioParse(t *testing.T) {
	valid := `{
		"tenants": [
			{"name": "batch", "weight": 1, "share": 0.5},
			{"name": "web", "weight": 3, "share": 0.5, "slo_target": 1.5}
		],
		"fairness": {"strict": true, "weights": {"web": 5}},
		"phases": [{"kind": "open", "duration": 10, "lambda": 20,
			"events": [
				{"at": 2, "set_weights": {"web": 2, "batch": 1}},
				{"at": 4, "set_tenant_deadlines": {"batch": 2.5}},
				{"at": 6, "disable_fairness": true},
				{"at": 7, "set_tenant_limits": {"web": 3, "batch": 1}},
				{"at": 8, "set_tenant_limits": {}}
			]}]
	}`
	sc, err := ParseScenario([]byte(valid))
	if err != nil {
		t.Fatalf("valid tenants scenario rejected: %v", err)
	}
	if len(sc.Tenants) != 2 || sc.Fairness == nil || !sc.Fairness.Strict {
		t.Errorf("parse lost the tenants block: %+v", sc)
	}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Errorf("tenants round trip lost data:\n%+v\nvs\n%+v", sc, back)
	}
	if dep := sc.Deprecations(); len(dep) != 0 {
		t.Errorf("clean scenario flagged deprecations: %v", dep)
	}

	rejects := []struct {
		name, js, wantErr string
	}{
		{"one tenant", `{"tenants":[{"name":"a","share":1}],
			"phases":[{"kind":"open","duration":1,"lambda":1}]}`, "tenants"},
		{"dup names", `{"tenants":[{"name":"a","share":0.5},{"name":"a","share":0.5}],
			"phases":[{"kind":"open","duration":1,"lambda":1}]}`, "duplicate"},
		{"bad share sum", `{"tenants":[{"name":"a","share":0.5},{"name":"b","share":0.2}],
			"phases":[{"kind":"open","duration":1,"lambda":1}]}`, "sum"},
		{"zero share", `{"tenants":[{"name":"a","share":0},{"name":"b","share":1}],
			"phases":[{"kind":"open","duration":1,"lambda":1}]}`, "share"},
		{"negative weight", `{"tenants":[{"name":"a","weight":-1,"share":0.5},{"name":"b","share":0.5}],
			"phases":[{"kind":"open","duration":1,"lambda":1}]}`, "weight"},
		{"unknown tenant in weights event", `{"tenants":[{"name":"a","share":0.5},{"name":"b","share":0.5}],
			"phases":[{"kind":"open","duration":1,"lambda":1,
				"events":[{"at":0,"set_weights":{"nope":2}}]}]}`, "nope"},
		{"unknown tenant in deadlines event", `{"tenants":[{"name":"a","share":0.5},{"name":"b","share":0.5}],
			"phases":[{"kind":"open","duration":1,"lambda":1,
				"events":[{"at":0,"set_tenant_deadlines":{"ghost":1}}]}]}`, "ghost"},
		{"fairness without tenants", `{"fairness":{"strict":true},
			"phases":[{"kind":"open","duration":1,"lambda":1}]}`, "tenants"},
		{"fairness unknown override", `{"tenants":[{"name":"a","share":0.5},{"name":"b","share":0.5}],
			"fairness":{"weights":{"zzz":2}},
			"phases":[{"kind":"open","duration":1,"lambda":1}]}`, "zzz"},
	}
	for _, tc := range rejects {
		_, err := ParseScenario([]byte(tc.js))
		if err == nil {
			t.Errorf("%s: invalid tenants scenario accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestTenantScenarioDeprecations: the legacy two-class vocabulary
// still runs but is flagged, so migrating files is a grep away.
func TestTenantScenarioDeprecations(t *testing.T) {
	sc, err := ParseScenario([]byte(`{"phases":[{"kind":"open","duration":5,"lambda":10,
		"events":[{"at":1,"set_wfq_high_weight":2}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	dep := sc.Deprecations()
	if len(dep) != 1 || !strings.Contains(dep[0], "set_wfq_high_weight") {
		t.Errorf("Deprecations() = %v, want one set_wfq_high_weight notice", dep)
	}
}

package mmc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMM1SpecialCase(t *testing.T) {
	// c=1: ErlangC = rho, E[T] = 1/(μ−λ).
	p := Params{Lambda: 0.6, Mu: 1, Servers: 1}
	if math.Abs(p.ErlangC()-0.6) > 1e-12 {
		t.Errorf("ErlangC = %v, want rho=0.6", p.ErlangC())
	}
	if math.Abs(p.MeanResponse()-2.5) > 1e-12 {
		t.Errorf("E[T] = %v, want 1/(1-0.6) = 2.5", p.MeanResponse())
	}
}

func TestKnownErlangCValue(t *testing.T) {
	// Classic tabulated case: c=2, a=1 (rho=0.5): C = 1/3.
	p := Params{Lambda: 1, Mu: 1, Servers: 2}
	if math.Abs(p.ErlangC()-1.0/3.0) > 1e-12 {
		t.Errorf("C(2,1) = %v, want 1/3", p.ErlangC())
	}
	// E[W] = (1/3)/(2-1) = 1/3; E[T] = 4/3.
	if math.Abs(p.MeanResponse()-4.0/3.0) > 1e-12 {
		t.Errorf("E[T] = %v, want 4/3", p.MeanResponse())
	}
}

func TestMoreServersNeverWorse(t *testing.T) {
	f := func(lamRaw, muRaw uint16, cRaw uint8) bool {
		mu := 0.5 + float64(muRaw%100)/20
		c := 1 + int(cRaw%10)
		lam := 0.9 * mu * float64(c) * float64(lamRaw%90+5) / 100
		p1 := Params{Lambda: lam, Mu: mu, Servers: c}
		p2 := Params{Lambda: lam, Mu: mu, Servers: c + 1}
		if p1.Validate() != nil {
			return true
		}
		return p2.MeanResponse() <= p1.MeanResponse()+1e-12 &&
			p1.ErlangC() >= 0 && p1.ErlangC() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestLittleConsistency(t *testing.T) {
	p := Params{Lambda: 3, Mu: 1, Servers: 4}
	if math.Abs(p.MeanJobs()-p.Lambda*p.MeanResponse()) > 1e-12 {
		t.Error("Little's law broken")
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{Lambda: 1, Mu: 1, Servers: 2}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	for _, bad := range []Params{
		{Lambda: 0, Mu: 1, Servers: 1},
		{Lambda: 1, Mu: 0, Servers: 1},
		{Lambda: 1, Mu: 1, Servers: 0},
		{Lambda: 2, Mu: 1, Servers: 1}, // unstable
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid params accepted: %+v", bad)
		}
	}
}

package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"extsched/internal/workload"
)

// DefaultWorkers is the worker-pool size Sweep uses: 0 means
// runtime.GOMAXPROCS(0), 1 forces the sequential path (useful for
// debugging and for determinism cross-checks). Set it before starting
// a sweep; it is read once per Sweep call.
var DefaultWorkers = 0

// Sweep evaluates fn(0..n-1) on a worker pool and returns the results
// in input order. It is the parallel fan-out primitive under every
// figure driver: each sweep point (one closed- or open-system run)
// owns its private engine, DB, and RNG streams, so points are
// embarrassingly parallel and the merged output is bit-identical to a
// sequential loop — only wall-clock time changes.
//
// On error, the error of the lowest-indexed failing point is returned
// (deterministic regardless of scheduling); remaining points may be
// skipped.
func Sweep[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return sweep(context.Background(), DefaultWorkers, n, fn)
}

// SweepContext is Sweep with cancellation: once ctx is done, workers
// stop claiming new points and the call returns ctx.Err() (results of
// already-finished points are discarded). A long figure sweep driven
// by cmd/benchrunner dies at the first SIGINT this way instead of
// grinding through hundreds of remaining simulation points. fn itself
// is not interrupted mid-point; cancellation is checked between
// points, so latency is bounded by one simulation run.
func SweepContext[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	return sweep(ctx, DefaultWorkers, n, fn)
}

// EffectiveWorkers resolves DefaultWorkers to the pool size a Sweep
// call would actually use (before clamping to the point count).
func EffectiveWorkers() int {
	if DefaultWorkers > 0 {
		return DefaultWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// SweepWorkers is Sweep with an explicit pool size (0 = GOMAXPROCS).
func SweepWorkers[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return sweep(context.Background(), workers, n, fn)
}

// sweep is the shared worker-pool implementation.
func sweep[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	panics := make([]*workerPanic, n)
	var next atomic.Int64
	// minFail is the lowest failing index seen so far (n = none). A
	// worker skips only points above it: every point below a recorded
	// failure still runs, so the lowest-indexed outcome is always the
	// one reported, regardless of scheduling.
	var minFail atomic.Int64
	minFail.Store(int64(n))
	fail := func(i int) {
		for {
			cur := minFail.Load()
			if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	}
	// runPoint isolates fn so a model-bug panic (e.g. sim's
	// scheduling-in-the-past panic) is captured with its worker stack
	// and re-raised on the calling goroutine instead of killing the
	// process from a pool goroutine. Unlike the workers==1 path, the
	// re-raised value is a formatted string wrapping the original
	// panic with its point index and worker stack — panics here are
	// fatal model bugs, so diagnostic context beats value parity.
	runPoint := func(i int) (result T, err error, pan *workerPanic) {
		defer func() {
			if p := recover(); p != nil {
				pan = &workerPanic{value: p, stack: debug.Stack()}
			}
		}()
		result, err = fn(i)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if int64(i) > minFail.Load() {
					// A strictly lower point already failed; this
					// point's result cannot matter, and all further
					// claims are higher still.
					return
				}
				r, err, pan := runPoint(i)
				switch {
				case pan != nil:
					panics[i] = pan
					fail(i)
				case err != nil:
					errs[i] = err
					fail(i)
				default:
					results[i] = r
				}
			}
		}()
	}
	wg.Wait()
	// Report the lowest-indexed outcome, mirroring the sequential loop:
	// it would have stopped at the first bad point, panic or error.
	// Panics outrank cancellation (they are model bugs, not shutdown).
	for i := 0; i < n; i++ {
		if panics[i] != nil {
			panic(fmt.Sprintf("experiments: sweep point %d panicked: %v\nworker stack:\n%s",
				i, panics[i].value, panics[i].stack))
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return results, nil
}

// workerPanic carries a recovered panic from a pool goroutine to the
// Sweep caller.
type workerPanic struct {
	value any
	stack []byte
}

// sweepPoint names one (setup, MPL) cell of a throughput figure.
type sweepPoint struct {
	setupID int
	mpl     int
}

// throughputGrid measures every (setup, MPL) pair of a figure in one
// flat parallel sweep and folds the results into one Series per setup,
// in the order of ids. Flattening (instead of sweeping per setup)
// keeps the pool busy across the whole grid.
func throughputGrid(ids []int, mpls []int, opts RunOpts) ([]Series, error) {
	points := make([]sweepPoint, 0, len(ids)*len(mpls))
	for _, id := range ids {
		for _, m := range mpls {
			points = append(points, sweepPoint{setupID: id, mpl: m})
		}
	}
	tputs, err := SweepContext(opts.ctx(), len(points), func(i int) (float64, error) {
		p := points[i]
		setup, err := workload.SetupByID(p.setupID)
		if err != nil {
			return 0, err
		}
		r, err := RunClosed(setup, p.mpl, nil, workload.DBOptions{}, opts)
		if err != nil {
			return 0, fmt.Errorf("setup %d MPL %d: %w", p.setupID, p.mpl, err)
		}
		return r.Throughput(), nil
	})
	if err != nil {
		return nil, err
	}
	series := make([]Series, len(ids))
	for si, id := range ids {
		setup, err := workload.SetupByID(id)
		if err != nil {
			return nil, err
		}
		s := Series{Name: setup.String()}
		for mi, m := range mpls {
			s.X = append(s.X, float64(m))
			s.Y = append(s.Y, tputs[si*len(mpls)+mi])
		}
		series[si] = s
	}
	return series, nil
}

package experiments

import (
	"testing"

	"extsched/internal/workload"
)

// TestFig4Shape: the balanced workload's min MPL grows when CPU and
// disks are added in proportion (setups 11 vs 12) — the paper's
// "number of utilized resources" law.
func TestFig4Shape(t *testing.T) {
	mpls := []int{2, 5, 20, 30}
	small, err := ThroughputVsMPL(11, mpls, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	big, err := ThroughputVsMPL(12, mpls, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Setup 11 (1 disk, 1 CPU): MPL 5 within ~8% of MPL 30.
	if small.Y[1] < 0.90*small.Y[3] {
		t.Errorf("setup 11 at MPL 5 = %v, plateau %v: knee too late", small.Y[1], small.Y[3])
	}
	// Setup 12 (4 disks, 2 CPUs): MPL 5 clearly below plateau; MPL 20
	// close to it.
	if big.Y[1] > 0.8*big.Y[3] {
		t.Errorf("setup 12 at MPL 5 = %v vs plateau %v: should be far off", big.Y[1], big.Y[3])
	}
	if big.Y[2] < 0.90*big.Y[3] {
		t.Errorf("setup 12 at MPL 20 = %v vs plateau %v: paper says ~20 suffices", big.Y[2], big.Y[3])
	}
	// Resource scaling lifts the plateau substantially.
	if big.Y[3] < 2*small.Y[3] {
		t.Errorf("scaled plateau %v should be well above base %v", big.Y[3], small.Y[3])
	}
}

// TestBalancedUtilization: the "balanced" workload really does utilize
// CPU and disk comparably at saturation (the property the paper's
// Table 1 row asserts).
func TestBalancedUtilization(t *testing.T) {
	setup, _ := workload.SetupByID(11)
	r, err := RunClosed(setup, 20, nil, workload.DBOptions{}, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if r.CPUUtil < 0.4 || r.DiskUtil < 0.4 {
		t.Errorf("utilizations cpu=%.2f disk=%.2f, want both substantial", r.CPUUtil, r.DiskUtil)
	}
	ratio := r.CPUUtil / r.DiskUtil
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("cpu/disk utilization ratio = %.2f, want balanced", ratio)
	}
}

// TestIOBoundUtilizationProfile: W_IO-inventory saturates its disk and
// barely touches the CPU.
func TestIOBoundUtilizationProfile(t *testing.T) {
	setup, _ := workload.SetupByID(5)
	r, err := RunClosed(setup, 10, nil, workload.DBOptions{}, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if r.DiskUtil < 0.9 {
		t.Errorf("disk util = %v, want ~1 for the pure-IO workload", r.DiskUtil)
	}
	if r.CPUUtil > 0.2 {
		t.Errorf("cpu util = %v, want tiny for the pure-IO workload", r.CPUUtil)
	}
}

package extsched

import (
	"encoding/json"
	"testing"
)

// FuzzParseScenario fuzzes the scenario JSON decoder: whatever the
// bytes, ParseScenario must never panic, and anything it accepts must
// satisfy the contract that shields the executor — Validate passes
// (so the runner spec builds) and the scenario survives a
// marshal/re-parse round trip. Validate's finite-value checks exist
// for exactly this boundary: the engine panics on NaN/Inf event
// times, so nothing non-finite may get through (JSON cannot carry
// NaN, but the API can — TestScenarioValidateRejectsNonFinite pins
// that path).
//
// Seed corpus: the cmd/dbsim -scenario-example template plus scenarios
// covering every phase kind and event type.
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(ExampleScenarioJSON))
	f.Add([]byte(`{"phases":[{"kind":"closed","duration":10,"clients":5,"think_time":0.1}]}`))
	f.Add([]byte(`{"warmup":5,"sample_interval":1,"phases":[
		{"kind":"open","duration":10,"lambda":50,
		 "events":[{"at":2,"set_mpl":4},{"at":3,"set_wfq_high_weight":2.5}]},
		{"kind":"ramp","duration":10,"lambda":10,"lambda2":90},
		{"kind":"burst","duration":10,"lambda":40,"burst_factor":2,"burst_period":5}]}`))
	f.Add([]byte(`{"phases":[{"kind":"closed","duration":5,
		"events":[{"at":1,"set_shard_speed":{"shard":1,"speed":0.25}},
		          {"at":2,"set_dispatch":"jsq"},
		          {"at":3,"enable_controller":{"max_throughput_loss":0.05,"reference_throughput":90}},
		          {"at":4,"disable_controller":true}]}]}`))
	f.Add([]byte(`{"phases":[{"kind":"trace","duration":5,
		"trace":{"Source":"x","Records":[{"Arrival":0,"Demand":0.01}]}}]}`))
	f.Add([]byte(`{"phases":[{"kind":"burst","duration":20,"lambda":100,
		"events":[{"at":0,"set_slo":{"class":"high","percentile":95,"target":0.5,"min_observations":40,"margin":0.6}},
		          {"at":1,"set_admit_deadline":{"low":2}},
		          {"at":5,"set_class_limits":{"high":3,"low":5}},
		          {"at":9,"disable_slo":true},
		          {"at":10,"set_class_limits":{"high":0,"low":0}},
		          {"at":11,"set_admit_deadline":{}}]}]}`))
	f.Add([]byte(`{"phases":[{"kind":"open","duration":5,"lambda":10,
		"events":[{"at":0,"set_slo":{"target":-1}}]}]}`))
	f.Add([]byte(`{"phases":[{"kind":"open","duration":5,"lambda":10,
		"events":[{"at":0,"set_class_limits":{"high":1,"low":0}}]}]}`))
	f.Add([]byte(`{"phases":[{"kind":"open","duration":20,"lambda":100,
		"events":[{"at":2,"shard_fail":3},
		          {"at":5,"shard_add":true},
		          {"at":8,"shard_recover":3},
		          {"at":12,"shard_remove":4}]}]}`))
	f.Add([]byte(`{"phases":[{"kind":"open","duration":30,"lambda":50,
		"churn":{"mtbf":10,"mttr":2,"seed":7}}]}`))
	f.Add([]byte(`{"autoscale":{"min":2,"max":8,"interval":0.5,"high_water":6,
		"low_water":1,"breach_windows":2,"calm_windows":6,"cooldown":1,"mpl_per_shard":3},
		"phases":[{"kind":"ramp","duration":20,"lambda":10,"lambda2":200}]}`))
	f.Add([]byte(`{"autoscale":{"min":8,"max":2},
		"phases":[{"kind":"open","duration":10,"lambda":50}]}`))
	f.Add([]byte(`{"autoscale":{"min":0,"max":4},
		"phases":[{"kind":"open","duration":10,"lambda":50}]}`))
	f.Add([]byte(`{"phases":[{"kind":"open","duration":10,"lambda":50,
		"events":[{"at":1,"set_dispatch":"jsq-d:3"},{"at":2,"set_dispatch":"lwl-d"}]}]}`))
	f.Add([]byte(`{"phases":[{"kind":"open","duration":10,"lambda":50,
		"events":[{"at":1,"set_dispatch":"jsq-d:0"}]}]}`))
	f.Add([]byte(`{"phases":[{"kind":"open","duration":10,"lambda":50,
		"events":[{"at":1,"set_dispatch":"jsq-d:banana"}]}]}`))
	f.Add([]byte(`{"phases":[{"kind":"open","duration":30,"lambda":50,
		"churn":{"mtbf":10,"mttr":-2}}]}`))
	f.Add([]byte(`{"phases":[{"kind":"closed","duration":5,"clients":2,
		"events":[{"at":1,"shard_fail":-1}]}]}`))
	f.Add([]byte(`{"tenants":[
		{"name":"batch","weight":1,"share":0.6},
		{"name":"web","weight":4,"share":0.3,"slo_target":1.5},
		{"name":"api","share":0.1,"size_mean":0.02,"size_c2":4}],
		"fairness":{"strict":true,"min_observations":60,"hysteresis":2,"weights":{"web":8}},
		"phases":[{"kind":"open","duration":20,"lambda":40,
		"events":[{"at":2,"set_weights":{"web":2,"batch":1}},
		          {"at":4,"set_tenant_deadlines":{"batch":3}},
		          {"at":6,"disable_fairness":true},
		          {"at":8,"set_tenant_limits":{"web":3,"batch":1,"api":1}},
		          {"at":10,"set_tenant_limits":{}},
		          {"at":12,"enable_fairness":{"strict":true}}]}]}`))
	f.Add([]byte(`{"phases":[{"kind":"diurnal","duration":40,"lambda":50,
		"diurnal_amp":0.5,"diurnal_period":20}]}`))
	f.Add([]byte(`{"phases":[{"kind":"flash","duration":30,"lambda":40,
		"flash_factor":5,"flash_at":10,"flash_duration":4}]}`))
	f.Add([]byte(`{"tenants":[{"name":"a","share":0.5},{"name":"a","share":0.5}],
		"phases":[{"kind":"open","duration":5,"lambda":10}]}`))
	f.Add([]byte(`{"tenants":[{"name":"a","share":0.9},{"name":"b","share":0.3}],
		"phases":[{"kind":"open","duration":5,"lambda":10}]}`))
	f.Add([]byte(`{"tenants":[{"name":"only","share":1}],
		"phases":[{"kind":"open","duration":5,"lambda":10}]}`))
	f.Add([]byte(`{"fairness":{"strict":true},
		"phases":[{"kind":"open","duration":5,"lambda":10}]}`))
	f.Add([]byte(`{"tenants":[{"name":"a","share":0.5},{"name":"b","share":0.5}],
		"phases":[{"kind":"open","duration":5,"lambda":10,
		"events":[{"at":1,"set_weights":{"ghost":2}}]}]}`))
	f.Add([]byte(`{"phases":[{"kind":"closed","duration":-1}]}`))
	f.Add([]byte(`{"phases":[]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			return
		}
		// Accepted means validated: re-validating must agree, or the
		// executor could be handed a spec Validate would have refused.
		if err := sc.Validate(); err != nil {
			t.Fatalf("ParseScenario accepted a scenario Validate rejects: %v\ninput: %q", err, data)
		}
		// Round trip: the accepted value re-encodes and re-parses.
		enc, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("marshal of accepted scenario failed: %v", err)
		}
		if _, err := ParseScenario(enc); err != nil {
			t.Fatalf("re-parse of marshaled scenario failed: %v\nencoded: %s", err, enc)
		}
	})
}

package experiments

import (
	"fmt"
	"reflect"
	"time"

	"extsched/internal/cluster"
	"extsched/internal/runner"
	"extsched/internal/sim"
	"extsched/internal/workload"
)

// buildParallelShardedStack is buildShardedStack with every shard's
// DBMS+frontend pair on its own member engine and a conservative
// parallel ensemble (sim.ParallelEngine) over the fleet, the dispatcher
// acting as the cross-engine message boundary. Same seeds, same per-
// shard event streams — only the execution strategy differs.
func buildParallelShardedStack(setup workload.Setup, speeds []float64, dispatch string, mplTotal int, dbo workload.DBOptions, opts RunOpts) (runner.Stack, error) {
	if dbo.Seed == 0 {
		dbo.Seed = opts.Seed
	}
	coord := sim.NewEngine()
	shards := make([]cluster.Shard, len(speeds))
	engs := make([]*sim.Engine, len(speeds))
	for i, speed := range speeds {
		meng := sim.NewEngine()
		sh, err := buildShard(meng, setup, dbo, speed, i, opts)
		if err != nil {
			return runner.Stack{}, err
		}
		sh.Eng = meng
		shards[i] = sh
		engs[i] = meng
	}
	policy, err := cluster.NewPolicySeeded(dispatch, opts.Seed)
	if err != nil {
		return runner.Stack{}, err
	}
	disp, err := cluster.NewDispatcher(policy, shards)
	if err != nil {
		return runner.Stack{}, err
	}
	disp.SetMPL(mplTotal)
	gen, err := workload.NewGenerator(setup.Workload, opts.Seed)
	if err != nil {
		return runner.Stack{}, err
	}
	st := runner.Stack{Eng: coord, Cluster: disp, Gen: gen, Seed: opts.Seed}
	pe := sim.NewParallelEngine(coord, engs, disp)
	if err := disp.EnableParallel(pe); err != nil {
		pe.Close()
		return runner.Stack{}, err
	}
	st.Par = pe
	st.NewShard = func(i int) (cluster.Shard, error) {
		meng := sim.NewEngine()
		meng.AdvanceTo(coord.Now())
		sh, err := buildShard(meng, setup, dbo, 1, i, opts)
		if err != nil {
			return cluster.Shard{}, err
		}
		sh.Eng = meng
		return sh, nil
	}
	return st, nil
}

// PDSFigure measures the conservative parallel engine against the
// sequential single-queue engine on the same sharded runs: identical
// seeds, fleets, and open workloads, timed wall-clock. The parallel
// run must produce a DeepEqual Outcome — the speedup column is only
// meaningful because the results are the same — so this figure is both
// a performance plot and an end-to-end equivalence check.
//
// The lookahead is the open arrival process: the coordinator's next
// arrival bounds each window, so windows shrink as offered load grows.
// On a single-core runner the parallel engine cannot win — the figure
// then reports the synchronization overhead (speedup < 1), which is
// the honest number for that machine.
func PDSFigure(setupID int, opts RunOpts) (*Figure, error) {
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults(setup)
	// Per-shard nominal capacity from a no-MPL closed probe.
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, opts)
	if err != nil {
		return nil, err
	}
	ref := base.Throughput()
	if ref <= 0 {
		return nil, fmt.Errorf("experiments: degenerate baseline throughput")
	}
	const perShardMPL = 4
	fleets := []int{2, 4, 8}
	seg := opts.Measure
	seq := Series{Name: "sequential wall secs"}
	par := Series{Name: "parallel wall secs"}
	speedup := Series{Name: "speedup (seq/par)"}
	f := &Figure{
		ID: "pds",
		Title: fmt.Sprintf("Conservative parallel engine vs sequential, setup %d (open load at 0.6 of fleet capacity, %d workers)",
			setupID, EffectiveWorkers()),
	}
	for _, n := range fleets {
		speeds := make([]float64, n)
		for i := range speeds {
			speeds[i] = 1
		}
		lambda := 0.6 * float64(n) * ref
		spec := runner.Spec{
			Warmup:         opts.Warmup,
			SampleInterval: seg / 10,
			Phases: []runner.Phase{
				{Name: "open", Kind: runner.KindOpen, Lambda: lambda, Duration: seg},
			},
		}

		sst, err := buildShardedStack(setup, speeds, "jsq", perShardMPL*n, workload.DBOptions{}, opts)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		seqOut, err := runner.Run(opts.ctx(), sst, spec)
		if err != nil {
			return nil, err
		}
		seqWall := time.Since(t0).Seconds()

		pst, err := buildParallelShardedStack(setup, speeds, "jsq", perShardMPL*n, workload.DBOptions{}, opts)
		if err != nil {
			return nil, err
		}
		pspec := spec
		pspec.ParallelShards = true
		t0 = time.Now()
		parOut, err := runner.Run(opts.ctx(), pst, pspec)
		if err != nil {
			return nil, err
		}
		parWall := time.Since(t0).Seconds()

		if !reflect.DeepEqual(seqOut, parOut) {
			return nil, fmt.Errorf("experiments: parallel outcome diverged from sequential at %d shards", n)
		}
		x := float64(n)
		seq.X, seq.Y = append(seq.X, x), append(seq.Y, seqWall)
		par.X, par.Y = append(par.X, x), append(par.Y, parWall)
		sp := seqWall / parWall
		speedup.X, speedup.Y = append(speedup.X, x), append(speedup.Y, sp)
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%d shards: %.2f tx/s, seq %.2fs vs par %.2fs wall (speedup %.2fx), outcomes identical",
			n, seqOut.Total.Throughput(), seqWall, parWall, sp))
	}
	f.Series = append(f.Series, seq, par, speedup)
	f.Notes = append(f.Notes,
		"expect: identical Outcomes at every point (checked); speedup grows with fleet size on multi-core hosts and degrades toward the sync overhead on 1-core runners")
	return f, nil
}

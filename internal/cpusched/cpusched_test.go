package cpusched

import (
	"math"
	"testing"

	"extsched/internal/sim"
)

func TestSingleJobRunsAtFullRate(t *testing.T) {
	eng := sim.NewEngine()
	cpu := New(eng, 1)
	var doneAt float64 = -1
	cpu.Submit(2.0, 1, func() { doneAt = eng.Now() })
	eng.RunAll()
	if math.Abs(doneAt-2.0) > 1e-9 {
		t.Errorf("single job finished at %v, want 2.0", doneAt)
	}
}

func TestTwoJobsShareOneCore(t *testing.T) {
	// Two equal jobs of 1s each on one core: both finish at t=2.
	eng := sim.NewEngine()
	cpu := New(eng, 1)
	var d1, d2 float64
	cpu.Submit(1.0, 1, func() { d1 = eng.Now() })
	cpu.Submit(1.0, 1, func() { d2 = eng.Now() })
	eng.RunAll()
	if math.Abs(d1-2.0) > 1e-9 || math.Abs(d2-2.0) > 1e-9 {
		t.Errorf("finish times (%v, %v), want (2, 2)", d1, d2)
	}
}

func TestTwoCoresRunTwoJobsInParallel(t *testing.T) {
	eng := sim.NewEngine()
	cpu := New(eng, 2)
	var d1, d2 float64
	cpu.Submit(1.0, 1, func() { d1 = eng.Now() })
	cpu.Submit(3.0, 1, func() { d2 = eng.Now() })
	eng.RunAll()
	if math.Abs(d1-1.0) > 1e-9 {
		t.Errorf("short job finished at %v, want 1.0", d1)
	}
	if math.Abs(d2-3.0) > 1e-9 {
		t.Errorf("long job finished at %v, want 3.0", d2)
	}
}

func TestThreeJobsTwoCores(t *testing.T) {
	// 3 equal jobs of 1s on 2 cores: each runs at 2/3 →
	// all finish at 1.5.
	eng := sim.NewEngine()
	cpu := New(eng, 2)
	var done []float64
	for i := 0; i < 3; i++ {
		cpu.Submit(1.0, 1, func() { done = append(done, eng.Now()) })
	}
	eng.RunAll()
	for _, d := range done {
		if math.Abs(d-1.5) > 1e-9 {
			t.Errorf("finish at %v, want 1.5 (got %v)", d, done)
		}
	}
}

func TestPSDynamicsAfterDeparture(t *testing.T) {
	// One core. Job A (0.5s) and B (1.5s): share until A leaves at t=1
	// (A got rate 1/2), then B runs alone: B has 1.5-0.5=1.0 left → t=2.
	eng := sim.NewEngine()
	cpu := New(eng, 1)
	var dA, dB float64
	cpu.Submit(0.5, 1, func() { dA = eng.Now() })
	cpu.Submit(1.5, 1, func() { dB = eng.Now() })
	eng.RunAll()
	if math.Abs(dA-1.0) > 1e-9 {
		t.Errorf("A finished at %v, want 1.0", dA)
	}
	if math.Abs(dB-2.0) > 1e-9 {
		t.Errorf("B finished at %v, want 2.0", dB)
	}
}

func TestLateArrivalResharing(t *testing.T) {
	// One core. A (2s work) starts at 0; B (1s) arrives at 1. From t=1
	// they share: A needs 1 more second of work at rate 1/2... A and B
	// each at 1/2. B finishes its 1s of work at t=3; A also has 1s left
	// at t=1 → both at t=3.
	eng := sim.NewEngine()
	cpu := New(eng, 1)
	var dA, dB float64
	cpu.Submit(2.0, 1, func() { dA = eng.Now() })
	eng.After(1.0, func() {
		cpu.Submit(1.0, 1, func() { dB = eng.Now() })
	})
	eng.RunAll()
	if math.Abs(dA-3.0) > 1e-9 || math.Abs(dB-3.0) > 1e-9 {
		t.Errorf("finish times (%v, %v), want (3, 3)", dA, dB)
	}
}

func TestWeightedSharing(t *testing.T) {
	// One core, weights 3:1. A (w=3, 1.5s work), B (w=1, 1.5s work).
	// A runs at 3/4, B at 1/4. A finishes at 2.0; then B (1.5-0.5=1.0
	// left) runs alone → finishes at 3.0.
	eng := sim.NewEngine()
	cpu := New(eng, 1)
	var dA, dB float64
	cpu.Submit(1.5, 3, func() { dA = eng.Now() })
	cpu.Submit(1.5, 1, func() { dB = eng.Now() })
	eng.RunAll()
	if math.Abs(dA-2.0) > 1e-9 {
		t.Errorf("A finished at %v, want 2.0", dA)
	}
	if math.Abs(dB-3.0) > 1e-9 {
		t.Errorf("B finished at %v, want 3.0", dB)
	}
}

func TestWeightCapAtOneCore(t *testing.T) {
	// Two cores, jobs with weights 100 and 1: the heavy job cannot
	// exceed one core, so the light job still gets a full core.
	eng := sim.NewEngine()
	cpu := New(eng, 2)
	var dHeavy, dLight float64
	cpu.Submit(1.0, 100, func() { dHeavy = eng.Now() })
	cpu.Submit(1.0, 1, func() { dLight = eng.Now() })
	eng.RunAll()
	if math.Abs(dHeavy-1.0) > 1e-9 || math.Abs(dLight-1.0) > 1e-9 {
		t.Errorf("finish times (%v, %v), want (1, 1)", dHeavy, dLight)
	}
}

func TestCancel(t *testing.T) {
	eng := sim.NewEngine()
	cpu := New(eng, 1)
	fired := false
	var dB float64
	j := cpu.Submit(10.0, 1, func() { fired = true })
	cpu.Submit(1.0, 1, func() { dB = eng.Now() })
	eng.After(0.5, func() { cpu.Cancel(j) })
	eng.RunAll()
	if fired {
		t.Error("canceled job completed")
	}
	// B shared until 0.5 (progress 0.25), then ran alone: 0.75 more →
	// finish at 1.25.
	if math.Abs(dB-1.25) > 1e-9 {
		t.Errorf("B finished at %v, want 1.25", dB)
	}
	if cpu.Resident() != 0 {
		t.Errorf("resident = %d, want 0", cpu.Resident())
	}
}

func TestCancelCompletedIsNoop(t *testing.T) {
	eng := sim.NewEngine()
	cpu := New(eng, 1)
	j := cpu.Submit(1.0, 1, func() {})
	eng.RunAll()
	cpu.Cancel(j) // must not panic
}

func TestZeroWorkCompletesAsync(t *testing.T) {
	eng := sim.NewEngine()
	cpu := New(eng, 1)
	fired := false
	cpu.Submit(0, 1, func() { fired = true })
	if fired {
		t.Error("zero-work job completed synchronously inside Submit")
	}
	eng.RunAll()
	if !fired {
		t.Error("zero-work job never completed")
	}
	if eng.Now() != 0 {
		t.Errorf("zero-work completion advanced clock to %v", eng.Now())
	}
}

func TestSetWeight(t *testing.T) {
	// One core, two jobs of 2s each. At t=1 boost A's weight to 3.
	// Phase 1 (0..1): each at 1/2 → 1.5 left each.
	// Phase 2: A at 3/4, B at 1/4. A done after 2s → t=3. B then has
	// 1.5-0.5=1.0 left, alone → t=4.
	eng := sim.NewEngine()
	cpu := New(eng, 1)
	var dA, dB float64
	a := cpu.Submit(2.0, 1, func() { dA = eng.Now() })
	cpu.Submit(2.0, 1, func() { dB = eng.Now() })
	eng.After(1.0, func() { cpu.SetWeight(a, 3) })
	eng.RunAll()
	if math.Abs(dA-3.0) > 1e-9 {
		t.Errorf("A finished at %v, want 3.0", dA)
	}
	if math.Abs(dB-4.0) > 1e-9 {
		t.Errorf("B finished at %v, want 4.0", dB)
	}
}

func TestBusyCoreSeconds(t *testing.T) {
	eng := sim.NewEngine()
	cpu := New(eng, 2)
	cpu.Submit(1.0, 1, func() {})
	cpu.Submit(1.0, 1, func() {})
	eng.RunAll()
	// Two jobs each 1s of work on 2 cores: 2 busy core-seconds.
	if b := cpu.BusyCoreSeconds(); math.Abs(b-2.0) > 1e-9 {
		t.Errorf("busy core-seconds = %v, want 2.0", b)
	}
}

func TestManyJobsConservation(t *testing.T) {
	// Total work in == total busy core-seconds out, regardless of
	// arrival pattern.
	eng := sim.NewEngine()
	cpu := New(eng, 3)
	g := sim.NewRNG(42, 0)
	totalWork := 0.0
	completed := 0
	const n = 200
	for i := 0; i < n; i++ {
		w := 0.01 + g.Float64()
		totalWork += w
		delay := g.Float64() * 10
		eng.After(delay, func() {
			cpu.Submit(w, 1, func() { completed++ })
		})
	}
	eng.RunAll()
	if completed != n {
		t.Fatalf("completed %d of %d", completed, n)
	}
	if math.Abs(cpu.BusyCoreSeconds()-totalWork) > 1e-6 {
		t.Errorf("busy = %v, total work = %v", cpu.BusyCoreSeconds(), totalWork)
	}
	if cpu.Resident() != 0 {
		t.Errorf("resident = %d after drain", cpu.Resident())
	}
}

func TestInvalidArgsPanic(t *testing.T) {
	eng := sim.NewEngine()
	cpu := New(eng, 1)
	for _, fn := range []func(){
		func() { New(eng, 0) },
		func() { cpu.Submit(-1, 1, func() {}) },
		func() { cpu.Submit(1, 0, func() {}) },
		func() { cpu.Submit(math.NaN(), 1, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid argument did not panic")
				}
			}()
			fn()
		}()
	}
}

// Capacity planning with the pure queueing models — no simulation.
// This is what a DBA can compute on a napkin before touching the
// system: how does the lowest safe MPL scale with hardware, and how
// does workload variability move the response-time bound?
//
//	go run ./examples/capacityplanning
package main

import (
	"fmt"
	"log"

	"extsched"
)

func main() {
	fmt.Println("Part 1 — Fig. 7's law: min MPL for 95% of max throughput grows")
	fmt.Println("linearly with the number of (balanced) disks:")
	fmt.Println()
	fmt.Printf("%8s %14s %14s\n", "disks", "minMPL@80%", "minMPL@95%")
	for _, d := range []int{1, 2, 3, 4, 8, 16} {
		r80, err := extsched.RecommendMPL(1, d, 0.0001, 0.2, 0.20, 0, 0, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		r95, err := extsched.RecommendMPL(1, d, 0.0001, 0.2, 0.05, 0, 0, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %14d %14d\n", d, r80.MPL, r95.MPL)
	}

	fmt.Println()
	fmt.Println("Part 2 — Fig. 10's law: workload variability (C²) sets the")
	fmt.Println("response-time lower bound on the MPL (mean demand 100 ms):")
	fmt.Println()
	fmt.Printf("%8s %12s %12s\n", "C²", "rho=0.7", "rho=0.9")
	for _, c2 := range []float64{2, 5, 10, 15} {
		var row [2]int
		for i, rho := range []float64{0.7, 0.9} {
			rec, err := extsched.RecommendMPL(1, 1, 0.1, 0, 0.05,
				rho/0.1, 0.1, c2, 0.1)
			if err != nil {
				log.Fatal(err)
			}
			row[i] = rec.ResponseTimeMPL
		}
		fmt.Printf("%8.0f %12d %12d\n", c2, row[0], row[1])
	}
	fmt.Println()
	fmt.Println("Reading: low-variability (TPC-C-like) workloads tolerate tiny MPLs;")
	fmt.Println("high-variability (TPC-W-like) ones need MPL ~10 at moderate load and")
	fmt.Println("~30 near saturation — exactly the paper's Section 4.2 numbers.")
}

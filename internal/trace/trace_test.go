package trace

import (
	"math"
	"testing"
)

func TestSynthesizeBasics(t *testing.T) {
	tr, err := Synthesize(SynthConfig{
		N: 50000, MeanDemand: 0.1, DemandC2: 2, Lambda: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 50000 {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if m := tr.MeanDemand(); math.Abs(m-0.1)/0.1 > 0.05 {
		t.Errorf("mean demand = %v, want ~0.1", m)
	}
	if c2 := tr.DemandC2(); math.Abs(c2-2)/2 > 0.15 {
		t.Errorf("C² = %v, want ~2", c2)
	}
}

func TestSynthesizeArrivalRate(t *testing.T) {
	tr, _ := Synthesize(SynthConfig{
		N: 100000, MeanDemand: 0.1, DemandC2: 1.5, Lambda: 25, Seed: 2,
	})
	span := tr.Records[tr.Len()-1].Arrival
	rate := float64(tr.Len()) / span
	if math.Abs(rate-25)/25 > 0.05 {
		t.Errorf("arrival rate = %v, want ~25", rate)
	}
}

func TestBurstinessPreservesMeanRate(t *testing.T) {
	tr, _ := Synthesize(SynthConfig{
		N: 100000, MeanDemand: 0.1, DemandC2: 2, Lambda: 25,
		Burstiness: 3, Seed: 3,
	})
	span := tr.Records[tr.Len()-1].Arrival
	rate := float64(tr.Len()) / span
	// On/off modulation halves time between λ·b and λ/b; harmonic mean
	// effective rate is below λ but the same order.
	if rate < 5 || rate > 60 {
		t.Errorf("bursty arrival rate = %v, want same order as 25", rate)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticSitesMatchPaperC2(t *testing.T) {
	// The paper: traces from a top-10 retailer and auction site both
	// show C² ≈ 2 (vs TPC-C 1–1.5, TPC-W 15).
	r := SyntheticRetailer(100000, 4)
	if c2 := r.DemandC2(); c2 < 1.5 || c2 > 3 {
		t.Errorf("retailer C² = %v, want ≈2", c2)
	}
	a := SyntheticAuction(100000, 5)
	if c2 := a.DemandC2(); c2 < 1.5 || c2 > 3.2 {
		t.Errorf("auction C² = %v, want ≈2", c2)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr, _ := Synthesize(SynthConfig{N: 10, MeanDemand: 1, DemandC2: 1, Lambda: 1, Seed: 6})
	tr.Records[5].Arrival = 0 // out of order
	if err := tr.Validate(); err == nil {
		t.Error("out-of-order arrivals accepted")
	}
	tr2, _ := Synthesize(SynthConfig{N: 10, MeanDemand: 1, DemandC2: 1, Lambda: 1, Seed: 6})
	tr2.Records[3].Demand = -1
	if err := tr2.Validate(); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	bad := []SynthConfig{
		{N: 0, MeanDemand: 1, DemandC2: 1, Lambda: 1},
		{N: 10, MeanDemand: 0, DemandC2: 1, Lambda: 1},
		{N: 10, MeanDemand: 1, DemandC2: 0, Lambda: 1},
		{N: 10, MeanDemand: 1, DemandC2: 1, Lambda: 0},
		{N: 10, MeanDemand: 1, DemandC2: 1, Lambda: 1, Burstiness: 0.5},
	}
	for i, cfg := range bad {
		if _, err := Synthesize(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestToProfiles(t *testing.T) {
	tr := SyntheticRetailer(100, 7)
	profiles := tr.ToProfiles()
	if len(profiles) != 100 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	for i, p := range profiles {
		if len(p.Ops) != 1 || p.Ops[0].CPUWork != tr.Records[i].Demand {
			t.Fatal("profile does not match record demand")
		}
		if p.EstimatedDemand != tr.Records[i].Demand {
			t.Fatal("estimate mismatch")
		}
	}
	// Keys unique → no artificial lock conflicts during replay.
	seen := map[uint64]bool{}
	for _, p := range profiles {
		if seen[p.Ops[0].Key] {
			t.Fatal("duplicate replay key")
		}
		seen[p.Ops[0].Key] = true
	}
}

func TestResample(t *testing.T) {
	tr := SyntheticRetailer(20000, 8)
	rs := tr.Resample(9)
	if rs.Len() != tr.Len() {
		t.Fatalf("resample len = %d", rs.Len())
	}
	if err := rs.Validate(); err != nil {
		t.Fatal(err)
	}
	// Moments preserved approximately.
	if math.Abs(rs.MeanDemand()-tr.MeanDemand())/tr.MeanDemand() > 0.05 {
		t.Errorf("resample mean drifted: %v vs %v", rs.MeanDemand(), tr.MeanDemand())
	}
	if math.Abs(rs.DemandC2()-tr.DemandC2())/tr.DemandC2() > 0.25 {
		t.Errorf("resample C² drifted: %v vs %v", rs.DemandC2(), tr.DemandC2())
	}
}

func TestResampleEmpty(t *testing.T) {
	empty := &Trace{Source: "x"}
	rs := empty.Resample(1)
	if rs.Len() != 0 {
		t.Error("empty resample should be empty")
	}
}

func TestPercentiles(t *testing.T) {
	tr := SyntheticRetailer(50000, 10)
	ps := tr.Percentiles(50, 95, 99)
	if !(ps[0] < ps[1] && ps[1] < ps[2]) {
		t.Errorf("percentiles not increasing: %v", ps)
	}
	// Lognormal with C²=2: median < mean.
	if ps[0] >= tr.MeanDemand() {
		t.Errorf("median %v should be below mean %v for a right-skewed trace", ps[0], tr.MeanDemand())
	}
}

func TestSortByArrival(t *testing.T) {
	tr := SyntheticRetailer(100, 11)
	tr.Records[0], tr.Records[50] = tr.Records[50], tr.Records[0]
	if err := tr.Validate(); err == nil {
		t.Fatal("swap should break ordering")
	}
	tr.SortByArrival()
	if err := tr.Validate(); err != nil {
		t.Fatal("sort did not restore ordering")
	}
}

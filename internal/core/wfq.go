package core

import (
	"container/heap"
	"math"

	"extsched/internal/lockmgr"
)

// WFQPolicy implements start-time fair queueing over priority classes:
// each class receives external-queue dispatch capacity in proportion
// to its weight, measured in estimated service demand. It generalizes
// the paper's two-class priority experiment to the class-based QoS
// sharing of the authors' companion work (Schroeder et al., "Achieving
// class-based QoS for transactional workloads", ICDE'06 [22]): strict
// priority starves the low class under backlog, WFQ guarantees it a
// configurable fraction.
//
// Tags follow SFQ: a transaction's start tag is max(global virtual
// time, its class's last finish tag); its finish tag adds
// size/weight. Dispatch order is by start tag (ties by arrival), and
// the global virtual time advances to the dispatched start tag.
type WFQPolicy struct {
	weights map[lockmgr.Class]float64
	vtime   float64
	classF  map[lockmgr.Class]float64
	q       wfqHeap
}

// wfqItem decorates a queued transaction with its tags.
type wfqItem struct {
	txn   *Txn
	start float64
	seq   uint64
}

type wfqHeap []wfqItem

func (h wfqHeap) Len() int { return len(h) }
func (h wfqHeap) Less(i, j int) bool {
	if h[i].start != h[j].start {
		return h[i].start < h[j].start
	}
	return h[i].seq < h[j].seq
}
func (h wfqHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *wfqHeap) Push(x any)   { *h = append(*h, x.(wfqItem)) }
func (h *wfqHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewWFQ builds the policy with per-class weights (> 0). Classes
// absent from the map default to weight 1.
func NewWFQ(weights map[lockmgr.Class]float64) *WFQPolicy {
	w := make(map[lockmgr.Class]float64, len(weights))
	for c, v := range weights {
		if v <= 0 {
			panic("core: WFQ weights must be positive")
		}
		w[c] = v
	}
	return &WFQPolicy{weights: w, classF: make(map[lockmgr.Class]float64)}
}

func (p *WFQPolicy) Name() string { return "wfq" }

func (p *WFQPolicy) weight(c lockmgr.Class) float64 {
	if w, ok := p.weights[c]; ok {
		return w
	}
	return 1
}

// Push tags the transaction and enqueues it.
func (p *WFQPolicy) Push(t *Txn) {
	c := t.Class()
	start := math.Max(p.vtime, p.classF[c])
	size := t.Profile.EstimatedDemand
	if size <= 0 {
		size = 1 // unknown sizes get unit cost
	}
	p.classF[c] = start + size/p.weight(c)
	heap.Push(&p.q, wfqItem{txn: t, start: start, seq: t.seq})
}

// Pop dispatches the transaction with the smallest start tag and
// advances the virtual clock.
func (p *WFQPolicy) Pop() *Txn {
	if p.q.Len() == 0 {
		return nil
	}
	it := heap.Pop(&p.q).(wfqItem)
	if it.start > p.vtime {
		p.vtime = it.start
	}
	return it.txn
}

func (p *WFQPolicy) Len() int { return p.q.Len() }

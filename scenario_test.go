package extsched

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"extsched/metrics"
)

// TestScenarioRerunBitIdentical is the acceptance test for the
// re-runnable System: a three-phase scenario (closed -> open ramp ->
// trace replay) run twice on ONE System produces bit-identical
// Results, and an Observer receives at least 10 interval snapshots.
func TestScenarioRerunBitIdentical(t *testing.T) {
	sys, err := NewSystem(Config{SetupID: 1, MPL: 4, PercentileSamples: 2000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Name:           "accept",
		Warmup:         10,
		SampleInterval: 10,
		Phases: []Phase{
			{Name: "steady", Kind: PhaseClosed, Clients: 50, Duration: 40},
			{Name: "surge", Kind: PhaseRamp, Lambda: 30, Lambda2: 90, Duration: 40},
			{Name: "replay", Kind: PhaseTrace, Duration: 40, TraceSynth: &TraceSynth{
				N: 4000, MeanDemand: 0.008, DemandC2: 2, Lambda: 80, Seed: 5,
			}},
		},
	}
	var obs1, obs2 metrics.Collector
	r1, err := sys.Run(context.Background(), sc, &obs1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Run(context.Background(), sc, &obs2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("re-run on one System not bit-identical:\n%+v\nvs\n%+v", r1.Total, r2.Total)
	}
	if !reflect.DeepEqual(obs1.Snapshots, obs2.Snapshots) {
		t.Error("observer streams differ between re-runs")
	}
	if len(obs1.Snapshots) < 10 {
		t.Errorf("observer received %d snapshots, want >= 10", len(obs1.Snapshots))
	}
	if len(r1.Snapshots) != len(obs1.Snapshots) {
		t.Errorf("Result.Snapshots has %d entries, observer saw %d", len(r1.Snapshots), len(obs1.Snapshots))
	}
	if len(r1.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(r1.Phases))
	}
	for i, name := range []string{"steady", "surge", "replay"} {
		if r1.Phases[i].Name != name {
			t.Errorf("phase %d = %q, want %q", i, r1.Phases[i].Name, name)
		}
		if r1.Phases[i].Completed == 0 {
			t.Errorf("phase %q saw no completions", name)
		}
	}
	if r1.Total.SimSeconds != 120 {
		t.Errorf("total window = %v, want 120", r1.Total.SimSeconds)
	}
	if !(r1.Total.P50 > 0 && r1.Total.P50 <= r1.Total.P95 && r1.Total.P95 <= r1.Total.P99) {
		t.Errorf("percentiles not ordered: %v %v %v", r1.Total.P50, r1.Total.P95, r1.Total.P99)
	}
	// A fresh System with the same Config reproduces the same Result
	// too (determinism is a property of the Config, not the instance).
	sys2, err := NewSystem(Config{SetupID: 1, MPL: 4, PercentileSamples: 2000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := sys2.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	r1.Snapshots = nil // r3 ran without the extra observer, but Snapshots come from SampleInterval either way
	r3.Snapshots = nil
	if !reflect.DeepEqual(r1, r3) {
		t.Error("fresh System with same Config differs from re-run")
	}
}

// TestRunOpenWindowing is the regression test for the measurement
// window at the public API level: under heavy overload, RunOpen must
// report only in-window completions — the seed implementation drained
// the backlog after Stop and counted those completions against the
// window, inflating throughput beyond service capacity at the MPL.
func TestRunOpenWindowing(t *testing.T) {
	s, err := NewSystem(Config{SetupID: 1, MPL: 1, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Setup 1 serves ~95 tx/s unlimited; MPL 1 is slower. Offer 400/s.
	rep, err := s.RunOpen(400, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimSeconds != 20 {
		t.Errorf("window = %v, want 20", rep.SimSeconds)
	}
	// In-window completions can't outrun the service capacity; with the
	// old post-window drain the reported rate exceeded it wildly.
	if rep.Throughput > 150 {
		t.Errorf("throughput %v exceeds any plausible service rate: post-window pollution", rep.Throughput)
	}
	if rep.Completed == 0 {
		t.Error("no completions recorded")
	}
}

func TestScenarioEvents(t *testing.T) {
	sys, err := NewSystem(Config{SetupID: 1, MPL: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	mpl := 12
	var col metrics.Collector
	res, err := sys.Run(context.Background(), Scenario{
		SampleInterval: 10,
		Phases: []Phase{{
			Kind: PhaseClosed, Clients: 50, Duration: 60,
			Events: []Event{{At: 30, SetMPL: &mpl}},
		}},
	}, &col)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalMPL != 12 {
		t.Errorf("final MPL = %d, want 12", res.FinalMPL)
	}
	for _, s := range col.Snapshots {
		want := 2
		if s.Time >= 30 {
			want = 12
		}
		if s.Limit != want {
			t.Errorf("snapshot at %v: limit %d, want %d", s.Time, s.Limit, want)
		}
	}
	// MPL() outside a run reports the configured value, untouched by
	// the event.
	if sys.MPL() != 2 {
		t.Errorf("configured MPL = %d, want 2", sys.MPL())
	}
}

func TestScenarioWFQWeightEvent(t *testing.T) {
	sys, err := NewSystem(Config{
		SetupID: 1, MPL: 2, Policy: PolicyWFQ,
		WFQHighWeight: 1.0001, HighPriorityFraction: 0.5, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := 16.0
	res, err := sys.Run(context.Background(), Scenario{
		Warmup: 10,
		Phases: []Phase{
			{Name: "even", Kind: PhaseClosed, Duration: 120},
			{Name: "skewed", Kind: PhaseClosed, Duration: 120,
				Events: []Event{{At: 0, SetWFQHighWeight: &w}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	even, skewed := res.Phases[0], res.Phases[1]
	rEven := even.LowRT / even.HighRT
	rSkewed := skewed.LowRT / skewed.HighRT
	if rSkewed <= rEven {
		t.Errorf("raising the high-class weight should widen differentiation: %v -> %v", rEven, rSkewed)
	}
}

func TestScenarioZeroDurationPhase(t *testing.T) {
	sys, err := NewSystem(Config{SetupID: 1, MPL: 5, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(context.Background(), Scenario{
		Phases: []Phase{
			{Name: "blip", Kind: PhaseClosed, Clients: 10, Duration: 0},
			{Name: "main", Kind: PhaseOpen, Lambda: 40, Duration: 30},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases[0].SimSeconds != 0 {
		t.Errorf("zero-duration phase window = %v", res.Phases[0].SimSeconds)
	}
	if res.Total.SimSeconds != 30 || res.Total.Completed == 0 {
		t.Errorf("main phase not measured: %+v", res.Total)
	}
}

// intp is a literal-int pointer helper for event tables.
func intp(v int) *int { return &v }

func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name    string
		sc      Scenario
		wantErr string
	}{
		{"no phases", Scenario{}, "no phases"},
		{"bad kind", Scenario{Phases: []Phase{{Kind: "zigzag", Duration: 1}}}, "unknown kind"},
		{"open needs lambda", Scenario{Phases: []Phase{{Kind: PhaseOpen, Duration: 1}}}, "lambda"},
		{"trace needs trace", Scenario{Phases: []Phase{{Kind: PhaseTrace, Duration: 1}}}, "trace"},
		{"trace not both", Scenario{Phases: []Phase{{Kind: PhaseTrace, Duration: 1,
			Trace:      &Trace{Records: []TraceRecord{{Arrival: 0, Demand: 1}}},
			TraceSynth: &TraceSynth{N: 1, MeanDemand: 1, DemandC2: 1, Lambda: 1},
		}}}, "not both"},
		{"bad synth", Scenario{Phases: []Phase{{Kind: PhaseTrace, Duration: 1,
			TraceSynth: &TraceSynth{N: -1}}}}, "invalid synthesis"},
		{"negative duration", Scenario{Phases: []Phase{{Kind: PhaseClosed, Duration: -2}}}, "duration"},
		{"slo needs target", Scenario{Phases: []Phase{{Kind: PhaseClosed, Duration: 1,
			Events: []Event{{SetSLO: &SLOSpec{}}}}}}, "target"},
		{"slo bad class", Scenario{Phases: []Phase{{Kind: PhaseClosed, Duration: 1,
			Events: []Event{{SetSLO: &SLOSpec{Class: "platinum", Target: 1}}}}}}, "class"},
		{"slo bad percentile", Scenario{Phases: []Phase{{Kind: PhaseClosed, Duration: 1,
			Events: []Event{{SetSLO: &SLOSpec{Target: 1, Percentile: 100}}}}}}, "percentile"},
		{"class limit below 1", Scenario{Phases: []Phase{{Kind: PhaseClosed, Duration: 1,
			Events: []Event{{SetClassLimits: &ClassLimits{High: 1}}}}}}, "class limits"},
		{"negative deadline", Scenario{Phases: []Phase{{Kind: PhaseClosed, Duration: 1,
			Events: []Event{{SetAdmitDeadline: &AdmitDeadline{Low: -1}}}}}}, "deadline"},
		{"negative mttr", Scenario{Phases: []Phase{{Kind: PhaseClosed, Duration: 1,
			Churn: &ChurnSpec{MTBF: 10, MTTR: -2}}}}, "MTTR"},
		{"zero mtbf", Scenario{Phases: []Phase{{Kind: PhaseClosed, Duration: 1,
			Churn: &ChurnSpec{MTTR: 2}}}}, "MTBF"},
		{"negative fail index", Scenario{Phases: []Phase{{Kind: PhaseClosed, Duration: 1,
			Events: []Event{{ShardFail: intp(-1)}}}}}, "shard_fail"},
		{"negative recover index", Scenario{Phases: []Phase{{Kind: PhaseClosed, Duration: 1,
			Events: []Event{{ShardRecover: intp(-3)}}}}}, "shard_recover"},
	}
	for _, tc := range cases {
		err := tc.sc.Validate()
		if err == nil {
			t.Errorf("%s: invalid scenario accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestParseScenarioJSON(t *testing.T) {
	mpl := 8
	sc := Scenario{
		Name:           "roundtrip",
		Warmup:         5,
		SampleInterval: 2,
		Phases: []Phase{
			{Kind: PhaseClosed, Clients: 20, Duration: 10,
				Events: []Event{{At: 5, SetMPL: &mpl}}},
			{Kind: PhaseBurst, Lambda: 50, BurstFactor: 3, BurstPeriod: 2, Duration: 10},
		},
	}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Errorf("round trip lost data:\n%+v\nvs\n%+v", sc, back)
	}
	// Unknown fields are rejected (typo protection for hand-written
	// files).
	if _, err := ParseScenario([]byte(`{"phases":[{"kind":"closed","duraton":5}]}`)); err == nil {
		t.Error("typo'd field accepted")
	}
	// Invalid JSON and invalid scenarios are rejected.
	if _, err := ParseScenario([]byte(`{`)); err == nil {
		t.Error("broken JSON accepted")
	}
	if _, err := ParseScenario([]byte(`{"phases":[]}`)); err == nil {
		t.Error("empty scenario accepted")
	}
}

func TestScenarioContextCancel(t *testing.T) {
	sys, err := NewSystem(Config{SetupID: 1, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Run(ctx, Scenario{
		SampleInterval: 1,
		Phases:         []Phase{{Kind: PhaseClosed, Duration: 50}},
	}); err == nil {
		t.Error("canceled run reported success")
	}
	// The System is reusable after a canceled run.
	if _, err := sys.RunClosed(20, 2, 10); err != nil {
		t.Errorf("System unusable after cancellation: %v", err)
	}
}

// TestAutoTuneMatchesScenarioController: AutoTune is now a wrapper
// over a one-phase scenario with an EnableController event; verify the
// long-form scenario produces the same behavior.
func TestAutoTuneScenarioEquivalence(t *testing.T) {
	mkSys := func() *System {
		s, err := NewSystem(Config{SetupID: 1, Seed: 22})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base, err := mkSys().RunClosed(100, 20, 100)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := mkSys().AutoTune(100, 0.05, base.Throughput, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !tuned.Converged {
		t.Fatalf("AutoTune did not converge: %+v", tuned)
	}
	// Long form: same scenario spelled out.
	sys := mkSys()
	res, err := sys.runScenario(context.Background(), Scenario{
		Warmup:         100,
		SampleInterval: 50,
		Phases: []Phase{{
			Kind: PhaseClosed, Duration: 1900,
			Events: []Event{{EnableController: &ControllerSpec{
				MaxThroughputLoss:   0.05,
				ReferenceThroughput: base.Throughput,
				StopOnConverge:      true,
			}}},
		}},
	}, &tuned.StartMPL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tune == nil {
		t.Fatal("scenario run has no tune report")
	}
	if *res.Tune != tuned {
		t.Errorf("wrapper and long-form scenario disagree: %+v vs %+v", tuned, *res.Tune)
	}
}

// TestShardedScenarioRerunBitIdentical is the sharded-dispatch
// acceptance test: a two-shard cluster whose shard 1 is slowed 4x
// mid-phase (then recovers while the dispatch policy switches to JSQ),
// run twice on ONE System, produces bit-identical Results — the
// deterministic-rerun guarantee extends to multi-shard runs.
func TestShardedScenarioRerunBitIdentical(t *testing.T) {
	sys, err := NewSystem(Config{
		SetupID: 1, MPL: 8, Seed: 21,
		Shards: ShardSpec{Count: 2, Dispatch: "jsq"},
	})
	if err != nil {
		t.Fatal(err)
	}
	slow := ShardSpeedEvent{Shard: 1, Speed: 0.25}
	recover := ShardSpeedEvent{Shard: 1, Speed: 1}
	sc := Scenario{
		Name:           "shard-slowdown",
		Warmup:         10,
		SampleInterval: 10,
		Phases: []Phase{
			{Name: "steady", Kind: PhaseClosed, Clients: 40, Duration: 60,
				Events: []Event{{At: 20, SetShardSpeed: &slow}}},
			{Name: "recovered", Kind: PhaseOpen, Lambda: 40, Duration: 60,
				Events: []Event{{At: 10, SetShardSpeed: &recover, SetDispatch: "lwl"}}},
		},
	}
	var obs1, obs2 metrics.Collector
	r1, err := sys.Run(context.Background(), sc, &obs1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Run(context.Background(), sc, &obs2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("sharded re-run on one System not bit-identical:\n%+v\nvs\n%+v", r1.Total, r2.Total)
	}
	if !reflect.DeepEqual(obs1.Snapshots, obs2.Snapshots) {
		t.Error("sharded observer streams differ between re-runs")
	}
	if len(r1.Shards) != 2 {
		t.Fatalf("Shards = %d, want 2", len(r1.Shards))
	}
	var dispatched, completed uint64
	for _, sr := range r1.Shards {
		if sr.Dispatched == 0 || sr.Completed == 0 {
			t.Errorf("shard %d idle: %+v", sr.Shard, sr.Report)
		}
		dispatched += sr.Dispatched
		completed += sr.Completed
	}
	if completed != r1.Total.Completed {
		t.Errorf("shard completions sum to %d, total %d", completed, r1.Total.Completed)
	}
	if r1.Shards[1].Speed != 1 {
		t.Errorf("shard 1 final speed = %v, want 1 (recovered)", r1.Shards[1].Speed)
	}
	// Snapshots carry per-shard state, and the mid-phase slowdown is
	// visible in them: some snapshot has shard 1 at speed 0.25.
	sawSlow := false
	for _, s := range obs1.Snapshots {
		if len(s.Shards) != 2 {
			t.Fatalf("snapshot at %v has %d shard stats, want 2", s.Time, len(s.Shards))
		}
		if s.Shards[1].Speed == 0.25 {
			sawSlow = true
		}
	}
	if !sawSlow {
		t.Error("no snapshot observed shard 1 at speed 0.25")
	}
}

// TestSLOScenarioRerunBitIdentical is the SLO acceptance test: a
// scenario that hands the MPL partition to the latency-SLO controller,
// arms a low-class admission deadline, and drives a transiently
// overloading burst — run twice on ONE System — produces bit-identical
// Results, sheds work deterministically, and ends with a partition
// that respects the invariant (limits sum to the MPL, each >= 1).
func TestSLOScenarioRerunBitIdentical(t *testing.T) {
	sys, err := NewSystem(Config{SetupID: 1, MPL: 12, PercentileSamples: 2000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Name:           "slo-shedding",
		Warmup:         10,
		SampleInterval: 10,
		Phases: []Phase{
			{Name: "steady", Kind: PhaseOpen, Lambda: 65, Duration: 60,
				Events: []Event{{
					SetSLO:           &SLOSpec{Class: "high", Target: 0.4},
					SetAdmitDeadline: &AdmitDeadline{Low: 1.5},
				}}},
			{Name: "burst", Kind: PhaseBurst, Lambda: 105, BurstFactor: 3, BurstPeriod: 15, Duration: 60},
			{Name: "recover", Kind: PhaseOpen, Lambda: 55, Duration: 60},
		},
	}
	var obs1, obs2 metrics.Collector
	r1, err := sys.Run(context.Background(), sc, &obs1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Run(context.Background(), sc, &obs2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("SLO re-run on one System not bit-identical:\n%+v\nvs\n%+v", r1.Total, r2.Total)
	}
	if !reflect.DeepEqual(obs1.Snapshots, obs2.Snapshots) {
		t.Error("SLO observer streams differ between re-runs")
	}
	if len(obs1.Snapshots) < 10 {
		t.Errorf("observer received %d snapshots, want >= 10", len(obs1.Snapshots))
	}
	// The burst overload must actually shed low-class work, and the
	// shed counters must be consistent in both the totals and the
	// snapshot deltas.
	if r1.Total.Shed == 0 || r1.Total.ShedLow == 0 {
		t.Errorf("burst shed nothing: %+v", r1.Total)
	}
	if r1.Total.Shed != r1.Total.ShedHigh+r1.Total.ShedLow {
		t.Errorf("shed split %d+%d != total %d", r1.Total.ShedHigh, r1.Total.ShedLow, r1.Total.Shed)
	}
	var snapShed uint64
	for _, s := range obs1.Snapshots {
		snapShed += s.Shed
	}
	if snapShed != r1.Total.Shed {
		t.Errorf("snapshot shed deltas sum to %d, total %d", snapShed, r1.Total.Shed)
	}
	// The SLO controller ran and its final partition covers the MPL.
	if r1.SLO == nil {
		t.Fatal("no SLO report")
	}
	if r1.SLO.Class != "high" || r1.SLO.Iterations == 0 {
		t.Errorf("SLO report: %+v", r1.SLO)
	}
	if r1.SLO.SLOLimit+r1.SLO.OtherLimit != r1.FinalMPL || r1.SLO.SLOLimit < 1 || r1.SLO.OtherLimit < 1 {
		t.Errorf("partition %d+%d violates the invariant against MPL %d",
			r1.SLO.SLOLimit, r1.SLO.OtherLimit, r1.FinalMPL)
	}
	// The whole point: the protected class's tail stays far below the
	// unprotected one's under overload.
	if !(r1.Total.HighP95 > 0 && r1.Total.HighP95 < r1.Total.LowP95) {
		t.Errorf("class p95s high %v vs low %v — SLO class not protected", r1.Total.HighP95, r1.Total.LowP95)
	}
}

// TestSLOEventsRequireUnsharded: the SLO partition lives on the lone
// frontend; pointing it at a sharded system fails loudly.
func TestSLOEventsRequireUnsharded(t *testing.T) {
	sys, err := NewSystem(Config{SetupID: 1, MPL: 8, Seed: 1, Shards: ShardSpec{Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for name, ev := range map[string]Event{
		"set_slo":          {SetSLO: &SLOSpec{Target: 0.5}},
		"set_class_limits": {SetClassLimits: &ClassLimits{High: 2, Low: 6}},
	} {
		_, err := sys.Run(context.Background(), Scenario{Phases: []Phase{{
			Kind: PhaseClosed, Clients: 5, Duration: 1, Events: []Event{ev},
		}}})
		if err == nil || !strings.Contains(err.Error(), "sharded") {
			t.Errorf("%s on sharded system: err = %v, want sharded error", name, err)
		}
	}
	// Admission deadlines DO work sharded (each shard sheds its own
	// queue).
	if _, err := sys.Run(context.Background(), Scenario{Phases: []Phase{{
		Kind: PhaseClosed, Clients: 5, Duration: 1,
		Events: []Event{{SetAdmitDeadline: &AdmitDeadline{Low: 0.5}}},
	}}}); err != nil {
		t.Errorf("set_admit_deadline on sharded system: %v", err)
	}
}

// TestShardEventsRequireShards: shard-targeted events against an
// unsharded system fail loudly, not silently.
func TestShardEventsRequireShards(t *testing.T) {
	sys, err := NewSystem(Config{SetupID: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(context.Background(), Scenario{Phases: []Phase{{
		Kind: PhaseClosed, Clients: 5, Duration: 1,
		Events: []Event{{SetShardSpeed: &ShardSpeedEvent{Shard: 0, Speed: 0.5}}},
	}}})
	if err == nil || !strings.Contains(err.Error(), "unsharded") {
		t.Errorf("SetShardSpeed on unsharded system: err = %v, want unsharded error", err)
	}
	_, err = sys.Run(context.Background(), Scenario{Phases: []Phase{{
		Kind: PhaseClosed, Clients: 5, Duration: 1,
		Events: []Event{{SetDispatch: "jsq"}},
	}}})
	if err == nil || !strings.Contains(err.Error(), "unsharded") {
		t.Errorf("SetDispatch on unsharded system: err = %v, want unsharded error", err)
	}
}

// TestScenarioValidateRejectsNonFinite: the engine panics when asked
// to schedule events at NaN/Inf times, so Validate must reject every
// non-finite parameter an API caller could smuggle in (JSON cannot
// carry them, but code can).
func TestScenarioValidateRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []Scenario{
		{Warmup: nan, Phases: []Phase{{Kind: PhaseClosed, Duration: 1}}},
		{SampleInterval: inf, Phases: []Phase{{Kind: PhaseClosed, Duration: 1}}},
		{Phases: []Phase{{Kind: PhaseClosed, Duration: nan}}},
		{Phases: []Phase{{Kind: PhaseClosed, Duration: 1, ThinkTime: inf}}},
		{Phases: []Phase{{Kind: PhaseOpen, Duration: 1, Lambda: nan}}},
		{Phases: []Phase{{Kind: PhaseRamp, Duration: 1, Lambda: 1, Lambda2: inf}}},
		{Phases: []Phase{{Kind: PhaseBurst, Duration: 1, Lambda: 5, BurstPeriod: inf}}},
		{Phases: []Phase{{Kind: PhaseClosed, Duration: 1,
			Events: []Event{{At: nan, SetMPL: new(int)}}}}},
		{Phases: []Phase{{Kind: PhaseClosed, Duration: 1,
			Events: []Event{{SetShardSpeed: &ShardSpeedEvent{Shard: 0, Speed: inf}}}}}},
	}
	for i, sc := range cases {
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d: non-finite scenario accepted: %+v", i, sc)
		}
	}
}

// TestChurnScenarioRerunBitIdentical is the fault-model determinism
// gate: a 4-shard system loses one shard mid-burst and gets it back,
// with resubmit recovery (seeded backoff) armed — run twice on one
// System, everything must match bit for bit, including the retry
// timers and availability accounting.
func TestChurnScenarioRerunBitIdentical(t *testing.T) {
	sys, err := NewSystem(Config{
		SetupID: 1, MPL: 12, Seed: 21,
		Shards:   ShardSpec{Count: 4, Dispatch: "jsq"},
		Recovery: &RecoverySpec{Mode: RecoveryResubmit, RetryBudget: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	victim := 3
	sc := Scenario{
		Name:           "churn",
		Warmup:         10,
		SampleInterval: 15,
		Phases: []Phase{
			{Name: "steady", Kind: PhaseOpen, Lambda: 280, Duration: 60},
			{Name: "burst", Kind: PhaseBurst, Lambda: 330, BurstFactor: 2,
				BurstPeriod: 10, Duration: 60,
				Events: []Event{
					{At: 15, ShardFail: &victim},
					{At: 40, ShardRecover: &victim},
				}},
			{Name: "recovered", Kind: PhaseOpen, Lambda: 220, Duration: 60},
		},
	}
	var obs1, obs2 metrics.Collector
	r1, err := sys.Run(context.Background(), sc, &obs1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Run(context.Background(), sc, &obs2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("churn re-run on one System not bit-identical:\n%+v\nvs\n%+v", r1.Total, r2.Total)
	}
	if !reflect.DeepEqual(obs1.Snapshots, obs2.Snapshots) {
		t.Error("churn observer streams differ between re-runs")
	}
	if len(r1.Shards) != 4 {
		t.Fatalf("Shards = %d, want 4", len(r1.Shards))
	}
	// The outage is visible: the victim's availability dips below 1
	// while the survivors stay at 1, and it ends the run back up.
	v := r1.Shards[victim]
	if v.State != "up" {
		t.Errorf("victim final state = %q, want up (recovered)", v.State)
	}
	if v.Availability >= 1 {
		t.Errorf("victim availability = %v, want < 1 (it was down 25s)", v.Availability)
	}
	for i, sr := range r1.Shards {
		if i != victim && sr.Availability != 1 {
			t.Errorf("survivor %d availability = %v, want 1", i, sr.Availability)
		}
	}
	// The fault model actually fired: the burst keeps the victim busy
	// at the kill instant, so work was withdrawn and resubmitted (and
	// with budget 3 on a healthy remainder, nothing is lost).
	if r1.Total.Resubmitted == 0 {
		t.Error("no transactions resubmitted — the kill found an empty shard, weaken the test by raising load")
	}
	if r1.Total.Retries < r1.Total.Resubmitted {
		t.Errorf("retries %d < resubmitted %d", r1.Total.Retries, r1.Total.Resubmitted)
	}
	// A mid-outage snapshot shows the victim down.
	sawDown := false
	for _, s := range obs1.Snapshots {
		if len(s.Shards) == 4 && s.Shards[victim].State == "down" {
			sawDown = true
		}
	}
	if !sawDown {
		t.Error("no snapshot caught the victim in the down state")
	}
}

package workload

import (
	"fmt"

	"extsched/internal/dbfe"
	"extsched/internal/sim"
	"extsched/internal/trace"
)

// TraceDriver replays a recorded (or synthesized) trace through a
// frontend: each record arrives at its traced timestamp with its
// traced service demand. This is how the production-trace comparison
// of Section 3.2 is exercised end to end, and how a user would feed
// their own transaction logs to the tool to pick an MPL.
type TraceDriver struct {
	eng     *sim.Engine
	fe      *dbfe.Frontend
	tr      *trace.Trace
	stopped bool
	started uint64
	// Speedup divides the trace's inter-arrival times (2.0 = replay
	// twice as fast, stressing the system at twice the traced load).
	Speedup float64
}

// NewTraceDriver validates the trace and returns a replayer.
func NewTraceDriver(eng *sim.Engine, fe *dbfe.Frontend, tr *trace.Trace) (*TraceDriver, error) {
	if tr.Len() == 0 {
		return nil, fmt.Errorf("workload: cannot replay an empty trace")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &TraceDriver{eng: eng, fe: fe, tr: tr, Speedup: 1}, nil
}

// Start schedules every record's arrival. The trace's first arrival is
// shifted to the engine's current time.
func (d *TraceDriver) Start() {
	if d.Speedup <= 0 {
		panic(fmt.Sprintf("workload: replay speedup %v must be positive", d.Speedup))
	}
	base := d.eng.Now()
	t0 := d.tr.Records[0].Arrival
	profiles := d.tr.ToProfiles()
	for i, rec := range d.tr.Records {
		at := base + (rec.Arrival-t0)/d.Speedup
		profile := profiles[i]
		d.eng.At(at, func() {
			if d.stopped {
				return
			}
			d.started++
			d.fe.Submit(profile)
		})
	}
}

// Stop suppresses any arrivals not yet fired.
func (d *TraceDriver) Stop() { d.stopped = true }

// Started returns the number of records already submitted.
func (d *TraceDriver) Started() uint64 { return d.started }

package workload

import (
	"math"
	"testing"

	"extsched/internal/dbms"
	"extsched/internal/lockmgr"
)

func TestSetMixValidates(t *testing.T) {
	_, _, gen := driverRig(t, 0, 1)
	bad := [][]TenantMix{
		{{Class: 0, Share: 0.5}},                                       // sums to 0.5
		{{Class: 0, Share: 0}, {Class: 1, Share: 1}},                   // zero share
		{{Class: 0, Share: 0.5}, {Class: 0, Share: 0.5}},               // duplicate class
		{{Class: 0, Share: 0.5}, {Class: 1, Share: 0.5, SizeMean: -1}}, // negative size
	}
	for i, mix := range bad {
		if err := gen.SetMix(mix); err == nil {
			t.Errorf("bad mix %d accepted", i)
		}
	}
	if err := gen.SetMix([]TenantMix{{Class: 0, Share: 0.25}, {Class: 7, Share: 0.75}}); err != nil {
		t.Fatalf("valid mix rejected: %v", err)
	}
	if got := gen.Mix(); len(got) != 2 || got[1].Class != 7 {
		t.Errorf("Mix() = %+v", got)
	}
	if err := gen.SetMix(nil); err != nil || gen.Mix() != nil {
		t.Error("clearing the mix failed")
	}
}

func TestMixSharesRealized(t *testing.T) {
	_, _, gen := driverRig(t, 0, 1)
	mix := []TenantMix{
		{Class: 0, Share: 0.6},
		{Class: 3, Share: 0.3},
		{Class: 9, Share: 0.1}, // outside the fast-path tracked range
	}
	if err := gen.SetMix(mix); err != nil {
		t.Fatal(err)
	}
	const n = 20000
	counts := map[lockmgr.Class]int{}
	for i := 0; i < n; i++ {
		counts[gen.Next().Class]++
	}
	for _, m := range mix {
		got := float64(counts[m.Class]) / n
		if math.Abs(got-m.Share) > 0.02 {
			t.Errorf("class %d share = %v, want %v±0.02", m.Class, got, m.Share)
		}
	}
}

func TestMixSizeScaling(t *testing.T) {
	_, _, gen := driverRig(t, 0, 1)
	if err := gen.SetMix([]TenantMix{
		{Class: 0, Share: 0.5},              // native sizes
		{Class: 1, Share: 0.5, SizeMean: 4}, // deterministic 4x CPU
	}); err != nil {
		t.Fatal(err)
	}
	meanCPU := func(p dbms.TxnProfile) float64 {
		total := 0.0
		for _, op := range p.Ops {
			total += op.CPUWork
		}
		return total / float64(len(p.Ops))
	}
	var native, scaled, nScaled, nNative float64
	for i := 0; i < 5000; i++ {
		p := gen.Next()
		if p.Class == 1 {
			scaled += meanCPU(p)
			nScaled++
		} else {
			native += meanCPU(p)
			nNative++
		}
	}
	ratio := (scaled / nScaled) / (native / nNative)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("scaled/native CPU ratio = %v, want ≈ 4", ratio)
	}
}

// TestMixHeavyTailSizes: a lognormal multiplier with C² >> 1 must
// produce the occasional huge transaction while keeping the mean
// multiplier, and EstimatedDemand must track the scaled CPU (the SJF
// size hint stays truthful).
func TestMixHeavyTailSizes(t *testing.T) {
	_, _, gen := driverRig(t, 0, 1)
	if err := gen.SetMix([]TenantMix{
		{Class: 0, Share: 0.5},
		{Class: 1, Share: 0.5, SizeMean: 1, SizeC2: 15},
	}); err != nil {
		t.Fatal(err)
	}
	maxDemand, sumDemand, n := 0.0, 0.0, 0
	for i := 0; i < 20000; i++ {
		p := gen.Next()
		if p.Class != 1 {
			continue
		}
		cpu := 0.0
		for _, op := range p.Ops {
			cpu += op.CPUWork
		}
		if p.EstimatedDemand < cpu {
			t.Fatalf("EstimatedDemand %v below CPU content %v", p.EstimatedDemand, cpu)
		}
		sumDemand += p.EstimatedDemand
		if p.EstimatedDemand > maxDemand {
			maxDemand = p.EstimatedDemand
		}
		n++
	}
	mean := sumDemand / float64(n)
	if maxDemand < 5*mean {
		t.Errorf("heavy tail missing: max demand %v < 5× mean %v", maxDemand, mean)
	}
}

// TestMixOffPathBitIdentical pins the compatibility guarantee: a
// generator that never had a mix installed draws exactly the same
// sequence as before the tenant machinery existed (same RNG order), so
// every historical two-class figure stays bit-identical.
func TestMixOffPathBitIdentical(t *testing.T) {
	draw := func(withClearedMix bool) []float64 {
		_, _, gen := driverRig(t, 0, 42)
		if withClearedMix {
			if err := gen.SetMix([]TenantMix{{Class: 0, Share: 1}}); err != nil {
				t.Fatal(err)
			}
			if err := gen.SetMix(nil); err != nil {
				t.Fatal(err)
			}
		}
		var out []float64
		for i := 0; i < 200; i++ {
			out = append(out, gen.Next().EstimatedDemand)
		}
		return out
	}
	a, b := draw(false), draw(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestShapedDriverRateSchedule(t *testing.T) {
	eng, fe, gen := driverRig(t, 0, 1)
	d := NewShapedDriver(eng, fe, gen, ShapedConfig{
		Base: 40, Amp: 0.5, Period: 100,
		FlashFactor: 3, FlashAt: 200, FlashDuration: 10,
	})
	d.Start()
	if got := d.Rate(0); math.Abs(got-40) > 1e-9 {
		t.Errorf("rate at t=0 = %v, want 40", got)
	}
	if got := d.Rate(25); math.Abs(got-60) > 1e-9 { // sine peak
		t.Errorf("rate at quarter period = %v, want 60", got)
	}
	if got := d.Rate(75); math.Abs(got-20) > 1e-9 { // sine trough
		t.Errorf("rate at three quarters = %v, want 20", got)
	}
	if got := d.Rate(200); math.Abs(got-3*40) > 1e-9 { // flash at sine zero-crossing
		t.Errorf("rate inside flash = %v, want 120", got)
	}
	if got := d.Rate(210); math.Abs(got-40*(1+0.5*math.Sin(2*math.Pi*0.1))) > 1e-9 {
		t.Errorf("rate after flash = %v, want the plain sine", got)
	}
}

func TestShapedDriverDiurnalCounts(t *testing.T) {
	eng, fe, gen := driverRig(t, 0, 1)
	d := NewShapedDriver(eng, fe, gen, ShapedConfig{Base: 50, Amp: 0.8, Period: 200})
	d.Start()
	eng.Run(100) // rising half of the sine: mean rate ≈ 50·(1+0.8·2/π)
	up := d.Arrived()
	eng.Run(200) // falling half: mean ≈ 50·(1−0.8·2/π)
	down := d.Arrived() - up
	d.Stop()
	if float64(up) < 1.5*float64(down) {
		t.Errorf("diurnal shape missing: rising half %d, falling half %d", up, down)
	}
	total := float64(up + down)
	if total < 0.8*10000 || total > 1.2*10000 {
		t.Errorf("total arrivals = %v, want ≈ 10000 (mean 50/s over 200s)", total)
	}
}

func TestShapedDriverFlashCrowd(t *testing.T) {
	eng, fe, gen := driverRig(t, 0, 1)
	d := NewShapedDriver(eng, fe, gen, ShapedConfig{Base: 30, FlashFactor: 10, FlashAt: 50, FlashDuration: 20})
	d.Start()
	eng.Run(50)
	before := d.Arrived()
	eng.Run(70)
	flash := d.Arrived() - before
	d.Stop()
	// 20s at 300/s ≈ 6000 vs 50s at 30/s ≈ 1500.
	if float64(flash) < 2*float64(before) {
		t.Errorf("flash crowd missing: pre %d, flash window %d", before, flash)
	}
}

func TestShapedDriverDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		eng, fe, gen := driverRig(t, 4, 7)
		if err := gen.SetMix([]TenantMix{
			{Class: 0, Share: 0.7},
			{Class: 2, Share: 0.3, SizeMean: 2, SizeC2: 4},
		}); err != nil {
			t.Fatal(err)
		}
		d := NewShapedDriver(eng, fe, gen, ShapedConfig{
			Base: 30, Amp: 0.4, Period: 40, FlashFactor: 4, FlashAt: 20, FlashDuration: 5,
		})
		d.Start()
		eng.Run(60)
		d.Stop()
		return d.Arrived(), fe.Metrics().Completed
	}
	a1, c1 := run()
	a2, c2 := run()
	if a1 != a2 || c1 != c2 {
		t.Errorf("shaped driver not deterministic: (%d,%d) vs (%d,%d)", a1, c1, a2, c2)
	}
	if a1 == 0 || c1 == 0 {
		t.Error("shaped driver produced no traffic")
	}
}

func TestShapedDriverPauseResume(t *testing.T) {
	eng, fe, gen := driverRig(t, 0, 3)
	d := NewShapedDriver(eng, fe, gen, ShapedConfig{Base: 50, Amp: 0.2, Period: 100})
	d.Start()
	eng.Run(10)
	d.Pause()
	atPause := d.Arrived()
	eng.Run(20)
	if d.Arrived() != atPause {
		t.Fatal("arrivals while paused")
	}
	d.Resume()
	eng.Run(30)
	if d.Arrived() == atPause {
		t.Fatal("no arrivals after resume")
	}
	_ = fe
}

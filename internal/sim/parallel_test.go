package sim

import (
	"sync/atomic"
	"testing"
)

// chaosSource is a MessageSource for property testing: per-member
// mailboxes (appended by member events on worker goroutines, exactly
// like the dispatcher's) merged by Flush in (timestamp, member, FIFO)
// order. It checks the conservative-delivery invariants as it goes:
// no buffered message may carry a timestamp beyond the window bound,
// and none may be replayed with the coordinator clock already past it
// — a message from the coordinator's causal past would mean the
// horizon failed to protect it.
type chaosSource struct {
	t       *testing.T
	coord   *Engine
	boxes   [][]float64 // per-member buffered message timestamps
	flushed int
}

func (s *chaosSource) BeginWindows() {}
func (s *chaosSource) EndWindows()   {}

func (s *chaosSource) Flush(bound float64) int {
	n := 0
	cur := make([]int, len(s.boxes))
	for {
		best := -1
		var bt float64
		for i := range s.boxes {
			if cur[i] >= len(s.boxes[i]) {
				continue
			}
			if at := s.boxes[i][cur[i]]; best < 0 || at < bt {
				best, bt = i, at
			}
		}
		if best < 0 {
			break
		}
		cur[best]++
		if bt > bound {
			s.t.Errorf("message at %v buffered beyond the window bound %v", bt, bound)
		}
		if bt < s.coord.Now() {
			s.t.Errorf("message at %v delivered with the coordinator clock already at %v", bt, s.coord.Now())
		}
		s.coord.AdvanceTo(bt)
		n++
	}
	for i := range s.boxes {
		s.boxes[i] = s.boxes[i][:0]
	}
	s.flushed += n
	return n
}

// TestParallelConservativeDelivery is the property test for the window
// protocol: random ensembles (member counts, event rates, coordinator
// schedules, lockstep toggles, run bounds) must never deliver a
// cross-engine event before the receiver's clock — member-bound
// injections land at or after the member's current time, and
// coordinator-bound messages replay at or after the coordinator's.
// Both directions double-check what Engine.At and Engine.AdvanceTo
// would panic on, so a horizon bug fails with a readable property
// violation rather than a panic deep in the kernel.
func TestParallelConservativeDelivery(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		trial := trial
		rng := NewRNG(uint64(trial)+1, 4242)
		n := 1 + rng.IntN(5)
		coord := NewEngine()
		members := make([]*Engine, n)
		for i := range members {
			members[i] = NewEngine()
		}
		src := &chaosSource{t: t, coord: coord, boxes: make([][]float64, n)}
		pe := NewParallelEngine(coord, members, src)
		defer pe.Close()

		var memberFired, injected, injectedFired atomic.Uint64
		// Each member runs a self-rescheduling chain that buffers a
		// message to the coordinator on a coin flip. The callback runs
		// on a worker goroutine; it may touch only its own member state
		// and its own mailbox (the dispatcher's discipline).
		for i := range members {
			i := i
			m := members[i]
			mrng := NewRNG(uint64(trial)+1, uint64(1000+i))
			rate := 0.5 + 3*mrng.Float64()
			var chain func()
			chain = func() {
				memberFired.Add(1)
				if mrng.IntN(2) == 0 {
					src.boxes[i] = append(src.boxes[i], m.Now())
				}
				m.After(mrng.ExpFloat64()/rate, chain)
			}
			m.After(mrng.ExpFloat64()/rate, chain)
		}
		// The coordinator ticks on its own random schedule; each tick
		// picks a member and injects an event at the coordinator's
		// current instant — which must never be in the member's past.
		crng := NewRNG(uint64(trial)+1, 7)
		var tick func()
		tick = func() {
			j := crng.IntN(n)
			m := members[j]
			at := coord.Now()
			if m.Now() > at {
				t.Errorf("trial %d: injecting at %v but member %d clock already at %v", trial, at, j, m.Now())
			}
			injected.Add(1)
			m.At(at, func() {
				if m.Now() != at {
					t.Errorf("trial %d: injected event fired at %v, scheduled for %v", trial, m.Now(), at)
				}
				injectedFired.Add(1)
			})
			coord.After(0.1+crng.ExpFloat64(), tick)
		}
		coord.After(crng.ExpFloat64(), tick)

		// Random run bounds, with the horizon rule toggling between
		// coordinator-horizon and lockstep along the way.
		now := 0.0
		for step := 0; step < 8; step++ {
			pe.SetLockstep(crng.IntN(2) == 0)
			now += 0.5 + 4*crng.Float64()
			pe.Run(now)
			if got := coord.Now(); got != now {
				t.Fatalf("trial %d: coordinator clock %v after Run(%v)", trial, got, now)
			}
			for j, m := range members {
				if got := m.Now(); got != now {
					t.Fatalf("trial %d: member %d clock %v after Run(%v)", trial, j, got, now)
				}
			}
		}
		if memberFired.Load() == 0 || injected.Load() == 0 || src.flushed == 0 {
			t.Fatalf("trial %d: inert ensemble (members %d, injected %d, flushed %d)",
				trial, memberFired.Load(), injected.Load(), src.flushed)
		}
		if injectedFired.Load() != injected.Load() {
			t.Fatalf("trial %d: %d injected, %d fired", trial, injected.Load(), injectedFired.Load())
		}
	}
}

// nullSource is the no-op boundary for kernel-only benchmarks.
type nullSource struct{}

func (nullSource) BeginWindows()     {}
func (nullSource) Flush(float64) int { return 0 }
func (nullSource) EndWindows()       {}

// TestParallelEngineRunMatchesSequential pins the window protocol
// against the single-engine semantics on a deterministic ensemble: the
// same event set run parallel and sequential fires the same count and
// lands every clock on the bound.
func TestParallelEngineRunMatchesSequential(t *testing.T) {
	build := func() (*Engine, []*Engine) {
		coord := NewEngine()
		members := []*Engine{NewEngine(), NewEngine()}
		for i, m := range members {
			m := m
			d := 0.3 + 0.2*float64(i)
			var chain func()
			chain = func() { m.After(d, chain) }
			m.After(d, chain)
		}
		var tick func()
		tick = func() { coord.After(1.0, tick) }
		coord.After(1.0, tick)
		return coord, members
	}

	coord, members := build()
	pe := NewParallelEngine(coord, members, nullSource{})
	defer pe.Close()
	parFired := pe.Run(50)

	scoord, smembers := build()
	var seqFired uint64
	seqFired += scoord.Run(50)
	for _, m := range smembers {
		seqFired += m.Run(50)
	}
	if parFired != seqFired {
		t.Errorf("parallel fired %d events, sequential %d", parFired, seqFired)
	}
	if pe.Processed() != parFired {
		t.Errorf("Processed() = %d, fired %d", pe.Processed(), parFired)
	}
}

// BenchmarkParallelWindowEvent measures the per-event overhead of the
// window protocol on the intra-window hot path: members busy with
// self-rescheduling chains, the coordinator ticking a horizon schedule,
// no cross-engine messages. In steady state the kernel's free lists
// and the pool's channel handoffs keep this allocation-free — the
// benchcheck gate pins allocs/op at zero.
func BenchmarkParallelWindowEvent(b *testing.B) {
	coord := NewEngine()
	members := make([]*Engine, 4)
	for i := range members {
		m := NewEngine()
		members[i] = m
		var chain func()
		chain = func() { m.After(0.001, chain) }
		m.After(0.001, chain)
	}
	var tick func()
	tick = func() { coord.After(0.05, tick) }
	coord.After(0.05, tick)
	pe := NewParallelEngine(coord, members, nullSource{})
	defer pe.Close()
	// Warm the free lists and the window machinery.
	fired := pe.Run(1)
	bound := coord.Now()
	b.ReportAllocs()
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		bound += 0.05
		total += pe.Run(bound)
	}
	b.StopTimer()
	if total == 0 && fired == 0 {
		b.Fatal("inert benchmark ensemble")
	}
	// Events per op: 4 members x 50 chain steps + 1 coordinator tick.
	b.ReportMetric(float64(total)/float64(b.N), "events/op")
}

// Package stats provides the statistical machinery the controller and
// the experiment harness rely on: streaming moments (Welford), squared
// coefficient of variation, confidence intervals, percentiles, batch
// means for steady-state simulation output, and simple linear
// regression (used to verify the paper's "min MPL grows linearly with
// the number of disks" claim).
package stats

import (
	"math"
	"sort"
)

// Accumulator tracks streaming count, mean and variance using Welford's
// algorithm, plus min/max. The zero value is ready to use.
type Accumulator struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// Count returns the number of observations.
func (a *Accumulator) Count() int64 { return a.n }

// Mean returns the sample mean (0 if empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 if n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// C2 returns the squared coefficient of variation Var/Mean² (0 if the
// mean is 0).
func (a *Accumulator) C2() float64 {
	if a.mean == 0 {
		return 0
	}
	return a.Variance() / (a.mean * a.mean)
}

// Min returns the smallest observation (0 if empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 if empty).
func (a *Accumulator) Max() float64 { return a.max }

// Sum returns n·mean.
func (a *Accumulator) Sum() float64 { return a.mean * float64(a.n) }

// Reset clears the accumulator.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// Merge combines another accumulator into a (parallel Welford merge).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	mean := a.mean + delta*float64(b.n)/float64(n)
	m2 := a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n, a.mean, a.m2 = n, mean, m2
}

// CIHalfWidth returns the half-width of the confidence interval for the
// mean at the given confidence level (e.g. 0.95). It uses Student's t
// quantiles for small samples and the normal quantile beyond 30 degrees
// of freedom. Returns +Inf if n < 2 so that callers treating "CI narrow
// enough" as a gate keep waiting.
func (a *Accumulator) CIHalfWidth(confidence float64) float64 {
	if a.n < 2 {
		return math.Inf(1)
	}
	t := tQuantile(confidence, int(a.n-1))
	return t * a.StdDev() / math.Sqrt(float64(a.n))
}

// RelativeCIHalfWidth returns CIHalfWidth / |Mean|, or +Inf when the
// mean is 0 or the sample is too small.
func (a *Accumulator) RelativeCIHalfWidth(confidence float64) float64 {
	if a.mean == 0 {
		return math.Inf(1)
	}
	return a.CIHalfWidth(confidence) / math.Abs(a.mean)
}

// tQuantile returns the two-sided Student t critical value for the given
// confidence level and degrees of freedom. Tabulated for the common
// levels; interpolates on dof and falls back to the normal quantile for
// dof > 120.
func tQuantile(confidence float64, dof int) float64 {
	if dof < 1 {
		dof = 1
	}
	table, z := tTable95, 1.959964
	switch {
	case confidence >= 0.995:
		table, z = tTable99, 2.575829
	case confidence >= 0.985:
		table, z = tTable99, 2.575829
	case confidence >= 0.945:
		table, z = tTable95, 1.959964
	default:
		table, z = tTable90, 1.644854
	}
	if dof > 120 {
		return z
	}
	if dof <= len(table) {
		return table[dof-1]
	}
	// Interpolate between the last tabulated dof (30) and 120.
	last := table[len(table)-1]
	frac := float64(dof-len(table)) / float64(120-len(table))
	return last + frac*(z-last)
}

// Two-sided critical values for dof 1..30.
var tTable95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

var tTable99 = []float64{
	63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
	3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
	2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
}

var tTable90 = []float64{
	6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
	1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
	1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
}

// Percentile returns the p-th percentile (p in [0,100]) of values using
// linear interpolation between closest ranks. It sorts a copy; callers
// who own a scratch buffer can use PercentileInPlace instead.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	v := make([]float64, len(values))
	copy(v, values)
	return PercentileInPlace(v, p)
}

// PercentileInPlace is Percentile without the defensive copy: it sorts
// values in place and allocates nothing.
func PercentileInPlace(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sort.Float64s(values)
	if p <= 0 {
		return values[0]
	}
	if p >= 100 {
		return values[len(values)-1]
	}
	rank := p / 100 * float64(len(values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return values[lo]
	}
	frac := rank - float64(lo)
	return values[lo]*(1-frac) + values[hi]*frac
}

// MeanOf returns the mean of values (0 if empty).
func MeanOf(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range values {
		sum += x
	}
	return sum / float64(len(values))
}

// C2Of returns the squared coefficient of variation of values.
func C2Of(values []float64) float64 {
	var a Accumulator
	for _, x := range values {
		a.Add(x)
	}
	return a.C2()
}

// BatchMeans splits a steady-state output series into k batches and
// returns an accumulator over the batch means, the standard technique
// for confidence intervals on correlated simulation output. Trailing
// observations that do not fill a batch are dropped. k must be >= 2 and
// len(values) >= k.
type BatchMeans struct {
	Batches Accumulator
	Size    int
}

// NewBatchMeans computes batch means with k batches.
func NewBatchMeans(values []float64, k int) BatchMeans {
	if k < 2 || len(values) < k {
		return BatchMeans{}
	}
	size := len(values) / k
	var bm BatchMeans
	bm.Size = size
	for b := 0; b < k; b++ {
		sum := 0.0
		for i := b * size; i < (b+1)*size; i++ {
			sum += values[i]
		}
		bm.Batches.Add(sum / float64(size))
	}
	return bm
}

// LinearFit returns the least-squares slope, intercept, and R² of
// y ~ a + b·x. R² is 1 for a perfect fit; returns zeros for fewer than
// two points or zero x-variance.
func LinearFit(x, y []float64) (slope, intercept, r2 float64) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, 0
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return slope, intercept, 1
	}
	ssRes := 0.0
	for i := range x {
		e := y[i] - (intercept + slope*x[i])
		ssRes += e * e
	}
	r2 = 1 - ssRes/ssTot
	return slope, intercept, r2
}

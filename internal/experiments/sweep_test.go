package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

func TestSweepOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 4, 0} {
		got, err := SweepWorkers(workers, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestSweepEmpty(t *testing.T) {
	got, err := Sweep(0, func(int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Sweep(0) = (%v, %v), want (nil, nil)", got, err)
	}
}

func TestSweepErrorDeterministic(t *testing.T) {
	// Two failing points: the lowest-indexed error must win no matter
	// how the pool schedules them.
	for _, workers := range []int{1, 8} {
		_, err := SweepWorkers(workers, 50, func(i int) (int, error) {
			if i == 7 || i == 31 {
				return 0, fmt.Errorf("point %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "point 7 failed" {
			t.Fatalf("workers=%d: err = %v, want point 7's error", workers, err)
		}
	}
}

// TestSweepPanicPropagates pins the sequential loop's panic semantics
// on the pool path: a model-bug panic inside a worker must surface as
// a panic on the calling goroutine, not kill the process.
func TestSweepPanicPropagates(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "sweep point 3 panicked: boom") {
			t.Errorf("propagated panic = %v, want point 3's boom", p)
		}
	}()
	_, _ = SweepWorkers(4, 10, func(i int) (int, error) {
		if i == 3 {
			panic("boom")
		}
		return i, nil
	})
	t.Fatal("SweepWorkers returned instead of panicking")
}

// TestSweepErrorBeatsLaterPanic: outcomes are reported in index order,
// so an error at a lower index wins over a panic at a higher one —
// exactly what the sequential loop would have surfaced first.
func TestSweepErrorBeatsLaterPanic(t *testing.T) {
	_, err := SweepWorkers(4, 10, func(i int) (int, error) {
		if i == 2 {
			return 0, fmt.Errorf("point 2 failed")
		}
		if i == 9 {
			panic("late panic")
		}
		return i, nil
	})
	if err == nil || err.Error() != "point 2 failed" {
		t.Fatalf("err = %v, want point 2's error", err)
	}
}

func TestSweepErrorStopsEarly(t *testing.T) {
	boom := errors.New("boom")
	_, err := SweepWorkers(2, 10, func(i int) (int, error) {
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestSweepDeterminismFigure2 is the headline determinism guarantee:
// the parallel sweep's Figure 2 series must be bit-identical to the
// sequential reference, because every sweep point owns its engine and
// seed-derived RNG streams.
func TestSweepDeterminismFigure2(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run figure regeneration")
	}
	opts := RunOpts{Warmup: 10, Measure: 60, Seed: 1}
	defer func(w int) { DefaultWorkers = w }(DefaultWorkers)

	DefaultWorkers = 1
	seq, err := Figure2(opts)
	if err != nil {
		t.Fatal(err)
	}
	DefaultWorkers = 4 // real goroutine pool even on a 1-core machine
	par, err := Figure2(opts)
	if err != nil {
		t.Fatal(err)
	}
	assertFiguresIdentical(t, seq, par)
}

// TestSweepDeterminismPrioritization repeats the bit-identity check on
// a prioritization experiment, whose per-point pipeline (baseline
// probe, MPL search, prioritized run) is the most stateful driver.
func TestSweepDeterminismPrioritization(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run figure regeneration")
	}
	opts := RunOpts{Warmup: 10, Measure: 60, Seed: 1}
	defer func(w int) { DefaultWorkers = w }(DefaultWorkers)

	DefaultWorkers = 1
	seq, err := Figure11(0.20, []int{1, 3, 5}, opts)
	if err != nil {
		t.Fatal(err)
	}
	DefaultWorkers = 4 // real goroutine pool even on a 1-core machine
	par, err := Figure11(0.20, []int{1, 3, 5}, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertFiguresIdentical(t, seq, par)
}

// assertFiguresIdentical requires exact float equality — the parallel
// path must reproduce the sequential bits, not approximate them.
func assertFiguresIdentical(t *testing.T, seq, par *Figure) {
	t.Helper()
	if len(seq.Series) != len(par.Series) {
		t.Fatalf("series count: sequential %d, parallel %d", len(seq.Series), len(par.Series))
	}
	for i := range seq.Series {
		s, p := seq.Series[i], par.Series[i]
		if s.Name != p.Name {
			t.Errorf("series %d name: %q vs %q", i, s.Name, p.Name)
		}
		if !reflect.DeepEqual(s.X, p.X) {
			t.Errorf("series %q X diverges: %v vs %v", s.Name, s.X, p.X)
		}
		if !reflect.DeepEqual(s.Y, p.Y) {
			t.Errorf("series %q Y diverges: %v vs %v", s.Name, s.Y, p.Y)
		}
	}
	if !reflect.DeepEqual(seq.Notes, par.Notes) {
		t.Errorf("notes diverge:\nsequential: %v\nparallel:   %v", seq.Notes, par.Notes)
	}
}

func TestSweepContextCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, err := SweepContext(ctx, 10, func(i int) (int, error) {
		calls++
		return i, nil
	})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Errorf("fn ran %d times under a dead context", calls)
	}
}

func TestSweepContextCancelMidSweep(t *testing.T) {
	// Cancel after a few points: the sweep must return ctx.Err() and
	// stop claiming new points (running ones finish).
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	_, err := SweepContext(ctx, 1000, func(i int) (int, error) {
		if started.Add(1) == 3 {
			cancel()
		}
		return i, nil
	})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Errorf("all %d points ran despite cancellation", n)
	}
}

func TestSweepContextSequentialPathCancels(t *testing.T) {
	old := DefaultWorkers
	DefaultWorkers = 1
	defer func() { DefaultWorkers = old }()
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := SweepContext(ctx, 100, func(i int) (int, error) {
		calls++
		if i == 4 {
			cancel()
		}
		return i, nil
	})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if calls != 5 {
		t.Errorf("fn ran %d times, want 5 (cancel checked between points)", calls)
	}
}

func TestSweepContextBackgroundCompletes(t *testing.T) {
	out, err := SweepContext(context.Background(), 8, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestRunOptsCtxCancelsFigureDriver(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ThroughputVsMPL(1, []int{1, 2, 3}, RunOpts{Warmup: 1, Measure: 2, Ctx: ctx})
	if err != context.Canceled {
		t.Errorf("figure driver under dead context = %v, want context.Canceled", err)
	}
}

package dist

import (
	"math"
	"testing"

	"extsched/internal/sim"
)

// sampleMoments draws n variates and returns the sample mean and C².
func sampleMoments(t *testing.T, d Distribution, n int) (float64, float64) {
	t.Helper()
	g := sim.NewRNG(7, 3)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := d.Sample(g)
		if x < 0 {
			t.Fatalf("negative variate %v", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	return mean, variance / (mean * mean)
}

func TestMomentsMatchSamples(t *testing.T) {
	cases := []struct {
		name string
		d    Distribution
	}{
		{"exp", NewExponential(0.25)},
		{"uniform", NewUniform(0.006, 0.018)},
		{"lognormal", NewLognormal(2, 3)},
		{"h2", FitH2(0.5, 8)},
	}
	for _, tc := range cases {
		mean, c2 := sampleMoments(t, tc.d, 400000)
		if rel := math.Abs(mean-tc.d.Mean()) / tc.d.Mean(); rel > 0.03 {
			t.Errorf("%s: sample mean %v vs Mean() %v", tc.name, mean, tc.d.Mean())
		}
		if math.Abs(c2-tc.d.C2()) > 0.15*(1+tc.d.C2()) {
			t.Errorf("%s: sample C² %v vs C2() %v", tc.name, c2, tc.d.C2())
		}
	}
}

func TestDeterministic(t *testing.T) {
	d := NewDeterministic(0.02)
	g := sim.NewRNG(1, 1)
	if d.Sample(g) != 0.02 || d.Mean() != 0.02 || d.C2() != 0 {
		t.Error("deterministic distribution not a point mass")
	}
}

func TestFitH2Moments(t *testing.T) {
	for _, c2 := range []float64{1.0000001, 2, 5, 15} {
		for _, mean := range []float64{0.01, 1, 2} {
			h := FitH2(mean, c2)
			if h.P <= 0 || h.P >= 1 {
				t.Errorf("FitH2(%v, %v): P = %v not strictly in (0,1)", mean, c2, h.P)
			}
			if math.Abs(h.Mean()-mean) > 1e-12*mean {
				t.Errorf("FitH2(%v, %v): Mean() = %v", mean, c2, h.Mean())
			}
			if math.Abs(h.C2()-c2) > 1e-6*c2 {
				t.Errorf("FitH2(%v, %v): C2() = %v", mean, c2, h.C2())
			}
		}
	}
	// Sub-exponential requests clamp to C² just above 1.
	if h := FitH2(1, 0.5); h.C2() < 1 || h.C2() > 1.001 {
		t.Errorf("FitH2 clamp: C2() = %v, want ≈1", h.C2())
	}
}

func TestNewH2Degenerate(t *testing.T) {
	h := NewH2(1, 2, 3) // P=1: always phase 1
	if math.Abs(h.Mean()-0.5) > 1e-12 {
		t.Errorf("degenerate H2 mean = %v, want 0.5", h.Mean())
	}
	if math.Abs(h.C2()-1) > 1e-12 {
		t.Errorf("degenerate H2 C² = %v, want 1 (pure exponential)", h.C2())
	}
}

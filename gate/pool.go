package gate

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"extsched/internal/autoscale"
	"extsched/internal/cluster"
	"extsched/internal/core"
	"extsched/internal/sim"
	"extsched/metrics"
)

// ErrMemberDown is returned by a Pool Acquire when the circuit breaker
// has tripped every member: there is no healthy backend to route to
// and no probe due yet.
var ErrMemberDown = errors.New("gate: all pool members down")

// BreakerConfig arms per-member health tracking on a Pool: a
// consecutive-failure circuit breaker with half-open probing. A member
// whose released work fails (Result.Err != nil) Threshold times in a
// row trips open — routing skips it and the surviving members absorb
// its share of the fleet limit. After ProbeInterval seconds, exactly
// one request is let through as a probe (half-open): if it succeeds
// the breaker closes and the member takes its capacity back; if it
// fails the member stays down for another interval.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips a member
	// (0 = 5).
	Threshold int
	// ProbeInterval is how long a tripped member stays unrouted before
	// a probe is allowed, in seconds (0 = 1).
	ProbeInterval float64
}

func (b BreakerConfig) withDefaults() BreakerConfig {
	if b.Threshold <= 0 {
		b.Threshold = 5
	}
	if b.ProbeInterval <= 0 {
		b.ProbeInterval = 1
	}
	return b
}

// memberHealth is one member's breaker state.
type memberHealth uint8

const (
	memberUp memberHealth = iota
	// memberOpen is a tripped breaker: no traffic until a probe is due.
	memberOpen
	// memberProbing has one half-open probe request in flight.
	memberProbing
)

// PoolConfig assembles a Pool: a fleet of member gates behind one
// dispatch decision.
type PoolConfig struct {
	// Members is the number of member gates (>= 1).
	Members int
	// Dispatch names the routing policy: "rr" (default), "jsq", "lwl",
	// "affinity", or the sampled variants "jsq-d" / "lwl-d" (optionally
	// with a sample width, e.g. "jsq-d:3") — the same policies the
	// simulator's cluster dispatcher uses, so simulated dispatch
	// findings carry over. Sampled policies draw their candidate picks
	// from a dedicated RNG stream seeded by Member.Seed, so two pools
	// built alike route alike.
	Dispatch string
	// Speeds are per-member relative speed hints for the "lwl" policy
	// (1 = nominal); empty means all 1, otherwise len must equal
	// Members. Update mid-run with SetMemberSpeed when a member
	// degrades.
	Speeds []float64
	// Breaker, when non-nil, arms the per-member circuit breaker: a
	// member that keeps failing is tripped out of the dispatch set, its
	// limit share moves to the survivors, and half-open probes bring it
	// back when it recovers.
	Breaker *BreakerConfig
	// Autoscale, when non-nil, arms the fleet autoscaler: the active
	// member set grows and shrinks with observed backlog inside
	// [Min, Max]. See AutoscaleConfig.
	Autoscale *AutoscaleConfig
	// Member configures each member gate. Limit is PER MEMBER; so is
	// QueueLimit. Percentile sampling seeds are decorrelated per member
	// automatically.
	Member Config
}

// Pool is the live-traffic twin of the simulator's sharded dispatcher:
// Acquire routes each request to one member gate by the configured
// policy, so a fleet of replicas (connection pools, downstream
// backends) is gated and balanced by the same mechanism the paper's
// experiments validate per backend. All methods are safe for
// concurrent use.
type Pool struct {
	members []*Gate
	clock   sim.Clock

	// mu serializes routing decisions and the outstanding-work
	// accounting behind them, so concurrent Acquires see consistent
	// loads and stateful policies (round-robin) stay correct. The
	// breaker state lives under the same lock: health transitions are
	// routing decisions.
	mu     sync.Mutex
	policy cluster.Policy
	// seed feeds sampled dispatch policies ("jsq-d") their RNG stream,
	// at build time and on every SetDispatch swap.
	seed   uint64
	work   []float64
	speeds []float64
	routed []uint64
	// idx maps filtered (healthy-only) policy picks back to member
	// indices when the breaker is armed; loads is the matching
	// per-route scratch (both under mu), so routing allocates nothing.
	idx   []int
	loads []cluster.Load

	// asc is nil when autoscaling is off. active is the size of the
	// routable lowest-index prefix of members (len(members) when asc is
	// nil); ascNext the clock instant of the next controller
	// evaluation. memberLimit remembers the per-member limit the pool
	// was built with so scale actions can retarget the breaker's fleet
	// limit.
	asc         *autoscale.Controller
	active      int
	ascNext     float64
	memberLimit int

	// breaker is nil when health tracking is disabled. fleetLimit is
	// the requested fleet-wide limit the breaker re-splits across
	// healthy members on every trip and recovery (0 = unlimited).
	breaker     *BreakerConfig
	fleetLimit  int
	health      []memberHealth
	consecFails []int
	downSince   []float64 // trip instant (clock seconds), per member
	downAccum   []float64 // accumulated down seconds through last recovery
	epoch       float64   // clock instant the pool was built
}

// NewPool builds a pool of cfg.Members identical gates.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if cfg.Members < 1 {
		return nil, fmt.Errorf("gate: pool needs at least 1 member, got %d", cfg.Members)
	}
	if n := len(cfg.Speeds); n > 0 && n != cfg.Members {
		return nil, fmt.Errorf("gate: pool has %d speeds for %d members", n, cfg.Members)
	}
	seed := cfg.Member.Seed
	if seed == 0 {
		seed = 1
	}
	policy, err := cluster.NewPolicySeeded(cfg.Dispatch, seed)
	if err != nil {
		return nil, fmt.Errorf("gate: %w", err)
	}
	clock := cfg.Member.clock
	if clock == nil {
		clock = sim.NewWallClock()
	}
	p := &Pool{
		policy:      policy,
		seed:        seed,
		clock:       clock,
		work:        make([]float64, cfg.Members),
		speeds:      make([]float64, cfg.Members),
		routed:      make([]uint64, cfg.Members),
		idx:         make([]int, 0, cfg.Members),
		loads:       make([]cluster.Load, 0, cfg.Members),
		active:      cfg.Members,
		memberLimit: cfg.Member.Limit,
	}
	if cfg.Breaker != nil {
		b := cfg.Breaker.withDefaults()
		p.breaker = &b
		p.health = make([]memberHealth, cfg.Members)
		p.consecFails = make([]int, cfg.Members)
		p.downSince = make([]float64, cfg.Members)
		p.downAccum = make([]float64, cfg.Members)
		p.epoch = clock.Now()
		if cfg.Member.Limit > 0 {
			p.fleetLimit = cfg.Member.Limit * cfg.Members
		}
	}
	for i := 0; i < cfg.Members; i++ {
		p.speeds[i] = 1
		if len(cfg.Speeds) > 0 {
			if cfg.Speeds[i] <= 0 {
				return nil, fmt.Errorf("gate: member %d speed %v must be positive", i, cfg.Speeds[i])
			}
			p.speeds[i] = cfg.Speeds[i]
		}
		mc := cfg.Member
		if mc.PercentileSamples > 0 {
			seed := mc.Seed
			if seed == 0 {
				seed = 1
			}
			mc.Seed = seed + uint64(i)
		}
		g, err := New(mc)
		if err != nil {
			return nil, err
		}
		p.members = append(p.members, g)
	}
	if cfg.Autoscale != nil {
		if err := p.armAutoscale(*cfg.Autoscale); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Members returns the member count.
func (p *Pool) Members() int { return len(p.members) }

// Member returns member i's gate — for per-member tuning
// (EnableAutoTune, SetLimit, Watch) and inspection. Routing state
// stays with the pool; acquiring directly on a member bypasses the
// dispatch policy's work accounting.
func (p *Pool) Member(i int) *Gate { return p.members[i] }

// SetDispatch switches the routing policy at runtime. Sampled policies
// ("jsq-d") resume from the pool's dispatch seed.
func (p *Pool) SetDispatch(name string) error {
	policy, err := cluster.NewPolicySeeded(name, p.seed)
	if err != nil {
		return fmt.Errorf("gate: %w", err)
	}
	p.mu.Lock()
	p.policy = policy
	p.mu.Unlock()
	return nil
}

// SetMemberSpeed updates member i's relative speed hint (the "lwl"
// policy normalizes outstanding work by it).
func (p *Pool) SetMemberSpeed(i int, speed float64) error {
	if i < 0 || i >= len(p.members) {
		return fmt.Errorf("gate: member %d out of range [0,%d)", i, len(p.members))
	}
	if speed <= 0 {
		return fmt.Errorf("gate: member speed %v must be positive", speed)
	}
	p.mu.Lock()
	p.speeds[i] = speed
	p.mu.Unlock()
	return nil
}

// route picks a member for req and charges its work accounting. With
// the breaker armed it reports whether the pick is a half-open probe;
// ErrMemberDown when every member is tripped and no probe is due.
func (p *Pool) route(req Request) (member int, probe bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.asc != nil {
		p.autoscaleLocked(p.clock.Now())
	}
	if p.breaker != nil {
		// A due probe takes the request: half-open means exactly one
		// real request tests the tripped member. Parked members are not
		// probed — they rejoin (tripped state and all) when the
		// autoscaler reactivates them.
		now := p.clock.Now()
		for i, h := range p.health {
			if i >= p.active {
				break
			}
			if h == memberOpen && now-p.downSince[i] >= p.breaker.ProbeInterval {
				p.health[i] = memberProbing
				p.work[i] += req.SizeHint
				p.routed[i]++
				return i, true, nil
			}
		}
	}
	loads := p.loads[:0]
	idx := p.idx[:0]
	for i, g := range p.members {
		if i >= p.active {
			break
		}
		if p.breaker != nil && p.health[i] != memberUp {
			continue
		}
		loads = append(loads, cluster.Load{
			Backlog: g.Queued() + g.Inflight(),
			Work:    p.work[i],
			Speed:   p.speeds[i],
		})
		idx = append(idx, i)
	}
	if len(loads) == 0 {
		return 0, false, ErrMemberDown
	}
	j := p.policy.Pick(loads, core.Class(req.Class), req.SizeHint)
	if j < 0 || j >= len(idx) {
		panic(fmt.Sprintf("gate: dispatch policy %s picked member %d of %d", p.policy.Name(), j, len(idx)))
	}
	i := idx[j]
	p.work[i] += req.SizeHint
	p.routed[i]++
	return i, false, nil
}

// unroute refunds a routing charge (the member rejected or the caller
// gave up before admission).
func (p *Pool) unroute(i int, size float64) {
	p.mu.Lock()
	p.work[i] -= size
	if p.work[i] < 0 {
		p.work[i] = 0
	}
	p.routed[i]--
	p.mu.Unlock()
}

// finish settles a completed request's work charge.
func (p *Pool) finish(i int, size float64) {
	p.mu.Lock()
	p.work[i] -= size
	if p.work[i] < 0 {
		p.work[i] = 0
	}
	p.mu.Unlock()
}

// Acquire waits for admission somewhere in the pool with default
// request attributes.
func (p *Pool) Acquire(ctx context.Context) (PoolTicket, error) {
	return p.AcquireRequest(ctx, Request{})
}

// AcquireRequest routes the request to a member chosen by the dispatch
// policy, then waits for that member's admission. The routing decision
// is made once, at submission — the pool does not re-route a request
// that then waits behind the chosen member's queue (exactly the
// semantics of the simulated dispatcher, and of a connection handed to
// one replica). ErrQueueFull surfaces from the chosen member in
// admission-control mode.
func (p *Pool) AcquireRequest(ctx context.Context, req Request) (PoolTicket, error) {
	i, probe, err := p.route(req)
	if err != nil {
		return PoolTicket{}, err
	}
	tk, err := p.members[i].AcquireRequest(ctx, req)
	if err != nil {
		p.unroute(i, req.SizeHint)
		if probe {
			// The probe never reached the backend — re-open the breaker
			// and let the next interval try again.
			p.mu.Lock()
			if p.health[i] == memberProbing {
				p.reopenLocked(i)
			}
			p.mu.Unlock()
		}
		return PoolTicket{}, err
	}
	return PoolTicket{t: tk, p: p, member: i, size: req.SizeHint, probe: probe}, nil
}

// PoolTicket is one admitted unit of work plus the routing it arrived
// by. It is a small value (copy freely); Release it exactly once — a
// second Release on any copy is a no-op, claimed by the underlying
// member ticket's generation counter. The zero PoolTicket is inert.
type PoolTicket struct {
	t      Ticket
	p      *Pool
	member int
	size   float64
	probe  bool
}

// Member returns the index of the member gate that admitted the work.
func (t PoolTicket) Member() int { return t.member }

// Release frees the slot on the admitting member and settles the
// pool's work accounting. With the breaker armed, res.Err feeds the
// member's health: consecutive failures trip it, a successful probe
// closes it again.
func (t PoolTicket) Release(res Result) {
	if t.p == nil || !t.t.release(res) {
		return
	}
	t.p.finish(t.member, t.size)
	t.p.recordResult(t.member, t.probe, res.Err != nil)
}

// recordResult applies one released request's outcome to member i's
// breaker state.
func (p *Pool) recordResult(i int, probe, failed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.breaker == nil {
		return
	}
	if failed {
		p.consecFails[i]++
		switch p.health[i] {
		case memberProbing:
			// Failed probe: stay open for another interval.
			p.reopenLocked(i)
		case memberUp:
			if p.consecFails[i] >= p.breaker.Threshold {
				p.health[i] = memberOpen
				p.downSince[i] = p.clock.Now()
				p.resplitLocked()
			}
		}
		return
	}
	p.consecFails[i] = 0
	if p.health[i] == memberProbing {
		// Successful probe: close the breaker and take capacity back.
		p.downAccum[i] += p.clock.Now() - p.downSince[i]
		p.health[i] = memberUp
		p.resplitLocked()
	}
}

// reopenLocked re-trips member i after a failed probe, banking the
// down time so far so availability accounting stays continuous across
// the downSince reset. Callers hold p.mu.
func (p *Pool) reopenLocked(i int) {
	now := p.clock.Now()
	p.downAccum[i] += now - p.downSince[i]
	p.health[i] = memberOpen
	p.downSince[i] = now
}

// resplitLocked redistributes the fleet limit across the currently
// healthy ACTIVE members: a tripped member keeps a single slot (enough
// to admit the half-open probe) while the survivors absorb the rest,
// and the split reverts when it recovers. Parked members keep whatever
// limit they have — they receive no traffic, and an outstanding queue
// on a freshly parked member drains under its existing limit. Callers
// hold p.mu. A fleetLimit of 0 means unlimited members; nothing to
// move.
func (p *Pool) resplitLocked() {
	if p.fleetLimit == 0 {
		return
	}
	healthy := 0
	for i, h := range p.health {
		if i >= p.active {
			break
		}
		if h == memberUp {
			healthy++
		}
	}
	if healthy == 0 {
		// Leave the last split in place: a fleet with no healthy
		// members routes nothing anyway, and probes must still be
		// admitted when they come due.
		return
	}
	shares := cluster.SplitMPL(p.fleetLimit, healthy)
	j := 0
	for i, h := range p.health {
		if i >= p.active {
			break
		}
		if h == memberUp {
			p.members[i].SetLimit(shares[j])
			j++
		} else {
			p.members[i].SetLimit(1)
		}
	}
}

// availabilityLocked is the fraction of the pool's lifetime member i
// spent closed (routable). Callers hold p.mu and the breaker is armed.
func (p *Pool) availabilityLocked(i int, now float64) float64 {
	elapsed := now - p.epoch
	if elapsed <= 0 {
		return 1
	}
	down := p.downAccum[i]
	if p.health[i] != memberUp {
		down += now - p.downSince[i]
	}
	if down < 0 {
		down = 0
	}
	if down > elapsed {
		down = elapsed
	}
	return (elapsed - down) / elapsed
}

// MemberState reports member i's routing state: "up" when routable,
// "down" when the breaker tripped it (including while a half-open
// probe is in flight), "parked" when the autoscaler has it outside the
// active set. Without a breaker or autoscaler every member is always
// "up".
func (p *Pool) MemberState(i int) string {
	if i < 0 || i >= len(p.members) {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.asc != nil && i >= p.active {
		return "parked"
	}
	if p.breaker == nil || p.health[i] == memberUp {
		return "up"
	}
	return "down"
}

// Routed returns the cumulative requests routed to each member
// (rejected acquisitions excluded).
func (p *Pool) Routed() []uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]uint64(nil), p.routed...)
}

// MemberStats snapshots every member gate, in member order.
func (p *Pool) MemberStats() []Stats {
	out := make([]Stats, len(p.members))
	for i, g := range p.members {
		out[i] = g.Stats()
	}
	return out
}

// Stats aggregates the pool: counters and queue lengths sum across
// members, mean times are completion-weighted, and Limit is the
// fleet-wide limit (0 if any member is unlimited). Per-class means and
// percentiles are per-member quantities — read them from MemberStats.
// Shards carries each member's instantaneous state; this is a
// CUMULATIVE snapshot, so Shards[i].Dispatched is the lifetime routed
// count (like Dropped/Canceled, it survives ResetStats) while
// Shards[i].Completed covers the member's current metrics window.
func (p *Pool) Stats() Stats {
	members := p.MemberStats()
	routed := p.Routed()
	p.mu.Lock()
	speeds := append([]float64(nil), p.speeds...)
	var states []string
	var avail []float64
	if p.breaker != nil || p.asc != nil {
		now := p.clock.Now()
		states = make([]string, len(p.members))
		avail = make([]float64, len(p.members))
		for i := range p.members {
			states[i], avail[i] = "up", 1
			if p.breaker != nil {
				if p.health[i] != memberUp {
					states[i] = "down"
				}
				avail[i] = p.availabilityLocked(i, now)
			}
			if p.asc != nil && i >= p.active {
				states[i] = "parked"
			}
		}
	}
	p.mu.Unlock()
	var out Stats
	unlimited := false
	var wResp, wWait, wInside float64
	for i, m := range members {
		if i == 0 || m.Time > out.Time {
			out.Time = m.Time
		}
		if m.Window > out.Window {
			out.Window = m.Window
		}
		if m.Limit == 0 {
			unlimited = true
		}
		out.Limit += m.Limit
		out.Inflight += m.Inflight
		out.Queued += m.Queued
		out.Completed += m.Completed
		out.Throughput += m.Throughput
		out.Dropped += m.Dropped
		out.Canceled += m.Canceled
		out.Errors += m.Errors
		c := float64(m.Completed)
		wResp += c * m.MeanResponse
		wWait += c * m.MeanWait
		wInside += c * m.MeanInside
		ss := metrics.ShardStat{
			Shard:        i,
			Speed:        speeds[i],
			Limit:        m.Limit,
			Inflight:     m.Inflight,
			Queued:       m.Queued,
			Dispatched:   routed[i],
			Completed:    m.Completed,
			Availability: 1,
		}
		if states != nil {
			ss.State = states[i]
			ss.Availability = avail[i]
		}
		out.Shards = append(out.Shards, ss)
	}
	if unlimited {
		out.Limit = 0
	}
	if out.Completed > 0 {
		n := float64(out.Completed)
		out.MeanResponse = wResp / n
		out.MeanWait = wWait / n
		out.MeanInside = wInside / n
	}
	return out
}

// Limit returns the fleet-wide limit: the sum of member limits, 0 if
// any member is unlimited.
func (p *Pool) Limit() int {
	total := 0
	for _, g := range p.members {
		m := g.Limit()
		if m == 0 {
			return 0
		}
		total += m
	}
	return total
}

// SetLimit distributes a fleet-wide limit across the members (an even
// share each, remainder to the lowest indices, at least 1 per member
// when n > 0; 0 = all unlimited — see cluster.SplitMPL). With the
// breaker armed the split covers only the healthy members, and the
// pool remembers n so capacity keeps following trips and recoveries.
func (p *Pool) SetLimit(n int) {
	if n < 0 {
		n = 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.breaker != nil {
		p.fleetLimit = n
		if n == 0 {
			for _, g := range p.members {
				g.SetLimit(0)
			}
			return
		}
		p.resplitLocked()
		return
	}
	for i, m := range cluster.SplitMPL(n, len(p.members)) {
		p.members[i].SetLimit(m)
	}
}

// ResetStats opens a fresh metrics window on every member.
func (p *Pool) ResetStats() {
	for _, g := range p.members {
		g.ResetStats()
	}
}

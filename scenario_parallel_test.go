package extsched

import (
	"context"
	"reflect"
	"testing"

	"extsched/metrics"
)

// parallelFingerprint is one entry in the cross-engine equivalence
// battery: a Config and a Scenario lifted verbatim from the repo's
// fingerprint determinism tests.
type parallelFingerprint struct {
	name string
	cfg  Config
	sc   Scenario
}

// parallelFingerprints returns the five fingerprint scenarios (the
// same Config+Scenario pairs the sequential determinism gates run).
// Building them in a function keeps each subtest on pristine values.
func parallelFingerprints() []parallelFingerprint {
	slow := ShardSpeedEvent{Shard: 1, Speed: 0.25}
	recover := ShardSpeedEvent{Shard: 1, Speed: 1}
	victim := 3
	return []parallelFingerprint{
		{
			name: "fig7",
			cfg:  Config{SetupID: 1, MPL: 4, PercentileSamples: 2000, Seed: 11},
			sc: Scenario{
				Name:           "accept",
				Warmup:         10,
				SampleInterval: 10,
				Phases: []Phase{
					{Name: "steady", Kind: PhaseClosed, Clients: 50, Duration: 40},
					{Name: "surge", Kind: PhaseRamp, Lambda: 30, Lambda2: 90, Duration: 40},
					{Name: "replay", Kind: PhaseTrace, Duration: 40, TraceSynth: &TraceSynth{
						N: 4000, MeanDemand: 0.008, DemandC2: 2, Lambda: 80, Seed: 5,
					}},
				},
			},
		},
		{
			name: "sharded-dispatch",
			cfg: Config{
				SetupID: 1, MPL: 8, Seed: 21,
				Shards: ShardSpec{Count: 2, Dispatch: "jsq"},
			},
			sc: Scenario{
				Name:           "shard-slowdown",
				Warmup:         10,
				SampleInterval: 10,
				Phases: []Phase{
					{Name: "steady", Kind: PhaseClosed, Clients: 40, Duration: 60,
						Events: []Event{{At: 20, SetShardSpeed: &slow}}},
					{Name: "recovered", Kind: PhaseOpen, Lambda: 40, Duration: 60,
						Events: []Event{{At: 10, SetShardSpeed: &recover, SetDispatch: "lwl"}}},
				},
			},
		},
		{
			name: "slo-shedding",
			cfg:  Config{SetupID: 1, MPL: 12, PercentileSamples: 2000, Seed: 31},
			sc: Scenario{
				Name:           "slo-shedding",
				Warmup:         10,
				SampleInterval: 10,
				Phases: []Phase{
					{Name: "steady", Kind: PhaseOpen, Lambda: 65, Duration: 60,
						Events: []Event{{
							SetSLO:           &SLOSpec{Class: "high", Target: 0.4},
							SetAdmitDeadline: &AdmitDeadline{Low: 1.5},
						}}},
					{Name: "burst", Kind: PhaseBurst, Lambda: 105, BurstFactor: 3, BurstPeriod: 15, Duration: 60},
					{Name: "recover", Kind: PhaseOpen, Lambda: 55, Duration: 60},
				},
			},
		},
		{
			name: "churn",
			cfg: Config{
				SetupID: 1, MPL: 12, Seed: 21,
				Shards:   ShardSpec{Count: 4, Dispatch: "jsq"},
				Recovery: &RecoverySpec{Mode: RecoveryResubmit, RetryBudget: 3},
			},
			sc: Scenario{
				Name:           "churn",
				Warmup:         10,
				SampleInterval: 15,
				Phases: []Phase{
					{Name: "steady", Kind: PhaseOpen, Lambda: 280, Duration: 60},
					{Name: "burst", Kind: PhaseBurst, Lambda: 330, BurstFactor: 2,
						BurstPeriod: 10, Duration: 60,
						Events: []Event{
							{At: 15, ShardFail: &victim},
							{At: 40, ShardRecover: &victim},
						}},
					{Name: "recovered", Kind: PhaseOpen, Lambda: 220, Duration: 60},
				},
			},
		},
		{
			name: "autoscale",
			cfg: Config{
				SetupID: 1, MPL: 12, Seed: 31,
				Shards: ShardSpec{Count: 4, Dispatch: "jsq-d:3"},
			},
			sc: Scenario{
				Name:           "diurnal",
				Warmup:         5,
				SampleInterval: 15,
				Autoscale: &AutoscaleSpec{
					Min: 4, Max: 64,
					Interval:  2,
					HighWater: 6, LowWater: 1.5,
					BreachWindows: 2, CalmWindows: 4,
					Cooldown:    3,
					MPLPerShard: 3,
				},
				Phases: []Phase{
					{Name: "morning", Kind: PhaseRamp, Lambda: 80, Lambda2: 600, Duration: 60},
					{Name: "peak", Kind: PhaseOpen, Lambda: 600, Duration: 40},
					{Name: "evening", Kind: PhaseRamp, Lambda: 600, Lambda2: 50, Duration: 60},
					{Name: "night", Kind: PhaseOpen, Lambda: 50, Duration: 60},
				},
			},
		},
	}
}

// TestParallelEquivalenceBattery is the tentpole acceptance gate for
// conservative-parallel runs: every fingerprint scenario, run once
// sequentially and once with ParallelShards on (each on a fresh System
// with the same Config), produces a DeepEqual Result and snapshot
// stream. Per-shard streams stay bit-identical because each shard's
// event order is untouched by the decomposition; the aggregate matches
// because the member→coordinator replay reproduces the sequential
// interleaving. Run under -race with -cpu 2,4 in CI, so the window
// workers get real parallelism.
func TestParallelEquivalenceBattery(t *testing.T) {
	for _, fp := range parallelFingerprints() {
		fp := fp
		t.Run(fp.name, func(t *testing.T) {
			t.Parallel()
			seqSys, err := NewSystem(fp.cfg)
			if err != nil {
				t.Fatal(err)
			}
			var seqObs metrics.Collector
			seqRes, err := seqSys.Run(context.Background(), fp.sc, &seqObs)
			if err != nil {
				t.Fatal(err)
			}

			parSys, err := NewSystem(fp.cfg)
			if err != nil {
				t.Fatal(err)
			}
			psc := fp.sc
			psc.ParallelShards = true
			var parObs metrics.Collector
			parRes, err := parSys.Run(context.Background(), psc, &parObs)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(seqRes, parRes) {
				t.Errorf("parallel Result differs from sequential:\nseq: %+v\npar: %+v", seqRes.Total, parRes.Total)
				for i := range seqRes.Shards {
					if i < len(parRes.Shards) && !reflect.DeepEqual(seqRes.Shards[i], parRes.Shards[i]) {
						t.Errorf("shard %d:\nseq: %+v\npar: %+v", i, seqRes.Shards[i], parRes.Shards[i])
					}
				}
			}
			if !reflect.DeepEqual(seqObs.Snapshots, parObs.Snapshots) {
				n := len(seqObs.Snapshots)
				if m := len(parObs.Snapshots); m != n {
					t.Fatalf("snapshot counts differ: seq %d, par %d", n, m)
				}
				for i := range seqObs.Snapshots {
					if !reflect.DeepEqual(seqObs.Snapshots[i], parObs.Snapshots[i]) {
						t.Errorf("snapshot %d differs:\nseq: %+v\npar: %+v", i, seqObs.Snapshots[i], parObs.Snapshots[i])
						break
					}
				}
			}
		})
	}
}

// TestParallelRerunBitIdentical pins that a parallel run is also
// deterministic against itself: two ParallelShards runs on one System
// are bit-identical, independent of goroutine scheduling.
func TestParallelRerunBitIdentical(t *testing.T) {
	fp := parallelFingerprints()[3] // churn: failures + retries + 4 shards
	sys, err := NewSystem(fp.cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := fp.sc
	sc.ParallelShards = true
	var obs1, obs2 metrics.Collector
	r1, err := sys.Run(context.Background(), sc, &obs1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Run(context.Background(), sc, &obs2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("parallel re-run not bit-identical:\n%+v\nvs\n%+v", r1.Total, r2.Total)
	}
	if !reflect.DeepEqual(obs1.Snapshots, obs2.Snapshots) {
		t.Error("parallel observer streams differ between re-runs")
	}
}

// TestParallelControllerRejected pins the documented restriction: the
// feedback controller actuates per completion, so enable_controller
// with parallel_shards must fail scenario validation.
func TestParallelControllerRejected(t *testing.T) {
	sc := Scenario{
		ParallelShards: true,
		Phases: []Phase{
			{Kind: PhaseOpen, Lambda: 10, Duration: 5,
				Events: []Event{{EnableController: &ControllerSpec{MaxThroughputLoss: 0.2}}}},
		},
	}
	if err := sc.Validate(); err == nil {
		t.Fatal("enable_controller with parallel_shards validated, want error")
	}
}

// Package mmc provides the M/M/c (Erlang-C) closed forms used to
// validate the simulator's multi-core CPU pool: c servers, Poisson
// arrivals, exponential service. Together with the M/G/1 and QBD
// references, this pins down every service station the DBMS simulator
// is built from.
package mmc

import (
	"fmt"
	"math"
)

// Params describes an M/M/c queue.
type Params struct {
	Lambda  float64 // arrival rate
	Mu      float64 // per-server service rate
	Servers int     // c
}

// Validate checks stability (λ < cμ).
func (p Params) Validate() error {
	if p.Lambda <= 0 || p.Mu <= 0 || p.Servers < 1 {
		return fmt.Errorf("mmc: invalid parameters %+v", p)
	}
	if p.Rho() >= 1 {
		return fmt.Errorf("mmc: unstable queue, rho = %v >= 1", p.Rho())
	}
	return nil
}

// Rho returns the per-server utilization λ/(cμ).
func (p Params) Rho() float64 { return p.Lambda / (float64(p.Servers) * p.Mu) }

// offered returns the offered load a = λ/μ in Erlangs.
func (p Params) offered() float64 { return p.Lambda / p.Mu }

// ErlangC returns the probability an arrival must wait,
// C(c, a) = (a^c/c!) / ((1−ρ)·Σ_{k<c} a^k/k! + a^c/c!).
func (p Params) ErlangC() float64 {
	a := p.offered()
	c := p.Servers
	// Accumulate a^k/k! iteratively for numerical stability.
	term := 1.0 // a^0/0!
	sum := term
	for k := 1; k < c; k++ {
		term *= a / float64(k)
		sum += term
	}
	top := term * a / float64(c) // a^c/c!
	rho := p.Rho()
	return top / ((1-rho)*sum + top)
}

// MeanWait returns E[W] = C(c,a) / (cμ − λ).
func (p Params) MeanWait() float64 {
	denom := float64(p.Servers)*p.Mu - p.Lambda
	if denom <= 0 {
		return math.Inf(1)
	}
	return p.ErlangC() / denom
}

// MeanResponse returns E[T] = E[W] + 1/μ.
func (p Params) MeanResponse() float64 { return p.MeanWait() + 1/p.Mu }

// MeanJobs returns E[N] by Little's law.
func (p Params) MeanJobs() float64 { return p.Lambda * p.MeanResponse() }

package cluster

import (
	"fmt"

	"extsched/internal/core"
	"extsched/internal/dbfe"
	"extsched/internal/dbms"
)

// ShardSeed derives shard i's backend seed from the run seed: distinct
// per shard (replicas must not execute in RNG lockstep) and stable
// across runs. It is THE seed derivation — extsched stack assembly and
// the experiment drivers both use it, so figure runs and API runs with
// the same seed build identical fleets.
func ShardSeed(seed uint64, i int) uint64 {
	return seed ^ (0x9e3779b97f4a7c15 * uint64(i+1))
}

// Shard is one dispatch target: an MPL-gated frontend over its own
// simulated backend. Speed is the shard's relative CPU speed (1 =
// nominal); the dispatcher keeps it in sync with the DB's CPUSpeed so
// work-aware policies can normalize.
type Shard struct {
	FE    *dbfe.Frontend
	DB    *dbms.DB
	Speed float64
}

// Dispatcher fans one admitted transaction stream out across shards.
// It satisfies workload.Sink (drivers submit to it exactly as they
// would to a single frontend) and controller.Gate (the feedback
// controller tunes the cluster-wide MPL through it), which is what
// lets every existing scenario construct — phases, events, AutoTune —
// run unchanged against a fleet.
//
// Like the rest of the simulator it is single-goroutine: all entry
// points run inside the engine's event loop, and every routing
// decision is a pure function of simulation state plus the policy's
// own deterministic state, so multi-shard runs rerun bit-identically.
type Dispatcher struct {
	shards []Shard
	policy Policy
	// mpl is the cluster-wide limit last requested via SetMPL (or
	// derived from the shard gates at construction). MPL() reports it
	// as-is so a feedback controller always observes its own
	// actuations; the EFFECTIVE fleet cap is max(mpl, len(shards))
	// when mpl > 0, because every shard keeps at least one slot (see
	// SplitMPL).
	mpl int
	// work tracks outstanding size-hint seconds per shard (routed and
	// not yet completed, at unit speed) for the least-work policy.
	work []float64
	// scratch is the reusable per-pick load view (the dispatcher is
	// single-goroutine, like the engine it runs under), keeping the
	// per-transaction routing path allocation-free.
	scratch []Load
	// routed counts arrivals routed to each shard (drops excluded).
	routed []uint64
	// OnComplete, if set, observes every completion with the index of
	// the shard that executed it. Set before traffic flows.
	OnComplete func(shard int, t *dbfe.Txn)
	// OnDrop, if set, observes admission-control rejections (shard
	// queue limits) with the shard that rejected.
	OnDrop func(shard int, t *dbfe.Txn)
}

// NewDispatcher builds a dispatcher over shards (at least one) with
// the given policy (nil = round-robin). The dispatcher takes ownership
// of each shard frontend's OnComplete/OnDrop hooks; zero or negative
// shard speeds default to 1.
func NewDispatcher(policy Policy, shards []Shard) (*Dispatcher, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: dispatcher needs at least one shard")
	}
	if policy == nil {
		policy = &RoundRobin{}
	}
	d := &Dispatcher{
		shards:  append([]Shard(nil), shards...),
		policy:  policy,
		work:    make([]float64, len(shards)),
		scratch: make([]Load, len(shards)),
		routed:  make([]uint64, len(shards)),
	}
	for i := range d.shards {
		if d.shards[i].FE == nil {
			return nil, fmt.Errorf("cluster: shard %d has no frontend", i)
		}
		if d.shards[i].Speed <= 0 {
			d.shards[i].Speed = 1
		}
		i := i
		d.shards[i].FE.OnComplete = func(t *dbfe.Txn) {
			if d.OnComplete != nil {
				d.OnComplete(i, t)
			}
		}
		d.shards[i].FE.OnDrop = func(t *dbfe.Txn) {
			// The drop fires synchronously inside SubmitCB, after the
			// routing charge there: refund it. (The per-txn completion
			// wrapper never runs for a dropped txn.)
			d.settle(i, t.Item.SizeHint)
			d.routed[i]--
			if d.OnDrop != nil {
				d.OnDrop(i, t)
			}
		}
	}
	// Derive the initial cluster-wide limit from the shard gates.
	for i := range d.shards {
		m := d.shards[i].FE.MPL()
		if m == 0 {
			d.mpl = 0
			break
		}
		d.mpl += m
	}
	return d, nil
}

// settle refunds a shard's outstanding-work charge.
func (d *Dispatcher) settle(i int, size float64) {
	d.work[i] -= size
	if d.work[i] < 0 {
		d.work[i] = 0
	}
}

// NumShards returns the shard count.
func (d *Dispatcher) NumShards() int { return len(d.shards) }

// Shards returns a copy of the shard descriptors.
func (d *Dispatcher) Shards() []Shard { return append([]Shard(nil), d.shards...) }

// PolicyName returns the active dispatch policy's name.
func (d *Dispatcher) PolicyName() string { return d.policy.Name() }

// SetPolicy switches the dispatch policy mid-run (scenario SetDispatch
// events). nil resets to round-robin.
func (d *Dispatcher) SetPolicy(p Policy) {
	if p == nil {
		p = &RoundRobin{}
	}
	d.policy = p
}

// SetSpeed changes shard i's relative CPU speed: the shard's DB slows
// or recovers for CPU bursts starting after the call, and work-aware
// policies renormalize immediately. Modeling a failed shard is
// SetSpeed(i, small) — never zero; a zero-speed shard would strand
// admitted work forever.
func (d *Dispatcher) SetSpeed(i int, speed float64) error {
	if i < 0 || i >= len(d.shards) {
		return fmt.Errorf("cluster: shard %d out of range [0,%d)", i, len(d.shards))
	}
	if speed <= 0 {
		return fmt.Errorf("cluster: shard speed %v must be positive", speed)
	}
	d.shards[i].Speed = speed
	if d.shards[i].DB != nil {
		d.shards[i].DB.SetCPUSpeed(speed)
	}
	return nil
}

// loadsInto fills the reusable scratch view for one pick.
func (d *Dispatcher) loadsInto() []Load {
	loads := d.scratch[:len(d.shards)]
	for i := range d.shards {
		fe := d.shards[i].FE
		loads[i] = Load{
			Backlog: fe.QueueLen() + fe.Inside(),
			Work:    d.work[i],
			Speed:   d.shards[i].Speed,
		}
	}
	return loads
}

// Loads snapshots the per-shard load views a dispatch decision sees.
func (d *Dispatcher) Loads() []Load {
	return append([]Load(nil), d.loadsInto()...)
}

// Routed returns the cumulative arrivals routed to each shard.
func (d *Dispatcher) Routed() []uint64 { return append([]uint64(nil), d.routed...) }

// Submit routes a transaction to a shard chosen by the policy.
func (d *Dispatcher) Submit(p dbms.TxnProfile) *dbfe.Txn {
	return d.SubmitCB(p, nil)
}

// SubmitCB is Submit with a per-transaction completion callback. The
// routing decision is made at submission time from the shards' current
// loads; under a shard queue limit the transaction may still be
// dropped by the chosen shard (counted there, reported to OnDrop —
// the dispatcher does not retry another shard).
func (d *Dispatcher) SubmitCB(p dbms.TxnProfile, cb func(*dbfe.Txn)) *dbfe.Txn {
	i := d.policy.Pick(d.loadsInto(), core.Class(p.Class), p.EstimatedDemand)
	if i < 0 || i >= len(d.shards) {
		panic(fmt.Sprintf("cluster: policy %s picked shard %d of %d", d.policy.Name(), i, len(d.shards)))
	}
	d.work[i] += p.EstimatedDemand
	d.routed[i]++
	// The work refund must land in the per-txn completion callback,
	// which the gate runs BEFORE its frontend-wide OnComplete hook: a
	// closed-loop client resubmitting from its own callback must see
	// the just-freed shard's work already settled, or least-work
	// routing would be steered away from exactly the shard that freed
	// capacity.
	return d.shards[i].FE.SubmitCB(p, func(t *dbfe.Txn) {
		d.settle(i, t.Item.SizeHint)
		if cb != nil {
			cb(t)
		}
	})
}

// SplitMPL distributes a cluster-wide MPL across n shards: an even
// share each, the remainder to the lowest indices, and at least 1 per
// shard when total > 0 (an MPL of 0 means unlimited, which a nonzero
// total must never silently grant — so the effective total is
// max(total, n)). total <= 0 returns all zeros (every shard
// unlimited).
func SplitMPL(total, n int) []int {
	out := make([]int, n)
	if total <= 0 {
		return out
	}
	base, rem := total/n, total%n
	for i := range out {
		m := base
		if i < rem {
			m++
		}
		if m < 1 {
			m = 1
		}
		out[i] = m
	}
	return out
}

// MPL returns the cluster-wide limit as last requested (0 =
// unlimited). It deliberately reports the REQUESTED value, not the
// sum of shard limits: SplitMPL floors every shard at one slot, so a
// request below the shard count is physically clamped to it — but a
// feedback controller probing downward must still observe its own
// actuation, or it would livelock re-issuing the same decrease
// forever.
func (d *Dispatcher) MPL() int { return d.mpl }

// SetMPL distributes a cluster-wide limit across the shards per
// SplitMPL (each shard keeps at least one slot, so the effective
// fleet cap is max(total, shards) when total > 0). This is the
// feedback controller's actuator: the loop tunes one number and the
// dispatcher keeps the fleet balanced.
func (d *Dispatcher) SetMPL(total int) {
	if total < 0 {
		total = 0
	}
	d.mpl = total
	for i, m := range SplitMPL(total, len(d.shards)) {
		d.shards[i].FE.SetMPL(m)
	}
}

// QueueLen returns the total external queue length across shards.
func (d *Dispatcher) QueueLen() int {
	n := 0
	for i := range d.shards {
		n += d.shards[i].FE.QueueLen()
	}
	return n
}

// Inside returns the total number of admitted, uncompleted items.
func (d *Dispatcher) Inside() int {
	n := 0
	for i := range d.shards {
		n += d.shards[i].FE.Inside()
	}
	return n
}

// Dropped returns the total admission-control rejections across shards.
func (d *Dispatcher) Dropped() uint64 {
	var n uint64
	for i := range d.shards {
		n += d.shards[i].FE.Dropped()
	}
	return n
}

// Canceled returns the total withdrawn submissions across shards.
func (d *Dispatcher) Canceled() uint64 {
	var n uint64
	for i := range d.shards {
		n += d.shards[i].FE.Canceled()
	}
	return n
}

// SetAdmitDeadline sets class c's admission deadline on every shard
// (0 clears it). Deadlines are measured per shard from the routed
// transaction's arrival there.
func (d *Dispatcher) SetAdmitDeadline(c core.Class, seconds float64) {
	for i := range d.shards {
		d.shards[i].FE.SetAdmitDeadline(c, seconds)
	}
}

// Shed returns the total deadline-shed count across shards.
func (d *Dispatcher) Shed() uint64 {
	var n uint64
	for i := range d.shards {
		n += d.shards[i].FE.Shed()
	}
	return n
}

// ShedByClass returns class c's share of the fleet's shed count.
func (d *Dispatcher) ShedByClass(c core.Class) uint64 {
	var n uint64
	for i := range d.shards {
		n += d.shards[i].FE.ShedByClass(c)
	}
	return n
}

// Metrics aggregates the shards' metrics windows into one cluster-wide
// view (parallel Welford merges; the window length is shard 0's, since
// all shards share one clock and reset together).
func (d *Dispatcher) Metrics() core.Metrics {
	var out core.Metrics
	for i := range d.shards {
		m := d.shards[i].FE.Metrics()
		out.Completed += m.Completed
		out.Restarts += m.Restarts
		out.All.Merge(&m.All)
		out.High.Merge(&m.High)
		out.Low.Merge(&m.Low)
		out.Inside.Merge(&m.Inside)
		out.ExtWait.Merge(&m.ExtWait)
		if i == 0 {
			out = out.WithWindow(m.Window())
		}
	}
	return out
}

// ResetMetrics opens a fresh metrics window on every shard.
func (d *Dispatcher) ResetMetrics() {
	for i := range d.shards {
		d.shards[i].FE.ResetMetrics()
	}
}

// SetWFQWeights reconfigures every shard's WFQ policy weights; false
// when the shards' queue policy is not WFQ.
func (d *Dispatcher) SetWFQWeights(weights map[core.Class]float64) bool {
	ok := true
	for i := range d.shards {
		ok = d.shards[i].FE.SetWFQWeights(weights) && ok
	}
	return ok
}

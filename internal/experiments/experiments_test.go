package experiments

import (
	"math"
	"strings"
	"testing"

	"extsched/internal/workload"
)

// fastOpts keeps simulation tests quick; shape assertions use wide
// tolerances accordingly.
var fastOpts = RunOpts{Warmup: 20, Measure: 150, Seed: 1}

func TestRunClosedBasics(t *testing.T) {
	setup, _ := workload.SetupByID(1)
	r, err := RunClosed(setup, 5, nil, workload.DBOptions{}, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput() < 50 || r.Throughput() > 150 {
		t.Errorf("setup 1 MPL 5 throughput = %v, want ~95", r.Throughput())
	}
	if r.MeanRT() <= 0 {
		t.Error("mean RT missing")
	}
	if r.CPUUtil <= 0.5 {
		t.Errorf("CPU util = %v, want high for CPU-bound saturated setup", r.CPUUtil)
	}
}

func TestRunClosedDeterministic(t *testing.T) {
	setup, _ := workload.SetupByID(1)
	a, err := RunClosed(setup, 5, nil, workload.DBOptions{}, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunClosed(setup, 5, nil, workload.DBOptions{}, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput() != b.Throughput() || a.MeanRT() != b.MeanRT() {
		t.Error("same-seed runs differ")
	}
}

// TestFig2Shape: single-CPU saturates by MPL ~5; two CPUs roughly
// double the plateau and need a higher MPL.
func TestFig2Shape(t *testing.T) {
	mpls := []int{1, 2, 5, 10, 20}
	one, err := ThroughputVsMPL(1, mpls, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	two, err := ThroughputVsMPL(2, mpls, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	onePlateau := one.Y[4]
	twoPlateau := two.Y[4]
	if ratio := twoPlateau / onePlateau; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("2-CPU/1-CPU plateau ratio = %v, want ~2", ratio)
	}
	// 1 CPU: MPL 5 already within 5% of MPL 20.
	if one.Y[2] < 0.95*onePlateau {
		t.Errorf("1 CPU at MPL 5 = %v, want >= 95%% of plateau %v", one.Y[2], onePlateau)
	}
	// 2 CPUs at MPL 2 is NOT yet at plateau (needs more).
	if two.Y[1] > 0.97*twoPlateau {
		t.Errorf("2 CPUs at MPL 2 = %v already at plateau %v; expected a later knee", two.Y[1], twoPlateau)
	}
}

// TestFig3Shape: the min MPL for near-max throughput grows with the
// disk count.
func TestFig3Shape(t *testing.T) {
	mpls := []int{1, 2, 5, 10, 20, 30}
	curves := map[int]Series{}
	for _, id := range []int{5, 8} { // 1 disk and 4 disks
		s, err := ThroughputVsMPL(id, mpls, fastOpts)
		if err != nil {
			t.Fatal(err)
		}
		curves[id] = s
	}
	// 1 disk saturates immediately: MPL 2 within 5% of MPL 30.
	if curves[5].Y[1] < 0.95*curves[5].Y[5] {
		t.Errorf("1 disk at MPL 2 = %v, plateau %v", curves[5].Y[1], curves[5].Y[5])
	}
	// 4 disks at MPL 2 is far from its plateau.
	if curves[8].Y[1] > 0.6*curves[8].Y[5] {
		t.Errorf("4 disks at MPL 2 = %v, plateau %v: knee too early", curves[8].Y[1], curves[8].Y[5])
	}
	// 4-disk plateau ≈ 4x the 1-disk plateau.
	if r := curves[8].Y[5] / curves[5].Y[5]; r < 3 || r > 4.6 {
		t.Errorf("4-disk/1-disk plateau ratio = %v, want ~4", r)
	}
}

// TestFig5Shape: RR throughput falls below UR at high MPL (lock
// thrashing), while both agree at low MPL.
func TestFig5Shape(t *testing.T) {
	mpls := []int{2, 5, 40}
	rr, err := ThroughputVsMPL(15, mpls, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	ur, err := ThroughputVsMPL(16, mpls, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rr.Y[0]-ur.Y[0])/ur.Y[0] > 0.1 {
		t.Errorf("RR and UR should agree at MPL 2: %v vs %v", rr.Y[0], ur.Y[0])
	}
	if rr.Y[2] > 0.85*ur.Y[2] {
		t.Errorf("RR at MPL 40 (%v) should fall well below UR (%v)", rr.Y[2], ur.Y[2])
	}
	if rr.Y[2] > rr.Y[1] {
		t.Errorf("RR should decline past the knee: MPL5=%v MPL40=%v", rr.Y[1], rr.Y[2])
	}
}

func TestFigure7LinearLoci(t *testing.T) {
	fig, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, n := range fig.Notes {
		if strings.Contains(n, "R²=") {
			found++
			if !strings.Contains(n, "R²=0.99") && !strings.Contains(n, "R²=1.0") {
				t.Errorf("locus not linear: %s", n)
			}
		}
	}
	if found != 2 {
		t.Errorf("expected 2 loci notes, got %d", found)
	}
}

func TestFigure10Shape(t *testing.T) {
	fig, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	// Locate series by name.
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	c2hi := byName["load0.7/C2=15"]
	ps := byName["load0.7/PS"]
	if len(c2hi.Y) == 0 || len(ps.Y) == 0 {
		t.Fatal("missing series")
	}
	// High C² at MPL 1 is far above PS; at MPL 35 close to PS.
	if c2hi.Y[0] < 2*ps.Y[0] {
		t.Errorf("C²=15 at MPL 1 (%v) should far exceed PS (%v)", c2hi.Y[0], ps.Y[0])
	}
	last := len(c2hi.Y) - 1
	if c2hi.Y[last] > 1.15*ps.Y[last] {
		t.Errorf("C²=15 at MPL 35 (%v) should approach PS (%v)", c2hi.Y[last], ps.Y[last])
	}
	// Load 0.9 needs a larger MPL: at MPL 10 the C²=15 curve is still
	// well above PS at load .9 but near it at load .7.
	c2hi9 := byName["load0.9/C2=15"]
	ps9 := byName["load0.9/PS"]
	idx10 := -1
	for i, x := range c2hi9.X {
		if x == 10 {
			idx10 = i
		}
	}
	if idx10 < 0 {
		t.Fatal("MPL 10 not in grid")
	}
	if c2hi9.Y[idx10] < 1.3*ps9.Y[idx10] {
		t.Errorf("load .9 C²=15 at MPL 10 (%v) should still be >1.3x PS (%v)", c2hi9.Y[idx10], ps9.Y[idx10])
	}
}

func TestFindMPLForLoss(t *testing.T) {
	setup, _ := workload.SetupByID(8) // 4 disks
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	mpl5, err := FindMPLForLoss(setup, base.Throughput(), 0.05, 60, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	mpl20, err := FindMPLForLoss(setup, base.Throughput(), 0.20, 60, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if mpl20 >= mpl5 {
		t.Errorf("20%%-loss MPL (%d) should be below 5%%-loss MPL (%d)", mpl20, mpl5)
	}
	if mpl5 < 4 {
		t.Errorf("5%%-loss MPL on 4 disks = %d, want >= 4", mpl5)
	}
	// Verify the chosen MPL actually meets the target.
	r, err := RunClosed(setup, mpl5, nil, workload.DBOptions{}, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput() < 0.93*base.Throughput() {
		t.Errorf("MPL %d gives %v, baseline %v: misses the 5%% target", mpl5, r.Throughput(), base.Throughput())
	}
}

func TestRunPrioritizationDifferentiates(t *testing.T) {
	r, err := RunPrioritization(1, 0.05, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Differentiation() < 2 {
		t.Errorf("differentiation = %.1fx, want >= 2x (res %+v)", r.Differentiation(), r)
	}
	if r.LowPenalty() > 2.0 {
		t.Errorf("low-priority penalty = %.2fx, want bounded", r.LowPenalty())
	}
	if r.Tput < 0.9*r.Baseline {
		t.Errorf("throughput %v lost more than ~5%%+noise vs baseline %v", r.Tput, r.Baseline)
	}
}

func TestCompareInternalExternal(t *testing.T) {
	comps, err := CompareInternalExternal(1, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 4 {
		t.Fatalf("variants = %d, want 4", len(comps))
	}
	byVariant := map[string]InternalComparison{}
	for _, c := range comps {
		byVariant[c.Variant] = c
	}
	internal := byVariant["internal"]
	ext95 := byVariant["ext95"]
	if internal.HighRT <= 0 || ext95.HighRT <= 0 {
		t.Fatal("missing results")
	}
	// Both must differentiate: high beats low.
	if internal.LowRT <= internal.HighRT {
		t.Errorf("internal: high %v not better than low %v", internal.HighRT, internal.LowRT)
	}
	if ext95.LowRT <= ext95.HighRT {
		t.Errorf("ext95: high %v not better than low %v", ext95.HighRT, ext95.LowRT)
	}
}

func TestSection32RTShape(t *testing.T) {
	// TPC-W-like workload at 70% utilization: RT at MPL 1 well above
	// RT at MPL 25 (HOL blocking by huge queries).
	fig, err := Section32RT(3, 0.7, []int{1, 8, 25}, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if s.Y[0] < 1.5*s.Y[2] {
		t.Errorf("MPL 1 RT (%v) should far exceed MPL 25 RT (%v) for C²≈15", s.Y[0], s.Y[2])
	}
}

func TestC2TableValues(t *testing.T) {
	rows, err := C2Table(100000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 6 workloads + 2 traces", len(rows))
	}
	for _, r := range rows {
		switch {
		case strings.Contains(r.Source, "TPC-C"):
			if r.C2 < 0.3 || r.C2 > 2.5 {
				t.Errorf("%s: C² = %v, want low", r.Source, r.C2)
			}
		case strings.Contains(r.Source, "TPC-W"):
			if r.C2 < 8 || r.C2 > 25 {
				t.Errorf("%s: C² = %v, want ~15", r.Source, r.C2)
			}
		case strings.Contains(r.Source, "trace"):
			if r.C2 < 1.5 || r.C2 > 3.2 {
				t.Errorf("%s: C² = %v, want ~2", r.Source, r.C2)
			}
		}
	}
}

func TestControllerExperiment(t *testing.T) {
	r, err := RunController(1, 0.05, true, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Errorf("did not converge: %+v", r)
	}
	if r.Iterations >= 10 {
		t.Errorf("iterations = %d, want < 10", r.Iterations)
	}
}

func TestFigureFormatAndCSV(t *testing.T) {
	fig := &Figure{
		ID:    "test",
		Title: "t",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{5, 6}},
		},
		Notes: []string{"n1"},
	}
	txt := fig.Format()
	if !strings.Contains(txt, "== test: t ==") || !strings.Contains(txt, "note: n1") {
		t.Errorf("Format missing parts:\n%s", txt)
	}
	csv := fig.CSV()
	if !strings.Contains(csv, "x,a,b") || !strings.Contains(csv, "1,3,5") {
		t.Errorf("CSV missing parts:\n%s", csv)
	}
}

func TestDefaultMPLsGrid(t *testing.T) {
	g := defaultMPLs(30)
	if g[0] != 1 {
		t.Error("grid must start at 1")
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Error("grid must be increasing")
		}
	}
	if g[len(g)-1] > 30 {
		t.Error("grid exceeded max")
	}
}

func TestGroupCommitAblation(t *testing.T) {
	fig, err := GroupCommitAblation(1, []int{20}, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	serial, grouped := fig.Series[0].Y[0], fig.Series[1].Y[0]
	// Group commit should not hurt, and on this commit-heavy workload
	// it should help at a high MPL.
	if grouped < serial*0.98 {
		t.Errorf("group commit hurt throughput: %v vs %v", grouped, serial)
	}
}

func TestPOWAblation(t *testing.T) {
	fig, err := POWAblation(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	high := byName["HighPrio RT (s)"]
	// Priority lock queues should improve high-class RT vs no priority.
	if high.Y[1] > high.Y[0] {
		t.Errorf("prio-queue high RT (%v) worse than no-priority (%v)", high.Y[1], high.Y[0])
	}
	// POW should record preemptions.
	pre := byName["preemptions"]
	if pre.Y[2] <= 0 {
		t.Error("POW recorded no preemptions on the lock-bound setup")
	}
}

func TestPolicyComparison(t *testing.T) {
	fig, err := PolicyComparison(3, 3, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	mean := byName["Mean RT (s)"]
	// SJF (x=1) beats FIFO (x=0) on overall mean RT for the
	// high-variability workload.
	if mean.Y[1] > mean.Y[0]*0.95 {
		t.Errorf("SJF mean RT (%v) should clearly beat FIFO (%v) at C²≈15", mean.Y[1], mean.Y[0])
	}
	// Priority (x=2) gives the best high-class RT.
	high := byName["HighPrio RT (s)"]
	if high.Y[2] > high.Y[0] {
		t.Errorf("priority high-class RT (%v) should beat FIFO (%v)", high.Y[2], high.Y[0])
	}
}

func TestAdmissionComparison(t *testing.T) {
	fig, err := AdmissionComparison(1, 5, 10, 0.9, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	drops := byName["dropped/s"]
	if drops.Y[0] != 0 {
		t.Error("pure external scheduling must not drop")
	}
	// With a tight queue bound at 90% load, some drops are expected.
	if drops.Y[1] < 0 {
		t.Error("negative drop rate")
	}
}

func TestChartRendering(t *testing.T) {
	fig := &Figure{
		ID:    "chart-test",
		Title: "t",
		Series: []Series{
			{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
			{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
		},
		Notes: []string{"hello"},
	}
	out := fig.Chart(40, 10)
	if !strings.Contains(out, "* = up") || !strings.Contains(out, "o = down") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "note: hello") {
		t.Error("notes missing")
	}
	// Corners: "up" hits top-right and bottom-left.
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("chart too short:\n%s", out)
	}
	top := lines[1]
	if !strings.Contains(top, "*") {
		t.Errorf("top row missing up-series marker:\n%s", out)
	}
	// Degenerate figures must not panic.
	empty := &Figure{ID: "e", Title: "e"}
	_ = empty.Chart(40, 10)
	flat := &Figure{ID: "f", Title: "f", Series: []Series{{Name: "c", X: []float64{1}, Y: []float64{5}}}}
	_ = flat.Chart(40, 10)
}

func TestChartMinimumDimensions(t *testing.T) {
	fig := &Figure{
		ID: "m", Title: "m",
		Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	out := fig.Chart(1, 1) // clamped to minimums, must not panic
	if len(out) == 0 {
		t.Error("empty chart")
	}
}

func TestSection32Summary(t *testing.T) {
	fig, err := Section32Summary(0.15, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.Y) != 4 {
		t.Fatalf("cells = %d, want 4", len(s.Y))
	}
	tpccAt7, tpccAt9 := int(s.Y[0]), int(s.Y[1])
	tpcwAt7, tpcwAt9 := int(s.Y[2]), int(s.Y[3])
	// TPC-C-like: small MPLs suffice at both loads.
	if tpccAt7 > 8 || tpccAt9 > 10 {
		t.Errorf("TPC-C min MPLs = %d/%d, want small", tpccAt7, tpccAt9)
	}
	// TPC-W-like needs more, and more still at higher load.
	if tpcwAt7 < tpccAt7 {
		t.Errorf("TPC-W at 70%% (%d) should need >= TPC-C (%d)", tpcwAt7, tpccAt7)
	}
	if tpcwAt9 < tpcwAt7 {
		t.Errorf("TPC-W at 90%% (%d) should need >= 70%% (%d)", tpcwAt9, tpcwAt7)
	}
}

// Package autoscale is the fleet-sizing controller: the third feedback
// loop in the family after the MPL controller (how many transactions
// may run inside one backend) and the SLO controller (how the limit
// splits across classes). This one decides how many SHARDS should
// exist at all, growing the fleet when observed per-shard load breaches
// a high-water mark and shrinking it again after a sustained calm.
//
// The kernel is deliberately pure and clock-free: Observe(now, up,
// signal) returns a Decision and mutates only the controller's own
// counters. The caller — internal/runner on a simulated engine timer,
// gate.Pool on a wall-clock ticker — owns the actuation (recover or
// add a shard, drain one out) and the cadence. Purity is what makes
// autoscaled simulation runs rerun bit-identically and lets the same
// hysteresis logic serve both clocks.
//
// # Hysteresis
//
// Scaling reacts asymmetrically on purpose: capacity shortfalls hurt
// immediately (queues build, p95 blows through the SLO), while excess
// capacity only costs money. So scale-up triggers after BreachWindows
// consecutive observations at or above HighWater, scale-down only
// after the longer CalmWindows run at or below LowWater, and both
// respect a Cooldown so the controller never reacts to load the
// previous action has not yet absorbed. Observations strictly between
// the two water marks reset both runs — the dead band that keeps the
// fleet from oscillating when load hovers near a threshold.
package autoscale

import "fmt"

// Config bounds and tunes the controller. The zero value is not
// usable: Min and Max are required; everything else defaults.
type Config struct {
	// Min and Max bound the Up-shard count. Min >= 1, Max >= Min.
	Min, Max int
	// Interval is the seconds between evaluations (> 0; default 1).
	// The caller ticks at this cadence; the controller itself only uses
	// it to default the cooldown.
	Interval float64
	// HighWater is the per-up-shard backlog (queued + in flight,
	// divided by Up shards) at or above which an interval counts as
	// overloaded. Default 8.
	HighWater float64
	// LowWater is the per-up-shard backlog at or below which an
	// interval counts as calm. Default HighWater/4. Must be strictly
	// below HighWater.
	LowWater float64
	// BreachWindows is the consecutive overloaded intervals required to
	// scale up (default 2).
	BreachWindows int
	// CalmWindows is the consecutive calm intervals required to scale
	// down (default 3*BreachWindows: shrinking is the slow direction).
	CalmWindows int
	// Cooldown is the minimum seconds between actions (default
	// 2*Interval).
	Cooldown float64
}

// low reports the effective low-water mark.
func (c Config) low() float64 {
	if c.LowWater > 0 {
		return c.LowWater
	}
	return c.HighWater / 4
}

// withDefaults fills the optional fields.
func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 1
	}
	if c.HighWater <= 0 {
		c.HighWater = 8
	}
	c.LowWater = c.low()
	if c.BreachWindows <= 0 {
		c.BreachWindows = 2
	}
	if c.CalmWindows <= 0 {
		c.CalmWindows = 3 * c.BreachWindows
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * c.Interval
	}
	return c
}

// Validate rejects unusable configurations loudly; it applies the
// same defaults withDefaults would, so a config that validates is the
// config that runs.
func (c Config) Validate() error {
	if c.Min < 1 {
		return fmt.Errorf("autoscale: min fleet %d must be >= 1", c.Min)
	}
	if c.Max < c.Min {
		return fmt.Errorf("autoscale: max fleet %d below min %d", c.Max, c.Min)
	}
	if c.Interval < 0 {
		return fmt.Errorf("autoscale: interval %v must be positive", c.Interval)
	}
	if c.HighWater < 0 {
		return fmt.Errorf("autoscale: high water %v must be positive", c.HighWater)
	}
	if c.LowWater < 0 {
		return fmt.Errorf("autoscale: low water %v must not be negative", c.LowWater)
	}
	cd := c.withDefaults()
	if cd.LowWater >= cd.HighWater {
		return fmt.Errorf("autoscale: low water %v must be strictly below high water %v",
			cd.LowWater, cd.HighWater)
	}
	if c.BreachWindows < 0 || c.CalmWindows < 0 {
		return fmt.Errorf("autoscale: breach/calm windows must be positive (got %d/%d)",
			c.BreachWindows, c.CalmWindows)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("autoscale: cooldown %v must not be negative", c.Cooldown)
	}
	return nil
}

// Decision is what one observation asks the caller to do.
type Decision int

const (
	// Hold keeps the fleet as it is.
	Hold Decision = iota
	// ScaleUp asks for one more Up shard (recover a down one or add a
	// fresh one).
	ScaleUp
	// ScaleDown asks to drain one Up shard out.
	ScaleDown
)

// String names the decision for logs and test failures.
func (d Decision) String() string {
	switch d {
	case Hold:
		return "hold"
	case ScaleUp:
		return "scale-up"
	case ScaleDown:
		return "scale-down"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}

// Controller is the hysteresis state machine. Not safe for concurrent
// use; callers on a wall clock wrap it in their own lock.
type Controller struct {
	cfg        Config
	highRuns   int
	lowRuns    int
	lastAction float64
	acted      bool
	ups, downs uint64
}

// New builds a controller; cfg must validate.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg.withDefaults()}, nil
}

// Config returns the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// ScaleUps and ScaleDowns count the decisions issued so far.
func (c *Controller) ScaleUps() uint64   { return c.ups }
func (c *Controller) ScaleDowns() uint64 { return c.downs }

// Observe feeds one measurement: now is the clock, up the current
// Up-shard count, signal the per-up-shard backlog (or whatever load
// proxy the caller steers on). It returns the action the caller should
// take; bound enforcement (up outside [Min,Max]) overrides hysteresis
// and cooldown, because a fleet outside its bounds is a configuration
// violation, not a load signal.
func (c *Controller) Observe(now float64, up int, signal float64) Decision {
	if up < c.cfg.Min {
		return c.act(now, ScaleUp)
	}
	if up > c.cfg.Max {
		return c.act(now, ScaleDown)
	}
	switch {
	case signal >= c.cfg.HighWater:
		c.highRuns++
		c.lowRuns = 0
	case signal <= c.cfg.LowWater:
		c.lowRuns++
		c.highRuns = 0
	default:
		c.highRuns, c.lowRuns = 0, 0
	}
	if c.acted && now-c.lastAction < c.cfg.Cooldown {
		return Hold
	}
	if c.highRuns >= c.cfg.BreachWindows && up < c.cfg.Max {
		return c.act(now, ScaleUp)
	}
	if c.lowRuns >= c.cfg.CalmWindows && up > c.cfg.Min {
		return c.act(now, ScaleDown)
	}
	return Hold
}

// act records an action and resets the hysteresis runs.
func (c *Controller) act(now float64, d Decision) Decision {
	c.highRuns, c.lowRuns = 0, 0
	c.lastAction, c.acted = now, true
	switch d {
	case ScaleUp:
		c.ups++
	case ScaleDown:
		c.downs++
	}
	return d
}

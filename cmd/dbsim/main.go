// Command dbsim runs a single simulated-DBMS experiment and prints its
// metrics — the quickest way to poke at one configuration.
//
// Examples:
//
//	dbsim -setup 1 -mpl 5
//	dbsim -workload W_CPU-browsing -cpus 2 -mpl 8 -policy priority
//	dbsim -setup 8 -mpl 0 -measure 600      # no limit, long run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"extsched"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dbsim:", err)
		os.Exit(1)
	}
}

// run parses args, executes one simulation, and writes the report to
// out; split from main so tests can drive the tool in-process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dbsim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		setupID  = fs.Int("setup", 0, "Table 2 setup id (1-17)")
		wl       = fs.String("workload", "", "Table 1 workload name (with -cpus/-disks/-iso)")
		cpus     = fs.Int("cpus", 1, "CPUs (with -workload)")
		disks    = fs.Int("disks", 1, "data disks (with -workload)")
		iso      = fs.String("iso", "RR", "isolation level: RR, UR or SI")
		mpl      = fs.Int("mpl", 0, "multiprogramming limit (0 = unlimited)")
		policy   = fs.String("policy", "fifo", "external queue policy: fifo, priority, sjf, wfq")
		clients  = fs.Int("clients", 100, "closed-system client population")
		lambda   = fs.Float64("lambda", 0, "open-system arrival rate (0 = closed system)")
		warmup   = fs.Float64("warmup", 50, "warmup simulated seconds")
		measure  = fs.Float64("measure", 300, "measured simulated seconds")
		seed     = fs.Uint64("seed", 1, "random seed")
		lockPrio = fs.Bool("internal-lock-prio", false, "internal lock prioritization (POW)")
		cpuPrio  = fs.Bool("internal-cpu-prio", false, "internal CPU prioritization (renice)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}

	sys, err := extsched.NewSystem(extsched.Config{
		SetupID:              *setupID,
		Workload:             *wl,
		CPUs:                 *cpus,
		Disks:                *disks,
		Isolation:            *iso,
		MPL:                  *mpl,
		Policy:               *policy,
		InternalLockPriority: *lockPrio,
		InternalCPUPriority:  *cpuPrio,
		Seed:                 *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, sys.Setup())
	var rep extsched.Report
	if *lambda > 0 {
		rep, err = sys.RunOpen(*lambda, *warmup, *measure)
	} else {
		rep, err = sys.RunClosed(*clients, *warmup, *measure)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "mpl:              %d\n", sys.MPL())
	fmt.Fprintf(out, "completed:        %d txns in %.0f sim-seconds\n", rep.Completed, rep.SimSeconds)
	fmt.Fprintf(out, "throughput:       %.2f txn/s\n", rep.Throughput)
	fmt.Fprintf(out, "mean RT:          %.4f s (inside %.4f s, external wait %.4f s)\n",
		rep.MeanRT, rep.MeanInside, rep.ExternalW)
	fmt.Fprintf(out, "high-prio RT:     %.4f s\n", rep.HighRT)
	fmt.Fprintf(out, "low-prio RT:      %.4f s\n", rep.LowRT)
	fmt.Fprintf(out, "cpu util:         %.3f\n", rep.CPUUtil)
	fmt.Fprintf(out, "disk util:        %.3f\n", rep.DiskUtil)
	fmt.Fprintf(out, "lock waits:       %d (deadlocks %d, preemptions %d, restarts %d)\n",
		rep.LockWaits, rep.Deadlocks, rep.Preemptions, rep.Restarts)
	return nil
}

// Live gate demo: the paper's external scheduling loop running on a
// wall clock against real goroutines instead of the discrete-event
// simulator.
//
// A fake "legacy database" with a hard capacity of 4 workers serves 64
// impatient clients. Phase 1 measures the no-limit reference
// throughput (every client piles straight into the database, so its
// internal queue — and therefore its internal latency — is long).
// Phase 2 turns on the MPL gate with the Section 4.3 feedback
// controller: the limit walks down from a deliberately bad start (16)
// to the database's capacity, throughput stays within tolerance, and
// the latency *inside* the database collapses because the waiting now
// happens in the gate's external queue — where it is observable,
// reorderable, and cancellable.
//
//	go run ./examples/livegate
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"extsched/gate"
	"extsched/metrics"
)

const (
	dbCapacity = 4
	dbHold     = time.Millisecond
	clients    = 64
)

// db is the guarded resource: a worker pool of dbCapacity slots, each
// operation occupying one for dbHold.
type db struct {
	pool chan struct{}
}

func (d *db) query() (inside time.Duration) {
	start := time.Now()
	d.pool <- struct{}{}
	time.Sleep(dbHold)
	<-d.pool
	return time.Since(start)
}

func main() {
	g, err := gate.New(gate.Config{PercentileSamples: 10000})
	if err != nil {
		log.Fatal(err)
	}
	d := &db{pool: make(chan struct{}, dbCapacity)}

	var mu sync.Mutex
	var insideSum time.Duration
	var insideN int
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tk, err := g.Acquire(context.Background())
				if err != nil {
					return
				}
				inside := d.query()
				tk.Release(gate.Result{})
				mu.Lock()
				insideSum += inside
				insideN++
				mu.Unlock()
			}
		}()
	}
	meanInside := func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		if insideN == 0 {
			return 0
		}
		m := insideSum / time.Duration(insideN)
		insideSum, insideN = 0, 0
		return m
	}

	fmt.Printf("fake database: capacity %d, %v per query; %d closed-loop clients\n\n",
		dbCapacity, dbHold, clients)

	// Phase 1: no limit — measure the reference optimum the controller
	// will defend. Note the database-internal latency: every admitted
	// client queues inside the resource.
	fmt.Println("phase 1: gate unlimited (probe run, measuring the reference)")
	time.Sleep(300 * time.Millisecond) // warm up
	g.ResetStats()
	meanInside()
	time.Sleep(1500 * time.Millisecond)
	ref := g.Stats()
	refInside := meanInside()
	fmt.Printf("  throughput %7.0f/s   p95 %6.1fms   time inside the DB %6.1fms\n\n",
		ref.Throughput, ref.P95*1000, float64(refInside)/float64(time.Millisecond))

	// Phase 2: gate on, feedback controller tuning the limit against
	// the measured reference. Start deliberately high so the walk down
	// is visible.
	fmt.Println("phase 2: limit 16, controller targets <= 10% throughput loss")
	g.SetLimit(16)
	if err := g.EnableAutoTune(gate.TuneConfig{
		MaxThroughputLoss:   0.10,
		ReferenceThroughput: ref.Throughput,
		MinObservations:     100,
		MaxWindow:           1000,
		MaxLimit:            64,
	}); err != nil {
		log.Fatal(err)
	}
	// Stream the walk-down: Watch delivers the same metrics.Snapshot
	// vocabulary the simulator's scenario observers receive.
	converged := make(chan struct{})
	var once sync.Once
	stopWatch := g.Watch(0.5, metrics.ObserverFunc(func(s gate.Stats) {
		st := g.TuneStatus()
		fmt.Printf("  limit %3d   throughput %7.0f/s (%5.1f%% of ref)   queued %2d   iterations %d\n",
			st.Limit, s.Throughput, 100*s.Throughput/ref.Throughput, s.Queued, st.Iterations)
		if st.Converged {
			once.Do(func() { close(converged) })
		}
	}))
	select {
	case <-converged:
	case <-time.After(15 * time.Second):
	}
	stopWatch()

	st := g.TuneStatus()
	g.ResetStats()
	meanInside()
	time.Sleep(1500 * time.Millisecond)
	tuned := g.Stats()
	tunedInside := meanInside()
	close(stop)
	wg.Wait()

	fmt.Println()
	if st.Converged {
		fmt.Printf("converged at limit %d in %d iterations\n", st.Limit, st.Iterations)
	} else {
		fmt.Printf("not converged within the demo window (limit %d after %d iterations)\n",
			st.Limit, st.Iterations)
	}
	fmt.Printf("  throughput %7.0f/s (reference %7.0f/s, %5.1f%%)\n",
		tuned.Throughput, ref.Throughput, 100*tuned.Throughput/ref.Throughput)
	fmt.Printf("  time inside the DB %6.1fms -> %6.1fms: the backlog moved into the\n",
		float64(refInside)/float64(time.Millisecond), float64(tunedInside)/float64(time.Millisecond))
	fmt.Println("  gate's external queue, where it can be reordered, shed, or canceled —")
	fmt.Println("  the paper's external scheduling result, live on a wall clock.")
}

package gate

import (
	"context"
	"fmt"
	"sync"

	"extsched/internal/cluster"
	"extsched/internal/core"
	"extsched/metrics"
)

// PoolConfig assembles a Pool: a fleet of member gates behind one
// dispatch decision.
type PoolConfig struct {
	// Members is the number of member gates (>= 1).
	Members int
	// Dispatch names the routing policy: "rr" (default), "jsq", "lwl"
	// or "affinity" — the same policies the simulator's cluster
	// dispatcher uses, so simulated dispatch findings carry over.
	Dispatch string
	// Speeds are per-member relative speed hints for the "lwl" policy
	// (1 = nominal); empty means all 1, otherwise len must equal
	// Members. Update mid-run with SetMemberSpeed when a member
	// degrades.
	Speeds []float64
	// Member configures each member gate. Limit is PER MEMBER; so is
	// QueueLimit. Percentile sampling seeds are decorrelated per member
	// automatically.
	Member Config
}

// Pool is the live-traffic twin of the simulator's sharded dispatcher:
// Acquire routes each request to one member gate by the configured
// policy, so a fleet of replicas (connection pools, downstream
// backends) is gated and balanced by the same mechanism the paper's
// experiments validate per backend. All methods are safe for
// concurrent use.
type Pool struct {
	members []*Gate

	// mu serializes routing decisions and the outstanding-work
	// accounting behind them, so concurrent Acquires see consistent
	// loads and stateful policies (round-robin) stay correct.
	mu     sync.Mutex
	policy cluster.Policy
	work   []float64
	speeds []float64
	routed []uint64
}

// NewPool builds a pool of cfg.Members identical gates.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if cfg.Members < 1 {
		return nil, fmt.Errorf("gate: pool needs at least 1 member, got %d", cfg.Members)
	}
	if n := len(cfg.Speeds); n > 0 && n != cfg.Members {
		return nil, fmt.Errorf("gate: pool has %d speeds for %d members", n, cfg.Members)
	}
	policy, err := cluster.NewPolicy(cfg.Dispatch)
	if err != nil {
		return nil, fmt.Errorf("gate: %w", err)
	}
	p := &Pool{
		policy: policy,
		work:   make([]float64, cfg.Members),
		speeds: make([]float64, cfg.Members),
		routed: make([]uint64, cfg.Members),
	}
	for i := 0; i < cfg.Members; i++ {
		p.speeds[i] = 1
		if len(cfg.Speeds) > 0 {
			if cfg.Speeds[i] <= 0 {
				return nil, fmt.Errorf("gate: member %d speed %v must be positive", i, cfg.Speeds[i])
			}
			p.speeds[i] = cfg.Speeds[i]
		}
		mc := cfg.Member
		if mc.PercentileSamples > 0 {
			seed := mc.Seed
			if seed == 0 {
				seed = 1
			}
			mc.Seed = seed + uint64(i)
		}
		g, err := New(mc)
		if err != nil {
			return nil, err
		}
		p.members = append(p.members, g)
	}
	return p, nil
}

// Members returns the member count.
func (p *Pool) Members() int { return len(p.members) }

// Member returns member i's gate — for per-member tuning
// (EnableAutoTune, SetLimit, Watch) and inspection. Routing state
// stays with the pool; acquiring directly on a member bypasses the
// dispatch policy's work accounting.
func (p *Pool) Member(i int) *Gate { return p.members[i] }

// SetDispatch switches the routing policy at runtime.
func (p *Pool) SetDispatch(name string) error {
	policy, err := cluster.NewPolicy(name)
	if err != nil {
		return fmt.Errorf("gate: %w", err)
	}
	p.mu.Lock()
	p.policy = policy
	p.mu.Unlock()
	return nil
}

// SetMemberSpeed updates member i's relative speed hint (the "lwl"
// policy normalizes outstanding work by it).
func (p *Pool) SetMemberSpeed(i int, speed float64) error {
	if i < 0 || i >= len(p.members) {
		return fmt.Errorf("gate: member %d out of range [0,%d)", i, len(p.members))
	}
	if speed <= 0 {
		return fmt.Errorf("gate: member speed %v must be positive", speed)
	}
	p.mu.Lock()
	p.speeds[i] = speed
	p.mu.Unlock()
	return nil
}

// route picks a member for req and charges its work accounting.
func (p *Pool) route(req Request) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	loads := make([]cluster.Load, len(p.members))
	for i, g := range p.members {
		loads[i] = cluster.Load{
			Backlog: g.Queued() + g.Inflight(),
			Work:    p.work[i],
			Speed:   p.speeds[i],
		}
	}
	i := p.policy.Pick(loads, core.Class(req.Class), req.SizeHint)
	if i < 0 || i >= len(p.members) {
		panic(fmt.Sprintf("gate: dispatch policy %s picked member %d of %d", p.policy.Name(), i, len(p.members)))
	}
	p.work[i] += req.SizeHint
	p.routed[i]++
	return i
}

// unroute refunds a routing charge (the member rejected or the caller
// gave up before admission).
func (p *Pool) unroute(i int, size float64) {
	p.mu.Lock()
	p.work[i] -= size
	if p.work[i] < 0 {
		p.work[i] = 0
	}
	p.routed[i]--
	p.mu.Unlock()
}

// finish settles a completed request's work charge.
func (p *Pool) finish(i int, size float64) {
	p.mu.Lock()
	p.work[i] -= size
	if p.work[i] < 0 {
		p.work[i] = 0
	}
	p.mu.Unlock()
}

// Acquire waits for admission somewhere in the pool with default
// request attributes.
func (p *Pool) Acquire(ctx context.Context) (*PoolTicket, error) {
	return p.AcquireRequest(ctx, Request{})
}

// AcquireRequest routes the request to a member chosen by the dispatch
// policy, then waits for that member's admission. The routing decision
// is made once, at submission — the pool does not re-route a request
// that then waits behind the chosen member's queue (exactly the
// semantics of the simulated dispatcher, and of a connection handed to
// one replica). ErrQueueFull surfaces from the chosen member in
// admission-control mode.
func (p *Pool) AcquireRequest(ctx context.Context, req Request) (*PoolTicket, error) {
	i := p.route(req)
	tk, err := p.members[i].AcquireRequest(ctx, req)
	if err != nil {
		p.unroute(i, req.SizeHint)
		return nil, err
	}
	return &PoolTicket{t: tk, p: p, member: i, size: req.SizeHint}, nil
}

// PoolTicket is one admitted unit of work plus the routing it arrived
// by. Release it exactly once; a second Release is a no-op.
type PoolTicket struct {
	t      *Ticket
	p      *Pool
	member int
	size   float64
	once   sync.Once
}

// Member returns the index of the member gate that admitted the work.
func (t *PoolTicket) Member() int { return t.member }

// Release frees the slot on the admitting member and settles the
// pool's work accounting.
func (t *PoolTicket) Release(res Result) {
	t.once.Do(func() {
		t.p.finish(t.member, t.size)
		t.t.Release(res)
	})
}

// Routed returns the cumulative requests routed to each member
// (rejected acquisitions excluded).
func (p *Pool) Routed() []uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]uint64(nil), p.routed...)
}

// MemberStats snapshots every member gate, in member order.
func (p *Pool) MemberStats() []Stats {
	out := make([]Stats, len(p.members))
	for i, g := range p.members {
		out[i] = g.Stats()
	}
	return out
}

// Stats aggregates the pool: counters and queue lengths sum across
// members, mean times are completion-weighted, and Limit is the
// fleet-wide limit (0 if any member is unlimited). Per-class means and
// percentiles are per-member quantities — read them from MemberStats.
// Shards carries each member's instantaneous state; this is a
// CUMULATIVE snapshot, so Shards[i].Dispatched is the lifetime routed
// count (like Dropped/Canceled, it survives ResetStats) while
// Shards[i].Completed covers the member's current metrics window.
func (p *Pool) Stats() Stats {
	members := p.MemberStats()
	routed := p.Routed()
	p.mu.Lock()
	speeds := append([]float64(nil), p.speeds...)
	p.mu.Unlock()
	var out Stats
	unlimited := false
	var wResp, wWait, wInside float64
	for i, m := range members {
		if i == 0 || m.Time > out.Time {
			out.Time = m.Time
		}
		if m.Window > out.Window {
			out.Window = m.Window
		}
		if m.Limit == 0 {
			unlimited = true
		}
		out.Limit += m.Limit
		out.Inflight += m.Inflight
		out.Queued += m.Queued
		out.Completed += m.Completed
		out.Throughput += m.Throughput
		out.Dropped += m.Dropped
		out.Canceled += m.Canceled
		out.Errors += m.Errors
		c := float64(m.Completed)
		wResp += c * m.MeanResponse
		wWait += c * m.MeanWait
		wInside += c * m.MeanInside
		out.Shards = append(out.Shards, metrics.ShardStat{
			Shard:      i,
			Speed:      speeds[i],
			Limit:      m.Limit,
			Inflight:   m.Inflight,
			Queued:     m.Queued,
			Dispatched: routed[i],
			Completed:  m.Completed,
		})
	}
	if unlimited {
		out.Limit = 0
	}
	if out.Completed > 0 {
		n := float64(out.Completed)
		out.MeanResponse = wResp / n
		out.MeanWait = wWait / n
		out.MeanInside = wInside / n
	}
	return out
}

// Limit returns the fleet-wide limit: the sum of member limits, 0 if
// any member is unlimited.
func (p *Pool) Limit() int {
	total := 0
	for _, g := range p.members {
		m := g.Limit()
		if m == 0 {
			return 0
		}
		total += m
	}
	return total
}

// SetLimit distributes a fleet-wide limit across the members (an even
// share each, remainder to the lowest indices, at least 1 per member
// when n > 0; 0 = all unlimited — see cluster.SplitMPL).
func (p *Pool) SetLimit(n int) {
	if n < 0 {
		n = 0
	}
	for i, m := range cluster.SplitMPL(n, len(p.members)) {
		p.members[i].SetLimit(m)
	}
}

// ResetStats opens a fresh metrics window on every member.
func (p *Pool) ResetStats() {
	for _, g := range p.members {
		g.ResetStats()
	}
}

// SLO control: from throughput convergence to per-class latency
// targets.
//
// The paper's Section 4.3 loop tunes ONE number — the MPL — to keep
// aggregate throughput near the no-MPL optimum. Its Section 5
// prioritization experiments show that the external queue can
// differentiate transaction classes without touching the DBMS. The SLO
// controller here combines the two: given a fixed MPL, it partitions
// the slots across priority classes (core.Frontend class limits, with
// work-conserving borrowing) and steers the partition from the
// measured tail latency of the SLO class — growing that class's share
// while its percentile target is violated, handing slots back to the
// other classes once the target is met with margin, so their
// throughput is sacrificed only while the SLO needs it. Overload is
// not the partition's job: admission deadlines on the non-SLO classes
// (core.Frontend.SetAdmitDeadline) shed work that could not start in
// time, which is what keeps the queue — and therefore the SLO class's
// tail — bounded when the offered load exceeds capacity.
package controller

import (
	"fmt"
	"sync"

	"extsched/internal/core"
	"extsched/internal/sim"
)

// ClassGate is the control surface the SLO loop drives: a Gate that
// can additionally partition its MPL across classes and report
// per-class response-time percentiles. *core.Frontend implements it
// (percentile sampling must be enabled).
type ClassGate interface {
	Gate
	// SetClassLimits partitions the MPL (see core.Frontend).
	SetClassLimits(map[core.Class]int)
	// ClassLimits returns the current partition (nil = none).
	ClassLimits() map[core.Class]int
	// ClassResponseTimePercentile reports the class's p-th response-time
	// percentile over the current metrics window.
	ClassResponseTimePercentile(core.Class, float64) float64
}

// SLOTarget is one class's latency objective: the Percentile-th
// response-time percentile must stay at or below Target seconds.
type SLOTarget struct {
	// Class is the protected class (usually core.ClassHigh).
	Class core.Class
	// Percentile is the controlled percentile (e.g. 95); default 95.
	Percentile float64
	// Target is the latency bound in seconds. Required, > 0.
	Target float64
}

// SLOConfig tunes the SLO loop.
type SLOConfig struct {
	Target SLOTarget
	// OtherClass is the class the SLO class borrows slots from; left
	// zero (or equal to the target class) it defaults to the
	// complement — low for a high target, high for a low one. The
	// partition always covers exactly these two classes (the
	// repository's workloads are two-class).
	OtherClass core.Class
	// MinObservations gates window close: the window needs this many
	// completions overall AND a tenth of it (at least 5) from the SLO
	// class, so a reaction never steers on an unmeasured tail. Default
	// 50.
	MinObservations int
	// Margin is the give-back hysteresis: a slot moves back to the
	// other class only while the measured percentile is below
	// Margin×Target (default 0.5), so the partition does not oscillate
	// at the boundary.
	Margin float64
	// GiveBackHold is how many CONSECUTIVE below-margin windows it
	// takes to hand one slot back (default 4). Taking is per-window,
	// giving back is deliberately slower: with work-conserving
	// borrowing an oversized SLO share costs the other class almost
	// nothing while the SLO class is idle (the idle slots are lent
	// out), whereas an undersized share at the next burst costs the SLO
	// class its tail. Asymmetric pacing keeps the share from decaying
	// between burst episodes.
	GiveBackHold int
	// MinClassLimit floors each class's share; default 1.
	MinClassLimit int
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Target.Percentile == 0 {
		c.Target.Percentile = 95
	}
	if c.OtherClass == c.Target.Class {
		c.OtherClass = core.ClassLow
		if c.Target.Class == core.ClassLow {
			c.OtherClass = core.ClassHigh
		}
	}
	if c.MinObservations <= 0 {
		c.MinObservations = 50
	}
	if c.Margin == 0 {
		c.Margin = 0.5
	}
	if c.GiveBackHold <= 0 {
		c.GiveBackHold = 4
	}
	if c.MinClassLimit <= 0 {
		c.MinClassLimit = 1
	}
	return c
}

// SLODecision records one completed SLO reaction.
type SLODecision struct {
	Iteration int
	// Measured is the SLO class's percentile over the closed window.
	Measured float64
	// SLOLimit / OtherLimit are the partition AFTER the reaction.
	SLOLimit, OtherLimit int
	Action               Action
}

// SLOController partitions a gate's MPL across classes to hold a
// latency SLO. Like the throughput controller it is wired by the
// caller: invoke Observe once per completion, from any goroutine. It
// never "converges" — an SLO is held continuously, not found once —
// so it keeps reacting for as long as it is attached.
type SLOController struct {
	mu    sync.Mutex
	clock sim.Clock
	gate  ClassGate
	cfg   SLOConfig
	// sloShare is the SLO class's current slot share; the other class
	// holds the remainder of the gate's MPL.
	sloShare int
	// belowCount counts consecutive below-margin windows (the give-back
	// pacing state).
	belowCount int
	history    []SLODecision
}

// NewSLO builds an SLO controller over g and installs the initial
// partition: an even split of the gate's current MPL (SLO class
// rounded up), each class floored at MinClassLimit. The gate must have
// a finite MPL of at least 2× MinClassLimit — a partition needs at
// least one slot per class — and percentile sampling enabled (the loop
// steers on ClassResponseTimePercentile). Changing the gate's MPL
// while the loop runs is fine: the partition re-spreads over the new
// total at the next reaction.
func NewSLO(clock sim.Clock, g ClassGate, cfg SLOConfig) (*SLOController, error) {
	cfg = cfg.withDefaults()
	if cfg.Target.Target <= 0 {
		return nil, fmt.Errorf("controller: SLO target %v must be positive seconds", cfg.Target.Target)
	}
	if cfg.Target.Percentile <= 0 || cfg.Target.Percentile >= 100 {
		return nil, fmt.Errorf("controller: SLO percentile %v outside (0,100)", cfg.Target.Percentile)
	}
	if cfg.Margin < 0 || cfg.Margin >= 1 {
		return nil, fmt.Errorf("controller: SLO margin %v outside [0,1)", cfg.Margin)
	}
	total := g.MPL()
	if total < 2*cfg.MinClassLimit {
		return nil, fmt.Errorf("controller: SLO partition needs MPL >= %d, gate has %d", 2*cfg.MinClassLimit, total)
	}
	c := &SLOController{clock: clock, gate: g, cfg: cfg, sloShare: (total + 1) / 2}
	c.clampShare(total)
	c.apply(total)
	g.ResetMetrics()
	return c, nil
}

// clampShare keeps the SLO share inside [MinClassLimit, total-MinClassLimit].
func (c *SLOController) clampShare(total int) {
	if c.sloShare < c.cfg.MinClassLimit {
		c.sloShare = c.cfg.MinClassLimit
	}
	if max := total - c.cfg.MinClassLimit; c.sloShare > max {
		c.sloShare = max
	}
}

// apply pushes the current partition to the gate. The two limits
// always sum to the gate's MPL and each stays >= MinClassLimit — the
// partition invariant the property tests pin.
func (c *SLOController) apply(total int) {
	c.gate.SetClassLimits(map[core.Class]int{
		c.cfg.Target.Class: c.sloShare,
		c.cfg.OtherClass:   total - c.sloShare,
	})
}

// Iterations returns the number of completed reactions.
func (c *SLOController) Iterations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.history)
}

// History returns the reaction log.
func (c *SLOController) History() []SLODecision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.history
}

// Limits returns the current (sloClass, otherClass) slot partition,
// clamped against the gate's CURRENT MPL: an external limit change
// between reactions (SetLimit, a composed MPL loop) shrinks the
// reported share rather than producing a negative other side; the
// next closed window re-spreads the stored share the same way.
func (c *SLOController) Limits() (slo, other int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.gate.MPL()
	slo = c.sloShare
	if max := total - c.cfg.MinClassLimit; slo > max {
		slo = max
	}
	if slo < 0 {
		slo = 0
	}
	return slo, total - slo
}

// Observe consumes one completion event: when the observation window
// has seen enough traffic — overall and from the SLO class — it reads
// the class percentile, moves one slot toward whichever side the
// measurement demands, and opens a fresh window. Call it once per
// completed item, from any goroutine.
func (c *SLOController) Observe() {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.gate.Metrics()
	if int(m.Completed) < c.cfg.MinObservations {
		return
	}
	sloSeen := m.High.Count()
	if c.cfg.Target.Class != core.ClassHigh {
		sloSeen = m.Low.Count()
	}
	minSLO := c.cfg.MinObservations / 10
	if minSLO < 5 {
		minSLO = 5
	}
	if int(sloSeen) < minSLO {
		return
	}
	measured := c.gate.ClassResponseTimePercentile(c.cfg.Target.Class, c.cfg.Target.Percentile)
	total := c.gate.MPL()
	action := Hold
	if total >= 2*c.cfg.MinClassLimit {
		prev := c.sloShare
		switch {
		case measured > c.cfg.Target.Target:
			c.sloShare++
			c.belowCount = 0
		case measured < c.cfg.Margin*c.cfg.Target.Target:
			c.belowCount++
			if c.belowCount >= c.cfg.GiveBackHold {
				c.sloShare--
				c.belowCount = 0
			}
		default:
			c.belowCount = 0
		}
		c.clampShare(total)
		switch {
		case c.sloShare > prev:
			action = Increase
		case c.sloShare < prev:
			action = Decrease
		}
		// Re-apply even on Hold: an MPL change since the last reaction
		// must be re-spread across the classes.
		c.apply(total)
	}
	c.history = append(c.history, SLODecision{
		Iteration:  len(c.history) + 1,
		Measured:   measured,
		SLOLimit:   c.sloShare,
		OtherLimit: total - c.sloShare,
		Action:     action,
	})
	c.gate.ResetMetrics()
}

// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is intentionally small: a monotonically advancing clock, a
// concrete-typed 4-ary heap event queue with stable FIFO ordering among
// simultaneous events, and cancellable, generation-checked event
// handles. All higher-level substrates (CPU scheduler, disks, lock
// manager, workload generators) are built on top of it. Simulated time
// is measured in seconds as float64.
//
// The queue stores plain value slots ({time, seq, *event}) in a flat
// slice — no interface{} boxing and no container/heap indirection — and
// the event records behind them are recycled through a free list when
// they fire or when a canceled event is discarded. In steady state the
// kernel therefore schedules and fires events without allocating.
package sim

import (
	"fmt"
	"math"
)

// event is the pooled per-event record. The heap slots carry the
// ordering keys; the record holds only what must live at a stable
// address: the callback, the cancellation flag, and the generation
// counter that invalidates stale handles after recycling.
type event struct {
	fn       func()
	gen      uint64
	canceled bool
}

// Handle identifies one scheduled event. It is a value: copy it
// freely. A Handle becomes stale once its event fires or its
// cancellation is collected; Cancel and Pending on a stale handle are
// safe no-ops, so holding a handle past its event's lifetime is fine.
type Handle struct {
	ev  *event
	gen uint64
}

// Pending reports whether the event is still scheduled and will fire
// (not canceled, not yet fired).
func (h Handle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && !h.ev.canceled
}

// Canceled reports whether the event was canceled and is still
// awaiting lazy discard. Once the engine collects the cancellation
// (or after the event fires) the handle is stale and Canceled reports
// false.
func (h Handle) Canceled() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.canceled
}

// slot is one entry of the event queue: the ordering keys inline (so
// heap comparisons stay within the slice) plus the pooled record.
type slot struct {
	time float64
	seq  uint64
	ev   *event
}

// before reports whether a fires before b: earlier time first, ties
// broken FIFO by sequence number.
func (a slot) before(b slot) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// Engine is a single-threaded discrete-event simulation engine.
// It is not safe for concurrent use; all model code runs inside event
// callbacks on the engine's goroutine. Independent engines are fully
// isolated, so many runs may execute on separate goroutines at once
// (see experiments.Sweep and ParallelEngine).
type Engine struct {
	now     float64
	queue   []slot // implicit 4-ary min-heap
	free    []*event
	seq     uint64
	stopped bool
	// live counts scheduled events that will still fire: canceled
	// events leave it at Cancel time even though their slots are only
	// discarded lazily when they surface at the heap head.
	live int
	// processed counts events that have fired (excluding canceled ones).
	processed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled that will
// still fire. Canceled events stop counting the moment they are
// canceled, even though their heap slots are discarded lazily — so a
// zero return really does mean the engine has no live work, which is
// what parallel termination detection relies on.
func (e *Engine) Pending() int { return e.live }

// NextEventTime returns the absolute time of the earliest live event,
// or +Inf when none is scheduled. Canceled events surfacing at the
// heap head are discarded on the way.
func (e *Engine) NextEventTime() float64 {
	next, ok := e.peek()
	if !ok {
		return math.Inf(1)
	}
	return next.time
}

// AdvanceTo moves the clock forward to t without firing anything. It
// is the conservative-parallel primitive: a coordinator that has
// proven (via the lookahead horizon) that no event exists before t may
// jump straight there before delivering a cross-engine message
// timestamped t. Moving backward is a no-op; jumping over a live event
// panics, because that would reorder the very events the horizon was
// supposed to protect.
func (e *Engine) AdvanceTo(t float64) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: advancing clock to non-finite time %v", t))
	}
	if t <= e.now {
		return
	}
	if next, ok := e.peek(); ok && next.time < t {
		panic(fmt.Sprintf("sim: advancing clock to %v past pending event at %v", t, next.time))
	}
	e.now = t
}

// At schedules fn to run at absolute simulated time t. Non-finite t
// panics, as does scheduling in the past (t < Now): both always
// indicate a model bug, and silently clamping would hide it. The
// non-finite check runs first so At(NaN) reports the real problem
// rather than tripping (or sliding past) the in-the-past comparison,
// whose outcome against NaN is a coin toss of comparison semantics.
func (e *Engine) At(t float64, fn func()) Handle {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", t))
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.fn = fn
	ev.canceled = false
	h := Handle{ev: ev, gen: ev.gen}
	e.push(slot{time: t, seq: e.seq, ev: ev})
	e.seq++
	e.live++
	return h
}

// After schedules fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d float64, fn func()) Handle {
	return e.At(e.now+d, fn)
}

// Cancel marks the event as canceled. A canceled event is skipped and
// recycled when it reaches the head of the queue. Canceling a stale
// handle (already fired, already collected) or the zero Handle is a
// no-op.
func (e *Engine) Cancel(h Handle) {
	if h.ev != nil && h.ev.gen == h.gen && !h.ev.canceled {
		h.ev.canceled = true
		e.live--
	}
}

// Stop halts the run loop after the current event callback returns.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// recycle invalidates outstanding handles and returns the record to
// the free list.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.canceled = false
	ev.gen++
	e.free = append(e.free, ev)
}

// Step fires the next non-canceled event. It returns false when the
// queue is empty or the engine is stopped.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 && !e.stopped {
		top := e.queue[0]
		e.pop()
		if top.ev.canceled {
			e.recycle(top.ev)
			continue
		}
		fn := top.ev.fn
		// Recycle before firing: the callback may schedule new events,
		// and the generation bump keeps any handle to this event stale.
		e.recycle(top.ev)
		e.now = top.time
		e.processed++
		e.live--
		fn()
		return true
	}
	return false
}

// Run fires events until the queue drains, Stop is called, or the
// next event lies strictly after until. The bound is inclusive: an
// event scheduled at exactly until fires, and only events later than
// until stay queued. Pass math.Inf(1) for no time bound. It returns
// the number of events fired during this call. Unless until is
// infinite, the clock always ends at the bound (even when the queue
// drains early — an idle system still experiences the passage of time,
// which is what lets a scenario phase with no traffic elapse). The
// clock never moves backward: calling Run with until < Now fires
// nothing and leaves the clock alone. The parallel window barrier
// (ParallelEngine) depends on this edge being exact: every engine in a
// window runs to the same inclusive bound, so a same-instant cascade
// at the bound is fired by whichever pass owns it, never dropped.
func (e *Engine) Run(until float64) uint64 {
	var fired uint64
	for !e.stopped {
		next, ok := e.peek()
		if !ok {
			break
		}
		if next.time > until {
			// Leave the event queued.
			break
		}
		if e.Step() {
			fired++
		}
	}
	// Advance the clock to the bound so repeated Run calls observe
	// monotonic time whether or not events (or any queue at all)
	// remained — but never pull the clock backward when until is
	// already in the past.
	if !e.stopped && until > e.now && !math.IsInf(until, 1) {
		e.now = until
	}
	return fired
}

// RunAll fires events until the queue drains or Stop is called.
func (e *Engine) RunAll() uint64 {
	return e.Run(math.Inf(1))
}

// peek returns the next non-canceled slot without removing it, lazily
// discarding canceled events at the top of the heap.
func (e *Engine) peek() (slot, bool) {
	for len(e.queue) > 0 {
		top := e.queue[0]
		if !top.ev.canceled {
			return top, true
		}
		e.pop()
		e.recycle(top.ev)
	}
	return slot{}, false
}

// push inserts s into the 4-ary heap.
func (e *Engine) push(s slot) {
	e.queue = append(e.queue, s)
	i := len(e.queue) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !e.queue[i].before(e.queue[parent]) {
			break
		}
		e.queue[i], e.queue[parent] = e.queue[parent], e.queue[i]
		i = parent
	}
}

// pop removes the heap head.
func (e *Engine) pop() {
	n := len(e.queue) - 1
	e.queue[0] = e.queue[n]
	e.queue[n] = slot{}
	e.queue = e.queue[:n]
	if n == 0 {
		return
	}
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.queue[c].before(e.queue[best]) {
				best = c
			}
		}
		if !e.queue[best].before(e.queue[i]) {
			break
		}
		e.queue[i], e.queue[best] = e.queue[best], e.queue[i]
		i = best
	}
}

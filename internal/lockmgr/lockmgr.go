// Package lockmgr implements a strict two-phase-locking lock manager
// like the one in Shore: S/X item locks held to commit, FIFO or
// priority-ordered wait queues, waits-for-graph deadlock detection, and
// the Preempt-on-Wait (POW) policy of McWherter et al. that the paper
// uses for internal lock prioritization (Section 5.2).
//
// Isolation levels map to locking behaviour the way the paper's DB2
// experiments do: Repeatable Read (RR) takes S locks on reads and X
// locks on writes, all held to commit; Uncommitted Read (UR) skips read
// locks entirely, leaving only write-write conflicts.
package lockmgr

import (
	"fmt"
	"sort"

	"extsched/internal/sim"
)

// Mode is a lock mode.
type Mode int

const (
	// S is a shared (read) lock.
	S Mode = iota
	// X is an exclusive (write) lock.
	X
)

func (m Mode) String() string {
	if m == S {
		return "S"
	}
	return "X"
}

// compatible reports whether a lock in mode a coexists with mode b.
func compatible(a, b Mode) bool { return a == S && b == S }

// Class is the external scheduling priority class of a transaction.
type Class int

const (
	// Low priority (the default 90% of transactions in the paper).
	Low Class = iota
	// High priority (the revenue-heavy 10%).
	High
)

// Policy orders lock wait queues.
type Policy int

const (
	// FIFO grants strictly in arrival order.
	FIFO Policy = iota
	// PriorityFIFO moves high-class waiters ahead of low-class ones,
	// FIFO within a class. With Preempt enabled this is POW.
	PriorityFIFO
)

// AbortReason explains why the manager asked for a transaction abort.
type AbortReason int

const (
	// Deadlock means the transaction was chosen as a deadlock victim.
	Deadlock AbortReason = iota
	// Preempted means a POW preemption by a high-priority waiter.
	Preempted
	// Timeout means the transaction waited longer than the configured
	// lock wait timeout (DB2's LOCKTIMEOUT-style safety net).
	Timeout
)

func (r AbortReason) String() string {
	switch r {
	case Deadlock:
		return "deadlock"
	case Preempted:
		return "preempted"
	default:
		return "timeout"
	}
}

// TxnID identifies a transaction attempt. Restarted transactions must
// use a fresh TxnID.
type TxnID uint64

// request is a queued lock request.
type request struct {
	txn     TxnID
	key     uint64
	mode    Mode
	class   Class
	seq     uint64 // arrival order for stable FIFO
	onGrant func()
	upgrade bool // S→X upgrade request
}

// lock is one lock-table entry.
type lock struct {
	holders map[TxnID]Mode
	queue   []*request
}

// txnState tracks a live transaction.
type txnState struct {
	id      TxnID
	class   Class
	held    map[uint64]Mode
	waiting *request // non-nil while blocked
}

// Stats aggregates lock-manager activity.
type Stats struct {
	Grants      uint64
	Waits       uint64 // requests that had to block
	Deadlocks   uint64 // victims chosen
	Preemptions uint64 // POW preemptions issued
	Timeouts    uint64 // waits aborted by the wait timeout
	Upgrades    uint64
}

// Manager is the lock manager.
type Manager struct {
	eng         *sim.Engine
	policy      Policy
	preempt     bool // POW preemption of blocked low-priority holders
	waitTimeout float64
	locks       map[uint64]*lock
	txns        map[TxnID]*txnState
	seq         uint64
	stats       Stats
	// onAbort is invoked (asynchronously, via a zero-delay event) when
	// the manager needs a transaction aborted: deadlock victim or POW
	// preemption. The owner must eventually call Release for the txn.
	onAbort func(TxnID, AbortReason)
}

// Config configures a Manager.
type Config struct {
	Policy  Policy
	Preempt bool // enable POW (requires PriorityFIFO to be useful)
	// WaitTimeout, when > 0, aborts any request that has waited this
	// many seconds — the LOCKTIMEOUT safety net real engines run in
	// addition to deadlock detection. Zero disables it.
	WaitTimeout float64
	// OnAbort receives deadlock-victim, preemption and timeout
	// notifications. Required: strict 2PL with blocking always risks
	// deadlock.
	OnAbort func(TxnID, AbortReason)
}

// New returns a Manager.
func New(eng *sim.Engine, cfg Config) *Manager {
	if cfg.OnAbort == nil {
		panic("lockmgr: Config.OnAbort is required")
	}
	return &Manager{
		eng:         eng,
		policy:      cfg.Policy,
		preempt:     cfg.Preempt,
		waitTimeout: cfg.WaitTimeout,
		locks:       make(map[uint64]*lock),
		txns:        make(map[TxnID]*txnState),
		onAbort:     cfg.OnAbort,
	}
}

// Stats returns a snapshot of activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// Begin registers a transaction attempt with its priority class.
func (m *Manager) Begin(txn TxnID, class Class) {
	if _, ok := m.txns[txn]; ok {
		panic(fmt.Sprintf("lockmgr: duplicate Begin for txn %d", txn))
	}
	m.txns[txn] = &txnState{id: txn, class: class, held: make(map[uint64]Mode)}
}

// Holding returns the number of locks held by txn.
func (m *Manager) Holding(txn TxnID) int {
	st, ok := m.txns[txn]
	if !ok {
		return 0
	}
	return len(st.held)
}

// Waiting reports whether txn is blocked on a lock queue.
func (m *Manager) Waiting(txn TxnID) bool {
	st, ok := m.txns[txn]
	return ok && st.waiting != nil
}

// Acquire requests key in the given mode. If the lock is granted
// immediately it returns true and onGrant is NOT called (the caller
// just continues). Otherwise it returns false and onGrant fires when
// the lock is eventually granted. A transaction may hold at most one
// pending request (strict 2PL executors are sequential).
//
// Deadlocks created by this wait are detected immediately on the
// waits-for graph; the victim is aborted via the OnAbort callback.
func (m *Manager) Acquire(txn TxnID, key uint64, mode Mode, onGrant func()) bool {
	st, ok := m.txns[txn]
	if !ok {
		panic(fmt.Sprintf("lockmgr: Acquire by unknown txn %d", txn))
	}
	if st.waiting != nil {
		panic(fmt.Sprintf("lockmgr: txn %d already has a pending request", txn))
	}
	l := m.locks[key]
	if l == nil {
		l = &lock{holders: make(map[TxnID]Mode)}
		m.locks[key] = l
	}
	if held, ok := st.held[key]; ok {
		if held == X || held == mode {
			// Already covered (lock strengthening is a no-op).
			m.stats.Grants++
			return true
		}
		// S→X upgrade.
		m.stats.Upgrades++
		if len(l.holders) == 1 {
			l.holders[txn] = X
			st.held[key] = X
			m.stats.Grants++
			return true
		}
		req := &request{txn: txn, key: key, mode: X, class: st.class, seq: m.seq, onGrant: onGrant, upgrade: true}
		m.seq++
		// Upgraders wait at the head: they already hold S and must not
		// queue behind new S requests (which would deadlock trivially).
		l.queue = append([]*request{req}, l.queue...)
		st.waiting = req
		m.stats.Waits++
		m.afterBlock(st, l)
		return false
	}
	if len(l.queue) == 0 && m.grantable(l, mode) {
		l.holders[txn] = mode
		st.held[key] = mode
		m.stats.Grants++
		return true
	}
	// A non-empty queue must not be bypassed even by a compatible
	// request: jumping over queued waiters both starves writers and
	// creates waits-for edges invisible to at-block-time deadlock
	// detection. Enqueue, apply the policy ordering, then try a head
	// grant (under PriorityFIFO a high-class request may legitimately
	// reach the head and be granted immediately).
	req := &request{txn: txn, key: key, mode: mode, class: st.class, seq: m.seq, onGrant: onGrant}
	m.seq++
	syncGranted := false
	req.onGrant = func() { syncGranted = true }
	l.queue = append(l.queue, req)
	m.orderQueue(l)
	st.waiting = req
	m.grantWaiters(key, l)
	if syncGranted {
		return true
	}
	req.onGrant = onGrant
	m.stats.Waits++
	m.afterBlock(st, l)
	return false
}

// grantable reports whether a new request in mode can be granted given
// the current holders (queue considered separately by callers).
func (m *Manager) grantable(l *lock, mode Mode) bool {
	for _, h := range l.holders {
		if !compatible(h, mode) {
			return false
		}
	}
	return true
}

// orderQueue applies the policy: PriorityFIFO sorts high class first,
// stable by arrival; upgrade requests always stay ahead.
func (m *Manager) orderQueue(l *lock) {
	if m.policy != PriorityFIFO {
		return
	}
	sort.SliceStable(l.queue, func(i, j int) bool {
		a, b := l.queue[i], l.queue[j]
		if a.upgrade != b.upgrade {
			return a.upgrade
		}
		if a.class != b.class {
			return a.class > b.class // High (1) before Low (0)
		}
		return a.seq < b.seq
	})
}

// afterBlock runs deadlock detection, POW preemption, and the wait
// timeout after st blocked on lock l.
func (m *Manager) afterBlock(st *txnState, l *lock) {
	if m.waitTimeout > 0 {
		req := st.waiting
		id := st.id
		m.eng.After(m.waitTimeout, func() {
			cur, ok := m.txns[id]
			if !ok || cur.waiting == nil || cur.waiting != req {
				return // granted, released or restarted meanwhile
			}
			m.stats.Timeouts++
			m.onAbort(id, Timeout)
		})
	}
	if victim, found := m.findDeadlockVictim(st); found {
		m.stats.Deadlocks++
		v := victim
		m.eng.After(0, func() { m.onAbort(v, Deadlock) })
		return
	}
	if m.preempt && st.class == High {
		// POW: preempt any low-priority holder of this lock that is
		// itself blocked at another lock queue (it cannot make
		// progress anyway, and it stands in the way of a high).
		for holder := range l.holders {
			hs, ok := m.txns[holder]
			if !ok || hs.class == High || hs.waiting == nil {
				continue
			}
			m.stats.Preemptions++
			victim := holder
			m.eng.After(0, func() { m.onAbort(victim, Preempted) })
		}
	}
}

// waitsFor enumerates the transactions t is directly waiting on:
// incompatible current holders of the requested lock, plus every
// request queued ahead of t's request. The queue-predecessor edges are
// real waits under the no-bypass discipline — a request is never
// granted before those ahead of it, even if it is compatible with the
// current holders.
func (m *Manager) waitsFor(t *txnState) []TxnID {
	if t.waiting == nil {
		return nil
	}
	l := m.locks[t.waiting.key]
	if l == nil {
		return nil
	}
	var out []TxnID
	for holder, hm := range l.holders {
		if holder == t.id {
			continue // upgrade: own S lock doesn't block itself
		}
		if !compatible(hm, t.waiting.mode) {
			out = append(out, holder)
		}
	}
	for _, r := range l.queue {
		if r == t.waiting {
			break
		}
		if r.txn != t.id {
			out = append(out, r.txn)
		}
	}
	return out
}

// findDeadlockVictim searches for a waits-for cycle through the newly
// blocked transaction and returns it as the victim (abort-requester
// policy: deterministic, and any new cycle necessarily runs through
// the transaction whose block created it).
func (m *Manager) findDeadlockVictim(start *txnState) (TxnID, bool) {
	visited := make(map[TxnID]bool)
	var dfs func(t *txnState) bool
	dfs = func(t *txnState) bool {
		if visited[t.id] {
			return false
		}
		visited[t.id] = true
		for _, next := range m.waitsFor(t) {
			if next == start.id {
				return true
			}
			ns, ok := m.txns[next]
			if !ok {
				continue
			}
			if dfs(ns) {
				return true
			}
		}
		return false
	}
	if dfs(start) {
		return start.id, true
	}
	return 0, false
}

// Release drops every lock held by txn (commit or abort under strict
// 2PL), cancels any pending request, and grants newly compatible
// waiters. Unknown transactions are a no-op so that abort paths can
// release defensively.
func (m *Manager) Release(txn TxnID) {
	st, ok := m.txns[txn]
	if !ok {
		return
	}
	delete(m.txns, txn)
	// Cancel a pending request.
	if st.waiting != nil {
		if l := m.locks[st.waiting.key]; l != nil {
			for i, r := range l.queue {
				if r == st.waiting {
					l.queue = append(l.queue[:i], l.queue[i+1:]...)
					break
				}
			}
		}
		st.waiting = nil
	}
	for key := range st.held {
		l := m.locks[key]
		if l == nil {
			continue
		}
		delete(l.holders, txn)
		m.grantWaiters(key, l)
		if len(l.holders) == 0 && len(l.queue) == 0 {
			delete(m.locks, key)
		}
	}
}

// grantWaiters grants from the queue head while compatible.
func (m *Manager) grantWaiters(key uint64, l *lock) {
	for len(l.queue) > 0 {
		head := l.queue[0]
		hs, ok := m.txns[head.txn]
		if !ok {
			// Stale request from a released txn.
			l.queue = l.queue[1:]
			continue
		}
		if head.upgrade {
			// Grantable only when head.txn is the sole remaining holder.
			if len(l.holders) == 1 {
				if _, isHolder := l.holders[head.txn]; isHolder {
					l.queue = l.queue[1:]
					l.holders[head.txn] = X
					hs.held[key] = X
					hs.waiting = nil
					m.stats.Grants++
					head.onGrant()
					continue
				}
			}
			return
		}
		if !m.grantable(l, head.mode) {
			return
		}
		l.queue = l.queue[1:]
		l.holders[head.txn] = head.mode
		hs.held[key] = head.mode
		hs.waiting = nil
		m.stats.Grants++
		head.onGrant()
	}
}

// QueueLength returns the wait-queue length at key (0 if unknown).
func (m *Manager) QueueLength(key uint64) int {
	if l := m.locks[key]; l != nil {
		return len(l.queue)
	}
	return 0
}

// Holders returns the number of holders at key.
func (m *Manager) Holders(key uint64) int {
	if l := m.locks[key]; l != nil {
		return len(l.holders)
	}
	return 0
}

// Live returns the number of registered transactions.
func (m *Manager) Live() int { return len(m.txns) }

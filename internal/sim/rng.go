package sim

import (
	"math/rand/v2"
)

// RNG is a deterministic random stream. Every stochastic component of
// the simulator owns its own RNG derived from the experiment seed, so
// that changing one component (e.g. adding a disk) does not perturb the
// random draws of the others.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with (seed, stream). Distinct stream
// ids produce statistically independent sequences.
func NewRNG(seed, stream uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, stream))}
}

// Float64 returns a uniform variate in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform integer in [0,n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// ExpFloat64 returns an exponential variate with mean 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Fork derives an independent child stream; successive calls yield
// distinct streams. Useful when a component spawns sub-components
// dynamically (e.g. one stream per client).
func (g *RNG) Fork() *RNG {
	return &RNG{r: rand.New(rand.NewPCG(g.r.Uint64(), g.r.Uint64()))}
}

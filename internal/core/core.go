// Package core implements the paper's central mechanism: external
// scheduling of work through an MPL gate (Fig. 1).
//
// A Frontend admits at most MPL work items into a Backend at a time;
// the rest wait in an external queue that a pluggable Policy orders
// (FIFO by default, Priority for the Section 5 experiments, SJF and WFQ
// as the "custom-tailored policy" extensions the paper motivates).
// Response time is measured the paper's way: from arrival at the
// frontend to completion, including external queueing. The MPL can be
// changed at any time (SetMPL), which is how the feedback controller
// drives the system.
//
// The frontend is backend-agnostic — the whole point of external
// scheduling is that it needs nothing from the system it wraps beyond
// "start this" and "tell me when it finished". The simulated DBMS
// (internal/dbfe) and the wall-clock live gate (the top-level gate
// package) are the two backends; both share this one gate, queue, and
// metrics implementation. Time comes from a sim.Clock, so the same
// code runs in deterministic virtual time and against real traffic.
//
// All frontend entry points are safe for concurrent callers.
//
// # Fast path vs slow path
//
// The frontend keeps its gate state — the inside count, the MPL limit,
// and a "slow" flag — packed into one atomic word. An admission that
// finds the slow flag clear and a free slot claims it with a single
// CAS, and a completion that finds the flag clear frees its slot the
// same way: neither takes the mutex, queues, or allocates. The slow
// flag is set (only ever under the mutex) whenever anything that needs
// the mutex's ordering is in play: items waiting in the policy queue
// or a deferred ring, a class-limit partition, or a per-class admit
// deadline (tracked separately). Because the flag lives in the same
// word as the counters, every fast-path CAS validates it for free: a
// concurrent transition to slow invalidates in-flight fast CASes, and
// the slow path always re-dispatches under the mutex after setting the
// flag, so a released slot is never lost to a waiter. Items with a
// pre-set Deadline or a class outside the small tracked range also
// take the slow path.
//
// Under the single-threaded simulator the fast path makes the same
// state transitions in the same order as the mutex path did, so the
// deterministic event order (and every same-seed fingerprint) is
// preserved exactly.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"extsched/internal/sim"
	"extsched/internal/stats"
)

// Class is a small-integer priority class. ClassHigh receives strict
// preference under PriorityPolicy and separate metrics accounting;
// every other value is treated as "low". WFQ accepts arbitrary Class
// values, one virtual queue per distinct class.
type Class int

const (
	// ClassLow is the default (background) class.
	ClassLow Class = 0
	// ClassHigh is the preferred class of the paper's Section 5
	// prioritization experiments.
	ClassHigh Class = 1
)

// itemState tracks an item through the gate.
type itemState uint8

const (
	itemIdle itemState = iota
	itemQueued
	itemDispatched
	itemDone
	itemCanceled
	itemShed
	itemFailed
)

// Item is one unit of admitted work flowing through the frontend: a
// simulated transaction, a live HTTP request, anything the backend can
// execute. Callers allocate it (usually embedded in their own record),
// fill Class/SizeHint/Payload, and hand it to Submit. The frontend owns
// it until completion.
type Item struct {
	// Class is the external scheduling priority class.
	Class Class
	// SizeHint is the caller's a-priori estimate of the item's total
	// service demand in seconds. SJF orders by it and WFQ charges by
	// it; zero means unknown (WFQ then charges unit cost).
	SizeHint float64
	// Payload carries the caller's per-item context (the simulated
	// transaction profile, a live request ticket). The frontend never
	// touches it. Storing a pointer here does not allocate.
	Payload any
	// Arrival, Dispatch and Complete are clock timestamps stamped by
	// the frontend: Submit time, admission time, and completion time.
	// For a shed item, Complete is the shed instant and Dispatch stays 0.
	Arrival, Dispatch, Complete float64
	// Deadline is the absolute latest clock time by which the item must
	// START (be dispatched); 0 means none. Submit stamps it from the
	// frontend's per-class admit deadlines when the caller left it zero;
	// callers may pre-set an absolute deadline instead. An item that
	// cannot start by its deadline is shed: it never executes, its done
	// callback and the OnShed hook fire, and it is counted in Shed —
	// not in the completion metrics.
	Deadline float64
	// Outcome is the backend's completion report.
	Outcome Outcome
	seq     uint64
	state   itemState
	done    func(*Item)
}

// ResponseTime is Complete − Arrival (external wait + inside time).
func (it *Item) ResponseTime() float64 { return it.Complete - it.Arrival }

// WasShed reports whether the item was rejected by deadline shedding
// instead of completing. Valid from the item's done callback (which
// fires for sheds as well as completions) onward; not synchronized, so
// do not call it while the item may still be queued.
func (it *Item) WasShed() bool { return it.state == itemShed }

// WasFailed reports whether the item was lost to a backend failure
// (FailQueued/FailDispatched) instead of completing. Same validity
// caveats as WasShed.
func (it *Item) WasFailed() bool { return it.state == itemFailed }

// MarkFailed force-marks an item as failed. For items a frontend does
// NOT currently own: work that could not be routed anywhere (the
// cluster dispatcher with every shard down) or that was already
// withdrawn by FailQueued/FailDispatched and is now being declared
// terminally lost. Never call it on a queued or dispatched item — the
// owning frontend's accounting would be corrupted.
func (it *Item) MarkFailed() { it.state = itemFailed }

// ExternalWait is Dispatch − Arrival.
func (it *Item) ExternalWait() float64 { return it.Dispatch - it.Arrival }

// Outcome is what the backend reports when an item completes.
type Outcome struct {
	// InsideTime is the seconds spent between dispatch and completion
	// as measured by the backend (queueing inside the backend included).
	InsideTime float64
	// Restarts counts internal retry cycles (deadlock aborts and the
	// like in the simulated DBMS; retries of a guarded call live).
	Restarts int
}

// Backend executes admitted items. Exec is called once per item when
// the gate admits it; the backend must eventually call
// Frontend.Complete for that item exactly once. Exec must not call
// Complete synchronously from within itself.
type Backend interface {
	Exec(it *Item)
}

// Policy orders the external queue. Implementations are not safe for
// concurrent use on their own; the Frontend serializes all access.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Push enqueues an item.
	Push(*Item)
	// Pop removes and returns the next item to dispatch, or nil if
	// empty.
	Pop() *Item
	// Len returns the queue length.
	Len() int
}

// compactable is an optional Policy extension: drop queued items that
// fail keep, preserving dispatch order among the kept. The frontend
// uses it to purge canceled items in bulk — without it, a canceled
// item is only discarded when it surfaces at the head of the queue,
// which under SJF/WFQ (or a stalled backend) may be never. All
// built-in policies implement it.
type compactable interface {
	compact(keep func(*Item) bool)
}

// discardAware is an optional Policy extension: notified when the
// frontend discards a canceled item it popped, so the policy can undo
// enqueue-time bookkeeping (WFQ refunds the class's virtual-time
// charge).
type discardAware interface {
	discarded(*Item)
}

// PolicyNames lists the built-in policies for NewPolicy.
const (
	PolicyFIFO     = "fifo"
	PolicyPriority = "priority"
	PolicySJF      = "sjf"
	PolicyWFQ      = "wfq"
)

// NewPolicy builds a built-in policy by name ("" = FIFO). wfqWeights
// applies only to "wfq": per-class weights, nil for {ClassHigh: 4}.
func NewPolicy(name string, wfqWeights map[Class]float64) (Policy, error) {
	switch name {
	case "", PolicyFIFO:
		return NewFIFO(), nil
	case PolicyPriority:
		return NewPriority(), nil
	case PolicySJF:
		return NewSJF(), nil
	case PolicyWFQ:
		if wfqWeights == nil {
			wfqWeights = map[Class]float64{ClassHigh: 4}
		}
		return NewWFQ(wfqWeights), nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q (want fifo, priority, sjf or wfq)", name)
	}
}

// ring is a growable circular FIFO of items. Unlike the reslicing
// `q = q[1:]` idiom, dequeues reuse the backing array instead of
// abandoning its head, so a long run's queue churn stays within one
// allocation instead of leaking backing arrays behind the advancing
// slice window.
type ring struct {
	buf        []*Item
	head, size int
}

func (r *ring) len() int { return r.size }

func (r *ring) push(it *Item) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)%len(r.buf)] = it
	r.size++
}

func (r *ring) pop() *Item {
	if r.size == 0 {
		return nil
	}
	it := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return it
}

// compact drops items failing keep, preserving order of the rest.
func (r *ring) compact(keep func(*Item) bool) {
	kept := 0
	for i := 0; i < r.size; i++ {
		it := r.buf[(r.head+i)%len(r.buf)]
		if keep(it) {
			r.buf[(r.head+kept)%len(r.buf)] = it
			kept++
		}
	}
	for i := kept; i < r.size; i++ {
		r.buf[(r.head+i)%len(r.buf)] = nil
	}
	r.size = kept
}

// grow doubles the capacity, unwrapping the live window to the front.
func (r *ring) grow() {
	capacity := len(r.buf) * 2
	if capacity == 0 {
		capacity = 16
	}
	buf := make([]*Item, capacity)
	for i := 0; i < r.size; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = buf, 0
}

// FIFOPolicy dispatches in arrival order.
type FIFOPolicy struct {
	q ring
}

// NewFIFO returns a FIFO policy.
func NewFIFO() *FIFOPolicy { return &FIFOPolicy{} }

func (p *FIFOPolicy) Name() string                  { return "fifo" }
func (p *FIFOPolicy) Push(it *Item)                 { p.q.push(it) }
func (p *FIFOPolicy) Pop() *Item                    { return p.q.pop() }
func (p *FIFOPolicy) Len() int                      { return p.q.len() }
func (p *FIFOPolicy) compact(keep func(*Item) bool) { p.q.compact(keep) }

// PriorityPolicy dispatches ClassHigh items first, FIFO within a class
// — the paper's Section 5 prioritization algorithm.
type PriorityPolicy struct {
	high, low ring
}

// NewPriority returns a priority policy.
func NewPriority() *PriorityPolicy { return &PriorityPolicy{} }

func (p *PriorityPolicy) Name() string { return "priority" }
func (p *PriorityPolicy) Push(it *Item) {
	if it.Class == ClassHigh {
		p.high.push(it)
	} else {
		p.low.push(it)
	}
}
func (p *PriorityPolicy) Pop() *Item {
	if it := p.high.pop(); it != nil {
		return it
	}
	return p.low.pop()
}
func (p *PriorityPolicy) Len() int { return p.high.len() + p.low.len() }
func (p *PriorityPolicy) compact(keep func(*Item) bool) {
	p.high.compact(keep)
	p.low.compact(keep)
}

// SJFPolicy dispatches the item with the smallest SizeHint first (ties
// by arrival). It demonstrates the paper's point that the external
// queue admits arbitrary custom policies.
type SJFPolicy struct {
	q []*Item
}

// NewSJF returns a shortest-job-first policy.
func NewSJF() *SJFPolicy { return &SJFPolicy{} }

func (p *SJFPolicy) Name() string { return "sjf" }
func (p *SJFPolicy) Push(it *Item) {
	p.q = append(p.q, it)
	// Sift up in a slice-backed min-heap keyed by (size, seq).
	i := len(p.q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !sjfLess(p.q[i], p.q[parent]) {
			break
		}
		p.q[i], p.q[parent] = p.q[parent], p.q[i]
		i = parent
	}
}
func (p *SJFPolicy) Pop() *Item {
	n := len(p.q)
	if n == 0 {
		return nil
	}
	it := p.q[0]
	p.q[0] = p.q[n-1]
	p.q[n-1] = nil
	p.q = p.q[:n-1]
	p.siftDown(0)
	return it
}
func (p *SJFPolicy) Len() int { return len(p.q) }

func (p *SJFPolicy) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(p.q) && sjfLess(p.q[l], p.q[smallest]) {
			smallest = l
		}
		if r < len(p.q) && sjfLess(p.q[r], p.q[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		p.q[i], p.q[smallest] = p.q[smallest], p.q[i]
		i = smallest
	}
}

func (p *SJFPolicy) compact(keep func(*Item) bool) {
	kept := 0
	for _, it := range p.q {
		if keep(it) {
			p.q[kept] = it
			kept++
		}
	}
	for i := kept; i < len(p.q); i++ {
		p.q[i] = nil
	}
	p.q = p.q[:kept]
	for i := kept/2 - 1; i >= 0; i-- {
		p.siftDown(i)
	}
}

func sjfLess(a, b *Item) bool {
	if a.SizeHint != b.SizeHint {
		return a.SizeHint < b.SizeHint
	}
	return a.seq < b.seq
}

// Metrics aggregates frontend measurements. Response times include
// external queueing (the paper's definition).
type Metrics struct {
	Completed uint64
	All       stats.Accumulator // response time, all classes
	High      stats.Accumulator // response time, high class
	Low       stats.Accumulator // response time, low class
	Inside    stats.Accumulator // time inside the backend
	ExtWait   stats.Accumulator // external queue wait
	Restarts  uint64
	// Classes carries one response-time accumulator per class that
	// completed anything in the window, in ascending class-ID order —
	// the N-tenant generalization of the High/Low pair above (which is
	// kept so the historical two-class figures stay bit-identical).
	// Exotic classes (outside the fast-path tracked range) appear here
	// too; historically they were lumped into Low.
	Classes    []ClassMetric
	resetTime  float64
	windowTime float64
}

// ClassMetric is one class's (tenant's) slice of a Metrics window.
type ClassMetric struct {
	// Class is the class ID.
	Class Class
	// RT accumulates the class's response times (count, mean,
	// variance); merge windows or shards with RT.Merge.
	RT stats.Accumulator
}

// Completed returns the class's completion count (RT observation
// count).
func (m ClassMetric) Completed() uint64 { return uint64(m.RT.Count()) }

// ClassMetric finds class c's entry in Classes (zero value when the
// class completed nothing in the window).
func (m Metrics) ClassMetric(c Class) ClassMetric {
	for _, cm := range m.Classes {
		if cm.Class == c {
			return cm
		}
	}
	return ClassMetric{Class: c}
}

// MergeClassMetrics merges per-class accumulators from several Metrics
// windows (e.g. the shards of a cluster) into one ascending-class-ID
// slice — the per-class analogue of merging the All accumulators.
func MergeClassMetrics(windows ...[]ClassMetric) []ClassMetric {
	var out []ClassMetric
	for _, w := range windows {
		for _, cm := range w {
			idx := -1
			for i := range out {
				if out[i].Class == cm.Class {
					idx = i
					break
				}
			}
			if idx < 0 {
				// Insert sorted by class ID.
				i := 0
				for i < len(out) && out[i].Class < cm.Class {
					i++
				}
				out = append(out, ClassMetric{})
				copy(out[i+1:], out[i:])
				out[i] = cm
				continue
			}
			out[idx].RT.Merge(&cm.RT)
		}
	}
	return out
}

// WithWindow returns a copy of m whose Throughput is computed over the
// given window length in seconds — for synthesizing metric snapshots
// (e.g. in controller tests) without a live frontend.
func (m Metrics) WithWindow(seconds float64) Metrics {
	m.windowTime = seconds
	return m
}

// Throughput returns completions per second since the last reset.
func (m Metrics) Throughput() float64 {
	if m.windowTime <= 0 {
		return 0
	}
	return float64(m.Completed) / m.windowTime
}

// Window returns the length in seconds of the metrics window the
// snapshot covers (time since the last reset, for snapshots taken from
// a live frontend).
func (m Metrics) Window() float64 { return m.windowTime }

// The gate word packs the whole fast-path state into one uint64 so a
// single CAS can atomically check the limit, claim or free a slot, and
// validate that the slow path is not engaged:
//
//	bits 0..29   inside (dispatched, uncompleted items)
//	bits 30..60  limit  (the MPL; 0 = unlimited)
//	bit  62      slow flag (queue/deferred work, or a class partition)
const (
	insideBits = 30
	insideMask = (uint64(1) << insideBits) - 1
	limitShift = insideBits
	limitBits  = 31
	limitMask  = (uint64(1) << limitBits) - 1
	slowFlag   = uint64(1) << 62
)

// MaxMPL is the largest representable MPL limit.
const MaxMPL = int(limitMask)

// trackedClasses is the number of small non-negative classes whose
// inside counts live in a fixed array of atomics (so the lock-free
// fast path can maintain them). Items of any other class still work —
// they just always take the mutex path, where a map tracks them.
const trackedClasses = 8

func unpack(s uint64) (inside, limit int) {
	return int(s & insideMask), int((s >> limitShift) & limitMask)
}

// Frontend is the external scheduler: the MPL gate plus the reorderable
// queue, generic over the executing backend and the time source. All
// methods are safe for concurrent use.
type Frontend struct {
	mu      sync.Mutex
	clock   sim.Clock
	backend Backend
	policy  Policy
	seq     uint64
	// word is the packed gate state (see insideBits and friends): the
	// inside count, the MPL limit, and the slow flag, maintained with
	// CAS so the uncontended admit/complete path never locks mu. The
	// flag bit itself only transitions under mu (updateSlowLocked).
	word atomic.Uint64
	// metricsMu guards metrics and the response-time reservoirs. It is
	// deliberately separate from mu: the completion fast path records
	// metrics under this tiny lock without touching the queue lock, and
	// keeping one lock (rather than sharded cells) preserves the exact
	// sequential accumulation order the deterministic simulator
	// fingerprints depend on.
	metricsMu sync.Mutex
	metrics   Metrics
	// classInside splits inside by priority class for classes in
	// [0, trackedClasses) — atomics so the fast path can maintain them;
	// classInsideX (under mu) tracks any exotic class values.
	classInside  [trackedClasses]atomic.Int64
	classInsideX map[Class]int
	// deadlineArmed counts classes with an admit deadline configured.
	// Nonzero forces every submission through the slow path, where the
	// deadline map can be read under mu.
	deadlineArmed atomic.Int32
	// classLimit, when non-nil, partitions the MPL across classes: a
	// class at its limit does not dispatch while another class has
	// eligible work, but capacity is never left idle (work-conserving
	// borrowing — see dispatch). Classes absent from the map are
	// uncapped (the global MPL still applies).
	classLimit map[Class]int
	// strictLimit makes the class partition a hard cap: a class at its
	// limit never borrows idle capacity (dispatch skips its borrowing
	// step). Trades utilization for latency isolation — the fairness
	// controller's strict mode sets it.
	strictLimit bool
	// deferred holds items popped from the policy while their class was
	// at its limit, per class, in policy-pop order; deferredOrder keeps
	// the classes sorted so dispatch scans them deterministically.
	deferred      map[Class]*ring
	deferredOrder []Class
	deferredCount int
	// admitDeadline is the per-class relative admission deadline in
	// seconds (absent = none): Submit stamps Item.Deadline from it.
	admitDeadline map[Class]float64
	// shed counts deadline-shed items, total and per class.
	shed      uint64
	shedClass map[Class]uint64
	// queueLimit, when > 0, turns the frontend into the admission
	// controller the paper contrasts itself with (Section 1): arrivals
	// beyond the limit are DROPPED instead of queued. External
	// scheduling proper never drops (queueLimit 0).
	queueLimit int
	dropped    uint64
	// deadQueued counts withdrawn (canceled, shed, or failed) items
	// still sitting in the policy queue or a deferred ring awaiting lazy
	// discard; canceled counts all cancellations.
	deadQueued int
	canceled   uint64
	// failed counts items lost to a backend failure: queued or
	// dispatched work withdrawn by FailQueued/FailDispatched when the
	// backend behind this frontend dies. With failures in play the
	// conservation invariant reads
	// accepted == completed + inside + queued + canceled + shed + failed.
	failed uint64
	// OnComplete, if set, observes every completion (used by drivers
	// for closed-loop clients and by controller wiring). Set hooks
	// before traffic flows; they run outside the frontend lock.
	OnComplete func(*Item)
	// OnDrop, if set, observes admission-control rejections.
	OnDrop func(*Item)
	// OnShed, if set, observes deadline sheds (after the item's own
	// done callback, outside the frontend lock).
	OnShed func(*Item)
	// rtSample, when enabled, reservoir-samples response times for
	// percentile reporting; rtClass splits the sampling per class (the
	// SLO controller steers on these). Guarded by metricsMu, like the
	// accumulators they ride along with.
	rtSample *stats.Reservoir
	rtClass  map[Class]*stats.Reservoir
	rtCap    int
	rtSeed   uint64
	// classAcc accumulates response times per class (any class ID, not
	// just the tracked range — this is where exotic classes get correct
	// accounting instead of being lumped into Low). Guarded by
	// metricsMu; entries are inserted once per class, so the completion
	// fast path stays allocation-free in steady state.
	classAcc map[Class]*stats.Accumulator
	// tenantMu guards the tenant registry, which is append-only:
	// RegisterClass hands out sequential class IDs.
	tenantMu sync.Mutex
	tenants  []Tenant
}

// Tenant is one registered tenant: a class ID bound to a human name, a
// WFQ/fairness weight, and an optional SLO target.
type Tenant struct {
	// Class is the tenant's class ID (sequential from 0 in
	// registration order).
	Class Class
	// Name is the tenant's human-readable name.
	Name string
	// Weight is the tenant's relative share weight (WFQ weight,
	// fairness-controller share). Must be > 0.
	Weight float64
	// SLOTarget is the tenant's p95 response-time target in seconds
	// (0 = none declared).
	SLOTarget float64
}

// RegisterClass adds a tenant to the registry and returns its class ID
// (sequential from 0 in registration order). weight must be > 0;
// sloTarget is an optional p95 target in seconds (0 = none). The
// registry is pure metadata: it names classes in reports and seeds
// controller weights, but items of unregistered classes flow through
// the gate exactly as before.
func (f *Frontend) RegisterClass(name string, weight, sloTarget float64) Class {
	if weight <= 0 {
		panic(fmt.Sprintf("core: tenant %q weight %v must be > 0", name, weight))
	}
	if sloTarget < 0 {
		panic(fmt.Sprintf("core: tenant %q SLO target %v must be >= 0", name, sloTarget))
	}
	f.tenantMu.Lock()
	defer f.tenantMu.Unlock()
	c := Class(len(f.tenants))
	f.tenants = append(f.tenants, Tenant{Class: c, Name: name, Weight: weight, SLOTarget: sloTarget})
	return c
}

// Tenants returns a copy of the tenant registry in class-ID order
// (nil when nothing is registered).
func (f *Frontend) Tenants() []Tenant {
	f.tenantMu.Lock()
	defer f.tenantMu.Unlock()
	if len(f.tenants) == 0 {
		return nil
	}
	out := make([]Tenant, len(f.tenants))
	copy(out, f.tenants)
	return out
}

// TenantName returns the registered name of class c ("" when
// unregistered).
func (f *Frontend) TenantName(c Class) string {
	f.tenantMu.Lock()
	defer f.tenantMu.Unlock()
	if c >= 0 && int(c) < len(f.tenants) {
		return f.tenants[c].Name
	}
	return ""
}

// New builds a frontend over backend with the given MPL (0 = unlimited)
// and policy (nil = FIFO), reading time from clock.
func New(clock sim.Clock, backend Backend, mpl int, policy Policy) *Frontend {
	if mpl < 0 || mpl > MaxMPL {
		panic(fmt.Sprintf("core: MPL %d must be in [0, %d]", mpl, MaxMPL))
	}
	if policy == nil {
		policy = NewFIFO()
	}
	f := &Frontend{clock: clock, backend: backend, policy: policy}
	f.word.Store(uint64(mpl) << limitShift)
	return f
}

// MPL returns the current limit (0 = unlimited). Lock-free.
func (f *Frontend) MPL() int {
	_, limit := unpack(f.word.Load())
	return limit
}

// SetMPL changes the limit. Raising it dispatches queued items
// immediately; lowering it takes effect as running items drain (the
// paper's controller operates the same way — no preemption of
// dispatched work). Because the limit shares the atomic gate word with
// the inside count, shrinking below the current inside count is safe
// under concurrency: admissions compare against the limit in the same
// CAS that claims a slot, so the count can overshoot neither the old
// nor the new limit, and it simply drains down (no underflow, no
// stranded waiters — the post-shrink dispatch and every release keep
// waking the queue).
func (f *Frontend) SetMPL(mpl int) {
	if mpl < 0 || mpl > MaxMPL {
		panic(fmt.Sprintf("core: MPL %d must be in [0, %d]", mpl, MaxMPL))
	}
	for {
		s := f.word.Load()
		ns := (s &^ (limitMask << limitShift)) | uint64(mpl)<<limitShift
		if f.word.CompareAndSwap(s, ns) {
			break
		}
	}
	f.dispatch()
}

// SetClassLimits partitions the MPL across priority classes: class c
// dispatches at most limits[c] concurrent items while other classes
// have eligible work (capacity is never left idle — see dispatch's
// work-conserving borrowing). Classes absent from the map are uncapped.
// Every present limit must be >= 1. nil (or an empty map) clears the
// partition. Raising or clearing limits dispatches deferred items
// immediately; lowering takes effect as running items drain.
func (f *Frontend) SetClassLimits(limits map[Class]int) {
	for c, l := range limits {
		if l < 1 {
			panic(fmt.Sprintf("core: class %d limit %d must be >= 1", c, l))
		}
	}
	f.mu.Lock()
	if len(limits) == 0 {
		f.classLimit = nil
	} else {
		f.classLimit = make(map[Class]int, len(limits))
		for c, l := range limits {
			f.classLimit[c] = l
		}
	}
	f.updateSlowLocked()
	f.mu.Unlock()
	f.dispatch()
}

// SetStrictPartition switches the class partition between
// work-conserving (the default: a class at its limit may still borrow
// capacity that would otherwise idle) and strict (limits are hard
// caps — a class at its limit waits even while slots sit idle). Strict
// partitions trade utilization for latency isolation: an overloaded
// tenant's backlog can no longer keep the backend saturated, so the
// other tenants' in-DBMS times stay near their uncontended levels. No
// effect while no partition is set.
func (f *Frontend) SetStrictPartition(strict bool) {
	f.mu.Lock()
	f.strictLimit = strict
	f.mu.Unlock()
	// Relaxing to work-conserving may unblock deferred work at once.
	f.dispatch()
}

// StrictPartition reports whether class limits are hard caps.
func (f *Frontend) StrictPartition() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.strictLimit
}

// ClassLimits returns a copy of the per-class limit partition (nil when
// no partition is set). Allocates a fresh map per call — reporters on a
// hot path should use ClassLimit instead.
func (f *Frontend) ClassLimits() map[Class]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.classLimit == nil {
		return nil
	}
	out := make(map[Class]int, len(f.classLimit))
	for c, l := range f.classLimit {
		out[c] = l
	}
	return out
}

// ClassLimit returns class c's limit under the current partition (ok
// false when the class is uncapped or no partition is set). Unlike
// ClassLimits it allocates nothing.
func (f *Frontend) ClassLimit(c Class) (limit int, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	limit, ok = f.classLimit[c]
	return limit, ok
}

// SetAdmitDeadline sets class c's admission deadline: an item of that
// class that cannot be dispatched within seconds of its arrival is shed
// (rejected without executing) instead of waiting forever — the paper's
// overload answer, applied per class. 0 clears the class's deadline.
// Applies to subsequent submissions; already-queued items keep the
// deadline they were stamped with.
func (f *Frontend) SetAdmitDeadline(c Class, seconds float64) {
	if seconds < 0 {
		panic(fmt.Sprintf("core: admit deadline %v must be >= 0", seconds))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	_, had := f.admitDeadline[c]
	if seconds == 0 {
		delete(f.admitDeadline, c)
		if had {
			f.deadlineArmed.Add(-1)
		}
		return
	}
	if f.admitDeadline == nil {
		f.admitDeadline = make(map[Class]float64)
	}
	f.admitDeadline[c] = seconds
	if !had {
		f.deadlineArmed.Add(1)
	}
}

// AdmitDeadline returns class c's admission deadline in seconds (0 =
// none).
func (f *Frontend) AdmitDeadline(c Class) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.admitDeadline[c]
}

// Shed returns the number of items rejected by deadline shedding.
func (f *Frontend) Shed() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shed
}

// ShedByClass returns class c's share of the shed count.
func (f *Frontend) ShedByClass(c Class) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shedClass[c]
}

// ShedCounts returns the total and high-class shed counts as one
// consistent snapshot. Concurrent reporters must use this instead of
// separate Shed/ShedByClass calls: a shed landing between two
// separately-locked reads would make the derived low-class share
// underflow.
func (f *Frontend) ShedCounts() (total, high uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shed, f.shedClass[ClassHigh]
}

// ShedClasses returns a copy of the per-class shed counts as one
// consistent snapshot (nil when nothing was shed) — the N-tenant
// generalization of ShedCounts.
func (f *Frontend) ShedClasses() map[Class]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.shedClass) == 0 {
		return nil
	}
	out := make(map[Class]uint64, len(f.shedClass))
	for c, n := range f.shedClass {
		out[c] = n
	}
	return out
}

// QueueLen returns the external queue length (withdrawn items awaiting
// lazy discard excluded; class-deferred items included — they are still
// waiting).
func (f *Frontend) QueueLen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.queueLenLocked()
}

func (f *Frontend) queueLenLocked() int {
	return f.policy.Len() + f.deferredCount - f.deadQueued
}

// Inside returns the number of dispatched, uncompleted items.
// Lock-free.
func (f *Frontend) Inside() int {
	inside, _ := unpack(f.word.Load())
	return inside
}

// Policy returns the queue policy. The frontend still owns it; do not
// call its methods while the frontend is in use.
func (f *Frontend) Policy() Policy { return f.policy }

// SetWFQWeights reconfigures the per-class weights of a WFQ policy
// mid-run (scenario events change policy weights this way). It reports
// false when the frontend's policy is not WFQ. Already-queued items
// keep the virtual-time tags they were charged at enqueue; the new
// weights apply to subsequent arrivals.
func (f *Frontend) SetWFQWeights(weights map[Class]float64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.policy.(*WFQPolicy)
	if !ok {
		return false
	}
	p.SetWeights(weights)
	return true
}

// EnablePercentiles turns on reservoir sampling of response times,
// overall and per class (capacity samples each, deterministic given
// seed). Enable before running for whole-run percentiles; enabling
// mid-run samples from that point on.
func (f *Frontend) EnablePercentiles(capacity int, seed uint64) {
	f.metricsMu.Lock()
	defer f.metricsMu.Unlock()
	f.rtSample = stats.NewReservoir(capacity, sim.NewRNG(seed, 31))
	f.rtClass = make(map[Class]*stats.Reservoir)
	f.rtCap, f.rtSeed = capacity, seed
}

// PercentilesEnabled reports whether response-time sampling is on.
func (f *Frontend) PercentilesEnabled() bool {
	f.metricsMu.Lock()
	defer f.metricsMu.Unlock()
	return f.rtSample != nil
}

// classReservoirLocked lazily builds class c's sampling reservoir. The
// RNG stream is derived from the class alone, so creation order cannot
// perturb determinism. Called with metricsMu held.
func (f *Frontend) classReservoirLocked(c Class) *stats.Reservoir {
	r := f.rtClass[c]
	if r == nil {
		r = stats.NewReservoir(f.rtCap, sim.NewRNG(f.rtSeed, 37+2*uint64(int64(c)&0xffff)))
		f.rtClass[c] = r
	}
	return r
}

// ResponseTimePercentile estimates the p-th percentile of response
// times in the current window (0 when sampling is disabled or empty).
func (f *Frontend) ResponseTimePercentile(p float64) float64 {
	f.metricsMu.Lock()
	defer f.metricsMu.Unlock()
	if f.rtSample == nil {
		return 0
	}
	return f.rtSample.Percentile(p)
}

// ClassResponseTimePercentile estimates the p-th percentile of class
// c's response times in the current window (0 when sampling is disabled
// or the class saw no completions) — the SLO controller's feedback
// signal.
func (f *Frontend) ClassResponseTimePercentile(c Class, p float64) float64 {
	f.metricsMu.Lock()
	defer f.metricsMu.Unlock()
	if f.rtClass == nil {
		return 0
	}
	r := f.rtClass[c]
	if r == nil {
		return 0
	}
	return r.Percentile(p)
}

// Metrics returns a snapshot of the metrics window.
func (f *Frontend) Metrics() Metrics {
	f.metricsMu.Lock()
	defer f.metricsMu.Unlock()
	m := f.metrics
	m.windowTime = f.clock.Now() - f.metrics.resetTime
	if len(f.classAcc) > 0 {
		m.Classes = make([]ClassMetric, 0, len(f.classAcc))
		for c, acc := range f.classAcc {
			cm := ClassMetric{Class: c, RT: *acc}
			i := 0
			for i < len(m.Classes) && m.Classes[i].Class < c {
				i++
			}
			m.Classes = append(m.Classes, ClassMetric{})
			copy(m.Classes[i+1:], m.Classes[i:])
			m.Classes[i] = cm
		}
	}
	return m
}

// ResetMetrics starts a fresh measurement window (e.g. after warmup,
// or per controller observation period).
func (f *Frontend) ResetMetrics() {
	f.metricsMu.Lock()
	defer f.metricsMu.Unlock()
	f.metrics = Metrics{resetTime: f.clock.Now()}
	if f.rtSample != nil {
		f.rtSample.Reset()
	}
	for _, r := range f.rtClass {
		r.Reset()
	}
	for _, acc := range f.classAcc {
		acc.Reset()
	}
}

// tryFastAdmit is the lock-free admission path: when the slow flag is
// clear (no queued or deferred work, no class partition) and nothing
// forces the mutex's ordering — no admit deadlines armed, no pre-set
// item deadline, a tracked class — a single CAS on the gate word
// claims a free slot and the item is dispatched on the spot, with
// Arrival == Dispatch. Returns false when the caller must go through
// the mutex path instead; it has then not touched the item.
//
// Fast admissions skip seq assignment: seq only breaks ties between
// QUEUED items (SJF order, WFQ heap), and a fast-admitted item is
// never queued, so the relative order among queued items is unchanged.
func (f *Frontend) tryFastAdmit(it *Item) bool {
	if it.Class < 0 || int(it.Class) >= trackedClasses || it.Deadline != 0 {
		return false
	}
	if f.deadlineArmed.Load() != 0 {
		return false
	}
	for {
		s := f.word.Load()
		if s&slowFlag != 0 {
			return false
		}
		inside, limit := unpack(s)
		if uint64(inside) == insideMask || (limit != 0 && inside >= limit) {
			return false
		}
		if f.word.CompareAndSwap(s, s+1) {
			now := f.clock.Now()
			it.Arrival, it.Dispatch = now, now
			it.state = itemDispatched
			f.classInside[it.Class].Add(1)
			return true
		}
		// The word moved under us (a racing admit, release, or a
		// slow-flag transition): reload and re-validate.
	}
}

// TryAcquire is the admission fast path for callers that handle the
// admitted work synchronously (the live gate): on success the item is
// dispatched — Arrival == Dispatch == now — WITHOUT Backend.Exec being
// called, the caller owns the slot, and it must call Complete (or
// Discard) for the item exactly once. It returns false, leaving the
// item untouched, whenever the fast path is unavailable (waiters
// queued, class limits or admit deadlines armed, the item carries a
// Deadline or an untracked class, or the gate is full); the caller
// must then go through Submit. TryAcquire never queues and never
// allocates.
func (f *Frontend) TryAcquire(it *Item) bool {
	it.done = nil
	return f.tryFastAdmit(it)
}

// Submit delivers a new item to the external scheduler. done, if not
// nil, runs on the item's completion before the frontend-wide
// OnComplete hook (used by closed-loop drivers to cycle their client).
// Under a queue limit (admission-control mode) the item may be
// rejected: Submit returns false, no callbacks are scheduled, and the
// drop is counted (and reported to OnDrop).
func (f *Frontend) Submit(it *Item, done func(*Item)) bool {
	if f.tryFastAdmit(it) {
		// Admitted without the mutex: a free slot, an empty queue, and
		// nothing slow-path-only in play. Same timestamps, same
		// counters, same Exec as the queue-then-immediately-dispatch
		// path below — just no lock and no seq.
		it.done = done
		f.backend.Exec(it)
		return true
	}
	f.mu.Lock()
	it.Arrival = f.clock.Now()
	it.seq = f.seq
	it.done = done
	f.seq++
	if it.Deadline == 0 && f.admitDeadline != nil {
		if d, ok := f.admitDeadline[it.Class]; ok {
			it.Deadline = it.Arrival + d
		}
	}
	if f.queueLimit > 0 && f.queueLenLocked() >= f.queueLimit {
		f.dropped++
		hook := f.OnDrop
		f.mu.Unlock()
		if hook != nil {
			hook(it)
		}
		return false
	}
	it.state = itemQueued
	f.policy.Push(it)
	// Raise the slow flag BEFORE unlocking: from here on a concurrent
	// fast release must fall into the mutex path (its CAS sees the
	// flag), and the dispatch below always re-checks the limit — so a
	// slot freed at any point around this push is never lost.
	f.updateSlowLocked()
	f.mu.Unlock()
	f.dispatch()
	return true
}

// updateSlowLocked recomputes the slow flag from the queue state:
// set while anything sits in the policy queue or a deferred ring
// (withdrawn items awaiting lazy discard included — they still occupy
// the policy) or while a class partition is armed. Called with f.mu
// held, as the last word-state mutation before every unlock — the flag
// only ever transitions under the mutex, which is what makes the
// fast-path CAS ordering sound.
func (f *Frontend) updateSlowLocked() {
	want := f.policy.Len()+f.deferredCount > 0 || f.classLimit != nil
	for {
		s := f.word.Load()
		ns := s &^ slowFlag
		if want {
			ns = s | slowFlag
		}
		if ns == s || f.word.CompareAndSwap(s, ns) {
			return
		}
	}
}

// compactThreshold bounds how many canceled items may linger in the
// queue before a bulk purge: once they exceed it AND outnumber half
// the queue, compact. Lazy head-of-queue discard alone is not enough —
// under SJF/WFQ a canceled large item may never surface, and while the
// backend stalls nothing surfaces at all.
const compactThreshold = 64

// CancelQueued withdraws a still-queued item (context cancellation in
// live gates). It reports whether the item was withdrawn; false means
// the item was already dispatched, completed, or shed. Withdrawn items
// are discarded lazily — when they surface at the head of the queue,
// or in bulk once enough accumulate — costing no slot and no metrics.
func (f *Frontend) CancelQueued(it *Item) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if it.state != itemQueued {
		return false
	}
	it.state = itemCanceled
	f.deadQueued++
	f.canceled++
	f.maybeCompactLocked()
	f.updateSlowLocked()
	return true
}

// ShedQueued withdraws a still-queued item as a deadline shed — the
// live gate's deadline timers use it to reject a ticket the moment its
// deadline passes instead of waiting for it to surface at the head of
// the queue. It reports whether the item was shed; false means the
// item was already dispatched, completed, canceled, or shed. Unlike
// the lazy dispatch-time shed, the caller's done callback and the
// OnShed hook fire before ShedQueued returns.
func (f *Frontend) ShedQueued(it *Item) bool {
	f.mu.Lock()
	if it.state != itemQueued {
		f.mu.Unlock()
		return false
	}
	it.state = itemShed
	f.shedLocked(it)
	f.deadQueued++
	f.maybeCompactLocked()
	f.updateSlowLocked()
	hook := f.OnShed
	f.mu.Unlock()
	notifyShed(it, hook)
	return true
}

// shedLocked stamps and counts a shed. Called with f.mu held; the item
// must already be marked itemShed.
func (f *Frontend) shedLocked(it *Item) {
	it.Complete = f.clock.Now()
	f.shed++
	if f.shedClass == nil {
		f.shedClass = make(map[Class]uint64)
	}
	f.shedClass[it.Class]++
}

// notifyShed delivers a shed item's callbacks (outside the lock): the
// per-item done callback first — it fires for sheds exactly as for
// completions, so closed-loop clients cycle; WasShed distinguishes —
// then the frontend-wide OnShed hook.
func notifyShed(it *Item, hook func(*Item)) {
	if it.done != nil {
		it.done(it)
	}
	if hook != nil {
		hook(it)
	}
}

// maybeCompactLocked purges withdrawn items in bulk once they exceed
// the threshold AND outnumber half the waiting items. Called with f.mu
// held.
func (f *Frontend) maybeCompactLocked() {
	if f.deadQueued >= compactThreshold && f.deadQueued*2 >= f.policy.Len()+f.deferredCount {
		f.compactLocked()
	}
}

// compactLocked purges canceled and shed items in bulk — from the
// policy queue (policies that support it) and the class-deferred
// rings. Called with f.mu held.
func (f *Frontend) compactLocked() {
	if c, ok := f.policy.(compactable); ok {
		da, _ := f.policy.(discardAware)
		c.compact(func(it *Item) bool {
			if it.state != itemCanceled && it.state != itemShed && it.state != itemFailed {
				return true
			}
			f.deadQueued--
			if da != nil {
				da.discarded(it)
			}
			return false
		})
	}
	for _, c := range f.deferredOrder {
		f.deferred[c].compact(func(it *Item) bool {
			if it.state != itemCanceled && it.state != itemShed && it.state != itemFailed {
				return true
			}
			f.deadQueued--
			f.deferredCount--
			return false
		})
	}
}

// Canceled returns the number of items withdrawn by CancelQueued.
func (f *Frontend) Canceled() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.canceled
}

// Failed returns the number of items lost to backend failures
// (FailQueued + FailDispatched).
func (f *Frontend) Failed() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}

// FailQueued withdraws a still-queued item because the backend behind
// the frontend died: the item never executes and is counted in Failed.
// It reports whether the item was withdrawn; false means the item was
// already dispatched, completed, canceled, or shed. Like CancelQueued
// the discard is lazy and no callbacks fire — the caller (the cluster
// dispatcher's recovery policy) decides whether to resubmit the work
// elsewhere or deliver a terminal failure.
func (f *Frontend) FailQueued(it *Item) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if it.state != itemQueued {
		return false
	}
	it.state = itemFailed
	it.Complete = f.clock.Now()
	f.deadQueued++
	f.failed++
	f.maybeCompactLocked()
	f.updateSlowLocked()
	return true
}

// FailDispatched withdraws an admitted, uncompleted item because the
// backend executing it died: the slot is freed, the loss is counted in
// Failed, and — as with FailQueued — no callbacks fire. The backend
// must never call Complete for the item afterwards (simulated backends
// suppress the late completion; see dbfe). Panics unless the item is
// currently dispatched.
func (f *Frontend) FailDispatched(it *Item) {
	f.mu.Lock()
	if it.state != itemDispatched {
		f.mu.Unlock()
		panic(fmt.Sprintf("core: FailDispatched on an item in state %d", it.state))
	}
	it.state = itemFailed
	it.Complete = f.clock.Now()
	f.releaseSlot()
	f.decClassLocked(it.Class)
	f.failed++
	f.mu.Unlock()
	f.dispatch()
}

// SetQueueLimit enables admission-control mode: arrivals that find
// limit items already queued are dropped. 0 disables dropping (pure
// external scheduling).
func (f *Frontend) SetQueueLimit(limit int) {
	if limit < 0 {
		panic(fmt.Sprintf("core: queue limit %d must be >= 0", limit))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.queueLimit = limit
}

// Dropped returns the number of admission-control rejections.
func (f *Frontend) Dropped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// dispatch admits queued items while the MPL allows. Backend.Exec and
// the shed callbacks run outside the lock, so backends may call back
// into the frontend (and completions on other goroutines may
// interleave).
func (f *Frontend) dispatch() {
	for {
		f.mu.Lock()
		it, shedList := f.nextDispatchLocked()
		if it != nil {
			it.state = itemDispatched
			it.Dispatch = f.clock.Now()
			f.claimSlotLocked()
			f.incClassLocked(it.Class)
		}
		f.updateSlowLocked()
		hook := f.OnShed
		f.mu.Unlock()
		for _, s := range shedList {
			notifyShed(s, hook)
		}
		if it == nil {
			return
		}
		f.backend.Exec(it)
	}
}

// claimSlotLocked increments the inside count for an item popped by
// nextDispatchLocked. The limit was checked there; between that check
// and this increment only releases can race (the slow flag is set
// while anything is queued, which disables fast admissions, and other
// dispatchers need the mutex we hold), and releases only shrink the
// count — so the claim cannot overshoot. Called with f.mu held.
func (f *Frontend) claimSlotLocked() {
	for {
		s := f.word.Load()
		if s&insideMask == insideMask {
			panic("core: inside count overflow")
		}
		if f.word.CompareAndSwap(s, s+1) {
			return
		}
	}
}

// releaseSlot decrements the inside count (a completion, discard, or
// dispatched-failure freeing its slot). Safe with or without f.mu: the
// CAS retries around any racing word mutation.
func (f *Frontend) releaseSlot() {
	for {
		s := f.word.Load()
		if s&insideMask == 0 {
			panic("core: inside count underflow")
		}
		if f.word.CompareAndSwap(s, s-1) {
			return
		}
	}
}

// insideOfClassLocked reads class c's inside count. Called with f.mu
// held (tracked classes are atomics, but the exotic-class map is not).
func (f *Frontend) insideOfClassLocked(c Class) int {
	if c >= 0 && int(c) < trackedClasses {
		return int(f.classInside[c].Load())
	}
	return f.classInsideX[c]
}

func (f *Frontend) incClassLocked(c Class) {
	if c >= 0 && int(c) < trackedClasses {
		f.classInside[c].Add(1)
		return
	}
	if f.classInsideX == nil {
		f.classInsideX = make(map[Class]int)
	}
	f.classInsideX[c]++
}

func (f *Frontend) decClassLocked(c Class) {
	if c >= 0 && int(c) < trackedClasses {
		f.classInside[c].Add(-1)
		return
	}
	f.classInsideX[c]--
}

// classEligibleLocked reports whether class c may dispatch under the
// current partition. Called with f.mu held.
func (f *Frontend) classEligibleLocked(c Class) bool {
	if f.classLimit == nil {
		return true
	}
	lim, ok := f.classLimit[c]
	return !ok || f.insideOfClassLocked(c) < lim
}

// deferLocked parks a popped item whose class is at its limit,
// preserving policy-pop order within the class. Called with f.mu held.
func (f *Frontend) deferLocked(it *Item) {
	if f.deferred == nil {
		f.deferred = make(map[Class]*ring)
	}
	r := f.deferred[it.Class]
	if r == nil {
		r = &ring{}
		f.deferred[it.Class] = r
		i := 0
		for i < len(f.deferredOrder) && f.deferredOrder[i] < it.Class {
			i++
		}
		f.deferredOrder = append(f.deferredOrder, 0)
		copy(f.deferredOrder[i+1:], f.deferredOrder[i:])
		f.deferredOrder[i] = it.Class
	}
	r.push(it)
	f.deferredCount++
}

// popDeferredLocked pops the next live, unexpired item from class c's
// deferred ring, shedding expired ones into shedList. Called with f.mu
// held.
func (f *Frontend) popDeferredLocked(c Class, now float64, shedList *[]*Item) *Item {
	r := f.deferred[c]
	for r != nil && r.len() > 0 {
		cand := r.pop()
		f.deferredCount--
		if cand.state == itemCanceled || cand.state == itemShed || cand.state == itemFailed {
			// Withdrawn after deferral; its WFQ charge (if any) was
			// settled when the policy popped it, so just drop it.
			f.deadQueued--
			continue
		}
		if cand.Deadline > 0 && now > cand.Deadline {
			cand.state = itemShed
			f.shedLocked(cand)
			*shedList = append(*shedList, cand)
			continue
		}
		return cand
	}
	return nil
}

// nextDispatchLocked picks the next item to dispatch, or nil. Expired
// items encountered along the way are shed and returned for callback
// delivery outside the lock. Called with f.mu held.
//
// Selection order: (1) class-deferred items whose class has room —
// they were popped by the policy first, so they go first; (2) the
// policy queue, deferring items whose class is at its limit; (3) if
// capacity would otherwise idle while only class-blocked work waits,
// borrow: dispatch a deferred item past its class limit. Both
// deferred scans visit classes highest-first: larger Class values are
// the preferred ones repository-wide (ClassHigh > ClassLow), so a
// spare slot must never go to deferred low-class work while
// high-class work waits. Step 3 is what makes the partition
// work-conserving — class limits shape contention between classes,
// they never throttle the whole gate below its MPL. A strict
// partition (SetStrictPartition) skips step 3: limits become hard
// caps and capacity may idle while only at-limit classes hold work.
func (f *Frontend) nextDispatchLocked() (it *Item, shedList []*Item) {
	if inside, limit := unpack(f.word.Load()); limit != 0 && inside >= limit {
		return nil, nil
	}
	now := f.clock.Now()
	for i := len(f.deferredOrder) - 1; i >= 0; i-- {
		c := f.deferredOrder[i]
		if !f.classEligibleLocked(c) {
			continue
		}
		if cand := f.popDeferredLocked(c, now, &shedList); cand != nil {
			return cand, shedList
		}
	}
	for {
		cand := f.policy.Pop()
		if cand == nil {
			break
		}
		if cand.state == itemCanceled || cand.state == itemShed || cand.state == itemFailed {
			f.deadQueued--
			if da, ok := f.policy.(discardAware); ok {
				da.discarded(cand)
			}
			continue
		}
		if cand.Deadline > 0 && now > cand.Deadline {
			cand.state = itemShed
			f.shedLocked(cand)
			if da, ok := f.policy.(discardAware); ok {
				da.discarded(cand)
			}
			shedList = append(shedList, cand)
			continue
		}
		if !f.classEligibleLocked(cand.Class) {
			f.deferLocked(cand)
			continue
		}
		return cand, shedList
	}
	if f.strictLimit {
		return nil, shedList
	}
	for i := len(f.deferredOrder) - 1; i >= 0; i-- {
		if cand := f.popDeferredLocked(f.deferredOrder[i], now, &shedList); cand != nil {
			return cand, shedList
		}
	}
	return nil, shedList
}

// Discard completes an admitted item WITHOUT recording it in the
// metrics window — for work withdrawn right after admission (a live
// caller whose context died in the instant between admission and
// wake-up) that never actually ran. The slot is freed, the queue
// refilled, and the withdrawal counted in Canceled; the done and
// OnComplete hooks do not run, so a feedback controller's observation
// window sees no fabricated near-zero response time.
func (f *Frontend) Discard(it *Item) {
	f.mu.Lock()
	if it.state != itemDispatched {
		f.mu.Unlock()
		panic(fmt.Sprintf("core: Discard on an item in state %d", it.state))
	}
	it.state = itemDone
	it.Complete = f.clock.Now()
	f.releaseSlot()
	f.decClassLocked(it.Class)
	f.canceled++
	f.mu.Unlock()
	f.dispatch()
}

// Complete records an item's completion and refills the backend from
// the queue. Backends call it exactly once per executed item.
//
// When the slow flag is clear at the instant of the slot-freeing CAS —
// nothing queued, no class partition — the completion never takes the
// queue mutex: the CAS frees the slot, metrics are recorded under
// metricsMu, the callbacks run, and there is nobody to dispatch. If
// anything was waiting, the flag was set (it is only cleared under the
// mutex once the queue is empty), the CAS fails or the flag check
// does, and the completion falls through to the mutex path, whose
// dispatch wakes the queue. Either way the conservation invariant
// (accepted == completed + inside + queued + canceled + shed + failed)
// holds at every linearization point of the gate word.
func (f *Frontend) Complete(it *Item, o Outcome) {
	if it.state != itemDispatched {
		panic(fmt.Sprintf("core: Complete on an item in state %d (double completion?)", it.state))
	}
	if c := it.Class; c >= 0 && int(c) < trackedClasses {
		for {
			s := f.word.Load()
			if s&slowFlag != 0 {
				break // waiters or a partition: take the mutex path
			}
			if s&insideMask == 0 {
				panic("core: inside count underflow")
			}
			if f.word.CompareAndSwap(s, s-1) {
				it.state = itemDone
				it.Complete = f.clock.Now()
				it.Outcome = o
				f.classInside[c].Add(-1)
				f.finishCompletion(it, o)
				return
			}
		}
	}
	f.mu.Lock()
	if it.state != itemDispatched {
		f.mu.Unlock()
		panic(fmt.Sprintf("core: Complete on an item in state %d (double completion?)", it.state))
	}
	it.state = itemDone
	it.Complete = f.clock.Now()
	it.Outcome = o
	f.releaseSlot()
	f.decClassLocked(it.Class)
	f.mu.Unlock()
	f.finishCompletion(it, o)
	f.dispatch()
}

// finishCompletion records a completed item in the metrics window and
// delivers its callbacks. Shared by the fast and slow completion
// paths; called WITHOUT f.mu held (metricsMu is taken here, and the
// hooks may re-enter the frontend).
func (f *Frontend) finishCompletion(it *Item, o Outcome) {
	rt := it.ResponseTime()
	f.metricsMu.Lock()
	m := &f.metrics
	m.Completed++
	m.All.Add(rt)
	if it.Class == ClassHigh {
		m.High.Add(rt)
	} else {
		m.Low.Add(rt)
	}
	acc := f.classAcc[it.Class]
	if acc == nil {
		if f.classAcc == nil {
			f.classAcc = make(map[Class]*stats.Accumulator)
		}
		acc = &stats.Accumulator{}
		f.classAcc[it.Class] = acc
	}
	acc.Add(rt)
	m.Inside.Add(o.InsideTime)
	m.ExtWait.Add(it.ExternalWait())
	m.Restarts += uint64(o.Restarts)
	if f.rtSample != nil {
		f.rtSample.Add(rt)
		f.classReservoirLocked(it.Class).Add(rt)
	}
	f.metricsMu.Unlock()
	if it.done != nil {
		it.done(it)
	}
	if hook := f.OnComplete; hook != nil {
		hook(it)
	}
}

package extsched_test

import (
	"context"
	"fmt"
	"log"

	"extsched"
)

// Example_surgeScenario is the quickstart, scenario-style: measure the
// no-MPL reference, then run a two-phase scenario — a steady closed
// phase that hands the MPL to the Section 4.3 feedback controller
// (which walks a deliberately wasteful starting limit down), followed
// by an open ramp surging past saturation with the tuned limit frozen.
// The external queue absorbs the surge while throughput holds: the
// paper's result, scripted in one declarative value.
func Example_surgeScenario() {
	sys, err := extsched.NewSystem(extsched.Config{SetupID: 1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Probe the no-MPL optimum the controller will defend. The System
	// is reusable: every run rebuilds pristine state from the seed.
	base, err := sys.RunClosed(100, 20, 100)
	if err != nil {
		log.Fatal(err)
	}

	sys.SetMPL(8) // wasteful start; the controller will walk it down
	res, err := sys.Run(context.Background(), extsched.Scenario{
		Name:           "surge-demo",
		Warmup:         20,
		SampleInterval: 25,
		Phases: []extsched.Phase{
			{
				Name: "steady", Kind: extsched.PhaseClosed, Clients: 100, Duration: 150,
				Events: []extsched.Event{{EnableController: &extsched.ControllerSpec{
					MaxThroughputLoss:   0.05,
					ReferenceThroughput: base.Throughput,
				}}},
			},
			{
				Name: "surge", Kind: extsched.PhaseRamp, Duration: 150,
				Lambda: 0.5 * base.Throughput, Lambda2: 1.3 * base.Throughput,
				// Freeze the tuned limit for the surge.
				Events: []extsched.Event{{DisableController: true}},
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	lastSnap := res.Snapshots[len(res.Snapshots)-1]
	fmt.Printf("phases measured: %d, snapshots streamed (>= 10): %v\n",
		len(res.Phases), len(res.Snapshots) >= 10)
	fmt.Printf("controller adapted the MPL below the wasteful start: %v\n",
		res.Tune != nil && res.FinalMPL >= 1 && res.FinalMPL < 8)
	fmt.Printf("steady-phase throughput within 10%% of the reference: %v\n",
		res.Phases[0].Throughput >= 0.9*base.Throughput)
	fmt.Printf("surge backlog absorbed in the external queue: %v\n",
		lastSnap.Queued > 0)
	// Output:
	// phases measured: 2, snapshots streamed (>= 10): true
	// controller adapted the MPL below the wasteful start: true
	// steady-phase throughput within 10% of the reference: true
	// surge backlog absorbed in the external queue: true
}

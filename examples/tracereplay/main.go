// Trace replay: take a production-shaped transaction trace (the
// paper's retailer/auction comparison, C² ≈ 2), replay it through the
// external scheduler at several MPLs, and watch how mean and tail
// response times react — the workflow a DBA would use with their own
// transaction log before picking an MPL. The replay is a one-phase
// trace Scenario, so the same System is reused for every MPL point.
//
//	go run ./examples/tracereplay
package main

import (
	"context"
	"fmt"
	"log"

	"extsched"
)

func main() {
	// A synthetic stand-in for the paper's top-10 retailer trace:
	// 60k transactions, C² ≈ 2, bursty arrivals.
	synth := extsched.TraceSynth{
		N: 60000, MeanDemand: 0.05, DemandC2: 2.0, Lambda: 50,
		Burstiness: 2, Source: "synthetic-retailer", Seed: 42,
	}
	fmt.Printf("replaying %s: %d transactions, mean demand %.1f ms, C² = %.1f\n\n",
		synth.Source, synth.N, synth.MeanDemand*1000, synth.DemandC2)
	fmt.Printf("%6s %12s %12s %12s %12s\n", "MPL", "tput (tx/s)", "meanRT (ms)", "p95 (ms)", "p99 (ms)")

	// The traced site ran on a larger box than one core (its offered
	// load is ~2.5 core-seconds per second); replay onto 4 cores at
	// recorded speed: ~63% mean utilization with bursts that
	// transiently exceed capacity — where the MPL choice matters.
	sys, err := extsched.NewSystem(extsched.Config{
		Workload: "W_CPU-inventory", CPUs: 4, Disks: 1,
		PercentileSamples: 20000,
		Seed:              1,
	})
	if err != nil {
		log.Fatal(err)
	}
	scenario := extsched.Scenario{
		Phases: []extsched.Phase{{
			Kind:       extsched.PhaseTrace,
			TraceSynth: &synth,
			Duration:   1300, // covers the trace's ~1200-second span
		}},
	}
	for _, mpl := range []int{2, 4, 8, 16, 0} {
		sys.SetMPL(mpl)
		res, err := sys.Run(context.Background(), scenario)
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Total
		label := fmt.Sprint(mpl)
		if mpl == 0 {
			label = "none"
		}
		fmt.Printf("%6s %12.1f %12.2f %12.2f %12.2f\n",
			label, rep.Throughput, rep.MeanRT*1000, rep.P95*1000, rep.P99*1000)
	}
	fmt.Println()
	fmt.Println("Reading: at C² ≈ 2 the mean RT flattens at a modest MPL — the")
	fmt.Println("paper's finding that production workloads sit between TPC-C")
	fmt.Println("(insensitive) and TPC-W (needs MPL 8-15). The p99 shows the")
	fmt.Println("residual head-of-line blocking cost of very low MPLs.")
}

// Autotune: the paper's Section 4 tool end-to-end. First the queueing
// models recommend a starting MPL (MVA for throughput, the QBD chain
// for response time); then the feedback controller refines it against
// the live (simulated) system until the DBA's tolerance is met.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"extsched"
)

func main() {
	const setupID = 8 // W_IO-inventory on 4 disks: needs a nontrivial MPL
	const maxLoss = 0.05

	fmt.Printf("Auto-tuning the MPL for setup %d (IO bound, 4 disks), max %d%% throughput loss\n\n",
		setupID, int(maxLoss*100))

	// One System serves all three steps: each run rebuilds pristine
	// simulation state, so the probe, the tuning run, and the
	// verification run stay independent.
	sys, err := extsched.NewSystem(extsched.Config{SetupID: setupID, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 — measure the no-MPL reference (deployments could instead
	// probe periodically or use the model's bound).
	base, err := sys.RunClosed(100, 100, 800)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference (no MPL): %.2f tx/s, mean RT %.2fs\n", base.Throughput, base.MeanRT)

	// Step 2 — run the jump-started feedback controller.
	res, err := sys.AutoTune(100, maxLoss, base.Throughput, 20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model jump-start:   MPL %d\n", res.StartMPL)
	fmt.Printf("controller:         converged=%v after %d iterations, final MPL %d\n",
		res.Converged, res.Iterations, res.FinalMPL)

	// Step 3 — verify the tuned MPL holds the throughput target.
	sys.SetMPL(res.FinalMPL)
	rep, err := sys.RunClosed(100, 100, 800)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification:       %.2f tx/s at MPL %d (%.1f%% of reference)\n",
		rep.Throughput, res.FinalMPL, 100*rep.Throughput/base.Throughput)
	fmt.Println()
	fmt.Println("The paper's claim: the model jump-start puts the loop close enough")
	fmt.Println("that constant ±1 steps converge in under ten observation windows.")
}

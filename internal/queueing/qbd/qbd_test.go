package qbd

import (
	"math"
	"testing"

	"extsched/internal/dist"
	"extsched/internal/queueing/ctmc"
	"extsched/internal/queueing/mg1"
)

func TestMM1Limit(t *testing.T) {
	// C²=1 (exponential-equivalent H2): for ANY MPL the system is an
	// M/M/1 (PS and FIFO coincide for exponential with memorylessness in
	// the mean): E[N] = ρ/(1−ρ).
	job := dist.FitH2(1, 1.0000001) // C² ≈ 1, keeps P strictly inside (0,1)
	for _, mpl := range []int{1, 2, 5, 10} {
		sol, err := Solve(Model{Lambda: 0.7, Job: job, MPL: mpl})
		if err != nil {
			t.Fatalf("MPL=%d: %v", mpl, err)
		}
		want := 0.7 / 0.3
		if math.Abs(sol.MeanJobs-want)/want > 0.01 {
			t.Errorf("MPL=%d: E[N] = %v, want ~%v", mpl, sol.MeanJobs, want)
		}
	}
}

func TestMPL1IsMG1FIFO(t *testing.T) {
	// With MPL=1 the system is a plain M/G/1 FIFO queue; the mean
	// response time must match Pollaczek–Khinchine.
	for _, c2 := range []float64{2, 5, 10, 15} {
		job := dist.FitH2(1, c2)
		lambda := 0.7
		sol, err := Solve(Model{Lambda: lambda, Job: job, MPL: 1})
		if err != nil {
			t.Fatalf("C²=%v: %v", c2, err)
		}
		want := mg1.Params{Lambda: lambda, MeanSize: 1, C2: c2}.FIFOResponse()
		if math.Abs(sol.MeanRT-want)/want > 0.005 {
			t.Errorf("C²=%v: E[T] = %v, want PK %v", c2, sol.MeanRT, want)
		}
	}
}

func TestHighMPLApproachesPS(t *testing.T) {
	// As MPL grows, mean RT approaches the PS limit E[S]/(1−ρ),
	// insensitive to C².
	job := dist.FitH2(1, 10)
	lambda := 0.7
	ps := 1 / (1 - 0.7)
	sol, err := Solve(Model{Lambda: lambda, Job: job, MPL: 60})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.MeanRT-ps)/ps > 0.05 {
		t.Errorf("MPL=60: E[T] = %v, want ≈ PS %v", sol.MeanRT, ps)
	}
}

func TestRTDecreasingInMPLForHighC2(t *testing.T) {
	// Fig. 10's key shape: for high C², mean RT decreases (weakly) as
	// MPL grows from 1 toward the PS value.
	job := dist.FitH2(1, 15)
	lambda := 0.7
	prev := math.Inf(1)
	for _, mpl := range []int{1, 2, 5, 10, 20, 35} {
		sol, err := Solve(Model{Lambda: lambda, Job: job, MPL: mpl})
		if err != nil {
			t.Fatalf("MPL=%d: %v", mpl, err)
		}
		if sol.MeanRT > prev*1.02 {
			t.Errorf("MPL=%d: RT %v rose above previous %v", mpl, sol.MeanRT, prev)
		}
		prev = sol.MeanRT
	}
}

func TestLowC2InsensitiveToMPL(t *testing.T) {
	// Fig. 10: for C² ≤ 2 the RT is nearly flat in MPL (within ~15% of
	// PS already at MPL=5).
	job := dist.FitH2(1, 2)
	lambda := 0.7
	ps := 1 / (1 - 0.7)
	sol, err := Solve(Model{Lambda: lambda, Job: job, MPL: 5})
	if err != nil {
		t.Fatal(err)
	}
	if (sol.MeanRT-ps)/ps > 0.15 {
		t.Errorf("C²=2, MPL=5: RT %v more than 15%% above PS %v", sol.MeanRT, ps)
	}
}

func TestAgreesWithTruncatedCTMC(t *testing.T) {
	// The matrix-geometric solution and the truncated Gauss–Seidel
	// solution of the same chain must agree closely.
	cases := []struct {
		lambda, c2 float64
		mpl        int
	}{
		{0.5, 2, 1},
		{0.5, 5, 3},
		{0.7, 2, 2},
		{0.7, 10, 5},
		{0.8, 5, 8},
	}
	for _, tc := range cases {
		job := dist.FitH2(1, tc.c2)
		qs, err := Solve(Model{Lambda: tc.lambda, Job: job, MPL: tc.mpl})
		if err != nil {
			t.Fatalf("%+v: qbd: %v", tc, err)
		}
		cs, err := ctmc.Solve(ctmc.FlexModel{Lambda: tc.lambda, Job: job, MPL: tc.mpl})
		if err != nil {
			t.Fatalf("%+v: ctmc: %v", tc, err)
		}
		if rel := math.Abs(qs.MeanRT-cs.MeanRT) / cs.MeanRT; rel > 0.01 {
			t.Errorf("%+v: qbd RT %v vs ctmc RT %v (rel %v)", tc, qs.MeanRT, cs.MeanRT, rel)
		}
		// Level probabilities should also agree for small n.
		for n := 0; n <= tc.mpl+3; n++ {
			qp, cp := qs.LevelProb(n), cs.Distribution[n]
			if math.Abs(qp-cp) > 0.005 {
				t.Errorf("%+v: P(N=%d) qbd %v vs ctmc %v", tc, n, qp, cp)
			}
		}
	}
}

func TestSpectralRadiusBelowOne(t *testing.T) {
	job := dist.FitH2(1, 10)
	sol, err := Solve(Model{Lambda: 0.9, Job: job, MPL: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sol.SpectralRadius >= 1 {
		t.Errorf("sp(R) = %v, want < 1", sol.SpectralRadius)
	}
	if sol.SpectralRadius <= 0 {
		t.Errorf("sp(R) = %v, want > 0", sol.SpectralRadius)
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	job := dist.FitH2(1, 5)
	sol, err := Solve(Model{Lambda: 0.7, Job: job, MPL: 4})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for n := 0; n < 400; n++ {
		total += sol.LevelProb(n)
	}
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("Σ P(N=n) = %v, want 1", total)
	}
}

func TestUtilizationMatchesRho(t *testing.T) {
	// P(N=0) must equal 1−ρ for any work-conserving single-server queue.
	for _, tc := range []struct {
		lambda, c2 float64
		mpl        int
	}{{0.3, 5, 2}, {0.7, 15, 10}, {0.9, 2, 3}} {
		job := dist.FitH2(1, tc.c2)
		sol, err := Solve(Model{Lambda: tc.lambda, Job: job, MPL: tc.mpl})
		if err != nil {
			t.Fatal(err)
		}
		p0 := sol.LevelProb(0)
		if math.Abs(p0-(1-tc.lambda)) > 1e-6 {
			t.Errorf("λ=%v C²=%v MPL=%d: P(N=0)=%v, want %v", tc.lambda, tc.c2, tc.mpl, p0, 1-tc.lambda)
		}
	}
}

func TestValidation(t *testing.T) {
	good := dist.FitH2(1, 5)
	cases := []Model{
		{Lambda: 0, Job: good, MPL: 1},
		{Lambda: 1.5, Job: good, MPL: 1},                // unstable
		{Lambda: 0.5, Job: good, MPL: 0},                // bad MPL
		{Lambda: 0.5, Job: dist.NewH2(1, 1, 1), MPL: 1}, // degenerate P=1
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted: %+v", i, m)
		}
	}
}

func TestMinMPLForResponseTime(t *testing.T) {
	// Low C² needs small MPL; high C² needs larger MPL; higher load
	// needs larger MPL still (the paper's §4.2 summary).
	lowC2 := dist.FitH2(1, 1.5)
	highC2 := dist.FitH2(1, 15)
	mLow, err := MinMPLForResponseTime(0.7, lowC2, 0.1, 50)
	if err != nil {
		t.Fatal(err)
	}
	mHigh, err := MinMPLForResponseTime(0.7, highC2, 0.1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if mLow > 5 {
		t.Errorf("min MPL for C²=1.5 = %d, want <= 5", mLow)
	}
	if mHigh <= mLow {
		t.Errorf("min MPL for C²=15 (%d) should exceed C²=1.5 (%d)", mHigh, mLow)
	}
	mHigh9, err := MinMPLForResponseTime(0.9, highC2, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if mHigh9 < mHigh {
		t.Errorf("min MPL at load .9 (%d) should be >= load .7 (%d)", mHigh9, mHigh)
	}
	if _, err := MinMPLForResponseTime(1.2, highC2, 0.1, 10); err == nil {
		t.Error("unstable MinMPLForResponseTime should error")
	}
}

func TestLittleLawInternalConsistency(t *testing.T) {
	job := dist.FitH2(2, 8)
	lambda := 0.35 // rho = 0.7
	sol, err := Solve(Model{Lambda: lambda, Job: job, MPL: 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.MeanRT-sol.MeanJobs/lambda) > 1e-12 {
		t.Error("MeanRT != MeanJobs/lambda")
	}
	// Mean size 2 scales RT accordingly: PS limit = 2/(1-0.7).
	ps := 2 / (1 - 0.7)
	if sol.MeanRT < ps*0.99 {
		t.Errorf("RT %v below the PS lower bound %v", sol.MeanRT, ps)
	}
}

func TestBinarySearchMatchesLinearScan(t *testing.T) {
	for _, tc := range []struct {
		lambda, c2, tol float64
		maxMPL          int
	}{
		{0.7, 5, 0.1, 40},
		{0.7, 15, 0.1, 40},
		{0.5, 10, 0.2, 30},
	} {
		job := dist.FitH2(1, tc.c2)
		bin, err := MinMPLForResponseTime(tc.lambda, job, tc.tol, tc.maxMPL)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := MinMPLForResponseTimeLinear(tc.lambda, job, tc.tol, tc.maxMPL)
		if err != nil {
			t.Fatal(err)
		}
		if bin != lin {
			t.Errorf("%+v: binary %d != linear %d", tc, bin, lin)
		}
	}
}

func TestMinMPLUnreachableTarget(t *testing.T) {
	job := dist.FitH2(1, 15)
	// Tiny tolerance at high load: even a large MPL can't reach it.
	m, err := MinMPLForResponseTime(0.9, job, 0.0001, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m != 6 {
		t.Errorf("unreachable target should return maxMPL+1, got %d", m)
	}
}

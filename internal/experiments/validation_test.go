package experiments

// Cross-validation of the discrete-event simulator against closed-form
// queueing theory and the matrix-analytic solvers. These tests are the
// strongest evidence that the substrate is sound: three independent
// implementations (DES, QBD matrix-geometric, truncated CTMC) of the
// paper's Fig. 8 system must agree.

import (
	"math"
	"testing"

	"extsched/internal/core"
	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/dist"
	"extsched/internal/lockmgr"
	"extsched/internal/queueing/mg1"
	"extsched/internal/queueing/mmc"
	"extsched/internal/queueing/qbd"
	"extsched/internal/sim"
	"extsched/internal/stats"
)

// runOpenCPUOnly drives a pure-CPU DBMS (no locks, no IO, no log) with
// Poisson arrivals and job sizes from d, under the given MPL.
// Returns (mean RT, mean jobs in system estimate via Little).
func runOpenCPUOnly(t *testing.T, d dist.Distribution, lambda float64, mpl int, n int) float64 {
	t.Helper()
	eng := sim.NewEngine()
	db, err := dbms.New(eng, dbms.Config{
		CPUs: 1, Disks: 1,
		LogService: dist.NewDeterministic(0), // no log cost
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	fe := dbfe.New(eng, db, mpl, nil)
	g := sim.NewRNG(8, 0)
	var rts stats.Accumulator
	fe.OnComplete = func(tx *dbfe.Txn) { rts.Add(tx.ResponseTime()) }
	var key uint64 = 1 << 45
	var arrive func(remaining int)
	arrive = func(remaining int) {
		if remaining == 0 {
			return
		}
		eng.After(g.ExpFloat64()/lambda, func() {
			key++
			fe.Submit(dbms.TxnProfile{
				Ops: []dbms.Op{{Key: key, CPUWork: d.Sample(g)}},
			})
			arrive(remaining - 1)
		})
	}
	arrive(n)
	eng.RunAll()
	// Discard the first fifth as warmup by re-running with a window is
	// overkill here; long runs dominate the transient.
	return rts.Mean()
}

// TestSimulatorMatchesMG1FIFO: MPL=1 turns the system into an M/G/1
// FIFO queue; mean RT must match Pollaczek–Khinchine.
func TestSimulatorMatchesMG1FIFO(t *testing.T) {
	for _, c2 := range []float64{1.000001, 5} {
		job := dist.FitH2(0.01, c2)
		lambda := 60.0 // rho 0.6
		got := runOpenCPUOnly(t, job, lambda, 1, 150000)
		want := mg1.Params{Lambda: lambda, MeanSize: 0.01, C2: c2}.FIFOResponse()
		if math.Abs(got-want)/want > 0.08 {
			t.Errorf("C²=%v: sim RT %v, PK %v", c2, got, want)
		}
	}
}

// TestSimulatorMatchesPS: with unlimited MPL, a single PS CPU is an
// M/G/1/PS queue: E[T] = E[S]/(1−ρ) regardless of C².
func TestSimulatorMatchesPS(t *testing.T) {
	for _, c2 := range []float64{1.000001, 10} {
		job := dist.FitH2(0.01, c2)
		lambda := 60.0
		got := runOpenCPUOnly(t, job, lambda, 0, 150000)
		want := 0.01 / (1 - 0.6)
		if math.Abs(got-want)/want > 0.08 {
			t.Errorf("C²=%v: sim PS RT %v, want %v", c2, got, want)
		}
	}
}

// TestSimulatorMatchesQBD is the headline three-way agreement: the DES
// with a finite MPL must match the Fig. 9 chain's matrix-geometric
// solution (which itself matches the truncated CTMC — see the qbd
// package tests).
func TestSimulatorMatchesQBD(t *testing.T) {
	cases := []struct {
		c2     float64
		mpl    int
		lambda float64
	}{
		{5, 2, 60},
		{5, 5, 60},
		{15, 3, 70},
		{10, 8, 70},
	}
	for _, tc := range cases {
		job := dist.FitH2(0.01, tc.c2)
		got := runOpenCPUOnly(t, job, tc.lambda, tc.mpl, 200000)
		sol, err := qbd.Solve(qbd.Model{Lambda: tc.lambda, Job: job, MPL: tc.mpl})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-sol.MeanRT) / sol.MeanRT; rel > 0.1 {
			t.Errorf("C²=%v MPL=%d λ=%v: sim RT %v vs QBD %v (rel %.3f)",
				tc.c2, tc.mpl, tc.lambda, got, sol.MeanRT, rel)
		}
	}
}

// TestLittlesLawInFrontend: N̄ = λ·T̄ measured independently inside the
// frontend must agree.
func TestLittlesLawInFrontend(t *testing.T) {
	eng := sim.NewEngine()
	db, err := dbms.New(eng, dbms.Config{
		CPUs: 1, Disks: 1,
		LogService: dist.NewDeterministic(0),
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	fe := dbfe.New(eng, db, 3, nil)
	g := sim.NewRNG(4, 0)
	job := dist.FitH2(0.01, 5)
	lambda := 60.0
	// Time-average number in system (queue + inside), sampled by
	// integrating at every event boundary via a poller.
	var areaN float64
	lastT := 0.0
	sample := func() {
		now := eng.Now()
		areaN += float64(fe.QueueLen()+fe.Inside()) * (now - lastT)
		lastT = now
	}
	var rts stats.Accumulator
	fe.OnComplete = func(tx *dbfe.Txn) {
		// OnComplete fires after the departure was subtracted from the
		// frontend's counters; the elapsed interval still contained the
		// departing transaction, so add it back for this sample.
		now := eng.Now()
		areaN += float64(fe.QueueLen()+fe.Inside()+1) * (now - lastT)
		lastT = now
		rts.Add(tx.ResponseTime())
	}
	var key uint64 = 1 << 46
	const n = 100000
	var arrive func(remaining int)
	arrive = func(remaining int) {
		if remaining == 0 {
			return
		}
		eng.After(g.ExpFloat64()/lambda, func() {
			sample()
			key++
			fe.Submit(dbms.TxnProfile{Ops: []dbms.Op{{Key: key, CPUWork: job.Sample(g)}}})
			arrive(remaining - 1)
		})
	}
	arrive(n)
	eng.RunAll()
	meanN := areaN / eng.Now()
	// λ_effective over the full horizon (arrivals stop before drain).
	lamEff := float64(n) / eng.Now()
	if got, want := meanN, lamEff*rts.Mean(); math.Abs(got-want)/want > 0.05 {
		t.Errorf("Little's law: N̄=%v vs λT̄=%v", got, want)
	}
}

// TestPriorityClassesConservation: with a priority external queue, the
// class-weighted mean RT must equal the overall mean RT (conservation
// of the aggregate), and the high class must beat FIFO's common RT.
func TestPriorityClassesConservation(t *testing.T) {
	eng := sim.NewEngine()
	db, err := dbms.New(eng, dbms.Config{
		CPUs: 1, Disks: 1,
		LogService: dist.NewDeterministic(0),
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fe := dbfe.New(eng, db, 1, core.NewPriority())
	g := sim.NewRNG(6, 0)
	job := dist.FitH2(0.01, 5)
	var key uint64 = 1 << 47
	const n = 60000
	var arrive func(remaining int)
	arrive = func(remaining int) {
		if remaining == 0 {
			return
		}
		eng.After(g.ExpFloat64()/70, func() {
			key++
			class := lockmgr.Low
			if g.Float64() < 0.1 {
				class = lockmgr.High
			}
			fe.Submit(dbms.TxnProfile{
				Ops:   []dbms.Op{{Key: key, CPUWork: job.Sample(g)}},
				Class: class,
			})
			arrive(remaining - 1)
		})
	}
	arrive(n)
	eng.RunAll()
	m := fe.Metrics()
	pHigh := float64(m.High.Count()) / float64(m.All.Count())
	weighted := pHigh*m.High.Mean() + (1-pHigh)*m.Low.Mean()
	if math.Abs(weighted-m.All.Mean())/m.All.Mean() > 1e-9 {
		t.Errorf("class-weighted RT %v != overall %v", weighted, m.All.Mean())
	}
	if m.High.Mean() >= m.Low.Mean() {
		t.Errorf("high class RT %v should beat low %v under priority", m.High.Mean(), m.Low.Mean())
	}
}

// TestSimulatorMatchesErlangC: an unlimited-MPL multi-core CPU with
// exponential jobs behaves as an M/M/c system (flexible PS sharing has
// the same total-rate birth–death process as FCFS M/M/c), so the mean
// response time must match Erlang-C.
func TestSimulatorMatchesErlangC(t *testing.T) {
	for _, tc := range []struct {
		cores  int
		lambda float64
	}{
		{2, 150}, // rho .75 at mu=100
		{4, 300}, // rho .75
	} {
		eng := sim.NewEngine()
		db, err := dbms.New(eng, dbms.Config{
			CPUs: tc.cores, Disks: 1,
			LogService: dist.NewDeterministic(0),
			Seed:       17,
		})
		if err != nil {
			t.Fatal(err)
		}
		fe := dbfe.New(eng, db, 0, nil)
		g := sim.NewRNG(18, 0)
		job := dist.NewExponential(0.01) // mu = 100
		var rts stats.Accumulator
		fe.OnComplete = func(tx *dbfe.Txn) { rts.Add(tx.ResponseTime()) }
		var key uint64 = 1 << 48
		const n = 150000
		var arrive func(remaining int)
		arrive = func(remaining int) {
			if remaining == 0 {
				return
			}
			eng.After(g.ExpFloat64()/tc.lambda, func() {
				key++
				fe.Submit(dbms.TxnProfile{Ops: []dbms.Op{{Key: key, CPUWork: job.Sample(g)}}})
				arrive(remaining - 1)
			})
		}
		arrive(n)
		eng.RunAll()
		want := mmc.Params{Lambda: tc.lambda, Mu: 100, Servers: tc.cores}.MeanResponse()
		if rel := math.Abs(rts.Mean()-want) / want; rel > 0.06 {
			t.Errorf("c=%d λ=%v: sim RT %v vs Erlang-C %v (rel %.3f)",
				tc.cores, tc.lambda, rts.Mean(), want, rel)
		}
	}
}

package gate

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"extsched/internal/sim"
	metricspkg "extsched/metrics"
)

func TestGateLimitsConcurrency(t *testing.T) {
	g, err := New(Config{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a, err := g.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Stats().Inflight; got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	// A third Acquire must block until a slot frees.
	third := make(chan Ticket, 1)
	go func() {
		tk, err := g.Acquire(ctx)
		if err != nil {
			t.Error(err)
		}
		third <- tk
	}()
	select {
	case <-third:
		t.Fatal("third Acquire did not block at limit 2")
	case <-time.After(20 * time.Millisecond):
	}
	a.Release(Result{})
	select {
	case tk := <-third:
		tk.Release(Result{})
	case <-time.After(2 * time.Second):
		t.Fatal("queued Acquire was not admitted after Release")
	}
	b.Release(Result{})
	s := g.Stats()
	if s.Inflight != 0 || s.Queued != 0 || s.Completed != 3 {
		t.Errorf("final stats = %+v, want drained with 3 completions", s)
	}
}

func TestUnlimitedGate(t *testing.T) {
	g, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var tks []Ticket
	for i := 0; i < 50; i++ {
		tk, err := g.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	if got := g.Stats().Inflight; got != 50 {
		t.Errorf("inflight = %d, want 50 (unlimited)", got)
	}
	for _, tk := range tks {
		tk.Release(Result{})
	}
}

func TestQueueFullDrops(t *testing.T) {
	g, err := New(Config{Limit: 1, QueueLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tk, err := g.Acquire(ctx) // occupies the slot
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan Ticket, 1)
	go func() {
		q, err := g.Acquire(ctx) // fills the queue
		if err != nil {
			t.Error(err)
		}
		queued <- q
	}()
	// Wait for the goroutine's request to reach the queue.
	for g.Stats().Queued != 1 {
		time.Sleep(time.Millisecond)
	}
	if _, err := g.Acquire(ctx); err != ErrQueueFull {
		t.Errorf("Acquire with full queue = %v, want ErrQueueFull", err)
	}
	if got := g.Stats().Dropped; got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	tk.Release(Result{})
	(<-queued).Release(Result{})
}

func TestContextCancelWhileQueued(t *testing.T) {
	g, err := New(Config{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		errc <- err
	}()
	for g.Stats().Queued != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Errorf("canceled Acquire = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled Acquire did not return")
	}
	if got := g.Stats().Canceled; got != 1 {
		t.Errorf("canceled = %d, want 1", got)
	}
	// The withdrawn request must not consume the slot freed next.
	tk.Release(Result{})
	tk2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tk2.Release(Result{})
}

func TestAcquireOnDeadContext(t *testing.T) {
	g, err := New(Config{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Acquire(ctx); err != context.Canceled {
		t.Errorf("Acquire on dead context = %v, want context.Canceled", err)
	}
}

func TestDoubleReleaseIsNoOp(t *testing.T) {
	g, err := New(Config{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tk.Release(Result{})
	tk.Release(Result{}) // must not double-free the slot
	s := g.Stats()
	if s.Completed != 1 || s.Inflight != 0 {
		t.Errorf("stats after double release = %+v", s)
	}
}

func TestErrorCounting(t *testing.T) {
	g, err := New(Config{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	tk, _ := g.Acquire(context.Background())
	tk.Release(Result{Err: context.DeadlineExceeded})
	if got := g.Stats().Errors; got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
}

func TestPriorityPolicyAdmitsHighFirst(t *testing.T) {
	g, err := New(Config{Limit: 1, Policy: Priority})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tk, err := g.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan Class, 2)
	var wg sync.WaitGroup
	enqueue := func(c Class) {
		defer wg.Done()
		t2, err := g.AcquireRequest(ctx, Request{Class: c})
		if err != nil {
			t.Error(err)
			return
		}
		order <- c
		t2.Release(Result{})
	}
	wg.Add(1)
	go enqueue(ClassLow)
	for g.Stats().Queued != 1 {
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go enqueue(ClassHigh)
	for g.Stats().Queued != 2 {
		time.Sleep(time.Millisecond)
	}
	tk.Release(Result{})
	wg.Wait()
	if first := <-order; first != ClassHigh {
		t.Errorf("first admitted class = %d, want ClassHigh", first)
	}
}

func TestInvalidConfig(t *testing.T) {
	cases := []Config{
		{Limit: -1},
		{QueueLimit: -2},
		{Policy: "zzz"},
		{Policy: WFQ, WFQWeights: map[Class]float64{ClassHigh: -1}},
	}
	for i, cfg := range cases {
		func() {
			defer func() { recover() }() // WFQ weight panic counts as rejection
			if g, err := New(cfg); err == nil && g != nil {
				t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
			}
		}()
	}
}

// TestConcurrentAcquireReleaseInvariant hammers the gate from many
// goroutines (run with -race) and checks the core invariant: observed
// concurrency never exceeds the limit, and every admission is
// released.
func TestConcurrentAcquireReleaseInvariant(t *testing.T) {
	const limit = 4
	g, err := New(Config{Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	var inflight, peak, total atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tk, err := g.Acquire(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				n := inflight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				total.Add(1)
				inflight.Add(-1)
				tk.Release(Result{})
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > limit {
		t.Errorf("observed concurrency %d exceeded limit %d", p, limit)
	}
	if got := total.Load(); got != 1600 {
		t.Errorf("completions = %d, want 1600", got)
	}
	s := g.Stats()
	if s.Inflight != 0 || s.Queued != 0 || s.Completed != 1600 {
		t.Errorf("final stats = %+v", s)
	}
}

// TestConcurrentCancellationStorm mixes cancellations into concurrent
// load; the gate's accounting must stay exact.
func TestConcurrentCancellationStorm(t *testing.T) {
	g, err := New(Config{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%3)*time.Millisecond)
				tk, err := g.Acquire(ctx)
				if err == nil {
					time.Sleep(100 * time.Microsecond)
					tk.Release(Result{})
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	s := g.Stats()
	if s.Inflight != 0 || s.Queued != 0 {
		t.Errorf("gate not drained after cancellation storm: %+v", s)
	}
}

// TestAutoTuneConvergesToCapacity drives the gate over a resource with
// hard capacity 4 (an inner worker pool) and checks the feedback
// controller walks the limit down to that capacity — the paper's
// convergence claim under real concurrent load and a wall clock.
func TestAutoTuneConvergesToCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock convergence test")
	}
	const capacity = 4
	const hold = time.Millisecond
	// Start unlimited: the no-limit run both measures the reference
	// throughput (sleep overshoot and scheduler noise included, which a
	// nominal capacity/hold computation would miss) and mirrors the
	// documented tuning workflow.
	g, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool := make(chan struct{}, capacity)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tk, err := g.Acquire(context.Background())
				if err != nil {
					return
				}
				pool <- struct{}{} // hard capacity of the guarded resource
				time.Sleep(hold)
				<-pool
				tk.Release(Result{})
			}
		}()
	}
	time.Sleep(200 * time.Millisecond) // warm up
	g.ResetStats()
	time.Sleep(time.Second)
	reference := g.Stats().Throughput
	if reference <= 0 {
		t.Fatal("no reference throughput measured")
	}
	g.SetLimit(16)
	if err := g.EnableAutoTune(TuneConfig{
		MaxThroughputLoss:   0.15,
		ReferenceThroughput: reference,
		MinObservations:     50,
		MaxWindow:           500,
		MaxLimit:            64,
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(30 * time.Second)
	for !g.TuneStatus().Converged {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatalf("controller did not converge in 30s: %+v stats %+v", g.TuneStatus(), g.Stats())
		case <-time.After(50 * time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
	st := g.TuneStatus()
	// The lowest feasible limit is the capacity itself (capacity-1
	// loses 1/capacity = 25% throughput, beyond the 15% tolerance).
	// Scheduling noise can leave the loop a few steps above.
	if st.Limit < capacity || st.Limit > 2*capacity {
		t.Errorf("converged limit = %d, want in [%d,%d] (status %+v)", st.Limit, capacity, 2*capacity, st)
	}
}

func TestWatchStreamsSnapshots(t *testing.T) {
	g, err := New(Config{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var snaps []Stats
	stop := g.Watch(0.02, metricspkg.ObserverFunc(func(s Stats) {
		mu.Lock()
		snaps = append(snaps, s)
		mu.Unlock()
	}))
	defer stop()
	// Drive some traffic while the watcher ticks.
	deadline := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(deadline) {
		tk, err := g.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
		tk.Release(Result{})
	}
	mu.Lock()
	n := len(snaps)
	var last Stats
	if n > 0 {
		last = snaps[n-1]
	}
	mu.Unlock()
	if n < 3 {
		t.Fatalf("watcher delivered %d snapshots in 150ms at 20ms intervals", n)
	}
	if last.Completed == 0 || last.Throughput <= 0 {
		t.Errorf("snapshot carries no completions: %+v", last)
	}
	if last.Limit != 2 {
		t.Errorf("snapshot limit = %d, want 2", last.Limit)
	}
	if last.Time <= 0 || last.Window <= 0 {
		t.Errorf("snapshot missing time/window: %+v", last)
	}
	// stop() halts the stream: no further snapshots arrive.
	stop()
	mu.Lock()
	n = len(snaps)
	mu.Unlock()
	time.Sleep(60 * time.Millisecond)
	mu.Lock()
	after := len(snaps)
	mu.Unlock()
	if after > n+1 { // one in-flight tick may slip in
		t.Errorf("snapshots kept arriving after stop: %d -> %d", n, after)
	}
}

// captureClock is a manual sim.Clock for deterministic watcher tests:
// After only records the callback (never auto-fires), and its Timer's
// Cancel is a no-op — modeling a wall timer that has already fired, so
// stop()'s Cancel arrives too late to withdraw it.
type captureClock struct {
	t   float64
	fns []func()
}

func (c *captureClock) Now() float64 { return c.t }
func (c *captureClock) After(d float64, fn func()) sim.Timer {
	c.fns = append(c.fns, fn)
	return firedTimer{}
}

type firedTimer struct{}

func (firedTimer) Cancel() {}

// TestWatchStopSilencesLateTick deterministically pins the fix the
// race test flushed out: a Watch tick whose timer fires AFTER stop()
// (too late for Cancel to withdraw it) must not deliver a snapshot.
func TestWatchStopSilencesLateTick(t *testing.T) {
	ck := &captureClock{}
	g, err := New(Config{Limit: 1, clock: ck})
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	stop := g.Watch(1, metricspkg.ObserverFunc(func(Stats) { emitted++ }))
	if len(ck.fns) != 1 {
		t.Fatalf("watcher armed %d timers, want 1", len(ck.fns))
	}
	ck.t = 1
	ck.fns[0]() // tick 1: live — emits and rearms
	if emitted != 1 || len(ck.fns) != 2 {
		t.Fatalf("after first tick: emitted=%d timers=%d, want 1/2", emitted, len(ck.fns))
	}
	stop()
	ck.t = 2
	ck.fns[1]() // tick 2 fires after stop: must stay silent, not rearm
	if emitted != 1 {
		t.Errorf("tick after stop delivered a snapshot (emitted=%d)", emitted)
	}
	if len(ck.fns) != 2 {
		t.Errorf("tick after stop rearmed a timer (%d timers)", len(ck.fns))
	}
}

// TestWatchRace hammers Watch from every side at once — concurrent
// Acquire/Release traffic, SetLimit flapping, overlapping watchers,
// and stop racing the ticks — under -race in CI. (The post-stop
// silence guarantee itself is pinned deterministically by
// TestWatchStopSilencesLateTick; asserting it here would race the
// legitimate one-tick overlap Watch documents.)
func TestWatchRace(t *testing.T) {
	g, err := New(Config{Limit: 4, PercentileSamples: 256})
	if err != nil {
		t.Fatal(err)
	}
	obs := metricspkg.ObserverFunc(func(s Stats) {
		_ = s.Throughput // read fields concurrently with traffic
	})

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for {
				select {
				case <-done:
					return
				default:
				}
				tk, err := g.AcquireRequest(ctx, Request{SizeHint: 0.001})
				if err != nil {
					t.Error(err)
					return
				}
				tk.Release(Result{})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			g.SetLimit(2 + i%6)
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Overlapping watchers starting and stopping while traffic flows.
	for round := 0; round < 20; round++ {
		stop1 := g.Watch(0.0005, obs)
		stop2 := g.Watch(0.0007, obs)
		time.Sleep(2 * time.Millisecond)
		stop1()
		stop2()
		stop1() // idempotent
	}
	close(done)
	wg.Wait()
	s := g.Stats()
	if s.Inflight != 0 {
		t.Errorf("gate not drained: %+v", s)
	}
}

// TestSetLimitShrinkUnderLoad verifies SetLimit races cleanly with the
// lock-free counter: shrinking below the current inflight count must
// not underflow, must block new admissions until the overshoot drains,
// and must not strand queued waiters afterwards.
func TestSetLimitShrinkUnderLoad(t *testing.T) {
	g, err := New(Config{Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var held []Ticket
	for i := 0; i < 4; i++ {
		tk, err := g.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, tk)
	}
	g.SetLimit(2)
	if got := g.Inflight(); got != 4 {
		t.Fatalf("Inflight=%d after shrink, want 4 (overshoot drains, never truncates)", got)
	}
	admitted := make(chan Ticket, 1)
	go func() {
		tk, err := g.Acquire(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		admitted <- tk
	}()
	// 4, then 3, then 2 inflight: all still >= the new limit of 2, so
	// the waiter must stay queued.
	held[0].Release(Result{})
	held[1].Release(Result{})
	select {
	case <-admitted:
		t.Fatal("waiter admitted while inflight >= shrunken limit")
	case <-time.After(20 * time.Millisecond):
	}
	held[2].Release(Result{}) // 1 < 2: the waiter must wake now
	select {
	case tk := <-admitted:
		tk.Release(Result{})
	case <-time.After(2 * time.Second):
		t.Fatal("waiter stranded after the overshoot drained")
	}
	held[3].Release(Result{})
	if got := g.Inflight(); got != 0 {
		t.Fatalf("Inflight=%d after drain, want 0 (underflow check)", got)
	}
}

// TestSetLimitShrinkConcurrentHammer flips the limit while goroutines
// hammer Acquire/Release across the fast and slow paths; run with
// -race. The invariant is only that nothing underflows, deadlocks, or
// strands: every Acquire eventually returns and the gate drains to 0.
func TestSetLimitShrinkConcurrentHammer(t *testing.T) {
	g, err := New(Config{Limit: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	stop := make(chan struct{})
	go func() {
		limits := []int{8, 2, 5, 1, 8, 3}
		for i := 0; ; i++ {
			select {
			case <-stop:
				g.SetLimit(0)
				return
			default:
				g.SetLimit(limits[i%len(limits)])
			}
		}
	}()
	var wg sync.WaitGroup
	iters := 2000
	if testing.Short() {
		iters = 300
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tk, err := g.Acquire(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				tk.Release(Result{})
			}
		}()
	}
	wg.Wait()
	close(stop)
	if got := g.Inflight(); got != 0 {
		t.Fatalf("Inflight=%d after drain, want 0", got)
	}
	if got := g.Queued(); got != 0 {
		t.Fatalf("Queued=%d after drain, want 0", got)
	}
}

// TestAcquireReleaseZeroAlloc pins the live fast path at zero
// allocations per op — ticket slots are pooled and the admission word
// is lock-free, so a warm gate must not touch the heap.
func TestAcquireReleaseZeroAlloc(t *testing.T) {
	g, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		tk, err := g.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		tk.Release(Result{})
	}); n != 0 {
		t.Errorf("Acquire+Release allocates %v/op, want 0", n)
	}
}

// TestHotAccessorsZeroAlloc pins the accessors documented as
// hot-path-safe: Limit, Inflight, Queued and ClassLimit must not
// allocate (Stats and ClassLimits are reporting calls and may).
func TestHotAccessorsZeroAlloc(t *testing.T) {
	g, err := New(Config{Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetClassLimits(map[Class]int{0: 2}); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = g.Limit()
		_ = g.Inflight()
		_ = g.Queued()
		_, _ = g.ClassLimit(0)
	}); n != 0 {
		t.Errorf("hot accessors allocate %v/op, want 0", n)
	}
}

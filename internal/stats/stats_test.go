package stats

import (
	"math"
	"testing"
	"testing/quick"

	"extsched/internal/sim"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.Count() != 8 {
		t.Errorf("Count = %d, want 8", a.Count())
	}
	if a.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Unbiased variance of this classic dataset is 32/7.
	if math.Abs(a.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", a.Variance(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", a.Min(), a.Max())
	}
	if math.Abs(a.Sum()-40) > 1e-12 {
		t.Errorf("Sum = %v, want 40", a.Sum())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.C2() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	if !math.IsInf(a.CIHalfWidth(0.95), 1) {
		t.Error("CI of empty accumulator should be +Inf")
	}
}

func TestAccumulatorReset(t *testing.T) {
	var a Accumulator
	a.Add(5)
	a.Reset()
	if a.Count() != 0 || a.Mean() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestAccumulatorMergeProperty(t *testing.T) {
	// Merging two accumulators must equal accumulating the concatenation.
	f := func(xs, ys []float64) bool {
		clean := func(v []float64) []float64 {
			out := v[:0]
			for _, x := range v {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Accumulator
		for _, x := range xs {
			a.Add(x)
			all.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			all.Add(y)
		}
		a.Merge(&b)
		if a.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(all.Mean()))
		return math.Abs(a.Mean()-all.Mean()) < tol &&
			math.Abs(a.Variance()-all.Variance()) < 1e-4*(1+all.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestC2OfExponential(t *testing.T) {
	g := sim.NewRNG(5, 0)
	var a Accumulator
	for i := 0; i < 500000; i++ {
		a.Add(g.ExpFloat64())
	}
	if math.Abs(a.C2()-1) > 0.03 {
		t.Errorf("C² of exponential sample = %v, want ~1", a.C2())
	}
}

func TestCIHalfWidthShrinks(t *testing.T) {
	g := sim.NewRNG(6, 0)
	var small, large Accumulator
	for i := 0; i < 20; i++ {
		small.Add(g.NormFloat64())
	}
	for i := 0; i < 2000; i++ {
		large.Add(g.NormFloat64())
	}
	if small.CIHalfWidth(0.95) <= large.CIHalfWidth(0.95) {
		t.Error("CI half-width should shrink with more samples")
	}
	// For 2000 standard normals, 95% CI half-width ≈ 1.96/sqrt(2000) ≈ 0.0438.
	want := 1.96 / math.Sqrt(2000)
	if math.Abs(large.CIHalfWidth(0.95)-want)/want > 0.15 {
		t.Errorf("CI half-width = %v, want ~%v", large.CIHalfWidth(0.95), want)
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	cases := []struct {
		conf float64
		dof  int
		want float64
	}{
		{0.95, 1, 12.706},
		{0.95, 10, 2.228},
		{0.95, 30, 2.042},
		{0.95, 1000, 1.959964},
		{0.99, 5, 4.032},
		{0.90, 10, 1.812},
	}
	for _, c := range cases {
		got := tQuantile(c.conf, c.dof)
		if math.Abs(got-c.want) > 1e-3 {
			t.Errorf("tQuantile(%v,%d) = %v, want %v", c.conf, c.dof, got, c.want)
		}
	}
}

func TestTQuantileInterpolationMonotone(t *testing.T) {
	prev := tQuantile(0.95, 30)
	for dof := 31; dof <= 121; dof++ {
		cur := tQuantile(0.95, dof)
		if cur > prev+1e-12 {
			t.Fatalf("tQuantile not non-increasing at dof=%d: %v > %v", dof, cur, prev)
		}
		prev = cur
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(v, 50); p != 5.5 {
		t.Errorf("p50 = %v, want 5.5", p)
	}
	if p := Percentile(v, 0); p != 1 {
		t.Errorf("p0 = %v, want 1", p)
	}
	if p := Percentile(v, 100); p != 10 {
		t.Errorf("p100 = %v, want 10", p)
	}
	if p := Percentile(v, 90); math.Abs(p-9.1) > 1e-12 {
		t.Errorf("p90 = %v, want 9.1", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Errorf("percentile of empty = %v, want 0", p)
	}
	// Input must not be mutated.
	v2 := []float64{3, 1, 2}
	Percentile(v2, 50)
	if v2[0] != 3 || v2[1] != 1 || v2[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestBatchMeans(t *testing.T) {
	// 100 values, 10 batches of 10; value = batch index → batch means 0..9.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i / 10)
	}
	bm := NewBatchMeans(vals, 10)
	if bm.Size != 10 {
		t.Errorf("batch size = %d, want 10", bm.Size)
	}
	if bm.Batches.Count() != 10 {
		t.Errorf("batch count = %d, want 10", bm.Batches.Count())
	}
	if math.Abs(bm.Batches.Mean()-4.5) > 1e-12 {
		t.Errorf("mean of batch means = %v, want 4.5", bm.Batches.Mean())
	}
}

func TestBatchMeansDegenerate(t *testing.T) {
	bm := NewBatchMeans([]float64{1}, 5)
	if bm.Batches.Count() != 0 {
		t.Error("degenerate batch means should be empty")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	slope, intercept, r2 := LinearFit(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Errorf("fit = (%v, %v), want (2, 1)", slope, intercept)
	}
	if math.Abs(r2-1) > 1e-12 {
		t.Errorf("R² = %v, want 1", r2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	g := sim.NewRNG(9, 0)
	var x, y []float64
	for i := 0; i < 200; i++ {
		xv := float64(i)
		x = append(x, xv)
		y = append(y, 4+0.5*xv+0.1*g.NormFloat64())
	}
	slope, intercept, r2 := LinearFit(x, y)
	if math.Abs(slope-0.5) > 0.01 {
		t.Errorf("slope = %v, want ~0.5", slope)
	}
	if math.Abs(intercept-4) > 0.2 {
		t.Errorf("intercept = %v, want ~4", intercept)
	}
	if r2 < 0.99 {
		t.Errorf("R² = %v, want > 0.99", r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if s, i, r := LinearFit([]float64{1}, []float64{1}); s != 0 || i != 0 || r != 0 {
		t.Error("single-point fit should return zeros")
	}
	if s, _, _ := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); s != 0 {
		t.Error("zero x-variance fit should return zero slope")
	}
}

func TestMeanOf(t *testing.T) {
	if m := MeanOf([]float64{1, 2, 3}); m != 2 {
		t.Errorf("MeanOf = %v, want 2", m)
	}
	if m := MeanOf(nil); m != 0 {
		t.Errorf("MeanOf(nil) = %v, want 0", m)
	}
}

func TestC2OfConstant(t *testing.T) {
	if c := C2Of([]float64{5, 5, 5, 5}); c != 0 {
		t.Errorf("C² of constant = %v, want 0", c)
	}
}

package extsched

import (
	"context"
	"runtime"
	"testing"

	"extsched/metrics"
)

// TestChurnSoakFlatHeap is the nightly leak check for the fault model:
// an eight-shard system runs a long open-load phase under the
// MTBF/MTTR churn generator with resubmit recovery armed, and the
// observer samples the garbage-collected heap as the run progresses.
// Every fault allocates — withdrawn attempts, retry timers, backoff
// RNG state, availability records — so a leak anywhere in the
// fail/recover/resubmit cycle shows up as monotonic heap growth over
// the hundreds of generated faults. The run must end with a heap no
// larger than its early steady state (within tolerance), and the churn
// must actually have fired.
func TestChurnSoakFlatHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: long churny run, skipped with -short (nightly runs it in full)")
	}
	const shards = 8
	sys, err := NewSystem(Config{
		SetupID: 1, MPL: 5 * shards, Seed: 33,
		Shards:   ShardSpec{Count: shards, Dispatch: "jsq"},
		Recovery: &RecoverySpec{Mode: RecoveryResubmit, RetryBudget: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// MTBF 40 / MTTR 8 over 1500 simulated seconds generates a few
	// hundred fail/recover cycles; λ is sized so the fleet keeps
	// headroom with the expected one-to-two shards down at a time.
	sc := Scenario{
		Name:           "churn-soak",
		Warmup:         20,
		SampleInterval: 25,
		Phases: []Phase{
			{Name: "soak", Kind: PhaseOpen, Lambda: 400, Duration: 1500,
				Churn: &ChurnSpec{MTBF: 40, MTTR: 8, Seed: 7}},
		},
	}
	var heap []uint64
	obs := metrics.ObserverFunc(func(s metrics.Snapshot) {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap = append(heap, ms.HeapAlloc)
	})
	res, err := sys.Run(context.Background(), sc, obs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Resubmitted == 0 {
		t.Fatal("soak generated no resubmissions — churn never caught the system busy; raise the load")
	}
	if len(heap) < 16 {
		t.Fatalf("only %d heap samples; need enough to compare early vs late", len(heap))
	}
	// Compare the late-run heap against the early steady state. The
	// first quarter is excluded (warmup and lazily-grown buffers —
	// percentile reservoirs, snapshot slices — are still filling); from
	// there the heap must be flat: mean of the last quarter within 1.5x
	// of the second quarter's mean, plus a small absolute slack so a
	// tiny baseline heap doesn't make the ratio twitchy.
	q := len(heap) / 4
	mean := func(xs []uint64) float64 {
		var sum float64
		for _, x := range xs {
			sum += float64(x)
		}
		return sum / float64(len(xs))
	}
	early := mean(heap[q : 2*q])
	late := mean(heap[3*q:])
	const slack = 4 << 20
	if late > early*1.5+slack {
		t.Errorf("heap grew across the soak: early mean %.0f bytes, late mean %.0f bytes (want late <= 1.5*early + %d)",
			early, late, slack)
	}
	t.Logf("soak: resubmitted %d, retries %d, lost %d; heap early %.1f MiB late %.1f MiB",
		res.Total.Resubmitted, res.Total.Retries, res.Total.Failed,
		early/(1<<20), late/(1<<20))
}

// TestLargeFleetSoakBoundedMetrics is the nightly memory check for the
// N >= 1000 path: a 1000-shard fleet under sampled dispatch runs a
// long open phase with percentile tracking on, and the
// garbage-collected heap must stay flat as transactions accumulate.
// The metric state is designed to be bounded — the class reservoirs
// share a fixed sample budget and the per-shard p95 estimators are
// constant-memory P² trackers (five markers each, regardless of how
// many observations stream through) — so heap growth proportional to
// completions would mean one of them regressed to O(samples).
func TestLargeFleetSoakBoundedMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: long 1000-shard run, skipped with -short (nightly runs it in full)")
	}
	// W_IO-browsing has the smallest buffer pool of the Table 1
	// workloads, which keeps the 1000-backend build affordable.
	const shards = 1000
	sys, err := NewSystem(Config{
		Workload: "W_IO-browsing", MPL: 2 * shards, Seed: 9,
		PercentileSamples: 4000,
		Shards:            ShardSpec{Count: shards, Dispatch: "jsq-d:3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Name:           "large-fleet-soak",
		Warmup:         5,
		SampleInterval: 2,
		Phases: []Phase{
			{Name: "soak", Kind: PhaseOpen, Lambda: 1000, Duration: 80},
		},
	}
	var heap []uint64
	obs := metrics.ObserverFunc(func(s metrics.Snapshot) {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap = append(heap, ms.HeapAlloc)
	})
	res, err := sys.Run(context.Background(), sc, obs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Completed == 0 {
		t.Fatal("no completions on the large fleet")
	}
	if len(heap) < 16 {
		t.Fatalf("only %d heap samples; need enough to compare early vs late", len(heap))
	}
	// Percentile tracking must actually have run at this scale: the
	// class reservoirs feed the run-level p95 and the per-shard P²
	// estimators feed the shard table.
	if res.Total.P95 <= 0 {
		t.Error("run-level p95 missing despite PercentileSamples")
	}
	withP95 := 0
	for _, sr := range res.Shards {
		if sr.P95 > 0 {
			withP95++
		}
	}
	if withP95 < shards/2 {
		t.Errorf("only %d of %d shards report a P² p95; sampled dispatch should have fed most of the fleet", withP95, shards)
	}
	// Same flat-heap rule as the churn soak: late-run mean within 1.5x
	// of the early steady state plus a small absolute slack.
	q := len(heap) / 4
	mean := func(xs []uint64) float64 {
		var sum float64
		for _, x := range xs {
			sum += float64(x)
		}
		return sum / float64(len(xs))
	}
	early := mean(heap[q : 2*q])
	late := mean(heap[3*q:])
	const slack = 8 << 20
	if late > early*1.5+slack {
		t.Errorf("heap grew across the soak: early mean %.0f bytes, late mean %.0f bytes (want late <= 1.5*early + %d)",
			early, late, slack)
	}
	t.Logf("large-fleet soak: completed %d, shards with p95 %d; heap early %.1f MiB late %.1f MiB",
		res.Total.Completed, withP95, early/(1<<20), late/(1<<20))
}

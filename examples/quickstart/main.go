// Quickstart: build a simulated DBMS for one of the paper's setups,
// put the external scheduler in front of it, and see what the MPL does
// to throughput and response time — then script a two-phase surge
// scenario and watch the external queue absorb the overload.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"extsched"
	"extsched/metrics"
)

func main() {
	fmt.Println("External scheduling quickstart (Schroeder et al., ICDE'06)")
	fmt.Println()
	fmt.Println("Sweeping the MPL on setup 1 (TPC-C-like, CPU bound, 1 CPU, 1 disk),")
	fmt.Println("closed system with 100 clients:")
	fmt.Println()
	fmt.Printf("%6s %12s %12s %14s\n", "MPL", "tput (tx/s)", "meanRT (s)", "extWait (s)")

	// One System serves the whole sweep: every run rebuilds pristine
	// simulation state from the same seed, so points are independent
	// and deterministic.
	sys, err := extsched.NewSystem(extsched.Config{SetupID: 1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	for _, mpl := range []int{1, 2, 5, 10, 20, 0} {
		sys.SetMPL(mpl)
		rep, err := sys.RunClosed(100, 20, 120)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprint(mpl)
		if mpl == 0 {
			label = "none"
		}
		fmt.Printf("%6s %12.1f %12.3f %14.3f\n", label, rep.Throughput, rep.MeanRT, rep.ExternalW)
	}

	fmt.Println()
	fmt.Println("Reading: throughput saturates at a very low MPL (the paper's point),")
	fmt.Println("so nearly all transactions can be held in the external queue where")
	fmt.Println("the application controls their order.")
	fmt.Println()

	// Now a scripted scenario: steady open traffic, then a surge to
	// 1.4x the saturation rate, with the MPL fixed at 4. Interval
	// snapshots stream to the observer.
	fmt.Println("Two-phase surge scenario at MPL 4 (steady 60/s, then ramp to 130/s):")
	fmt.Println()
	fmt.Printf("%8s %8s %8s %10s %12s\n", "time", "phase", "queued", "tput", "meanRT (s)")
	sys.SetMPL(4)
	_, err = sys.Run(context.Background(), extsched.Scenario{
		Warmup:         20,
		SampleInterval: 30,
		Phases: []extsched.Phase{
			{Name: "steady", Kind: extsched.PhaseOpen, Lambda: 60, Duration: 120},
			{Name: "surge", Kind: extsched.PhaseRamp, Lambda: 60, Lambda2: 130, Duration: 120},
		},
	}, metrics.ObserverFunc(func(s metrics.Snapshot) {
		fmt.Printf("%8.0f %8s %8d %10.1f %12.3f\n", s.Time, s.Phase, s.Queued, s.Throughput, s.MeanResponse)
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Reading: once the offered load passes saturation, the backlog moves")
	fmt.Println("into the EXTERNAL queue (queued grows) while throughput holds at the")
	fmt.Println("service capacity — overload never piles up inside the DBMS.")
}

// Benchmarks that regenerate every table and figure of the paper's
// evaluation (one Benchmark per table/figure), plus micro-benchmarks
// of the core building blocks. Figure benches print their series to
// stdout so `go test -bench=. -benchmem | tee bench_output.txt`
// captures the reproduced data; EXPERIMENTS.md records the comparison
// against the paper.
//
// Figure benches use reduced-but-stable horizons so the full suite
// completes in minutes; cmd/benchrunner regenerates any figure with
// custom horizons.
package extsched_test

import (
	"fmt"
	"testing"

	"extsched/internal/dist"
	"extsched/internal/experiments"
	"extsched/internal/lockmgr"
	"extsched/internal/queueing/ctmc"
	"extsched/internal/queueing/mva"
	"extsched/internal/queueing/qbd"
	"extsched/internal/sim"
	"extsched/internal/workload"
)

// benchOpts keeps simulated figures affordable in bench runs.
var benchOpts = experiments.RunOpts{Warmup: 30, Measure: 200, Seed: 1}

func printFigure(b *testing.B, fig *experiments.Figure, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	fmt.Print(fig.Format())
}

// BenchmarkTable2Setups regenerates Table 2 (the 17 setups) and
// measures per-setup construction cost.
func BenchmarkTable2Setups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		setups := workload.Table2()
		if len(setups) != 17 {
			b.Fatal("Table 2 must have 17 setups")
		}
	}
	b.StopTimer()
	if b.N > 0 {
		for _, s := range workload.Table2() {
			cpu, io := s.Demands()
			fmt.Printf("%-55s cpuD=%.4fs ioD=%.4fs\n", s.String(), cpu, io)
		}
	}
}

// BenchmarkFigure2 reproduces Fig. 2: throughput vs MPL for the
// CPU-bound workloads, 1 vs 2 CPUs.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure2(benchOpts)
		printFigure(b, fig, err)
	}
}

// BenchmarkFigure3 reproduces Fig. 3: throughput vs MPL for the
// IO-bound workloads, 1-4 disks.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure3(benchOpts)
		printFigure(b, fig, err)
	}
}

// BenchmarkFigure4 reproduces Fig. 4: the balanced CPU+IO workload.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure4(benchOpts)
		printFigure(b, fig, err)
	}
}

// BenchmarkFigure5 reproduces Fig. 5: lock-bound workloads, RR vs UR.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure5(benchOpts)
		printFigure(b, fig, err)
	}
}

// BenchmarkFigure7 reproduces Fig. 7: the MVA model's throughput-vs-MPL
// curves for 1-16 disks with the linear 80%/95% loci.
func BenchmarkFigure7(b *testing.B) {
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Figure7()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// The full 100-point curves are long; print the loci and notes only.
	fmt.Printf("== %s ==\n", fig.Title)
	for _, s := range fig.Series {
		if s.Name == "minMPL@80%" || s.Name == "minMPL@95%" {
			fmt.Printf("%12s:", s.Name)
			for i := range s.X {
				fmt.Printf(" %gdisks=%g", s.X[i], s.Y[i])
			}
			fmt.Println()
		}
	}
	for _, n := range fig.Notes {
		fmt.Println("note:", n)
	}
}

// BenchmarkFigure10 reproduces Fig. 10: QBD mean response time vs MPL
// for C² in {2,5,10,15} + PS at loads 0.7 and 0.9.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure10()
		printFigure(b, fig, err)
	}
}

// BenchmarkSection32RT reproduces the Section 3.2 open-system result:
// mean RT vs MPL for a high-variability workload at 70% utilization.
func BenchmarkSection32RT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Section32RT(3, 0.7, []int{1, 2, 4, 8, 15, 25}, benchOpts)
		printFigure(b, fig, err)
	}
}

// BenchmarkSection32Summary reproduces the §3.2 headline table: min
// MPL for near-optimal mean RT per benchmark family and load.
func BenchmarkSection32Summary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Section32Summary(0.15, benchOpts)
		printFigure(b, fig, err)
	}
}

// BenchmarkC2Table reproduces the Section 3.2 variability table:
// C² per workload vs the synthetic production traces.
func BenchmarkC2Table(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.C2Figure(100000, 1)
		printFigure(b, fig, err)
	}
}

// BenchmarkFigure11at5 reproduces Fig. 11 (top): external
// prioritization across all 17 setups, MPL set for 5% loss.
func BenchmarkFigure11at5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure11(0.05, nil, benchOpts)
		printFigure(b, fig, err)
	}
}

// BenchmarkFigure11at20 reproduces Fig. 11 (bottom): the 20%-loss MPLs.
func BenchmarkFigure11at20(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure11(0.20, nil, benchOpts)
		printFigure(b, fig, err)
	}
}

// BenchmarkFigure12 reproduces Fig. 12: internal (POW lock priority)
// vs external prioritization on the lock-bound setup 1.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.FigureInternal(1, benchOpts)
		printFigure(b, fig, err)
	}
}

// BenchmarkFigure13 reproduces Fig. 13: internal (CPU priority) vs
// external prioritization on the CPU-bound setup 3.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.FigureInternal(3, benchOpts)
		printFigure(b, fig, err)
	}
}

// BenchmarkControllerConvergence reproduces the Section 4.3 claim:
// the jump-started controller converges in <10 iterations per setup.
// (A subset of setups keeps the bench affordable; cmd/benchrunner
// runs all 17.)
func BenchmarkControllerConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.ControllerFigure([]int{1, 2, 5, 8, 11, 13}, 0.05, true, benchOpts)
		printFigure(b, fig, err)
	}
}

// BenchmarkControllerAblation is the no-jump-start ablation: starting
// at MPL 1 instead of the model prediction costs extra iterations.
func BenchmarkControllerAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.ControllerFigure([]int{5, 8, 12}, 0.05, false, benchOpts)
		printFigure(b, fig, err)
	}
}

// ---- ablation benchmarks (design choices DESIGN.md calls out) ----

// BenchmarkAblationGroupCommit: effect of batching commit log writes
// on the update-heavy CPU-bound workload.
func BenchmarkAblationGroupCommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.GroupCommitAblation(1, []int{1, 5, 20}, benchOpts)
		printFigure(b, fig, err)
	}
}

// BenchmarkAblationPOW: plain priority lock queues vs full
// Preempt-on-Wait.
func BenchmarkAblationPOW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.POWAblation(benchOpts)
		printFigure(b, fig, err)
	}
}

// BenchmarkAblationPolicy: FIFO vs SJF vs Priority external queues on
// the high-variability workload at a low MPL.
func BenchmarkAblationPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.PolicyComparison(3, 3, benchOpts)
		printFigure(b, fig, err)
	}
}

// BenchmarkAblationAdmission: external scheduling vs the drop-based
// admission control the paper distinguishes itself from.
func BenchmarkAblationAdmission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.AdmissionComparison(1, 5, 20, 0.9, benchOpts)
		printFigure(b, fig, err)
	}
}

// ---- micro-benchmarks of the substrates ----

// BenchmarkEngineSchedule measures the schedule→fire hot path of the
// kernel: one event scheduled and fired per op against a standing
// population of pending events. The free-list event pool and the
// concrete-typed 4-ary heap make the steady state allocation-free
// (the seed container/heap kernel paid one Event allocation plus
// interface boxing per op); EXPERIMENTS.md records the comparison.
func BenchmarkEngineSchedule(b *testing.B) {
	eng := sim.NewEngine()
	fn := func() {}
	// Standing population so heap sift costs are realistic.
	for i := 0; i < 1024; i++ {
		eng.After(float64(i)+0.5, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(0.25, fn)
		eng.Step()
	}
}

// BenchmarkEngineScheduleCancel measures the schedule→cancel→discard
// path, which recycles records without firing them.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	eng := sim.NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := eng.After(1, fn)
		eng.Cancel(h)
		eng.Run(eng.Now()) // collects the canceled head without firing
	}
}

// BenchmarkSweepParallel measures figure-generation fan-out: the same
// 2-setup throughput grid swept sequentially (workers=1) and on the
// full worker pool. The parallel/sequential ns/op ratio should
// approach 1/GOMAXPROCS for grids wider than the pool.
func BenchmarkSweepParallel(b *testing.B) {
	grid := experiments.RunOpts{Warmup: 5, Measure: 40, Seed: 1}
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			prev := experiments.DefaultWorkers
			experiments.DefaultWorkers = tc.workers
			defer func() { experiments.DefaultWorkers = prev }()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Figure4(grid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineEvents measures raw event throughput of the DES core.
func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.NewEngine()
	var tick func()
	count := 0
	tick = func() {
		count++
		if count < b.N {
			eng.After(1, tick)
		}
	}
	eng.After(1, tick)
	b.ResetTimer()
	eng.RunAll()
}

// BenchmarkLockAcquireRelease measures uncontended lock overhead.
func BenchmarkLockAcquireRelease(b *testing.B) {
	eng := sim.NewEngine()
	mgr := lockmgr.New(eng, lockmgr.Config{OnAbort: func(lockmgr.TxnID, lockmgr.AbortReason) {}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := lockmgr.TxnID(i + 1)
		mgr.Begin(id, lockmgr.Low)
		mgr.Acquire(id, uint64(i%1024), lockmgr.X, nil)
		mgr.Release(id)
	}
}

// BenchmarkMVASolve measures the Fig. 7 model: a 17-station network
// solved to population 100.
func BenchmarkMVASolve(b *testing.B) {
	nw, err := mva.Balanced(1, 16, 0.01, 0.16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Solve(100)
	}
}

// BenchmarkQBDSolve measures the Fig. 10 model at MPL 20.
func BenchmarkQBDSolve(b *testing.B) {
	job := dist.FitH2(0.1, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qbd.Solve(qbd.Model{Lambda: 7, Job: job, MPL: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCTMCSolve measures the truncated Gauss-Seidel alternative.
func BenchmarkCTMCSolve(b *testing.B) {
	job := dist.FitH2(0.1, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctmc.Solve(ctmc.FlexModel{Lambda: 5, Job: job, MPL: 5, MaxJobs: 400}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedSecond measures how fast the full simulator runs:
// one closed-system simulated second of setup 1 at MPL 10.
func BenchmarkSimulatedSecond(b *testing.B) {
	setup, err := workload.SetupByID(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		opts := experiments.RunOpts{Warmup: 1, Measure: 1, Seed: uint64(i + 1)}
		b.StartTimer()
		if _, err := experiments.RunClosed(setup, 10, nil, workload.DBOptions{}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

package core

import (
	"math/rand"
	"testing"

	"extsched/internal/sim"
)

// TestFrontendRandomOpsInvariants is a property test over randomized
// operation sequences (seeded math/rand, so a failure replays): any
// interleaving of Submit, Complete, CancelQueued, SetMPL and
// SetQueueLimit across every policy must preserve the gate's core
// invariants:
//
//  1. admission respects the limit — at every dispatch instant,
//     inside <= MPL (when finite);
//  2. conservation — accepted submissions are exactly partitioned into
//     completed + inside + queued + canceled;
//  3. queue-length accounting never goes negative, and cancellations
//     never complete.
func TestFrontendRandomOpsInvariants(t *testing.T) {
	for _, pol := range []struct {
		name string
		mk   func() Policy
	}{
		{"fifo", func() Policy { return NewFIFO() }},
		{"priority", func() Policy { return NewPriority() }},
		{"sjf", func() Policy { return NewSJF() }},
		{"wfq", func() Policy { return NewWFQ(map[Class]float64{ClassHigh: 4}) }},
	} {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				runFrontendProperty(t, pol.mk(), seed)
			}
		})
	}
}

func runFrontendProperty(t *testing.T, policy Policy, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	eng := sim.NewEngine()
	mpl := rng.Intn(5) // 0 = unlimited
	var fe *Frontend
	var inflight []*Item
	exec := backendFunc(func(it *Item) {
		// Invariant 1: the gate never dispatches past a finite limit.
		// Inside() already counts this item.
		if m := fe.MPL(); m > 0 && fe.Inside() > m {
			t.Fatalf("seed %d: dispatched with inside=%d > MPL=%d", seed, fe.Inside(), m)
		}
		inflight = append(inflight, it)
	})
	fe = New(eng.Clock(), exec, mpl, policy)

	var accepted, completed, canceled uint64
	var queued []*Item // accepted, not yet dispatched or canceled (our model)
	completedSet := make(map[*Item]bool)
	canceledSet := make(map[*Item]bool)

	// remodel moves items our model thinks are queued but the gate has
	// dispatched (admission happens inside Submit/SetMPL/Complete).
	remodel := func() {
		kept := queued[:0]
		inDispatch := make(map[*Item]bool, len(inflight))
		for _, it := range inflight {
			inDispatch[it] = true
		}
		for _, it := range queued {
			if !inDispatch[it] {
				kept = append(kept, it)
			}
		}
		queued = kept
	}

	check := func(op string) {
		remodel()
		// Invariant 3: externally visible accounting is non-negative
		// and matches our model.
		if fe.QueueLen() != len(queued) {
			t.Fatalf("seed %d after %s: QueueLen=%d, model has %d", seed, op, fe.QueueLen(), len(queued))
		}
		if fe.Inside() != len(inflight) {
			t.Fatalf("seed %d after %s: Inside=%d, model has %d", seed, op, fe.Inside(), len(inflight))
		}
		// Invariant 2: conservation.
		if got := completed + uint64(len(inflight)) + uint64(len(queued)) + canceled; got != accepted {
			t.Fatalf("seed %d after %s: completed %d + inside %d + queued %d + canceled %d != accepted %d",
				seed, op, completed, len(inflight), len(queued), canceled, accepted)
		}
		if fe.Canceled() != canceled {
			t.Fatalf("seed %d after %s: Canceled()=%d, model %d", seed, op, fe.Canceled(), canceled)
		}
	}

	for op := 0; op < 2000; op++ {
		switch r := rng.Float64(); {
		case r < 0.5: // submit
			it := &Item{Class: Class(rng.Intn(3)), SizeHint: rng.Float64()}
			if fe.Submit(it, nil) {
				accepted++
				queued = append(queued, it) // remodel() fixes immediate dispatch
			}
			check("submit")
		case r < 0.8 && len(inflight) > 0: // complete a random inflight item
			i := rng.Intn(len(inflight))
			it := inflight[i]
			inflight = append(inflight[:i], inflight[i+1:]...)
			if completedSet[it] || canceledSet[it] {
				t.Fatalf("seed %d: item finishing twice", seed)
			}
			completedSet[it] = true
			completed++
			fe.Complete(it, Outcome{InsideTime: rng.Float64()})
			check("complete")
		case r < 0.9 && len(queued) > 0: // cancel a random queued item
			i := rng.Intn(len(queued))
			it := queued[i]
			if fe.CancelQueued(it) {
				canceledSet[it] = true
				canceled++
				queued = append(queued[:i], queued[i+1:]...)
			}
			check("cancel")
		case r < 0.97: // move the limit
			fe.SetMPL(rng.Intn(6))
			check("setmpl")
		default: // flip admission control
			fe.SetQueueLimit(rng.Intn(20))
			check("setqueuelimit")
		}
	}
	// Drain: complete everything inflight, raising the MPL to flush the
	// queue; every queued item must eventually dispatch or stay
	// canceled — nothing may vanish.
	fe.SetQueueLimit(0)
	fe.SetMPL(0)
	for len(inflight) > 0 {
		it := inflight[0]
		inflight = inflight[1:]
		completed++
		fe.Complete(it, Outcome{})
		remodel()
	}
	check("drain")
	if fe.QueueLen() != 0 {
		t.Fatalf("seed %d: %d items stranded in queue after drain", seed, fe.QueueLen())
	}
	for it := range canceledSet {
		if completedSet[it] {
			t.Fatalf("seed %d: canceled item also completed", seed)
		}
	}
}

package experiments

import (
	"fmt"

	"extsched/internal/stats"
	"extsched/internal/trace"
	"extsched/internal/workload"
)

// Section32RT regenerates the Section 3.2 open-system experiment: mean
// response time vs MPL under Poisson arrivals at the given utilization
// for one setup. The paper's findings: TPC-C-based workloads are
// insensitive to the MPL once it is at least ~4; TPC-W-based ones need
// ~8 at 70% utilization and ~15 at 90%.
func Section32RT(setupID int, utilization float64, mpls []int, opts RunOpts) (*Figure, error) {
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return nil, err
	}
	// Saturation throughput bounds the arrival rate: λ = ρ · X_max,
	// with X_max measured on the closed system without MPL.
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, opts)
	if err != nil {
		return nil, err
	}
	lambda := utilization * base.Throughput()
	if lambda <= 0 {
		return nil, fmt.Errorf("experiments: degenerate baseline throughput")
	}
	f := &Figure{
		ID:    fmt.Sprintf("sec3.2-rt@%g", utilization),
		Title: fmt.Sprintf("Open system mean RT vs MPL, setup %d (%s), utilization %.0f%%", setupID, setup.Workload.Name, utilization*100),
	}
	s := Series{Name: "meanRT (s)"}
	var noMPL float64
	grid := append(append([]int{}, mpls...), 0) // trailing 0 = no-MPL reference
	rts, err := SweepContext(opts.ctx(), len(grid), func(i int) (float64, error) {
		r, err := RunOpen(setup, grid[i], lambda, nil, workload.DBOptions{}, opts)
		if err != nil {
			return 0, err
		}
		return r.MeanRT(), nil
	})
	if err != nil {
		return nil, err
	}
	for i, m := range grid {
		if m == 0 {
			noMPL = rts[i]
			continue
		}
		s.X = append(s.X, float64(m))
		s.Y = append(s.Y, rts[i])
	}
	f.Series = append(f.Series, s)
	// Find the paper's headline number: min MPL within 10% of no-MPL RT.
	minMPL := 0
	for i := range s.X {
		if s.Y[i] <= 1.1*noMPL {
			minMPL = int(s.X[i])
			break
		}
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("no-MPL mean RT: %.4fs", noMPL),
		fmt.Sprintf("min MPL within 10%% of no-MPL RT: %d", minMPL))
	return f, nil
}

// C2Row is one row of the Section 3.2 variability table.
type C2Row struct {
	Source string
	C2     float64
}

// C2Table regenerates the paper's variability comparison: the C² of
// per-transaction service demand for each Table 1 workload versus the
// (synthetic) production traces. Paper values: TPC-C 1.0–1.5, TPC-W
// ≈ 15, retailer/auction traces ≈ 2.
func C2Table(samples int, seed uint64) ([]C2Row, error) {
	if samples <= 0 {
		samples = 100000
	}
	specs := workload.Table1()
	// Rows 0..len(specs)-1 sample the Table 1 generators; the last two
	// synthesize the production traces. Each row owns its generator and
	// seed-derived RNG streams, so rows fan out on the sweep pool.
	rows, err := Sweep(len(specs)+2, func(i int) (C2Row, error) {
		switch {
		case i < len(specs):
			spec := specs[i]
			g, err := workload.NewGenerator(spec, seed)
			if err != nil {
				return C2Row{}, err
			}
			var acc stats.Accumulator
			for j := 0; j < samples; j++ {
				acc.Add(g.Next().EstimatedDemand)
			}
			return C2Row{Source: spec.Name + " (" + spec.Benchmark + ")", C2: acc.C2()}, nil
		case i == len(specs):
			return C2Row{Source: "synthetic-retailer trace", C2: trace.SyntheticRetailer(samples, seed).DemandC2()}, nil
		default:
			return C2Row{Source: "synthetic-auction trace", C2: trace.SyntheticAuction(samples, seed).DemandC2()}, nil
		}
	})
	return rows, err
}

// C2Figure renders C2Table as a Figure.
func C2Figure(samples int, seed uint64) (*Figure, error) {
	rows, err := C2Table(samples, seed)
	if err != nil {
		return nil, err
	}
	f := &Figure{ID: "c2", Title: "Service-demand variability (C²) per workload and trace"}
	s := Series{Name: "C2"}
	for i, r := range rows {
		s.X = append(s.X, float64(i+1))
		s.Y = append(s.Y, r.C2)
		f.Notes = append(f.Notes, fmt.Sprintf("x=%d: %s", i+1, r.Source))
	}
	f.Series = []Series{s}
	f.Notes = append(f.Notes, "paper: TPC-C 1.0-1.5, TPC-W ~15, production traces ~2")
	return f, nil
}

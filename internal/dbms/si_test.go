package dbms

import (
	"math"
	"testing"

	"extsched/internal/dist"
	"extsched/internal/sim"
)

func TestSIReadersNeverBlock(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 2, Disks: 1, Isolation: SI,
		LogService: dist.NewDeterministic(0),
	})
	writer := TxnProfile{Ops: []Op{{Key: 7, Write: true, CPUWork: 0.5}}}
	reader := TxnProfile{Ops: []Op{{Key: 7, Write: false, CPUWork: 0.1}}}
	var readerDone float64
	db.Exec(writer, func(Result) {})
	db.Exec(reader, func(Result) { readerDone = eng.Now() })
	eng.RunAll()
	if math.Abs(readerDone-0.1) > 1e-9 {
		t.Errorf("SI reader done at %v, want 0.1 (MVCC: no read locks)", readerDone)
	}
}

func TestSIWriteLocksSerializeWriters(t *testing.T) {
	// Concurrent writers of the same row serialize on the X row lock
	// (as in PostgreSQL); the second also FCW-aborts and retries since
	// the first committed after its snapshot.
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 2, Disks: 1, Isolation: SI,
		LogService:     dist.NewDeterministic(0),
		RestartBackoff: dist.NewDeterministic(0.001),
		RollbackCPU:    0.001,
	})
	w := TxnProfile{Ops: []Op{{Key: 7, Write: true, CPUWork: 0.1}}}
	committed := 0
	restarts := 0
	db.Exec(w, func(r Result) { committed++; restarts += r.Restarts })
	db.Exec(w, func(r Result) { committed++; restarts += r.Restarts })
	eng.RunAll()
	if committed != 2 {
		t.Fatalf("committed = %d, want 2", committed)
	}
	if restarts < 1 {
		t.Errorf("expected at least one FCW restart, got %d", restarts)
	}
	if db.Stats().FCWAborts < 1 {
		t.Errorf("FCW aborts = %d, want >= 1", db.Stats().FCWAborts)
	}
}

func TestSINoFCWWhenDisjoint(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 2, Disks: 1, Isolation: SI,
		LogService: dist.NewDeterministic(0),
	})
	committed := 0
	db.Exec(TxnProfile{Ops: []Op{{Key: 1, Write: true, CPUWork: 0.1}}}, func(Result) { committed++ })
	db.Exec(TxnProfile{Ops: []Op{{Key: 2, Write: true, CPUWork: 0.1}}}, func(Result) { committed++ })
	eng.RunAll()
	if committed != 2 || db.Stats().FCWAborts != 0 {
		t.Errorf("committed=%d fcw=%d, want 2/0 for disjoint writes", committed, db.Stats().FCWAborts)
	}
}

func TestSISequentialWritersNoAbort(t *testing.T) {
	// A writer starting AFTER another's commit sees the new version:
	// no conflict.
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 1, Disks: 1, Isolation: SI,
		LogService: dist.NewDeterministic(0),
	})
	w := TxnProfile{Ops: []Op{{Key: 7, Write: true, CPUWork: 0.1}}}
	committed := 0
	db.Exec(w, func(Result) { committed++ })
	eng.After(0.5, func() { db.Exec(w, func(Result) { committed++ }) })
	eng.RunAll()
	if committed != 2 {
		t.Fatalf("committed = %d", committed)
	}
	if db.Stats().FCWAborts != 0 {
		t.Errorf("FCW aborts = %d, want 0 for sequential writers", db.Stats().FCWAborts)
	}
}

func TestSIHighConcurrencyDrains(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 2, Disks: 2, Isolation: SI,
		BufferPoolPages: 50,
		DiskService:     dist.NewExponential(0.005),
		LogService:      dist.NewDeterministic(0.001),
		RestartBackoff:  dist.NewExponential(0.005),
		Seed:            13,
	})
	g := sim.NewRNG(14, 0)
	const n = 300
	committed := 0
	for i := 0; i < n; i++ {
		var ops []Op
		for j := 0; j < 1+g.IntN(3); j++ {
			ops = append(ops, Op{
				Key:     uint64(g.IntN(15)),
				Write:   g.IntN(2) == 0,
				CPUWork: 0.001 + 0.005*g.Float64(),
				Pages:   []uint64{uint64(g.IntN(400))},
			})
		}
		prof := TxnProfile{Ops: ops}
		eng.After(g.Float64()*2, func() { db.Exec(prof, func(Result) { committed++ }) })
	}
	eng.RunAll()
	if committed != n {
		t.Fatalf("committed = %d, want %d", committed, n)
	}
	if db.Inside() != 0 {
		t.Errorf("inside = %d after drain", db.Inside())
	}
}

// TestSICorroboratesExternalScheduling mirrors the paper's remark that
// all external scheduling results were corroborated on PostgreSQL: the
// throughput-vs-MPL knee on the SI engine matches the 2PL engines'.
func TestSICorroboratesExternalScheduling(t *testing.T) {
	runAt := func(iso Isolation, mpl int) float64 {
		eng := sim.NewEngine()
		db := mustDB(t, eng, Config{
			CPUs: 1, Disks: 1, Isolation: iso,
			LogService:     dist.NewDeterministic(0.0015),
			RestartBackoff: dist.NewExponential(0.005),
			Seed:           15,
		})
		g := sim.NewRNG(16, 0)
		committed := 0
		// Closed loop with 40 clients of CPU-bound transactions.
		var cycle func()
		cycle = func() {
			var ops []Op
			for j := 0; j < 5; j++ {
				ops = append(ops, Op{
					Key:     uint64(g.IntN(500)),
					Write:   g.IntN(4) == 0,
					CPUWork: 0.002,
				})
			}
			db.Exec(TxnProfile{Ops: ops}, func(Result) { committed++; cycle() })
		}
		inside := 0
		_ = inside
		clients := mpl // emulate the MPL by bounding the closed population
		if clients == 0 {
			clients = 40
		}
		for i := 0; i < clients; i++ {
			cycle()
		}
		eng.Run(60)
		eng.Stop()
		return float64(committed) / 60
	}
	for _, iso := range []Isolation{RR, SI} {
		low := runAt(iso, 1)
		knee := runAt(iso, 5)
		high := runAt(iso, 0)
		if knee < low {
			t.Errorf("%v: MPL 5 tput %v below MPL 1 %v", iso, knee, low)
		}
		// Saturation by ~5 concurrent txns for a 1-CPU engine.
		if knee < 0.9*high {
			t.Errorf("%v: knee tput %v not near saturation %v", iso, knee, high)
		}
	}
}

func TestCheckpointerWritesBack(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 1, Disks: 1,
		BufferPoolPages: 1000,
		DiskService:     dist.NewDeterministic(0.001),
		LogService:      dist.NewDeterministic(0),
		FlushInterval:   0.05,
		FlushBatch:      64,
	})
	committed := 0
	for i := 0; i < 50; i++ {
		page := uint64(i)
		prof := TxnProfile{Ops: []Op{{Key: uint64(i), Write: true, CPUWork: 0.001, Pages: []uint64{page}}}}
		eng.After(float64(i)*0.01, func() { db.Exec(prof, func(Result) { committed++ }) })
	}
	eng.RunAll() // must drain: the flusher disarms when idle
	if committed != 50 {
		t.Fatalf("committed = %d", committed)
	}
	if db.Stats().PagesFlushed == 0 {
		t.Error("checkpointer wrote nothing back")
	}
	if db.Pool().DirtyCount() != 0 {
		t.Errorf("dirty pages remain: %d", db.Pool().DirtyCount())
	}
}

func TestCheckpointerDisabledByDefault(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 1, Disks: 1,
		BufferPoolPages: 100,
		LogService:      dist.NewDeterministic(0),
	})
	db.Exec(TxnProfile{Ops: []Op{{Key: 1, Write: true, CPUWork: 0.001, Pages: []uint64{1}}}}, func(Result) {})
	eng.RunAll()
	if db.Stats().PagesFlushed != 0 {
		t.Error("flusher ran while disabled")
	}
}

func TestCheckpointerConsumesDiskBandwidth(t *testing.T) {
	// Write-heavy workload: with an aggressive checkpointer the data
	// disks serve extra write-back I/O.
	run := func(interval float64) (uint64, float64) {
		eng := sim.NewEngine()
		db := mustDB(t, eng, Config{
			CPUs: 1, Disks: 1,
			BufferPoolPages: 5000,
			DiskService:     dist.NewDeterministic(0.002),
			LogService:      dist.NewDeterministic(0),
			FlushInterval:   interval,
			FlushBatch:      256,
			Seed:            31,
		})
		g := sim.NewRNG(32, 0)
		done := 0
		for i := 0; i < 400; i++ {
			prof := TxnProfile{Ops: []Op{{
				Key: uint64(1 << 20 * (i + 1)), Write: true, CPUWork: 0.0005,
				Pages: []uint64{uint64(g.IntN(4000))},
			}}}
			eng.After(float64(i)*0.005, func() { db.Exec(prof, func(Result) { done++ }) })
		}
		eng.RunAll()
		return db.Stats().PagesFlushed, db.DiskUtilization()
	}
	flushed, utilOn := run(0.02)
	_, utilOff := run(0)
	if flushed == 0 {
		t.Fatal("no write-back")
	}
	if utilOn <= utilOff {
		t.Errorf("write-back should raise disk utilization: %v vs %v", utilOn, utilOff)
	}
}

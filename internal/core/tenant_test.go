package core

import (
	"math"
	"testing"
)

// TestExoticClassAccounting pins the bugfix for classes outside the
// fast-path tracked range [0, trackedClasses): they always take the
// slow path, and their completions must land in their own per-class
// accumulator (historically they were lumped into the legacy Low
// bucket with no per-class record at all). Conservation is checked per
// class: everything submitted is either completed or shed, under its
// own class ID.
func TestExoticClassAccounting(t *testing.T) {
	eng, fe := rig(t, 2, nil)
	classes := []Class{8, 200}
	const perClass = 10
	for i := 0; i < perClass; i++ {
		for _, c := range classes {
			submit(fe, 0.5, c)
		}
	}
	// A tracked-class item in the same run, so the exotic entries must
	// coexist with fast-path accounting.
	submit(fe, 0.5, ClassLow)
	eng.RunAll()

	m := fe.Metrics()
	if got := m.All.Count(); got != 2*perClass+1 {
		t.Fatalf("all count = %d, want %d", got, 2*perClass+1)
	}
	for _, c := range classes {
		cm := m.ClassMetric(c)
		if cm.Completed() != perClass {
			t.Errorf("class %d completed = %d, want %d", c, cm.Completed(), perClass)
		}
		if cm.RT.Mean() <= 0 {
			t.Errorf("class %d mean RT = %v, want > 0", c, cm.RT.Mean())
		}
	}
	if cm := m.ClassMetric(ClassLow); cm.Completed() != 1 {
		t.Errorf("tracked class completed = %d, want 1", cm.Completed())
	}
	// Classes is sorted ascending by class ID.
	for i := 1; i < len(m.Classes); i++ {
		if m.Classes[i-1].Class >= m.Classes[i].Class {
			t.Fatalf("Classes not sorted: %v >= %v", m.Classes[i-1].Class, m.Classes[i].Class)
		}
	}
	// The legacy two-class vocabulary still lumps exotics into Low —
	// kept deliberately so old figures stay bit-identical.
	if m.Low.Count() != 2*perClass+1 {
		t.Errorf("legacy low count = %d, want %d", m.Low.Count(), 2*perClass+1)
	}
}

// TestExoticClassShedConservation runs exotic classes under an
// admission deadline tight enough to shed, and reconciles per-class
// conservation: submitted == completed + shed for each class ID.
func TestExoticClassShedConservation(t *testing.T) {
	eng, fe := rig(t, 1, nil)
	classes := []Class{8, 200}
	for _, c := range classes {
		fe.SetAdmitDeadline(c, 0.75)
	}
	const perClass = 12
	for i := 0; i < perClass; i++ {
		for _, c := range classes {
			submit(fe, 0.5, c)
		}
	}
	eng.RunAll()

	m := fe.Metrics()
	shed := fe.ShedClasses()
	var completed, shedTotal uint64
	for _, c := range classes {
		got := m.ClassMetric(c).Completed() + shed[c]
		if got != perClass {
			t.Errorf("class %d completed+shed = %d, want %d", c, got, perClass)
		}
		completed += m.ClassMetric(c).Completed()
		shedTotal += shed[c]
	}
	if shedTotal == 0 {
		t.Fatal("deadline shed nothing; the test needs a tighter setup")
	}
	total, _ := fe.ShedCounts()
	if total != shedTotal {
		t.Errorf("ShedCounts total = %d, want %d", total, shedTotal)
	}
	if m.Completed != completed {
		t.Errorf("Completed = %d, want %d", m.Completed, completed)
	}
}

func TestTenantRegistry(t *testing.T) {
	_, fe := rig(t, 4, nil)
	if fe.Tenants() != nil {
		t.Fatal("fresh frontend has tenants")
	}
	a := fe.RegisterClass("batch", 1, 0)
	b := fe.RegisterClass("interactive", 4, 0.5)
	if a != 0 || b != 1 {
		t.Fatalf("class IDs = %d,%d, want 0,1", a, b)
	}
	ts := fe.Tenants()
	if len(ts) != 2 {
		t.Fatalf("tenants = %d, want 2", len(ts))
	}
	if ts[1].Name != "interactive" || ts[1].Weight != 4 || ts[1].SLOTarget != 0.5 {
		t.Errorf("tenant 1 = %+v", ts[1])
	}
	if fe.TenantName(b) != "interactive" || fe.TenantName(Class(99)) != "" {
		t.Error("TenantName lookup wrong")
	}
	// The returned slice is a copy.
	ts[0].Name = "mutated"
	if fe.TenantName(a) != "batch" {
		t.Error("Tenants() exposed internal state")
	}
}

func TestRegisterClassPanicsOnBadWeight(t *testing.T) {
	_, fe := rig(t, 1, nil)
	defer func() {
		if recover() == nil {
			t.Error("weight 0 did not panic")
		}
	}()
	fe.RegisterClass("bad", 0, 0)
}

func TestClassMetricsReset(t *testing.T) {
	eng, fe := rig(t, 0, nil)
	submit(fe, 1.0, Class(3))
	eng.RunAll()
	if len(fe.Metrics().Classes) != 1 {
		t.Fatal("class entry missing before reset")
	}
	fe.ResetMetrics()
	m := fe.Metrics()
	if cm := m.ClassMetric(Class(3)); cm.Completed() != 0 {
		t.Errorf("class 3 survived reset with count %d", cm.Completed())
	}
	submit(fe, 1.0, Class(3))
	eng.RunAll()
	if cm := fe.Metrics().ClassMetric(Class(3)); cm.Completed() != 1 {
		t.Errorf("post-reset count = %d, want 1", cm.Completed())
	}
}

func TestMergeClassMetrics(t *testing.T) {
	mk := func(c Class, vals ...float64) ClassMetric {
		cm := ClassMetric{Class: c}
		for _, v := range vals {
			cm.RT.Add(v)
		}
		return cm
	}
	a := []ClassMetric{mk(0, 1, 2), mk(5, 10)}
	b := []ClassMetric{mk(2, 3), mk(5, 20, 30)}
	out := MergeClassMetrics(a, b)
	if len(out) != 3 || out[0].Class != 0 || out[1].Class != 2 || out[2].Class != 5 {
		t.Fatalf("merged classes = %+v", out)
	}
	if out[2].Completed() != 3 {
		t.Errorf("class 5 merged count = %d, want 3", out[2].Completed())
	}
	if math.Abs(out[2].RT.Mean()-20) > 1e-9 {
		t.Errorf("class 5 merged mean = %v, want 20", out[2].RT.Mean())
	}
}

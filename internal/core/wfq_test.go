package core

import (
	"math"
	"testing"

	"extsched/internal/sim"
)

func wfqItem2(class Class, size float64, seq uint64) *Item {
	return &Item{Class: class, SizeHint: size, seq: seq}
}

func TestWFQSharesBacklogByWeight(t *testing.T) {
	// Persistent backlog of equal-size transactions in two classes with
	// weights 3:1: among the first N dispatches, the high class should
	// get ~3/4.
	p := NewWFQ(map[Class]float64{ClassHigh: 3, ClassLow: 1})
	var seq uint64
	for i := 0; i < 400; i++ {
		p.Push(wfqItem2(ClassHigh, 1, seq))
		seq++
		p.Push(wfqItem2(ClassLow, 1, seq))
		seq++
	}
	high := 0
	for i := 0; i < 200; i++ {
		if p.Pop().Class == ClassHigh {
			high++
		}
	}
	frac := float64(high) / 200
	if math.Abs(frac-0.75) > 0.05 {
		t.Errorf("high-class dispatch fraction = %v, want ~0.75", frac)
	}
}

func TestWFQNoStarvation(t *testing.T) {
	// Unlike strict priority, WFQ keeps serving the low class even
	// under continuous high-class pressure.
	p := NewWFQ(map[Class]float64{ClassHigh: 10, ClassLow: 1})
	var seq uint64
	for i := 0; i < 100; i++ {
		p.Push(wfqItem2(ClassHigh, 1, seq))
		seq++
	}
	p.Push(wfqItem2(ClassLow, 1, seq))
	lowSeen := false
	for i := 0; i < 30 && p.Len() > 0; i++ {
		if p.Pop().Class == ClassLow {
			lowSeen = true
			break
		}
	}
	if !lowSeen {
		t.Error("low class starved within 30 dispatches at weight ratio 10:1")
	}
}

func TestWFQSizeAware(t *testing.T) {
	// Equal weights but class A sends jobs 4x larger: B should get ~4x
	// the dispatch COUNT (equal demand share).
	p := NewWFQ(map[Class]float64{})
	var seq uint64
	for i := 0; i < 400; i++ {
		p.Push(wfqItem2(ClassHigh, 4, seq))
		seq++
		p.Push(wfqItem2(ClassLow, 1, seq))
		seq++
	}
	big := 0
	for i := 0; i < 200; i++ {
		if p.Pop().Class == ClassHigh {
			big++
		}
	}
	frac := float64(big) / 200
	if math.Abs(frac-0.2) > 0.05 {
		t.Errorf("large-job class dispatch fraction = %v, want ~0.2 (1/(1+4))", frac)
	}
}

func TestWFQFIFOWithinClass(t *testing.T) {
	p := NewWFQ(nil)
	a := wfqItem2(ClassLow, 1, 1)
	b := wfqItem2(ClassLow, 1, 2)
	c := wfqItem2(ClassLow, 1, 3)
	p.Push(a)
	p.Push(b)
	p.Push(c)
	if p.Pop() != a || p.Pop() != b || p.Pop() != c {
		t.Error("same-class order not FIFO")
	}
}

func TestWFQEmptyAndConservation(t *testing.T) {
	p := NewWFQ(map[Class]float64{ClassHigh: 2})
	if p.Pop() != nil || p.Len() != 0 {
		t.Error("empty WFQ misbehaves")
	}
	g := sim.NewRNG(1, 0)
	pushed := map[*Item]bool{}
	var seq uint64
	for i := 0; i < 3000; i++ {
		if g.IntN(2) == 0 {
			tx := wfqItem2(Class(g.IntN(4)), 0.1+g.Float64(), seq)
			seq++
			pushed[tx] = true
			p.Push(tx)
		} else if tx := p.Pop(); tx != nil {
			if !pushed[tx] {
				t.Fatal("popped unknown txn")
			}
			delete(pushed, tx)
		}
	}
	for tx := p.Pop(); tx != nil; tx = p.Pop() {
		delete(pushed, tx)
	}
	if len(pushed) != 0 {
		t.Errorf("%d transactions lost", len(pushed))
	}
}

func TestWFQZeroSizeDefaultsToUnit(t *testing.T) {
	p := NewWFQ(nil)
	p.Push(wfqItem2(ClassLow, 0, 1)) // unknown size
	if p.Pop() == nil {
		t.Error("zero-size transaction lost")
	}
}

func TestWFQInvalidWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive weight did not panic")
		}
	}()
	NewWFQ(map[Class]float64{ClassHigh: 0})
}

func TestWFQEndToEndSharing(t *testing.T) {
	// Integration: saturated MPL-1 system, classes at weights 3:1 with
	// equal-size jobs → completed counts near 3:1.
	eng, fe := rig(t, 1, NewWFQ(map[Class]float64{ClassHigh: 3, ClassLow: 1}))
	highDone, lowDone := 0, 0
	fe.OnComplete = func(it *Item) {
		if it.Class == ClassHigh {
			highDone++
		} else {
			lowDone++
		}
	}
	for i := 0; i < 300; i++ {
		submit(fe, 0.01, ClassHigh)
		submit(fe, 0.01, ClassLow)
	}
	eng.Run(1.5) // ~150 completions at 10ms each, backlog persists
	ratio := float64(highDone) / float64(lowDone)
	if ratio < 2.2 || ratio > 4 {
		t.Errorf("completion ratio = %v (%d:%d), want ~3", ratio, highDone, lowDone)
	}
	eng.RunAll()
}

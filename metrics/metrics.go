// Package metrics defines the shared measurement vocabulary of the
// repository: one Snapshot type that both the discrete-event simulator
// (extsched.System running a Scenario) and the wall-clock live gate
// (package gate) emit, and the Observer interface through which callers
// stream those snapshots during a run.
//
// Keeping the type here — below the two frontends, above the internal
// machinery — is what makes sim-vs-live comparisons mechanical: a
// dashboard, a regression harness, or a tuning script consumes the same
// fields whether they came from simulated seconds or real ones. Fields
// that only one side can populate (device utilizations exist only in
// the simulator; Errors only in the live gate) are simply zero on the
// other side.
package metrics

// Snapshot is a point-in-time view of an external-scheduling frontend:
// the gate state at the snapshot instant plus the completion metrics of
// the measurement window that produced it.
//
// Two window conventions are in use, and Window tells them apart:
// streaming observers (Scenario runs, Gate.Watch) emit per-interval
// snapshots whose counters cover only the Window seconds since the
// previous snapshot, while Gate.Stats returns a cumulative snapshot
// covering the whole current metrics window. Lifetime counters
// (Dropped, Canceled, Errors) follow the same rule: deltas in interval
// snapshots, totals in cumulative ones.
type Snapshot struct {
	// Time is the snapshot instant in seconds since the run (or gate)
	// epoch — simulated seconds for the simulator, wall seconds live.
	Time float64
	// Window is the length in seconds of the measurement window the
	// completion metrics below cover.
	Window float64
	// Phase names the scenario phase the snapshot was taken in (empty
	// for live gates and single-phase runs without names).
	Phase string

	// Limit is the MPL at the snapshot instant (0 = unlimited);
	// Inflight the number of admitted, uncompleted items; Queued the
	// external queue length.
	Limit, Inflight, Queued int

	// Completed counts completions in the window; Throughput is
	// Completed per second over the window.
	Completed  uint64
	Throughput float64

	// MeanResponse is the mean seconds from submission to completion
	// (external queueing included — the paper's definition); MeanWait
	// the external-queue portion; MeanInside the portion spent inside
	// the backend.
	MeanResponse, MeanWait, MeanInside float64

	// P50/P95/P99 are response-time percentiles. They are populated
	// only when percentile sampling is enabled, and — because the
	// sampling reservoir spans the whole run — they always cover the
	// run so far, not the interval window.
	P50, P95, P99 float64

	// Dropped counts admission-control rejections, Canceled withdrawn
	// submissions, Errors failed completions (live gate Result.Err).
	Dropped, Canceled, Errors uint64
	// Shed counts deadline-missed rejections: work that could not be
	// dispatched by its per-class admission deadline and was rejected
	// without executing (gate.ErrDeadline live; scenario admit-deadline
	// events simulated). Per-class shares live in Classes. Window
	// conventions follow Dropped: deltas in interval snapshots,
	// totals in cumulative ones.
	Shed uint64
	// Restarts counts internal retry cycles (deadlock aborts in the
	// simulated DBMS).
	Restarts uint64

	// Failed counts transactions terminally lost to backend failures:
	// work a dead shard held that the recovery policy shed (or whose
	// retry budget ran out), plus submissions that found no live
	// backend. Resubmitted counts logical transactions re-routed to a
	// survivor at least once after a failure; Retries counts individual
	// resubmission events (a txn bounced through two failures counts
	// twice). All three follow the Dropped window conventions: deltas
	// in interval snapshots, totals in cumulative ones.
	Failed, Resubmitted, Retries uint64

	// CPUUtil / DiskUtil are the simulated device utilizations over the
	// window (zero for live gates, which cannot see their backend).
	CPUUtil, DiskUtil float64

	// FleetSize is the total number of shard slots (including draining
	// and down members) and FleetUp the number currently serving, both
	// at the snapshot instant. Zero for single-backend runs and plain
	// live gates. ScaleUps / ScaleDowns count autoscaler actions and
	// follow the Dropped window conventions: deltas in interval
	// snapshots, totals in cumulative ones. All four stay zero when no
	// autoscaler is armed (FleetSize/FleetUp still report for any
	// sharded frontend).
	FleetSize, FleetUp   int
	ScaleUps, ScaleDowns uint64

	// Classes carries per-class (per-tenant) completion stats, in
	// ascending class-ID order. It replaces the old hard-coded two-class
	// fields (HighResponse/LowResponse, HighP95/LowP95, ShedHigh/
	// ShedLow), which survive as derived accessor methods. Like Shards
	// it is elided above a cardinality threshold (see the runner), so
	// per-snapshot memory stays bounded at hundreds of tenants; the
	// aggregate fields above remain populated.
	Classes []ClassStat

	// Shards carries per-member state when the frontend is a sharded
	// cluster, in shard-index order. It is nil for single-backend runs
	// and plain live gates — and also elided above a fleet-size
	// threshold (see the runner), so that per-snapshot memory stays
	// bounded at N>=1000; the aggregate fields above remain populated.
	Shards []ShardStat
}

// ClassStat is one priority class's (tenant's) slice of a Snapshot.
// Completed, Shed and Mean follow the enclosing Snapshot's window
// convention; P95 needs percentile sampling and covers the run so far
// (like the Snapshot's own percentiles).
type ClassStat struct {
	// Class is the small-integer class ID; Name is the registered
	// tenant name (empty when no tenant registry is attached).
	Class int
	Name  string
	// Completed counts the class's completions; Shed its deadline-shed
	// rejections.
	Completed, Shed uint64
	// Mean is the class's mean response time in seconds; P95 its 95th
	// response-time percentile (0 unless percentile sampling is on).
	Mean, P95 float64
}

// classStat finds the entry for a class ID (zero value when absent —
// a class with no completions, no shed work, and no samples).
func (s Snapshot) classStat(id int) ClassStat {
	for _, c := range s.Classes {
		if c.Class == id {
			return c
		}
	}
	return ClassStat{}
}

// HighResponse is the high-priority (class 1) mean response time.
//
// Deprecated: the two-class vocabulary is superseded by Classes; use
// classStat entries for arbitrary tenants. Kept so existing two-class
// figures and dashboards read identical values.
func (s Snapshot) HighResponse() float64 { return s.classStat(1).Mean }

// LowResponse is the low-priority (class 0) mean response time.
//
// Deprecated: use Classes.
func (s Snapshot) LowResponse() float64 { return s.classStat(0).Mean }

// HighP95 is the high-priority (class 1) p95 response time.
//
// Deprecated: use Classes.
func (s Snapshot) HighP95() float64 { return s.classStat(1).P95 }

// LowP95 is the low-priority (class 0) p95 response time.
//
// Deprecated: use Classes.
func (s Snapshot) LowP95() float64 { return s.classStat(0).P95 }

// ShedHigh is the high-priority (class 1) share of Shed.
//
// Deprecated: use Classes.
func (s Snapshot) ShedHigh() uint64 { return s.classStat(1).Shed }

// ShedLow is everything in Shed not attributed to the high class —
// the historical "low" bucket, which lumped all non-high classes.
//
// Deprecated: use Classes.
func (s Snapshot) ShedLow() uint64 { return s.Shed - s.classStat(1).Shed }

// ShardStat is one dispatch member's slice of a Snapshot: instantaneous
// gate state plus the member's share of the window's traffic.
// Dispatched and Completed follow the enclosing Snapshot's window
// convention: deltas in interval snapshots (Scenario streaming),
// totals in cumulative ones (gate Pool.Stats, where Dispatched is a
// lifetime count like Dropped/Canceled).
type ShardStat struct {
	// Shard is the member index.
	Shard int
	// Speed is the member's relative service speed at the snapshot
	// instant (1 = nominal).
	Speed float64
	// Limit, Inflight and Queued mirror the Snapshot fields for this
	// member alone.
	Limit, Inflight, Queued int
	// Dispatched counts arrivals routed to the member; Completed counts
	// the member's completions.
	Dispatched, Completed uint64
	// CPUUtil / DiskUtil are the member's simulated device utilizations
	// over the window.
	CPUUtil, DiskUtil float64
	// State is the member's lifecycle state at the snapshot instant
	// ("up", "draining", "down"; empty when the frontend has no
	// lifecycle — plain live gates, unsharded runs).
	State string
	// Availability is the fraction of the window the member was
	// serving (1 when the fault model is not armed). Like the traffic
	// counters it follows the enclosing Snapshot's window convention.
	Availability float64
}

// Observer receives streamed snapshots during a run. OnInterval is
// called once per sample interval, in time order. Simulator runs call
// it synchronously on the simulation goroutine, so implementations may
// read (and adjust) the running system from inside the callback; live
// gates call it from a timer goroutine, so implementations must be safe
// for that.
type Observer interface {
	OnInterval(Snapshot)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Snapshot)

// OnInterval calls f(s).
func (f ObserverFunc) OnInterval(s Snapshot) { f(s) }

// Collector is an Observer that appends every snapshot it receives —
// the simplest way to capture a run's time series for later assertion
// or plotting. Not safe for concurrent use; pair it with the simulator
// (which observes synchronously) or add locking for live gates.
type Collector struct {
	Snapshots []Snapshot
}

// OnInterval appends s.
func (c *Collector) OnInterval(s Snapshot) {
	c.Snapshots = append(c.Snapshots, s)
}

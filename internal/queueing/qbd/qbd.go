// Package qbd solves the paper's Fig. 9 queueing model exactly by
// matrix-analytic (matrix-geometric) methods.
//
// The model is a quasi-birth-death process: level n is the total number
// of jobs in the system, and the phase records how many of the
// min(n, MPL) in-service jobs are in phase 1 of the H2 job-size
// distribution. For levels above the MPL the chain repeats, so the
// stationary vector obeys π_{MPL+k} = π_MPL · Rᵏ where R is the minimal
// non-negative solution of A0 + R·A1 + R²·A2 = 0. Boundary levels
// 0..MPL are solved directly as a small linear system. Mean response
// time follows from Little's law on the mean population.
//
// The companion package ctmc solves a truncated version of the same
// chain by Gauss–Seidel; the two agree to high precision (see tests),
// which validates both implementations.
package qbd

import (
	"fmt"
	"math"

	"extsched/internal/dist"
	"extsched/internal/queueing/linalg"
)

// Model mirrors ctmc.FlexModel: Poisson(Lambda) arrivals, H2 job sizes,
// PS service capped at MPL concurrent jobs.
type Model struct {
	Lambda float64
	Job    dist.H2
	MPL    int
}

// Validate checks stability and that the H2 phases are non-degenerate
// (0 < P < 1); a degenerate H2 makes part of the phase space
// unreachable and the boundary system singular — use an exponential
// model (C²=1 fit, P=1/2) instead.
func (m Model) Validate() error {
	if m.Lambda <= 0 {
		return fmt.Errorf("qbd: arrival rate %v must be positive", m.Lambda)
	}
	if m.MPL < 1 {
		return fmt.Errorf("qbd: MPL %d must be >= 1", m.MPL)
	}
	if m.Job.P <= 0 || m.Job.P >= 1 {
		return fmt.Errorf("qbd: H2 phase probability %v must lie strictly in (0,1)", m.Job.P)
	}
	if rho := m.Lambda * m.Job.Mean(); rho >= 1 {
		return fmt.Errorf("qbd: unstable system, rho = %v >= 1", rho)
	}
	return nil
}

// Solution holds the matrix-geometric solution.
type Solution struct {
	MeanJobs float64 // E[N], jobs in system (queue + in service)
	MeanRT   float64 // E[T] = E[N]/λ
	R        *linalg.Matrix
	// Boundary[n][n1] = stationary probability of (n jobs, n1 phase-1
	// in service) for n = 0..MPL.
	Boundary [][]float64
	// SpectralRadius estimates sp(R) by power iteration; < 1 confirms
	// the matrix-geometric tail is summable (stability).
	SpectralRadius float64
}

// LevelProb returns P(N = n) for any n >= 0, using the geometric tail
// for n > MPL.
func (s *Solution) LevelProb(n int) float64 {
	m := len(s.Boundary) - 1
	if n < 0 {
		return 0
	}
	if n <= m {
		sum := 0.0
		for _, p := range s.Boundary[n] {
			sum += p
		}
		return sum
	}
	// π_n = π_m R^{n-m}.
	v := make([]float64, len(s.Boundary[m]))
	copy(v, s.Boundary[m])
	for k := 0; k < n-m; k++ {
		v = linalg.VecMul(v, s.R)
	}
	sum := 0.0
	for _, p := range v {
		sum += p
	}
	return sum
}

// blocks builds the repeating QBD blocks A0 (up), A1 (local), A2 (down)
// for levels >= MPL+1, each (MPL+1)×(MPL+1) over phase n1 = 0..MPL.
func (m Model) blocks() (a0, a1, a2 *linalg.Matrix) {
	w := m.MPL + 1
	p, q := m.Job.P, 1-m.Job.P
	mu1, mu2 := m.Job.Mu1, m.Job.Mu2
	k := float64(m.MPL)
	a0 = linalg.Identity(w).Scale(m.Lambda)
	a1 = linalg.New(w, w)
	a2 = linalg.New(w, w)
	for n1 := 0; n1 <= m.MPL; n1++ {
		n2 := m.MPL - n1
		r1 := float64(n1) * mu1 / k // phase-1 completion rate
		r2 := float64(n2) * mu2 / k // phase-2 completion rate
		// Departure with replacement from the queue: the replacement's
		// phase is drawn with probability (p, q).
		if n1 > 0 {
			a2.Set(n1, n1, a2.At(n1, n1)+r1*p)
			a2.Set(n1, n1-1, a2.At(n1, n1-1)+r1*q)
		}
		if n2 > 0 {
			a2.Set(n1, n1+1, a2.At(n1, n1+1)+r2*p)
			a2.Set(n1, n1, a2.At(n1, n1)+r2*q)
		}
		a1.Set(n1, n1, -(m.Lambda + r1 + r2))
	}
	return a0, a1, a2
}

// solveR iterates R ← −(A0 + R²A2)·A1⁻¹ to the minimal non-negative
// solution of A0 + R·A1 + R²·A2 = 0.
func solveR(a0, a1, a2 *linalg.Matrix) (*linalg.Matrix, error) {
	a1inv, err := a1.Inverse()
	if err != nil {
		return nil, fmt.Errorf("qbd: A1 not invertible: %w", err)
	}
	neg := a1inv.Scale(-1)
	r := linalg.New(a0.Rows, a0.Cols)
	for iter := 0; iter < 500000; iter++ {
		next := a0.Add(r.Mul(r).Mul(a2)).Mul(neg)
		diff := linalg.MaxAbsDiff(next, r)
		r = next
		if diff < 1e-14 {
			return r, nil
		}
	}
	return nil, fmt.Errorf("qbd: R iteration did not converge")
}

// Solve computes the stationary solution.
func Solve(m Model) (*Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	mpl := m.MPL
	a0, a1, a2 := m.blocks()
	r, err := solveR(a0, a1, a2)
	if err != nil {
		return nil, err
	}

	// Boundary generator over levels 0..mpl.
	// State layout: level n occupies n+1 consecutive slots (n1 = 0..n).
	offset := make([]int, mpl+1)
	total := 0
	for n := 0; n <= mpl; n++ {
		offset[n] = total
		total += n + 1
	}
	g := linalg.New(total, total)
	p, q := m.Job.P, 1-m.Job.P
	mu1, mu2 := m.Job.Mu1, m.Job.Mu2
	lam := m.Lambda

	addRate := func(fi, ti int, rate float64) {
		g.Set(fi, ti, g.At(fi, ti)+rate)
		g.Set(fi, fi, g.At(fi, fi)-rate)
	}
	for n := 0; n <= mpl; n++ {
		for n1 := 0; n1 <= n; n1++ {
			from := offset[n] + n1
			// Arrivals.
			if n < mpl {
				addRate(from, offset[n+1]+n1+1, lam*p)
				addRate(from, offset[n+1]+n1, lam*q)
			} else {
				// Level mpl → mpl+1 leaves the boundary; only the
				// outflow contributes to the diagonal. The matching
				// inflow returns via the R·A2 correction below.
				g.Set(from, from, g.At(from, from)-lam)
			}
			// Completions (queue empty for n <= mpl: no replacement).
			if n > 0 {
				k := float64(n)
				if n1 > 0 {
					addRate(from, offset[n-1]+n1-1, float64(n1)*mu1/k)
				}
				if n2 := n - n1; n2 > 0 {
					addRate(from, offset[n-1]+n1, float64(n2)*mu2/k)
				}
			}
		}
	}
	// Level-mpl balance gains the tail inflow π_{mpl+1}·A2 = π_mpl·R·A2.
	ra2 := r.Mul(a2)
	for i := 0; i <= mpl; i++ {
		for j := 0; j <= mpl; j++ {
			v := ra2.At(i, j)
			if v != 0 {
				g.Set(offset[mpl]+i, offset[mpl]+j, g.At(offset[mpl]+i, offset[mpl]+j)+v)
			}
		}
	}

	// Solve x·G = 0 with normalization Σ_{n<mpl} x_n + x_mpl·(I−R)⁻¹·1 = 1.
	// Transpose to G'·x' = 0 and replace the last equation.
	iMinusR := linalg.Identity(mpl + 1).Sub(r)
	iMinusRInv, err := iMinusR.Inverse()
	if err != nil {
		return nil, fmt.Errorf("qbd: (I-R) singular — tail not geometric (rho too high?): %w", err)
	}
	ones := make([]float64, mpl+1)
	for i := range ones {
		ones[i] = 1
	}
	tailWeight := iMinusRInv.MulVec(ones) // (I−R)⁻¹·1

	sys := linalg.New(total, total)
	for i := 0; i < total; i++ {
		for j := 0; j < total; j++ {
			sys.Set(i, j, g.At(j, i)) // transpose
		}
	}
	rhs := make([]float64, total)
	// Replace the first equation (balance equations are redundant) with
	// the normalization.
	for j := 0; j < total; j++ {
		sys.Set(0, j, 0)
	}
	for n := 0; n < mpl; n++ {
		for n1 := 0; n1 <= n; n1++ {
			sys.Set(0, offset[n]+n1, 1)
		}
	}
	for n1 := 0; n1 <= mpl; n1++ {
		sys.Set(0, offset[mpl]+n1, tailWeight[n1])
	}
	rhs[0] = 1
	x, err := linalg.SolveLinear(sys, rhs)
	if err != nil {
		return nil, fmt.Errorf("qbd: boundary solve failed: %w", err)
	}

	sol := &Solution{R: r}
	sol.Boundary = make([][]float64, mpl+1)
	for n := 0; n <= mpl; n++ {
		sol.Boundary[n] = make([]float64, n+1)
		for n1 := 0; n1 <= n; n1++ {
			v := x[offset[n]+n1]
			if v < 0 {
				// Tiny negative values can appear from round-off; clamp
				// but reject grossly negative solutions.
				if v < -1e-8 {
					return nil, fmt.Errorf("qbd: negative boundary probability %v at (%d,%d)", v, n, n1)
				}
				v = 0
			}
			sol.Boundary[n][n1] = v
		}
	}
	sol.SpectralRadius = spectralRadius(r)

	// E[N] = Σ_{n<mpl} n·|π_n| + π_mpl·[mpl·(I−R)⁻¹ + R·(I−R)⁻²]·1.
	for n := 0; n < mpl; n++ {
		for _, v := range sol.Boundary[n] {
			sol.MeanJobs += float64(n) * v
		}
	}
	piM := sol.Boundary[mpl]
	term1 := iMinusRInv.Scale(float64(mpl)).MulVec(ones)
	term2 := r.Mul(iMinusRInv).Mul(iMinusRInv).MulVec(ones)
	for i, v := range piM {
		sol.MeanJobs += v * (term1[i] + term2[i])
	}
	if math.IsNaN(sol.MeanJobs) || sol.MeanJobs < 0 {
		return nil, fmt.Errorf("qbd: invalid mean population %v", sol.MeanJobs)
	}
	sol.MeanRT = sol.MeanJobs / m.Lambda
	return sol, nil
}

// spectralRadius estimates the dominant eigenvalue magnitude of a
// non-negative matrix by power iteration.
func spectralRadius(m *linalg.Matrix) float64 {
	v := make([]float64, m.Cols)
	for i := range v {
		v[i] = 1
	}
	radius := 0.0
	for iter := 0; iter < 2000; iter++ {
		w := m.MulVec(v)
		norm := 0.0
		for _, x := range w {
			if a := math.Abs(x); a > norm {
				norm = a
			}
		}
		if norm == 0 {
			return 0
		}
		for i := range w {
			w[i] /= norm
		}
		if math.Abs(norm-radius) < 1e-13 {
			return norm
		}
		radius = norm
		v = w
	}
	return radius
}

// MinMPLForResponseTime returns the smallest MPL in [1, maxMPL] whose
// mean response time is within (1+tolerance) of the PS limit
// E[S]/(1−ρ). This is the response-time analogue of
// mva.MinMPLForFraction and the controller's second jump-start input.
// Returns maxMPL+1 if none suffices.
//
// Mean response time is monotone non-increasing in the MPL for this
// chain (a larger service pool dominates pathwise), so binary search
// applies; the linear scan variant below is kept as a cross-check.
func MinMPLForResponseTime(lambda float64, job dist.H2, tolerance float64, maxMPL int) (int, error) {
	rho := lambda * job.Mean()
	if rho >= 1 {
		return 0, fmt.Errorf("qbd: unstable system, rho = %v", rho)
	}
	psRT := job.Mean() / (1 - rho)
	target := psRT * (1 + tolerance)
	rt := func(mpl int) (float64, error) {
		sol, err := Solve(Model{Lambda: lambda, Job: job, MPL: mpl})
		if err != nil {
			return 0, err
		}
		return sol.MeanRT, nil
	}
	// Gallop upward (1, 2, 4, ...) to bracket the threshold — cheap
	// solves first, since Solve cost grows with the MPL — then binary
	// search inside the bracket.
	lo := 1
	hi := 1
	for {
		v, err := rt(hi)
		if err != nil {
			return 0, err
		}
		if v <= target {
			break
		}
		lo = hi + 1
		if hi >= maxMPL {
			return maxMPL + 1, nil
		}
		hi *= 2
		if hi > maxMPL {
			hi = maxMPL
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		v, err := rt(mid)
		if err != nil {
			return 0, err
		}
		if v <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// MinMPLForResponseTimeLinear is the O(maxMPL) scan used to validate
// the binary search (and the monotonicity assumption) in tests.
func MinMPLForResponseTimeLinear(lambda float64, job dist.H2, tolerance float64, maxMPL int) (int, error) {
	rho := lambda * job.Mean()
	if rho >= 1 {
		return 0, fmt.Errorf("qbd: unstable system, rho = %v", rho)
	}
	psRT := job.Mean() / (1 - rho)
	target := psRT * (1 + tolerance)
	for mpl := 1; mpl <= maxMPL; mpl++ {
		sol, err := Solve(Model{Lambda: lambda, Job: job, MPL: mpl})
		if err != nil {
			return 0, err
		}
		if sol.MeanRT <= target {
			return mpl, nil
		}
	}
	return maxMPL + 1, nil
}

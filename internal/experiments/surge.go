package experiments

import (
	"fmt"

	"extsched/internal/controller"
	"extsched/internal/runner"
	"extsched/internal/workload"
	"extsched/metrics"
)

// SurgeFigure is the scenario engine's showcase: a three-act load
// story on one setup — steady closed-population traffic, then an open
// ramp surging past the no-MPL saturation rate, then bursty MMPP
// arrivals — with the Section 4.3 feedback controller enabled
// throughout. The figure is a time series (one point per sample
// interval): throughput, mean response time, MPL, and external queue
// depth, showing the controller holding throughput while the queue
// absorbs the surge externally.
func SurgeFigure(setupID int, lossFrac float64, opts RunOpts) (*Figure, error) {
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults(setup)
	// Reference optimum from a no-MPL probe (parallel-safe: one run).
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, opts)
	if err != nil {
		return nil, err
	}
	ref := base.Throughput()
	if ref <= 0 {
		return nil, fmt.Errorf("experiments: degenerate baseline throughput")
	}
	// The controller needs a finite starting MPL; jump-start it from
	// the queueing models, exactly as the AutoTune workflow does.
	cpuD, ioD := setup.Demands()
	start, err := controller.JumpStart(controller.JumpStartInput{
		CPUs: setup.CPUs, Disks: setup.Disks,
		CPUDemand: cpuD, IODemand: ioD,
		DiskCV2:            setup.Workload.DiskService.C2(),
		ThroughputFraction: 1 - lossFrac,
	})
	if err != nil {
		return nil, err
	}
	seg := opts.Measure
	var col metrics.Collector
	out, err := RunPhases(setup, start, nil, workload.DBOptions{}, opts, runner.Spec{
		Warmup:         opts.Warmup,
		SampleInterval: seg / 10,
		Phases: []runner.Phase{
			{
				Name: "steady", Kind: runner.KindClosed, Clients: opts.Clients, Duration: seg,
				Events: []runner.Event{{EnableController: &runner.ControllerSpec{
					MaxThroughputLoss:   lossFrac,
					ReferenceThroughput: ref,
				}}},
			},
			{
				Name: "surge", Kind: runner.KindRamp,
				Lambda: 0.5 * ref, Lambda2: 1.3 * ref, Duration: seg,
			},
			{
				Name: "bursty", Kind: runner.KindBurst,
				Lambda: 0.7 * ref, BurstFactor: 2, BurstPeriod: seg / 8, Duration: seg,
			},
		},
	}, &col)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "surge",
		Title: fmt.Sprintf("Scenario: steady -> ramp surge -> bursts, setup %d, controller at %g%% loss",
			setupID, lossFrac*100),
	}
	tput := Series{Name: "tput (tx/s)"}
	rt := Series{Name: "meanRT (s)"}
	mpl := Series{Name: "MPL"}
	queue := Series{Name: "queued"}
	for _, s := range col.Snapshots {
		tput.X = append(tput.X, s.Time)
		tput.Y = append(tput.Y, s.Throughput)
		rt.X = append(rt.X, s.Time)
		rt.Y = append(rt.Y, s.MeanResponse)
		mpl.X = append(mpl.X, s.Time)
		mpl.Y = append(mpl.Y, float64(s.Limit))
		queue.X = append(queue.X, s.Time)
		queue.Y = append(queue.Y, float64(s.Queued))
	}
	f.Series = []Series{tput, rt, mpl, queue}
	f.Notes = append(f.Notes,
		fmt.Sprintf("no-MPL reference: %.2f tx/s; controller target >= %.2f tx/s", ref, (1-lossFrac)*ref),
		fmt.Sprintf("final MPL %d after %d controller iterations (converged %v)",
			out.FinalMPL, tuneIterations(out), out.Tune != nil && out.Tune.Converged),
		"expect: during the surge the external queue grows while throughput holds near the target")
	return f, nil
}

func tuneIterations(out runner.Outcome) int {
	if out.Tune == nil {
		return 0
	}
	return out.Tune.Iterations
}

package experiments

import (
	"fmt"

	"extsched/internal/runner"
	"extsched/internal/workload"
	"extsched/metrics"
)

// autoscaleOutcome is one fleet-configuration run of the autoscale
// figure.
type autoscaleOutcome struct {
	out   runner.Outcome
	rt    Series // windowed high-class mean response over time
	fleet Series // Up fleet size over time
}

// AutoscaleFigure is the fleet-elasticity headline: a diurnal load
// curve (morning ramp-up, midday peak, evening ramp-down, overnight
// trough) served two ways — an autoscaled fleet that starts at the
// floor and lets the hysteresis controller grow it into the peak and
// shrink it back, versus a fixed fleet provisioned for the peak the
// whole time. Both use sampled power-of-d dispatch ("jsq-d"), the
// policy that keeps per-transaction routing O(d) no matter how large
// the controller grows the fleet.
//
// The figure the comparison makes: the autoscaled fleet tracks the
// load curve (the fleet-size series is the diurnal shape, quantized by
// hysteresis), holds the high-class tail within tolerance of the fixed
// fleet at the peak, and pays for far fewer shard-seconds — the
// capacity bill is the point of scaling down.
func AutoscaleFigure(setupID int, opts RunOpts) (*Figure, error) {
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults(setup)
	if opts.PercentileSamples <= 0 {
		opts.PercentileSamples = 4000
	}
	// Per-shard nominal capacity from a no-MPL closed probe.
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, opts)
	if err != nil {
		return nil, err
	}
	ref := base.Throughput()
	if ref <= 0 {
		return nil, fmt.Errorf("experiments: degenerate baseline throughput")
	}
	const (
		nMin, nMax  = 2, 8
		perShardMPL = 3
	)
	capacity := float64(nMax) * ref
	seg := opts.Measure
	// A tight cadence with a low breach bar: on a ramp, capacity that
	// arrives late is a queue that lingers in the tail, so the
	// controller is tuned to lead the load curve (scale up after two
	// short breach windows) and lag it on the way down (six calm
	// windows before shrinking).
	asc := &runner.AutoscaleSpec{
		Min: nMin, Max: nMax,
		Interval:  seg / 80,
		HighWater: perShardMPL + 1, LowWater: 1,
		BreachWindows: 2, CalmWindows: 6,
		Cooldown:    seg / 80,
		MPLPerShard: perShardMPL,
	}
	// The diurnal curve: trough load a fixed fleet wastes capacity on,
	// a peak that needs most of nMax.
	spec := func(a *runner.AutoscaleSpec) runner.Spec {
		return runner.Spec{
			Warmup:         opts.Warmup,
			SampleInterval: seg / 10,
			Autoscale:      a,
			Phases: []runner.Phase{
				{Name: "morning", Kind: runner.KindRamp,
					Lambda: 0.1 * capacity, Lambda2: 0.65 * capacity, Duration: seg},
				{Name: "peak", Kind: runner.KindOpen,
					Lambda: 0.65 * capacity, Duration: seg / 2},
				{Name: "evening", Kind: runner.KindRamp,
					Lambda: 0.65 * capacity, Lambda2: 0.1 * capacity, Duration: seg},
				{Name: "night", Kind: runner.KindOpen,
					Lambda: 0.1 * capacity, Duration: seg / 2},
			},
		}
	}
	configs := []struct {
		label  string
		shards int
		asc    *runner.AutoscaleSpec
	}{
		{"autoscaled", nMin, asc},
		{"fixed", nMax, nil},
	}
	results, err := SweepContext(opts.ctx(), len(configs), func(i int) (autoscaleOutcome, error) {
		c := configs[i]
		speeds := make([]float64, c.shards)
		for j := range speeds {
			speeds[j] = 1
		}
		st, err := buildShardedStack(setup, speeds, "jsq-d:3", perShardMPL*c.shards, workload.DBOptions{}, opts)
		if err != nil {
			return autoscaleOutcome{}, err
		}
		st.PercentileSamples = opts.PercentileSamples
		var o autoscaleOutcome
		o.rt = Series{Name: "high mean RT " + c.label}
		o.fleet = Series{Name: "fleet size " + c.label}
		out, err := runner.Run(opts.ctx(), st, spec(c.asc), metrics.ObserverFunc(func(s metrics.Snapshot) {
			o.rt.X = append(o.rt.X, s.Time)
			o.rt.Y = append(o.rt.Y, s.HighResponse())
			o.fleet.X = append(o.fleet.X, s.Time)
			o.fleet.Y = append(o.fleet.Y, float64(s.FleetUp))
		}))
		if err != nil {
			return autoscaleOutcome{}, err
		}
		o.out = out
		return o, nil
	})
	if err != nil {
		return nil, err
	}

	f := &Figure{
		ID: "autoscale",
		Title: fmt.Sprintf("Autoscaled fleet [%d,%d] vs fixed fleet of %d on a diurnal curve, setup %d (jsq-d dispatch)",
			nMin, nMax, nMax, setupID),
	}
	for i, c := range configs {
		r := results[i].out.Total
		f.Series = append(f.Series, results[i].rt, results[i].fleet)
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%s: high p95 %.3gs, throughput %.2f tx/s, completed %d",
			c.label, r.HighP95, r.Throughput(), r.Completed))
	}
	auto, fixed := results[0].out, results[1].out
	rep := auto.Autoscale
	if rep == nil {
		return nil, fmt.Errorf("experiments: autoscaled run produced no autoscale report")
	}
	fixedBill := float64(nMax) * fixed.Total.Window
	f.Notes = append(f.Notes,
		fmt.Sprintf("autoscaler: %d scale-ups, %d scale-downs, fleet peaked at %d, ended at %d",
			rep.ScaleUps, rep.ScaleDowns, rep.PeakFleet, rep.FinalFleet),
		fmt.Sprintf("capacity bill: %.0f shard-seconds autoscaled vs %.0f fixed (%.0f%% saved)",
			rep.ShardSeconds, fixedBill, 100*(1-rep.ShardSeconds/fixedBill)),
		fmt.Sprintf("expect: the fleet-size series tracks the diurnal curve and the high-class p95 stays comparable (%.3gs vs %.3gs) while the bill drops",
			auto.Total.HighP95, fixed.Total.HighP95))
	return f, nil
}

// Command mpltool is the paper's MPL-recommendation tool: given a
// hardware shape, per-transaction demand estimates, and the DBA's
// acceptable throughput loss (plus, optionally, an open-system load
// description for the response-time criterion), it prints the lowest
// MPL the Section 4 queueing models consider safe.
//
// Examples:
//
//	mpltool -cpus 1 -disks 4 -cpu-demand 0.001 -io-demand 0.2 -max-loss 0.05
//	mpltool -cpus 2 -disks 1 -cpu-demand 0.02 -lambda 70 -mean-demand 0.01 -c2 15
//
// Use -setup to pull demands from one of the paper's Table 2 setups:
//
//	mpltool -setup 8 -max-loss 0.05
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"extsched"
	"extsched/internal/controller"
	"extsched/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mpltool:", err)
		os.Exit(1)
	}
}

// run parses args and writes the recommendation to out; split from
// main so tests can drive the tool in-process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mpltool", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		setupID   = fs.Int("setup", 0, "Table 2 setup id (1-17); overrides demands/hardware flags")
		cpus      = fs.Int("cpus", 1, "number of CPUs")
		disks     = fs.Int("disks", 1, "number of data disks")
		cpuDemand = fs.Float64("cpu-demand", 0, "per-transaction CPU demand (seconds)")
		ioDemand  = fs.Float64("io-demand", 0, "per-transaction disk demand (seconds)")
		maxLoss   = fs.Float64("max-loss", 0.05, "acceptable fractional throughput loss")
		lambda    = fs.Float64("lambda", 0, "open-system arrival rate for the RT criterion (0 = skip)")
		meanDem   = fs.Float64("mean-demand", 0, "mean total service demand for the RT criterion")
		c2        = fs.Float64("c2", 0, "squared coefficient of variation of demand")
		maxRTInc  = fs.Float64("max-rt-increase", 0.1, "acceptable fractional RT increase over PS")
		list      = fs.Bool("list", false, "list the Table 2 setups and exit")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}

	if *list {
		for _, s := range extsched.Setups() {
			fmt.Fprintln(out, s)
		}
		return nil
	}
	if *setupID != 0 {
		s, err := workload.SetupByID(*setupID)
		if err != nil {
			return err
		}
		*cpus, *disks = s.CPUs, s.Disks
		*cpuDemand, *ioDemand = s.Demands()
		fmt.Fprintf(out, "%s\n", s)
		fmt.Fprintf(out, "demand estimates: cpu=%.4fs io=%.4fs per transaction (disk CV²=%.2f)\n",
			*cpuDemand, *ioDemand, s.Workload.DiskService.C2())
		// The setup knows its disks' service variability; use the
		// CV²-aware model, as the controller's jump-start does.
		start, err := controller.JumpStart(controller.JumpStartInput{
			CPUs: s.CPUs, Disks: s.Disks,
			CPUDemand: *cpuDemand, IODemand: *ioDemand,
			DiskCV2:            s.Workload.DiskService.C2(),
			ThroughputFraction: 1 - *maxLoss,
			Lambda:             *lambda,
			MeanDemand:         *meanDem,
			DemandC2:           *c2,
			RTTolerance:        *maxRTInc,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "recommended MPL (CV²-aware jump-start model): %d\n", start)
		return nil
	}
	if *cpuDemand == 0 && *ioDemand == 0 {
		return fmt.Errorf("need -cpu-demand and/or -io-demand (or -setup)")
	}
	rec, err := extsched.RecommendMPL(*cpus, *disks, *cpuDemand, *ioDemand, *maxLoss,
		*lambda, *meanDem, *c2, *maxRTInc)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "throughput criterion (MVA, <=%.0f%% loss): MPL >= %d\n", *maxLoss*100, rec.ThroughputMPL)
	if rec.ResponseTimeMPL > 0 {
		fmt.Fprintf(out, "response-time criterion (QBD, C²=%.1f, rho=%.2f): MPL >= %d\n",
			*c2, *lambda**meanDem, rec.ResponseTimeMPL)
	}
	fmt.Fprintf(out, "recommended MPL: %d\n", rec.MPL)
	return nil
}

// Package dbfe binds the backend-agnostic external scheduler
// (internal/core) to the simulated DBMS (internal/dbms): the MPL gate
// and queue policies come from core, transaction execution comes from
// dbms, and the glue here adapts between the two — a dbms.TxnProfile
// goes in, a generic core.Item flows through the gate, and the DBMS
// executes the profile when the gate admits it.
//
// This is the simulator-side twin of the top-level gate package (the
// live-traffic binding): both are thin Backends over the same core
// frontend, which is what makes sim-vs-live parity claims meaningful.
//
// The binding adds no allocations on the per-transaction fast path
// beyond the seed implementation: one Txn per submission (the
// core.Item is embedded in it) and one completion closure per
// dispatch, exactly as before the core refactor.
package dbfe

import (
	"extsched/internal/core"
	"extsched/internal/dbms"
	"extsched/internal/lockmgr"
	"extsched/internal/sim"
)

// Txn is one transaction flowing through the frontend.
type Txn struct {
	// Item is the generic gate record (timestamps, class, size hint).
	Item core.Item
	// Profile is the workload-generated transaction.
	Profile dbms.TxnProfile
	// Result is the DBMS's commit report (set at completion).
	Result dbms.Result
	// Attempts counts the recovery attempts consumed for this logical
	// transaction (0 on first submission). The cluster dispatcher's
	// resubmit path carries it across resubmissions and enforces the
	// retry budget against it; dbfe itself never touches it.
	Attempts int
	// UserCB is the submitter's own completion callback, kept reachable
	// on the txn so the cluster dispatcher can resubmit a failed txn
	// with it (the per-txn done callback is the dispatcher's accounting
	// wrapper, not the submitter's). dbfe itself never calls it.
	UserCB func(*Txn)
	done   func(*Txn)
	// executing is set when the gate admits the txn into the DBMS;
	// settled when it leaves the frontend for good (commit, shed, or
	// fault). doomed suppresses the late DBMS completion of a txn that
	// was in flight when its shard died (the simulated DBMS has no
	// cancel API, so the execution events still fire — the completion
	// callback just ignores them).
	executing, settled, doomed bool
	// presetArrival/arrivalAt carry an arrival-timestamp override for
	// deferred deliveries: a recovery resubmit keeps its original
	// arrival so the reported latency spans the outage, but when the
	// actual Submit happens later (parallel runs inject it as a member
	// engine event), Submit's own stamp would clobber the override set
	// at routing time — so Deliver re-applies it right after Submit,
	// the same logical point where the sequential path overwrites it.
	presetArrival bool
	arrivalAt     float64
}

// PresetArrival arranges for the txn's Item.Arrival to be set to at
// when the txn is eventually Delivered, overriding Submit's own stamp.
func (t *Txn) PresetArrival(at float64) {
	t.presetArrival = true
	t.arrivalAt = at
}

// Failed reports whether the transaction was lost to a shard failure
// (see Frontend.Fail). Valid once the txn is terminal.
func (t *Txn) Failed() bool { return t.Item.WasFailed() }

// Class returns the transaction's priority class.
func (t *Txn) Class() lockmgr.Class { return t.Profile.Class }

// ResponseTime is Complete − Arrival (external wait + inside time).
func (t *Txn) ResponseTime() float64 { return t.Item.ResponseTime() }

// ExternalWait is Dispatch − Arrival.
func (t *Txn) ExternalWait() float64 { return t.Item.ExternalWait() }

// Frontend is the external scheduler over a simulated DBMS. It embeds
// the generic core.Frontend, so all gate controls (SetMPL, QueueLen,
// Metrics, SetQueueLimit, EnablePercentiles, …) are available directly.
type Frontend struct {
	*core.Frontend
	db *dbms.DB
	// live is the insertion-ordered registry of outstanding (queued or
	// executing) transactions — what Fail walks to withdraw every piece
	// of work a dying shard holds. Settled entries are removed lazily.
	// Maintained only on the simulation goroutine (like the hooks).
	live      []*Txn
	deadLive  int
	failedNow []*Txn // scratch for Fail
	// OnComplete, if set, observes every committed transaction (used by
	// drivers for closed-loop clients and by controller wiring).
	OnComplete func(*Txn)
	// OnDrop, if set, observes admission-control rejections.
	OnDrop func(*Txn)
	// OnShed, if set, observes deadline sheds (transactions rejected
	// because they could not start by their admission deadline). The
	// per-transaction SubmitCB callback fires for sheds too — check
	// Item.WasShed to tell a shed from a commit.
	OnShed func(*Txn)
}

// backend executes admitted items on the simulated DBMS.
type backend struct {
	db *dbms.DB
	fe *core.Frontend
}

func (b *backend) Exec(it *core.Item) {
	t := it.Payload.(*Txn)
	t.executing = true
	b.db.Exec(t.Profile, func(r dbms.Result) {
		if t.doomed {
			// The shard died while this txn was in flight; the loss was
			// already accounted by FailDispatched, so the simulated
			// DBMS's late completion must not reach the gate.
			return
		}
		t.Result = r
		b.fe.Complete(it, core.Outcome{InsideTime: r.InsideTime, Restarts: r.Restarts})
	})
}

// New builds a frontend over db with the given MPL (0 = unlimited) and
// policy (nil = FIFO), on the engine's virtual clock.
func New(eng *sim.Engine, db *dbms.DB, mpl int, policy core.Policy) *Frontend {
	f := &Frontend{db: db}
	be := &backend{db: db}
	f.Frontend = core.New(eng.Clock(), be, mpl, policy)
	be.fe = f.Frontend
	f.Frontend.OnComplete = func(it *core.Item) {
		t := it.Payload.(*Txn)
		f.settle(t)
		if f.OnComplete != nil {
			f.OnComplete(t)
		}
	}
	f.Frontend.OnDrop = func(it *core.Item) {
		if f.OnDrop != nil {
			f.OnDrop(it.Payload.(*Txn))
		}
	}
	f.Frontend.OnShed = func(it *core.Item) {
		t := it.Payload.(*Txn)
		f.settle(t)
		if f.OnShed != nil {
			f.OnShed(t)
		}
	}
	return f
}

// settle marks t as gone from the outstanding registry; entries are
// purged lazily once enough accumulate.
func (f *Frontend) settle(t *Txn) {
	if t.settled {
		return
	}
	t.settled = true
	f.deadLive++
	if f.deadLive >= 64 && f.deadLive*2 >= len(f.live) {
		kept := 0
		for _, lt := range f.live {
			if !lt.settled {
				f.live[kept] = lt
				kept++
			}
		}
		for i := kept; i < len(f.live); i++ {
			f.live[i] = nil
		}
		f.live = f.live[:kept]
		f.deadLive = 0
	}
}

// Fail simulates the shard behind this frontend crashing: every
// outstanding transaction — still queued or already executing inside
// the DBMS — is withdrawn and counted in the gate's Failed counter, and
// the withdrawn txns are returned in submission order so the caller
// (the cluster dispatcher's recovery policy) can resubmit or shed them.
// No per-txn callbacks fire here. In-flight txns are doomed: the
// simulated DBMS has no cancel API, so their execution events still
// fire, but the completion is suppressed. The frontend itself stays
// usable (Recover on the dispatcher side routes work back to it).
func (f *Frontend) Fail() []*Txn {
	// Withdraw queued work first: failing an in-flight txn frees a slot
	// and refills from the queue, which must find nothing live to admit
	// into the dead DBMS.
	for _, t := range f.live {
		if t.settled {
			continue
		}
		f.Frontend.FailQueued(&t.Item)
	}
	for _, t := range f.live {
		if t.settled || !t.executing || t.Item.WasFailed() {
			continue
		}
		t.doomed = true
		f.Frontend.FailDispatched(&t.Item)
	}
	f.failedNow = f.failedNow[:0]
	for _, t := range f.live {
		if !t.settled && t.Item.WasFailed() {
			f.failedNow = append(f.failedNow, t)
		}
	}
	out := make([]*Txn, len(f.failedNow))
	copy(out, f.failedNow)
	// Settle after collecting: settle may compact f.live in place.
	for _, t := range out {
		f.settle(t)
	}
	return out
}

// txnDone adapts the per-item completion callback to the Txn-level one.
// A package-level func value, so passing it allocates nothing.
func txnDone(it *core.Item) {
	t := it.Payload.(*Txn)
	t.done(t)
}

// Submit delivers a new transaction to the external scheduler.
func (f *Frontend) Submit(profile dbms.TxnProfile) *Txn {
	return f.SubmitCB(profile, nil)
}

// SubmitCB is Submit with a per-transaction completion callback (used
// by closed-loop drivers to cycle their client). cb runs before the
// frontend-wide OnComplete hook. Under a queue limit (admission-
// control mode) the transaction may be rejected: it is returned with
// no callbacks scheduled and counted in Dropped.
func (f *Frontend) SubmitCB(profile dbms.TxnProfile, cb func(*Txn)) *Txn {
	t := f.NewTxn(profile, cb)
	f.Deliver(t)
	return t
}

// NewTxn builds the transaction record for profile — class, size hint,
// payload back-pointer, completion callback — WITHOUT submitting it.
// It is the construction half of SubmitCB, split out for deferred
// delivery: a parallel run's dispatcher must hand the caller a Txn
// synchronously at routing time while the actual Submit happens later
// as an event on the shard's own engine.
func (f *Frontend) NewTxn(profile dbms.TxnProfile, cb func(*Txn)) *Txn {
	t := &Txn{Profile: profile, done: cb}
	it := &t.Item
	it.Class = core.Class(profile.Class)
	it.SizeHint = profile.EstimatedDemand
	it.Payload = t
	return t
}

// Deliver submits a txn built by NewTxn to the external scheduler, at
// the frontend clock's current instant. It is the submission half of
// SubmitCB; calling it more than once per txn is a caller bug.
func (f *Frontend) Deliver(t *Txn) {
	var done func(*core.Item)
	if t.done != nil {
		done = txnDone
	}
	admitted := f.Frontend.Submit(&t.Item, done)
	if t.presetArrival {
		t.Item.Arrival = t.arrivalAt
	}
	if admitted {
		f.live = append(f.live, t)
	}
}

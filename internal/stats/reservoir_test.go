package stats

import (
	"math"
	"testing"

	"extsched/internal/sim"
)

func TestReservoirFillPhase(t *testing.T) {
	r := NewReservoir(10, sim.NewRNG(1, 0))
	for i := 0; i < 10; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 10 || r.Seen() != 10 {
		t.Fatalf("len/seen = %d/%d", r.Len(), r.Seen())
	}
	// All ten kept verbatim during fill.
	s := r.Snapshot()
	for i, v := range s {
		if v != float64(i) {
			t.Fatalf("fill-phase item %d = %v", i, v)
		}
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Stream 0..9999 into a 1000-slot reservoir: the kept sample's mean
	// should approximate the stream mean.
	r := NewReservoir(1000, sim.NewRNG(2, 0))
	for i := 0; i < 10000; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 1000 {
		t.Fatalf("len = %d", r.Len())
	}
	mean := MeanOf(r.Snapshot())
	if math.Abs(mean-4999.5) > 300 {
		t.Errorf("sample mean = %v, want ≈4999.5", mean)
	}
	// Percentiles should roughly match the stream's.
	if p := r.Percentile(50); math.Abs(p-5000) > 500 {
		t.Errorf("p50 = %v, want ≈5000", p)
	}
}

func TestReservoirReset(t *testing.T) {
	r := NewReservoir(5, sim.NewRNG(3, 0))
	for i := 0; i < 20; i++ {
		r.Add(1)
	}
	r.Reset()
	if r.Len() != 0 || r.Seen() != 0 {
		t.Error("reset did not clear")
	}
	r.Add(7)
	if r.Len() != 1 {
		t.Error("reservoir unusable after reset")
	}
}

func TestReservoirDeterminism(t *testing.T) {
	mk := func() []float64 {
		r := NewReservoir(50, sim.NewRNG(4, 9))
		for i := 0; i < 5000; i++ {
			r.Add(float64(i % 97))
		}
		return r.Snapshot()
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed reservoirs differ")
		}
	}
}

func TestReservoirValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 0 did not panic")
		}
	}()
	NewReservoir(0, nil)
}

package core

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"extsched/internal/sim"
)

// delayBackend completes each admitted item after its SizeHint seconds
// of virtual time — an infinite-capacity delay server. The frontend's
// MPL is the only concurrency limit in these tests, which is exactly
// what makes gate semantics easy to assert. That core's own tests need
// no simulated DBMS is the point of the backend abstraction.
type delayBackend struct {
	eng *sim.Engine
	fe  *Frontend
}

func (b *delayBackend) Exec(it *Item) {
	start := b.eng.Now()
	b.eng.After(it.SizeHint, func() {
		b.fe.Complete(it, Outcome{InsideTime: b.eng.Now() - start})
	})
}

// rig builds an engine + delay backend + frontend for policy tests.
func rig(t *testing.T, mpl int, policy Policy) (*sim.Engine, *Frontend) {
	t.Helper()
	eng := sim.NewEngine()
	be := &delayBackend{eng: eng}
	fe := New(eng.Clock(), be, mpl, policy)
	be.fe = fe
	return eng, fe
}

// submit files a work item of the given size and class and returns it.
func submit(fe *Frontend, size float64, class Class) *Item {
	it := &Item{Class: class, SizeHint: size}
	fe.Submit(it, nil)
	return it
}

func TestMPLGating(t *testing.T) {
	eng, fe := rig(t, 2, nil)
	for i := 0; i < 5; i++ {
		submit(fe, 1.0, ClassLow)
	}
	if fe.Inside() != 2 {
		t.Errorf("inside = %d, want 2 (MPL)", fe.Inside())
	}
	if fe.QueueLen() != 3 {
		t.Errorf("queue = %d, want 3", fe.QueueLen())
	}
	eng.RunAll()
	if fe.Metrics().Completed != 5 {
		t.Errorf("completed = %d, want 5", fe.Metrics().Completed)
	}
	if fe.Inside() != 0 || fe.QueueLen() != 0 {
		t.Error("frontend not drained")
	}
}

func TestUnlimitedMPL(t *testing.T) {
	_, fe := rig(t, 0, nil)
	for i := 0; i < 10; i++ {
		submit(fe, 1.0, ClassLow)
	}
	if fe.Inside() != 10 {
		t.Errorf("inside = %d, want 10 (no limit)", fe.Inside())
	}
}

func TestMPL1IsSerial(t *testing.T) {
	eng, fe := rig(t, 1, nil)
	var finishes []float64
	fe.OnComplete = func(it *Item) { finishes = append(finishes, it.Complete) }
	for i := 0; i < 3; i++ {
		submit(fe, 1.0, ClassLow)
	}
	eng.RunAll()
	want := []float64{1, 2, 3}
	for i, w := range want {
		if math.Abs(finishes[i]-w) > 1e-9 {
			t.Errorf("finish[%d] = %v, want %v", i, finishes[i], w)
		}
	}
}

func TestResponseTimeIncludesExternalWait(t *testing.T) {
	eng, fe := rig(t, 1, nil)
	submit(fe, 1.0, ClassLow)
	it := submit(fe, 1.0, ClassLow)
	eng.RunAll()
	if math.Abs(it.ResponseTime()-2.0) > 1e-9 {
		t.Errorf("response time = %v, want 2.0 (1 wait + 1 service)", it.ResponseTime())
	}
	if math.Abs(it.ExternalWait()-1.0) > 1e-9 {
		t.Errorf("external wait = %v, want 1.0", it.ExternalWait())
	}
	if math.Abs(it.Outcome.InsideTime-1.0) > 1e-9 {
		t.Errorf("inside time = %v, want 1.0", it.Outcome.InsideTime)
	}
}

func TestRaisingMPLDispatchesImmediately(t *testing.T) {
	_, fe := rig(t, 1, nil)
	for i := 0; i < 4; i++ {
		submit(fe, 1.0, ClassLow)
	}
	if fe.Inside() != 1 {
		t.Fatalf("inside = %d, want 1", fe.Inside())
	}
	fe.SetMPL(3)
	if fe.Inside() != 3 {
		t.Errorf("inside = %d after raise, want 3", fe.Inside())
	}
}

func TestLoweringMPLDrainsGradually(t *testing.T) {
	eng, fe := rig(t, 3, nil)
	for i := 0; i < 6; i++ {
		submit(fe, 1.0, ClassLow)
	}
	fe.SetMPL(1)
	if fe.Inside() != 3 {
		t.Errorf("inside = %d right after lowering, want 3 (no preemption)", fe.Inside())
	}
	eng.RunAll()
	if fe.Metrics().Completed != 6 {
		t.Errorf("completed = %d, want 6", fe.Metrics().Completed)
	}
}

func TestPriorityPolicyOrdersHighFirst(t *testing.T) {
	eng, fe := rig(t, 1, NewPriority())
	var order []Class
	fe.OnComplete = func(it *Item) { order = append(order, it.Class) }
	// Occupy the server, then queue low, low, high: high must go next.
	submit(fe, 1.0, ClassLow)
	submit(fe, 1.0, ClassLow)
	submit(fe, 1.0, ClassLow)
	submit(fe, 1.0, ClassHigh)
	eng.RunAll()
	want := []Class{ClassLow, ClassHigh, ClassLow, ClassLow}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion classes = %v, want %v", order, want)
		}
	}
}

func TestSJFPolicyOrdering(t *testing.T) {
	eng, fe := rig(t, 1, NewSJF())
	var order []float64
	fe.OnComplete = func(it *Item) { order = append(order, it.SizeHint) }
	submit(fe, 0.5, ClassLow) // occupies server
	submit(fe, 3.0, ClassLow)
	submit(fe, 1.0, ClassLow)
	submit(fe, 2.0, ClassLow)
	eng.RunAll()
	want := []float64{0.5, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("SJF order = %v, want %v", order, want)
		}
	}
}

func TestSJFTieBreakFIFO(t *testing.T) {
	p := NewSJF()
	a := &Item{SizeHint: 1, seq: 1}
	b := &Item{SizeHint: 1, seq: 2}
	p.Push(b)
	p.Push(a)
	if got := p.Pop(); got != a {
		t.Error("SJF tie should break by arrival order")
	}
}

func TestPoliciesEmptyPop(t *testing.T) {
	for _, p := range []Policy{NewFIFO(), NewPriority(), NewSJF()} {
		if p.Pop() != nil {
			t.Errorf("%s: Pop on empty should be nil", p.Name())
		}
		if p.Len() != 0 {
			t.Errorf("%s: Len on empty = %d", p.Name(), p.Len())
		}
	}
}

func TestNewPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"": "fifo", "fifo": "fifo", "priority": "priority", "sjf": "sjf", "wfq": "wfq",
	} {
		p, err := NewPolicy(name, nil)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("NewPolicy(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := NewPolicy("zzz", nil); err == nil {
		t.Error("unknown policy name accepted")
	}
}

func TestPolicyConservationProperty(t *testing.T) {
	// Push/pop conservation under random interleavings for all
	// policies: every pushed item pops exactly once.
	g := sim.NewRNG(3, 0)
	for _, mk := range []func() Policy{
		func() Policy { return NewFIFO() },
		func() Policy { return NewPriority() },
		func() Policy { return NewSJF() },
	} {
		p := mk()
		pushed := map[*Item]bool{}
		popped := 0
		var seq uint64
		for i := 0; i < 2000; i++ {
			if g.IntN(2) == 0 {
				class := ClassLow
				if g.IntN(5) == 0 {
					class = ClassHigh
				}
				it := &Item{SizeHint: g.Float64(), Class: class, seq: seq}
				seq++
				pushed[it] = true
				p.Push(it)
			} else if it := p.Pop(); it != nil {
				if !pushed[it] {
					t.Fatalf("%s: popped unknown item", p.Name())
				}
				delete(pushed, it)
				popped++
			}
		}
		for it := p.Pop(); it != nil; it = p.Pop() {
			if !pushed[it] {
				t.Fatalf("%s: popped unknown item at drain", p.Name())
			}
			delete(pushed, it)
			popped++
		}
		if len(pushed) != 0 {
			t.Errorf("%s: %d items lost", p.Name(), len(pushed))
		}
	}
}

func TestMetricsWindowReset(t *testing.T) {
	eng, fe := rig(t, 1, nil)
	submit(fe, 1.0, ClassLow)
	eng.RunAll()
	if fe.Metrics().Completed != 1 {
		t.Fatal("first completion not recorded")
	}
	fe.ResetMetrics()
	if fe.Metrics().Completed != 0 {
		t.Error("reset did not clear completions")
	}
	submit(fe, 1.0, ClassLow)
	eng.RunAll()
	m := fe.Metrics()
	if m.Completed != 1 {
		t.Errorf("completed = %d in new window, want 1", m.Completed)
	}
	// Throughput = 1 completion / 1 second window.
	if math.Abs(m.Throughput()-1.0) > 1e-9 {
		t.Errorf("throughput = %v, want 1.0", m.Throughput())
	}
}

func TestPerClassMetrics(t *testing.T) {
	eng, fe := rig(t, 0, nil)
	submit(fe, 1.0, ClassHigh)
	submit(fe, 1.0, ClassLow)
	eng.RunAll()
	m := fe.Metrics()
	if m.High.Count() != 1 || m.Low.Count() != 1 {
		t.Errorf("class counts = %d/%d, want 1/1", m.High.Count(), m.Low.Count())
	}
	if m.All.Count() != 2 {
		t.Errorf("all count = %d, want 2", m.All.Count())
	}
}

func TestNegativeMPLPanics(t *testing.T) {
	_, fe := rig(t, 1, nil)
	defer func() {
		if recover() == nil {
			t.Error("negative MPL did not panic")
		}
	}()
	fe.SetMPL(-1)
}

func TestAdmissionControlDrops(t *testing.T) {
	eng, fe := rig(t, 1, nil)
	fe.SetQueueLimit(2)
	var droppedItems int
	fe.OnDrop = func(*Item) { droppedItems++ }
	// 1 dispatches, 2 queue, 2 drop.
	admitted := 0
	for i := 0; i < 5; i++ {
		it := &Item{SizeHint: 1.0}
		if fe.Submit(it, nil) {
			admitted++
		}
	}
	if admitted != 3 {
		t.Errorf("admitted = %d, want 3", admitted)
	}
	if fe.QueueLen() != 2 {
		t.Errorf("queue = %d, want 2", fe.QueueLen())
	}
	if fe.Dropped() != 2 || droppedItems != 2 {
		t.Errorf("dropped = %d/%d, want 2/2", fe.Dropped(), droppedItems)
	}
	eng.RunAll()
	if fe.Metrics().Completed != 3 {
		t.Errorf("completed = %d, want 3 (admitted only)", fe.Metrics().Completed)
	}
}

func TestAdmissionControlDisabledByDefault(t *testing.T) {
	_, fe := rig(t, 1, nil)
	for i := 0; i < 50; i++ {
		submit(fe, 1.0, ClassLow)
	}
	if fe.Dropped() != 0 {
		t.Errorf("dropped = %d without a queue limit", fe.Dropped())
	}
	if fe.QueueLen() != 49 {
		t.Errorf("queue = %d, want 49", fe.QueueLen())
	}
}

func TestNegativeQueueLimitPanics(t *testing.T) {
	_, fe := rig(t, 1, nil)
	defer func() {
		if recover() == nil {
			t.Error("negative queue limit did not panic")
		}
	}()
	fe.SetQueueLimit(-1)
}

func TestCancelQueuedWithdraws(t *testing.T) {
	eng, fe := rig(t, 1, nil)
	running := submit(fe, 1.0, ClassLow)
	waiting := submit(fe, 1.0, ClassLow)
	if fe.CancelQueued(running) {
		t.Error("canceled a dispatched item")
	}
	if !fe.CancelQueued(waiting) {
		t.Fatal("could not cancel a queued item")
	}
	if fe.CancelQueued(waiting) {
		t.Error("double cancel succeeded")
	}
	if fe.QueueLen() != 0 {
		t.Errorf("queue = %d after cancel, want 0", fe.QueueLen())
	}
	if fe.Canceled() != 1 {
		t.Errorf("canceled = %d, want 1", fe.Canceled())
	}
	eng.RunAll()
	// Only the running item completes; the withdrawn one never
	// consumes a slot and never hits the metrics.
	if got := fe.Metrics().Completed; got != 1 {
		t.Errorf("completed = %d, want 1", got)
	}
	if fe.Inside() != 0 {
		t.Errorf("inside = %d after drain, want 0", fe.Inside())
	}
}

func TestCancelQueuedSkippedInOrder(t *testing.T) {
	eng, fe := rig(t, 1, nil)
	var order []*Item
	fe.OnComplete = func(it *Item) { order = append(order, it) }
	a := submit(fe, 1.0, ClassLow)
	b := submit(fe, 1.0, ClassLow)
	c := submit(fe, 1.0, ClassLow)
	fe.CancelQueued(b)
	eng.RunAll()
	if len(order) != 2 || order[0] != a || order[1] != c {
		t.Errorf("completion order wrong after mid-queue cancel: %v", order)
	}
}

// wallBackend completes items on separate goroutines after a tiny real
// delay — the shape of a live gate backend.
type wallBackend struct {
	fe *Frontend
	wg sync.WaitGroup
}

func (b *wallBackend) Exec(it *Item) {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.fe.Complete(it, Outcome{InsideTime: 0.0001})
	}()
}

// TestConcurrentSubmitComplete hammers the frontend from many
// goroutines over the wall clock; run with -race. It asserts the gate
// invariant (completions equal submissions) survives concurrency.
func TestConcurrentSubmitComplete(t *testing.T) {
	be := &wallBackend{}
	fe := New(sim.NewWallClock(), be, 4, nil)
	be.fe = fe
	var completions atomic.Uint64
	fe.OnComplete = func(*Item) { completions.Add(1) }
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				it := &Item{Class: Class(g % 2), SizeHint: float64(i%7) * 0.001}
				fe.Submit(it, nil)
				if i%50 == 0 {
					fe.SetMPL(2 + i%6)
				}
			}
		}(g)
	}
	wg.Wait()
	// All submissions eventually complete (backend goroutines drain the
	// queue as slots free up).
	deadline := make(chan struct{})
	go func() { be.wg.Wait(); close(deadline) }()
	<-deadline
	for fe.Inside() > 0 || fe.QueueLen() > 0 {
		be.wg.Wait()
	}
	if got := completions.Load(); got != goroutines*perG {
		t.Errorf("completions = %d, want %d", got, goroutines*perG)
	}
	m := fe.Metrics()
	if m.Completed != goroutines*perG {
		t.Errorf("metrics completed = %d, want %d", m.Completed, goroutines*perG)
	}
}

func TestCancelCompactionBoundsQueue(t *testing.T) {
	// A stalled server (one huge item holding the MPL-1 slot) with a
	// storm of canceled SJF entries: lazy head-of-queue discard alone
	// would never purge them (nothing dispatches), so bulk compaction
	// must keep the policy's raw length bounded.
	eng, fe := rig(t, 1, NewSJF())
	submit(fe, 1e9, ClassLow) // occupies the slot until the far future
	const storm = 5000
	for i := 0; i < storm; i++ {
		it := submit(fe, float64(i+1), ClassLow)
		if !fe.CancelQueued(it) {
			t.Fatal("queued item refused cancellation")
		}
	}
	if raw := fe.Policy().Len(); raw > 2*compactThreshold {
		t.Errorf("policy retains %d entries after %d cancellations, want <= %d",
			raw, storm, 2*compactThreshold)
	}
	if fe.QueueLen() != 0 {
		t.Errorf("QueueLen = %d, want 0 (all canceled)", fe.QueueLen())
	}
	if fe.Canceled() != storm {
		t.Errorf("canceled = %d, want %d", fe.Canceled(), storm)
	}
	_ = eng
}

func TestCancelCompactionKeepsLiveItems(t *testing.T) {
	// Interleave live and canceled items past the compaction threshold:
	// compaction must drop only the canceled ones and preserve policy
	// order among the rest.
	eng, fe := rig(t, 1, nil)
	submit(fe, 1.0, ClassLow) // occupy the slot
	var live []*Item
	for i := 0; i < 300; i++ {
		it := submit(fe, 1.0, ClassLow)
		if i%2 == 0 {
			fe.CancelQueued(it)
		} else {
			live = append(live, it)
		}
	}
	if got := fe.QueueLen(); got != len(live) {
		t.Fatalf("QueueLen = %d, want %d live", got, len(live))
	}
	var order []*Item
	fe.OnComplete = func(it *Item) { order = append(order, it) }
	eng.RunAll()
	if len(order) != len(live)+1 {
		t.Fatalf("completions = %d, want %d", len(order), len(live)+1)
	}
	for i, it := range live {
		if order[i+1] != it {
			t.Fatalf("FIFO order broken at %d after compaction", i)
		}
	}
}

func TestWFQRefundsCanceledCharge(t *testing.T) {
	// White box: a canceled item's enqueue-time charge is refunded at
	// discard, so the class's next item starts at the virtual time
	// instead of behind a mortgage it never consumed.
	p := NewWFQ(nil)
	huge := &Item{Class: ClassHigh, SizeHint: 1000, seq: 1}
	p.Push(huge)
	if got := p.classF[ClassHigh]; got != 1000 {
		t.Fatalf("finish tag after push = %v, want 1000", got)
	}
	p.discarded(huge)
	if got := p.classF[ClassHigh]; got != 0 {
		t.Fatalf("finish tag after refund = %v, want 0 (vtime)", got)
	}
	next := &Item{Class: ClassHigh, SizeHint: 1, seq: 2}
	p.Push(next)
	if got := p.q[0].start; got != 0 {
		t.Errorf("post-refund start tag = %v, want 0", got)
	}
}

func TestWFQFrontendRefundsOnLazyDiscard(t *testing.T) {
	// Integration: the frontend's dispatch-loop discard of a canceled
	// item must trigger the policy refund.
	eng, fe := rig(t, 1, NewWFQ(nil))
	wfq := fe.Policy().(*WFQPolicy)
	submit(fe, 0.5, ClassLow) // occupy the slot
	huge := submit(fe, 1000, ClassHigh)
	fe.CancelQueued(huge)
	if got := wfq.classF[ClassHigh]; got != 1000 {
		t.Fatalf("finish tag = %v before discard, want 1000", got)
	}
	eng.RunAll() // completion pops (and discards) the canceled item
	if got := wfq.classF[ClassHigh]; got != wfq.vtime {
		t.Errorf("finish tag = %v after lazy discard, want vtime %v (refund missing)", got, wfq.vtime)
	}
}

func TestDiscardFreesSlotWithoutMetrics(t *testing.T) {
	// A manual backend: admitted items just pile up until the test
	// completes (or discards) them — the live gate's shape, where
	// Exec only wakes the acquirer.
	eng := sim.NewEngine()
	var admitted []*Item
	fe := New(eng.Clock(), backendFunc(func(it *Item) { admitted = append(admitted, it) }), 1, nil)
	first := submit(fe, 1.0, ClassLow)
	second := submit(fe, 1.0, ClassLow)
	hooks := 0
	fe.OnComplete = func(*Item) { hooks++ }
	if len(admitted) != 1 || admitted[0] != first {
		t.Fatalf("admitted = %v, want [first]", admitted)
	}
	fe.Discard(first) // as if the admitted caller vanished
	if len(admitted) != 2 || admitted[1] != second {
		t.Fatal("discard did not refill the slot from the queue")
	}
	if fe.Inside() != 1 {
		t.Errorf("inside = %d after discard, want 1", fe.Inside())
	}
	if got := fe.Metrics().Completed; got != 0 {
		t.Errorf("discard recorded a completion: %d", got)
	}
	if fe.Canceled() != 1 {
		t.Errorf("canceled = %d, want 1", fe.Canceled())
	}
	fe.Complete(second, Outcome{})
	if hooks != 1 {
		t.Errorf("OnComplete ran %d times, want 1 (discard must not fire hooks)", hooks)
	}
	m := fe.Metrics()
	if m.Completed != 1 {
		t.Errorf("completed = %d, want 1", m.Completed)
	}
}

// backendFunc adapts a func to the Backend interface.
type backendFunc func(*Item)

func (f backendFunc) Exec(it *Item) { f(it) }

// Command benchrunner regenerates the paper's tables and figures.
//
// Each experiment id corresponds to one table or figure of the
// evaluation; see DESIGN.md for the index. Output is an aligned text
// table by default, CSV with -csv.
//
// Examples:
//
//	benchrunner -exp fig7                 # analytic, instant
//	benchrunner -exp fig2 -measure 300    # simulated throughput sweep
//	benchrunner -exp fig11 -loss 0.05
//	benchrunner -exp all                  # everything (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"extsched/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment: fig2 fig3 fig4 fig5 fig7 fig10 fig11 fig12 fig13 rt-open c2 controller controller-ablation all")
		loss    = flag.Float64("loss", 0.05, "throughput-loss threshold for fig11")
		util    = flag.Float64("util", 0.7, "open-system utilization for rt-open")
		setup   = flag.Int("setup", 3, "setup id for rt-open")
		warmup  = flag.Float64("warmup", 0, "override warmup sim-seconds (0 = auto)")
		measure = flag.Float64("measure", 0, "override measured sim-seconds (0 = auto)")
		seed    = flag.Uint64("seed", 1, "random seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		chart   = flag.Bool("chart", false, "render an ASCII chart instead of a table")
		outdir  = flag.String("outdir", "", "also write each figure as CSV into this directory")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := experiments.RunOpts{Warmup: *warmup, Measure: *measure, Seed: *seed}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"fig2", "fig3", "fig4", "fig5", "fig7", "fig10", "c2",
			"rt-open", "fig11", "fig12", "fig13", "controller"}
	}
	for _, id := range ids {
		fig, err := run(id, *loss, *util, *setup, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch {
		case *csv:
			fmt.Print(fig.CSV())
		case *chart:
			fmt.Print(fig.Chart(72, 20))
		default:
			fmt.Print(fig.Format())
		}
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*outdir, sanitize(fig.ID)+".csv")
			if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		fmt.Println()
	}
}

// sanitize makes a figure id filesystem-friendly.
func sanitize(id string) string {
	r := strings.NewReplacer("@", "-at-", "%", "pct", "/", "-", " ", "_")
	return r.Replace(id)
}

func run(id string, loss, util float64, setupID int, opts experiments.RunOpts) (*experiments.Figure, error) {
	switch id {
	case "fig2":
		return experiments.Figure2(opts)
	case "fig3":
		return experiments.Figure3(opts)
	case "fig4":
		return experiments.Figure4(opts)
	case "fig5":
		return experiments.Figure5(opts)
	case "fig7":
		return experiments.Figure7()
	case "fig10":
		return experiments.Figure10()
	case "fig11":
		return experiments.Figure11(loss, nil, opts)
	case "fig12":
		return experiments.FigureInternal(1, opts)
	case "fig13":
		return experiments.FigureInternal(3, opts)
	case "rt-open":
		return experiments.Section32RT(setupID, util, []int{1, 2, 4, 6, 8, 10, 15, 20, 30}, opts)
	case "rt-summary":
		return experiments.Section32Summary(0.1, opts)
	case "c2":
		return experiments.C2Figure(200000, opts.Seed)
	case "controller":
		return experiments.ControllerFigure(nil, loss, true, opts)
	case "controller-ablation":
		return experiments.ControllerFigure(nil, loss, false, opts)
	case "ablate-groupcommit":
		return experiments.GroupCommitAblation(setupID, []int{1, 2, 5, 10, 20, 40}, opts)
	case "ablate-pow":
		return experiments.POWAblation(opts)
	case "ablate-policy":
		return experiments.PolicyComparison(setupID, 3, opts)
	case "ablate-admission":
		return experiments.AdmissionComparison(setupID, 5, 20, 0.9, opts)
	default:
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
}

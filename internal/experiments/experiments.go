// Package experiments regenerates every table and figure of the
// paper's evaluation. Each figure has a driver that builds the
// appropriate Table 2 setups on the discrete-event simulator (or the
// analytic models for Figs. 7 and 10), sweeps the MPL, and returns
// named series shaped like the paper's plots. The cmd/benchrunner
// binary and the repository-root benchmarks print them.
//
// # Parallel sweeps
//
// Every driver fans its independent simulation points out through
// Sweep, a worker-pool parallel map that preserves input order:
//
//	tputs, err := experiments.Sweep(len(mpls), func(i int) (float64, error) {
//		r, err := experiments.RunClosed(setup, mpls[i], nil, workload.DBOptions{}, opts)
//		if err != nil {
//			return 0, err
//		}
//		return r.Throughput(), nil
//	})
//
// Each point builds a private sim.Engine, DBMS, and seed-derived RNG
// streams, so points share no state and the merged results are
// bit-identical to a sequential loop (see TestSweepDeterminism). The
// pool size comes from DefaultWorkers (0 = GOMAXPROCS; 1 forces the
// sequential path); SweepWorkers takes an explicit size. See
// EXPERIMENTS.md for how to regenerate figures and benchmark flags.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"extsched/internal/core"
	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/runner"
	"extsched/internal/sim"
	"extsched/internal/workload"
	"extsched/metrics"
)

// Series is one named curve: Y[i] measured at X[i].
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a regenerated paper figure or table.
type Figure struct {
	ID     string
	Title  string
	Series []Series
	Notes  []string
}

// Format renders the figure as an aligned text table (x column plus
// one column per series).
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		return b.String()
	}
	// Union of X values in first-series order (series usually share X).
	base := f.Series[0]
	fmt.Fprintf(&b, "%10s", "x")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %22s", s.Name)
	}
	b.WriteByte('\n')
	for i := range base.X {
		fmt.Fprintf(&b, "%10.3g", base.X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %22.4g", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values.
func (f *Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", f.ID, f.Title)
	b.WriteString("x")
	for _, s := range f.Series {
		b.WriteString("," + s.Name)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	base := f.Series[0]
	for i := range base.X {
		fmt.Fprintf(&b, "%g", base.X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, ",%g", s.Y[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RunOpts tunes simulation horizons. Zero values take defaults scaled
// for CI-quality results; raise them for smoother curves.
type RunOpts struct {
	// Warmup is discarded simulated seconds. Default: enough for ~500
	// transactions at the setup's saturation rate, minimum 20 s.
	Warmup float64
	// Measure is the measured window in simulated seconds. Default:
	// enough for ~3000 transactions, minimum 100 s.
	Measure float64
	// Clients is the closed-system population; default 100 (paper).
	Clients int
	// QueueLimit, when > 0, switches the frontend to admission-control
	// mode: arrivals beyond the limit are dropped (the related-work
	// comparison of the ablations; pure external scheduling never
	// drops).
	QueueLimit int
	// PercentileSamples, when > 0, reservoir-samples response times so
	// RunPhases outcomes carry P50/P95/P99 and the per-class tails
	// (deterministic given Seed).
	PercentileSamples int
	// Seed drives all randomness.
	Seed uint64
	// Ctx, when non-nil, cancels figure sweeps early: every Sweep a
	// driver fans out checks it between points (see SweepContext).
	// cmd/benchrunner wires SIGINT/SIGTERM here so a long "-exp all"
	// run dies cleanly at the first interrupt.
	Ctx context.Context
}

// ctx resolves the sweep context (Background when unset).
func (o RunOpts) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

func (o RunOpts) withDefaults(setup workload.Setup) RunOpts {
	if o.Clients <= 0 {
		o.Clients = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Warmup <= 0 || o.Measure <= 0 {
		cpuD, ioD := setup.Demands()
		perTxn := cpuD/float64(setup.CPUs) + ioD/float64(setup.Disks)
		rate := 1.0
		if perTxn > 0 {
			rate = 1 / perTxn // rough saturation throughput
		}
		if o.Warmup <= 0 {
			o.Warmup = 500 / rate
			if o.Warmup < 20 {
				o.Warmup = 20
			}
		}
		if o.Measure <= 0 {
			o.Measure = 3000 / rate
			if o.Measure < 100 {
				o.Measure = 100
			}
		}
	}
	return o
}

// LockStats are the lock manager's counters over the measured window.
type LockStats struct {
	Waits, Deadlocks, Preemptions uint64
}

// RunResult is one measured run. All fields cover exactly the
// measurement window (utilizations and lock counters included — the
// warmup is excluded everywhere).
type RunResult struct {
	Setup      workload.Setup
	MPL        int
	Metrics    core.Metrics
	CPUUtil    float64
	DiskUtil   float64
	Dropped    uint64
	SimSeconds float64
	Lock       LockStats
}

// Throughput is the measured transaction rate.
func (r RunResult) Throughput() float64 { return r.Metrics.Throughput() }

// MeanRT is the measured overall mean response time.
func (r RunResult) MeanRT() float64 { return r.Metrics.All.Mean() }

// buildStack assembles engine + DB + frontend + generator for a setup,
// with the buffer pool pre-warmed.
func buildStack(setup workload.Setup, mpl int, policy core.Policy, dbo workload.DBOptions, opts RunOpts) (*sim.Engine, *dbms.DB, *dbfe.Frontend, *workload.Generator, error) {
	if dbo.Seed == 0 {
		dbo.Seed = opts.Seed
	}
	eng := sim.NewEngine()
	db, err := dbms.New(eng, setup.BuildConfig(dbo))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	fe := dbfe.New(eng, db, mpl, policy)
	if opts.QueueLimit > 0 {
		fe.SetQueueLimit(opts.QueueLimit)
	}
	gen, err := workload.NewGenerator(setup.Workload, opts.Seed)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	workload.Prewarm(db, setup.Workload, opts.Seed)
	return eng, db, fe, gen, nil
}

// RunPhases measures a setup under an arbitrary phased scenario — the
// general entry every specialized Run* helper builds on, and the one
// scenario-shaped figures (Surge) drive directly. Observers receive
// one windowed snapshot per spec.SampleInterval.
func RunPhases(setup workload.Setup, mpl int, policy core.Policy, dbo workload.DBOptions, opts RunOpts, spec runner.Spec, obs ...metrics.Observer) (runner.Outcome, error) {
	eng, db, fe, gen, err := buildStack(setup, mpl, policy, dbo, opts)
	if err != nil {
		return runner.Outcome{}, err
	}
	st := runner.Stack{
		Eng: eng, DB: db, FE: fe, Gen: gen, Seed: opts.Seed,
		PercentileSamples: opts.PercentileSamples,
	}
	return runner.Run(opts.ctx(), st, spec, obs...)
}

// runOne measures a single-phase scenario and shapes it as a RunResult.
func runOne(setup workload.Setup, mpl int, policy core.Policy, dbo workload.DBOptions, opts RunOpts, ph runner.Phase) (RunResult, error) {
	out, err := RunPhases(setup, mpl, policy, dbo, opts, runner.Spec{
		Warmup: opts.Warmup,
		Phases: []runner.Phase{ph},
	})
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{
		Setup:      setup,
		MPL:        mpl,
		Metrics:    out.Total.CoreMetrics(),
		CPUUtil:    out.Total.CPUUtil,
		DiskUtil:   out.Total.DiskUtil,
		Dropped:    out.Total.Dropped,
		SimSeconds: out.Total.Window,
		Lock: LockStats{
			Waits:       out.Total.LockWaits,
			Deadlocks:   out.Total.Deadlocks,
			Preemptions: out.Total.Preemptions,
		},
	}, nil
}

// RunClosed measures a Table 2 setup at the given MPL (0 = no limit)
// under the paper's closed system, with the given external policy
// (nil = FIFO) and DB options.
func RunClosed(setup workload.Setup, mpl int, policy core.Policy, dbo workload.DBOptions, opts RunOpts) (RunResult, error) {
	opts = opts.withDefaults(setup)
	return runOne(setup, mpl, policy, dbo, opts, runner.Phase{
		Kind: runner.KindClosed, Clients: opts.Clients, Duration: opts.Measure,
	})
}

// RunOpen measures a setup under Poisson arrivals at the given rate.
// The report covers exactly the measured window: transactions still
// queued or executing when it closes are not counted (the runner's
// windowing rule).
func RunOpen(setup workload.Setup, mpl int, lambda float64, policy core.Policy, dbo workload.DBOptions, opts RunOpts) (RunResult, error) {
	opts = opts.withDefaults(setup)
	return runOne(setup, mpl, policy, dbo, opts, runner.Phase{
		Kind: runner.KindOpen, Lambda: lambda, Duration: opts.Measure,
	})
}

// ThroughputVsMPL sweeps the MPL for one setup on the parallel Sweep
// pool and returns the throughput curve (the building block of
// Figs. 2–5). Each MPL point runs on its own engine with the same
// seed, so the curve is bit-identical to a sequential sweep.
func ThroughputVsMPL(setupID int, mpls []int, opts RunOpts) (Series, error) {
	series, err := throughputGrid([]int{setupID}, mpls, opts)
	if err != nil {
		return Series{}, err
	}
	return series[0], nil
}

// defaultMPLs is the sweep grid used by the throughput figures.
func defaultMPLs(max int) []int {
	var out []int
	for m := 1; m <= max; {
		out = append(out, m)
		switch {
		case m < 10:
			m++
		case m < 30:
			m += 2
		default:
			m += 5
		}
	}
	return out
}

package mg1

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMM1Coincidence(t *testing.T) {
	// For C²=1, FIFO response = PS response = E[S]/(1-ρ).
	p := Params{Lambda: 0.8, MeanSize: 1, C2: 1}
	want := 1.0 / (1 - 0.8)
	if got := p.FIFOResponse(); math.Abs(got-want) > 1e-12 {
		t.Errorf("FIFO = %v, want %v", got, want)
	}
	if got := p.PSResponse(); math.Abs(got-want) > 1e-12 {
		t.Errorf("PS = %v, want %v", got, want)
	}
}

func TestPKKnownValue(t *testing.T) {
	// λ=0.5, E[S]=1, C²=4: E[W] = 0.5/0.5 · 5/2 · 1 = 2.5.
	p := Params{Lambda: 0.5, MeanSize: 1, C2: 4}
	if w := p.FIFOWait(); math.Abs(w-2.5) > 1e-12 {
		t.Errorf("FIFOWait = %v, want 2.5", w)
	}
	if r := p.FIFOResponse(); math.Abs(r-3.5) > 1e-12 {
		t.Errorf("FIFOResponse = %v, want 3.5", r)
	}
}

func TestPSInsensitive(t *testing.T) {
	a := Params{Lambda: 0.7, MeanSize: 1, C2: 1}
	b := Params{Lambda: 0.7, MeanSize: 1, C2: 15}
	if a.PSResponse() != b.PSResponse() {
		t.Error("PS response should be insensitive to C²")
	}
	if b.FIFOResponse() <= a.FIFOResponse() {
		t.Error("FIFO response should grow with C²")
	}
}

func TestLittlesLawConsistency(t *testing.T) {
	f := func(l, m, c uint16) bool {
		p := Params{
			Lambda:   0.01 + float64(l%90)/100, // up to 0.91
			MeanSize: 0.1 + float64(m%100)/100,
			C2:       float64(c % 20),
		}
		if p.Rho() >= 0.99 {
			return true // skip near-unstable
		}
		// FIFOMeanJobs = λ·T and PSMeanJobs = ρ/(1-ρ) = λ·E[S]/(1-ρ).
		wantPS := p.Lambda * p.PSResponse()
		return math.Abs(p.PSMeanJobs()-wantPS) < 1e-9 &&
			math.Abs(p.FIFOMeanJobs()-p.Lambda*p.FIFOResponse()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnstable(t *testing.T) {
	p := Params{Lambda: 2, MeanSize: 1, C2: 1}
	if err := p.Validate(); err == nil {
		t.Error("unstable queue should fail validation")
	}
	if !math.IsInf(p.FIFOWait(), 1) || !math.IsInf(p.PSResponse(), 1) {
		t.Error("unstable metrics should be +Inf")
	}
}

func TestValidate(t *testing.T) {
	good := Params{Lambda: 0.5, MeanSize: 1, C2: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	for _, bad := range []Params{
		{Lambda: 0, MeanSize: 1, C2: 1},
		{Lambda: 1, MeanSize: 0, C2: 1},
		{Lambda: 1, MeanSize: 1, C2: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid params accepted: %+v", bad)
		}
	}
}

// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is intentionally small: a monotonically advancing clock, a
// binary-heap event queue with stable FIFO ordering among simultaneous
// events, and cancellable event handles. All higher-level substrates
// (CPU scheduler, disks, lock manager, workload generators) are built on
// top of it. Simulated time is measured in seconds as float64.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. The callback runs when simulated time
// reaches Time. Events scheduled for the same instant fire in the order
// they were scheduled (stable by sequence number).
type Event struct {
	Time     float64
	fn       func()
	seq      uint64
	index    int // heap index; -1 when not in the heap
	canceled bool
}

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulation engine.
// It is not safe for concurrent use; all model code runs inside event
// callbacks on the engine's goroutine.
type Engine struct {
	now     float64
	queue   eventHeap
	seq     uint64
	stopped bool
	// Processed counts events that have fired (excluding canceled ones).
	processed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled (including
// canceled events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past (t < Now) panics: it always indicates a model bug, and silently
// clamping would hide it.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", t))
	}
	ev := &Event{Time: t, fn: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d float64, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Cancel marks ev as canceled. A canceled event is skipped when popped.
// Canceling an already-fired or already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	ev.canceled = true
}

// Stop halts the run loop after the current event callback returns.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Step fires the next non-canceled event. It returns false when the
// queue is empty or the engine is stopped.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.Time
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains, Stop is called, or the clock
// passes until (exclusive). Pass math.Inf(1) for no time bound. It
// returns the number of events fired during this call.
func (e *Engine) Run(until float64) uint64 {
	var fired uint64
	for len(e.queue) > 0 && !e.stopped {
		next := e.peek()
		if next == nil {
			break
		}
		if next.Time > until {
			// Leave the event queued; advance the clock to the bound so
			// repeated Run calls observe monotonic time.
			e.now = until
			break
		}
		if e.Step() {
			fired++
		}
	}
	return fired
}

// RunAll fires events until the queue drains or Stop is called.
func (e *Engine) RunAll() uint64 {
	return e.Run(math.Inf(1))
}

// peek returns the next non-canceled event without removing it, lazily
// discarding canceled events at the top of the heap.
func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		top := e.queue[0]
		if !top.canceled {
			return top
		}
		heap.Pop(&e.queue)
	}
	return nil
}

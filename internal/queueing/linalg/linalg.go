// Package linalg implements the small dense-matrix operations needed by
// the matrix-analytic (QBD) solver: multiplication, addition, scaling,
// inversion by Gauss–Jordan with partial pivoting, and linear solves.
// Matrices here are tiny (at most ~(MPL+1)² entries), so simplicity and
// numerical robustness are preferred over asymptotic speed.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero matrix with the given shape.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices (all equal length).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows needs non-empty rows")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: Add shape mismatch")
	}
	c := New(m.Rows, m.Cols)
	for i := range m.Data {
		c.Data[i] = m.Data[i] + b.Data[i]
	}
	return c
}

// Sub returns m − b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: Sub shape mismatch")
	}
	c := New(m.Rows, m.Cols)
	for i := range m.Data {
		c.Data[i] = m.Data[i] - b.Data[i]
	}
	return c
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	c := New(m.Rows, m.Cols)
	for i := range m.Data {
		c.Data[i] = s * m.Data[i]
	}
	return c
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	c := New(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				c.Data[i*c.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return c
}

// MulVec returns m·v for a column vector v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("linalg: MulVec shape mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out
}

// VecMul returns vᵀ·m for a row vector v.
func VecMul(v []float64, m *Matrix) []float64 {
	if m.Rows != len(v) {
		panic("linalg: VecMul shape mismatch")
	}
	out := make([]float64, m.Cols)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		for j := 0; j < m.Cols; j++ {
			out[j] += vi * m.At(i, j)
		}
	}
	return out
}

// Inverse returns m⁻¹ via Gauss–Jordan elimination with partial
// pivoting, or an error if m is singular (pivot below tolerance).
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: cannot invert %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-300 {
			return nil, fmt.Errorf("linalg: singular matrix (pivot %g at column %d)", best, col)
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

// SolveLinear solves A·x = b for x by Gaussian elimination with partial
// pivoting. A is not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols || a.Rows != len(b) {
		return nil, fmt.Errorf("linalg: solve shape mismatch %dx%d vs %d", a.Rows, a.Cols, len(b))
	}
	n := a.Rows
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-300 {
			return nil, fmt.Errorf("linalg: singular system (pivot %g at column %d)", best, col)
		}
		if pivot != col {
			swapRows(m, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		p := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / p
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Set(r, j, m.At(r, j)-f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// MaxAbsDiff returns the max absolute elementwise difference.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: MaxAbsDiff shape mismatch")
	}
	max := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

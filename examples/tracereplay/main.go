// Trace replay: take a production-shaped transaction trace (the
// paper's retailer/auction comparison, C² ≈ 2), replay it through the
// external scheduler at several MPLs, and watch how mean and tail
// response times react — the workflow a DBA would use with their own
// transaction log before picking an MPL.
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"

	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/dist"
	"extsched/internal/sim"
	"extsched/internal/trace"
	"extsched/internal/workload"
)

func main() {
	tr := trace.SyntheticRetailer(60000, 42)
	fmt.Printf("replaying %s: %d transactions, mean demand %.1f ms, C² = %.2f\n\n",
		tr.Source, tr.Len(), tr.MeanDemand()*1000, tr.DemandC2())
	fmt.Printf("%6s %12s %12s %12s %12s\n", "MPL", "tput (tx/s)", "meanRT (ms)", "p95 (ms)", "p99 (ms)")

	// The traced site ran on a larger box than one core (its offered
	// load is ~2.5 core-seconds per second); replay onto 4 cores and
	// replay at recorded speed: ~63% mean utilization with bursts
	// that transiently exceed capacity — where the MPL choice matters.
	const speedup = 1.0

	for _, mpl := range []int{2, 4, 8, 16, 0} {
		eng := sim.NewEngine()
		db, err := dbms.New(eng, dbms.Config{
			CPUs: 4, Disks: 1,
			LogService: dist.NewDeterministic(0),
			Seed:       1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fe := dbfe.New(eng, db, mpl, nil)
		fe.EnablePercentiles(20000, 1)
		d, err := workload.NewTraceDriver(eng, fe, tr)
		if err != nil {
			log.Fatal(err)
		}
		d.Speedup = speedup
		d.Start()
		eng.RunAll()
		m := fe.Metrics()
		label := fmt.Sprint(mpl)
		if mpl == 0 {
			label = "none"
		}
		fmt.Printf("%6s %12.1f %12.2f %12.2f %12.2f\n",
			label,
			m.Throughput(),
			m.All.Mean()*1000,
			fe.ResponseTimePercentile(95)*1000,
			fe.ResponseTimePercentile(99)*1000)
	}
	fmt.Println()
	fmt.Println("Reading: at C² ≈ 2 the mean RT flattens at a modest MPL — the")
	fmt.Println("paper's finding that production workloads sit between TPC-C")
	fmt.Println("(insensitive) and TPC-W (needs MPL 8-15). The p99 shows the")
	fmt.Println("residual head-of-line blocking cost of very low MPLs.")
}

// Package core implements the paper's central mechanism: external
// scheduling of database transactions (Fig. 1).
//
// A Frontend admits at most MPL transactions into the DBMS at a time;
// the rest wait in an external queue that a pluggable Policy orders
// (FIFO by default, Priority for the Section 5 experiments, SJF as the
// "custom-tailored policy" extension the paper motivates). Response
// time is measured the paper's way: from arrival at the frontend to
// commit, including external queueing. The MPL can be changed at any
// time (SetMPL), which is how the feedback controller drives the
// system.
package core

import (
	"fmt"

	"extsched/internal/dbms"
	"extsched/internal/lockmgr"
	"extsched/internal/sim"
	"extsched/internal/stats"
)

// Txn is one transaction flowing through the frontend.
type Txn struct {
	Profile  dbms.TxnProfile
	Arrival  float64 // time of Submit
	Dispatch float64 // time admitted into the DBMS
	Complete float64 // commit time
	Result   dbms.Result
	seq      uint64
	done     func(*Txn)
}

// Class returns the transaction's priority class.
func (t *Txn) Class() lockmgr.Class { return t.Profile.Class }

// ResponseTime is Complete − Arrival (external wait + inside time).
func (t *Txn) ResponseTime() float64 { return t.Complete - t.Arrival }

// ExternalWait is Dispatch − Arrival.
func (t *Txn) ExternalWait() float64 { return t.Dispatch - t.Arrival }

// Policy orders the external queue.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Push enqueues a transaction.
	Push(*Txn)
	// Pop removes and returns the next transaction to dispatch, or nil
	// if empty.
	Pop() *Txn
	// Len returns the queue length.
	Len() int
}

// ring is a growable circular FIFO of transactions. Unlike the
// reslicing `q = q[1:]` idiom, dequeues reuse the backing array
// instead of abandoning its head, so a long run's queue churn stays
// within one allocation instead of leaking backing arrays behind the
// advancing slice window.
type ring struct {
	buf        []*Txn
	head, size int
}

func (r *ring) len() int { return r.size }

func (r *ring) push(t *Txn) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)%len(r.buf)] = t
	r.size++
}

func (r *ring) pop() *Txn {
	if r.size == 0 {
		return nil
	}
	t := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return t
}

// grow doubles the capacity, unwrapping the live window to the front.
func (r *ring) grow() {
	capacity := len(r.buf) * 2
	if capacity == 0 {
		capacity = 16
	}
	buf := make([]*Txn, capacity)
	for i := 0; i < r.size; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = buf, 0
}

// FIFOPolicy dispatches in arrival order.
type FIFOPolicy struct {
	q ring
}

// NewFIFO returns a FIFO policy.
func NewFIFO() *FIFOPolicy { return &FIFOPolicy{} }

func (p *FIFOPolicy) Name() string { return "fifo" }
func (p *FIFOPolicy) Push(t *Txn)  { p.q.push(t) }
func (p *FIFOPolicy) Pop() *Txn    { return p.q.pop() }
func (p *FIFOPolicy) Len() int     { return p.q.len() }

// PriorityPolicy dispatches High-class transactions first, FIFO within
// a class — the paper's Section 5 prioritization algorithm.
type PriorityPolicy struct {
	high, low ring
}

// NewPriority returns a priority policy.
func NewPriority() *PriorityPolicy { return &PriorityPolicy{} }

func (p *PriorityPolicy) Name() string { return "priority" }
func (p *PriorityPolicy) Push(t *Txn) {
	if t.Class() == lockmgr.High {
		p.high.push(t)
	} else {
		p.low.push(t)
	}
}
func (p *PriorityPolicy) Pop() *Txn {
	if t := p.high.pop(); t != nil {
		return t
	}
	return p.low.pop()
}
func (p *PriorityPolicy) Len() int { return p.high.len() + p.low.len() }

// SJFPolicy dispatches the transaction with the smallest
// EstimatedDemand first (ties by arrival). It demonstrates the paper's
// point that the external queue admits arbitrary custom policies.
type SJFPolicy struct {
	q []*Txn
}

// NewSJF returns a shortest-job-first policy.
func NewSJF() *SJFPolicy { return &SJFPolicy{} }

func (p *SJFPolicy) Name() string { return "sjf" }
func (p *SJFPolicy) Push(t *Txn) {
	p.q = append(p.q, t)
	// Sift up in a slice-backed min-heap keyed by (demand, seq).
	i := len(p.q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !sjfLess(p.q[i], p.q[parent]) {
			break
		}
		p.q[i], p.q[parent] = p.q[parent], p.q[i]
		i = parent
	}
}
func (p *SJFPolicy) Pop() *Txn {
	n := len(p.q)
	if n == 0 {
		return nil
	}
	t := p.q[0]
	p.q[0] = p.q[n-1]
	p.q[n-1] = nil
	p.q = p.q[:n-1]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(p.q) && sjfLess(p.q[l], p.q[smallest]) {
			smallest = l
		}
		if r < len(p.q) && sjfLess(p.q[r], p.q[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		p.q[i], p.q[smallest] = p.q[smallest], p.q[i]
		i = smallest
	}
	return t
}
func (p *SJFPolicy) Len() int { return len(p.q) }

func sjfLess(a, b *Txn) bool {
	if a.Profile.EstimatedDemand != b.Profile.EstimatedDemand {
		return a.Profile.EstimatedDemand < b.Profile.EstimatedDemand
	}
	return a.seq < b.seq
}

// Metrics aggregates frontend measurements. Response times include
// external queueing (the paper's definition).
type Metrics struct {
	Completed  uint64
	All        stats.Accumulator // response time, all classes
	High       stats.Accumulator // response time, high class
	Low        stats.Accumulator // response time, low class
	Inside     stats.Accumulator // time inside the DBMS
	ExtWait    stats.Accumulator // external queue wait
	Restarts   uint64
	resetTime  float64
	windowTime float64
}

// WithWindow returns a copy of m whose Throughput is computed over the
// given window length in seconds — for synthesizing metric snapshots
// (e.g. in controller tests) without a live frontend.
func (m Metrics) WithWindow(seconds float64) Metrics {
	m.windowTime = seconds
	return m
}

// Throughput returns completions per second since the last reset.
func (m Metrics) Throughput() float64 {
	if m.windowTime <= 0 {
		return 0
	}
	return float64(m.Completed) / m.windowTime
}

// Frontend is the external scheduler.
type Frontend struct {
	eng    *sim.Engine
	db     *dbms.DB
	mpl    int // 0 means unlimited
	policy Policy
	seq    uint64
	// inside counts transactions dispatched and not yet completed, as
	// seen by the frontend (matches db.Inside()).
	inside  int
	metrics Metrics
	// queueLimit, when > 0, turns the frontend into the admission
	// controller the paper contrasts itself with (Section 1): arrivals
	// beyond the limit are DROPPED instead of queued. External
	// scheduling proper never drops (queueLimit 0).
	queueLimit int
	dropped    uint64
	// OnComplete, if set, observes every completion (used by drivers
	// for closed-loop clients and by the controller).
	OnComplete func(*Txn)
	// OnDrop, if set, observes admission-control rejections.
	OnDrop func(*Txn)
	// rtSample, when enabled, reservoir-samples response times for
	// percentile reporting.
	rtSample *stats.Reservoir
}

// New builds a frontend over db with the given MPL (0 = unlimited) and
// policy (nil = FIFO).
func New(eng *sim.Engine, db *dbms.DB, mpl int, policy Policy) *Frontend {
	if mpl < 0 {
		panic(fmt.Sprintf("core: MPL %d must be >= 0", mpl))
	}
	if policy == nil {
		policy = NewFIFO()
	}
	return &Frontend{eng: eng, db: db, mpl: mpl, policy: policy}
}

// MPL returns the current limit (0 = unlimited).
func (f *Frontend) MPL() int { return f.mpl }

// SetMPL changes the limit. Raising it dispatches queued transactions
// immediately; lowering it takes effect as running transactions drain
// (the paper's controller operates the same way — no preemption of
// dispatched work).
func (f *Frontend) SetMPL(mpl int) {
	if mpl < 0 {
		panic(fmt.Sprintf("core: MPL %d must be >= 0", mpl))
	}
	f.mpl = mpl
	f.dispatch()
}

// QueueLen returns the external queue length.
func (f *Frontend) QueueLen() int { return f.policy.Len() }

// Inside returns the number of dispatched, uncommitted transactions.
func (f *Frontend) Inside() int { return f.inside }

// Policy returns the queue policy.
func (f *Frontend) Policy() Policy { return f.policy }

// EnablePercentiles turns on reservoir sampling of response times
// (capacity samples, deterministic given seed). Call before running.
func (f *Frontend) EnablePercentiles(capacity int, seed uint64) {
	f.rtSample = stats.NewReservoir(capacity, sim.NewRNG(seed, 31))
}

// ResponseTimePercentile estimates the p-th percentile of response
// times in the current window (0 when sampling is disabled or empty).
func (f *Frontend) ResponseTimePercentile(p float64) float64 {
	if f.rtSample == nil {
		return 0
	}
	return f.rtSample.Percentile(p)
}

// Metrics returns a snapshot of the metrics window.
func (f *Frontend) Metrics() Metrics {
	m := f.metrics
	m.windowTime = f.eng.Now() - f.metrics.resetTime
	return m
}

// ResetMetrics starts a fresh measurement window (e.g. after warmup,
// or per controller observation period).
func (f *Frontend) ResetMetrics() {
	f.metrics = Metrics{resetTime: f.eng.Now()}
	if f.rtSample != nil {
		f.rtSample.Reset()
	}
}

// Submit delivers a new transaction to the external scheduler.
func (f *Frontend) Submit(profile dbms.TxnProfile) *Txn {
	return f.SubmitCB(profile, nil)
}

// SubmitCB is Submit with a per-transaction completion callback (used
// by closed-loop drivers to cycle their client). cb runs before the
// frontend-wide OnComplete hook. Under a queue limit (admission-
// control mode) the transaction may be rejected: it is returned with
// no callbacks scheduled and counted in Dropped.
func (f *Frontend) SubmitCB(profile dbms.TxnProfile, cb func(*Txn)) *Txn {
	t := &Txn{Profile: profile, Arrival: f.eng.Now(), seq: f.seq, done: cb}
	f.seq++
	if f.queueLimit > 0 && f.policy.Len() >= f.queueLimit {
		f.dropped++
		if f.OnDrop != nil {
			f.OnDrop(t)
		}
		return t
	}
	f.policy.Push(t)
	f.dispatch()
	return t
}

// SetQueueLimit enables admission-control mode: arrivals that find
// limit transactions already queued are dropped. 0 disables dropping
// (pure external scheduling).
func (f *Frontend) SetQueueLimit(limit int) {
	if limit < 0 {
		panic(fmt.Sprintf("core: queue limit %d must be >= 0", limit))
	}
	f.queueLimit = limit
}

// Dropped returns the number of admission-control rejections.
func (f *Frontend) Dropped() uint64 { return f.dropped }

// dispatch admits queued transactions while the MPL allows.
func (f *Frontend) dispatch() {
	for (f.mpl == 0 || f.inside < f.mpl) && f.policy.Len() > 0 {
		t := f.policy.Pop()
		if t == nil {
			return
		}
		t.Dispatch = f.eng.Now()
		f.inside++
		f.db.Exec(t.Profile, func(r dbms.Result) {
			f.complete(t, r)
		})
	}
}

// complete records a commit and refills the DBMS from the queue.
func (f *Frontend) complete(t *Txn, r dbms.Result) {
	t.Complete = f.eng.Now()
	t.Result = r
	f.inside--
	m := &f.metrics
	m.Completed++
	rt := t.ResponseTime()
	m.All.Add(rt)
	if t.Class() == lockmgr.High {
		m.High.Add(rt)
	} else {
		m.Low.Add(rt)
	}
	m.Inside.Add(r.InsideTime)
	m.ExtWait.Add(t.ExternalWait())
	m.Restarts += uint64(r.Restarts)
	if f.rtSample != nil {
		f.rtSample.Add(rt)
	}
	if t.done != nil {
		t.done(t)
	}
	if f.OnComplete != nil {
		f.OnComplete(t)
	}
	f.dispatch()
}

// Command dbsim runs a simulated-DBMS experiment and prints its
// metrics — the quickest way to poke at one configuration, or to run a
// scripted multi-phase scenario from a JSON file.
//
// Examples:
//
//	dbsim -setup 1 -mpl 5
//	dbsim -workload W_CPU-browsing -cpus 2 -mpl 8 -policy priority
//	dbsim -setup 8 -mpl 0 -measure 600          # no limit, long run
//	dbsim -setup 1 -mpl 5 -scenario surge.json  # scripted traffic
//	dbsim -setup 1 -scenario-example            # print a template file
//	dbsim -setup 1 -mpl 40 -shards 4 -shard-speeds 1,1,1,0.25 \
//	      -dispatch jsq -lambda 250             # sharded dispatch
//	dbsim -setup 1 -mpl 16 -lambda 100 \
//	      -slo 0.5 -deadline-low 2              # SLO partition + shedding
//	dbsim -setup 1 -mpl 40 -shards 4 -dispatch jsq -lambda 250 \
//	      -recovery resubmit -retry-budget 3 \
//	      -fail-shard 100:3 -recover-shard 200:3  # crash + recover
//	dbsim -setup 1 -mpl 24 -shards 8 -dispatch jsq-d:3 -lambda 200 \
//	      -autoscale 2:8                          # autoscaled fleet
//
// A scenario file is the JSON encoding of extsched.Scenario: a warmup,
// a sample interval, and an ordered list of phases (closed, open,
// ramp, burst, trace) with optional mid-phase events (set_mpl,
// set_wfq_high_weight, set_shard_speed, set_dispatch,
// enable_controller, disable_controller, set_slo, disable_slo,
// set_class_limits, set_admit_deadline, shard_fail, shard_recover,
// shard_add, shard_remove) and an optional per-phase churn generator
// (mtbf/mttr). With -scenario, dbsim prints a per-phase report table
// and, when the scenario sets sample_interval, the interval time
// series; sharded systems (-shards) append a per-shard table with
// lifecycle state and availability.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"extsched"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dbsim:", err)
		os.Exit(1)
	}
}

// run parses args, executes one simulation, and writes the report to
// out; split from main so tests can drive the tool in-process.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dbsim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		setupID  = fs.Int("setup", 0, "Table 2 setup id (1-17)")
		wl       = fs.String("workload", "", "Table 1 workload name (with -cpus/-disks/-iso)")
		cpus     = fs.Int("cpus", 1, "CPUs (with -workload)")
		disks    = fs.Int("disks", 1, "data disks (with -workload)")
		iso      = fs.String("iso", "RR", "isolation level: RR, UR or SI")
		mpl      = fs.Int("mpl", 0, "multiprogramming limit (0 = unlimited)")
		policy   = fs.String("policy", "fifo", "external queue policy: fifo, priority, sjf, wfq")
		clients  = fs.Int("clients", 100, "closed-system client population")
		lambda   = fs.Float64("lambda", 0, "open-system arrival rate (0 = closed system)")
		warmup   = fs.Float64("warmup", 50, "warmup simulated seconds")
		measure  = fs.Float64("measure", 300, "measured simulated seconds")
		seed     = fs.Uint64("seed", 1, "random seed")
		lockPrio = fs.Bool("internal-lock-prio", false, "internal lock prioritization (POW)")
		cpuPrio  = fs.Bool("internal-cpu-prio", false, "internal CPU prioritization (renice)")
		scenario = fs.String("scenario", "", "run the JSON scenario in this file instead of a single closed/open run")
		example  = fs.Bool("scenario-example", false, "print an example scenario JSON and exit")
		shards   = fs.Int("shards", 0, "shard the system across this many backends (0 = unsharded)")
		speeds   = fs.String("shard-speeds", "", "comma-separated per-shard speed multipliers (with -shards)")
		dispatch = fs.String("dispatch", "", "dispatch policy with -shards: rr, jsq, lwl, affinity, or sampled jsq-d / lwl-d (optionally with a width, e.g. jsq-d:3)")
		ascale   = fs.String("autoscale", "", "autoscale the fleet between min:max Up shards with -shards (e.g. -autoscale 2:8)")
		recovery = fs.String("recovery", "", "shard-failure recovery with -shards: resubmit or shed")
		budget   = fs.Int("retry-budget", 0, "resubmission attempts per txn with -recovery=resubmit (0 = default 3)")
		sloT     = fs.Float64("slo", 0, "run under the latency-SLO controller: hold this p95 target in seconds for -slo-class (needs -mpl >= 2)")
		sloClass = fs.String("slo-class", "high", "protected class for -slo: high or low")
		sloPct   = fs.Float64("slo-percentile", 0, "controlled percentile for -slo (0 = 95)")
		deadH    = fs.Float64("deadline-high", 0, "high-class admission deadline in seconds (0 = none)")
		deadL    = fs.Float64("deadline-low", 0, "low-class admission deadline in seconds (0 = none)")
		limits   = fs.String("class-limits", "", "static MPL partition as high,low (e.g. 4,12)")
	)
	var fails, recovers shardTimes
	fs.Var(&fails, "fail-shard", "crash a shard at t:idx sim-seconds into the run (repeatable, e.g. -fail-shard 100:3)")
	fs.Var(&recovers, "recover-shard", "recover a shard at t:idx (repeatable, pairs with -fail-shard)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil // usage already printed; -h is not a failure
		}
		return err
	}

	if *example {
		fmt.Fprint(out, extsched.ExampleScenarioJSON)
		return nil
	}

	speedList, err := parseSpeeds(*speeds)
	if err != nil {
		return err
	}
	autoscale, err := parseAutoscale(*ascale)
	if err != nil {
		return err
	}
	var slo *extsched.SLOSpec
	if *sloT > 0 {
		slo = &extsched.SLOSpec{Class: *sloClass, Percentile: *sloPct, Target: *sloT}
	}
	var admit *extsched.AdmitDeadline
	if *deadH > 0 || *deadL > 0 {
		admit = &extsched.AdmitDeadline{High: *deadH, Low: *deadL}
	}
	classLimits, err := parseClassLimits(*limits)
	if err != nil {
		return err
	}
	var rec *extsched.RecoverySpec
	if *recovery != "" {
		rec = &extsched.RecoverySpec{Mode: *recovery, RetryBudget: *budget}
		if rec.Mode == extsched.RecoveryResubmit && rec.RetryBudget == 0 {
			rec.RetryBudget = 3
		}
	} else if *budget != 0 {
		return fmt.Errorf("-retry-budget needs -recovery=resubmit")
	}
	sys, err := extsched.NewSystem(extsched.Config{
		SetupID:              *setupID,
		Workload:             *wl,
		CPUs:                 *cpus,
		Disks:                *disks,
		Isolation:            *iso,
		MPL:                  *mpl,
		Policy:               *policy,
		InternalLockPriority: *lockPrio,
		InternalCPUPriority:  *cpuPrio,
		SLO:                  slo,
		ClassLimits:          classLimits,
		AdmitDeadline:        admit,
		Shards: extsched.ShardSpec{
			Count:    *shards,
			Speeds:   speedList,
			Dispatch: *dispatch,
		},
		Recovery: rec,
		Seed:     *seed,
		// Sharded reports carry a per-shard p95 column (a constant-
		// memory P² estimator per shard), which needs percentile mode.
		PercentileSamples: percentileSamples(*shards),
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, sys.Setup())
	if *shards > 0 {
		fmt.Fprintf(out, "shards:           %d (dispatch %s)\n", *shards, dispatchName(*dispatch))
	}
	if *scenario != "" {
		if len(fails) > 0 || len(recovers) > 0 {
			return fmt.Errorf("-fail-shard/-recover-shard apply to single runs; put shard_fail/shard_recover events in the scenario file instead")
		}
		return runScenarioFile(sys, *scenario, autoscale, out)
	}
	// A single closed/open run is a one-phase scenario; running it
	// through Run keeps the per-shard slices for the report below.
	sc := extsched.Scenario{Warmup: *warmup, Autoscale: autoscale}
	ph := extsched.Phase{Kind: extsched.PhaseClosed, Clients: *clients, Duration: *measure}
	if *lambda > 0 {
		ph = extsched.Phase{Kind: extsched.PhaseOpen, Lambda: *lambda, Duration: *measure}
	}
	for _, st := range fails {
		idx := st.shard
		ph.Events = append(ph.Events, extsched.Event{At: st.at, ShardFail: &idx})
	}
	for _, st := range recovers {
		idx := st.shard
		ph.Events = append(ph.Events, extsched.Event{At: st.at, ShardRecover: &idx})
	}
	sc.Phases = []extsched.Phase{ph}
	res, err := sys.Run(context.Background(), sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "mpl:              %d\n", sys.MPL())
	printReport(out, res.Total)
	printSLO(out, res.SLO)
	printTenants(out, res)
	printAutoscale(out, res.Autoscale)
	printShards(out, res.Shards, fleetUp(res))
	return nil
}

// fleetUp is the serving shard count when the run ended: the
// autoscaler's final fleet when one ran, otherwise the shards that
// finished in the up state.
func fleetUp(res extsched.Result) int {
	if res.Autoscale != nil {
		return res.Autoscale.FinalFleet
	}
	n := 0
	for _, sr := range res.Shards {
		if sr.State == "" || sr.State == "up" {
			n++
		}
	}
	return n
}

// printSLO renders the SLO controller's outcome (no-op without one).
func printSLO(out io.Writer, slo *extsched.SLOResult) {
	if slo == nil {
		return
	}
	fmt.Fprintf(out, "slo:              %s class holds %d of the MPL (other %d), %d reactions, last window p95 %.4f s\n",
		slo.Class, slo.SLOLimit, slo.OtherLimit, slo.Iterations, slo.LastMeasured)
}

// dispatchName renders the dispatch policy flag ("" = default rr).
func dispatchName(d string) string {
	if d == "" {
		return "rr"
	}
	return d
}

// parseClassLimits decodes the -class-limits "high,low" pair.
func parseClassLimits(s string) (*extsched.ClassLimits, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad -class-limits %q: want high,low", s)
	}
	h, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return nil, fmt.Errorf("bad -class-limits %q: %w", s, err)
	}
	l, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return nil, fmt.Errorf("bad -class-limits %q: %w", s, err)
	}
	return &extsched.ClassLimits{High: h, Low: l}, nil
}

// shardTime is one -fail-shard/-recover-shard occurrence: a sim-time
// offset into the measured run and a shard index.
type shardTime struct {
	at    float64
	shard int
}

// shardTimes collects repeated t:idx flag values.
type shardTimes []shardTime

func (s *shardTimes) String() string {
	var parts []string
	for _, st := range *s {
		parts = append(parts, fmt.Sprintf("%g:%d", st.at, st.shard))
	}
	return strings.Join(parts, ",")
}

func (s *shardTimes) Set(v string) error {
	at, idxStr, ok := strings.Cut(v, ":")
	if !ok {
		return fmt.Errorf("bad value %q: want t:idx (e.g. 100:3)", v)
	}
	t, err := strconv.ParseFloat(strings.TrimSpace(at), 64)
	if err != nil || t < 0 {
		return fmt.Errorf("bad time in %q: want seconds >= 0", v)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(idxStr))
	if err != nil || idx < 0 {
		return fmt.Errorf("bad shard index in %q", v)
	}
	*s = append(*s, shardTime{at: t, shard: idx})
	return nil
}

// percentileSamples enables percentile tracking for sharded runs (the
// per-shard table's p95RT column reads 0 without it); unsharded runs
// keep the config's own default (on when -slo or a deadline arms it).
func percentileSamples(shards int) int {
	if shards > 0 {
		return 2048
	}
	return 0
}

// parseAutoscale decodes the -autoscale "min:max" fleet bounds; the
// rest of the spec (watermarks, windows, cooldown) keeps the package
// defaults. Bound sanity (min >= 1, min <= max) is checked by scenario
// validation so the error message is shared with JSON scenarios.
func parseAutoscale(s string) (*extsched.AutoscaleSpec, error) {
	if s == "" {
		return nil, nil
	}
	minStr, maxStr, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("bad -autoscale %q: want min:max (e.g. 2:8)", s)
	}
	lo, err := strconv.Atoi(strings.TrimSpace(minStr))
	if err != nil {
		return nil, fmt.Errorf("bad -autoscale min in %q: %w", s, err)
	}
	hi, err := strconv.Atoi(strings.TrimSpace(maxStr))
	if err != nil {
		return nil, fmt.Errorf("bad -autoscale max in %q: %w", s, err)
	}
	return &extsched.AutoscaleSpec{Min: lo, Max: hi}, nil
}

// parseSpeeds decodes the -shard-speeds CSV.
func parseSpeeds(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -shard-speeds entry %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// printTenants renders the per-tenant breakdown and the fairness
// loop's outcome (nothing for runs without registered tenants).
func printTenants(out io.Writer, res extsched.Result) {
	if len(res.Total.Classes) > 0 {
		fmt.Fprintf(out, "\n%-12s %6s %10s %8s %12s %12s\n",
			"tenant", "class", "txns", "shed", "meanRT (s)", "p95 (s)")
		for _, c := range res.Total.Classes {
			name := c.Name
			if name == "" {
				name = "-"
			}
			fmt.Fprintf(out, "%-12s %6d %10d %8d %12.4f %12.4f\n",
				name, c.Class, c.Completed, c.Shed, c.MeanRT, c.P95)
		}
	}
	if fr := res.Fairness; fr != nil {
		fmt.Fprintf(out, "fairness:         final limits %v, %d iterations, %d slot moves\n",
			fr.Limits, fr.Iterations, fr.Moves)
	}
}

// printAutoscale renders the fleet controller's outcome (no-op when
// the run had no autoscaler).
func printAutoscale(out io.Writer, a *extsched.AutoscaleResult) {
	if a == nil {
		return
	}
	fmt.Fprintf(out, "autoscale:        fleet ended at %d (peak %d, min %d), %d scale-ups, %d scale-downs, %.0f shard-seconds billed\n",
		a.FinalFleet, a.PeakFleet, a.MinFleet, a.ScaleUps, a.ScaleDowns, a.ShardSeconds)
}

// printShards renders the per-shard slice table (no-op unsharded). The
// fleet column shows how many shards were serving alongside this one
// at the end of the run — under an autoscaler, parked shards show the
// state that explains their zero-routed rows.
func printShards(out io.Writer, shards []extsched.ShardResult, fleetUp int) {
	if len(shards) == 0 {
		return
	}
	fmt.Fprintf(out, "\n%6s %6s %8s %6s %6s %10s %10s %12s %12s %10s %8s\n",
		"shard", "speed", "state", "avail", "fleet", "routed", "txns", "tput (tx/s)", "meanRT (s)", "p95RT (s)", "cpu")
	for _, sr := range shards {
		state := sr.State
		if state == "" {
			state = "up"
		}
		fmt.Fprintf(out, "%6d %6.2f %8s %6.3f %6d %10d %10d %12.2f %12.4f %10.4f %8.3f\n",
			sr.Shard, sr.Speed, state, sr.Availability, fleetUp, sr.Dispatched, sr.Completed,
			sr.Throughput, sr.MeanRT, sr.P95, sr.CPUUtil)
	}
}

func printReport(out io.Writer, rep extsched.Report) {
	fmt.Fprintf(out, "completed:        %d txns in %.0f sim-seconds\n", rep.Completed, rep.SimSeconds)
	fmt.Fprintf(out, "throughput:       %.2f txn/s\n", rep.Throughput)
	fmt.Fprintf(out, "mean RT:          %.4f s (inside %.4f s, external wait %.4f s)\n",
		rep.MeanRT, rep.MeanInside, rep.ExternalW)
	fmt.Fprintf(out, "high-prio RT:     %.4f s\n", rep.HighRT)
	fmt.Fprintf(out, "low-prio RT:      %.4f s\n", rep.LowRT)
	fmt.Fprintf(out, "cpu util:         %.3f\n", rep.CPUUtil)
	fmt.Fprintf(out, "disk util:        %.3f\n", rep.DiskUtil)
	fmt.Fprintf(out, "lock waits:       %d (deadlocks %d, preemptions %d, restarts %d)\n",
		rep.LockWaits, rep.Deadlocks, rep.Preemptions, rep.Restarts)
	if rep.Shed > 0 || rep.Dropped > 0 {
		fmt.Fprintf(out, "rejected:         %d shed past deadline (high %d, low %d), %d dropped\n",
			rep.Shed, rep.ShedHigh, rep.ShedLow, rep.Dropped)
	}
	if rep.HighP95 > 0 || rep.LowP95 > 0 {
		fmt.Fprintf(out, "p95 by class:     high %.4f s, low %.4f s\n", rep.HighP95, rep.LowP95)
	}
	if rep.Failed > 0 || rep.Resubmitted > 0 || rep.Retries > 0 {
		fmt.Fprintf(out, "shard faults:     %d txns lost, %d resubmitted (%d retries)\n",
			rep.Failed, rep.Resubmitted, rep.Retries)
	}
}

// runScenarioFile loads, runs and reports a JSON scenario; a non-nil
// autoscale (the -autoscale flag) overrides the file's spec.
func runScenarioFile(sys *extsched.System, path string, autoscale *extsched.AutoscaleSpec, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sc, err := extsched.ParseScenario(data)
	if err != nil {
		return err
	}
	for _, d := range sc.Deprecations() {
		fmt.Fprintf(os.Stderr, "dbsim: deprecated: %s\n", d)
	}
	if autoscale != nil {
		sc.Autoscale = autoscale
	}
	res, err := sys.Run(context.Background(), sc)
	if err != nil {
		return err
	}
	if sc.Name != "" {
		fmt.Fprintf(out, "scenario: %s\n", sc.Name)
	}
	fmt.Fprintf(out, "%-12s %-8s %10s %10s %12s %12s %10s\n",
		"phase", "kind", "sim-secs", "txns", "tput (tx/s)", "meanRT (s)", "queuedRT")
	for _, ph := range res.Phases {
		fmt.Fprintf(out, "%-12s %-8s %10.1f %10d %12.2f %12.4f %10.4f\n",
			ph.Name, ph.Kind, ph.SimSeconds, ph.Completed, ph.Throughput, ph.MeanRT, ph.ExternalW)
	}
	fmt.Fprintf(out, "%-12s %-8s %10.1f %10d %12.2f %12.4f %10.4f\n",
		"TOTAL", "", res.Total.SimSeconds, res.Total.Completed,
		res.Total.Throughput, res.Total.MeanRT, res.Total.ExternalW)
	if res.Tune != nil {
		fmt.Fprintf(out, "controller:       start MPL %d -> final MPL %d, %d iterations, converged %v\n",
			res.Tune.StartMPL, res.Tune.FinalMPL, res.Tune.Iterations, res.Tune.Converged)
	}
	printSLO(out, res.SLO)
	printTenants(out, res)
	printAutoscale(out, res.Autoscale)
	if res.Total.Shed > 0 {
		fmt.Fprintf(out, "shed:             %d txns past their admission deadline (high %d, low %d)\n",
			res.Total.Shed, res.Total.ShedHigh, res.Total.ShedLow)
	}
	printShards(out, res.Shards, fleetUp(res))
	fmt.Fprintf(out, "final mpl:        %d\n", res.FinalMPL)
	if len(res.Snapshots) > 0 {
		// Sharded runs carry fleet gauges in every snapshot; the fleet
		// column makes an autoscaled run's shape readable at a glance.
		withFleet := res.Snapshots[0].FleetSize > 0
		if withFleet {
			fmt.Fprintf(out, "\n%10s %-12s %6s %6s %8s %8s %12s %12s\n",
				"time", "phase", "MPL", "fleet", "queued", "txns", "tput (tx/s)", "meanRT (s)")
		} else {
			fmt.Fprintf(out, "\n%10s %-12s %6s %8s %8s %12s %12s\n",
				"time", "phase", "MPL", "queued", "txns", "tput (tx/s)", "meanRT (s)")
		}
		for _, s := range res.Snapshots {
			if withFleet {
				fmt.Fprintf(out, "%10.1f %-12s %6d %6d %8d %8d %12.2f %12.4f\n",
					s.Time, s.Phase, s.Limit, s.FleetUp, s.Queued, s.Completed, s.Throughput, s.MeanResponse)
			} else {
				fmt.Fprintf(out, "%10.1f %-12s %6d %8d %8d %12.2f %12.4f\n",
					s.Time, s.Phase, s.Limit, s.Queued, s.Completed, s.Throughput, s.MeanResponse)
			}
		}
	}
	return nil
}

// Prioritization: the paper's Section 5 application. Tag 10% of
// transactions "high priority" (the big spenders), schedule the
// external queue high-first, and compare against (a) no prioritization
// and (b) internal prioritization inside the DBMS.
//
//	go run ./examples/prioritization
package main

import (
	"fmt"
	"log"

	"extsched"
)

func run(cfg extsched.Config) extsched.Report {
	sys, err := extsched.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.RunClosed(100, 20, 200)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	const setup = 1 // TPC-C-like, lock-heavy — the paper's Fig. 12 setup

	fmt.Println("Priority differentiation on setup 1 (10% high-priority transactions)")
	fmt.Println()
	fmt.Printf("%-34s %10s %10s %10s\n", "configuration", "high RT", "low RT", "low/high")

	show := func(name string, r extsched.Report) {
		diff := 0.0
		if r.HighRT > 0 {
			diff = r.LowRT / r.HighRT
		}
		fmt.Printf("%-34s %9.3fs %9.3fs %9.1fx\n", name, r.HighRT, r.LowRT, diff)
	}

	// Baseline: no scheduling at all — both classes see the same RT.
	show("no prioritization (MPL none)", run(extsched.Config{SetupID: setup, Seed: 3}))

	// External prioritization at a low MPL: the scheduler holds
	// transactions outside and dispatches high-priority ones first.
	show("external priority, MPL 4", run(extsched.Config{
		SetupID: setup, MPL: 4, Policy: extsched.PolicyPriority, Seed: 3,
	}))

	// Same idea with a tighter MPL: more differentiation, some
	// throughput cost (the paper's 20%-loss configuration).
	show("external priority, MPL 2", run(extsched.Config{
		SetupID: setup, MPL: 2, Policy: extsched.PolicyPriority, Seed: 3,
	}))

	// Internal prioritization: Preempt-on-Wait priority lock queues
	// inside the engine (what the paper implemented in Shore).
	show("internal lock priority (POW)", run(extsched.Config{
		SetupID: setup, InternalLockPriority: true, Seed: 3,
	}))

	fmt.Println()
	fmt.Println("Reading: with the MPL set low (but not so low that throughput")
	fmt.Println("suffers), external prioritization differentiates about as well as")
	fmt.Println("invasive internal scheduling — the paper's headline result.")
}

package extsched

import (
	"context"
	"reflect"
	"testing"

	"extsched/metrics"
)

// TestAutoscaleScenarioRerunBitIdentical is the autoscaler determinism
// gate: a diurnal ramp (morning ramp-up, midday peak, evening ramp-
// down, overnight trough) on a sampled-dispatch fleet bounded [4, 64],
// run twice on ONE System. Everything must match bit for bit — the
// controller's tick schedule, the power-of-d sampling stream, and the
// shard build order all have to be pure functions of the seed — and
// the trajectory must actually exercise both directions: the peak
// forces scale-ups, the trough gives the capacity back.
func TestAutoscaleScenarioRerunBitIdentical(t *testing.T) {
	sys, err := NewSystem(Config{
		SetupID: 1, MPL: 12, Seed: 31,
		Shards: ShardSpec{Count: 4, Dispatch: "jsq-d:3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Name:           "diurnal",
		Warmup:         5,
		SampleInterval: 15,
		Autoscale: &AutoscaleSpec{
			Min: 4, Max: 64,
			Interval:  2,
			HighWater: 6, LowWater: 1.5,
			BreachWindows: 2, CalmWindows: 4,
			Cooldown:    3,
			MPLPerShard: 3,
		},
		Phases: []Phase{
			{Name: "morning", Kind: PhaseRamp, Lambda: 80, Lambda2: 600, Duration: 60},
			{Name: "peak", Kind: PhaseOpen, Lambda: 600, Duration: 40},
			{Name: "evening", Kind: PhaseRamp, Lambda: 600, Lambda2: 50, Duration: 60},
			{Name: "night", Kind: PhaseOpen, Lambda: 50, Duration: 60},
		},
	}
	var obs1, obs2 metrics.Collector
	r1, err := sys.Run(context.Background(), sc, &obs1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Run(context.Background(), sc, &obs2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("autoscale re-run on one System not bit-identical:\n%+v\nvs\n%+v", r1.Total, r2.Total)
	}
	if !reflect.DeepEqual(obs1.Snapshots, obs2.Snapshots) {
		t.Error("autoscale observer streams differ between re-runs")
	}
	as := r1.Autoscale
	if as == nil {
		t.Fatal("Result.Autoscale is nil on an autoscaled run")
	}
	if as.ScaleUps == 0 {
		t.Error("no scale-ups — the peak never breached the high water mark")
	}
	if as.ScaleDowns == 0 {
		t.Error("no scale-downs — the trough never drained capacity")
	}
	if as.PeakFleet <= 4 {
		t.Errorf("peak fleet %d never grew past the starting 4", as.PeakFleet)
	}
	if as.MinFleet < 4 {
		t.Errorf("min fleet %d dipped below Min=4", as.MinFleet)
	}
	if as.FinalFleet < 4 || as.FinalFleet > 64 {
		t.Errorf("final fleet %d outside [4, 64]", as.FinalFleet)
	}
	// The capacity bill must be visibly smaller than running the peak
	// fleet for the whole window.
	window := r1.Total.SimSeconds
	if fixed := float64(as.PeakFleet) * window; as.ShardSeconds >= fixed {
		t.Errorf("shard-seconds %.0f not below the fixed-peak-fleet bill %.0f", as.ShardSeconds, fixed)
	}
	// Snapshots carry the fleet trajectory: some interval saw more than
	// the starting fleet up, and the deltas sum to the report's totals.
	var ups, downs uint64
	peakUp := 0
	for _, s := range obs1.Snapshots {
		ups += s.ScaleUps
		downs += s.ScaleDowns
		if s.FleetUp > peakUp {
			peakUp = s.FleetUp
		}
		if s.FleetSize < s.FleetUp {
			t.Fatalf("snapshot at t=%v: fleet size %d < up %d", s.Time, s.FleetSize, s.FleetUp)
		}
	}
	if ups != as.ScaleUps || downs != as.ScaleDowns {
		t.Errorf("snapshot action deltas sum to %d/%d, report says %d/%d", ups, downs, as.ScaleUps, as.ScaleDowns)
	}
	if peakUp <= 4 {
		t.Errorf("no snapshot caught the grown fleet (peak observed %d)", peakUp)
	}
}

// TestAutoscaleLargeFleetOpenLoop is the N>=1000 scale gate: a
// thousand-shard fleet under sampled dispatch completes an open-loop
// scenario, per-interval snapshots stay bounded (the per-member slice
// is elided above the snapshot threshold while the aggregate fleet
// fields still report), and the whole-run per-shard report is intact.
func TestAutoscaleLargeFleetOpenLoop(t *testing.T) {
	// W_IO-browsing has the smallest buffer pool of the Table 1
	// workloads (100 MB), which is what makes a 1000-backend build
	// affordable inside the default test suite.
	const n = 1000
	sys, err := NewSystem(Config{
		Workload: "W_IO-browsing", MPL: 2 * n, Seed: 7,
		Shards: ShardSpec{Count: n, Dispatch: "jsq-d:3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Name:           "large-fleet",
		SampleInterval: 2,
		Phases: []Phase{
			{Name: "steady", Kind: PhaseOpen, Lambda: 500, Duration: 6},
		},
	}
	var obs metrics.Collector
	res, err := sys.Run(context.Background(), sc, &obs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Completed == 0 {
		t.Fatal("no completions on the large fleet")
	}
	if len(res.Shards) != n {
		t.Fatalf("Shards = %d, want %d", len(res.Shards), n)
	}
	if len(obs.Snapshots) == 0 {
		t.Fatal("no snapshots")
	}
	for _, s := range obs.Snapshots {
		if s.Shards != nil {
			t.Fatalf("snapshot at t=%v carries %d per-shard stats; want them elided above the threshold", s.Time, len(s.Shards))
		}
		if s.FleetSize != n || s.FleetUp != n {
			t.Fatalf("snapshot at t=%v: fleet %d/%d, want %d/%d", s.Time, s.FleetUp, s.FleetSize, n, n)
		}
	}
	// Sampled dispatch spreads the (sparse) load: no shard may hog it.
	var routed uint64
	maxRouted := uint64(0)
	for _, sr := range res.Shards {
		routed += sr.Dispatched
		if sr.Dispatched > maxRouted {
			maxRouted = sr.Dispatched
		}
	}
	if routed == 0 {
		t.Fatal("dispatcher routed nothing")
	}
	if maxRouted > routed/10 {
		t.Errorf("one shard took %d of %d arrivals — sampled dispatch is not spreading", maxRouted, routed)
	}
}

// TestAutoscaleScenarioValidation: malformed autoscale specs and
// misplaced ones fail loudly before any simulation state is built.
func TestAutoscaleScenarioValidation(t *testing.T) {
	phases := []Phase{{Kind: PhaseOpen, Lambda: 10, Duration: 1}}
	bad := []Scenario{
		{Autoscale: &AutoscaleSpec{Min: 0, Max: 4}, Phases: phases},
		{Autoscale: &AutoscaleSpec{Min: 8, Max: 4}, Phases: phases},
		{Autoscale: &AutoscaleSpec{Min: 1, Max: 4, Interval: -1}, Phases: phases},
		{Autoscale: &AutoscaleSpec{Min: 1, Max: 4, HighWater: 2, LowWater: 3}, Phases: phases},
		{Autoscale: &AutoscaleSpec{Min: 1, Max: 4, MPLPerShard: -2}, Phases: phases},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d: bad autoscale spec accepted: %+v", i, sc.Autoscale)
		}
	}
	// Sampled-dispatch event names validate with their width: a
	// malformed d must be refused at Validate, not at dispatch time.
	for i, name := range []string{"jsq-d:0", "jsq-d:-2", "jsq-d:banana", "lwl-d:"} {
		sc := Scenario{Phases: []Phase{{Kind: PhaseOpen, Lambda: 10, Duration: 1,
			Events: []Event{{At: 0.5, SetDispatch: name}}}}}
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d: set_dispatch %q accepted", i, name)
		}
	}
	for i, name := range []string{"jsq-d", "jsq-d:3", "lwl-d:2"} {
		sc := Scenario{Phases: []Phase{{Kind: PhaseOpen, Lambda: 10, Duration: 1,
			Events: []Event{{At: 0.5, SetDispatch: name}}}}}
		if err := sc.Validate(); err != nil {
			t.Errorf("case %d: set_dispatch %q rejected: %v", i, name, err)
		}
	}
	good := Scenario{Autoscale: &AutoscaleSpec{Min: 1, Max: 4}, Phases: phases}
	if err := good.Validate(); err != nil {
		t.Fatalf("minimal autoscale spec rejected: %v", err)
	}
	// Well-formed but pointed at an unsharded system: rejected at Run.
	sys, err := NewSystem(Config{SetupID: 1, MPL: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(context.Background(), good); err == nil {
		t.Error("autoscale on an unsharded system accepted")
	}
}

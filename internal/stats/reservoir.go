package stats

import (
	"extsched/internal/sim"
)

// Reservoir keeps a uniform random sample of a stream (Vitter's
// algorithm R), so response-time percentiles can be reported from
// arbitrarily long runs in bounded memory.
type Reservoir struct {
	capacity int
	seen     int64
	items    []float64
	rng      *sim.RNG
	// scratch is reused by Percentile so repeated percentile queries
	// (e.g. a stats snapshot on every report tick) allocate only once.
	scratch []float64
}

// NewReservoir returns a reservoir holding up to capacity samples,
// using the given deterministic stream.
func NewReservoir(capacity int, rng *sim.RNG) *Reservoir {
	if capacity < 1 {
		panic("stats: reservoir capacity must be >= 1")
	}
	if rng == nil {
		rng = sim.NewRNG(0, 424242)
	}
	return &Reservoir{capacity: capacity, rng: rng}
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.items) < r.capacity {
		r.items = append(r.items, x)
		return
	}
	// Replace a random element with probability capacity/seen.
	j := r.rng.IntN(int(r.seen))
	if j < r.capacity {
		r.items[j] = x
	}
}

// Seen returns the total number of observations offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// Len returns the current sample size.
func (r *Reservoir) Len() int { return len(r.items) }

// Percentile estimates the p-th percentile from the sample. It copies
// the sample into an internal scratch buffer (grown once to capacity),
// so steady-state calls are allocation-free. Not safe for concurrent
// use — callers serialize access to the reservoir anyway.
func (r *Reservoir) Percentile(p float64) float64 {
	if cap(r.scratch) < len(r.items) {
		r.scratch = make([]float64, 0, r.capacity)
	}
	r.scratch = r.scratch[:len(r.items)]
	copy(r.scratch, r.items)
	return PercentileInPlace(r.scratch, p)
}

// Snapshot returns a copy of the sample.
func (r *Reservoir) Snapshot() []float64 {
	out := make([]float64, len(r.items))
	copy(out, r.items)
	return out
}

// Reset clears the reservoir, keeping its capacity and stream.
func (r *Reservoir) Reset() {
	r.items = r.items[:0]
	r.seen = 0
}

package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// CSV persistence: two columns, `arrival_s,demand_s`, one header row.
// This is the interchange format for cmd/tracegen and for replaying
// real traces through the simulator.

// WriteCSV writes the trace to w.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"arrival_s", "demand_s"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i, r := range t.Records {
		rec := []string{
			strconv.FormatFloat(r.Arrival, 'g', -1, 64),
			strconv.FormatFloat(r.Demand, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. The header row is
// required; records must be arrival-ordered (Validate is applied).
func ReadCSV(r io.Reader, source string) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: parse csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty file")
	}
	if rows[0][0] != "arrival_s" || rows[0][1] != "demand_s" {
		return nil, fmt.Errorf("trace: missing header row, got %v", rows[0])
	}
	tr := &Trace{Source: source, Records: make([]Record, 0, len(rows)-1)}
	for i, row := range rows[1:] {
		arrival, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d arrival: %w", i+1, err)
		}
		demand, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d demand: %w", i+1, err)
		}
		tr.Records = append(tr.Records, Record{Arrival: arrival, Demand: demand})
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// SaveFile writes the trace to path.
func (t *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a trace from path; the file name becomes the source.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadCSV(f, path)
}

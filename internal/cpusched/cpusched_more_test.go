package cpusched

import (
	"math"
	"testing"
	"testing/quick"

	"extsched/internal/sim"
)

func TestWeightChurnConservation(t *testing.T) {
	// Random submissions, cancellations and weight changes must still
	// conserve work: completed jobs received exactly their submitted
	// work (validated via completion times under known rates is hard;
	// instead check total busy time == total work of completed +
	// partial work of canceled).
	eng := sim.NewEngine()
	cpu := New(eng, 2)
	g := sim.NewRNG(21, 0)
	type tracked struct {
		job  *Job
		work float64
	}
	var live []tracked
	totalCompleted := 0.0
	canceledWork := 0.0 // remaining at cancel
	submittedWork := 0.0
	for i := 0; i < 400; i++ {
		delay := g.Float64() * 0.1
		eng.After(delay, func() {})
		eng.RunAll()
		switch g.IntN(4) {
		case 0, 1:
			w := 0.01 + g.Float64()*0.2
			submittedWork += w
			var tr tracked
			tr.work = w
			tr.job = cpu.Submit(w, 0.5+g.Float64()*4, func() { totalCompleted += w })
			live = append(live, tr)
		case 2:
			if len(live) > 0 {
				i := g.IntN(len(live))
				canceledWork += live[i].job.Remaining()
				cpu.Cancel(live[i].job)
				live = append(live[:i], live[i+1:]...)
			}
		case 3:
			if len(live) > 0 {
				i := g.IntN(len(live))
				if live[i].job.Remaining() > 0 {
					cpu.SetWeight(live[i].job, 0.5+g.Float64()*4)
				}
			}
		}
		// Drop finished jobs from the tracking list.
		kept := live[:0]
		for _, tr := range live {
			if tr.job.Remaining() > 0 {
				kept = append(kept, tr)
			}
		}
		live = kept
	}
	eng.RunAll()
	busy := cpu.BusyCoreSeconds()
	want := submittedWork - canceledWork
	if math.Abs(busy-want) > 1e-6*(1+want) {
		t.Errorf("busy core-seconds = %v, want %v (submitted %v − canceled-remaining %v)",
			busy, want, submittedWork, canceledWork)
	}
}

func TestRatesRespectCapacityProperty(t *testing.T) {
	// At any instant, the sum of job rates never exceeds min(cores, n)
	// and no job exceeds rate 1.
	f := func(coreRaw, nRaw uint8, weightsRaw []uint8) bool {
		cores := 1 + int(coreRaw%8)
		n := 1 + int(nRaw%20)
		eng := sim.NewEngine()
		cpu := New(eng, cores)
		jobs := make([]*Job, n)
		for i := range jobs {
			w := 1.0
			if len(weightsRaw) > 0 {
				w = 0.25 + float64(weightsRaw[i%len(weightsRaw)]%16)
			}
			jobs[i] = cpu.Submit(100, w, func() {})
		}
		total := 0.0
		for _, j := range jobs {
			if j.Rate() < -1e-12 || j.Rate() > 1+1e-12 {
				return false
			}
			total += j.Rate()
		}
		capacity := math.Min(float64(cores), float64(n))
		return math.Abs(total-capacity) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEqualWeightsEqualRates(t *testing.T) {
	eng := sim.NewEngine()
	cpu := New(eng, 3)
	var jobs []*Job
	for i := 0; i < 7; i++ {
		jobs = append(jobs, cpu.Submit(10, 1, func() {}))
	}
	want := 3.0 / 7.0
	for i, j := range jobs {
		if math.Abs(j.Rate()-want) > 1e-12 {
			t.Errorf("job %d rate = %v, want %v", i, j.Rate(), want)
		}
	}
}

func TestStarvationImpossibleWithFiniteWeights(t *testing.T) {
	// Even a tiny-weight job gets a positive rate on a shared core.
	eng := sim.NewEngine()
	cpu := New(eng, 1)
	big := cpu.Submit(10, 1000, func() {})
	small := cpu.Submit(10, 0.001, func() {})
	if small.Rate() <= 0 {
		t.Error("small-weight job starved")
	}
	if big.Rate() <= small.Rate() {
		t.Error("weights not respected")
	}
}

func TestCompletionOrderFollowsRates(t *testing.T) {
	// Same work, different weights on one core: higher weight finishes
	// strictly first.
	eng := sim.NewEngine()
	cpu := New(eng, 1)
	var order []string
	cpu.Submit(1, 5, func() { order = append(order, "heavy") })
	cpu.Submit(1, 1, func() { order = append(order, "light") })
	eng.RunAll()
	if order[0] != "heavy" || order[1] != "light" {
		t.Errorf("order = %v", order)
	}
}

// Package mva implements exact Mean Value Analysis of closed
// product-form queueing networks. It is the paper's Section 4.1 model:
// the DBMS internals are reduced to a set of queueing stations (one per
// CPU and one per disk, Fig. 6), a fixed population equal to the MPL
// circulates among them, and the achieved throughput relative to the
// bottleneck bound tells us the lowest MPL that keeps throughput within
// a DBA-specified fraction of optimal (Fig. 7).
package mva

import (
	"fmt"
	"math"
)

// StationKind distinguishes queueing stations (contended, e.g. CPU or
// disk) from delay stations (no contention, e.g. client think time).
type StationKind int

const (
	// Queueing stations serve one customer at a time; waiting occurs.
	Queueing StationKind = iota
	// Delay stations serve all customers in parallel (infinite server).
	Delay
)

// Station is one service center of the closed network.
type Station struct {
	Name string
	// Demand is the total service demand per transaction at this
	// station in seconds (visit count × service time per visit).
	Demand float64
	Kind   StationKind
	// ServiceCV2 is the squared coefficient of variation of the
	// station's service time. Zero means 1 (exponential, the exact
	// product-form case). Other values apply the approximate-MVA
	// residual-service correction: an arriving customer waits for the
	// full demand of each QUEUED customer but only the residual
	// (1+CV²)/2 · D of the one IN SERVICE, so
	//
	//	R(n) = D·(1 + Q(n−1) − U(n−1)·(1 − (1+CV²)/2)).
	//
	// Low-variance devices (seek-bounded disks) thus queue less at
	// moderate populations — a sharper knee — while the bottleneck
	// bound X ≤ 1/Dmax is preserved (the correction vanishes against
	// the Q term as the station saturates).
	ServiceCV2 float64
}

// residualFactor returns (1+CV²)/2, the mean residual service seen by
// an arrival, in units of D.
func (s Station) residualFactor() float64 {
	if s.ServiceCV2 == 0 {
		return 1
	}
	return (1 + s.ServiceCV2) / 2
}

// Network is a closed product-form queueing network.
type Network struct {
	Stations []Station
}

// NewNetwork validates station demands (must be non-negative, at least
// one positive) and returns the network.
func NewNetwork(stations []Station) (*Network, error) {
	if len(stations) == 0 {
		return nil, fmt.Errorf("mva: network needs at least one station")
	}
	anyPositive := false
	for _, s := range stations {
		if s.Demand < 0 || math.IsNaN(s.Demand) || math.IsInf(s.Demand, 0) {
			return nil, fmt.Errorf("mva: station %q has invalid demand %v", s.Name, s.Demand)
		}
		if s.Demand > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		return nil, fmt.Errorf("mva: all station demands are zero")
	}
	return &Network{Stations: stations}, nil
}

// Balanced returns the paper's worst-case model with exponential
// service everywhere: see BalancedCV.
func Balanced(cpus, disks int, cpuDemand, ioDemand float64) (*Network, error) {
	return BalancedCV(cpus, disks, cpuDemand, ioDemand, 1, 1)
}

// BalancedCV builds the Section 4.1 model of a DBMS with cpus CPUs and
// disks striped data disks.
//
// Disks are modeled as independent stations with demand ioDemand/disks
// each (data striped evenly), with diskCV2 as the per-I/O service
// variability. The CPU pool is different: any runnable process can use
// any core, so it behaves like one multi-server station rather than
// `cpus` independent queues. We apply Seidmann's decomposition: a
// c-server station with total demand D becomes a queueing station with
// demand D/c plus a delay station with demand D·(c−1)/c — exact at the
// light- and heavy-load limits and a good approximation between.
// Either demand may be zero (e.g. a pure-I/O workload), but not both.
func BalancedCV(cpus, disks int, cpuDemand, ioDemand, cpuCV2, diskCV2 float64) (*Network, error) {
	if cpus < 0 || disks < 0 || cpus+disks == 0 {
		return nil, fmt.Errorf("mva: need at least one resource (cpus=%d disks=%d)", cpus, disks)
	}
	var st []Station
	if cpuDemand > 0 {
		if cpus == 0 {
			return nil, fmt.Errorf("mva: cpu demand %v with zero CPUs", cpuDemand)
		}
		c := float64(cpus)
		st = append(st, Station{Name: "cpu", Demand: cpuDemand / c, ServiceCV2: cpuCV2})
		if cpus > 1 {
			st = append(st, Station{Name: "cpu-parallel", Demand: cpuDemand * (c - 1) / c, Kind: Delay})
		}
	}
	if ioDemand > 0 {
		if disks == 0 {
			return nil, fmt.Errorf("mva: io demand %v with zero disks", ioDemand)
		}
		for i := 0; i < disks; i++ {
			st = append(st, Station{Name: fmt.Sprintf("disk%d", i), Demand: ioDemand / float64(disks), ServiceCV2: diskCV2})
		}
	}
	return NewNetwork(st)
}

// Result holds the MVA solution for one population level.
type Result struct {
	Population   int
	Throughput   float64   // transactions per second
	ResponseTime float64   // mean time per transaction cycle (seconds)
	QueueLen     []float64 // mean customers at each station
	Utilization  []float64 // utilization of each station
}

// Solve runs exact MVA for populations 1..n and returns the results for
// each level (index i holds population i+1).
func (nw *Network) Solve(n int) []Result {
	if n < 1 {
		return nil
	}
	k := len(nw.Stations)
	q := make([]float64, k) // Q_i(population-1), starts at 0
	u := make([]float64, k) // U_i(population-1), starts at 0
	results := make([]Result, 0, n)
	for pop := 1; pop <= n; pop++ {
		r := make([]float64, k)
		var total float64
		for i, s := range nw.Stations {
			switch s.Kind {
			case Delay:
				r[i] = s.Demand
			default:
				// Queued customers cost a full demand each; the one in
				// service only its residual. For CV²=1 the correction
				// vanishes and this is exact MVA.
				rr := s.Demand * (1 + q[i] - u[i]*(1-s.residualFactor()))
				if rr < s.Demand {
					rr = s.Demand
				}
				r[i] = rr
			}
			total += r[i]
		}
		x := float64(pop) / total
		util := make([]float64, k)
		for i, s := range nw.Stations {
			q[i] = x * r[i]
			util[i] = x * s.Demand
			u[i] = util[i]
			if u[i] > 1 {
				u[i] = 1
			}
		}
		qCopy := make([]float64, k)
		copy(qCopy, q)
		results = append(results, Result{
			Population:   pop,
			Throughput:   x,
			ResponseTime: total,
			QueueLen:     qCopy,
			Utilization:  util,
		})
	}
	return results
}

// Throughput returns the system throughput at population n.
func (nw *Network) Throughput(n int) float64 {
	if n < 1 {
		return 0
	}
	res := nw.Solve(n)
	return res[len(res)-1].Throughput
}

// MaxThroughput returns the asymptotic throughput bound 1/Dmax over
// queueing stations (the bottleneck law).
func (nw *Network) MaxThroughput() float64 {
	dmax := 0.0
	for _, s := range nw.Stations {
		if s.Kind == Queueing && s.Demand > dmax {
			dmax = s.Demand
		}
	}
	if dmax == 0 {
		return math.Inf(1)
	}
	return 1 / dmax
}

// MinMPLForFraction returns the smallest population n such that
// Throughput(n) >= fraction × MaxThroughput(), searching up to maxN.
// This is the paper's "minimum MPL that limits throughput loss to
// (1−fraction)". Returns maxN+1 if no population up to maxN suffices
// (possible when fraction is very close to 1, since the closed-network
// throughput approaches the bound only asymptotically).
func (nw *Network) MinMPLForFraction(fraction float64, maxN int) int {
	if fraction <= 0 {
		return 1
	}
	target := fraction * nw.MaxThroughput()
	results := nw.Solve(maxN)
	// Throughput is nondecreasing in population for product-form
	// networks, so the first level meeting the target is the answer.
	for _, r := range results {
		if r.Throughput >= target {
			return r.Population
		}
	}
	return maxN + 1
}

// BinarySearchMinMPL is the binary-search variant the paper mentions for
// efficiency. It assumes monotone throughput and returns the same value
// as MinMPLForFraction.
func (nw *Network) BinarySearchMinMPL(fraction float64, maxN int) int {
	if fraction <= 0 {
		return 1
	}
	target := fraction * nw.MaxThroughput()
	lo, hi := 1, maxN
	if nw.Throughput(maxN) < target {
		return maxN + 1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if nw.Throughput(mid) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

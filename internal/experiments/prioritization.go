package experiments

import (
	"fmt"

	"extsched/internal/core"
	"extsched/internal/lockmgr"
	"extsched/internal/queueing/mva"
	"extsched/internal/workload"
)

// FindMPLForLoss returns the lowest MPL whose measured throughput under
// the closed system stays within lossFrac of baselineTput. The search
// is jump-started from the MVA model (Section 4.1) and refined with
// short measured runs, mirroring how the paper's tool would be used
// offline. maxMPL bounds the search.
func FindMPLForLoss(setup workload.Setup, baselineTput, lossFrac float64, maxMPL int, opts RunOpts) (int, error) {
	if baselineTput <= 0 {
		return 0, fmt.Errorf("experiments: baseline throughput must be positive")
	}
	target := (1 - lossFrac) * baselineTput
	cpuD, ioD := setup.Demands()
	nw, err := mva.Balanced(setup.CPUs, setup.Disks, cpuD, ioD)
	if err != nil {
		return 0, err
	}
	mpl := nw.MinMPLForFraction(1-lossFrac, maxMPL)
	if mpl > maxMPL {
		mpl = maxMPL
	}
	measure := func(m int) (float64, error) {
		r, err := RunClosed(setup, m, nil, workload.DBOptions{}, opts)
		if err != nil {
			return 0, err
		}
		return r.Throughput(), nil
	}
	tput, err := measure(mpl)
	if err != nil {
		return 0, err
	}
	if tput < target {
		// Model underestimated (lock contention, log device, ...):
		// climb until feasible.
		for mpl < maxMPL {
			mpl++
			if tput, err = measure(mpl); err != nil {
				return 0, err
			}
			if tput >= target {
				return mpl, nil
			}
		}
		return maxMPL, nil
	}
	// Feasible: descend while still feasible.
	for mpl > 1 {
		t2, err := measure(mpl - 1)
		if err != nil {
			return 0, err
		}
		if t2 < target {
			break
		}
		mpl--
		tput = t2
	}
	return mpl, nil
}

// PrioritizationResult is one setup's external-prioritization outcome.
type PrioritizationResult struct {
	SetupID  int
	MPL      int
	HighRT   float64 // mean response time, high-priority class
	LowRT    float64
	NoPrioRT float64 // overall mean RT without any external scheduling
	AllRT    float64 // overall mean RT with priorities at this MPL
	Baseline float64 // no-MPL throughput
	Tput     float64 // throughput at this MPL
}

// Differentiation returns LowRT / HighRT, the paper's headline factor.
func (p PrioritizationResult) Differentiation() float64 {
	if p.HighRT == 0 {
		return 0
	}
	return p.LowRT / p.HighRT
}

// LowPenalty returns LowRT / NoPrioRT, the low class's suffering.
func (p PrioritizationResult) LowPenalty() float64 {
	if p.NoPrioRT == 0 {
		return 0
	}
	return p.LowRT / p.NoPrioRT
}

// OverallPenalty returns AllRT / NoPrioRT.
func (p PrioritizationResult) OverallPenalty() float64 {
	if p.NoPrioRT == 0 {
		return 0
	}
	return p.AllRT / p.NoPrioRT
}

// RunPrioritization measures external prioritization on one setup with
// the MPL set for the given throughput-loss threshold.
func RunPrioritization(setupID int, lossFrac float64, opts RunOpts) (PrioritizationResult, error) {
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return PrioritizationResult{}, err
	}
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, opts)
	if err != nil {
		return PrioritizationResult{}, err
	}
	mpl, err := FindMPLForLoss(setup, base.Throughput(), lossFrac, 100, opts)
	if err != nil {
		return PrioritizationResult{}, err
	}
	prio, err := RunClosed(setup, mpl, core.NewPriority(), workload.DBOptions{}, opts)
	if err != nil {
		return PrioritizationResult{}, err
	}
	return PrioritizationResult{
		SetupID:  setupID,
		MPL:      mpl,
		HighRT:   prio.Metrics.High.Mean(),
		LowRT:    prio.Metrics.Low.Mean(),
		NoPrioRT: base.MeanRT(),
		AllRT:    prio.MeanRT(),
		Baseline: base.Throughput(),
		Tput:     prio.Throughput(),
	}, nil
}

// Figure11 regenerates the external-prioritization bars across all 17
// setups at the 5% and 20% throughput-loss thresholds. setupIDs may
// restrict the sweep (nil = all 17).
func Figure11(lossFrac float64, setupIDs []int, opts RunOpts) (*Figure, error) {
	if setupIDs == nil {
		for i := 1; i <= 17; i++ {
			setupIDs = append(setupIDs, i)
		}
	}
	f := &Figure{
		ID:    fmt.Sprintf("fig11@%g%%", lossFrac*100),
		Title: fmt.Sprintf("External prioritization, MPL set for %g%% max throughput loss", lossFrac*100),
	}
	high := Series{Name: "HighPrio RT (s)"}
	low := Series{Name: "LowPrio RT (s)"}
	noPrio := Series{Name: "NoPrio RT (s)"}
	mplS := Series{Name: "chosen MPL"}
	var sumDiff, sumPen, sumOverall float64
	// One sweep point per setup: each point runs the full pipeline
	// (baseline probe, MPL search, prioritized run) independently.
	results, err := SweepContext(opts.ctx(), len(setupIDs), func(i int) (PrioritizationResult, error) {
		r, err := RunPrioritization(setupIDs[i], lossFrac, opts)
		if err != nil {
			return PrioritizationResult{}, fmt.Errorf("setup %d: %w", setupIDs[i], err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for i, id := range setupIDs {
		r := results[i]
		x := float64(id)
		high.X = append(high.X, x)
		high.Y = append(high.Y, r.HighRT)
		low.X = append(low.X, x)
		low.Y = append(low.Y, r.LowRT)
		noPrio.X = append(noPrio.X, x)
		noPrio.Y = append(noPrio.Y, r.NoPrioRT)
		mplS.X = append(mplS.X, x)
		mplS.Y = append(mplS.Y, float64(r.MPL))
		sumDiff += r.Differentiation()
		sumPen += r.LowPenalty()
		sumOverall += r.OverallPenalty()
	}
	n := float64(len(setupIDs))
	f.Series = []Series{high, low, noPrio, mplS}
	f.Notes = append(f.Notes,
		fmt.Sprintf("avg differentiation (low/high RT): %.1fx (paper @5%%: 12.1x, @20%%: 18x)", sumDiff/n),
		fmt.Sprintf("avg low-priority penalty vs no-prio: %.2fx (paper @5%%: ~1.16x, @20%%: ~1.37x)", sumPen/n),
		fmt.Sprintf("avg overall-RT penalty vs no-prio: %.2fx (paper @5%%: <=1.06x, @20%%: <=1.25x)", sumOverall/n))
	return f, nil
}

// InternalComparison is one bar group of Figs. 12-13.
type InternalComparison struct {
	Variant string // "internal", "ext95", "ext80", "ext100"
	HighRT  float64
	LowRT   float64
	MeanRT  float64
	MPL     int // 0 for internal (no external limit)
}

// CompareInternalExternal regenerates Fig. 12 (setupID 1, lock-bound →
// POW lock prioritization) or Fig. 13 (setupID 3, CPU-bound → CPU
// prioritization): internal prioritization versus external
// prioritization at MPLs chosen for 5%, 20% and ~0% throughput loss.
func CompareInternalExternal(setupID int, opts RunOpts) ([]InternalComparison, error) {
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return nil, err
	}
	var internalOpts workload.DBOptions
	switch {
	case setupID == 1:
		// Lock-bound: Preempt-on-Wait at the lock queues (Shore).
		internalOpts = workload.DBOptions{LockPolicy: lockmgr.PriorityFIFO, POW: true}
	default:
		// CPU-bound: renice-style CPU priorities (DB2 on Linux).
		internalOpts = workload.DBOptions{CPUPriority: true}
	}
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, opts)
	if err != nil {
		return nil, err
	}
	externals := []struct {
		name string
		loss float64
	}{
		{"ext95", 0.05},
		{"ext80", 0.20},
		{"ext100", 0.005},
	}
	// Variant 0 is the internal-prioritization run; 1..3 are the
	// external runs at their loss-targeted MPLs (each embedding its own
	// sequential MPL search). All four fan out in parallel.
	out, err := SweepContext(opts.ctx(), 1+len(externals), func(i int) (InternalComparison, error) {
		if i == 0 {
			internal, err := RunClosed(setup, 0, nil, internalOpts, opts)
			if err != nil {
				return InternalComparison{}, err
			}
			return InternalComparison{
				Variant: "internal",
				HighRT:  internal.Metrics.High.Mean(),
				LowRT:   internal.Metrics.Low.Mean(),
				MeanRT:  internal.MeanRT(),
			}, nil
		}
		v := externals[i-1]
		mpl, err := FindMPLForLoss(setup, base.Throughput(), v.loss, 100, opts)
		if err != nil {
			return InternalComparison{}, err
		}
		r, err := RunClosed(setup, mpl, core.NewPriority(), workload.DBOptions{}, opts)
		if err != nil {
			return InternalComparison{}, err
		}
		return InternalComparison{
			Variant: v.name,
			HighRT:  r.Metrics.High.Mean(),
			LowRT:   r.Metrics.Low.Mean(),
			MeanRT:  r.MeanRT(),
			MPL:     mpl,
		}, nil
	})
	return out, err
}

// FigureInternal renders CompareInternalExternal as a Figure (Fig. 12
// for setup 1, Fig. 13 for setup 3).
func FigureInternal(setupID int, opts RunOpts) (*Figure, error) {
	comps, err := CompareInternalExternal(setupID, opts)
	if err != nil {
		return nil, err
	}
	figID := "fig12"
	if setupID != 1 {
		figID = "fig13"
	}
	f := &Figure{
		ID:    figID,
		Title: fmt.Sprintf("Internal vs external prioritization, setup %d", setupID),
	}
	high := Series{Name: "HighPrio RT (s)"}
	low := Series{Name: "LowPrio RT (s)"}
	mean := Series{Name: "Mean RT (s)"}
	for i, c := range comps {
		x := float64(i)
		high.X = append(high.X, x)
		high.Y = append(high.Y, c.HighRT)
		low.X = append(low.X, x)
		low.Y = append(low.Y, c.LowRT)
		mean.X = append(mean.X, x)
		mean.Y = append(mean.Y, c.MeanRT)
		f.Notes = append(f.Notes, fmt.Sprintf("x=%d: %s (MPL %d)", i, c.Variant, c.MPL))
	}
	f.Series = []Series{high, low, mean}
	f.Notes = append(f.Notes,
		"expect: external (ext100/ext95) differentiation comparable to internal; ext80 differentiates more at a throughput cost")
	return f, nil
}

package gate

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRoundRobinSpreads(t *testing.T) {
	p, err := NewPool(PoolConfig{Members: 3, Member: Config{Limit: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var tickets []PoolTicket
	for i := 0; i < 6; i++ {
		tk, err := p.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if tk.Member() != i%3 {
			t.Errorf("acquire %d routed to member %d, want %d (round-robin)", i, tk.Member(), i%3)
		}
		tickets = append(tickets, tk)
	}
	for _, r := range p.Routed() {
		if r != 2 {
			t.Errorf("routed = %v, want 2 per member", p.Routed())
			break
		}
	}
	agg := p.Stats()
	if agg.Inflight != 6 || agg.Limit != 6 {
		t.Errorf("aggregate inflight=%d limit=%d, want 6/6", agg.Inflight, agg.Limit)
	}
	if len(agg.Shards) != 3 {
		t.Fatalf("aggregate has %d shard stats, want 3", len(agg.Shards))
	}
	for _, tk := range tickets {
		tk.Release(Result{})
		tk.Release(Result{}) // double release is a no-op
	}
	agg = p.Stats()
	if agg.Inflight != 0 || agg.Completed != 6 {
		t.Errorf("after release: inflight=%d completed=%d, want 0/6", agg.Inflight, agg.Completed)
	}
}

func TestPoolJSQAvoidsBusyMember(t *testing.T) {
	p, err := NewPool(PoolConfig{Members: 2, Dispatch: "jsq", Member: Config{Limit: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Load member 0 directly (bypassing the pool), then route through
	// the pool: JSQ must prefer the idle member 1.
	busy, err := p.Member(0).Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Release(Result{})
	for i := 0; i < 3; i++ {
		tk, err := p.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		defer tk.Release(Result{})
		if i == 0 && tk.Member() != 1 {
			t.Errorf("JSQ routed to member %d with member 0 busy, want 1", tk.Member())
		}
	}
}

func TestPoolLeastWorkNormalizesBySpeed(t *testing.T) {
	p, err := NewPool(PoolConfig{
		Members: 2, Dispatch: "lwl", Speeds: []float64{1, 0.25},
		Member: Config{Limit: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Equal outstanding work on both members reads as 4x the local
	// service time on the slow one, so new work lands on member 0.
	a, err := p.AcquireRequest(ctx, Request{SizeHint: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release(Result{})
	if a.Member() != 0 {
		t.Fatalf("first request routed to %d, want 0 (tie toward lowest index)", a.Member())
	}
	b, err := p.AcquireRequest(ctx, Request{SizeHint: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release(Result{})
	if b.Member() != 1 {
		t.Fatalf("second request routed to %d, want 1 (least work)", b.Member())
	}
	// work: member0=1, member1=1 -> normalized 1 vs 4: pick 0.
	c, err := p.AcquireRequest(ctx, Request{SizeHint: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release(Result{})
	if c.Member() != 0 {
		t.Errorf("third request routed to %d, want 0 (slow member carries 4x normalized work)", c.Member())
	}
}

func TestPoolAffinityPinsClasses(t *testing.T) {
	p, err := NewPool(PoolConfig{Members: 2, Dispatch: "affinity", Member: Config{Limit: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		class := Class(i % 2)
		tk, err := p.AcquireRequest(ctx, Request{Class: class})
		if err != nil {
			t.Fatal(err)
		}
		if tk.Member() != int(class) {
			t.Errorf("class %d routed to member %d, want %d", class, tk.Member(), class)
		}
		tk.Release(Result{})
	}
}

func TestPoolQueueFullRefundsRouting(t *testing.T) {
	p, err := NewPool(PoolConfig{Members: 1, Member: Config{Limit: 1, QueueLimit: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tk, err := p.AcquireRequest(ctx, Request{SizeHint: 5})
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		q, err := p.AcquireRequest(ctx, Request{SizeHint: 5})
		if err == nil {
			q.Release(Result{})
		}
		queued <- err
	}()
	// Wait until the second request occupies the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for p.Member(0).Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	_, err = p.AcquireRequest(ctx, Request{SizeHint: 5})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire: err = %v, want ErrQueueFull", err)
	}
	if got := p.Routed()[0]; got != 2 {
		t.Errorf("routed = %d after rejected acquire, want 2 (refunded)", got)
	}
	tk.Release(Result{})
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	p.Stats() // must not panic with refunded accounting
}

func TestPoolInvalidConfig(t *testing.T) {
	cases := []PoolConfig{
		{Members: 0},
		{Members: 2, Dispatch: "nope"},
		{Members: 2, Speeds: []float64{1}},
		{Members: 2, Speeds: []float64{1, -1}},
		{Members: 1, Member: Config{Limit: -1}},
	}
	for i, cfg := range cases {
		if _, err := NewPool(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
	p, err := NewPool(PoolConfig{Members: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetDispatch("nope"); err == nil {
		t.Error("SetDispatch accepted unknown policy")
	}
	if err := p.SetMemberSpeed(5, 1); err == nil {
		t.Error("SetMemberSpeed accepted out-of-range member")
	}
	if err := p.SetMemberSpeed(0, 0); err == nil {
		t.Error("SetMemberSpeed accepted zero speed")
	}
}

func TestPoolSetLimitSplits(t *testing.T) {
	p, err := NewPool(PoolConfig{Members: 3, Member: Config{Limit: 1}})
	if err != nil {
		t.Fatal(err)
	}
	p.SetLimit(7)
	want := []int{3, 2, 2}
	for i, w := range want {
		if got := p.Member(i).Limit(); got != w {
			t.Errorf("member %d limit = %d, want %d", i, got, w)
		}
	}
	if p.Limit() != 7 {
		t.Errorf("pool limit = %d, want 7", p.Limit())
	}
	p.SetLimit(0)
	if p.Limit() != 0 {
		t.Errorf("pool limit = %d, want 0 (unlimited)", p.Limit())
	}
	// A cluster-wide limit below the member count still keeps every
	// member finite (never accidentally unlimited).
	p.SetLimit(2)
	for i := 0; i < 3; i++ {
		if got := p.Member(i).Limit(); got < 1 {
			t.Errorf("member %d limit = %d, want >= 1", i, got)
		}
	}
}

// TestPoolConcurrentStress drives a pool from many goroutines across
// every policy while speeds and dispatch flip mid-flight — run under
// -race in CI; the conservation check catches lost or double-counted
// accounting.
func TestPoolConcurrentStress(t *testing.T) {
	p, err := NewPool(PoolConfig{Members: 4, Dispatch: "jsq", Member: Config{Limit: 3}})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	const perWorker = 200
	var wg sync.WaitGroup
	var completed atomic.Uint64
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				switch i % 50 {
				case 17:
					_ = p.SetDispatch([]string{"rr", "jsq", "lwl", "affinity"}[rng.Intn(4)])
				case 31:
					_ = p.SetMemberSpeed(rng.Intn(4), 0.25+rng.Float64())
				}
				tk, err := p.AcquireRequest(context.Background(),
					Request{Class: Class(rng.Intn(3)), SizeHint: rng.Float64()})
				if err != nil {
					t.Error(err)
					return
				}
				tk.Release(Result{})
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	agg := p.Stats()
	if agg.Completed != completed.Load() {
		t.Errorf("aggregate completed = %d, want %d", agg.Completed, completed.Load())
	}
	if agg.Inflight != 0 || agg.Queued != 0 {
		t.Errorf("pool not drained: inflight=%d queued=%d", agg.Inflight, agg.Queued)
	}
	var routed uint64
	for _, r := range p.Routed() {
		routed += r
	}
	if routed != completed.Load() {
		t.Errorf("routed sum = %d, want %d", routed, completed.Load())
	}
}

// TestPoolCancellationRefunds cancels queued acquisitions mid-wait and
// verifies the routing accounting is refunded, not leaked.
func TestPoolCancellationRefunds(t *testing.T) {
	p, err := NewPool(PoolConfig{Members: 2, Dispatch: "lwl", Member: Config{Limit: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a, _ := p.AcquireRequest(ctx, Request{SizeHint: 2})
	b, _ := p.AcquireRequest(ctx, Request{SizeHint: 2})
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		tk, err := p.AcquireRequest(cctx, Request{SizeHint: 7})
		if err == nil {
			tk.Release(Result{})
		}
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for p.Member(0).Queued()+p.Member(1).Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire: err = %v", err)
	}
	a.Release(Result{})
	b.Release(Result{})
	// All work charges settled: a fresh LWL acquire ties to member 0.
	tk, err := p.AcquireRequest(ctx, Request{SizeHint: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Release(Result{})
	if tk.Member() != 0 {
		t.Errorf("post-drain LWL routed to %d, want 0 (all charges refunded)", tk.Member())
	}
}

// TestPoolBreakerTripsAndReclaims walks the full breaker lifecycle on
// a deterministic clock: consecutive failures trip one member, the
// survivor absorbs its share of the fleet limit, a half-open probe
// after the interval closes the breaker, and the split reverts.
func TestPoolBreakerTripsAndReclaims(t *testing.T) {
	ck := &captureClock{}
	p, err := NewPool(PoolConfig{
		Members:  2,
		Breaker:  &BreakerConfig{Threshold: 3, ProbeInterval: 10},
		Member:   Config{Limit: 4, clock: ck},
		Dispatch: "rr",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Fail every request member 1 serves; member 0 keeps succeeding, so
	// only member 1's consecutive-failure count grows.
	fails := 0
	for fails < 3 {
		tk, err := p.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if tk.Member() == 1 {
			tk.Release(Result{Err: errors.New("backend down")})
			fails++
		} else {
			tk.Release(Result{})
		}
	}
	if got := p.MemberState(1); got != "down" {
		t.Fatalf("member 1 state = %q after %d consecutive failures, want down", got, fails)
	}
	if got := p.MemberState(0); got != "up" {
		t.Fatalf("member 0 state = %q, want up", got)
	}
	// Capacity reclaimed: the survivor holds the whole fleet limit, the
	// tripped member keeps one probe slot.
	if got := p.Member(0).Limit(); got != 8 {
		t.Errorf("survivor limit = %d, want 8 (full fleet limit)", got)
	}
	if got := p.Member(1).Limit(); got != 1 {
		t.Errorf("tripped member limit = %d, want 1 (probe slot)", got)
	}
	// All traffic avoids the tripped member until a probe is due.
	for i := 0; i < 6; i++ {
		tk, err := p.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if tk.Member() != 0 {
			t.Fatalf("acquire %d routed to tripped member", i)
		}
		tk.Release(Result{})
	}

	// Probe due: exactly one request tests member 1. A failed probe
	// re-trips for a full interval.
	ck.t = 10
	tk, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Member() != 1 {
		t.Fatalf("probe routed to member %d, want 1", tk.Member())
	}
	if got := p.MemberState(1); got != "down" {
		t.Errorf("member 1 state = %q while probing, want down", got)
	}
	tk.Release(Result{Err: errors.New("still down")})
	ck.t = 15 // half an interval later: no probe yet
	tk, err = p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Member() != 0 {
		t.Fatal("request routed to re-tripped member before its interval elapsed")
	}
	tk.Release(Result{})

	// Second probe succeeds: breaker closes within one probe interval
	// of the member recovering, and the fleet limit re-splits evenly.
	ck.t = 20
	tk, err = p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Member() != 1 {
		t.Fatalf("second probe routed to member %d, want 1", tk.Member())
	}
	tk.Release(Result{})
	if got := p.MemberState(1); got != "up" {
		t.Fatalf("member 1 state = %q after successful probe, want up", got)
	}
	if a, b := p.Member(0).Limit(), p.Member(1).Limit(); a != 4 || b != 4 {
		t.Errorf("limits after recovery = %d/%d, want 4/4", a, b)
	}
	// Availability: member 1 was down from its trip (t=0 era) until
	// t=20 of a 20-second lifetime; member 0 never tripped.
	st := p.Stats()
	if len(st.Shards) != 2 {
		t.Fatalf("stats has %d shards, want 2", len(st.Shards))
	}
	if st.Shards[0].Availability != 1 || st.Shards[0].State != "up" {
		t.Errorf("member 0 stat = %q/%v, want up/1", st.Shards[0].State, st.Shards[0].Availability)
	}
	// Member 1 tripped while the manual clock still read 0 and came
	// back at t=20, so it was down for the entire nonzero span.
	if a := st.Shards[1].Availability; a != 0 {
		t.Errorf("member 1 availability = %v, want 0 (down for the whole clocked span)", a)
	}
}

// TestPoolBreakerAllDown pins ErrMemberDown: with every member tripped
// and no probe due, Acquire fails fast instead of blocking, and the
// due probe reopens the path.
func TestPoolBreakerAllDown(t *testing.T) {
	ck := &captureClock{}
	p, err := NewPool(PoolConfig{
		Members: 1,
		Breaker: &BreakerConfig{Threshold: 1, ProbeInterval: 5},
		Member:  Config{Limit: 2, clock: ck},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tk, err := p.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tk.Release(Result{Err: errors.New("boom")})
	if _, err := p.Acquire(ctx); !errors.Is(err, ErrMemberDown) {
		t.Fatalf("acquire with whole fleet down: err = %v, want ErrMemberDown", err)
	}
	ck.t = 5
	tk, err = p.Acquire(ctx)
	if err != nil {
		t.Fatalf("probe after interval: %v", err)
	}
	tk.Release(Result{})
	if got := p.MemberState(0); got != "up" {
		t.Errorf("member state = %q after successful probe, want up", got)
	}
}

// TestPoolBreakerStress hammers a breaker-armed pool from many
// goroutines with a flaky member — run under -race in CI. The
// assertions are conservation-shaped: the pool drains, and every
// member ends in a defined state.
func TestPoolBreakerStress(t *testing.T) {
	p, err := NewPool(PoolConfig{
		Members:  4,
		Dispatch: "jsq",
		Breaker:  &BreakerConfig{Threshold: 4, ProbeInterval: 0.001},
		Member:   Config{Limit: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				tk, err := p.AcquireRequest(context.Background(),
					Request{SizeHint: rng.Float64()})
				if errors.Is(err, ErrMemberDown) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				// Member 3 fails 90% of the time: it flaps between
				// tripped and probing throughout the run.
				if tk.Member() == 3 && rng.Intn(10) != 0 {
					tk.Release(Result{Err: errors.New("flaky")})
				} else {
					tk.Release(Result{})
				}
			}
		}()
	}
	wg.Wait()
	agg := p.Stats()
	if agg.Inflight != 0 || agg.Queued != 0 {
		t.Errorf("pool not drained: inflight=%d queued=%d", agg.Inflight, agg.Queued)
	}
	for i := 0; i < p.Members(); i++ {
		if s := p.MemberState(i); s != "up" && s != "down" {
			t.Errorf("member %d state = %q, want up or down", i, s)
		}
	}
}

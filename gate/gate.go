// Package gate is the external scheduling frontend for live traffic:
// an MPL (multiprogramming-level) gate in front of any shared resource
// — a database connection, a downstream RPC, a CPU-heavy handler —
// that admits at most Limit concurrent units of work and queues the
// rest in a reorderable external queue (FIFO, priority, shortest-job-
// first, or weighted fair queueing).
//
// It is the wall-clock twin of the discrete-event simulation this
// repository uses to reproduce Schroeder et al., "How to determine a
// good multi-programming level for external scheduling" (ICDE 2006):
// the gate, queue policies, metrics, and the Section 4.3 feedback
// controller are the same code (internal/core, internal/controller)
// the simulator runs in virtual time — only the clock and the backend
// differ. What the paper shows for a simulated DBMS therefore carries
// over verbatim: a low MPL barely costs throughput, collapses response
// times under overload, and can be found automatically by feedback.
//
// Basic use:
//
//	g, _ := gate.New(gate.Config{Limit: 8})
//	tk, err := g.Acquire(ctx)
//	if err != nil {
//		return err // canceled, or ErrQueueFull under admission control
//	}
//	defer tk.Release(gate.Result{})
//	// ... at most 8 goroutines run here concurrently ...
//
// EnableAutoTune attaches the paper's feedback controller to the
// gate's completion stream so the limit tracks the lowest value that
// preserves throughput; Middleware wraps an http.Handler so every
// request passes through the gate. All methods are safe for concurrent
// use by any number of goroutines.
package gate

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"extsched/internal/core"
	"extsched/internal/sim"
	"extsched/metrics"
)

// Class is a small-integer priority class. ClassHigh receives strict
// preference under the "priority" policy; WFQ accepts arbitrary
// classes, one virtual queue per distinct value.
type Class int

const (
	// ClassLow is the default (background) class.
	ClassLow Class = 0
	// ClassHigh is the preferred class.
	ClassHigh Class = 1
)

// Policy names the built-in queue orderings.
type Policy string

const (
	// FIFO dispatches in arrival order (the default).
	FIFO Policy = "fifo"
	// Priority dispatches ClassHigh items first, FIFO within a class.
	Priority Policy = "priority"
	// SJF dispatches the smallest SizeHint first.
	SJF Policy = "sjf"
	// WFQ shares dispatch capacity across classes in proportion to
	// their weights, measured in SizeHint.
	WFQ Policy = "wfq"
)

// ErrQueueFull is returned by Acquire when the gate runs in
// admission-control mode (Config.QueueLimit > 0) and the queue is at
// its limit — the paper's "drop instead of wait" contrast system.
var ErrQueueFull = errors.New("gate: queue full")

// ErrDeadline is returned by Acquire when the request's class has an
// admission deadline (Config.AdmitDeadline, SetAdmitDeadline) and the
// gate could not admit the request in time: the ticket is shed —
// rejected without ever holding a slot — and counted in Stats.Shed.
// This is deadline-based load shedding: under overload the queue stops
// accumulating work that could no longer start in time, which is what
// keeps the waiting time of everything still admitted bounded.
var ErrDeadline = errors.New("gate: admission deadline exceeded")

// Config assembles a gate.
type Config struct {
	// Limit is the initial MPL: the maximum number of concurrently
	// admitted units of work. 0 means unlimited (pure accounting, no
	// gating) — useful for measuring a reference throughput before
	// enabling a limit or the auto-tuner.
	Limit int
	// Policy orders the waiting queue; default FIFO.
	Policy Policy
	// WFQWeights sets per-class weights for the WFQ policy (classes
	// absent from the map get weight 1; nil means {ClassHigh: 4}).
	WFQWeights map[Class]float64
	// QueueLimit, when > 0, enables admission control: an Acquire that
	// finds QueueLimit callers already waiting fails fast with
	// ErrQueueFull instead of queueing.
	QueueLimit int
	// AdmitDeadline sets per-class admission deadlines in seconds
	// (classes absent from the map have none): an Acquire that cannot
	// be admitted within its class's deadline fails with ErrDeadline
	// instead of waiting longer. SetAdmitDeadline changes them later.
	AdmitDeadline map[Class]float64
	// ClassLimits, when non-nil, partitions the Limit across classes:
	// class c holds at most ClassLimits[c] slots while other classes
	// have waiting work (idle capacity is still lent across the
	// partition — see core's work-conserving borrowing). Each limit
	// must be >= 1. EnableSLOTune steers this partition automatically.
	ClassLimits map[Class]int
	// PercentileSamples, when > 0, reservoir-samples response times so
	// Stats carries P50/P95/P99. Sampling is deterministic given Seed.
	PercentileSamples int
	// Seed drives the sampling reservoir; default 1.
	Seed uint64

	// clock overrides the time source (tests); nil = monotonic wall
	// clock.
	clock sim.Clock
}

// Request describes one unit of work for queue ordering.
type Request struct {
	// Class is the priority class (Priority and WFQ policies).
	Class Class
	// SizeHint estimates the work's duration in seconds (SJF orders by
	// it, WFQ charges by it). Zero = unknown.
	SizeHint float64
}

// Result reports the outcome of a released unit of work.
type Result struct {
	// Err, when non-nil, marks the guarded operation as failed; the
	// gate counts it in Stats.Errors. The gate itself treats failed and
	// successful completions alike (the slot is freed either way).
	Err error
}

// Gate is a wall-clock MPL gate. Create it with New.
type Gate struct {
	fe    *core.Frontend
	clock sim.Clock
	// slots recycles ticketSlots so the uncontended Acquire/Release
	// round trip allocates nothing.
	slots sync.Pool
	// tuneMu serializes the Enable/Disable tune paths so the two
	// loops' mutual-exclusion checks cannot race each other; the
	// completion hot path only Loads the atomics.
	tuneMu sync.Mutex
	ctl    atomic.Pointer[tuner]
	slo    atomic.Pointer[sloTuner]
	fair   atomic.Pointer[fairTuner]
	errs   atomic.Uint64
}

// ticketSlot is the reusable per-acquisition record behind a Ticket.
// Slots cycle through a per-gate sync.Pool; the generation counter is
// what keeps a stale Ticket (one whose slot has since been reused)
// from touching the new acquisition: Release claims the slot with a
// CAS from the generation the Ticket was issued at, so only the first
// Release of the current generation does anything.
type ticketSlot struct {
	g    *Gate
	item core.Item
	// admitted carries the admission (or shed) wake-up: capacity 1,
	// one token per submission, consumed before the slot is reused.
	admitted chan struct{}
	gen      atomic.Uint64
	// shed is set (before the admitted token is sent) when the ticket
	// was deadline-shed instead of admitted.
	shed bool
	// noPool marks a slot that armed a deadline timer: the timer
	// callback may still run arbitrarily late with a reference to the
	// slot's item, so the slot must not be recycled.
	noPool bool
}

// Ticket is one admitted unit of work. Callers must Release it exactly
// once; further Releases (from any copy of the Ticket) are no-ops. The
// zero Ticket is inert.
type Ticket struct {
	s   *ticketSlot
	gen uint64
}

// backend admits items by waking the Acquire that submitted them.
type backend struct{}

func (backend) Exec(it *core.Item) {
	it.Payload.(*ticketSlot).admitted <- struct{}{}
}

// New builds a gate from cfg.
func New(cfg Config) (*Gate, error) {
	if cfg.Limit < 0 {
		return nil, fmt.Errorf("gate: Limit %d must be >= 0", cfg.Limit)
	}
	if cfg.QueueLimit < 0 {
		return nil, fmt.Errorf("gate: QueueLimit %d must be >= 0", cfg.QueueLimit)
	}
	var weights map[core.Class]float64
	if cfg.WFQWeights != nil {
		weights = make(map[core.Class]float64, len(cfg.WFQWeights))
		for c, w := range cfg.WFQWeights {
			weights[core.Class(c)] = w
		}
	}
	policy, err := core.NewPolicy(string(cfg.Policy), weights)
	if err != nil {
		return nil, fmt.Errorf("gate: %w", err)
	}
	clock := cfg.clock
	if clock == nil {
		clock = sim.NewWallClock()
	}
	for c, d := range cfg.AdmitDeadline {
		if d < 0 {
			return nil, fmt.Errorf("gate: class %d admit deadline %v must be >= 0", c, d)
		}
	}
	for c, l := range cfg.ClassLimits {
		if l < 1 {
			return nil, fmt.Errorf("gate: class %d limit %d must be >= 1", c, l)
		}
	}
	g := &Gate{clock: clock}
	g.slots.New = func() any {
		return &ticketSlot{g: g, admitted: make(chan struct{}, 1)}
	}
	g.fe = core.New(clock, backend{}, cfg.Limit, policy)
	if cfg.QueueLimit > 0 {
		g.fe.SetQueueLimit(cfg.QueueLimit)
	}
	for c, d := range cfg.AdmitDeadline {
		g.fe.SetAdmitDeadline(core.Class(c), d)
	}
	if cfg.ClassLimits != nil {
		limits := make(map[core.Class]int, len(cfg.ClassLimits))
		for c, l := range cfg.ClassLimits {
			limits[core.Class(c)] = l
		}
		g.fe.SetClassLimits(limits)
	}
	// Deadline-shed tickets are woken through the shed hook: the item
	// never dispatches, so the admitted channel would otherwise block
	// its Acquire forever. The channel send orders the shed flag for
	// the waking goroutine.
	g.fe.OnShed = func(it *core.Item) {
		s := it.Payload.(*ticketSlot)
		s.shed = true
		s.admitted <- struct{}{}
	}
	if cfg.PercentileSamples > 0 {
		seed := cfg.Seed
		if seed == 0 {
			seed = 1
		}
		g.fe.EnablePercentiles(cfg.PercentileSamples, seed)
	}
	// The completion hook is installed once, before any traffic; the
	// tuner pointers make EnableAutoTune / EnableSLOTune race-free
	// afterwards.
	g.fe.OnComplete = func(*core.Item) {
		if t := g.ctl.Load(); t != nil {
			t.ctl.Observe()
		}
		if s := g.slo.Load(); s != nil {
			s.ctl.Observe()
		}
		if f := g.fair.Load(); f != nil {
			f.ctl.Observe()
		}
	}
	return g, nil
}

// Acquire waits for admission with default request attributes.
func (g *Gate) Acquire(ctx context.Context) (Ticket, error) {
	return g.AcquireRequest(ctx, Request{})
}

// AcquireRequest waits until the gate admits the request, the context
// is done, the request's class deadline passes (ErrDeadline), or — in
// admission-control mode — the queue is full. On success the caller
// holds one of the gate's Limit slots and must Release the ticket when
// the guarded work finishes.
//
// When a slot is free and nothing is waiting, admission is a lock-free
// CAS on the frontend's gate word plus a pooled ticket slot: no mutex,
// no channel operation, no allocation. The queueing path below is
// taken only when the request must actually wait (or a policy feature
// — class partitions, admit deadlines — needs the ordered slow path).
func (g *Gate) AcquireRequest(ctx context.Context, req Request) (Ticket, error) {
	if err := ctx.Err(); err != nil {
		return Ticket{}, err
	}
	s := g.slots.Get().(*ticketSlot)
	it := &s.item
	it.Class = core.Class(req.Class)
	it.SizeHint = req.SizeHint
	it.Payload = s
	if g.fe.TryAcquire(it) {
		return Ticket{s: s, gen: s.gen.Load()}, nil
	}
	if !g.fe.Submit(it, nil) {
		g.putSlot(s)
		return Ticket{}, ErrQueueFull
	}
	// Submit stamped the class's admission deadline (if any); arm a
	// timer so a waiter is woken with ErrDeadline the moment it passes,
	// not whenever its dead ticket surfaces at the head of the queue.
	var timer sim.Timer
	if it.Deadline > 0 {
		// The timer callback holds the item past this acquisition's
		// lifetime (Cancel cannot un-run a callback already in flight),
		// so this slot retires instead of returning to the pool.
		s.noPool = true
		timer = g.clock.After(it.Deadline-g.clock.Now(), func() {
			g.fe.ShedQueued(it)
		})
	}
	select {
	case <-s.admitted:
		if timer != nil {
			timer.Cancel()
		}
		if s.shed {
			// The shed item may still sit in the queue awaiting lazy
			// discard, so the slot is not reusable; drop it.
			return Ticket{}, ErrDeadline
		}
		return Ticket{s: s, gen: s.gen.Load()}, nil
	case <-ctx.Done():
		if timer != nil {
			timer.Cancel()
		}
		if g.fe.CancelQueued(it) {
			// Withdrawn while still queued: no slot was consumed. The
			// canceled item stays referenced by the queue until its lazy
			// discard, so the ticket slot must not be recycled.
			return Ticket{}, ctx.Err()
		}
		// Admission — or a shed — raced the cancellation. A shed ticket
		// holds no slot; an admitted one must hand its slot back as a
		// discard: the work never ran, so it must not register as a
		// completion (which would feed the auto-tuner a fabricated
		// near-zero response time) or as an error.
		<-s.admitted
		if s.shed {
			return Ticket{}, ctx.Err()
		}
		g.fe.Discard(it)
		g.putSlot(s)
		return Ticket{}, ctx.Err()
	}
}

// putSlot resets a settled slot — no queue references, admitted token
// consumed — and returns it to the pool.
func (g *Gate) putSlot(s *ticketSlot) {
	if s.noPool {
		return
	}
	s.item = core.Item{}
	s.shed = false
	g.slots.Put(s)
}

// Release frees the ticket's slot, recording res. The next waiting
// request (per the queue policy) is admitted on the caller's
// goroutine before Release returns. On the uncontended path this is a
// lock-free CAS plus the metrics update — no mutex, no allocation.
func (t Ticket) Release(res Result) { t.release(res) }

// release performs the first-Release work and reports whether this
// call was the one that claimed the ticket (false: already released,
// or the zero Ticket).
func (t Ticket) release(res Result) bool {
	s := t.s
	if s == nil || !s.gen.CompareAndSwap(t.gen, t.gen+1) {
		return false
	}
	g := s.g
	if res.Err != nil {
		g.errs.Add(1)
	}
	inside := g.clock.Now() - s.item.Dispatch
	g.fe.Complete(&s.item, core.Outcome{InsideTime: inside})
	g.putSlot(s)
	return true
}

// Limit returns the current MPL (0 = unlimited). Lock-free —
// hot-path-safe.
func (g *Gate) Limit() int { return g.fe.MPL() }

// Inflight returns the number of admitted, unreleased units of work.
// Lock-free — hot-path-safe.
func (g *Gate) Inflight() int { return g.fe.Inside() }

// Queued returns the number of callers waiting in the external queue.
// Takes the queue lock briefly; fine for reporters, avoid per-request.
func (g *Gate) Queued() int { return g.fe.QueueLen() }

// SetLimit changes the MPL. Raising it admits queued work immediately
// (on the calling goroutine); lowering it takes effect as admitted
// work releases — nothing is preempted.
func (g *Gate) SetLimit(n int) {
	if n < 0 {
		n = 0
	}
	g.fe.SetMPL(n)
}

// SetAdmitDeadline changes class c's admission deadline (0 clears it).
// Applies to subsequent Acquires; waiters already queued keep the
// deadline they arrived under.
func (g *Gate) SetAdmitDeadline(c Class, seconds float64) error {
	if seconds < 0 {
		return fmt.Errorf("gate: admit deadline %v must be >= 0", seconds)
	}
	g.fe.SetAdmitDeadline(core.Class(c), seconds)
	return nil
}

// SetClassLimits partitions the limit across classes (each present
// limit >= 1; absent classes are uncapped; nil clears the partition).
// Idle capacity is still lent across the partition, so the gate stays
// work-conserving.
func (g *Gate) SetClassLimits(limits map[Class]int) error {
	for c, l := range limits {
		if l < 1 {
			return fmt.Errorf("gate: class %d limit %d must be >= 1", c, l)
		}
	}
	var cl map[core.Class]int
	if limits != nil {
		cl = make(map[core.Class]int, len(limits))
		for c, l := range limits {
			cl[core.Class(c)] = l
		}
	}
	g.fe.SetClassLimits(cl)
	return nil
}

// ClassLimits returns the current per-class partition (nil when none).
// Allocates a fresh map per call; per-request readers should use
// ClassLimit instead.
func (g *Gate) ClassLimits() map[Class]int {
	cl := g.fe.ClassLimits()
	if cl == nil {
		return nil
	}
	out := make(map[Class]int, len(cl))
	for c, l := range cl {
		out[Class(c)] = l
	}
	return out
}

// ClassLimit returns class c's limit under the current partition (ok
// false when the class is uncapped or no partition is set). Unlike
// ClassLimits it allocates nothing.
func (g *Gate) ClassLimit(c Class) (limit int, ok bool) {
	l, ok := g.fe.ClassLimit(core.Class(c))
	return l, ok
}

// ClassPercentile reports class c's p-th response-time percentile over
// the current metrics window (0 unless Config.PercentileSamples is
// set) — the signal an SLO is written against.
func (g *Gate) ClassPercentile(c Class, p float64) float64 {
	return g.fe.ClassResponseTimePercentile(core.Class(c), p)
}

// Tenant describes one registered tenant class.
type Tenant struct {
	// Class is the tenant's priority class ID.
	Class Class
	// Name labels the tenant in Stats.Classes.
	Name string
	// Weight is the tenant's relative fair share (EnableFairness uses
	// it when no explicit weights are given).
	Weight float64
	// SLOTarget is the tenant's advisory latency target in seconds
	// (0 = none).
	SLOTarget float64
}

// RegisterClass registers a named tenant and returns its class ID
// (sequential from 0, so the first two registrations land on ClassLow
// and ClassHigh). Weight is the tenant's relative fair share (> 0);
// sloTarget an advisory latency target in seconds (>= 0; 0 = none).
// Registration only names the class and records its weight — any class
// ID may be used in a Request without registering — but EnableFairness
// with nil Weights governs exactly the registered tenants.
func (g *Gate) RegisterClass(name string, weight, sloTarget float64) (Class, error) {
	if weight <= 0 {
		return 0, fmt.Errorf("gate: tenant %q weight %v must be > 0", name, weight)
	}
	if sloTarget < 0 {
		return 0, fmt.Errorf("gate: tenant %q SLO target %v must be >= 0", name, sloTarget)
	}
	return Class(g.fe.RegisterClass(name, weight, sloTarget)), nil
}

// Tenants returns the registered tenants in registration (= class ID)
// order; nil when none were registered.
func (g *Gate) Tenants() []Tenant {
	ts := g.fe.Tenants()
	if ts == nil {
		return nil
	}
	out := make([]Tenant, len(ts))
	for i, t := range ts {
		out[i] = Tenant{Class: Class(t.Class), Name: t.Name, Weight: t.Weight, SLOTarget: t.SLOTarget}
	}
	return out
}

// TenantName returns the registered name for a class (empty when the
// class was never registered).
func (g *Gate) TenantName(c Class) string { return g.fe.TenantName(core.Class(c)) }

// SetWFQWeights reweights the WFQ policy per class (classes absent from
// the map keep their current weight). Returns an error for a
// non-positive weight; reports ok=false (with no error) when the gate's
// policy is not WFQ.
func (g *Gate) SetWFQWeights(weights map[Class]float64) (ok bool, err error) {
	cw := make(map[core.Class]float64, len(weights))
	for c, w := range weights {
		if w <= 0 {
			return false, fmt.Errorf("gate: class %d WFQ weight %v must be > 0", c, w)
		}
		cw[core.Class(c)] = w
	}
	return g.fe.SetWFQWeights(cw), nil
}

// Stats is a point-in-time snapshot of the gate. It is the shared
// metrics.Snapshot vocabulary: the same fields a simulated Scenario run
// streams to its observers, so live and simulated measurements compare
// field for field. In a Stats value the completion counters cover the
// whole current metrics window and Dropped/Canceled/Errors are
// lifetime totals; Classes splits the window per tenant class (the
// deprecated HighResponse()/LowResponse() accessors derive from it);
// MeanInside is the admitted (dispatch-to-release) portion of the
// response time. Only the fields a live gate genuinely cannot know —
// Phase, CPUUtil, DiskUtil, Restarts — stay zero here.
type Stats = metrics.Snapshot

// Stats snapshots the gate. The per-class slice is the only per-call
// allocation (the percentile estimators reuse internal scratch), so
// periodic reporters can call it freely; it does take the gate's
// internal locks briefly, so it is a reporting call, not a per-request
// one — per-request code should stick to Limit/Inflight.
func (g *Gate) Stats() Stats {
	m := g.fe.Metrics()
	s := Stats{
		Time:         g.clock.Now(),
		Window:       m.Window(),
		Limit:        g.fe.MPL(),
		Inflight:     g.fe.Inside(),
		Queued:       g.fe.QueueLen(),
		Completed:    m.Completed,
		Throughput:   m.Throughput(),
		MeanResponse: m.All.Mean(),
		MeanWait:     m.ExtWait.Mean(),
		MeanInside:   m.Inside.Mean(),
		P50:          g.fe.ResponseTimePercentile(50),
		P95:          g.fe.ResponseTimePercentile(95),
		P99:          g.fe.ResponseTimePercentile(99),
		Dropped:      g.fe.Dropped(),
		Canceled:     g.fe.Canceled(),
		Errors:       g.errs.Load(),
	}
	s.Shed = g.fe.Shed()
	s.Classes = g.classStats(m)
	return s
}

// classStats assembles the per-tenant slice of a Stats snapshot: every
// class that completed work this window or ever shed any, ascending.
func (g *Gate) classStats(m core.Metrics) []metrics.ClassStat {
	shed := g.fe.ShedClasses()
	ids := make(map[core.Class]struct{}, len(m.Classes)+len(shed))
	for _, cm := range m.Classes {
		ids[cm.Class] = struct{}{}
	}
	for c := range shed {
		ids[c] = struct{}{}
	}
	if len(ids) == 0 {
		return nil
	}
	classes := make([]core.Class, 0, len(ids))
	for c := range ids {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	out := make([]metrics.ClassStat, len(classes))
	for i, c := range classes {
		cm := m.ClassMetric(c)
		out[i] = metrics.ClassStat{
			Class:     int(c),
			Name:      g.fe.TenantName(c),
			Completed: cm.Completed(),
			Shed:      shed[c],
			Mean:      cm.RT.Mean(),
			P95:       g.fe.ClassResponseTimePercentile(c, 95),
		}
	}
	return out
}

// ResetStats starts a fresh metrics window (Throughput, MeanResponse
// and the percentiles reset; the lifetime counters do not).
func (g *Gate) ResetStats() { g.fe.ResetMetrics() }

// Watch streams the gate's Stats to o every interval seconds until the
// returned stop function is called. Snapshots are cumulative (the same
// values Stats returns at that instant), so Watch composes with
// EnableAutoTune, whose controller owns the metrics-window resets.
// OnInterval runs on a timer goroutine; o must be safe for that. stop
// is idempotent and safe to call from any goroutine (including from
// the observer itself); a tick that began emitting just before stop
// may still complete, but a tick firing after stop stays silent.
func (g *Gate) Watch(interval float64, o metrics.Observer) (stop func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("gate: watch interval %v must be positive", interval))
	}
	w := &watcher{g: g, o: o, interval: interval}
	w.mu.Lock()
	w.timer = g.clock.After(interval, w.tick)
	w.mu.Unlock()
	return w.stop
}

// watcher reschedules itself after each emitted snapshot.
type watcher struct {
	g        *Gate
	o        metrics.Observer
	interval float64
	mu       sync.Mutex
	timer    sim.Timer
	stopped  bool
}

func (w *watcher) tick() {
	// Check stopped BEFORE emitting, not only when rescheduling: a
	// timer that fired just after stop() must not deliver one last
	// snapshot to an observer the caller is tearing down. (A tick that
	// already passed this check may still overlap a concurrent stop —
	// observers must tolerate that, as Watch documents — but a tick
	// that fires after stop is now guaranteed silent.)
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	w.o.OnInterval(w.g.Stats())
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stopped {
		return
	}
	w.timer = w.g.clock.After(w.interval, w.tick)
}

func (w *watcher) stop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stopped = true
	if w.timer != nil {
		w.timer.Cancel()
	}
}

package autoscale

import "testing"

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Min: 0, Max: 4},                            // min < 1
		{Min: -1, Max: 4},                           // negative min
		{Min: 8, Max: 4},                            // min > max
		{Min: 1, Max: 4, Interval: -1},              // negative interval
		{Min: 1, Max: 4, HighWater: -2},             // negative high water
		{Min: 1, Max: 4, LowWater: -1},              // negative low water
		{Min: 1, Max: 4, HighWater: 4, LowWater: 4}, // low == high
		{Min: 1, Max: 4, HighWater: 4, LowWater: 9}, // low > high
		{Min: 1, Max: 4, BreachWindows: -2},         // negative windows
		{Min: 1, Max: 4, CalmWindows: -1},           // negative windows
		{Min: 1, Max: 4, Cooldown: -0.5},            // negative cooldown
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
	good := Config{Min: 2, Max: 16}
	if err := good.Validate(); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
}

func TestDefaults(t *testing.T) {
	c := mustNew(t, Config{Min: 1, Max: 8})
	cfg := c.Config()
	if cfg.Interval != 1 || cfg.HighWater != 8 || cfg.LowWater != 2 {
		t.Errorf("defaults: interval %v high %v low %v", cfg.Interval, cfg.HighWater, cfg.LowWater)
	}
	if cfg.BreachWindows != 2 || cfg.CalmWindows != 6 || cfg.Cooldown != 2 {
		t.Errorf("defaults: breach %d calm %d cooldown %v", cfg.BreachWindows, cfg.CalmWindows, cfg.Cooldown)
	}
}

// TestScaleUpNeedsConsecutiveBreaches: K-1 breaches then a calm reading
// must not scale; K consecutive breaches must.
func TestScaleUpNeedsConsecutiveBreaches(t *testing.T) {
	c := mustNew(t, Config{Min: 1, Max: 8, HighWater: 10, LowWater: 2, BreachWindows: 3, CalmWindows: 100, Cooldown: 0.001})
	now := 0.0
	tick := func(sig float64) Decision {
		now++
		return c.Observe(now, 4, sig)
	}
	if d := tick(20); d != Hold {
		t.Fatalf("1st breach: %v", d)
	}
	if d := tick(20); d != Hold {
		t.Fatalf("2nd breach: %v", d)
	}
	if d := tick(5); d != Hold { // dead band resets the run
		t.Fatalf("mid-band: %v", d)
	}
	if d := tick(20); d != Hold {
		t.Fatalf("breach after reset: %v", d)
	}
	if d := tick(20); d != Hold {
		t.Fatalf("2nd breach after reset: %v", d)
	}
	if d := tick(20); d != ScaleUp {
		t.Fatalf("3rd consecutive breach: %v, want scale-up", d)
	}
	if c.ScaleUps() != 1 {
		t.Fatalf("ScaleUps = %d", c.ScaleUps())
	}
}

// TestScaleDownIsSlower: the calm hold is longer than the breach
// window, and only sustained calm drains capacity.
func TestScaleDownIsSlower(t *testing.T) {
	c := mustNew(t, Config{Min: 2, Max: 8, HighWater: 10, LowWater: 2, BreachWindows: 2, CalmWindows: 5, Cooldown: 0.001})
	now := 0.0
	for i := 0; i < 4; i++ {
		now++
		if d := c.Observe(now, 6, 1); d != Hold {
			t.Fatalf("calm %d: %v", i, d)
		}
	}
	now++
	if d := c.Observe(now, 6, 1); d != ScaleDown {
		t.Fatalf("5th calm: %v, want scale-down", d)
	}
	if c.ScaleDowns() != 1 {
		t.Fatalf("ScaleDowns = %d", c.ScaleDowns())
	}
}

// TestCooldownSuppresses: after an action, further triggers hold until
// the cooldown elapses.
func TestCooldownSuppresses(t *testing.T) {
	c := mustNew(t, Config{Min: 1, Max: 8, HighWater: 10, LowWater: 2, BreachWindows: 1, CalmWindows: 100, Cooldown: 10})
	if d := c.Observe(1, 2, 50); d != ScaleUp {
		t.Fatalf("first breach: %v", d)
	}
	for now := 2.0; now < 11; now++ {
		if d := c.Observe(now, 3, 50); d != Hold {
			t.Fatalf("t=%v inside cooldown: %v", now, d)
		}
	}
	if d := c.Observe(11.5, 3, 50); d != ScaleUp {
		t.Fatalf("after cooldown: %v, want scale-up", d)
	}
}

// TestBoundsClampAndOverride: never above Max or below Min, and a fleet
// outside its bounds is corrected immediately, cooldown or not.
func TestBoundsClampAndOverride(t *testing.T) {
	c := mustNew(t, Config{Min: 2, Max: 4, HighWater: 10, LowWater: 2, BreachWindows: 1, CalmWindows: 1, Cooldown: 100})
	if d := c.Observe(1, 4, 50); d != Hold {
		t.Fatalf("at max under load: %v, want hold", d)
	}
	if d := c.Observe(2, 2, 0); d != Hold {
		t.Fatalf("at min while calm: %v, want hold", d)
	}
	// Below min: immediate correction even though nothing breached and a
	// huge cooldown is configured.
	if d := c.Observe(3, 1, 5); d != ScaleUp {
		t.Fatalf("below min: %v, want scale-up", d)
	}
	if d := c.Observe(3.1, 6, 5); d != ScaleDown {
		t.Fatalf("above max: %v, want scale-down", d)
	}
}

// TestDeterministicReplay: the controller is pure state — the same
// observation sequence yields the same decision sequence.
func TestDeterministicReplay(t *testing.T) {
	cfg := Config{Min: 2, Max: 10, HighWater: 8, LowWater: 2, BreachWindows: 2, CalmWindows: 4, Cooldown: 3}
	run := func() []Decision {
		c := mustNew(t, cfg)
		var out []Decision
		up := 4
		for i := 0; i < 200; i++ {
			sig := float64((i * 37 % 23)) // deterministic pseudo-load
			d := c.Observe(float64(i), up, sig)
			switch d {
			case ScaleUp:
				up++
			case ScaleDown:
				up--
			}
			out = append(out, d)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

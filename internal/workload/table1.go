package workload

import (
	"fmt"

	"extsched/internal/dist"
)

// Page accounting: 8 KiB pages.
const (
	pagesPerGB = 131072
	pagesPerMB = 128
)

// Disk timing: ~12 ms per random I/O on the paper's IDE drives (seek +
// rotation dominate, so the spread is modest — uniform 6–18 ms, CV²
// ≈ 0.08 — which is what gives the paper's sharp throughput knees),
// ~1.5 ms for a sequential log append.
func ideDisk() dist.Distribution { return dist.NewUniform(0.006, 0.018) }
func logDisk() dist.Distribution { return dist.NewDeterministic(0.0015) }

// WCPUInventory is the Table 1 W_CPU-inventory workload: TPC-C with 10
// warehouses and a 1 GB database that fits in the 1 GB buffer pool, so
// almost all work is CPU. Calibrated to C² ≈ 1.0–1.5 and a single-CPU
// saturation throughput in the paper's tens-per-second range.
func WCPUInventory() Spec {
	return Spec{
		Name:      "W_CPU-inventory",
		Benchmark: "TPC-C",
		Types: []TxnType{
			{Name: "NewOrder", Prob: 0.45, Ops: 10, CPUPerOp: dist.NewExponential(0.0012), PagesPerOp: 2, WriteFrac: 0.6, HotKeyProb: 0.12},
			{Name: "Payment", Prob: 0.43, Ops: 4, CPUPerOp: dist.NewExponential(0.0010), PagesPerOp: 1, WriteFrac: 0.75, HotKeyProb: 0.25},
			{Name: "OrderStatus", Prob: 0.04, Ops: 3, CPUPerOp: dist.NewExponential(0.0020), PagesPerOp: 2, WriteFrac: 0, HotKeyProb: 0.10},
			{Name: "Delivery", Prob: 0.04, Ops: 12, CPUPerOp: dist.NewExponential(0.0042), PagesPerOp: 2, WriteFrac: 0.7, HotKeyProb: 0.12},
			{Name: "StockLevel", Prob: 0.04, Ops: 8, CPUPerOp: dist.NewExponential(0.0037), PagesPerOp: 3, WriteFrac: 0, HotKeyProb: 0.10},
		},
		HotLockKeys:       30, // 10 warehouse rows + their hottest district rows
		DBPages:           1 * pagesPerGB,
		HotFrac:           0.2,
		HotAccess:         0.8,
		BufferPoolPages:   1*pagesPerGB + 4096, // pool > DB: fully cached
		DiskService:       ideDisk(),
		LogService:        logDisk(),
		Clients:           100,
		CanonicalKeyOrder: true,
	}
}

// WCPUBrowsing is W_CPU-browsing: TPC-W browsing mix, 100 EBs, 300 MB
// database cached in a 500 MB pool. CPU bound with heavy-tailed
// queries (rare multi-second best-seller scans) giving C² ≈ 15.
func WCPUBrowsing() Spec {
	return Spec{
		Name:      "W_CPU-browsing",
		Benchmark: "TPC-W",
		Types: []TxnType{
			{Name: "Browse", Prob: 0.75, Ops: 3, CPUPerOp: dist.NewExponential(0.025), PagesPerOp: 2, WriteFrac: 0, HotKeyProb: 0},
			{Name: "Search", Prob: 0.14, Ops: 5, CPUPerOp: dist.FitH2(0.060, 4), PagesPerOp: 3, WriteFrac: 0, HotKeyProb: 0},
			{Name: "BestSeller", Prob: 0.005, Ops: 4, CPUPerOp: dist.NewExponential(1.5), PagesPerOp: 4, WriteFrac: 0, HotKeyProb: 0},
			{Name: "Order", Prob: 0.105, Ops: 5, CPUPerOp: dist.NewExponential(0.010), PagesPerOp: 2, WriteFrac: 0.4, HotKeyProb: 0.05},
		},
		HotLockKeys:     1000, // popular items
		DBPages:         300 * pagesPerMB,
		HotFrac:         0.2,
		HotAccess:       0.8,
		BufferPoolPages: 500 * pagesPerMB, // pool > DB: fully cached
		DiskService:     ideDisk(),
		LogService:      logDisk(),
		Clients:         100,
	}
}

// WIOInventory is W_IO-inventory: TPC-C with 60 warehouses — a 6 GB
// database against a 100 MB pool, making nearly every page access a
// disk I/O. The paper calls it a "pure I/O-only workload".
func WIOInventory() Spec {
	return Spec{
		Name:      "W_IO-inventory",
		Benchmark: "TPC-C",
		Types: []TxnType{
			{Name: "NewOrder", Prob: 0.45, Ops: 10, CPUPerOp: dist.NewExponential(0.0003), PagesPerOp: 3, WriteFrac: 0.6, HotKeyProb: 0.02},
			{Name: "Payment", Prob: 0.43, Ops: 4, CPUPerOp: dist.NewExponential(0.0003), PagesPerOp: 2, WriteFrac: 0.75, HotKeyProb: 0.02},
			{Name: "OrderStatus", Prob: 0.04, Ops: 3, CPUPerOp: dist.NewExponential(0.0003), PagesPerOp: 3, WriteFrac: 0, HotKeyProb: 0.01},
			{Name: "Delivery", Prob: 0.04, Ops: 12, CPUPerOp: dist.NewExponential(0.0004), PagesPerOp: 3, WriteFrac: 0.7, HotKeyProb: 0.02},
			{Name: "StockLevel", Prob: 0.04, Ops: 8, CPUPerOp: dist.NewExponential(0.0004), PagesPerOp: 4, WriteFrac: 0, HotKeyProb: 0.01},
		},
		HotLockKeys:       660, // 60 warehouses × (1 + 10 districts)
		DBPages:           6 * pagesPerGB,
		HotFrac:           0.05,
		HotAccess:         0.4,
		BufferPoolPages:   100 * pagesPerMB,
		DiskService:       ideDisk(),
		LogService:        logDisk(),
		Clients:           100, // TPC spec assumes 600; paper runs 100
		CanonicalKeyOrder: true,
	}
}

// WIOBrowsing is W_IO-browsing: TPC-W browsing with 500 EBs and a
// database an order of magnitude larger than the 100 MB pool. I/O
// bound but with a noticeable CPU component (the paper notes the
// smaller database leaves more CPU work per byte), and rare full-scan
// best-seller queries that push C² to ≈ 15.
func WIOBrowsing() Spec {
	return Spec{
		Name:      "W_IO-browsing",
		Benchmark: "TPC-W",
		Types: []TxnType{
			{Name: "Browse", Prob: 0.745, Ops: 3, CPUPerOp: dist.NewExponential(0.010), PagesPerOp: 15, WriteFrac: 0, HotKeyProb: 0},
			{Name: "Search", Prob: 0.14, Ops: 5, CPUPerOp: dist.NewExponential(0.020), PagesPerOp: 30, WriteFrac: 0, HotKeyProb: 0},
			{Name: "BestSeller", Prob: 0.01, Ops: 4, CPUPerOp: dist.NewExponential(0.300), PagesPerOp: 1250, WriteFrac: 0, HotKeyProb: 0},
			{Name: "Order", Prob: 0.105, Ops: 5, CPUPerOp: dist.NewExponential(0.008), PagesPerOp: 10, WriteFrac: 0.4, HotKeyProb: 0.05},
		},
		HotLockKeys:     2000,
		DBPages:         1 * pagesPerGB,
		HotFrac:         0.1,
		HotAccess:       0.5,
		BufferPoolPages: 100 * pagesPerMB,
		DiskService:     ideDisk(),
		LogService:      logDisk(),
		Clients:         100, // TPC spec assumes 500; paper runs 100
	}
}

// WCPUIOInventory is W_CPU+IO-inventory: TPC-C with 10 warehouses and
// the pool sized to half the database, leaving CPU and disk demands
// roughly equal ("balanced") — the workload whose min MPL grows the
// most when resources are added in proportion (Fig. 4).
func WCPUIOInventory() Spec {
	return Spec{
		Name:      "W_CPU+IO-inventory",
		Benchmark: "TPC-C",
		Types: []TxnType{
			{Name: "NewOrder", Prob: 0.45, Ops: 10, CPUPerOp: dist.NewExponential(0.0012), PagesPerOp: 1, WriteFrac: 0.6, HotKeyProb: 0.10},
			{Name: "Payment", Prob: 0.43, Ops: 4, CPUPerOp: dist.NewExponential(0.0010), PagesPerOp: 1, WriteFrac: 0.75, HotKeyProb: 0.15},
			{Name: "OrderStatus", Prob: 0.04, Ops: 3, CPUPerOp: dist.NewExponential(0.0020), PagesPerOp: 1, WriteFrac: 0, HotKeyProb: 0.05},
			{Name: "Delivery", Prob: 0.04, Ops: 12, CPUPerOp: dist.NewExponential(0.0120), PagesPerOp: 1, WriteFrac: 0.7, HotKeyProb: 0.10},
			{Name: "StockLevel", Prob: 0.04, Ops: 8, CPUPerOp: dist.NewExponential(0.0080), PagesPerOp: 2, WriteFrac: 0, HotKeyProb: 0.05},
		},
		HotLockKeys:       110,
		DBPages:           1 * pagesPerGB,
		HotFrac:           0.15,
		HotAccess:         0.65,
		BufferPoolPages:   48 * pagesPerMB * 8, // ~0.37 GB: miss ratio ≈ 0.2
		DiskService:       ideDisk(),
		LogService:        logDisk(),
		Clients:           100,
		CanonicalKeyOrder: true,
	}
}

// WCPUOrdering is W_CPU-ordering: the TPC-W ordering mix — CPU bound
// and write heavy, with a small set of hot item rows that make it the
// lock-contention workload for Fig. 5(b).
func WCPUOrdering() Spec {
	return Spec{
		Name:      "W_CPU-ordering",
		Benchmark: "TPC-W",
		Types: []TxnType{
			{Name: "AddToCart", Prob: 0.30, Ops: 4, CPUPerOp: dist.NewExponential(0.004), PagesPerOp: 1, WriteFrac: 0.6, HotKeyProb: 0.30},
			{Name: "Checkout", Prob: 0.25, Ops: 8, CPUPerOp: dist.NewExponential(0.005), PagesPerOp: 1, WriteFrac: 0.75, HotKeyProb: 0.30},
			{Name: "Browse", Prob: 0.35, Ops: 3, CPUPerOp: dist.NewExponential(0.006), PagesPerOp: 1, WriteFrac: 0, HotKeyProb: 0.10},
			{Name: "Search", Prob: 0.095, Ops: 5, CPUPerOp: dist.FitH2(0.0125, 4), PagesPerOp: 2, WriteFrac: 0, HotKeyProb: 0.05},
			{Name: "BestSeller", Prob: 0.005, Ops: 4, CPUPerOp: dist.NewExponential(0.400), PagesPerOp: 3, WriteFrac: 0, HotKeyProb: 0},
		},
		HotLockKeys:     16, // best-selling items' stock rows
		DBPages:         300 * pagesPerMB,
		HotFrac:         0.2,
		HotAccess:       0.8,
		BufferPoolPages: 500 * pagesPerMB,
		DiskService:     ideDisk(),
		LogService:      logDisk(),
		Clients:         100,
	}
}

// Table1 returns the six workloads in the paper's Table 1 order.
func Table1() []Spec {
	return []Spec{
		WCPUInventory(),
		WCPUBrowsing(),
		WIOBrowsing(),
		WIOInventory(),
		WCPUIOInventory(),
		WCPUOrdering(),
	}
}

// ByName returns the Table 1 workload with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Table1() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
}

module extsched

go 1.24

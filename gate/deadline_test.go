package gate

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAcquireDeadlineSheds: a waiter whose class deadline passes while
// the gate is full is rejected with ErrDeadline, holds no slot, and is
// counted in Stats.Shed — and the gate keeps working afterwards.
func TestAcquireDeadlineSheds(t *testing.T) {
	g, err := New(Config{Limit: 1, AdmitDeadline: map[Class]float64{ClassLow: 0.03}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	holder, err := g.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = g.Acquire(ctx)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("blocked Acquire returned %v, want ErrDeadline", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("shed took %v — the deadline timer did not fire eagerly", waited)
	}
	s := g.Stats()
	if s.Shed != 1 || s.ShedLow() != 1 || s.ShedHigh() != 0 {
		t.Errorf("Shed counters = %d/%d/%d, want 1 total, 1 low, 0 high", s.Shed, s.ShedHigh(), s.ShedLow())
	}
	if g.Inflight() != 1 || g.Queued() != 0 {
		t.Errorf("inflight %d queued %d after shed, want 1 and 0", g.Inflight(), g.Queued())
	}
	holder.Release(Result{})
	// A class without a deadline still waits patiently.
	tk, err := g.Acquire(ctx)
	if err != nil {
		t.Fatalf("gate unusable after a shed: %v", err)
	}
	tk.Release(Result{})
}

// TestDeadlineShedAccounting hammers a full gate with deadline-bounded
// acquires from many goroutines under -race: every Acquire either
// succeeds or sheds, the counts reconcile exactly, and a shed ticket
// is never admitted.
func TestDeadlineShedAccounting(t *testing.T) {
	g, err := New(Config{Limit: 2, AdmitDeadline: map[Class]float64{ClassLow: 0.005}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const N = 200
	var ok, shed atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := g.Acquire(ctx)
			switch {
			case err == nil:
				time.Sleep(200 * time.Microsecond) // hold the slot briefly
				tk.Release(Result{})
				ok.Add(1)
			case errors.Is(err, ErrDeadline):
				shed.Add(1)
			default:
				t.Errorf("unexpected Acquire error: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := ok.Load() + shed.Load(); got != N {
		t.Fatalf("accounted %d of %d acquires", got, N)
	}
	s := g.Stats()
	if s.Shed != shed.Load() {
		t.Errorf("Stats.Shed = %d, callers saw %d ErrDeadline", s.Shed, shed.Load())
	}
	if uint64(s.Completed) != ok.Load() {
		t.Errorf("Stats.Completed = %d, callers saw %d successes", s.Completed, ok.Load())
	}
	if g.Inflight() != 0 || g.Queued() != 0 {
		t.Errorf("gate not drained: inflight %d queued %d", g.Inflight(), g.Queued())
	}
	if shed.Load() == 0 {
		t.Error("stress run shed nothing — deadline too loose to exercise the path")
	}
}

// TestClassLimitsLiveGate: the partition works on the wall-clock gate —
// with low at its limit, a freed slot admits the waiting high request
// ahead of earlier-queued low ones (FIFO policy, so only the class
// limits can reorder).
func TestClassLimitsLiveGate(t *testing.T) {
	g, err := New(Config{Limit: 2, ClassLimits: map[Class]int{ClassHigh: 1, ClassLow: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Fill the gate with low work (one slot by right, one borrowed).
	a, err := g.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan int, 3)
	acquire := func(id int, req Request) {
		tk, err := g.AcquireRequest(ctx, req)
		if err != nil {
			t.Errorf("acquire %d: %v", id, err)
			return
		}
		admitted <- id
		tk.Release(Result{})
	}
	go acquire(1, Request{Class: ClassLow})
	go acquire(2, Request{Class: ClassLow})
	// Let the low waiters queue first, then add the high one.
	waitFor(t, func() bool { return g.Queued() == 2 })
	go acquire(3, Request{Class: ClassHigh})
	waitFor(t, func() bool { return g.Queued() == 3 })

	// Free one slot: the high request must beat both queued low ones.
	a.Release(Result{})
	if first := <-admitted; first != 3 {
		t.Errorf("first admitted waiter = %d, want the high one (3)", first)
	}
	b.Release(Result{})
	<-admitted
	<-admitted
}

// TestSLOTunePrerequisites: the live SLO loop refuses gates it cannot
// steer.
func TestSLOTunePrerequisites(t *testing.T) {
	g, err := New(Config{Limit: 1, PercentileSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.EnableSLOTune(SLOTuneConfig{Class: ClassHigh, Target: 0.1}); err == nil {
		t.Error("SLO tuning accepted a limit-1 gate")
	}
	g2, err := New(Config{Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.EnableSLOTune(SLOTuneConfig{Class: ClassHigh, Target: 0.1}); err == nil {
		t.Error("SLO tuning accepted a gate without percentile sampling")
	}
	g3, err := New(Config{Limit: 4, PercentileSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := g3.EnableSLOTune(SLOTuneConfig{Class: ClassHigh, Target: 0.1}); err != nil {
		t.Fatalf("SLO tuning refused a valid gate: %v", err)
	}
	st := g3.SLOTuneStatus()
	if !st.Enabled || st.SLOLimit+st.OtherLimit != 4 || st.SLOLimit < 1 || st.OtherLimit < 1 {
		t.Errorf("initial SLO partition broken: %+v", st)
	}
	if cl := g3.ClassLimits(); cl[ClassHigh]+cl[ClassLow] != 4 {
		t.Errorf("gate class limits %v do not cover the limit", cl)
	}
	g3.DisableSLOTune()
	if g3.SLOTuneStatus().Enabled {
		t.Error("SLO status still enabled after disable")
	}
}

// waitFor polls briefly for an asynchronous condition.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

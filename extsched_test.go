package extsched

import (
	"reflect"
	"strings"
	"testing"
)

func TestNewSystemFromSetupID(t *testing.T) {
	s, err := NewSystem(Config{SetupID: 1, MPL: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.MPL() != 5 {
		t.Errorf("MPL = %d, want 5", s.MPL())
	}
	if s.Setup() == "" {
		t.Error("empty setup description")
	}
}

func TestNewSystemFromWorkloadName(t *testing.T) {
	s, err := NewSystem(Config{Workload: "W_CPU-inventory", CPUs: 2, Disks: 1, Isolation: "UR"})
	if err != nil {
		t.Fatal(err)
	}
	if s.MPL() != 0 {
		t.Errorf("default MPL = %d, want 0 (unlimited)", s.MPL())
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring of the error; "" means valid
	}{
		{"empty", Config{}, "either SetupID or Workload"},
		{"negative MPL", Config{SetupID: 1, MPL: -1}, "MPL -1"},
		{"negative CPUs", Config{Workload: "W_CPU-inventory", CPUs: -2}, "CPUs -2"},
		{"negative disks", Config{Workload: "W_CPU-inventory", Disks: -1}, "Disks -1"},
		{"unknown policy", Config{SetupID: 1, Policy: "zzz"}, `policy "zzz"`},
		{"unknown isolation", Config{Workload: "W_CPU-inventory", Isolation: "XX"}, `isolation "XX"`},
		{"high fraction above 1", Config{SetupID: 1, HighPriorityFraction: 1.5}, "HighPriorityFraction"},
		{"negative WFQ weight", Config{SetupID: 1, Policy: PolicyWFQ, WFQHighWeight: -3}, "WFQHighWeight"},
		{"negative queue limit", Config{SetupID: 1, QueueLimit: -1}, "QueueLimit"},
		{"negative percentile samples", Config{SetupID: 1, PercentileSamples: -5}, "PercentileSamples"},
		{"valid minimal", Config{SetupID: 1}, ""},
		{"valid full", Config{
			Workload: "W_CPU-inventory", CPUs: 2, Disks: 1, Isolation: "SI",
			MPL: 8, Policy: PolicyWFQ, WFQHighWeight: 3,
			HighPriorityFraction: 0.2, QueueLimit: 50, PercentileSamples: 1000,
		}, ""},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: invalid config accepted: %+v", tc.name, tc.cfg)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestNewSystemValidation(t *testing.T) {
	cases := []Config{
		{},                          // nothing specified
		{Workload: "nope"},          // unknown workload
		{SetupID: 99},               // unknown setup
		{SetupID: 1, Policy: "zzz"}, // unknown policy
		{SetupID: 1, MPL: -2},       // negative MPL (error, not panic)
		{Workload: "W_CPU-inventory", Isolation: "XX"},
	}
	for i, cfg := range cases {
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestRunClosedReport(t *testing.T) {
	s, err := NewSystem(Config{SetupID: 1, MPL: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunClosed(100, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed < 1000 {
		t.Errorf("completed = %d, want >= 1000", rep.Completed)
	}
	if rep.Throughput < 30 || rep.Throughput > 300 {
		t.Errorf("throughput = %v, want sane CPU-bound range", rep.Throughput)
	}
	if rep.MeanRT <= 0 || rep.CPUUtil <= 0 {
		t.Errorf("report fields not populated: %+v", rep)
	}
	// A System is re-runnable: the second run rebuilds pristine state
	// and reproduces the first bit for bit.
	rep2, err := s.RunClosed(100, 10, 60)
	if err != nil {
		t.Fatalf("second run on same System rejected: %v", err)
	}
	if !reflect.DeepEqual(rep2, rep) {
		t.Errorf("re-run differs:\n%+v\nvs\n%+v", rep2, rep)
	}
}

func TestRunOpenReport(t *testing.T) {
	s, err := NewSystem(Config{SetupID: 1, MPL: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunOpen(40, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput < 30 || rep.Throughput > 50 {
		t.Errorf("open throughput = %v, want ≈ lambda 40", rep.Throughput)
	}
}

func TestPriorityPolicyDifferentiates(t *testing.T) {
	s, err := NewSystem(Config{SetupID: 1, MPL: 2, Policy: PolicyPriority, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunClosed(100, 10, 120)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HighRT <= 0 || rep.LowRT <= 0 {
		t.Fatal("per-class RTs missing")
	}
	if rep.LowRT < 2*rep.HighRT {
		t.Errorf("differentiation = %.1fx, want >= 2x at MPL 2 (high %.3f low %.3f)",
			rep.LowRT/rep.HighRT, rep.HighRT, rep.LowRT)
	}
}

func TestDeterminismAcrossSystems(t *testing.T) {
	run := func() Report {
		s, err := NewSystem(Config{SetupID: 1, MPL: 5, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.RunClosed(50, 5, 30)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Throughput != b.Throughput || a.MeanRT != b.MeanRT {
		t.Errorf("same-seed runs differ: %+v vs %+v", a, b)
	}
}

func TestRecommendMPL(t *testing.T) {
	// Pure IO, 4 disks, 200 ms IO demand.
	rec, err := RecommendMPL(1, 4, 0.001, 0.2, 0.05, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ThroughputMPL < 4 {
		t.Errorf("throughput MPL = %d, want >= 4 for 4 disks at 95%%", rec.ThroughputMPL)
	}
	if rec.MPL != rec.ThroughputMPL {
		t.Errorf("MPL = %d, want = throughput bound without RT inputs", rec.MPL)
	}
	// Adding a high-C² open load raises the recommendation.
	rec2, err := RecommendMPL(1, 1, 0.1, 0, 0.05, 7, 0.1, 15, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.ResponseTimeMPL <= 1 {
		t.Errorf("RT MPL = %d, want > 1 for C²=15 at rho .7", rec2.ResponseTimeMPL)
	}
	if rec2.MPL < rec2.ResponseTimeMPL {
		t.Error("final MPL must cover the RT bound")
	}
}

func TestSetupsAndWorkloadsLists(t *testing.T) {
	if n := len(Setups()); n != 17 {
		t.Errorf("Setups() = %d entries, want 17", n)
	}
	if n := len(Workloads()); n != 6 {
		t.Errorf("Workloads() = %d entries, want 6", n)
	}
}

func TestAutoTuneSmoke(t *testing.T) {
	// Measure a reference, then auto-tune a fresh system.
	ref, err := NewSystem(Config{SetupID: 1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	base, err := ref.RunClosed(100, 20, 100)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(Config{SetupID: 1, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.AutoTune(100, 0.05, base.Throughput, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("controller did not converge: %+v", res)
	}
	if res.FinalMPL < 1 || res.FinalMPL > 40 {
		t.Errorf("final MPL = %d, want low", res.FinalMPL)
	}
}

func TestWFQPolicyBalancesClasses(t *testing.T) {
	run := func(policy string, weight float64) Report {
		s, err := NewSystem(Config{
			SetupID:              1,
			MPL:                  2,
			Policy:               policy,
			WFQHighWeight:        weight,
			HighPriorityFraction: 0.5, // equal offered load per class
			Seed:                 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.RunClosed(100, 10, 120)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	wfqMild := run(PolicyWFQ, 1.5)
	strict := run(PolicyPriority, 0)
	// Both differentiate.
	if wfqMild.HighRT >= wfqMild.LowRT {
		t.Errorf("WFQ high RT %v should beat low %v", wfqMild.HighRT, wfqMild.LowRT)
	}
	// A mild weight ratio differentiates LESS than strict priority —
	// the knob the paper's class-based QoS companion work needs.
	wfqRatio := wfqMild.LowRT / wfqMild.HighRT
	strictRatio := strict.LowRT / strict.HighRT
	if wfqRatio >= strictRatio {
		t.Errorf("WFQ(1.5) ratio %.1fx should be below strict priority %.1fx", wfqRatio, strictRatio)
	}
	// Low class under WFQ must do no worse than under strict priority.
	if wfqMild.LowRT > strict.LowRT*1.1 {
		t.Errorf("WFQ low RT %v worse than strict priority %v", wfqMild.LowRT, strict.LowRT)
	}
}

func TestQueueLimitDropsUnderOverload(t *testing.T) {
	s, err := NewSystem(Config{SetupID: 1, MPL: 2, QueueLimit: 5, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Offered load far above the MPL-2 service rate.
	rep, err := s.RunOpen(200, 5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Error("expected admission-control drops under overload")
	}
}

func TestPercentilesReported(t *testing.T) {
	s, err := NewSystem(Config{SetupID: 1, MPL: 5, PercentileSamples: 5000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunClosed(100, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !(rep.P50 > 0 && rep.P50 <= rep.P95 && rep.P95 <= rep.P99) {
		t.Errorf("percentiles not ordered: %v %v %v", rep.P50, rep.P95, rep.P99)
	}
	// The mean lies between P50 and P99 for these right-skewed RTs.
	if rep.MeanRT < rep.P50*0.5 || rep.MeanRT > rep.P99 {
		t.Errorf("mean %v inconsistent with percentiles (%v, %v)", rep.MeanRT, rep.P50, rep.P99)
	}
}

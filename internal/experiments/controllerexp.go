package experiments

import (
	"fmt"

	"extsched/internal/controller"
	"extsched/internal/runner"
	"extsched/internal/workload"
)

// ControllerRun is the outcome of one controller convergence trial.
type ControllerRun struct {
	SetupID    int
	StartMPL   int // queueing-model jump-start
	FinalMPL   int
	Iterations int
	Converged  bool
}

// RunController executes the Section 4.3 loop on one setup: model
// jump-start, then observation/reaction until convergence (or the
// simulation horizon ends). jumpStart=false ablates the queueing
// models and starts the loop at MPL 1 instead (the comparison that
// motivates the jump-start).
func RunController(setupID int, lossFrac float64, jumpStart bool, opts RunOpts) (ControllerRun, error) {
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return ControllerRun{}, err
	}
	opts = opts.withDefaults(setup)
	// Reference optimum from a no-MPL probe run (the deployed tool
	// would use the models or an initial calibration run the same way).
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, opts)
	if err != nil {
		return ControllerRun{}, err
	}
	start := 1
	if jumpStart {
		cpuD, ioD := setup.Demands()
		start, err = controller.JumpStart(controller.JumpStartInput{
			CPUs: setup.CPUs, Disks: setup.Disks,
			CPUDemand: cpuD, IODemand: ioD,
			DiskCV2:            setup.Workload.DiskService.C2(),
			ThroughputFraction: 1 - lossFrac,
		})
		if err != nil {
			return ControllerRun{}, err
		}
	}
	// A controller-enable event at the window's start hands the MPL to
	// the feedback loop; observation windows are CI-gated, so their
	// length adapts to the workload's noise — give the loop a generous
	// horizon and stop at convergence.
	out, err := RunPhases(setup, start, nil, workload.DBOptions{}, opts, runner.Spec{
		Warmup:         opts.Warmup,
		SampleInterval: opts.Measure / 10, // convergence-check granularity
		Phases: []runner.Phase{{
			Kind: runner.KindClosed, Clients: opts.Clients, Duration: 20 * opts.Measure,
			Events: []runner.Event{{EnableController: &runner.ControllerSpec{
				MaxThroughputLoss:   lossFrac,
				ReferenceThroughput: base.Throughput(),
				StopOnConverge:      true,
			}}},
		}},
	})
	if err != nil {
		return ControllerRun{}, err
	}
	return ControllerRun{
		SetupID:    setupID,
		StartMPL:   start,
		FinalMPL:   out.Tune.FinalMPL,
		Iterations: out.Tune.Iterations,
		Converged:  out.Tune.Converged,
	}, nil
}

// ControllerFigure runs the convergence experiment across setups and
// reports iterations-to-convergence. The paper: the jump-started
// controller converges in fewer than 10 iterations on every setup.
func ControllerFigure(setupIDs []int, lossFrac float64, jumpStart bool, opts RunOpts) (*Figure, error) {
	if setupIDs == nil {
		for i := 1; i <= 17; i++ {
			setupIDs = append(setupIDs, i)
		}
	}
	label := "jump-started"
	if !jumpStart {
		label = "cold-started (ablation)"
	}
	f := &Figure{
		ID:    "controller",
		Title: fmt.Sprintf("Controller convergence, %s, %g%% loss target", label, lossFrac*100),
	}
	iters := Series{Name: "iterations"}
	finals := Series{Name: "final MPL"}
	starts := Series{Name: "start MPL"}
	allUnder10 := true
	// Each convergence trial owns its engine, frontend, and controller,
	// so the setups fan out across the sweep pool.
	results, err := SweepContext(opts.ctx(), len(setupIDs), func(i int) (ControllerRun, error) {
		r, err := RunController(setupIDs[i], lossFrac, jumpStart, opts)
		if err != nil {
			return ControllerRun{}, fmt.Errorf("setup %d: %w", setupIDs[i], err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for i, id := range setupIDs {
		r := results[i]
		x := float64(id)
		iters.X = append(iters.X, x)
		iters.Y = append(iters.Y, float64(r.Iterations))
		finals.X = append(finals.X, x)
		finals.Y = append(finals.Y, float64(r.FinalMPL))
		starts.X = append(starts.X, x)
		starts.Y = append(starts.Y, float64(r.StartMPL))
		if !r.Converged || r.Iterations >= 10 {
			allUnder10 = false
		}
	}
	f.Series = []Series{starts, finals, iters}
	if jumpStart {
		f.Notes = append(f.Notes, fmt.Sprintf("all setups converged in <10 iterations: %v (paper: yes)", allUnder10))
	}
	return f, nil
}

// Package cpusched simulates a multi-core CPU shared processor-sharing
// style, the way a Linux box runs concurrent DBMS worker processes.
//
// Each of the C cores has unit service rate. When n jobs are resident,
// capacity is divided by weighted water-filling: a job's rate is
// proportional to its weight but never exceeds one core (a single
// process cannot use two CPUs at once — the same limitation the paper
// notes for its analytic model). With equal weights and n > C, every
// job runs at C/n; with n <= C every job runs at rate 1.
//
// Weights implement the paper's internal CPU prioritization (Section
// 5.2): "renice -20 vs 20" maps to a large weight ratio between high-
// and low-priority transactions.
package cpusched

import (
	"fmt"
	"math"

	"extsched/internal/sim"
)

// Job is a resident CPU job handle.
type Job struct {
	remaining float64 // seconds of CPU work left at rate 1
	weight    float64
	rate      float64 // current service rate (cores)
	onDone    func()
	done      bool
	canceled  bool
	idx       int // position in the CPU's job slice; -1 when absent
}

// Remaining returns the job's outstanding CPU work in seconds.
func (j *Job) Remaining() float64 { return j.remaining }

// Rate returns the job's current service rate in cores.
func (j *Job) Rate() float64 { return j.rate }

// CPU is the shared multi-core resource.
type CPU struct {
	eng        *sim.Engine
	cores      int
	jobs       []*Job
	lastUpdate float64
	// busyTime integrates total busy core-seconds for utilization
	// reporting.
	busyTime float64
	// nextEv fires when nextJob — the earliest finisher at current
	// rates — completes. Keeping a single armed event (instead of one
	// per job) makes membership changes O(n) arithmetic without event-
	// heap churn.
	nextEv  sim.Handle
	nextJob *Job
	// scratch is reused by the water-filling pass to avoid a per-event
	// allocation.
	scratch []*Job
}

// New returns a CPU pool with the given core count (>= 1).
func New(eng *sim.Engine, cores int) *CPU {
	if cores < 1 {
		panic(fmt.Sprintf("cpusched: cores %d must be >= 1", cores))
	}
	return &CPU{eng: eng, cores: cores, lastUpdate: eng.Now()}
}

// Cores returns the core count.
func (c *CPU) Cores() int { return c.cores }

// Resident returns the number of resident jobs.
func (c *CPU) Resident() int { return len(c.jobs) }

// BusyCoreSeconds returns the integral of in-use cores over time,
// advanced to the current instant.
func (c *CPU) BusyCoreSeconds() float64 {
	c.advance()
	return c.busyTime
}

// Submit adds a job requiring work seconds of CPU at rate 1, with the
// given scheduling weight (> 0). onDone fires when the work completes.
func (c *CPU) Submit(work, weight float64, onDone func()) *Job {
	if work < 0 || math.IsNaN(work) || math.IsInf(work, 0) {
		panic(fmt.Sprintf("cpusched: invalid work %v", work))
	}
	if weight <= 0 {
		panic(fmt.Sprintf("cpusched: weight %v must be positive", weight))
	}
	c.advance()
	j := &Job{remaining: work, weight: weight, onDone: onDone}
	if work == 0 {
		// Complete immediately but asynchronously, preserving the
		// invariant that callbacks never run inside Submit.
		j.done = true
		c.eng.After(0, func() {
			if !j.canceled {
				onDone()
			}
		})
		return j
	}
	j.idx = len(c.jobs)
	c.jobs = append(c.jobs, j)
	c.reschedule()
	return j
}

// Cancel removes a job before completion (transaction abort). Safe to
// call on completed jobs (no-op).
func (c *CPU) Cancel(j *Job) {
	if j == nil || j.done || j.canceled {
		if j != nil {
			j.canceled = true
		}
		return
	}
	c.advance()
	j.canceled = true
	c.remove(j)
	c.reschedule()
}

// remove drops j from the job slice in O(1) by swapping with the tail.
func (c *CPU) remove(j *Job) {
	i := j.idx
	if i < 0 || i >= len(c.jobs) || c.jobs[i] != j {
		return
	}
	last := len(c.jobs) - 1
	c.jobs[i] = c.jobs[last]
	c.jobs[i].idx = i
	c.jobs[last] = nil
	c.jobs = c.jobs[:last]
	j.idx = -1
}

// SetWeight changes a resident job's weight (e.g. a priority change
// mid-flight). No-op for finished jobs.
func (c *CPU) SetWeight(j *Job, weight float64) {
	if weight <= 0 {
		panic(fmt.Sprintf("cpusched: weight %v must be positive", weight))
	}
	if j.done || j.canceled {
		return
	}
	c.advance()
	j.weight = weight
	c.reschedule()
}

// advance drains elapsed time into each resident job's remaining work
// at its current rate, and into the busy-time integral.
func (c *CPU) advance() {
	now := c.eng.Now()
	dt := now - c.lastUpdate
	if dt <= 0 {
		c.lastUpdate = now
		return
	}
	for _, j := range c.jobs {
		j.remaining -= j.rate * dt
		if j.remaining < 0 {
			j.remaining = 0
		}
		c.busyTime += j.rate * dt
	}
	c.lastUpdate = now
}

// reschedule recomputes rates by weighted water-filling and re-arms
// the single next-completion event.
func (c *CPU) reschedule() {
	c.eng.Cancel(c.nextEv)
	c.nextEv, c.nextJob = sim.Handle{}, nil
	n := len(c.jobs)
	if n == 0 {
		return
	}
	// Water-filling: allocate min(cores, n) total rate; each job's
	// share is proportional to weight, capped at 1 core. Jobs at the
	// cap release surplus to the rest.
	capacity := float64(c.cores)
	if float64(n) < capacity {
		capacity = float64(n)
	}
	// Fast path 1: fewer jobs than cores — everyone runs at full rate.
	if n <= c.cores {
		for _, j := range c.jobs {
			j.rate = 1
		}
		c.arm()
		return
	}
	// Fast path 2: proportional shares with no job hitting the 1-core
	// cap — the overwhelmingly common case with equal weights.
	totalW := 0.0
	maxW := 0.0
	for _, j := range c.jobs {
		totalW += j.weight
		if j.weight > maxW {
			maxW = j.weight
		}
	}
	if maxW*capacity/totalW < 1 {
		share := capacity / totalW
		for _, j := range c.jobs {
			j.rate = j.weight * share
		}
		c.arm()
		return
	}
	// General water-filling with the 1-core cap.
	for _, j := range c.jobs {
		j.rate = 0
	}
	uncapped := append(c.scratch[:0], c.jobs...)
	defer func() { c.scratch = uncapped[:0] }()
	remaining := capacity
	for len(uncapped) > 0 && remaining > 1e-15 {
		totalW := 0.0
		for _, j := range uncapped {
			totalW += j.weight
		}
		capped := false
		share := remaining / totalW
		kept := uncapped[:0]
		for _, j := range uncapped {
			if j.rate+j.weight*share >= 1 {
				remaining -= 1 - j.rate
				j.rate = 1
				capped = true
			} else {
				kept = append(kept, j)
			}
		}
		uncapped = kept
		if !capped {
			for _, j := range uncapped {
				j.rate += j.weight * share
			}
			remaining = 0
		}
	}
	c.arm()
}

// arm schedules one event for the earliest finisher at current rates.
func (c *CPU) arm() {
	var soonest *Job
	best := math.Inf(1)
	for _, j := range c.jobs {
		if j.rate <= 0 {
			continue // starved (possible transiently with extreme weights)
		}
		if f := j.remaining / j.rate; f < best {
			best, soonest = f, j
		}
	}
	if soonest == nil {
		return
	}
	c.nextJob = soonest
	c.nextEv = c.eng.At(c.eng.Now()+best, func() { c.complete(soonest) })
}

// complete finishes a job whose remaining work reached zero.
func (c *CPU) complete(j *Job) {
	c.advance()
	j.done = true
	j.remaining = 0
	c.remove(j)
	c.reschedule()
	j.onDone()
}

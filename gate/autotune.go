package gate

import (
	"fmt"

	"extsched/internal/controller"
	"extsched/internal/core"
)

// TuneConfig parameterizes the feedback controller (the paper's
// Section 4.3 loop) for a live gate.
type TuneConfig struct {
	// MaxThroughputLoss is the acceptable fractional throughput loss
	// versus the reference (e.g. 0.05 = keep 95%). Required, in [0,1).
	MaxThroughputLoss float64
	// ReferenceThroughput is the no-limit optimum in completions per
	// second — measure it by running the gate unlimited (Limit 0) under
	// representative load and reading Stats().Throughput, or supply a
	// capacity-model estimate. Required.
	ReferenceThroughput float64
	// MaxRTIncrease and ReferenceRT enable the optional response-time
	// criterion: mean response must stay within (1+MaxRTIncrease) ×
	// ReferenceRT. Zero values disable it.
	MaxRTIncrease float64
	ReferenceRT   float64
	// MinObservations gates window close; default 100 completions (the
	// paper's choice). Lower it for quick-converging demos and tests.
	MinObservations int
	// MaxWindow caps a window's completions; default 50×MinObservations.
	MaxWindow int
	// MinLimit / MaxLimit clamp the search range; defaults 1 and 200.
	MinLimit, MaxLimit int
	// HoldWindows is the number of consecutive no-change reactions
	// after which the controller declares convergence; default 2.
	HoldWindows int
}

// TuneStatus reports the controller's progress.
type TuneStatus struct {
	// Enabled is false until EnableAutoTune succeeds.
	Enabled bool
	// Converged reports whether the loop has settled at the lowest
	// feasible limit; Iterations counts completed reactions.
	Converged  bool
	Iterations int
	// Limit is the current (possibly still-moving) MPL.
	Limit int
}

// tuner pairs the controller with its wiring state.
type tuner struct {
	ctl *controller.Controller
}

// EnableAutoTune attaches the feedback controller to the gate's
// completion stream: from now on every Release feeds an observation
// window, and each closed window nudges the limit — up when the
// throughput (or response-time) target is violated, down when both
// are met with margin — converging on the lowest feasible limit. The
// gate's limit must be >= 1 (the controller needs a finite starting
// point; use JumpStart-style estimates or a modest guess — the
// adaptive step recovers from misjudged starts). Enabling twice
// replaces the previous controller and restarts the metrics window.
// Auto-tune and SLO tuning are mutually exclusive: both loops close
// observation windows by resetting the gate's one metrics window, so
// running them together would destroy each other's observations.
func (g *Gate) EnableAutoTune(tc TuneConfig) error {
	g.tuneMu.Lock()
	defer g.tuneMu.Unlock()
	if g.fe.MPL() < 1 {
		return fmt.Errorf("gate: auto-tune needs a finite starting limit (have %d); set Config.Limit or SetLimit first", g.fe.MPL())
	}
	if g.slo.Load() != nil {
		return fmt.Errorf("gate: auto-tune and SLO tuning share the metrics window; DisableSLOTune first")
	}
	if g.fair.Load() != nil {
		return fmt.Errorf("gate: auto-tune and fairness share the metrics window; DisableFairness first")
	}
	ctl, err := controller.New(g.clock, g.fe, controller.Config{
		Targets: controller.Targets{
			MaxThroughputLoss: tc.MaxThroughputLoss,
			MaxRTIncrease:     tc.MaxRTIncrease,
		},
		Reference: controller.Reference{
			MaxThroughput: tc.ReferenceThroughput,
			OptimalRT:     tc.ReferenceRT,
		},
		MinObservations: tc.MinObservations,
		MaxWindow:       tc.MaxWindow,
		MinMPL:          tc.MinLimit,
		MaxMPL:          tc.MaxLimit,
		HoldWindows:     tc.HoldWindows,
	})
	if err != nil {
		return err
	}
	g.ctl.Store(&tuner{ctl: ctl})
	return nil
}

// DisableAutoTune detaches the controller; the limit stays where the
// loop left it.
func (g *Gate) DisableAutoTune() {
	g.tuneMu.Lock()
	defer g.tuneMu.Unlock()
	g.ctl.Store(nil)
}

// SLOTuneConfig parameterizes the per-class latency-SLO controller for
// a live gate: hold Class's Percentile-th response-time percentile at
// or below Target seconds by partitioning the gate's limit across the
// classes, leaving every slot the SLO does not need to OtherClass's
// throughput. Combine with Config.AdmitDeadline on the other class to
// shed un-startable work under overload.
type SLOTuneConfig struct {
	// Class is the protected class (usually ClassHigh).
	Class Class
	// OtherClass is the class slots are borrowed from; default
	// ClassLow (or ClassHigh when Class is ClassLow).
	OtherClass Class
	// Percentile is the controlled percentile (0 = 95).
	Percentile float64
	// Target is the latency bound in seconds. Required, > 0.
	Target float64
	// MinObservations gates the SLO observation window (0 = 50).
	MinObservations int
	// Margin is the give-back hysteresis fraction (0 = 0.5).
	Margin float64
}

// SLOTuneStatus reports the SLO loop's progress.
type SLOTuneStatus struct {
	// Enabled is false until EnableSLOTune succeeds.
	Enabled bool
	// SLOLimit / OtherLimit are the current slot partition; Iterations
	// counts completed reactions; LastMeasured is the last closed
	// window's measured percentile in seconds.
	SLOLimit, OtherLimit int
	Iterations           int
	LastMeasured         float64
}

// sloTuner pairs the SLO controller with its wiring state.
type sloTuner struct {
	ctl *controller.SLOController
}

// EnableSLOTune attaches the latency-SLO controller to the gate's
// completion stream: every Release feeds an observation window, and
// each closed window nudges the class partition — a slot toward the
// protected class while its percentile target is violated, a slot
// back once it is met with margin. The gate needs a finite limit of at
// least 2 (a partition has two sides) and percentile sampling enabled
// (Config.PercentileSamples — the loop steers on the class
// percentile). Enabling twice replaces the previous loop and restarts
// the metrics window. SLO tuning and auto-tune are mutually
// exclusive — both close observation windows by resetting the gate's
// one metrics window — so move the limit with SetLimit (the SLO loop
// re-spreads it at its next reaction) or alternate the loops.
func (g *Gate) EnableSLOTune(tc SLOTuneConfig) error {
	g.tuneMu.Lock()
	defer g.tuneMu.Unlock()
	if g.fe.MPL() < 2 {
		return fmt.Errorf("gate: SLO tuning needs a limit >= 2 to partition (have %d); set Config.Limit or SetLimit first", g.fe.MPL())
	}
	if !g.fe.PercentilesEnabled() {
		return fmt.Errorf("gate: SLO tuning steers on class percentiles; set Config.PercentileSamples")
	}
	if g.ctl.Load() != nil {
		return fmt.Errorf("gate: SLO tuning and auto-tune share the metrics window; DisableAutoTune first")
	}
	if g.fair.Load() != nil {
		return fmt.Errorf("gate: SLO tuning and fairness share the metrics window; DisableFairness first")
	}
	ctl, err := controller.NewSLO(g.clock, g.fe, controller.SLOConfig{
		Target: controller.SLOTarget{
			Class:      core.Class(tc.Class),
			Percentile: tc.Percentile,
			Target:     tc.Target,
		},
		OtherClass:      core.Class(tc.OtherClass),
		MinObservations: tc.MinObservations,
		Margin:          tc.Margin,
	})
	if err != nil {
		return err
	}
	g.slo.Store(&sloTuner{ctl: ctl})
	return nil
}

// DisableSLOTune detaches the SLO loop; the class partition stays
// where it left it (clear it with SetClassLimits(nil)).
func (g *Gate) DisableSLOTune() {
	g.tuneMu.Lock()
	defer g.tuneMu.Unlock()
	g.slo.Store(nil)
}

// SLOTuneStatus reports the SLO loop's state (zero value when SLO
// tuning was never enabled).
func (g *Gate) SLOTuneStatus() SLOTuneStatus {
	s := g.slo.Load()
	if s == nil {
		return SLOTuneStatus{}
	}
	slo, other := s.ctl.Limits()
	st := SLOTuneStatus{
		Enabled:    true,
		SLOLimit:   slo,
		OtherLimit: other,
		Iterations: s.ctl.Iterations(),
	}
	if h := s.ctl.History(); len(h) > 0 {
		st.LastMeasured = h[len(h)-1].Measured
	}
	return st
}

// TuneStatus reports the controller's progress (zero value when
// auto-tuning was never enabled).
func (g *Gate) TuneStatus() TuneStatus {
	t := g.ctl.Load()
	if t == nil {
		return TuneStatus{Limit: g.fe.MPL()}
	}
	return TuneStatus{
		Enabled:    true,
		Converged:  t.ctl.Converged(),
		Iterations: t.ctl.Iterations(),
		Limit:      g.fe.MPL(),
	}
}

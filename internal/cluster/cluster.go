package cluster

import (
	"fmt"

	"extsched/internal/core"
	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/sim"
)

// ShardState is a shard's lifecycle state. New work routes only to Up
// shards; a Draining shard finishes what it holds and then goes Down;
// a Down shard holds nothing (its outstanding work was failed over or
// lost when it went down) and receives nothing until recovered.
type ShardState uint8

const (
	// ShardUp is the normal serving state.
	ShardUp ShardState = iota
	// ShardDraining takes no new work but keeps serving its queue and
	// in-flight transactions; it transitions to ShardDown on its own
	// once empty (graceful removal).
	ShardDraining
	// ShardDown is a crashed or removed shard: unavailable, empty, and
	// skipped by every dispatch decision.
	ShardDown
)

// String names the state for reports ("up", "draining", "down").
func (s ShardState) String() string {
	switch s {
	case ShardUp:
		return "up"
	case ShardDraining:
		return "draining"
	case ShardDown:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// RecoveryPolicy configures what happens to the in-flight and queued
// work a shard holds when it fails. The zero value sheds: the work is
// lost, counted in Failed, and each txn's submitter callback fires with
// Item.WasFailed reporting true (so closed-loop clients cycle).
type RecoveryPolicy struct {
	// Resubmit, when true, re-routes failed work to surviving shards
	// through the normal dispatch path after a capped exponential
	// backoff, instead of shedding it.
	Resubmit bool
	// RetryBudget is the maximum number of recovery attempts per
	// logical transaction (must be >= 1 when Resubmit is set); a txn
	// whose budget is exhausted is shed terminally.
	RetryBudget int
	// BackoffBase and BackoffCap bound the backoff schedule: attempt k
	// waits min(BackoffCap, BackoffBase·2^(k−1)) seconds, scaled by a
	// deterministic jitter factor in [0.5, 1). Defaults 0.05 s / 2 s.
	BackoffBase, BackoffCap float64
	// Seed drives the jitter stream (deterministic given the seed and
	// the failure event order, so churn runs rerun bit-identically).
	Seed uint64
}

func (rp RecoveryPolicy) withDefaults() RecoveryPolicy {
	if rp.BackoffBase <= 0 {
		rp.BackoffBase = 0.05
	}
	if rp.BackoffCap <= 0 {
		rp.BackoffCap = 2
	}
	return rp
}

// ShardSeed derives shard i's backend seed from the run seed: distinct
// per shard (replicas must not execute in RNG lockstep) and stable
// across runs. It is THE seed derivation — extsched stack assembly and
// the experiment drivers both use it, so figure runs and API runs with
// the same seed build identical fleets.
func ShardSeed(seed uint64, i int) uint64 {
	return seed ^ (0x9e3779b97f4a7c15 * uint64(i+1))
}

// Shard is one dispatch target: an MPL-gated frontend over its own
// simulated backend. Speed is the shard's relative CPU speed (1 =
// nominal); the dispatcher keeps it in sync with the DB's CPUSpeed so
// work-aware policies can normalize. Eng, when set, is the shard's own
// member engine for conservative-parallel runs (the FE and DB must
// have been built on it); nil for sequential runs, where every
// component shares the coordinator engine.
type Shard struct {
	FE    *dbfe.Frontend
	DB    *dbms.DB
	Speed float64
	Eng   *sim.Engine
}

// Dispatcher fans one admitted transaction stream out across shards.
// It satisfies workload.Sink (drivers submit to it exactly as they
// would to a single frontend) and controller.Gate (the feedback
// controller tunes the cluster-wide MPL through it), which is what
// lets every existing scenario construct — phases, events, AutoTune —
// run unchanged against a fleet.
//
// Like the rest of the simulator it is single-goroutine: all entry
// points run inside the engine's event loop, and every routing
// decision is a pure function of simulation state plus the policy's
// own deterministic state, so multi-shard runs rerun bit-identically.
//
// # Lifecycle and faults
//
// Each shard carries a ShardState. Dispatch policies only ever see the
// Up shards (the load view handed to Pick is filtered, and the picked
// index mapped back), so no transaction is ever routed to a draining
// or down shard. FailShard crashes a shard: its queued and in-flight
// work is withdrawn (counted in the gate's Failed counters) and handed
// to the RecoveryPolicy — resubmitted to survivors with deterministic
// capped exponential backoff and a per-txn retry budget, or shed
// terminally (the submitter's callback fires either way, so
// closed-loop clients never stall). RemoveShard drains gracefully;
// AddShard grows the fleet mid-run; RecoverShard returns a down shard
// to service. Every lifecycle change re-splits the requested
// cluster-wide MPL across the Up shards (SplitMPL), so survivors
// absorb a dead shard's capacity and return it on recovery.
type Dispatcher struct {
	shards []Shard
	policy Policy
	// state tracks each shard's lifecycle (index-parallel to shards;
	// slots are never deleted, so shard indices are stable for the
	// lifetime of the dispatcher — a removed shard's index goes Down
	// and stays).
	state []ShardState
	// eng schedules recovery backoff timers and provides the clock for
	// availability accounting; set by SetRecovery, nil until then
	// (lifecycle operations require it).
	eng *sim.Engine
	rec RecoveryPolicy
	rng *sim.RNG
	// upSince / upAccum track per-shard availability: upAccum is the
	// accumulated up-seconds through the last transition, upSince the
	// instant the shard last became (or stayed) non-Down. Draining
	// counts as up — the shard is still serving.
	upSince, upAccum []float64
	// doneFn caches one completion wrapper per shard (the wrapper only
	// needs the shard index, so submissions allocate no closure).
	doneFn []func(*dbfe.Txn)
	// upIdx caches the Up shards' indices in ascending order; upDirty
	// marks it stale. Lifecycle transitions are rare and dispatch is
	// per-transaction, so the cache turns the eligibility filter from
	// O(N) per pick into O(N) per transition — the prerequisite for
	// sampled policies' O(d) routing at N>=1000.
	upIdx   []int
	upDirty bool
	// loadAtFn is the cached method value handed to IndexedPolicy picks
	// (bound once so the per-transaction path allocates nothing).
	loadAtFn func(int) Load
	// pendingRetry counts txns sitting in a recovery backoff — failed
	// off a dead shard, not yet resubmitted. They are part of the
	// fleet's conservation balance: accepted == completed + inside +
	// queued + pendingRetry + canceled + shed + failed.
	pendingRetry int
	// failedTxns counts terminal losses (shed-mode crash losses, retry
	// budgets exhausted, submissions that found no live shard);
	// resubmitted counts logical txns resubmitted at least once;
	// retries counts resubmission events.
	failedTxns, resubmitted, retries uint64
	// mpl is the cluster-wide limit last requested via SetMPL (or
	// derived from the shard gates at construction). MPL() reports it
	// as-is so a feedback controller always observes its own
	// actuations; the EFFECTIVE fleet cap is max(mpl, len(shards))
	// when mpl > 0, because every shard keeps at least one slot (see
	// SplitMPL).
	mpl int
	// work tracks outstanding size-hint seconds per shard (routed and
	// not yet completed, at unit speed) for the least-work policy.
	work []float64
	// scratch is the reusable per-pick load view (the dispatcher is
	// single-goroutine, like the engine it runs under), keeping the
	// per-transaction routing path allocation-free.
	scratch []Load
	// routed counts arrivals routed to each shard (drops excluded).
	routed []uint64
	// OnComplete, if set, observes every completion with the index of
	// the shard that executed it. Set before traffic flows.
	OnComplete func(shard int, t *dbfe.Txn)
	// OnDrop, if set, observes admission-control rejections (shard
	// queue limits) with the shard that rejected.
	OnDrop func(shard int, t *dbfe.Txn)
	// par holds the conservative-parallel state; nil in sequential
	// mode (see EnableParallel).
	par *parState
}

// NewDispatcher builds a dispatcher over shards (at least one) with
// the given policy (nil = round-robin). The dispatcher takes ownership
// of each shard frontend's OnComplete/OnDrop hooks; zero or negative
// shard speeds default to 1.
func NewDispatcher(policy Policy, shards []Shard) (*Dispatcher, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: dispatcher needs at least one shard")
	}
	if policy == nil {
		policy = &RoundRobin{}
	}
	d := &Dispatcher{
		shards:  append([]Shard(nil), shards...),
		policy:  policy,
		state:   make([]ShardState, len(shards)),
		work:    make([]float64, len(shards)),
		scratch: make([]Load, len(shards)),
		routed:  make([]uint64, len(shards)),
		upSince: make([]float64, len(shards)),
		upAccum: make([]float64, len(shards)),
		doneFn:  make([]func(*dbfe.Txn), len(shards)),
		upIdx:   make([]int, 0, len(shards)),
		upDirty: true,
	}
	d.loadAtFn = d.loadAtUp
	for i := range d.shards {
		if d.shards[i].FE == nil {
			return nil, fmt.Errorf("cluster: shard %d has no frontend", i)
		}
		if d.shards[i].Speed <= 0 {
			d.shards[i].Speed = 1
		}
		d.installHooks(i)
	}
	// Derive the initial cluster-wide limit from the shard gates.
	for i := range d.shards {
		m := d.shards[i].FE.MPL()
		if m == 0 {
			d.mpl = 0
			break
		}
		d.mpl += m
	}
	return d, nil
}

// installHooks takes ownership of shard i's frontend hooks and builds
// its per-shard completion wrapper. In parallel mode the hooks buffer
// into the shard's mailbox during member windows instead of mutating
// coordinator state (see parallel.go).
func (d *Dispatcher) installHooks(i int) {
	if d.par != nil {
		d.installParHooks(i)
		return
	}
	fe := d.shards[i].FE
	d.doneFn[i] = func(t *dbfe.Txn) {
		// The work refund must land here, BEFORE the submitter's own
		// callback: a closed-loop client resubmitting from its callback
		// must see the just-freed shard's work already settled, or
		// least-work routing would be steered away from exactly the
		// shard that freed capacity.
		d.settle(i, t.Item.SizeHint)
		if t.UserCB != nil {
			t.UserCB(t)
		}
	}
	fe.OnComplete = func(t *dbfe.Txn) {
		if d.OnComplete != nil {
			d.OnComplete(i, t)
		}
		d.maybeFinishDrain(i)
	}
	fe.OnDrop = func(t *dbfe.Txn) {
		// The drop fires synchronously inside SubmitCB, after the
		// routing charge there: refund it. (The per-txn completion
		// wrapper never runs for a dropped txn.)
		d.settle(i, t.Item.SizeHint)
		d.routed[i]--
		if d.OnDrop != nil {
			d.OnDrop(i, t)
		}
	}
	fe.OnShed = func(t *dbfe.Txn) {
		// A shed can be what empties a draining shard.
		d.maybeFinishDrain(i)
	}
}

// settle refunds a shard's outstanding-work charge.
func (d *Dispatcher) settle(i int, size float64) {
	d.work[i] -= size
	if d.work[i] < 0 {
		d.work[i] = 0
	}
}

// NumShards returns the shard count.
func (d *Dispatcher) NumShards() int { return len(d.shards) }

// Shards returns a copy of the shard descriptors.
func (d *Dispatcher) Shards() []Shard { return append([]Shard(nil), d.shards...) }

// PolicyName returns the active dispatch policy's name.
func (d *Dispatcher) PolicyName() string { return d.policy.Name() }

// SetPolicy switches the dispatch policy mid-run (scenario SetDispatch
// events). nil resets to round-robin.
func (d *Dispatcher) SetPolicy(p Policy) {
	if p == nil {
		p = &RoundRobin{}
	}
	d.policy = p
}

// SetSpeed changes shard i's relative CPU speed: the shard's DB slows
// or recovers for CPU bursts starting after the call, and work-aware
// policies renormalize immediately. Speed models degradation (a shard
// limping at 0.25x), not failure — an outright crash is FailShard,
// which withdraws the shard's work and hands it to the recovery
// policy. Speed must stay positive; a zero-speed shard would strand
// admitted work forever.
func (d *Dispatcher) SetSpeed(i int, speed float64) error {
	if i < 0 || i >= len(d.shards) {
		return fmt.Errorf("cluster: shard %d out of range [0,%d)", i, len(d.shards))
	}
	if speed <= 0 {
		return fmt.Errorf("cluster: shard speed %v must be positive", speed)
	}
	d.shards[i].Speed = speed
	if d.shards[i].DB != nil {
		d.shards[i].DB.SetCPUSpeed(speed)
	}
	return nil
}

// loadsInto fills the reusable scratch view for one pick.
func (d *Dispatcher) loadsInto() []Load {
	loads := d.scratch[:len(d.shards)]
	for i := range d.shards {
		fe := d.shards[i].FE
		loads[i] = Load{
			Backlog: fe.QueueLen() + fe.Inside(),
			Work:    d.work[i],
			Speed:   d.shards[i].Speed,
		}
	}
	return loads
}

// Loads snapshots the per-shard load views a dispatch decision sees.
func (d *Dispatcher) Loads() []Load {
	return append([]Load(nil), d.loadsInto()...)
}

// Routed returns the cumulative arrivals routed to each shard.
func (d *Dispatcher) Routed() []uint64 { return append([]uint64(nil), d.routed...) }

// Submit routes a transaction to a shard chosen by the policy.
func (d *Dispatcher) Submit(p dbms.TxnProfile) *dbfe.Txn {
	return d.SubmitCB(p, nil)
}

// SubmitCB is Submit with a per-transaction completion callback. The
// routing decision is made at submission time from the Up shards'
// current loads (draining and down shards are skipped); under a shard
// queue limit the transaction may still be dropped by the chosen shard
// (counted there, reported to OnDrop — admission control is per shard,
// only crashes re-route). When no shard is Up the txn falls back to
// the lowest-index draining shard; when the whole fleet is down it
// fails terminally: the callback fires with Item.WasFailed true and
// the loss is counted in Failed.
func (d *Dispatcher) SubmitCB(p dbms.TxnProfile, cb func(*dbfe.Txn)) *dbfe.Txn {
	i := d.pickShard(core.Class(p.Class), p.EstimatedDemand)
	if i < 0 {
		t := &dbfe.Txn{Profile: p, UserCB: cb}
		d.failTerminally(t)
		return t
	}
	return d.submitTo(i, p, cb)
}

// submitTo routes one txn to shard i, charging the routing accounting.
func (d *Dispatcher) submitTo(i int, p dbms.TxnProfile, cb func(*dbfe.Txn)) *dbfe.Txn {
	d.work[i] += p.EstimatedDemand
	d.routed[i]++
	if d.par != nil && d.par.inWindow {
		// Parallel window: the member engine's clock may already be
		// ahead of this instant mid-window, so the submission cannot
		// touch the member frontend directly. Build the txn now (the
		// caller needs it synchronously) and inject its delivery as a
		// member event at the coordinator's current time — legal
		// because every coordinator event fires exactly on the window
		// bound, where all member clocks stand.
		t := d.shards[i].FE.NewTxn(p, d.doneFn[i])
		t.UserCB = cb
		d.par.inbox[i] = append(d.par.inbox[i], t)
		d.shards[i].Eng.At(d.par.coord.Now(), d.par.deliver[i])
		return t
	}
	t := d.shards[i].FE.SubmitCB(p, d.doneFn[i])
	// Safe after SubmitCB: the txn's own callbacks cannot have fired
	// yet (completions are asynchronous engine events, and a fresh
	// submission can never be past its own admission deadline).
	t.UserCB = cb
	return t
}

// upShards returns the cached ascending list of Up shard indices,
// rebuilding it after a lifecycle transition marked it stale.
func (d *Dispatcher) upShards() []int {
	if d.upDirty {
		d.upIdx = d.upIdx[:0]
		for i := range d.shards {
			if d.state[i] == ShardUp {
				d.upIdx = append(d.upIdx, i)
			}
		}
		d.upDirty = false
	}
	return d.upIdx
}

// UpCount returns the number of Up shards — the fleet size an
// autoscaler reasons about (draining and down shards are capacity
// already leaving or gone).
func (d *Dispatcher) UpCount() int { return len(d.upShards()) }

// loadAtUp reads eligible member j's load (j indexes upIdx, the
// filtered view an IndexedPolicy picks over).
func (d *Dispatcher) loadAtUp(j int) Load {
	i := d.upIdx[j]
	fe := d.shards[i].FE
	return Load{
		Backlog: fe.QueueLen() + fe.Inside(),
		Work:    d.work[i],
		Speed:   d.shards[i].Speed,
	}
}

// pickShard asks the policy for a shard, showing it only the eligible
// (Up) shards and mapping the pick back to a real index. With no Up
// shard it falls back to the lowest-index Draining shard (still
// serving); -1 means the whole fleet is down.
//
// Policies implementing IndexedPolicy (the sampled jsq-d/lwl-d) take
// the O(d) path: no load view is materialized, only the d sampled
// members are read. Full-scan policies get the identical filtered
// []Load they always did, so existing runs stay bit-identical.
func (d *Dispatcher) pickShard(class core.Class, size float64) int {
	up := d.upShards()
	if len(up) == 0 {
		for i := range d.shards {
			if d.state[i] == ShardDraining {
				return i
			}
		}
		return -1
	}
	if ip, ok := d.policy.(IndexedPolicy); ok {
		j := ip.PickIndexed(len(up), d.loadAtFn, class, size)
		if j < 0 || j >= len(up) {
			panic(fmt.Sprintf("cluster: policy %s picked member %d of %d", d.policy.Name(), j, len(up)))
		}
		return up[j]
	}
	loads := d.scratch[:0]
	for _, i := range up {
		fe := d.shards[i].FE
		loads = append(loads, Load{
			Backlog: fe.QueueLen() + fe.Inside(),
			Work:    d.work[i],
			Speed:   d.shards[i].Speed,
		})
	}
	j := d.policy.Pick(loads, class, size)
	if j < 0 || j >= len(up) {
		panic(fmt.Sprintf("cluster: policy %s picked member %d of %d", d.policy.Name(), j, len(up)))
	}
	return up[j]
}

// Pick returns the shard the active policy would route a transaction
// of the given class and size hint to right now, WITHOUT submitting
// anything (-1 = whole fleet down). It is the dry-run entry the
// dispatch benchmarks use to measure routing cost in isolation; note
// that stateful policies (round-robin's cursor, sampled policies' RNG
// stream) still advance.
func (d *Dispatcher) Pick(class core.Class, size float64) int {
	return d.pickShard(class, size)
}

// failTerminally accounts and delivers a terminal loss: work the
// recovery policy gave up on (or that had no live shard to go to).
func (d *Dispatcher) failTerminally(t *dbfe.Txn) {
	t.Item.MarkFailed()
	d.failedTxns++
	if t.UserCB != nil {
		t.UserCB(t)
	}
}

// SplitMPL distributes a cluster-wide MPL across n shards: an even
// share each, the remainder to the lowest indices, and at least 1 per
// shard when total > 0 (an MPL of 0 means unlimited, which a nonzero
// total must never silently grant — so the effective total is
// max(total, n)). total <= 0 returns all zeros (every shard
// unlimited).
func SplitMPL(total, n int) []int {
	out := make([]int, n)
	if total <= 0 {
		return out
	}
	base, rem := total/n, total%n
	for i := range out {
		m := base
		if i < rem {
			m++
		}
		if m < 1 {
			m = 1
		}
		out[i] = m
	}
	return out
}

// MPL returns the cluster-wide limit as last requested (0 =
// unlimited). It deliberately reports the REQUESTED value, not the
// sum of shard limits: SplitMPL floors every shard at one slot, so a
// request below the shard count is physically clamped to it — but a
// feedback controller probing downward must still observe its own
// actuation, or it would livelock re-issuing the same decrease
// forever.
func (d *Dispatcher) MPL() int { return d.mpl }

// SetMPL distributes a cluster-wide limit across the Up shards per
// SplitMPL (each shard keeps at least one slot, so the effective
// fleet cap is max(total, up-shards) when total > 0). This is the
// feedback controller's actuator: the loop tunes one number and the
// dispatcher keeps the fleet balanced. Draining shards keep the limit
// they had (they need slots to finish draining); down shards hold no
// work, so their gate value is irrelevant until recovery re-splits.
func (d *Dispatcher) SetMPL(total int) {
	if total < 0 {
		total = 0
	}
	d.mpl = total
	d.resplit()
}

// resplit redistributes the requested cluster-wide MPL across the Up
// shards — called on SetMPL and on every lifecycle transition, which
// is how survivors absorb a dead shard's share and hand it back on
// recovery.
func (d *Dispatcher) resplit() {
	idx := d.upShards()
	if len(idx) == 0 {
		return
	}
	for k, m := range SplitMPL(d.mpl, len(idx)) {
		d.shards[idx[k]].FE.SetMPL(m)
	}
}

// QueueLen returns the total external queue length across shards.
func (d *Dispatcher) QueueLen() int {
	n := 0
	for i := range d.shards {
		n += d.shards[i].FE.QueueLen()
	}
	return n
}

// Inside returns the total number of admitted, uncompleted items.
func (d *Dispatcher) Inside() int {
	n := 0
	for i := range d.shards {
		n += d.shards[i].FE.Inside()
	}
	return n
}

// Dropped returns the total admission-control rejections across shards.
func (d *Dispatcher) Dropped() uint64 {
	var n uint64
	for i := range d.shards {
		n += d.shards[i].FE.Dropped()
	}
	return n
}

// Canceled returns the total withdrawn submissions across shards.
func (d *Dispatcher) Canceled() uint64 {
	var n uint64
	for i := range d.shards {
		n += d.shards[i].FE.Canceled()
	}
	return n
}

// SetAdmitDeadline sets class c's admission deadline on every shard
// (0 clears it). Deadlines are measured per shard from the routed
// transaction's arrival there.
func (d *Dispatcher) SetAdmitDeadline(c core.Class, seconds float64) {
	for i := range d.shards {
		d.shards[i].FE.SetAdmitDeadline(c, seconds)
	}
}

// Shed returns the total deadline-shed count across shards.
func (d *Dispatcher) Shed() uint64 {
	var n uint64
	for i := range d.shards {
		n += d.shards[i].FE.Shed()
	}
	return n
}

// ShedByClass returns class c's share of the fleet's shed count.
func (d *Dispatcher) ShedByClass(c core.Class) uint64 {
	var n uint64
	for i := range d.shards {
		n += d.shards[i].FE.ShedByClass(c)
	}
	return n
}

// Metrics aggregates the shards' metrics windows into one cluster-wide
// view (parallel Welford merges; the window length is shard 0's, since
// all shards share one clock and reset together).
func (d *Dispatcher) Metrics() core.Metrics {
	var out core.Metrics
	windows := make([][]core.ClassMetric, 0, len(d.shards))
	for i := range d.shards {
		m := d.shards[i].FE.Metrics()
		out.Completed += m.Completed
		out.Restarts += m.Restarts
		out.All.Merge(&m.All)
		out.High.Merge(&m.High)
		out.Low.Merge(&m.Low)
		out.Inside.Merge(&m.Inside)
		out.ExtWait.Merge(&m.ExtWait)
		if len(m.Classes) > 0 {
			windows = append(windows, m.Classes)
		}
		if i == 0 {
			out = out.WithWindow(m.Window())
		}
	}
	out.Classes = core.MergeClassMetrics(windows...)
	return out
}

// ShedClasses aggregates the shards' per-class shed counts (nil when
// nothing was shed anywhere).
func (d *Dispatcher) ShedClasses() map[core.Class]uint64 {
	var out map[core.Class]uint64
	for i := range d.shards {
		for c, n := range d.shards[i].FE.ShedClasses() {
			if out == nil {
				out = make(map[core.Class]uint64)
			}
			out[c] += n
		}
	}
	return out
}

// ResetMetrics opens a fresh metrics window on every shard.
func (d *Dispatcher) ResetMetrics() {
	for i := range d.shards {
		d.shards[i].FE.ResetMetrics()
	}
}

// SetWFQWeights reconfigures every shard's WFQ policy weights; false
// when the shards' queue policy is not WFQ.
func (d *Dispatcher) SetWFQWeights(weights map[core.Class]float64) bool {
	ok := true
	for i := range d.shards {
		ok = d.shards[i].FE.SetWFQWeights(weights) && ok
	}
	return ok
}

// SetRecovery arms the fault model: eng schedules recovery backoff
// timers and provides the availability clock; rp decides what happens
// to a dead shard's work. It must be called (once, before traffic
// flows) for the lifecycle operations — FailShard, RecoverShard,
// AddShard, RemoveShard — to be usable.
func (d *Dispatcher) SetRecovery(eng *sim.Engine, rp RecoveryPolicy) error {
	if eng == nil {
		return fmt.Errorf("cluster: SetRecovery needs an engine")
	}
	if rp.Resubmit && rp.RetryBudget < 1 {
		return fmt.Errorf("cluster: resubmit recovery needs a retry budget >= 1 (got %d)", rp.RetryBudget)
	}
	rp = rp.withDefaults()
	if rp.BackoffBase > rp.BackoffCap {
		return fmt.Errorf("cluster: backoff base %v exceeds cap %v", rp.BackoffBase, rp.BackoffCap)
	}
	d.eng = eng
	d.rec = rp
	d.rng = sim.NewRNG(rp.Seed, 101)
	now := eng.Now()
	for i := range d.upSince {
		d.upSince[i] = now
	}
	return nil
}

// RecoveryEnabled reports whether SetRecovery has armed the fault
// model.
func (d *Dispatcher) RecoveryEnabled() bool { return d.eng != nil }

// State returns shard i's lifecycle state (ShardDown for out-of-range
// indices, which only ever name removed history in callers).
func (d *Dispatcher) State(i int) ShardState {
	if i < 0 || i >= len(d.state) {
		return ShardDown
	}
	return d.state[i]
}

// States returns a copy of every shard's lifecycle state.
func (d *Dispatcher) States() []ShardState { return append([]ShardState(nil), d.state...) }

// UpSeconds returns shard i's cumulative up time (serving or draining)
// since SetRecovery, in clock seconds. Windowed availability is a
// delta of this over the window length.
func (d *Dispatcher) UpSeconds(i int) float64 {
	if d.eng == nil || i < 0 || i >= len(d.shards) {
		return 0
	}
	up := d.upAccum[i]
	if d.state[i] != ShardDown {
		up += d.eng.Now() - d.upSince[i]
	}
	return up
}

// Failed returns the terminal losses: txns shed by the recovery policy
// (crash with shed mode, retry budget exhausted) or submitted while
// the whole fleet was down.
func (d *Dispatcher) Failed() uint64 { return d.failedTxns }

// Resubmitted returns the number of logical txns resubmitted at least
// once after a shard failure.
func (d *Dispatcher) Resubmitted() uint64 { return d.resubmitted }

// Retries returns the total resubmission events (a txn bounced through
// two failures counts twice).
func (d *Dispatcher) Retries() uint64 { return d.retries }

// PendingRetries returns the txns currently waiting out a recovery
// backoff — failed off a dead shard and not yet resubmitted.
func (d *Dispatcher) PendingRetries() int { return d.pendingRetry }

// lifecycleReady guards the lifecycle entry points.
func (d *Dispatcher) lifecycleReady(i int) error {
	if d.eng == nil {
		return fmt.Errorf("cluster: lifecycle operations need SetRecovery first")
	}
	if i < 0 || i >= len(d.shards) {
		return fmt.Errorf("cluster: shard %d out of range [0,%d)", i, len(d.shards))
	}
	return nil
}

// markDown transitions shard i to Down, closing its availability
// accrual.
func (d *Dispatcher) markDown(i int) {
	if d.state[i] == ShardDown {
		return
	}
	d.upAccum[i] += d.eng.Now() - d.upSince[i]
	d.state[i] = ShardDown
	d.upDirty = true
}

// FailShard crashes shard i: it goes Down immediately, the remaining
// Up shards absorb its MPL share, and every transaction it held —
// queued or in flight — is withdrawn and handed to the recovery
// policy. Failing an already-down shard is a no-op.
func (d *Dispatcher) FailShard(i int) error {
	if err := d.lifecycleReady(i); err != nil {
		return err
	}
	if d.state[i] == ShardDown {
		return nil
	}
	d.markDown(i)
	d.resplit()
	failed := d.shards[i].FE.Fail()
	for _, t := range failed {
		// The routing charge for withdrawn work must be refunded here:
		// the completion wrapper that normally settles it will never
		// run for a failed txn.
		d.settle(i, t.Item.SizeHint)
	}
	for _, t := range failed {
		d.disposeFailed(t)
	}
	return nil
}

// disposeFailed routes one withdrawn txn per the recovery policy:
// resubmit with backoff while budget remains, terminal loss otherwise.
func (d *Dispatcher) disposeFailed(t *dbfe.Txn) {
	if !d.rec.Resubmit || t.Attempts >= d.rec.RetryBudget {
		d.failTerminally(t)
		return
	}
	d.scheduleResubmit(t)
}

// scheduleResubmit arms t's next recovery attempt after a capped
// exponential backoff with deterministic jitter. The attempt is
// consumed when the timer fires.
func (d *Dispatcher) scheduleResubmit(t *dbfe.Txn) {
	k := t.Attempts + 1 // 1-indexed attempt about to be made
	delay := d.rec.BackoffBase
	for j := 1; j < k; j++ {
		delay *= 2
		if delay >= d.rec.BackoffCap {
			delay = d.rec.BackoffCap
			break
		}
	}
	if delay > d.rec.BackoffCap {
		delay = d.rec.BackoffCap
	}
	delay *= 0.5 + 0.5*d.rng.Float64()
	d.pendingRetry++
	d.eng.After(delay, func() { d.fireResubmit(t) })
}

// fireResubmit performs one recovery attempt: resubmit through the
// normal dispatch path (original arrival preserved, so the reported
// response time spans the outage). If no shard can take the work right
// now, the attempt is still consumed and the next backoff armed —
// until the budget runs out.
func (d *Dispatcher) fireResubmit(old *dbfe.Txn) {
	d.pendingRetry--
	i := d.pickShard(core.Class(old.Profile.Class), old.Profile.EstimatedDemand)
	if i < 0 {
		old.Attempts++
		if old.Attempts >= d.rec.RetryBudget {
			d.failTerminally(old)
			return
		}
		d.scheduleResubmit(old)
		return
	}
	if old.Attempts == 0 {
		d.resubmitted++
	}
	d.retries++
	t := d.submitTo(i, old.Profile, old.UserCB)
	t.Attempts = old.Attempts + 1
	// Preserve the original arrival so the txn's reported latency spans
	// the outage (safe post-submit: completions are asynchronous). In a
	// parallel window the actual frontend submission is deferred to the
	// member engine, which would re-stamp the arrival on delivery — so
	// the override rides on the txn instead.
	if d.par != nil && d.par.inWindow {
		t.PresetArrival(old.Item.Arrival)
	} else {
		t.Item.Arrival = old.Item.Arrival
	}
}

// RecoverShard returns a down shard to service (it rejoins the
// dispatch set and takes back its MPL share) or cancels a drain in
// progress. Recovering an Up shard is a no-op.
func (d *Dispatcher) RecoverShard(i int) error {
	if err := d.lifecycleReady(i); err != nil {
		return err
	}
	switch d.state[i] {
	case ShardUp:
		return nil
	case ShardDown:
		d.upSince[i] = d.eng.Now()
	}
	d.state[i] = ShardUp
	d.upDirty = true
	d.resplit()
	return nil
}

// RemoveShard drains shard i out of the fleet: no new work routes to
// it, its MPL share moves to the remaining Up shards now, and once its
// queue and in-flight work finish it goes Down on its own. Removing a
// draining shard is a no-op; removing a down shard is an error (it
// holds nothing to drain).
func (d *Dispatcher) RemoveShard(i int) error {
	if err := d.lifecycleReady(i); err != nil {
		return err
	}
	switch d.state[i] {
	case ShardDraining:
		return nil
	case ShardDown:
		return fmt.Errorf("cluster: shard %d is down, nothing to drain", i)
	}
	d.state[i] = ShardDraining
	d.upDirty = true
	d.resplit()
	d.maybeFinishDrain(i)
	return nil
}

// maybeFinishDrain completes a graceful removal once the draining
// shard is empty.
func (d *Dispatcher) maybeFinishDrain(i int) {
	if d.state[i] != ShardDraining {
		return
	}
	fe := d.shards[i].FE
	if fe.Inside() == 0 && fe.QueueLen() == 0 {
		d.markDown(i)
	}
}

// AddShard grows the fleet mid-run: the shard joins Up, the requested
// cluster-wide MPL re-splits to include it, and dispatch sees it from
// the next pick on. Returns the new shard's index. Requires
// SetRecovery (the availability clock must be armed).
func (d *Dispatcher) AddShard(s Shard) (int, error) {
	if d.eng == nil {
		return 0, fmt.Errorf("cluster: lifecycle operations need SetRecovery first")
	}
	if s.FE == nil {
		return 0, fmt.Errorf("cluster: new shard has no frontend")
	}
	if s.Speed <= 0 {
		s.Speed = 1
	}
	if d.par != nil && s.Eng == nil {
		return 0, fmt.Errorf("cluster: parallel dispatcher needs the new shard built on its own engine")
	}
	i := len(d.shards)
	d.shards = append(d.shards, s)
	d.state = append(d.state, ShardUp)
	d.work = append(d.work, 0)
	d.scratch = append(d.scratch, Load{})
	d.routed = append(d.routed, 0)
	d.upSince = append(d.upSince, d.eng.Now())
	d.upAccum = append(d.upAccum, 0)
	d.doneFn = append(d.doneFn, nil)
	d.upDirty = true
	if d.par != nil {
		d.par.grow(d, i)
	}
	d.installHooks(i)
	d.resplit()
	return i, nil
}

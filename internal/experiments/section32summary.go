package experiments

import (
	"fmt"

	"extsched/internal/workload"
)

// Section32Summary reproduces the paper's §3.2 headline numbers in one
// table: the minimum MPL keeping open-system mean response time within
// tolerance of the no-MPL system, for a TPC-C-like setup (expected:
// insensitive once MPL >= ~4) and a TPC-W-like setup (expected: ~8 at
// 70% utilization, ~15 at 90%).
func Section32Summary(tolerance float64, opts RunOpts) (*Figure, error) {
	if tolerance <= 0 {
		tolerance = 0.1
	}
	f := &Figure{
		ID:    "sec3.2-summary",
		Title: fmt.Sprintf("Min MPL for mean RT within %.0f%% of no-MPL (open system)", tolerance*100),
	}
	mpls := []int{1, 2, 3, 4, 6, 8, 10, 15, 20, 30}
	type cell struct {
		setupID int
		util    float64
	}
	grid := []cell{
		{1, 0.7}, {1, 0.9}, // TPC-C-like
		{3, 0.7}, {3, 0.9}, // TPC-W-like
	}
	s := Series{Name: "min MPL"}
	for i, c := range grid {
		m, noMPL, err := minMPLForRT(c.setupID, c.util, tolerance, mpls, opts)
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, float64(i+1))
		s.Y = append(s.Y, float64(m))
		setup, _ := workload.SetupByID(c.setupID)
		f.Notes = append(f.Notes, fmt.Sprintf("x=%d: %s at %.0f%% utilization → min MPL %d (no-MPL RT %.3fs)",
			i+1, setup.Workload.Name, c.util*100, m, noMPL))
	}
	f.Series = []Series{s}
	f.Notes = append(f.Notes,
		"paper: TPC-C insensitive for MPL >= ~4; TPC-W needs ~8 at 70% and ~15 at 90%")
	return f, nil
}

// minMPLForRT measures the open system at each MPL (and without one)
// and returns the smallest MPL within (1+tolerance) of the no-MPL mean
// response time, plus that baseline RT. Returns the largest probed MPL
// +1 when none qualifies.
func minMPLForRT(setupID int, utilization, tolerance float64, mpls []int, opts RunOpts) (int, float64, error) {
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return 0, 0, err
	}
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, opts)
	if err != nil {
		return 0, 0, err
	}
	lambda := utilization * base.Throughput()
	noLimit, err := RunOpen(setup, 0, lambda, nil, workload.DBOptions{}, opts)
	if err != nil {
		return 0, 0, err
	}
	target := (1 + tolerance) * noLimit.MeanRT()
	for _, m := range mpls {
		r, err := RunOpen(setup, m, lambda, nil, workload.DBOptions{}, opts)
		if err != nil {
			return 0, 0, err
		}
		if r.MeanRT() <= target {
			return m, noLimit.MeanRT(), nil
		}
	}
	return mpls[len(mpls)-1] + 1, noLimit.MeanRT(), nil
}

package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"extsched/internal/sim"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestIdentityMul(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	p := m.Mul(Identity(2))
	if MaxAbsDiff(m, p) != 0 {
		t.Error("M·I != M")
	}
	p = Identity(2).Mul(m)
	if MaxAbsDiff(m, p) != 0 {
		t.Error("I·M != M")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(c, want) > 1e-12 {
		t.Errorf("product wrong: %v", c.Data)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	if s := a.Add(b); MaxAbsDiff(s, FromRows([][]float64{{5, 5}, {5, 5}})) > 0 {
		t.Error("Add wrong")
	}
	if d := a.Sub(a); MaxAbsDiff(d, New(2, 2)) > 0 {
		t.Error("Sub wrong")
	}
	if sc := a.Scale(2); MaxAbsDiff(sc, FromRows([][]float64{{2, 4}, {6, 8}})) > 0 {
		t.Error("Scale wrong")
	}
}

func TestInverseKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if MaxAbsDiff(inv, want) > 1e-12 {
		t.Errorf("inverse = %v, want %v", inv.Data, want.Data)
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := a.Inverse(); err == nil {
		t.Error("inverting singular matrix should error")
	}
}

func TestInverseProperty(t *testing.T) {
	// Random diagonally-dominant matrices are invertible; A·A⁻¹ ≈ I.
	g := sim.NewRNG(3, 0)
	f := func(sz uint8) bool {
		n := 1 + int(sz%8)
		a := New(n, n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := g.Float64()*2 - 1
					a.Set(i, j, v)
					rowSum += math.Abs(v)
				}
			}
			a.Set(i, i, rowSum+1+g.Float64())
		}
		inv, err := a.Inverse()
		if err != nil {
			return false
		}
		return MaxAbsDiff(a.Mul(inv), Identity(n)) < 1e-8 &&
			MaxAbsDiff(inv.Mul(a), Identity(n)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveLinearKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-10) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	// A must be unmodified.
	if a.At(0, 0) != 2 || a.At(2, 2) != 2 {
		t.Error("SolveLinear mutated A")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the initial pivot position forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLinear(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 7, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Errorf("x = %v, want [7 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Error("singular solve should error")
	}
}

func TestSolveLinearProperty(t *testing.T) {
	g := sim.NewRNG(4, 0)
	f := func(sz uint8) bool {
		n := 1 + int(sz%10)
		a := New(n, n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := g.Float64()*2 - 1
					a.Set(i, j, v)
					rowSum += math.Abs(v)
				}
			}
			a.Set(i, i, rowSum+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = g.Float64()*10 - 5
		}
		b := a.MulVec(want)
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEqual(x[i], want[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVecMul(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := VecMul([]float64{1, 1}, m)
	if got[0] != 4 || got[1] != 6 {
		t.Errorf("VecMul = %v, want [4 6]", got)
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	New(2, 2).Mul(New(3, 3))
}

package experiments

import (
	"fmt"

	"extsched/internal/cluster"
	"extsched/internal/runner"
	"extsched/internal/workload"
	"extsched/metrics"
)

// churnOutcome is one recovery-configuration run of the churn figure.
type churnOutcome struct {
	out    runner.Outcome
	series Series
}

// ChurnFigure is the fault-tolerance headline: kill one of four equal
// shards mid-burst, bring it back later, and compare two ends of the
// recovery spectrum — resubmit+JSQ (in-flight work re-routed to
// survivors with seeded exponential backoff, queue-aware dispatch
// around the hole) against shed+rr (the dead shard's work is lost and
// blind round-robin keeps offering it a share until the dispatcher's
// eligibility filter kicks in).
//
// The figure the comparison makes: with resubmission and queue-aware
// routing the high-class p95 holds through the outage — the survivors
// absorb the re-split MPL and the retried work — while shed+rr pays
// the outage twice, in lost transactions (Failed) and in the backlog
// spike when the shard returns. Series are the windowed high-class
// mean response over time for each configuration; the run-level p95s,
// loss and retry counters land in the notes.
func ChurnFigure(setupID int, opts RunOpts) (*Figure, error) {
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults(setup)
	if opts.PercentileSamples <= 0 {
		opts.PercentileSamples = 4000
	}
	// Per-shard nominal capacity from a no-MPL closed probe.
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, opts)
	if err != nil {
		return nil, err
	}
	ref := base.Throughput()
	if ref <= 0 {
		return nil, fmt.Errorf("experiments: degenerate baseline throughput")
	}
	speeds := []float64{1, 1, 1, 1}
	capacity := float64(len(speeds)) * ref
	// Tight per-shard MPL keeps a queue standing at each shard during
	// bursts, so the kill strands real work (queued + in-flight are
	// both withdrawn) instead of landing on an idle frontend.
	const perShardMPL = 3
	mplTotal := perShardMPL * len(speeds)
	seg := opts.Measure
	victim := len(speeds) - 1
	// Each run gets a fresh Spec: phases carry event slices the runner
	// sorts (and churn-free here, but fresh keeps sweep goroutines
	// independent).
	spec := func() runner.Spec {
		idx := victim
		return runner.Spec{
			Warmup:         opts.Warmup,
			SampleInterval: seg / 8,
			Phases: []runner.Phase{
				{
					Name: "steady", Kind: runner.KindOpen,
					Lambda: 0.55 * capacity, Duration: seg,
				},
				{
					Name: "burst", Kind: runner.KindBurst,
					Lambda: 0.75 * capacity, BurstFactor: 1.5, BurstPeriod: seg / 8,
					Duration: seg,
					Events: []runner.Event{
						{At: 0.3 * seg, ShardFail: &idx},
						{At: 0.7 * seg, ShardRecover: &idx},
					},
				},
				{
					Name: "recovered", Kind: runner.KindOpen,
					Lambda: 0.55 * capacity, Duration: seg,
				},
			},
		}
	}
	configs := []struct {
		label    string
		dispatch string
		rp       cluster.RecoveryPolicy
	}{
		{"resubmit+jsq", cluster.PolicyJSQ, cluster.RecoveryPolicy{Resubmit: true, RetryBudget: 3}},
		{"shed+rr", cluster.PolicyRoundRobin, cluster.RecoveryPolicy{}},
	}
	results, err := SweepContext(opts.ctx(), len(configs), func(i int) (churnOutcome, error) {
		c := configs[i]
		st, err := buildShardedStack(setup, speeds, c.dispatch, mplTotal, workload.DBOptions{}, opts)
		if err != nil {
			return churnOutcome{}, err
		}
		st.PercentileSamples = opts.PercentileSamples
		rp := c.rp
		st.Recovery = &rp
		var o churnOutcome
		o.series = Series{Name: "high mean RT " + c.label}
		out, err := runner.Run(opts.ctx(), st, spec(), metrics.ObserverFunc(func(s metrics.Snapshot) {
			o.series.X = append(o.series.X, s.Time)
			o.series.Y = append(o.series.Y, s.HighResponse())
		}))
		if err != nil {
			return churnOutcome{}, err
		}
		o.out = out
		return o, nil
	})
	if err != nil {
		return nil, err
	}

	f := &Figure{
		ID: "churn",
		Title: fmt.Sprintf("Shard churn: shard %d of %d killed mid-burst, setup %d (resubmit+jsq vs shed+rr)",
			victim, len(speeds), setupID),
	}
	for i, c := range configs {
		r := results[i].out.Total
		f.Series = append(f.Series, results[i].series)
		f.Series = append(f.Series, Series{
			Name: "highP95 " + c.label,
			X:    []float64{0},
			Y:    []float64{r.HighP95},
		})
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%s: high p95 %.3gs, throughput %.2f tx/s, failed %d, resubmitted %d, retries %d",
			c.label, r.HighP95, r.Throughput(), r.Failed, r.Resubmitted, r.Retries))
	}
	resub, shed := results[0].out.Total, results[1].out.Total
	f.Notes = append(f.Notes,
		fmt.Sprintf("fleet capacity %.2f tx/s; shard %d down from %.3gs to %.3gs of the burst phase",
			capacity, victim, 0.3*seg, 0.7*seg),
		fmt.Sprintf("expect: resubmit+jsq holds the high-class tail (p95 %.3gs vs %.3gs) and loses no work (failed %d vs %d)",
			resub.HighP95, shed.HighP95, resub.Failed, shed.Failed))
	return f, nil
}

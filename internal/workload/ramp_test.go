package workload

import (
	"math"
	"testing"

	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/dist"
	"extsched/internal/sim"
	"extsched/internal/trace"
)

// driverRig builds an engine + tiny DBMS + frontend + generator for
// driver tests.
func driverRig(t *testing.T, mpl int, seed uint64) (*sim.Engine, *dbfe.Frontend, *Generator) {
	t.Helper()
	eng := sim.NewEngine()
	db, err := dbms.New(eng, dbms.Config{
		CPUs: 1, Disks: 1,
		LogService: dist.NewDeterministic(0),
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	fe := dbfe.New(eng, db, mpl, nil)
	gen, err := NewGenerator(WCPUInventory(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return eng, fe, gen
}

func TestRampDriverRateSchedule(t *testing.T) {
	eng, fe, gen := driverRig(t, 0, 1)
	d := NewRampDriver(eng, fe, gen, 10, 50, 100)
	d.Start()
	if got := d.Rate(0); got != 10 {
		t.Errorf("rate at start = %v, want 10", got)
	}
	if got := d.Rate(50); math.Abs(got-30) > 1e-12 {
		t.Errorf("rate at midpoint = %v, want 30", got)
	}
	if got := d.Rate(1000); got != 50 {
		t.Errorf("rate past the ramp = %v, want to hold at 50", got)
	}
}

func TestRampDriverRampsArrivalCounts(t *testing.T) {
	eng, fe, gen := driverRig(t, 0, 1)
	d := NewRampDriver(eng, fe, gen, 5, 100, 200)
	d.Start()
	eng.Run(100)
	firstHalf := d.Arrived()
	eng.Run(200)
	secondHalf := d.Arrived() - firstHalf
	d.Stop()
	// First half mean rate ≈ 28.75/s, second ≈ 76.25/s: the counts must
	// clearly reflect the ramp.
	if float64(secondHalf) < 1.5*float64(firstHalf) {
		t.Errorf("arrivals did not ramp: first half %d, second half %d", firstHalf, secondHalf)
	}
	// Totals near the integrated rate 10500 (wide tolerance for Poisson
	// noise).
	total := float64(firstHalf + secondHalf)
	if total < 0.8*10500 || total > 1.2*10500 {
		t.Errorf("total arrivals = %v, want ≈ 10500", total)
	}
}

func TestRampDriverDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		eng, fe, gen := driverRig(t, 4, 7)
		d := NewRampDriver(eng, fe, gen, 20, 80, 60)
		d.Start()
		eng.Run(60)
		d.Stop()
		return d.Arrived(), fe.Metrics().Completed
	}
	a1, c1 := run()
	a2, c2 := run()
	if a1 != a2 || c1 != c2 {
		t.Errorf("same-seed ramp runs differ: %d/%d vs %d/%d", a1, c1, a2, c2)
	}
}

func TestRampDriverStopMidRamp(t *testing.T) {
	eng, fe, gen := driverRig(t, 0, 3)
	d := NewRampDriver(eng, fe, gen, 50, 50, 10)
	d.Start()
	eng.Run(5)
	d.Stop()
	at := d.Arrived()
	eng.RunAll()
	if d.Arrived() != at {
		t.Errorf("arrivals continued after Stop: %d -> %d", at, d.Arrived())
	}
	_ = fe
}

func TestBurstDriverMeanRateAndDeterminism(t *testing.T) {
	run := func() uint64 {
		eng, fe, gen := driverRig(t, 0, 5)
		d := NewBurstDriver(eng, fe, gen, 40, 3, 5)
		d.Start()
		eng.Run(300)
		d.Stop()
		_ = fe
		return d.Arrived()
	}
	a1 := run()
	a2 := run()
	if a1 != a2 {
		t.Errorf("same-seed burst runs differ: %d vs %d", a1, a2)
	}
	// The MMPP is normalized: long-run mean rate is exactly lambda
	// (40/s) → ≈ 12000 over 300s.
	mean := 40.0 * 300
	if f := float64(a1); f < 0.7*mean || f > 1.3*mean {
		t.Errorf("burst arrivals = %v, want ≈ %v", f, mean)
	}
}

func TestBurstDriverActuallyBursts(t *testing.T) {
	eng, fe, gen := driverRig(t, 0, 11)
	d := NewBurstDriver(eng, fe, gen, 30, 4, 10)
	d.Start()
	// Sample arrivals per 5-second bucket; the on/off modulation must
	// produce both clearly-high and clearly-low buckets.
	var counts []uint64
	prev := uint64(0)
	for i := 0; i < 40; i++ {
		eng.Run(float64(i+1) * 5)
		counts = append(counts, d.Arrived()-prev)
		prev = d.Arrived()
	}
	d.Stop()
	_ = fe
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	// hi/lo rate ratio is 16; even with sojourn mixing the extremes
	// should differ by well over 2x.
	if max < 2*min+1 {
		t.Errorf("no burst structure: min bucket %d, max bucket %d", min, max)
	}
}

func TestOpenDriverPauseResume(t *testing.T) {
	eng, fe, gen := driverRig(t, 0, 9)
	d := NewOpenDriver(eng, fe, gen, 100, 0)
	d.Start()
	eng.Run(10)
	atPause := d.Arrived()
	if atPause == 0 {
		t.Fatal("no arrivals before pause")
	}
	d.Pause()
	eng.Run(20)
	if d.Arrived() != atPause {
		t.Errorf("arrivals while paused: %d -> %d", atPause, d.Arrived())
	}
	d.Resume()
	eng.Run(30)
	if d.Arrived() <= atPause {
		t.Error("no arrivals after resume")
	}
	d.Stop()
	// Pause/Resume after Stop are no-ops.
	d.Pause()
	d.Resume()
	final := d.Arrived()
	eng.RunAll()
	if d.Arrived() != final {
		t.Error("arrivals after Stop")
	}
}

func TestClosedDriverPauseResume(t *testing.T) {
	eng, fe, gen := driverRig(t, 0, 13)
	d := NewClosedDriver(eng, fe, gen, 20, nil)
	d.Start()
	eng.Run(10)
	d.Pause()
	// Let in-flight work drain fully; a paused closed system then goes
	// quiet.
	drainTo := 12.0
	for fe.Inside() > 0 && drainTo < 100 {
		eng.Run(drainTo)
		drainTo += 1
	}
	parked := fe.Metrics().Completed
	eng.Run(drainTo + 10)
	if got := fe.Metrics().Completed; got != parked {
		t.Errorf("completions while paused: %d -> %d", parked, got)
	}
	if fe.Inside() != 0 || fe.QueueLen() != 0 {
		t.Errorf("paused closed system should drain: inside %d queued %d", fe.Inside(), fe.QueueLen())
	}
	d.Resume()
	eng.Run(drainTo + 20)
	if got := fe.Metrics().Completed; got <= parked {
		t.Error("no completions after resume")
	}
	d.Stop()
}

func TestTraceDriverPausePreservesGaps(t *testing.T) {
	tr := &trace.Trace{
		Source: "hand",
		Records: []trace.Record{
			{Arrival: 0, Demand: 0.001},
			{Arrival: 1, Demand: 0.001},
			{Arrival: 2, Demand: 0.001},
			{Arrival: 3, Demand: 0.001},
		},
	}
	eng, fe := replayRig(t, 0)
	var arrivals []float64
	fe.OnComplete = func(tx *dbfe.Txn) { arrivals = append(arrivals, tx.Item.Arrival) }
	d, err := NewTraceDriver(eng, fe, tr)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	eng.Run(1.5) // records at 0 and 1 fired
	d.Pause()
	eng.Run(10) // nothing fires while paused
	if d.Started() != 2 {
		t.Fatalf("started = %d during pause, want 2", d.Started())
	}
	d.Resume()
	eng.RunAll()
	if d.Started() != 4 {
		t.Fatalf("started = %d after resume, want 4", d.Started())
	}
	// Record 2 was due at t=2, pause ended at t=10 → fires at 10; record
	// 3 keeps its 1-second gap → 11.
	want := []float64{0, 1, 10, 11}
	for i, w := range want {
		if math.Abs(arrivals[i]-w) > 1e-9 {
			t.Errorf("arrival[%d] = %v, want %v", i, arrivals[i], w)
		}
	}
	if !d.Done() {
		t.Error("driver not done after full replay")
	}
}

func TestTraceDriverDeterministic(t *testing.T) {
	run := func() (uint64, float64) {
		tr := trace.SyntheticRetailer(5000, 42)
		eng, fe := replayRig(t, 4)
		d, err := NewTraceDriver(eng, fe, tr)
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		eng.RunAll()
		m := fe.Metrics()
		return m.Completed, m.All.Mean()
	}
	c1, rt1 := run()
	c2, rt2 := run()
	if c1 != c2 || rt1 != rt2 {
		t.Errorf("same-seed trace replays differ: %d/%v vs %d/%v", c1, rt1, c2, rt2)
	}
}

// Compile-time checks: every driver implements the Driver interface.
var (
	_ Driver = (*ClosedDriver)(nil)
	_ Driver = (*OpenDriver)(nil)
	_ Driver = (*RampDriver)(nil)
	_ Driver = (*BurstDriver)(nil)
	_ Driver = (*TraceDriver)(nil)
)

package gate

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMiddlewareGatesRequests(t *testing.T) {
	g, err := New(Config{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	var inflight, peak atomic.Int64
	h := Middleware(g, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := inflight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		inflight.Add(-1)
		io.WriteString(w, "ok")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	var wg sync.WaitGroup
	var okCount atomic.Int64
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				okCount.Add(1)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Errorf("handler concurrency %d exceeded gate limit 2", p)
	}
	if okCount.Load() != 12 {
		t.Errorf("ok responses = %d, want 12 (no admission control configured)", okCount.Load())
	}
}

func TestMiddlewareShedsWith503(t *testing.T) {
	g, err := New(Config{Limit: 1, QueueLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	h := Middleware(g, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		io.WriteString(w, "ok")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	// Request 1 occupies the slot; request 2 fills the queue.
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(srv.URL)
			if err != nil {
				t.Error(err)
				done <- 0
				return
			}
			resp.Body.Close()
			done <- resp.StatusCode
		}()
		// Wait until the request is admitted or queued before the next.
		for {
			s := g.Stats()
			if s.Inflight+s.Queued > i {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Request 3 must be shed.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("overload status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After header")
	}
	close(release)
	if a, b := <-done, <-done; a != http.StatusOK || b != http.StatusOK {
		t.Errorf("admitted requests got %d, %d; want 200, 200", a, b)
	}
	if got := g.Stats().Dropped; got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
}

func TestMiddlewareCountsServerErrors(t *testing.T) {
	g, err := New(Config{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := Middleware(g, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := g.Stats().Errors; got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
	if got := g.Stats().Inflight; got != 0 {
		t.Errorf("slot leaked on 5xx: inflight = %d", got)
	}
}

func TestMiddlewareClassifyRoutesClasses(t *testing.T) {
	g, err := New(Config{Limit: 1, Policy: Priority})
	if err != nil {
		t.Fatal(err)
	}
	classify := func(r *http.Request) Request {
		if r.URL.Path == "/vip" {
			return Request{Class: ClassHigh}
		}
		return Request{}
	}
	var mu sync.Mutex
	var order []string
	release := make(chan struct{})
	h := MiddlewareClassify(g, classify, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		default:
			<-release
		}
		mu.Lock()
		order = append(order, r.URL.Path)
		mu.Unlock()
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	var wg sync.WaitGroup
	get := func(path string) {
		defer wg.Done()
		resp, err := http.Get(srv.URL + path)
		if err == nil {
			resp.Body.Close()
		}
	}
	wg.Add(1)
	go get("/first") // occupies the slot
	for g.Stats().Inflight != 1 {
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go get("/low")
	for g.Stats().Queued != 1 {
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go get("/vip")
	for g.Stats().Queued != 2 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[1] != "/vip" {
		t.Errorf("service order = %v, want /vip served before /low", order)
	}
}

func TestMiddlewareForwardsFlusher(t *testing.T) {
	g, err := New(Config{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	flushed := false
	h := Middleware(g, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("ResponseWriter behind the middleware lost http.Flusher")
			return
		}
		io.WriteString(w, "chunk")
		f.Flush()
		flushed = true
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !flushed {
		t.Error("streaming handler could not flush")
	}
}

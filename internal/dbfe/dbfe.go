// Package dbfe binds the backend-agnostic external scheduler
// (internal/core) to the simulated DBMS (internal/dbms): the MPL gate
// and queue policies come from core, transaction execution comes from
// dbms, and the glue here adapts between the two — a dbms.TxnProfile
// goes in, a generic core.Item flows through the gate, and the DBMS
// executes the profile when the gate admits it.
//
// This is the simulator-side twin of the top-level gate package (the
// live-traffic binding): both are thin Backends over the same core
// frontend, which is what makes sim-vs-live parity claims meaningful.
//
// The binding adds no allocations on the per-transaction fast path
// beyond the seed implementation: one Txn per submission (the
// core.Item is embedded in it) and one completion closure per
// dispatch, exactly as before the core refactor.
package dbfe

import (
	"extsched/internal/core"
	"extsched/internal/dbms"
	"extsched/internal/lockmgr"
	"extsched/internal/sim"
)

// Txn is one transaction flowing through the frontend.
type Txn struct {
	// Item is the generic gate record (timestamps, class, size hint).
	Item core.Item
	// Profile is the workload-generated transaction.
	Profile dbms.TxnProfile
	// Result is the DBMS's commit report (set at completion).
	Result dbms.Result
	done   func(*Txn)
}

// Class returns the transaction's priority class.
func (t *Txn) Class() lockmgr.Class { return t.Profile.Class }

// ResponseTime is Complete − Arrival (external wait + inside time).
func (t *Txn) ResponseTime() float64 { return t.Item.ResponseTime() }

// ExternalWait is Dispatch − Arrival.
func (t *Txn) ExternalWait() float64 { return t.Item.ExternalWait() }

// Frontend is the external scheduler over a simulated DBMS. It embeds
// the generic core.Frontend, so all gate controls (SetMPL, QueueLen,
// Metrics, SetQueueLimit, EnablePercentiles, …) are available directly.
type Frontend struct {
	*core.Frontend
	db *dbms.DB
	// OnComplete, if set, observes every committed transaction (used by
	// drivers for closed-loop clients and by controller wiring).
	OnComplete func(*Txn)
	// OnDrop, if set, observes admission-control rejections.
	OnDrop func(*Txn)
	// OnShed, if set, observes deadline sheds (transactions rejected
	// because they could not start by their admission deadline). The
	// per-transaction SubmitCB callback fires for sheds too — check
	// Item.WasShed to tell a shed from a commit.
	OnShed func(*Txn)
}

// backend executes admitted items on the simulated DBMS.
type backend struct {
	db *dbms.DB
	fe *core.Frontend
}

func (b *backend) Exec(it *core.Item) {
	t := it.Payload.(*Txn)
	b.db.Exec(t.Profile, func(r dbms.Result) {
		t.Result = r
		b.fe.Complete(it, core.Outcome{InsideTime: r.InsideTime, Restarts: r.Restarts})
	})
}

// New builds a frontend over db with the given MPL (0 = unlimited) and
// policy (nil = FIFO), on the engine's virtual clock.
func New(eng *sim.Engine, db *dbms.DB, mpl int, policy core.Policy) *Frontend {
	f := &Frontend{db: db}
	be := &backend{db: db}
	f.Frontend = core.New(eng.Clock(), be, mpl, policy)
	be.fe = f.Frontend
	f.Frontend.OnComplete = func(it *core.Item) {
		if f.OnComplete != nil {
			f.OnComplete(it.Payload.(*Txn))
		}
	}
	f.Frontend.OnDrop = func(it *core.Item) {
		if f.OnDrop != nil {
			f.OnDrop(it.Payload.(*Txn))
		}
	}
	f.Frontend.OnShed = func(it *core.Item) {
		if f.OnShed != nil {
			f.OnShed(it.Payload.(*Txn))
		}
	}
	return f
}

// txnDone adapts the per-item completion callback to the Txn-level one.
// A package-level func value, so passing it allocates nothing.
func txnDone(it *core.Item) {
	t := it.Payload.(*Txn)
	t.done(t)
}

// Submit delivers a new transaction to the external scheduler.
func (f *Frontend) Submit(profile dbms.TxnProfile) *Txn {
	return f.SubmitCB(profile, nil)
}

// SubmitCB is Submit with a per-transaction completion callback (used
// by closed-loop drivers to cycle their client). cb runs before the
// frontend-wide OnComplete hook. Under a queue limit (admission-
// control mode) the transaction may be rejected: it is returned with
// no callbacks scheduled and counted in Dropped.
func (f *Frontend) SubmitCB(profile dbms.TxnProfile, cb func(*Txn)) *Txn {
	t := &Txn{Profile: profile, done: cb}
	it := &t.Item
	it.Class = core.Class(profile.Class)
	it.SizeHint = profile.EstimatedDemand
	it.Payload = t
	var done func(*core.Item)
	if cb != nil {
		done = txnDone
	}
	f.Frontend.Submit(it, done)
	return t
}

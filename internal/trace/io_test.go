package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := SyntheticRetailer(5000, 1)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), orig.Len())
	}
	for i := range orig.Records {
		if got.Records[i] != orig.Records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got.Records[i], orig.Records[i])
		}
	}
	if got.Source != "roundtrip" {
		t.Errorf("source = %q", got.Source)
	}
}

func TestFileRoundTrip(t *testing.T) {
	orig := SyntheticAuction(1000, 2)
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1000 {
		t.Fatalf("len = %d", got.Len())
	}
	if got.DemandC2() != orig.DemandC2() {
		t.Error("moments changed across file round trip")
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                               // empty
		"x,y\n1,2\n",                     // wrong header
		"arrival_s,demand_s\nnope,1\n",   // bad arrival
		"arrival_s,demand_s\n1,nope\n",   // bad demand
		"arrival_s,demand_s\n2,1\n1,1\n", // out of order
		"arrival_s,demand_s\n1,-5\n",     // negative demand
		"arrival_s,demand_s\n1\n",        // wrong field count
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), "bad"); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/trace.csv"); err == nil {
		t.Error("missing file accepted")
	}
}

package extsched

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"extsched/internal/core"
	"extsched/internal/lockmgr"
	"extsched/internal/runner"
	"extsched/internal/trace"
	"extsched/internal/workload"
	"extsched/metrics"
)

// Trace is a replayable transaction trace: ordered arrival timestamps
// with per-transaction service demands. Build one from your own logs,
// or synthesize one with TraceSynth / the cmd/tracegen tool.
type Trace = trace.Trace

// TraceRecord is one traced transaction.
type TraceRecord = trace.Record

// TraceSynth parameterizes synthetic trace generation (lognormal
// demands fit to a mean and C², Poisson or burst-modulated arrivals) —
// the JSON-friendly way to put a trace phase in a scenario file
// without embedding records.
type TraceSynth = trace.SynthConfig

// Phase kinds accepted by Phase.Kind.
const (
	// PhaseClosed is a fixed client population: each client submits,
	// waits, thinks, repeats (the paper's Section 3.1 closed system).
	PhaseClosed = "closed"
	// PhaseOpen is a stationary Poisson arrival process at rate Lambda
	// (the paper's Section 3.2 open system).
	PhaseOpen = "open"
	// PhaseRamp ramps the arrival rate linearly from Lambda to Lambda2
	// over the phase's duration — a load transition.
	PhaseRamp = "ramp"
	// PhaseBurst is a two-state Markov-modulated Poisson process with
	// long-run mean rate Lambda — flash-crowd traffic.
	PhaseBurst = "burst"
	// PhaseTrace replays a trace (Phase.Trace or Phase.TraceSynth).
	PhaseTrace = "trace"
	// PhaseDiurnal is a non-homogeneous Poisson process whose rate
	// follows a sine around Lambda (DiurnalAmp / DiurnalPeriod) — the
	// day/night cycle of multi-tenant traffic. An optional flash-crowd
	// window (FlashFactor / FlashAt / FlashDuration) may overlay it.
	PhaseDiurnal = "diurnal"
	// PhaseFlash is a stationary Poisson process at Lambda with one
	// flash-crowd window during which the rate multiplies by
	// FlashFactor; an optional diurnal sine may overlay it.
	PhaseFlash = "flash"
)

// TenantSpec declares one tenant of a multi-tenant scenario. Listing
// tenants generalizes the historical two-class (high/low) vocabulary
// to N named classes: tenant i is assigned class ID i in list order,
// arrivals are drawn from the tenants' Shares instead of
// Config.HighPriorityFraction, and per-class results appear in
// Report.Classes under the tenants' names. Events and the fairness
// controller address tenants by Name.
type TenantSpec struct {
	// Name labels the tenant in reports, snapshots and events.
	// Required, distinct across the block.
	Name string `json:"name"`
	// Weight is the tenant's relative share weight — the WFQ weight
	// under Config.Policy "wfq", and the fairness controller's
	// entitlement. 0 means 1.
	Weight float64 `json:"weight,omitempty"`
	// Share is the tenant's fraction of arrivals. Shares must each be
	// > 0 and sum to 1 across the block.
	Share float64 `json:"share"`
	// SLOTarget is the tenant's declared p95 response-time target in
	// seconds (0 = none). Advisory metadata: recorded in the tenant
	// registry for operators and future controllers.
	SLOTarget float64 `json:"slo_target,omitempty"`
	// SizeMean, when > 0, scales the tenant's transactions by a
	// lognormal multiplier with this mean and squared coefficient of
	// variation SizeC2 (SizeC2 0 = deterministic scaling). A
	// heavy-tailed multiplier (SizeC2 >> 1) gives the tenant the
	// occasional huge transaction of real multi-tenant traffic.
	SizeMean float64 `json:"size_mean,omitempty"`
	SizeC2   float64 `json:"size_c2,omitempty"`
}

// FairnessSpec configures the N-tenant weighted max-min fairness
// controller: it partitions the MPL across the tenant classes
// (work-conserving — idle slots are still lent across the partition)
// and steers the split so each tenant's weight-normalized attained
// service equalizes. Two invariants hold after every reaction: the
// per-tenant limits sum to the MPL, and every tenant keeps at least
// one slot — an aggressor can never capture the whole gate. Unsharded
// systems only; mutually exclusive with the feedback controller and
// the SLO controller (all three share the one metrics window).
type FairnessSpec struct {
	// Weights overrides the tenants' declared weights, keyed by tenant
	// name (every listed tenant must exist; weights > 0). Nil means
	// "use the tenants block's weights".
	Weights map[string]float64 `json:"weights,omitempty"`
	// MinObservations gates fairness-window close (0 = 50
	// completions).
	MinObservations int `json:"min_observations,omitempty"`
	// Hysteresis is the imbalance ratio a busy donor must exceed
	// before a slot moves (0 = 1.2; otherwise >= 1).
	Hysteresis float64 `json:"hysteresis,omitempty"`
	// Strict makes the partition a hard cap: a tenant at its limit
	// never borrows idle capacity. Trades utilization for latency
	// isolation — under strict an overloaded tenant cannot keep the
	// backend saturated, so the others' in-DBMS times hold near their
	// uncontended levels. Default false (work-conserving borrowing).
	Strict bool `json:"strict,omitempty"`
}

// ControllerSpec configures the paper's Section 4.3 feedback
// controller when an Event enables it mid-scenario.
type ControllerSpec struct {
	// MaxThroughputLoss is the acceptable fractional throughput loss
	// versus the reference (e.g. 0.05 keeps 95%). Required.
	MaxThroughputLoss float64 `json:"max_throughput_loss"`
	// ReferenceThroughput is the no-MPL optimum in transactions per
	// second (measure it with an unlimited run, or model it with
	// RecommendMPL). Required.
	ReferenceThroughput float64 `json:"reference_throughput"`
	// MaxRTIncrease / ReferenceRT enable the optional response-time
	// criterion; zero values disable it.
	MaxRTIncrease float64 `json:"max_rt_increase,omitempty"`
	ReferenceRT   float64 `json:"reference_rt,omitempty"`
	// MinObservations gates observation-window close (0 = the paper's
	// 100 completions); HoldWindows is the convergence hold count
	// (0 = 2).
	MinObservations int `json:"min_observations,omitempty"`
	HoldWindows     int `json:"hold_windows,omitempty"`
	// StopOnConverge ends the scenario as soon as the controller
	// converges (the AutoTune workflow).
	StopOnConverge bool `json:"stop_on_converge,omitempty"`
}

// ShardSpeedEvent retargets one shard's relative CPU speed mid-run:
// model a replica slowing down (speed < 1), failing in slow motion
// (speed ≪ 1), or recovering (speed back to 1).
type ShardSpeedEvent struct {
	Shard int     `json:"shard"`
	Speed float64 `json:"speed"`
}

// SLOSpec configures the per-class latency-SLO controller: it
// partitions the MPL across the two priority classes (work-conserving
// — unused slots are lent across the partition) and steers the split
// so the protected class's response-time percentile stays at or below
// Target, leaving every remaining slot to the other class's
// throughput. Pair it with AdmitDeadline to shed un-startable work
// under overload; the partition shapes contention, the deadline bounds
// the backlog.
type SLOSpec struct {
	// Class is the protected class: "high" (default) or "low".
	Class string `json:"class,omitempty"`
	// Percentile is the controlled response-time percentile (0 = 95).
	Percentile float64 `json:"percentile,omitempty"`
	// Target is the latency bound in seconds. Required, > 0.
	Target float64 `json:"target"`
	// MinObservations gates the SLO observation window (0 = 50
	// completions, at least a tenth of them from the protected class).
	MinObservations int `json:"min_observations,omitempty"`
	// Margin is the give-back hysteresis: a slot returns to the other
	// class only while the measured percentile is below Margin×Target
	// (0 = 0.5).
	Margin float64 `json:"margin,omitempty"`
}

// parseClass resolves a JSON class name ("" defaults to high — the
// protected class is almost always the high-priority one).
func parseClass(name string) (core.Class, error) {
	switch name {
	case "", "high":
		return core.ClassHigh, nil
	case "low":
		return core.ClassLow, nil
	default:
		return 0, fmt.Errorf("extsched: unknown class %q (want high or low)", name)
	}
}

// classOf resolves a tenant name to its class ID: list position in the
// tenants block when one is present, else the legacy high/low pair.
func (sc Scenario) classOf(name string) (core.Class, error) {
	if len(sc.Tenants) == 0 {
		if name == "" {
			return 0, fmt.Errorf("extsched: empty tenant name")
		}
		return parseClass(name)
	}
	for i, t := range sc.Tenants {
		if t.Name == name {
			return core.Class(i), nil
		}
	}
	return 0, fmt.Errorf("extsched: unknown tenant %q (not in the tenants block)", name)
}

// maxTenants bounds a tenants block. The limit keeps every tenant's
// dedicated percentile-reservoir RNG stream distinct (streams are
// spaced by class ID masked to 16 bits).
const maxTenants = 1 << 15

// validateTenants checks the tenants block's standalone fields.
func (sc Scenario) validateTenants() error {
	if len(sc.Tenants) == 0 {
		return nil
	}
	if len(sc.Tenants) < 2 {
		return fmt.Errorf("extsched: a tenants block needs >= 2 tenants, have %d", len(sc.Tenants))
	}
	if len(sc.Tenants) > maxTenants {
		return fmt.Errorf("extsched: %d tenants exceeds the %d limit", len(sc.Tenants), maxTenants)
	}
	seen := make(map[string]bool, len(sc.Tenants))
	total := 0.0
	for i, t := range sc.Tenants {
		if t.Name == "" {
			return fmt.Errorf("extsched: tenant %d: name is required", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("extsched: duplicate tenant name %q", t.Name)
		}
		seen[t.Name] = true
		if t.Weight < 0 {
			return fmt.Errorf("extsched: tenant %q weight %v must be >= 0 (0 = 1)", t.Name, t.Weight)
		}
		if t.Share <= 0 {
			return fmt.Errorf("extsched: tenant %q share %v must be > 0", t.Name, t.Share)
		}
		if t.SLOTarget < 0 {
			return fmt.Errorf("extsched: tenant %q slo_target %v must be >= 0", t.Name, t.SLOTarget)
		}
		if t.SizeMean < 0 || t.SizeC2 < 0 {
			return fmt.Errorf("extsched: tenant %q size dist (mean %v, c2 %v) must be >= 0", t.Name, t.SizeMean, t.SizeC2)
		}
		total += t.Share
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("extsched: tenant shares sum to %v, want 1", total)
	}
	return nil
}

// spec translates the public fairness spec to the runner's vocabulary:
// every tenant is governed at its declared weight, with Weights
// overriding by name.
func (fs FairnessSpec) spec(sc Scenario) (runner.FairnessSpec, error) {
	rs := runner.FairnessSpec{
		Weights:         make(map[core.Class]float64, len(sc.Tenants)+len(fs.Weights)),
		MinObservations: fs.MinObservations,
		Hysteresis:      fs.Hysteresis,
		Strict:          fs.Strict,
	}
	for i, t := range sc.Tenants {
		w := t.Weight
		if w == 0 {
			w = 1
		}
		rs.Weights[core.Class(i)] = w
	}
	for name, w := range fs.Weights {
		c, err := sc.classOf(name)
		if err != nil {
			return runner.FairnessSpec{}, err
		}
		rs.Weights[c] = w
	}
	if err := rs.Validate(); err != nil {
		return runner.FairnessSpec{}, err
	}
	return rs, nil
}

// Deprecations lists uses of deprecated scenario vocabulary — fields
// that still parse and behave identically but have a tenant-
// generalized replacement. cmd/dbsim prints them to stderr; migration
// notes live in EXPERIMENTS.md.
func (sc Scenario) Deprecations() []string {
	var out []string
	for i, ph := range sc.Phases {
		for j, ev := range ph.Events {
			if ev.SetWFQHighWeight != nil {
				out = append(out, fmt.Sprintf(
					"phase %d event %d: set_wfq_high_weight is deprecated; write {\"set_weights\": {\"high\": %v}} instead",
					i, j, *ev.SetWFQHighWeight))
			}
		}
	}
	return out
}

// spec translates the public SLO spec to the runner's vocabulary.
func (s SLOSpec) spec() (runner.SLOSpec, error) {
	class, err := parseClass(s.Class)
	if err != nil {
		return runner.SLOSpec{}, err
	}
	return runner.SLOSpec{
		Class:           class,
		Percentile:      s.Percentile,
		Target:          s.Target,
		MinObservations: s.MinObservations,
		Margin:          s.Margin,
	}, nil
}

// ClassLimits is a static MPL partition: at most High high-class and
// Low low-class transactions dispatched concurrently (each >= 1), with
// work-conserving borrowing when one class has no waiting work. Both
// zero clears the partition.
type ClassLimits struct {
	High int `json:"high"`
	Low  int `json:"low"`
}

// TenantLimits is a static per-tenant MPL partition, keyed by tenant
// name (see Event.SetTenantLimits). An empty map clears the partition.
type TenantLimits map[string]int

// AdmitDeadline sets per-class admission deadlines in seconds: a
// transaction that cannot START within its class's deadline of
// arriving is shed — rejected without executing, counted in
// Report.Shed — instead of queueing unboundedly. Zero disables a
// class's deadline.
type AdmitDeadline struct {
	High float64 `json:"high,omitempty"`
	Low  float64 `json:"low,omitempty"`
}

// Event is a mid-phase control action, applied At seconds after the
// phase's measured start (for the first phase: after warmup ends).
// Zero-valued action fields are skipped, so one Event can carry
// several actions at one instant.
type Event struct {
	At float64 `json:"at"`
	// SetMPL changes the multiprogramming limit (0 = unlimited). On a
	// sharded system it is the cluster-wide limit, split across shards.
	SetMPL *int `json:"set_mpl,omitempty"`
	// SetWFQHighWeight reweights the WFQ policy's high class (the low
	// class keeps weight 1); ignored when the policy is not WFQ.
	//
	// Deprecated: the two-class shorthand is superseded by SetWeights,
	// which reweights any tenant by name. Still parsed and applied —
	// existing scenario files keep working bit-identically — but
	// Scenario.Deprecations flags it, and new files should write
	// {"set_weights": {"high": w}} instead.
	SetWFQHighWeight *float64 `json:"set_wfq_high_weight,omitempty"`
	// SetWeights reweights the WFQ policy per tenant (by tenant name,
	// or "high"/"low" without a tenants block). The map replaces the
	// policy's weights: tenants absent from it fall back to weight 1.
	// Ignored when the policy is not WFQ.
	SetWeights map[string]float64 `json:"set_weights,omitempty"`
	// SetTenantLimits installs a static per-tenant MPL partition, by
	// tenant name: each listed tenant gets that many dedicated slots
	// (each >= 1, summing to at most the MPL), work-conserving. An
	// empty (but non-nil) map clears the partition — a pointer so the
	// clear form {} survives a marshal round trip. Unsharded systems
	// only. The N-tenant generalization of SetClassLimits.
	SetTenantLimits *TenantLimits `json:"set_tenant_limits,omitempty"`
	// SetTenantDeadlines changes per-tenant admission deadlines in
	// seconds, by tenant name (zero clears a tenant's deadline; tenants
	// absent from the map keep theirs). Works on sharded systems too.
	// The N-tenant generalization of SetAdmitDeadline.
	SetTenantDeadlines map[string]float64 `json:"set_tenant_deadlines,omitempty"`
	// EnableFairness attaches (or replaces) the weighted max-min
	// fairness controller; DisableFairness detaches it, freezing the
	// tenant partition where the loop left it. Unsharded systems only.
	EnableFairness  *FairnessSpec `json:"enable_fairness,omitempty"`
	DisableFairness bool          `json:"disable_fairness,omitempty"`
	// SetShardSpeed changes one shard's relative CPU speed. Running it
	// against an unsharded system is an error.
	SetShardSpeed *ShardSpeedEvent `json:"set_shard_speed,omitempty"`
	// SetDispatch switches the cluster's dispatch policy ("rr", "jsq",
	// "lwl", "affinity", or the sampled "jsq-d"/"lwl-d" with an
	// optional width like "jsq-d:3") mid-run. Running it against an
	// unsharded system is an error.
	SetDispatch string `json:"set_dispatch,omitempty"`
	// EnableController attaches the feedback controller to the
	// completion stream; DisableController detaches it, freezing the
	// MPL where the loop left it.
	EnableController  *ControllerSpec `json:"enable_controller,omitempty"`
	DisableController bool            `json:"disable_controller,omitempty"`
	// SetSLO attaches (or replaces) the latency-SLO controller;
	// DisableSLO detaches it, freezing the class partition where the
	// loop left it. Running either against a sharded system is an
	// error.
	SetSLO     *SLOSpec `json:"set_slo,omitempty"`
	DisableSLO bool     `json:"disable_slo,omitempty"`
	// SetClassLimits installs a static per-class MPL partition (error
	// on sharded systems; high and low both zero clears it).
	SetClassLimits *ClassLimits `json:"set_class_limits,omitempty"`
	// SetAdmitDeadline changes the per-class admission deadlines (zero
	// clears a class's deadline). Works on sharded systems too — each
	// shard sheds against its own queue.
	SetAdmitDeadline *AdmitDeadline `json:"set_admit_deadline,omitempty"`
	// ShardFail crashes that shard: it goes down, survivors absorb its
	// MPL share, and the work it held goes to Config.Recovery (resubmit
	// with backoff, or shed). Error on unsharded systems.
	ShardFail *int `json:"shard_fail,omitempty"`
	// ShardRecover returns a down shard to service (or cancels a
	// drain). Error on unsharded systems.
	ShardRecover *int `json:"shard_recover,omitempty"`
	// ShardRemove drains that shard gracefully: no new work routes to
	// it and it leaves the fleet once empty. Error on unsharded
	// systems.
	ShardRemove *int `json:"shard_remove,omitempty"`
	// ShardAdd joins a fresh shard (same workload and queue policy as
	// the rest of the fleet, nominal speed, seeded by its index). Error
	// on unsharded systems.
	ShardAdd bool `json:"shard_add,omitempty"`
}

// AutoscaleSpec arms the fleet autoscaler for the whole scenario: a
// hysteresis controller ticking every Interval simulated seconds from
// the moment the measurement window opens, reading the mean
// per-up-shard backlog ((queued+inflight)/up shards) and growing or
// draining the shard fleet within [Min, Max]. Scale-ups reuse a parked
// (down or draining) shard first and only build a fresh one when every
// slot is serving; scale-downs drain the highest-index up shard.
// Sharded systems only.
type AutoscaleSpec struct {
	// Min / Max bound the serving fleet size (1 <= Min <= Max).
	Min int `json:"min"`
	Max int `json:"max"`
	// Interval is the controller tick period in simulated seconds
	// (0 = 1).
	Interval float64 `json:"interval,omitempty"`
	// HighWater / LowWater are the per-up-shard backlog watermarks:
	// at or above HighWater for BreachWindows consecutive ticks scales
	// up, at or below LowWater for CalmWindows ticks scales down, and
	// the band between them holds. Zeros default to HighWater 8 and
	// LowWater HighWater/4.
	HighWater float64 `json:"high_water,omitempty"`
	LowWater  float64 `json:"low_water,omitempty"`
	// BreachWindows / CalmWindows are the consecutive-tick thresholds
	// (0s = defaults: 2, and 3x BreachWindows — scaling down is
	// deliberately slower than scaling up).
	BreachWindows int `json:"breach_windows,omitempty"`
	CalmWindows   int `json:"calm_windows,omitempty"`
	// Cooldown is the minimum time between actions in simulated
	// seconds (0 = 2x Interval).
	Cooldown float64 `json:"cooldown,omitempty"`
	// MPLPerShard, when > 0, retargets the cluster-wide MPL to this
	// many slots per up shard after every fleet change, so admitted
	// concurrency scales with capacity.
	MPLPerShard int `json:"mpl_per_shard,omitempty"`
}

// ChurnSpec runs a deterministic MTBF/MTTR fault generator for one
// phase: each shard independently alternates exponential up times
// (mean MTBF) and down times (mean MTTR), from a seeded schedule that
// reruns bit-identically. A generated failure that would take the last
// up shard down is skipped. Sharded systems only.
type ChurnSpec struct {
	// MTBF is the per-shard mean time between failures in simulated
	// seconds (> 0).
	MTBF float64 `json:"mtbf"`
	// MTTR is the per-shard mean time to recovery in simulated seconds
	// (> 0).
	MTTR float64 `json:"mttr"`
	// Seed drives the failure schedule (0 = Config.Seed).
	Seed uint64 `json:"seed,omitempty"`
}

// Phase is one segment of a Scenario: a traffic source run for
// Duration simulated seconds, with optional mid-phase control events.
// Which parameter fields apply depends on Kind; the rest are ignored.
type Phase struct {
	// Name labels the phase in reports and snapshots (default: Kind).
	Name string `json:"name,omitempty"`
	// Kind is one of PhaseClosed, PhaseOpen, PhaseRamp, PhaseBurst,
	// PhaseTrace.
	Kind string `json:"kind"`
	// Duration is the phase length in simulated seconds (>= 0). A
	// zero-duration phase starts and stops its traffic source at a
	// single instant — useful to inject a one-shot burst of closed
	// clients whose transactions drain into the next phase.
	Duration float64 `json:"duration"`
	// Clients is the closed population (0 = 100, the paper's choice);
	// ThinkTime the mean exponential think time in seconds (0 = none).
	Clients   int     `json:"clients,omitempty"`
	ThinkTime float64 `json:"think_time,omitempty"`
	// Lambda is the arrival rate in transactions/second for open and
	// burst phases, and the starting rate of a ramp; Lambda2 is the
	// ramp's ending rate.
	Lambda  float64 `json:"lambda,omitempty"`
	Lambda2 float64 `json:"lambda2,omitempty"`
	// BurstFactor / BurstPeriod shape a burst phase: the on/off state
	// rates differ by Factor², normalized so the long-run mean stays at
	// Lambda; state sojourns are exponential with mean Period seconds
	// (0s = defaults: factor 2, period 100 mean interarrivals).
	BurstFactor float64 `json:"burst_factor,omitempty"`
	BurstPeriod float64 `json:"burst_period,omitempty"`
	// DiurnalAmp / DiurnalPeriod shape a diurnal phase: the rate
	// follows Lambda·(1 + Amp·sin(2πt/Period)), amplitude in (0,1],
	// period in seconds. Required for PhaseDiurnal; optional overlay on
	// PhaseFlash.
	DiurnalAmp    float64 `json:"diurnal_amp,omitempty"`
	DiurnalPeriod float64 `json:"diurnal_period,omitempty"`
	// FlashFactor / FlashAt / FlashDuration shape a flash crowd: for
	// FlashDuration seconds starting FlashAt seconds into the phase,
	// the rate multiplies by FlashFactor (>= 1). Required for
	// PhaseFlash; optional overlay on PhaseDiurnal.
	FlashFactor   float64 `json:"flash_factor,omitempty"`
	FlashAt       float64 `json:"flash_at,omitempty"`
	FlashDuration float64 `json:"flash_duration,omitempty"`
	// Trace embeds a trace to replay; TraceSynth synthesizes one
	// instead (exactly one of the two for a trace phase). TraceSpeedup
	// divides the trace's inter-arrival gaps (0 = 1).
	Trace        *Trace      `json:"trace,omitempty"`
	TraceSynth   *TraceSynth `json:"trace_synth,omitempty"`
	TraceSpeedup float64     `json:"trace_speedup,omitempty"`
	// Churn, when non-nil, runs the MTBF/MTTR fault generator for this
	// phase (sharded systems only).
	Churn *ChurnSpec `json:"churn,omitempty"`
	// Events are mid-phase control actions.
	Events []Event `json:"events,omitempty"`
}

// Scenario is a declarative description of one experiment: a warmup,
// then an ordered list of traffic phases with mid-phase control
// events. One System runs any number of scenarios, each on pristine
// simulation state, so repeated runs of the same scenario with the
// same Config.Seed are bit-identical.
type Scenario struct {
	// Name labels the scenario in output files (unused by the engine).
	Name string `json:"name,omitempty"`
	// Warmup is discarded simulated seconds driven by the first
	// phase's traffic source before the measurement window opens.
	Warmup float64 `json:"warmup,omitempty"`
	// SampleInterval, when > 0, streams one windowed metrics.Snapshot
	// to every observer each interval and records the series in
	// Result.Snapshots.
	SampleInterval float64 `json:"sample_interval,omitempty"`
	// Tenants declares an N-tenant workload: tenant i gets class ID i,
	// arrivals are split by the tenants' Shares (replacing
	// Config.HighPriorityFraction tagging), and per-tenant results
	// appear under the tenants' names in Report.Classes. At least two
	// tenants when present.
	Tenants []TenantSpec `json:"tenants,omitempty"`
	// Fairness, when non-nil, runs the whole scenario under the
	// weighted max-min fairness controller from the moment the
	// measurement window opens (an event-free way to arm it;
	// enable_fairness events can still replace it). Requires a tenants
	// block and an unsharded system.
	Fairness *FairnessSpec `json:"fairness,omitempty"`
	// Autoscale, when non-nil, arms the fleet autoscaler for the whole
	// run (sharded systems only).
	Autoscale *AutoscaleSpec `json:"autoscale,omitempty"`
	// ParallelShards, when true, runs each shard's frontend+backend
	// pair on its own simulation engine in its own goroutine,
	// synchronized conservatively at the dispatcher boundary. The run
	// is deterministic and produces the same Result (and Snapshots) as
	// the sequential engine for the same Config.Seed. Unsharded systems
	// ignore the knob. The feedback controller (EnableController) is
	// not supported in this mode.
	ParallelShards bool    `json:"parallel_shards,omitempty"`
	Phases         []Phase `json:"phases"`
}

// spec translates the public scenario into the runner's vocabulary.
// It is the single source of truth for scenario validation. With
// materialize, TraceSynth phases are synthesized in full; without,
// their configuration is validated and a one-record placeholder stands
// in, so Validate (and ParseScenario) never pays the generation cost —
// Run pays it exactly once.
func (sc Scenario) spec(materialize bool) (runner.Spec, error) {
	if err := sc.validateTenants(); err != nil {
		return runner.Spec{}, err
	}
	if fs := sc.Fairness; fs != nil {
		if len(sc.Tenants) == 0 {
			return runner.Spec{}, fmt.Errorf("extsched: scenario-level fairness needs a tenants block (events can pass explicit weights instead)")
		}
		if sc.ParallelShards {
			return runner.Spec{}, fmt.Errorf("extsched: fairness is not supported with parallel_shards (the controller actuates per completion)")
		}
		if _, err := fs.spec(sc); err != nil {
			return runner.Spec{}, err
		}
	}
	spec := runner.Spec{
		Warmup:         sc.Warmup,
		SampleInterval: sc.SampleInterval,
		ParallelShards: sc.ParallelShards,
	}
	if a := sc.Autoscale; a != nil {
		spec.Autoscale = &runner.AutoscaleSpec{
			Min:           a.Min,
			Max:           a.Max,
			Interval:      a.Interval,
			HighWater:     a.HighWater,
			LowWater:      a.LowWater,
			BreachWindows: a.BreachWindows,
			CalmWindows:   a.CalmWindows,
			Cooldown:      a.Cooldown,
			MPLPerShard:   a.MPLPerShard,
		}
	}
	for i, ph := range sc.Phases {
		rp := runner.Phase{
			Name:          ph.Name,
			Kind:          runner.Kind(ph.Kind),
			Duration:      ph.Duration,
			Clients:       ph.Clients,
			ThinkTime:     ph.ThinkTime,
			Lambda:        ph.Lambda,
			Lambda2:       ph.Lambda2,
			BurstFactor:   ph.BurstFactor,
			BurstPeriod:   ph.BurstPeriod,
			DiurnalAmp:    ph.DiurnalAmp,
			DiurnalPeriod: ph.DiurnalPeriod,
			FlashFactor:   ph.FlashFactor,
			FlashAt:       ph.FlashAt,
			FlashDuration: ph.FlashDuration,
			Trace:         ph.Trace,
			TraceSpeedup:  ph.TraceSpeedup,
		}
		if ch := ph.Churn; ch != nil {
			rp.Churn = &runner.ChurnSpec{MTBF: ch.MTBF, MTTR: ch.MTTR, Seed: ch.Seed}
		}
		if ph.Kind == PhaseTrace {
			if ph.Trace != nil && ph.TraceSynth != nil {
				return runner.Spec{}, fmt.Errorf("extsched: phase %d: set either Trace or TraceSynth, not both", i)
			}
			if ph.TraceSynth != nil {
				if materialize {
					tr, err := trace.Synthesize(*ph.TraceSynth)
					if err != nil {
						return runner.Spec{}, fmt.Errorf("extsched: phase %d: %w", i, err)
					}
					rp.Trace = tr
				} else {
					if err := ph.TraceSynth.Validate(); err != nil {
						return runner.Spec{}, fmt.Errorf("extsched: phase %d: %w", i, err)
					}
					rp.Trace = &trace.Trace{
						Source:  "placeholder",
						Records: []trace.Record{{Arrival: 0, Demand: ph.TraceSynth.MeanDemand}},
					}
				}
			}
		}
		for _, ev := range ph.Events {
			re := runner.Event{
				At:                ev.At,
				SetMPL:            ev.SetMPL,
				SetWFQHighWeight:  ev.SetWFQHighWeight,
				SetDispatch:       ev.SetDispatch,
				DisableController: ev.DisableController,
				DisableSLO:        ev.DisableSLO,
				DisableFairness:   ev.DisableFairness,
				ShardFail:         ev.ShardFail,
				ShardRecover:      ev.ShardRecover,
				ShardRemove:       ev.ShardRemove,
				ShardAdd:          ev.ShardAdd,
			}
			if len(ev.SetWeights) > 0 {
				re.SetWeights = make(map[core.Class]float64, len(ev.SetWeights))
				for name, w := range ev.SetWeights {
					c, err := sc.classOf(name)
					if err != nil {
						return runner.Spec{}, fmt.Errorf("extsched: phase %d: set_weights: %w", i, err)
					}
					re.SetWeights[c] = w
				}
			}
			if ev.SetTenantLimits != nil {
				re.SetTenantLimits = make(map[core.Class]int, len(*ev.SetTenantLimits))
				for name, l := range *ev.SetTenantLimits {
					c, err := sc.classOf(name)
					if err != nil {
						return runner.Spec{}, fmt.Errorf("extsched: phase %d: set_tenant_limits: %w", i, err)
					}
					re.SetTenantLimits[c] = l
				}
			}
			if ev.SetTenantDeadlines != nil {
				re.SetTenantDeadlines = make(map[core.Class]float64, len(ev.SetTenantDeadlines))
				for name, d := range ev.SetTenantDeadlines {
					c, err := sc.classOf(name)
					if err != nil {
						return runner.Spec{}, fmt.Errorf("extsched: phase %d: set_tenant_deadlines: %w", i, err)
					}
					re.SetTenantDeadlines[c] = d
				}
			}
			if fs := ev.EnableFairness; fs != nil {
				if sc.ParallelShards {
					return runner.Spec{}, fmt.Errorf("extsched: phase %d: enable_fairness is not supported with parallel_shards (the controller actuates per completion)", i)
				}
				rs, err := fs.spec(sc)
				if err != nil {
					return runner.Spec{}, fmt.Errorf("extsched: phase %d: enable_fairness: %w", i, err)
				}
				re.EnableFairness = &rs
			}
			if ss := ev.SetShardSpeed; ss != nil {
				re.SetShardSpeed = &runner.ShardSpeed{Shard: ss.Shard, Speed: ss.Speed}
			}
			if slo := ev.SetSLO; slo != nil {
				rs, err := slo.spec()
				if err != nil {
					return runner.Spec{}, fmt.Errorf("extsched: phase %d: %w", i, err)
				}
				re.SetSLO = &rs
			}
			if cl := ev.SetClassLimits; cl != nil {
				re.SetClassLimits = &runner.ClassLimits{High: cl.High, Low: cl.Low}
			}
			if ad := ev.SetAdmitDeadline; ad != nil {
				re.SetAdmitDeadline = &runner.AdmitDeadline{High: ad.High, Low: ad.Low}
			}
			if cs := ev.EnableController; cs != nil {
				if sc.ParallelShards {
					return runner.Spec{}, fmt.Errorf("extsched: phase %d: enable_controller is not supported with parallel_shards (the controller actuates per completion, which has no deterministic parallel equivalent)", i)
				}
				re.EnableController = &runner.ControllerSpec{
					MaxThroughputLoss:   cs.MaxThroughputLoss,
					ReferenceThroughput: cs.ReferenceThroughput,
					MaxRTIncrease:       cs.MaxRTIncrease,
					ReferenceRT:         cs.ReferenceRT,
					MinObservations:     cs.MinObservations,
					HoldWindows:         cs.HoldWindows,
					StopOnConverge:      cs.StopOnConverge,
				}
			}
			rp.Events = append(rp.Events, re)
		}
		spec.Phases = append(spec.Phases, rp)
	}
	if err := spec.Validate(); err != nil {
		return runner.Spec{}, err
	}
	return spec, nil
}

// Validate checks the scenario (phase kinds, parameters, events,
// TraceSynth configurations) without synthesizing any traces.
func (sc Scenario) Validate() error {
	_, err := sc.spec(false)
	return err
}

// ParseScenario decodes a JSON scenario (as written by cmd/dbsim
// -scenario files) and validates it. Unknown fields are rejected, so
// typos in hand-written scenario files fail loudly.
func ParseScenario(data []byte) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("extsched: parsing scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// PhaseResult is one phase's slice of the measurement window.
type PhaseResult struct {
	Name string
	Kind string
	Report
}

// ShardResult is one shard's slice of the whole measurement window
// (sharded systems only). Its Report covers only the transactions
// the dispatcher routed to this shard; device utilizations and lock
// counters are the shard's own.
type ShardResult struct {
	// Shard is the shard index; Speed its relative CPU speed when the
	// run ended.
	Shard int
	Speed float64
	// Dispatched counts arrivals routed to the shard in the window.
	Dispatched uint64
	// State is the shard's lifecycle state when the run ended ("up",
	// "draining", "down").
	State string
	// Availability is the fraction of the measurement window the shard
	// was serving (1 when the scenario never touched it; a shard added
	// mid-run accrues only from its join).
	Availability float64
	// P95 is the shard's own response-time 95th percentile, estimated
	// with a constant-memory P² tracker (PercentileSamples mode only, 0
	// otherwise). The estimator holds five markers per shard instead of
	// a sample reservoir, so per-shard tails stay reportable at
	// thousand-shard fleets without O(N·samples) memory.
	P95 float64
	Report
}

// TuneResult reports a feedback-controller run (AutoTune, or any
// scenario with an EnableController event).
type TuneResult struct {
	StartMPL   int
	FinalMPL   int
	Iterations int
	Converged  bool
}

// SLOResult reports a latency-SLO-controlled run (Config.SLO, or any
// scenario with a SetSLO event).
type SLOResult struct {
	// Class is the protected class ("high" or "low").
	Class string
	// SLOLimit / OtherLimit are the final slot partition; they sum to
	// the final MPL.
	SLOLimit, OtherLimit int
	// Iterations counts completed SLO reactions; LastMeasured is the
	// last closed window's measured percentile in seconds.
	Iterations   int
	LastMeasured float64
}

// AutoscaleResult reports an autoscaled run's fleet trajectory.
type AutoscaleResult struct {
	// ScaleUps / ScaleDowns count controller actions over the run.
	ScaleUps, ScaleDowns uint64
	// FinalFleet is the serving shard count when the run ended;
	// PeakFleet / MinFleet the extremes observed at controller ticks.
	FinalFleet, PeakFleet, MinFleet int
	// ShardSeconds is the total shard-up time accrued inside the
	// measurement window, summed over all slots — the capacity bill an
	// autoscaled fleet shrinks versus a fixed one.
	ShardSeconds float64
}

// ClassResult is one tenant class's slice of a Report window (the
// N-tenant generalization of the HighRT/LowRT/ShedHigh/ShedLow
// fields, which remain for two-class runs).
type ClassResult struct {
	// Class is the tenant's class ID (its position in the tenants
	// block); Name its registered name ("" when unregistered).
	Class int
	Name  string
	// Completed / Shed count the class's completions and deadline-shed
	// rejections in the window.
	Completed, Shed uint64
	// MeanRT is the class's mean response time in seconds; P95 its
	// 95th percentile (whole-run reports in PercentileSamples mode
	// only — phase slices carry no per-class reservoir).
	MeanRT, P95 float64
}

// FairnessResult reports a fairness-controlled run (Scenario.Fairness,
// or any scenario with an enable_fairness event).
type FairnessResult struct {
	// Limits is the final per-tenant slot partition, keyed by class ID
	// (it sums to the final MPL).
	Limits map[int]int
	// Iterations counts completed fairness reactions; Moves how many
	// of them actually moved a slot.
	Iterations, Moves int
}

// Result is a completed scenario run.
type Result struct {
	// Total aggregates the whole measurement window (warmup excluded;
	// only work that completed inside the window counts — see the
	// windowing rule in Report).
	Total Report
	// Phases slices the window per phase, in execution order. A run
	// stopped early by controller convergence omits the unreached
	// phases.
	Phases []PhaseResult
	// Shards slices the window per shard (nil for unsharded systems).
	Shards []ShardResult
	// Snapshots is the interval time series (empty unless
	// Scenario.SampleInterval was set).
	Snapshots []metrics.Snapshot
	// Tune is non-nil when the scenario enabled the controller.
	Tune *TuneResult
	// SLO is non-nil when the latency-SLO controller ran.
	SLO *SLOResult
	// Fairness is non-nil when the max-min fairness controller ran.
	Fairness *FairnessResult
	// Autoscale is non-nil when Scenario.Autoscale armed the fleet
	// autoscaler.
	Autoscale *AutoscaleResult
	// FinalMPL is the MPL when the run ended (mid-phase events or the
	// controller may have moved it off Config.MPL).
	FinalMPL int
}

// ExampleScenarioJSON is a runnable template for scenario files (cmd/
// dbsim prints it with -scenario-example, and the fuzz corpus seeds
// from it): three weighted tenants under the strict max-min fairness
// controller through a steady closed phase, an open ramp surge that
// swaps the fairness loop for the throughput feedback controller
// (the two share the metrics window, so only one runs at a time) and
// rebalances the tenant weights mid-flight, and a synthesized bursty
// trace replay.
const ExampleScenarioJSON = `{
  "name": "surge-demo",
  "warmup": 30,
  "sample_interval": 20,
  "tenants": [
    {"name": "batch", "weight": 1, "share": 0.5},
    {"name": "web", "weight": 4, "share": 0.3},
    {"name": "api", "weight": 4, "share": 0.2, "slo_target": 2}
  ],
  "fairness": {"strict": true},
  "phases": [
    {
      "name": "steady",
      "kind": "closed",
      "duration": 200,
      "clients": 100
    },
    {
      "name": "surge",
      "kind": "ramp",
      "duration": 200,
      "lambda": 50,
      "lambda2": 120,
      "events": [
        {"at": 0, "disable_fairness": true},
        {
          "at": 1,
          "enable_controller": {
            "max_throughput_loss": 0.05,
            "reference_throughput": 95
          }
        },
        {"at": 50, "set_weights": {"web": 8, "batch": 1}}
      ]
    },
    {
      "name": "replay",
      "kind": "trace",
      "duration": 200,
      "trace_synth": {
        "N": 20000,
        "MeanDemand": 0.01,
        "DemandC2": 2.0,
        "Lambda": 80,
        "Burstiness": 2,
        "Seed": 7
      }
    }
  ]
}
`

// reportFrom converts a runner report to the public vocabulary.
func reportFrom(r runner.Report) Report {
	rep := Report{
		SimSeconds:  r.Window,
		Completed:   r.Completed,
		Throughput:  r.Throughput(),
		MeanRT:      r.All.Mean(),
		HighRT:      r.High.Mean(),
		LowRT:       r.Low.Mean(),
		MeanInside:  r.Inside.Mean(),
		ExternalW:   r.ExtWait.Mean(),
		Restarts:    r.Restarts,
		CPUUtil:     r.CPUUtil,
		DiskUtil:    r.DiskUtil,
		DemandC2:    r.Inside.C2(),
		LockWaits:   r.LockWaits,
		Deadlocks:   r.Deadlocks,
		Preemptions: r.Preemptions,
		Dropped:     r.Dropped,
		Shed:        r.Shed,
		ShedHigh:    r.ShedHigh,
		ShedLow:     r.ShedLow,
		Failed:      r.Failed,
		Resubmitted: r.Resubmitted,
		Retries:     r.Retries,
		P50:         r.P50,
		P95:         r.P95,
		P99:         r.P99,
		HighP95:     r.HighP95,
		LowP95:      r.LowP95,
	}
	for _, c := range r.Classes {
		rep.Classes = append(rep.Classes, ClassResult{
			Class:     int(c.Class),
			Name:      c.Name,
			Completed: c.Completed,
			Shed:      c.Shed,
			MeanRT:    c.Mean,
			P95:       c.P95,
		})
	}
	return rep
}

// Run executes the scenario on pristine simulation state assembled
// from the System's Config: every run rebuilds the engine, DBMS,
// frontend, and generator from the same seed, so running the same
// scenario twice — on one System or on two — produces bit-identical
// Results. Observers registered with Observe (plus any passed here)
// receive windowed snapshots each SampleInterval, synchronously on the
// simulation goroutine. ctx cancels between breakpoints.
func (s *System) Run(ctx context.Context, sc Scenario, obs ...metrics.Observer) (Result, error) {
	return s.runScenario(ctx, sc, nil, obs...)
}

// checkShardEvents vets the scenario's lifecycle actions against this
// System's fleet: lifecycle events need a sharded config, and fail/
// recover/remove targets must name a shard that exists by the time the
// event fires (the starting fleet plus any earlier shard_add events).
// Validation the scenario alone cannot do — only the System knows the
// shard count.
func (s *System) checkShardEvents(sc Scenario) error {
	n := s.cfg.Shards.Count
	if sc.Autoscale != nil && n == 0 {
		return fmt.Errorf("extsched: autoscale on an unsharded system")
	}
	for i, ph := range sc.Phases {
		if n == 0 {
			if ph.Churn != nil {
				return fmt.Errorf("extsched: phase %d: churn on an unsharded system", i)
			}
			for j, ev := range ph.Events {
				if ev.ShardFail != nil || ev.ShardRecover != nil || ev.ShardRemove != nil || ev.ShardAdd {
					return fmt.Errorf("extsched: phase %d event %d: shard lifecycle event on an unsharded system", i, j)
				}
			}
			continue
		}
		// Walk the events in firing order, growing the known fleet at
		// each shard_add.
		evs := append([]Event(nil), ph.Events...)
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].At < evs[b].At })
		for j, ev := range evs {
			if ev.ShardAdd {
				n++
			}
			for _, tgt := range []struct {
				name string
				idx  *int
			}{
				{"shard_fail", ev.ShardFail},
				{"shard_recover", ev.ShardRecover},
				{"shard_remove", ev.ShardRemove},
			} {
				if tgt.idx != nil && *tgt.idx >= n {
					return fmt.Errorf("extsched: phase %d event %d: %s targets unknown shard %d (fleet has %d)",
						i, j, tgt.name, *tgt.idx, n)
				}
			}
		}
	}
	return nil
}

// applyTenants installs the scenario's tenants block on the fresh
// stack: every frontend's registry gets the names, weights and SLO
// targets (so live stats and reports carry tenant names), the WFQ
// policy — when Config.Policy is "wfq" — is reweighted to the tenants'
// declared weights, and the generator's arrival stream is split by the
// tenants' shares, replacing the historical HighPriorityFraction
// tagging.
func applyTenants(st *runner.Stack, sc Scenario) error {
	names := make(map[core.Class]string, len(sc.Tenants))
	weights := make(map[core.Class]float64, len(sc.Tenants))
	mix := make([]workload.TenantMix, len(sc.Tenants))
	for i, t := range sc.Tenants {
		w := t.Weight
		if w == 0 {
			w = 1
		}
		if st.Cluster != nil {
			for _, sh := range st.Cluster.Shards() {
				sh.FE.RegisterClass(t.Name, w, t.SLOTarget)
			}
		} else {
			st.FE.RegisterClass(t.Name, w, t.SLOTarget)
		}
		names[core.Class(i)] = t.Name
		weights[core.Class(i)] = w
		mix[i] = workload.TenantMix{
			Class:    lockmgr.Class(i),
			Share:    t.Share,
			SizeMean: t.SizeMean,
			SizeC2:   t.SizeC2,
		}
	}
	if st.Cluster != nil {
		st.Cluster.SetWFQWeights(weights)
	} else {
		st.FE.SetWFQWeights(weights)
	}
	st.ClassNames = names
	return st.Gen.SetMix(mix)
}

// runScenario is Run with an optional MPL override for the fresh stack
// (AutoTune starts at the model's jump-start value, not Config.MPL).
func (s *System) runScenario(ctx context.Context, sc Scenario, initialMPL *int, obs ...metrics.Observer) (Result, error) {
	spec, err := sc.spec(true)
	if err != nil {
		return Result{}, err
	}
	if err := s.checkShardEvents(sc); err != nil {
		return Result{}, err
	}
	mpl := s.cfg.MPL
	if initialMPL != nil {
		mpl = *initialMPL
	}
	st, err := s.buildStack(mpl, sc.ParallelShards && s.cfg.Shards.Count > 0)
	if err != nil {
		return Result{}, err
	}
	if len(sc.Tenants) > 0 {
		if err := applyTenants(&st, sc); err != nil {
			return Result{}, err
		}
	}
	if fs := sc.Fairness; fs != nil {
		rs, err := fs.spec(sc)
		if err != nil {
			return Result{}, err
		}
		st.Fairness = &rs
	}
	s.cur = &st
	defer func() { s.cur = nil }()
	var collector *metrics.Collector
	all := make([]metrics.Observer, 0, len(s.observers)+len(obs)+1)
	all = append(all, s.observers...)
	all = append(all, obs...)
	if sc.SampleInterval > 0 {
		collector = &metrics.Collector{}
		all = append(all, collector)
	}
	out, err := runner.Run(ctx, st, spec, all...)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Total:    reportFrom(out.Total),
		FinalMPL: out.FinalMPL,
	}
	for _, pr := range out.Phases {
		res.Phases = append(res.Phases, PhaseResult{Name: pr.Name, Kind: string(pr.Kind), Report: reportFrom(pr.Report)})
	}
	for _, sr := range out.Shards {
		res.Shards = append(res.Shards, ShardResult{
			Shard: sr.Shard, Speed: sr.Speed, Dispatched: sr.Dispatched,
			State: sr.State, Availability: sr.Availability, P95: sr.P95,
			Report: reportFrom(sr.Report),
		})
	}
	if collector != nil {
		res.Snapshots = collector.Snapshots
	}
	if out.Tune != nil {
		res.Tune = &TuneResult{
			StartMPL:   out.Tune.StartMPL,
			FinalMPL:   out.Tune.FinalMPL,
			Iterations: out.Tune.Iterations,
			Converged:  out.Tune.Converged,
		}
	}
	if out.Autoscale != nil {
		res.Autoscale = &AutoscaleResult{
			ScaleUps:     out.Autoscale.ScaleUps,
			ScaleDowns:   out.Autoscale.ScaleDowns,
			FinalFleet:   out.Autoscale.FinalFleet,
			PeakFleet:    out.Autoscale.PeakFleet,
			MinFleet:     out.Autoscale.MinFleet,
			ShardSeconds: out.Autoscale.ShardSeconds,
		}
	}
	if out.Fairness != nil {
		fr := &FairnessResult{
			Limits:     make(map[int]int, len(out.Fairness.Limits)),
			Iterations: out.Fairness.Iterations,
			Moves:      out.Fairness.Moves,
		}
		for c, l := range out.Fairness.Limits {
			fr.Limits[int(c)] = l
		}
		res.Fairness = fr
	}
	if out.SLO != nil {
		class := "high"
		if out.SLO.Class == core.ClassLow {
			class = "low"
		}
		res.SLO = &SLOResult{
			Class:        class,
			SLOLimit:     out.SLO.SLOLimit,
			OtherLimit:   out.SLO.OtherLimit,
			Iterations:   out.SLO.Iterations,
			LastMeasured: out.SLO.LastMeasured,
		}
	}
	return res, nil
}

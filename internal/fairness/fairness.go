// Package fairness implements weighted max-min fair sharing of an MPL
// gate across N tenants — the multi-tenant generalization of the
// two-class SLO partition (internal/controller).
//
// The mechanism is the paper's: the external queue and the MPL
// partition (core.Frontend class limits with work-conserving
// borrowing) already shape contention between classes without touching
// the backend. What this package adds is the policy layer for many
// tenants: a controller that measures each tenant's attained service
// over an observation window, normalizes it by the tenant's weight
// (DRF-style — the "dominant resource" of an MPL gate is its slots),
// and moves slots from the most-overserved tenant toward the
// most-underserved one. Idle tenants donate first: with
// work-conserving borrowing their reserved slots were being lent out
// anyway, so reclaiming them is free.
//
// Two invariants hold after every reaction, pinned by property tests:
// the per-class limits always sum to the gate's MPL, and every tenant
// keeps at least one slot (no tenant can be starved out entirely, so
// an aggressor can never capture the whole gate).
package fairness

import (
	"fmt"
	"sort"
	"sync"

	"extsched/internal/core"
)

// Gate is the control surface the fairness loop drives. *core.Frontend
// implements it; the live gate and the scenario runner adapt theirs.
type Gate interface {
	// MPL returns the current total limit.
	MPL() int
	// SetClassLimits partitions the MPL (see core.Frontend).
	SetClassLimits(map[core.Class]int)
	// SetStrictPartition switches the partition between
	// work-conserving and hard-cap (see core.Frontend).
	SetStrictPartition(bool)
	// Metrics returns the current observation window's per-class
	// completion counts.
	Metrics() core.Metrics
	// ResetMetrics opens a fresh observation window.
	ResetMetrics()
}

// Config tunes the fairness controller.
type Config struct {
	// Weights maps each governed tenant class to its relative share
	// weight. Required: at least 2 entries, every weight > 0. Classes
	// absent from the map are not governed (the gate's global MPL still
	// applies to them).
	Weights map[core.Class]float64
	// MinObservations gates window close: a reaction needs this many
	// completions so it never steers on noise. Default 50.
	MinObservations int
	// Hysteresis is the imbalance ratio required before a slot moves
	// from a busy donor: donorScore > Hysteresis × receiverScore
	// (scores are weight-normalized completion counts). Idle donors
	// bypass it. Default 1.2; must be >= 1.
	Hysteresis float64
	// Strict makes the partition a hard cap: a tenant at its limit
	// never borrows idle capacity. Default false (work-conserving
	// borrowing): slots a tenant is not using are lent out per
	// dispatch, which maximizes utilization but lets an overloaded
	// tenant keep the backend saturated — under strict the controller
	// is the only path by which unused slots change hands, so the
	// other tenants' in-DBMS times hold near their uncontended levels.
	Strict bool
}

func (c Config) withDefaults() Config {
	if c.MinObservations <= 0 {
		c.MinObservations = 50
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 1.2
	}
	return c
}

// Allocate splits mpl slots across the weighted classes: every class
// gets at least one slot, the remainder is spread proportionally to
// the weights by largest remainder, and the result always sums to
// exactly mpl. Ties break toward the lower class ID, so the split is
// deterministic. Panics when mpl < len(weights) (a floor of one slot
// each is then impossible) or a weight is <= 0.
func Allocate(mpl int, weights map[core.Class]float64) map[core.Class]int {
	n := len(weights)
	if n == 0 {
		return nil
	}
	if mpl < n {
		panic(fmt.Sprintf("fairness: MPL %d cannot floor %d classes at 1 slot each", mpl, n))
	}
	classes := make([]core.Class, 0, n)
	sumW := 0.0
	for c, w := range weights {
		if w <= 0 {
			panic(fmt.Sprintf("fairness: class %d weight %v must be > 0", c, w))
		}
		classes = append(classes, c)
		sumW += w
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	out := make(map[core.Class]int, n)
	spare := mpl - n
	type frac struct {
		c core.Class
		f float64
	}
	fracs := make([]frac, 0, n)
	assigned := 0
	for _, c := range classes {
		ideal := float64(spare) * weights[c] / sumW
		base := int(ideal)
		out[c] = 1 + base
		assigned += base
		fracs = append(fracs, frac{c, ideal - float64(base)})
	}
	// Largest remainder for the slots integer truncation left over;
	// ties toward the lower class ID (fracs is already class-ascending,
	// and the sort is stable).
	sort.SliceStable(fracs, func(i, j int) bool { return fracs[i].f > fracs[j].f })
	for i := 0; i < spare-assigned; i++ {
		out[fracs[i].c]++
	}
	return out
}

// Decision records one completed fairness reaction.
type Decision struct {
	Iteration int
	// Donor and Receiver are the classes a slot moved between; Moved
	// is false for a hold (no imbalance beyond hysteresis) and the
	// classes are then zero.
	Donor, Receiver core.Class
	Moved           bool
	// DonorIdle reports whether the donor had zero completions (its
	// reserved slots were idle, so the move bypassed hysteresis).
	DonorIdle bool
	// Limits is the partition AFTER the reaction.
	Limits map[core.Class]int
}

// Controller is the weighted max-min fairness loop. Wire it like the
// other controllers in this repository: call Observe once per
// completed item, from any goroutine.
type Controller struct {
	mu      sync.Mutex
	gate    Gate
	cfg     Config
	classes []core.Class // governed classes, ascending
	limits  map[core.Class]int
	history []Decision
}

// New builds a fairness controller over g and installs the initial
// weighted partition (Allocate of the gate's current MPL). The gate
// must have a finite MPL of at least one slot per governed class.
func New(g Gate, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Weights) < 2 {
		return nil, fmt.Errorf("fairness: need >= 2 weighted classes, got %d", len(cfg.Weights))
	}
	for c, w := range cfg.Weights {
		if w <= 0 {
			return nil, fmt.Errorf("fairness: class %d weight %v must be > 0", c, w)
		}
	}
	if cfg.Hysteresis < 1 {
		return nil, fmt.Errorf("fairness: hysteresis %v must be >= 1", cfg.Hysteresis)
	}
	total := g.MPL()
	if total < len(cfg.Weights) {
		return nil, fmt.Errorf("fairness: MPL %d below one slot per class (%d classes)", total, len(cfg.Weights))
	}
	// Defensive copy: the caller may mutate its map after New.
	weights := make(map[core.Class]float64, len(cfg.Weights))
	classes := make([]core.Class, 0, len(cfg.Weights))
	for c, w := range cfg.Weights {
		weights[c] = w
		classes = append(classes, c)
	}
	cfg.Weights = weights
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	ctl := &Controller{gate: g, cfg: cfg, classes: classes}
	ctl.limits = Allocate(total, cfg.Weights)
	ctl.apply()
	g.SetStrictPartition(cfg.Strict)
	g.ResetMetrics()
	return ctl, nil
}

// apply pushes a copy of the current partition to the gate (a copy so
// the gate cannot alias the controller's authoritative map). Called
// with c.mu held.
func (c *Controller) apply() {
	out := make(map[core.Class]int, len(c.limits))
	for cl, l := range c.limits {
		out[cl] = l
	}
	c.gate.SetClassLimits(out)
}

// Limits returns a copy of the current partition.
func (c *Controller) Limits() map[core.Class]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[core.Class]int, len(c.limits))
	for cl, l := range c.limits {
		out[cl] = l
	}
	return out
}

// Iterations returns the number of completed reactions.
func (c *Controller) Iterations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.history)
}

// Moves returns how many reactions actually moved a slot.
func (c *Controller) Moves() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, d := range c.history {
		if d.Moved {
			n++
		}
	}
	return n
}

// History returns the reaction log.
func (c *Controller) History() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.history
}

// Observe consumes one completion event: when the observation window
// has seen enough traffic it scores every governed tenant —
// weight-normalized attained completions — and moves one slot from the
// most-overserved donor to the most-underserved receiver, then opens a
// fresh window. Idle tenants (zero completions with more than the
// floor slot) donate first and without hysteresis; busy tenants donate
// only past the hysteresis ratio, so a balanced system holds steady.
// One slot per window keeps reactions smooth; persistent imbalance
// compounds across windows until max-min fairness is reached.
func (c *Controller) Observe() {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.gate.Metrics()
	if int(m.Completed) < c.cfg.MinObservations {
		return
	}
	// An MPL change since the last reaction invalidates the partition
	// sum: re-spread the weights over the new total and start over.
	total := c.gate.MPL()
	sum := 0
	for _, l := range c.limits {
		sum += l
	}
	if sum != total {
		if total < len(c.classes) {
			// The new MPL cannot floor every class; hold until it can.
			return
		}
		c.limits = Allocate(total, c.cfg.Weights)
		c.apply()
		c.history = append(c.history, Decision{Iteration: len(c.history) + 1, Limits: c.snapshotLimits()})
		c.gate.ResetMetrics()
		return
	}

	// Score each governed tenant: attained completions per unit weight.
	// The receiver is the busy tenant with the lowest score; the donor
	// is an idle tenant above the floor if any (its reservation was
	// being lent out anyway — reclaiming is free), else the busy tenant
	// with the highest score above the floor.
	var (
		donor, receiver    core.Class
		haveIdle, haveBusy bool
		haveRecv           bool
		maxScore           float64
		minScore           float64
	)
	for _, cl := range c.classes {
		n := m.ClassMetric(cl).Completed()
		score := float64(n) / c.cfg.Weights[cl]
		if n == 0 {
			if !haveIdle && c.limits[cl] > 1 {
				donor, haveIdle = cl, true
			}
			continue
		}
		if !haveRecv || score < minScore {
			receiver, minScore, haveRecv = cl, score, true
		}
		if c.limits[cl] > 1 && (!haveBusy || score > maxScore) {
			if !haveIdle {
				donor = cl
			}
			maxScore, haveBusy = score, true
		}
	}
	d := Decision{Iteration: len(c.history) + 1}
	haveDonor := haveIdle || haveBusy
	if haveRecv && haveDonor && donor != receiver &&
		(haveIdle || maxScore > c.cfg.Hysteresis*minScore) {
		c.limits[donor]--
		c.limits[receiver]++
		c.apply()
		d.Donor, d.Receiver, d.Moved, d.DonorIdle = donor, receiver, true, haveIdle
	}
	d.Limits = c.snapshotLimits()
	c.history = append(c.history, d)
	c.gate.ResetMetrics()
}

// snapshotLimits copies the partition for a Decision record. Called
// with c.mu held.
func (c *Controller) snapshotLimits() map[core.Class]int {
	out := make(map[core.Class]int, len(c.limits))
	for cl, l := range c.limits {
		out[cl] = l
	}
	return out
}

package experiments

import (
	"fmt"

	"extsched/internal/workload"
)

// Section32Summary reproduces the paper's §3.2 headline numbers in one
// table: the minimum MPL keeping open-system mean response time within
// tolerance of the no-MPL system, for a TPC-C-like setup (expected:
// insensitive once MPL >= ~4) and a TPC-W-like setup (expected: ~8 at
// 70% utilization, ~15 at 90%).
func Section32Summary(tolerance float64, opts RunOpts) (*Figure, error) {
	if tolerance <= 0 {
		tolerance = 0.1
	}
	f := &Figure{
		ID:    "sec3.2-summary",
		Title: fmt.Sprintf("Min MPL for mean RT within %.0f%% of no-MPL (open system)", tolerance*100),
	}
	mpls := []int{1, 2, 3, 4, 6, 8, 10, 15, 20, 30}
	type cell struct {
		setupID int
		util    float64
	}
	grid := []cell{
		{1, 0.7}, {1, 0.9}, // TPC-C-like
		{3, 0.7}, {3, 0.9}, // TPC-W-like
	}
	s := Series{Name: "min MPL"}
	for i, c := range grid {
		m, noMPL, err := minMPLForRT(c.setupID, c.util, tolerance, mpls, opts)
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, float64(i+1))
		s.Y = append(s.Y, float64(m))
		setup, _ := workload.SetupByID(c.setupID)
		f.Notes = append(f.Notes, fmt.Sprintf("x=%d: %s at %.0f%% utilization → min MPL %d (no-MPL RT %.3fs)",
			i+1, setup.Workload.Name, c.util*100, m, noMPL))
	}
	f.Series = []Series{s}
	f.Notes = append(f.Notes,
		"paper: TPC-C insensitive for MPL >= ~4; TPC-W needs ~8 at 70% and ~15 at 90%")
	return f, nil
}

// minMPLForRT measures the open system at each MPL (and without one)
// and returns the smallest MPL within (1+tolerance) of the no-MPL mean
// response time, plus that baseline RT. Returns the largest probed MPL
// +1 when none qualifies. With a parallel pool the probes (the no-MPL
// reference plus every grid MPL) fan out at once; because each probe
// is an independent deterministic run, scanning the merged results
// yields the same answer as the sequential loop, which keeps its
// early exit (DefaultWorkers == 1) to avoid probing past the answer.
func minMPLForRT(setupID int, utilization, tolerance float64, mpls []int, opts RunOpts) (int, float64, error) {
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return 0, 0, err
	}
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, opts)
	if err != nil {
		return 0, 0, err
	}
	lambda := utilization * base.Throughput()
	probe := func(m int) (float64, error) {
		r, err := RunOpen(setup, m, lambda, nil, workload.DBOptions{}, opts)
		if err != nil {
			return 0, err
		}
		return r.MeanRT(), nil
	}
	// rtAt fetches the RT for mpls[i]: lazily (sequential execution,
	// preserving the early exit — probes past the answer cost real
	// wall-clock and cannot change it) or from one up-front parallel
	// sweep of the whole grid. The scan below is shared, so both modes
	// apply the identical target and fallback.
	var noLimitRT float64
	var rtAt func(int) (float64, error)
	if EffectiveWorkers() == 1 {
		var err error
		if noLimitRT, err = probe(0); err != nil {
			return 0, 0, err
		}
		rtAt = func(i int) (float64, error) { return probe(mpls[i]) }
	} else {
		grid := append([]int{0}, mpls...) // index 0 = no-MPL reference
		rts, err := SweepContext(opts.ctx(), len(grid), func(i int) (float64, error) {
			return probe(grid[i])
		})
		if err != nil {
			return 0, 0, err
		}
		noLimitRT = rts[0]
		rtAt = func(i int) (float64, error) { return rts[i+1], nil }
	}
	target := (1 + tolerance) * noLimitRT
	for i, m := range mpls {
		rt, err := rtAt(i)
		if err != nil {
			return 0, 0, err
		}
		if rt <= target {
			return m, noLimitRT, nil
		}
	}
	return mpls[len(mpls)-1] + 1, noLimitRT, nil
}

package experiments

import (
	"fmt"

	"extsched/internal/cluster"
	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/runner"
	"extsched/internal/sim"
	"extsched/internal/workload"
)

// buildShard assembles one simulated backend (DBMS + frontend) on eng
// at the given relative CPU speed, derived deterministically from the
// base seed and the shard index.
func buildShard(eng *sim.Engine, setup workload.Setup, dbo workload.DBOptions, speed float64, idx int, opts RunOpts) (cluster.Shard, error) {
	sdbo := dbo
	sdbo.CPUSpeed = speed
	sdbo.Seed = cluster.ShardSeed(dbo.Seed, idx)
	db, err := dbms.New(eng, setup.BuildConfig(sdbo))
	if err != nil {
		return cluster.Shard{}, err
	}
	fe := dbfe.New(eng, db, 0, nil)
	if opts.QueueLimit > 0 {
		fe.SetQueueLimit(opts.QueueLimit)
	}
	workload.Prewarm(db, setup.Workload, sdbo.Seed)
	return cluster.Shard{FE: fe, DB: db, Speed: speed}, nil
}

// buildShardedStack assembles a sharded dispatch stack: one engine,
// len(speeds) DBMS+frontend pairs at the given relative CPU speeds,
// and a dispatcher with the named policy. mplTotal is the cluster-wide
// MPL (split across shards). The stack carries a NewShard factory so
// autoscaled specs can grow the fleet past the built set; policies are
// seed-aware, so sampled dispatch ("jsq-d") reruns bit-identically
// while the plain policies ignore the seed entirely.
func buildShardedStack(setup workload.Setup, speeds []float64, dispatch string, mplTotal int, dbo workload.DBOptions, opts RunOpts) (runner.Stack, error) {
	if dbo.Seed == 0 {
		dbo.Seed = opts.Seed
	}
	eng := sim.NewEngine()
	shards := make([]cluster.Shard, len(speeds))
	for i, speed := range speeds {
		sh, err := buildShard(eng, setup, dbo, speed, i, opts)
		if err != nil {
			return runner.Stack{}, err
		}
		shards[i] = sh
	}
	policy, err := cluster.NewPolicySeeded(dispatch, opts.Seed)
	if err != nil {
		return runner.Stack{}, err
	}
	disp, err := cluster.NewDispatcher(policy, shards)
	if err != nil {
		return runner.Stack{}, err
	}
	disp.SetMPL(mplTotal)
	gen, err := workload.NewGenerator(setup.Workload, opts.Seed)
	if err != nil {
		return runner.Stack{}, err
	}
	st := runner.Stack{Eng: eng, Cluster: disp, Gen: gen, Seed: opts.Seed}
	st.NewShard = func(i int) (cluster.Shard, error) {
		return buildShard(eng, setup, dbo, 1, i, opts)
	}
	return st, nil
}

// DispatchPoint is one measured sharded run.
type DispatchPoint struct {
	Policy     string
	Rho        float64 // offered load / aggregate capacity
	Lambda     float64
	Throughput float64
	MeanRT     float64
	P95        float64
	Shards     []runner.ShardReport
}

// RunDispatch measures one dispatch policy on a heterogeneous shard
// fleet under open Poisson arrivals at the given rate.
func RunDispatch(setup workload.Setup, speeds []float64, dispatch string, mplTotal int, lambda float64, opts RunOpts) (DispatchPoint, error) {
	st, err := buildShardedStack(setup, speeds, dispatch, mplTotal, workload.DBOptions{}, opts)
	if err != nil {
		return DispatchPoint{}, err
	}
	st.PercentileSamples = 4096
	out, err := runner.Run(opts.ctx(), st, runner.Spec{
		Warmup: opts.Warmup,
		Phases: []runner.Phase{{Kind: runner.KindOpen, Lambda: lambda, Duration: opts.Measure}},
	})
	if err != nil {
		return DispatchPoint{}, err
	}
	return DispatchPoint{
		Policy:     dispatch,
		Lambda:     lambda,
		Throughput: out.Total.Throughput(),
		MeanRT:     out.Total.All.Mean(),
		P95:        out.Total.P95,
		Shards:     out.Shards,
	}, nil
}

// DispatchFigure compares dispatch policies on a heterogeneous fleet:
// 4 shards of a Table 2 setup, one slowed to slowFactor of nominal
// speed, under an open arrival sweep from light load to near the
// fleet's aggregate capacity. Two series per policy: aggregate
// throughput and p95 response time against offered utilization.
//
// The paper's single-gate result says the MPL protects ONE backend;
// this figure is the multi-backend sequel: blind round-robin keeps
// feeding the slow shard its full share, so its queue — and the
// aggregate p95 — explodes long before capacity is reached, while
// queue- and work-aware policies (JSQ, least-work) route around the
// degradation and hold both throughput and tail latency.
func DispatchFigure(setupID int, slowFactor float64, opts RunOpts) (*Figure, error) {
	if slowFactor <= 0 || slowFactor > 1 {
		return nil, fmt.Errorf("experiments: slow factor %v outside (0,1]", slowFactor)
	}
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults(setup)
	// Per-shard nominal capacity from a no-MPL closed probe.
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, opts)
	if err != nil {
		return nil, err
	}
	ref := base.Throughput()
	if ref <= 0 {
		return nil, fmt.Errorf("experiments: degenerate baseline throughput")
	}
	speeds := []float64{1, 1, 1, slowFactor}
	capacity := 0.0
	for _, s := range speeds {
		capacity += s * ref
	}
	const perShardMPL = 10
	mplTotal := perShardMPL * len(speeds)
	policies := []string{cluster.PolicyRoundRobin, cluster.PolicyJSQ, cluster.PolicyLeastWork}
	rhos := []float64{0.3, 0.5, 0.7, 0.85}
	type key struct{ p, r int }
	points, err := SweepContext(opts.ctx(), len(policies)*len(rhos), func(i int) (DispatchPoint, error) {
		k := key{p: i / len(rhos), r: i % len(rhos)}
		pt, err := RunDispatch(setup, speeds, policies[k.p], mplTotal, rhos[k.r]*capacity, opts)
		if err != nil {
			return DispatchPoint{}, err
		}
		pt.Rho = rhos[k.r]
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "dispatch",
		Title: fmt.Sprintf("Sharded dispatch: 4 shards of setup %d, one at %gx speed, MPL %d/shard",
			setupID, slowFactor, perShardMPL),
	}
	for pi, pol := range policies {
		tput := Series{Name: "tput " + pol}
		p95 := Series{Name: "p95 " + pol}
		for ri, rho := range rhos {
			pt := points[pi*len(rhos)+ri]
			tput.X = append(tput.X, rho)
			tput.Y = append(tput.Y, pt.Throughput)
			p95.X = append(p95.X, rho)
			p95.Y = append(p95.Y, pt.P95)
		}
		f.Series = append(f.Series, tput)
		f.Series = append(f.Series, p95)
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("per-shard nominal capacity %.2f tx/s; fleet capacity %.2f tx/s", ref, capacity),
		"x is offered load / fleet capacity; arrivals are open Poisson",
		"expect: rr feeds the slow shard its full share, so its p95 diverges at high rho; jsq/lwl route around it")
	return f, nil
}

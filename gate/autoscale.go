package gate

import (
	"fmt"

	"extsched/internal/autoscale"
)

// AutoscaleConfig arms fleet autoscaling on a Pool: the same hysteresis
// controller the simulator's scenario autoscaler runs (scale up after
// BreachWindows consecutive intervals at or above HighWater, scale down
// only after the longer CalmWindows calm hold, cooldown between
// actions) driving the pool's ACTIVE member set. All members are built
// up front — activation is a routing decision, not an allocation — and
// the active set is always the lowest-index prefix: scale-up activates
// the next parked member, scale-down parks the highest active one and
// lets its outstanding work drain.
//
// Evaluation is traffic-driven, like the breaker's half-open probes:
// each Acquire checks whether an interval has elapsed and feeds the
// controller the active members' backlog. An idle pool therefore never
// shrinks on its own; callers who want that run their own ticker and
// call AutoscaleTick.
type AutoscaleConfig struct {
	// Min and Max bound the active member count. Min >= 1; Max 0 means
	// every built member, and must not exceed PoolConfig.Members. The
	// pool starts at Min — capacity is added on demand, which is the
	// point of autoscaling.
	Min, Max int
	// Interval is the seconds between controller evaluations (0 = 1).
	Interval float64
	// HighWater / LowWater are per-active-member backlog (queued +
	// in flight) watermarks; see the simulator's AutoscaleSpec for the
	// hysteresis semantics. Defaults: 8 and HighWater/4.
	HighWater, LowWater float64
	// BreachWindows / CalmWindows are the consecutive-interval runs
	// required to scale up / down (defaults 2 and 3*BreachWindows).
	BreachWindows, CalmWindows int
	// Cooldown is the minimum seconds between actions (0 = 2*Interval).
	Cooldown float64
}

// armAutoscale validates cfg against the built fleet and installs the
// controller. Called from NewPool before the pool is shared.
func (p *Pool) armAutoscale(cfg AutoscaleConfig) error {
	if cfg.Max == 0 {
		cfg.Max = len(p.members)
	}
	if cfg.Max > len(p.members) {
		return fmt.Errorf("gate: autoscale max %d exceeds the pool's %d members", cfg.Max, len(p.members))
	}
	ctl, err := autoscale.New(autoscale.Config{
		Min: cfg.Min, Max: cfg.Max,
		Interval:  cfg.Interval,
		HighWater: cfg.HighWater, LowWater: cfg.LowWater,
		BreachWindows: cfg.BreachWindows, CalmWindows: cfg.CalmWindows,
		Cooldown: cfg.Cooldown,
	})
	if err != nil {
		return fmt.Errorf("gate: %w", err)
	}
	p.asc = ctl
	p.active = cfg.Min
	p.ascNext = p.clock.Now()
	return nil
}

// autoscaleLocked runs one controller evaluation if the interval has
// elapsed. Callers hold p.mu.
func (p *Pool) autoscaleLocked(now float64) {
	if p.asc == nil || now < p.ascNext {
		return
	}
	p.ascNext = now + p.asc.Config().Interval
	p.observeLocked(now)
}

// observeLocked feeds the controller one measurement of the active
// members' backlog and applies its decision. Callers hold p.mu with
// the autoscaler armed.
func (p *Pool) observeLocked(now float64) {
	backlog := 0
	for i := 0; i < p.active; i++ {
		g := p.members[i]
		backlog += g.Queued() + g.Inflight()
	}
	sig := 0.0
	if p.active > 0 {
		sig = float64(backlog) / float64(p.active)
	}
	switch p.asc.Observe(now, p.active, sig) {
	case autoscale.ScaleUp:
		if p.active < len(p.members) {
			p.active++
			p.rescaleLimitLocked()
		}
	case autoscale.ScaleDown:
		if p.active > 1 {
			p.active--
			p.rescaleLimitLocked()
		}
	}
}

// rescaleLimitLocked makes the breaker's fleet limit track the active
// member count after a scale action: capacity belongs to serving
// members, so the limit the breaker re-splits over trips and
// recoveries is Member.Limit per ACTIVE member, recomputing away any
// earlier SetLimit override. Without a breaker there is nothing to do —
// each member keeps its own per-member limit and parked members simply
// receive no traffic. Callers hold p.mu.
func (p *Pool) rescaleLimitLocked() {
	if p.breaker == nil || p.memberLimit <= 0 {
		return
	}
	p.fleetLimit = p.memberLimit * p.active
	p.resplitLocked()
}

// AutoscaleTick forces one controller evaluation now, regardless of
// the traffic-driven cadence. Use it from a ticker when the pool can go
// idle: evaluation otherwise happens only on Acquire, so a pool nobody
// routes to would never scale down. A no-op when autoscaling is off.
func (p *Pool) AutoscaleTick() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.asc == nil {
		return
	}
	now := p.clock.Now()
	p.ascNext = now + p.asc.Config().Interval
	p.observeLocked(now)
}

// Active returns the number of members the dispatch policy currently
// routes to — the autoscaler's active set, or every member when
// autoscaling is off.
func (p *Pool) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.asc == nil {
		return len(p.members)
	}
	return p.active
}

// AutoscaleCounts returns the cumulative scale-up and scale-down
// actions taken so far (both 0 when autoscaling is off).
func (p *Pool) AutoscaleCounts() (ups, downs uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.asc == nil {
		return 0, 0
	}
	return p.asc.ScaleUps(), p.asc.ScaleDowns()
}

package core

import (
	"math"
	"testing"

	"extsched/internal/dbms"
	"extsched/internal/dist"
	"extsched/internal/lockmgr"
	"extsched/internal/sim"
)

// rig builds an engine + CPU-bound DB + frontend for policy tests.
func rig(t *testing.T, mpl int, policy Policy) (*sim.Engine, *Frontend) {
	t.Helper()
	eng := sim.NewEngine()
	db, err := dbms.New(eng, dbms.Config{
		CPUs: 1, Disks: 1,
		LogService: dist.NewDeterministic(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, New(eng, db, mpl, policy)
}

func prof(work float64, class lockmgr.Class, key uint64) dbms.TxnProfile {
	return dbms.TxnProfile{
		Ops:             []dbms.Op{{Key: key, CPUWork: work}},
		Class:           class,
		EstimatedDemand: work,
	}
}

func TestMPLGating(t *testing.T) {
	eng, fe := rig(t, 2, nil)
	for i := 0; i < 5; i++ {
		fe.Submit(prof(1.0, lockmgr.Low, uint64(i)))
	}
	if fe.Inside() != 2 {
		t.Errorf("inside = %d, want 2 (MPL)", fe.Inside())
	}
	if fe.QueueLen() != 3 {
		t.Errorf("queue = %d, want 3", fe.QueueLen())
	}
	eng.RunAll()
	if fe.Metrics().Completed != 5 {
		t.Errorf("completed = %d, want 5", fe.Metrics().Completed)
	}
	if fe.Inside() != 0 || fe.QueueLen() != 0 {
		t.Error("frontend not drained")
	}
}

func TestUnlimitedMPL(t *testing.T) {
	_, fe := rig(t, 0, nil)
	for i := 0; i < 10; i++ {
		fe.Submit(prof(1.0, lockmgr.Low, uint64(i)))
	}
	if fe.Inside() != 10 {
		t.Errorf("inside = %d, want 10 (no limit)", fe.Inside())
	}
}

func TestMPL1IsSerial(t *testing.T) {
	eng, fe := rig(t, 1, nil)
	var finishes []float64
	fe.OnComplete = func(tx *Txn) { finishes = append(finishes, tx.Complete) }
	for i := 0; i < 3; i++ {
		fe.Submit(prof(1.0, lockmgr.Low, uint64(i)))
	}
	eng.RunAll()
	want := []float64{1, 2, 3}
	for i, w := range want {
		if math.Abs(finishes[i]-w) > 1e-9 {
			t.Errorf("finish[%d] = %v, want %v", i, finishes[i], w)
		}
	}
}

func TestResponseTimeIncludesExternalWait(t *testing.T) {
	eng, fe := rig(t, 1, nil)
	fe.Submit(prof(1.0, lockmgr.Low, 1))
	tx := fe.Submit(prof(1.0, lockmgr.Low, 2))
	eng.RunAll()
	if math.Abs(tx.ResponseTime()-2.0) > 1e-9 {
		t.Errorf("response time = %v, want 2.0 (1 wait + 1 service)", tx.ResponseTime())
	}
	if math.Abs(tx.ExternalWait()-1.0) > 1e-9 {
		t.Errorf("external wait = %v, want 1.0", tx.ExternalWait())
	}
}

func TestRaisingMPLDispatchesImmediately(t *testing.T) {
	_, fe := rig(t, 1, nil)
	for i := 0; i < 4; i++ {
		fe.Submit(prof(1.0, lockmgr.Low, uint64(i)))
	}
	if fe.Inside() != 1 {
		t.Fatalf("inside = %d, want 1", fe.Inside())
	}
	fe.SetMPL(3)
	if fe.Inside() != 3 {
		t.Errorf("inside = %d after raise, want 3", fe.Inside())
	}
}

func TestLoweringMPLDrainsGradually(t *testing.T) {
	eng, fe := rig(t, 3, nil)
	for i := 0; i < 6; i++ {
		fe.Submit(prof(1.0, lockmgr.Low, uint64(i)))
	}
	fe.SetMPL(1)
	if fe.Inside() != 3 {
		t.Errorf("inside = %d right after lowering, want 3 (no preemption)", fe.Inside())
	}
	eng.Run(1.5) // the 3 running txns complete at t=3 (PS sharing)
	eng.RunAll()
	if fe.Metrics().Completed != 6 {
		t.Errorf("completed = %d, want 6", fe.Metrics().Completed)
	}
}

func TestPriorityPolicyOrdersHighFirst(t *testing.T) {
	eng, fe := rig(t, 1, NewPriority())
	var order []lockmgr.Class
	fe.OnComplete = func(tx *Txn) { order = append(order, tx.Class()) }
	// Occupy the server, then queue low, low, high: high must go next.
	fe.Submit(prof(1.0, lockmgr.Low, 0))
	fe.Submit(prof(1.0, lockmgr.Low, 1))
	fe.Submit(prof(1.0, lockmgr.Low, 2))
	fe.Submit(prof(1.0, lockmgr.High, 3))
	eng.RunAll()
	want := []lockmgr.Class{lockmgr.Low, lockmgr.High, lockmgr.Low, lockmgr.Low}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion classes = %v, want %v", order, want)
		}
	}
}

func TestSJFPolicyOrdering(t *testing.T) {
	eng, fe := rig(t, 1, NewSJF())
	var order []float64
	fe.OnComplete = func(tx *Txn) { order = append(order, tx.Profile.EstimatedDemand) }
	fe.Submit(prof(0.5, lockmgr.Low, 0)) // occupies server
	fe.Submit(prof(3.0, lockmgr.Low, 1))
	fe.Submit(prof(1.0, lockmgr.Low, 2))
	fe.Submit(prof(2.0, lockmgr.Low, 3))
	eng.RunAll()
	want := []float64{0.5, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("SJF order = %v, want %v", order, want)
		}
	}
}

func TestSJFTieBreakFIFO(t *testing.T) {
	p := NewSJF()
	a := &Txn{Profile: dbms.TxnProfile{EstimatedDemand: 1}, seq: 1}
	b := &Txn{Profile: dbms.TxnProfile{EstimatedDemand: 1}, seq: 2}
	p.Push(b)
	p.Push(a)
	if got := p.Pop(); got != a {
		t.Error("SJF tie should break by arrival order")
	}
}

func TestPoliciesEmptyPop(t *testing.T) {
	for _, p := range []Policy{NewFIFO(), NewPriority(), NewSJF()} {
		if p.Pop() != nil {
			t.Errorf("%s: Pop on empty should be nil", p.Name())
		}
		if p.Len() != 0 {
			t.Errorf("%s: Len on empty = %d", p.Name(), p.Len())
		}
	}
}

func TestPolicyConservationProperty(t *testing.T) {
	// Push/pop conservation under random interleavings for all
	// policies: every pushed txn pops exactly once.
	g := sim.NewRNG(3, 0)
	for _, mk := range []func() Policy{
		func() Policy { return NewFIFO() },
		func() Policy { return NewPriority() },
		func() Policy { return NewSJF() },
	} {
		p := mk()
		pushed := map[*Txn]bool{}
		popped := 0
		var seq uint64
		for i := 0; i < 2000; i++ {
			if g.IntN(2) == 0 {
				class := lockmgr.Low
				if g.IntN(5) == 0 {
					class = lockmgr.High
				}
				tx := &Txn{
					Profile: dbms.TxnProfile{EstimatedDemand: g.Float64(), Class: class},
					seq:     seq,
				}
				seq++
				pushed[tx] = true
				p.Push(tx)
			} else if tx := p.Pop(); tx != nil {
				if !pushed[tx] {
					t.Fatalf("%s: popped unknown txn", p.Name())
				}
				delete(pushed, tx)
				popped++
			}
		}
		for tx := p.Pop(); tx != nil; tx = p.Pop() {
			if !pushed[tx] {
				t.Fatalf("%s: popped unknown txn at drain", p.Name())
			}
			delete(pushed, tx)
			popped++
		}
		if len(pushed) != 0 {
			t.Errorf("%s: %d transactions lost", p.Name(), len(pushed))
		}
	}
}

func TestMetricsWindowReset(t *testing.T) {
	eng, fe := rig(t, 1, nil)
	fe.Submit(prof(1.0, lockmgr.Low, 1))
	eng.RunAll()
	if fe.Metrics().Completed != 1 {
		t.Fatal("first completion not recorded")
	}
	fe.ResetMetrics()
	if fe.Metrics().Completed != 0 {
		t.Error("reset did not clear completions")
	}
	fe.Submit(prof(1.0, lockmgr.Low, 2))
	eng.RunAll()
	m := fe.Metrics()
	if m.Completed != 1 {
		t.Errorf("completed = %d in new window, want 1", m.Completed)
	}
	// Throughput = 1 completion / 1 second window.
	if math.Abs(m.Throughput()-1.0) > 1e-9 {
		t.Errorf("throughput = %v, want 1.0", m.Throughput())
	}
}

func TestPerClassMetrics(t *testing.T) {
	eng, fe := rig(t, 0, nil)
	fe.Submit(prof(1.0, lockmgr.High, 1))
	fe.Submit(prof(1.0, lockmgr.Low, 2))
	eng.RunAll()
	m := fe.Metrics()
	if m.High.Count() != 1 || m.Low.Count() != 1 {
		t.Errorf("class counts = %d/%d, want 1/1", m.High.Count(), m.Low.Count())
	}
	if m.All.Count() != 2 {
		t.Errorf("all count = %d, want 2", m.All.Count())
	}
}

func TestNegativeMPLPanics(t *testing.T) {
	_, fe := rig(t, 1, nil)
	defer func() {
		if recover() == nil {
			t.Error("negative MPL did not panic")
		}
	}()
	fe.SetMPL(-1)
}

func TestAdmissionControlDrops(t *testing.T) {
	eng, fe := rig(t, 1, nil)
	fe.SetQueueLimit(2)
	var droppedTxns int
	fe.OnDrop = func(*Txn) { droppedTxns++ }
	// 1 dispatches, 2 queue, 2 drop.
	for i := 0; i < 5; i++ {
		fe.Submit(prof(1.0, lockmgr.Low, uint64(i)))
	}
	if fe.QueueLen() != 2 {
		t.Errorf("queue = %d, want 2", fe.QueueLen())
	}
	if fe.Dropped() != 2 || droppedTxns != 2 {
		t.Errorf("dropped = %d/%d, want 2/2", fe.Dropped(), droppedTxns)
	}
	eng.RunAll()
	if fe.Metrics().Completed != 3 {
		t.Errorf("completed = %d, want 3 (admitted only)", fe.Metrics().Completed)
	}
}

func TestAdmissionControlDisabledByDefault(t *testing.T) {
	_, fe := rig(t, 1, nil)
	for i := 0; i < 50; i++ {
		fe.Submit(prof(1.0, lockmgr.Low, uint64(i)))
	}
	if fe.Dropped() != 0 {
		t.Errorf("dropped = %d without a queue limit", fe.Dropped())
	}
	if fe.QueueLen() != 49 {
		t.Errorf("queue = %d, want 49", fe.QueueLen())
	}
}

func TestNegativeQueueLimitPanics(t *testing.T) {
	_, fe := rig(t, 1, nil)
	defer func() {
		if recover() == nil {
			t.Error("negative queue limit did not panic")
		}
	}()
	fe.SetQueueLimit(-1)
}

package sim

import (
	"sync"
	"testing"
	"time"
)

func TestEngineClockNowTracksEngine(t *testing.T) {
	eng := NewEngine()
	c := eng.Clock()
	if c.Now() != 0 {
		t.Fatalf("Now = %v at start, want 0", c.Now())
	}
	eng.At(5, func() {})
	eng.RunAll()
	if c.Now() != 5 {
		t.Errorf("Now = %v after running to t=5", c.Now())
	}
}

func TestEngineClockAfterFiresInVirtualTime(t *testing.T) {
	eng := NewEngine()
	c := eng.Clock()
	var at float64 = -1
	c.After(3, func() { at = eng.Now() })
	eng.RunAll()
	if at != 3 {
		t.Errorf("callback fired at %v, want 3", at)
	}
}

func TestEngineClockCancel(t *testing.T) {
	eng := NewEngine()
	c := eng.Clock()
	fired := false
	tm := c.After(1, func() { fired = true })
	tm.Cancel()
	tm.Cancel() // repeated cancel is a no-op
	eng.RunAll()
	if fired {
		t.Error("canceled timer fired")
	}
}

func TestEngineClockNegativeDelayClamps(t *testing.T) {
	eng := NewEngine()
	eng.At(2, func() {})
	eng.RunAll() // clock at 2
	fired := false
	eng.Clock().After(-1, func() { fired = true })
	eng.RunAll()
	if !fired {
		t.Error("negative-delay callback never fired")
	}
}

func TestWallClockMonotonic(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Errorf("wall clock did not advance: %v -> %v", a, b)
	}
	if a < 0 || a > 1 {
		t.Errorf("epoch-relative Now = %v, want near zero", a)
	}
}

func TestWallClockAfterFires(t *testing.T) {
	c := NewWallClock()
	done := make(chan float64, 1)
	c.After(0.001, func() { done <- c.Now() })
	select {
	case at := <-done:
		if at < 0.001 {
			t.Errorf("fired at %v, before the 1 ms delay", at)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestWallClockCancelStopsTimer(t *testing.T) {
	c := NewWallClock()
	fired := make(chan struct{}, 1)
	tm := c.After(0.05, func() { fired <- struct{}{} })
	tm.Cancel()
	tm.Cancel()
	select {
	case <-fired:
		t.Error("canceled wall timer fired")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestWallClockConcurrentUse(t *testing.T) {
	c := NewWallClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = c.Now()
				c.After(0.0001, func() {}).Cancel()
			}
		}()
	}
	wg.Wait()
}

package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"extsched/internal/sim"
)

// admitSignal mirrors the live gate's per-item ticket slot: Backend.Exec
// (a queued item dispatching) and the OnShed hook each deliver exactly
// one token on ch, and shed is written before the send so the receiver
// reads it race-free. The submitter that owns the item is the only
// receiver — exactly the gate's semantics, where the acquirer owns the
// item until it hands the ticket back.
type admitSignal struct {
	ch   chan struct{}
	shed atomic.Bool
}

// TestFrontendConcurrentInvariants is the concurrent twin of
// TestFrontendRandomOpsInvariants: N goroutines drive the frontend
// through the same lifecycle the live gate uses — TryAcquire fast
// admits, Submit with a per-item admitted channel, CancelQueued races,
// Discard after admission — while another goroutine flaps class
// limits and admit deadlines to force slow-flag transitions under
// load. Run it with -race: the assertions are
//
//  1. inside <= MPL observed at every admission (fast path included);
//  2. conservation after the drain —
//     accepted == completed + canceled + shed, cross-checked against
//     the frontend's own counters;
//  3. no item is ever signaled twice or completed twice (the buffered
//     channel would deadlock or panic the state machine).
func TestFrontendConcurrentInvariants(t *testing.T) {
	const mpl = 8
	workers := 8
	iters := 2000
	if testing.Short() {
		iters = 300
	}

	var fe *Frontend
	checkInside := func() {
		if got := fe.Inside(); got > mpl {
			t.Errorf("inside=%d > MPL=%d", got, mpl)
		}
	}
	exec := backendFunc(func(it *Item) {
		checkInside()
		it.Payload.(*admitSignal).ch <- struct{}{}
	})
	fe = New(sim.NewWallClock(), exec, mpl, NewFIFO())

	var shedCount atomic.Uint64
	fe.OnShed = func(it *Item) {
		s := it.Payload.(*admitSignal)
		s.shed.Store(true)
		shedCount.Add(1)
		s.ch <- struct{}{}
	}

	var accepted, completed, canceled atomic.Uint64
	stop := make(chan struct{})

	// Flapper: arms and clears class partitions and admit deadlines,
	// which toggles the slow flag and the deadlineArmed gate — every
	// submitter keeps crossing the fast/slow boundary.
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				fe.SetClassLimits(nil)
				fe.SetAdmitDeadline(ClassHigh, 0)
				fe.SetAdmitDeadline(ClassLow, 0)
				return
			default:
			}
			switch i % 4 {
			case 0:
				fe.SetClassLimits(map[Class]int{ClassHigh: 1 + rng.Intn(3), ClassLow: 1 + rng.Intn(3)})
			case 1:
				fe.SetClassLimits(nil)
			case 2:
				fe.SetAdmitDeadline(Class(rng.Intn(2)), 0.5)
			case 3:
				fe.SetAdmitDeadline(ClassHigh, 0)
				fe.SetAdmitDeadline(ClassLow, 0)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				sig := &admitSignal{ch: make(chan struct{}, 1)}
				it := &Item{Class: Class(rng.Intn(2)), SizeHint: rng.Float64(), Payload: sig}
				if rng.Intn(2) == 0 && fe.TryAcquire(it) {
					// Fast admit: the caller owns the slot.
					checkInside()
					accepted.Add(1)
					if rng.Intn(16) == 0 {
						fe.Discard(it)
						canceled.Add(1)
					} else {
						fe.Complete(it, Outcome{InsideTime: rng.Float64()})
						completed.Add(1)
					}
					continue
				}
				if !fe.Submit(it, nil) {
					continue // not accepted (queue limit — unused here)
				}
				accepted.Add(1)
				if rng.Intn(4) == 0 && fe.CancelQueued(it) {
					canceled.Add(1)
					continue
				}
				// Either it dispatched (Exec sent the token) or a
				// deadline shed it (OnShed sent the token). Exactly one
				// sender ever touches sig.ch.
				<-sig.ch
				if sig.shed.Load() {
					continue // counted by the hook
				}
				if rng.Intn(16) == 0 {
					fe.Discard(it)
					canceled.Add(1)
				} else {
					fe.Complete(it, Outcome{InsideTime: rng.Float64()})
					completed.Add(1)
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(stop)
	flapWG.Wait()

	// Every submitter resolved its own items before exiting, so the
	// gate must be empty — anything left queued or inside leaked.
	if got := fe.Inside(); got != 0 {
		t.Errorf("Inside=%d after drain, want 0", got)
	}
	if got := fe.QueueLen(); got != 0 {
		t.Errorf("QueueLen=%d after drain, want 0", got)
	}
	acc, comp, canc, shed := accepted.Load(), completed.Load(), canceled.Load(), shedCount.Load()
	if comp+canc+shed != acc {
		t.Errorf("conservation: completed %d + canceled %d + shed %d != accepted %d", comp, canc, shed, acc)
	}
	if got := fe.Canceled(); got != canc {
		t.Errorf("Canceled()=%d, model %d", got, canc)
	}
	if got := fe.Shed(); got != shed {
		t.Errorf("Shed()=%d, model %d", got, shed)
	}
	if got := fe.Metrics().Completed; got != comp {
		t.Errorf("Metrics().Completed=%d, model %d", got, comp)
	}
}

package gate

import (
	"context"
	"testing"
)

// BenchmarkGateAcquireRelease measures the uncontended serial fast
// path: an unlimited gate, so every Acquire admits on the lock-free
// word and Release never wakes a waiter. This is the pure overhead the
// gate adds to a guarded call — target 0 allocs/op (ticket slots come
// from the per-gate pool).
func BenchmarkGateAcquireRelease(b *testing.B) {
	g, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tk, err := g.Acquire(ctx)
		if err != nil {
			b.Fatal(err)
		}
		tk.Release(Result{})
	}
}

// BenchmarkGateAcquireReleaseParallel is the same uncontended path
// under RunParallel — run with -cpu 2,4,8 to see how the lock-free
// admit word scales. With no queue the goroutines contend only on the
// CAS, so throughput should stay near-flat per core.
func BenchmarkGateAcquireReleaseParallel(b *testing.B) {
	g, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tk, err := g.Acquire(ctx)
			if err != nil {
				b.Error(err)
				return
			}
			tk.Release(Result{})
		}
	})
}

// BenchmarkGatePoolAcquireReleaseParallel sends the same uncontended
// traffic through a Pool (round-robin over 4 unlimited members), so
// the routing lock plus the member fast path is what's measured.
func BenchmarkGatePoolAcquireReleaseParallel(b *testing.B) {
	p, err := NewPool(PoolConfig{Members: 4, Dispatch: "rr"})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tk, err := p.Acquire(ctx)
			if err != nil {
				b.Error(err)
				return
			}
			tk.Release(Result{})
		}
	})
}

// BenchmarkGateAcquireReleaseContended runs more goroutines than
// slots, so most Acquires queue and every Release hands its slot to a
// waiter — the handoff (mutex + policy) path a saturated service
// lives on.
func BenchmarkGateAcquireReleaseContended(b *testing.B) {
	g, err := New(Config{Limit: 4})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.SetParallelism(4) // 4×GOMAXPROCS goroutines over 4 slots
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tk, err := g.Acquire(ctx)
			if err != nil {
				b.Error(err)
				return
			}
			tk.Release(Result{})
		}
	})
}

// BenchmarkGateAcquireReleaseWFQ exercises the most expensive policy
// on the contended path.
func BenchmarkGateAcquireReleaseWFQ(b *testing.B) {
	g, err := New(Config{Limit: 4, Policy: WFQ})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.SetParallelism(4)
	b.RunParallel(func(pb *testing.PB) {
		class := Class(0)
		for pb.Next() {
			class ^= 1
			tk, err := g.AcquireRequest(ctx, Request{Class: class, SizeHint: 0.001})
			if err != nil {
				b.Error(err)
				return
			}
			tk.Release(Result{})
		}
	})
}

package sim

import (
	"math"
	"strings"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(2.0, func() { got = append(got, 2) })
	e.At(1.0, func() { got = append(got, 1) })
	e.At(3.0, func() { got = append(got, 3) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3.0 {
		t.Errorf("Now() = %v, want 3.0", e.Now())
	}
}

func TestEngineStableTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5.0, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1.0, func() { fired = true })
	if !ev.Pending() {
		t.Error("Pending() = false before Cancel")
	}
	e.Cancel(ev)
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	if ev.Pending() {
		t.Error("Pending() = true after Cancel")
	}
	e.RunAll()
	if fired {
		t.Error("canceled event fired")
	}
}

func TestEngineCancelZeroHandleNoop(t *testing.T) {
	e := NewEngine()
	e.Cancel(Handle{}) // must not panic
	if (Handle{}).Pending() || (Handle{}).Canceled() {
		t.Error("zero handle reports live state")
	}
}

// TestEngineStaleHandleCancel pins the pool-safety contract: after an
// event fires, its record is recycled for new events, and canceling
// the stale handle must not touch the new occupant.
func TestEngineStaleHandleCancel(t *testing.T) {
	e := NewEngine()
	first := e.At(1.0, func() {})
	e.RunAll()
	if first.Pending() || first.Canceled() {
		t.Error("fired handle still reports live state")
	}
	secondFired := false
	second := e.At(2.0, func() { secondFired = true })
	e.Cancel(first) // stale: must be a no-op even though the record was recycled
	if !second.Pending() {
		t.Error("stale Cancel invalidated a recycled event")
	}
	e.RunAll()
	if !secondFired {
		t.Error("recycled event did not fire after stale Cancel")
	}
}

// TestEngineRunClockNeverRegresses pins the Run guard: calling Run
// with a bound in the past fires nothing and leaves the clock alone.
func TestEngineRunClockNeverRegresses(t *testing.T) {
	e := NewEngine()
	e.At(10.0, func() {})
	e.RunAll()
	if e.Now() != 10.0 {
		t.Fatalf("Now() = %v, want 10", e.Now())
	}
	e.At(20.0, func() {})
	if n := e.Run(5.0); n != 0 {
		t.Errorf("Run(5) fired %d events, want 0", n)
	}
	if e.Now() != 10.0 {
		t.Errorf("Now() = %v after Run(5), want 10 (clock must not move backward)", e.Now())
	}
	if n := e.RunAll(); n != 1 {
		t.Errorf("RunAll fired %d events, want 1", n)
	}
}

// TestEngineEventReuse exercises the free list across many
// schedule/fire and schedule/cancel cycles, checking ordering and
// counts survive recycling.
func TestEngineEventReuse(t *testing.T) {
	e := NewEngine()
	var fired int
	for round := 0; round < 1000; round++ {
		keep := e.After(1, func() { fired++ })
		drop := e.After(0.5, func() { t.Error("canceled event fired") })
		e.Cancel(drop)
		if !keep.Pending() {
			t.Fatal("live handle lost pending state")
		}
		e.RunAll()
	}
	if fired != 1000 {
		t.Errorf("fired = %d, want 1000", fired)
	}
	if e.Processed() != 1000 {
		t.Errorf("Processed() = %d, want 1000", e.Processed())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(1.0, tick)
		}
	}
	e.After(1.0, tick)
	e.RunAll()
	if count != 100 {
		t.Errorf("count = %d, want 100", count)
	}
	if e.Now() != 100.0 {
		t.Errorf("Now() = %v, want 100", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []float64
	for i := 1; i <= 10; i++ {
		tm := float64(i)
		e.At(tm, func() { got = append(got, tm) })
	}
	n := e.Run(5.5)
	if n != 5 {
		t.Errorf("fired %d events, want 5", n)
	}
	if e.Now() != 5.5 {
		t.Errorf("Now() = %v, want 5.5 after bounded run", e.Now())
	}
	n = e.RunAll()
	if n != 5 {
		t.Errorf("fired %d more events, want 5", n)
	}
}

// TestEngineRunBoundInclusive pins the Run contract the parallel
// window barrier depends on: an event scheduled at exactly the bound
// fires, and the clock lands on the bound. The doc used to say
// "(exclusive)" while the loop fired inclusively — this test keeps the
// intended (inclusive) semantics from regressing either way.
func TestEngineRunBoundInclusive(t *testing.T) {
	e := NewEngine()
	var fired []float64
	e.At(4.0, func() { fired = append(fired, 4) })
	e.At(5.0, func() { fired = append(fired, 5) })
	e.At(5.0, func() {
		fired = append(fired, 5)
		// A same-instant cascade scheduled at the bound from inside a
		// bound event must fire within the same Run call.
		e.At(5.0, func() { fired = append(fired, 5) })
	})
	e.At(math.Nextafter(5.0, 6.0), func() { fired = append(fired, 6) })
	if n := e.Run(5.0); n != 4 {
		t.Errorf("Run(5) fired %d events, want 4 (events at exactly the bound are inclusive)", n)
	}
	if e.Now() != 5.0 {
		t.Errorf("Now() = %v, want the clock to land on the bound 5.0", e.Now())
	}
	want := []float64{4, 5, 5, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if n := e.RunAll(); n != 1 {
		t.Errorf("event just after the bound fired %d times in RunAll, want 1", n)
	}
}

// TestEnginePendingExcludesCanceled pins the live-event counter:
// canceling the only queued event must make Pending report zero
// immediately, even though the heap slot is discarded lazily —
// otherwise "queue drained?" checks (parallel termination detection)
// spuriously report pending work.
func TestEnginePendingExcludesCanceled(t *testing.T) {
	e := NewEngine()
	h := e.At(1.0, func() { t.Error("canceled event fired") })
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d before Cancel, want 1", e.Pending())
	}
	e.Cancel(h)
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after canceling the only event, want 0", e.Pending())
	}
	// Double-cancel must not drive the counter negative.
	e.Cancel(h)
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after double Cancel, want 0", e.Pending())
	}
	if got := e.NextEventTime(); !math.IsInf(got, 1) {
		t.Errorf("NextEventTime() = %v with only a canceled event, want +Inf", got)
	}
	e.RunAll()
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after RunAll, want 0", e.Pending())
	}
	// And firing still decrements: schedule two, cancel one, fire one.
	h2 := e.At(2.0, func() {})
	e.At(3.0, func() {})
	e.Cancel(h2)
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d with one live + one canceled, want 1", e.Pending())
	}
	e.RunAll()
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after draining, want 0", e.Pending())
	}
}

// TestEngineAtPanicMessages table-tests the two At guards: non-finite
// times must trip the non-finite panic (checked first, so At(NaN)
// never depends on how NaN compares against the clock), and finite
// past times must trip the in-the-past panic.
func TestEngineAtPanicMessages(t *testing.T) {
	cases := []struct {
		name string
		t    float64
		want string
	}{
		{"nan", math.NaN(), "non-finite time"},
		{"pos-inf", math.Inf(1), "non-finite time"},
		{"neg-inf", math.Inf(-1), "non-finite time"},
		{"past", 1.0, "before now"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine()
			e.At(5.0, func() {})
			e.RunAll() // clock at 5, so t=1 is in the past
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("At(%v) did not panic", tc.t)
				}
				msg, ok := r.(string)
				if !ok {
					t.Fatalf("At(%v) panicked with %T, want string", tc.t, r)
				}
				if !strings.Contains(msg, tc.want) {
					t.Errorf("At(%v) panic %q, want it to mention %q", tc.t, msg, tc.want)
				}
			}()
			e.At(tc.t, func() {})
		})
	}
}

// TestEngineAdvanceTo pins the conservative-sync primitive: forward
// jumps below the next event are fine, backward jumps are no-ops, and
// jumping over a live event panics.
func TestEngineAdvanceTo(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(3.0)
	if e.Now() != 3.0 {
		t.Fatalf("Now() = %v after AdvanceTo(3), want 3", e.Now())
	}
	e.AdvanceTo(1.0) // backward: no-op
	if e.Now() != 3.0 {
		t.Errorf("Now() = %v after backward AdvanceTo, want 3", e.Now())
	}
	h := e.At(5.0, func() {})
	e.AdvanceTo(5.0) // exactly the next event time is allowed
	if e.Now() != 5.0 {
		t.Errorf("Now() = %v, want 5", e.Now())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AdvanceTo past a live event did not panic")
			}
		}()
		e.AdvanceTo(6.0)
	}()
	// A canceled event is not a barrier.
	e.Cancel(h)
	e.AdvanceTo(7.0)
	if e.Now() != 7.0 {
		t.Errorf("Now() = %v after AdvanceTo over a canceled event, want 7", e.Now())
	}
	if got := e.NextEventTime(); !math.IsInf(got, 1) {
		t.Errorf("NextEventTime() = %v, want +Inf", got)
	}
	e.At(9.0, func() {})
	if got := e.NextEventTime(); got != 9.0 {
		t.Errorf("NextEventTime() = %v, want 9", got)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 3 {
		t.Errorf("count = %d, want 3 (stopped)", count)
	}
	if !e.Stopped() {
		t.Error("Stopped() = false")
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(5.0, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1.0, func() {})
	})
	e.RunAll()
}

func TestEngineNonFiniteTimePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("scheduling at NaN did not panic")
		}
	}()
	e.At(math.NaN(), func() {})
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, 1)
	b := NewRNG(42, 1)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed streams diverge")
		}
	}
	c := NewRNG(42, 2)
	same := true
	a2 := NewRNG(42, 1)
	for i := 0; i < 16; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different-stream RNGs produced identical prefix")
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(7, 0)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Errorf("exp mean = %v, want ~1.0", mean)
	}
}

func TestRNGFork(t *testing.T) {
	g := NewRNG(1, 1)
	f1 := g.Fork()
	f2 := g.Fork()
	if f1.Float64() == f2.Float64() && f1.Float64() == f2.Float64() {
		t.Error("forked streams look identical")
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(float64(i), func() {})
	}
	ev := e.At(10, func() {})
	e.Cancel(ev)
	e.RunAll()
	if e.Processed() != 5 {
		t.Errorf("Processed() = %d, want 5", e.Processed())
	}
}

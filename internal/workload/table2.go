package workload

import (
	"fmt"

	"extsched/internal/dbms"
	"extsched/internal/lockmgr"
	"extsched/internal/sim"
)

// Setup is one Table 2 experimental configuration: a workload bound to
// a hardware shape and isolation level.
type Setup struct {
	ID        int
	Workload  Spec
	CPUs      int
	Disks     int
	Isolation dbms.Isolation
}

// String renders the setup like a Table 2 row.
func (s Setup) String() string {
	return fmt.Sprintf("setup %d: %s cpus=%d disks=%d iso=%s",
		s.ID, s.Workload.Name, s.CPUs, s.Disks, s.Isolation)
}

// Table2 returns the paper's 17 setups.
func Table2() []Setup {
	cpuInv := WCPUInventory()
	cpuBro := WCPUBrowsing()
	ioInv := WIOInventory()
	ioBro := WIOBrowsing()
	cpuIO := WCPUIOInventory()
	cpuOrd := WCPUOrdering()
	return []Setup{
		{ID: 1, Workload: cpuInv, CPUs: 1, Disks: 1, Isolation: dbms.RR},
		{ID: 2, Workload: cpuInv, CPUs: 2, Disks: 1, Isolation: dbms.RR},
		{ID: 3, Workload: cpuBro, CPUs: 1, Disks: 1, Isolation: dbms.RR},
		{ID: 4, Workload: cpuBro, CPUs: 2, Disks: 1, Isolation: dbms.RR},
		{ID: 5, Workload: ioInv, CPUs: 1, Disks: 1, Isolation: dbms.RR},
		{ID: 6, Workload: ioInv, CPUs: 1, Disks: 2, Isolation: dbms.RR},
		{ID: 7, Workload: ioInv, CPUs: 1, Disks: 3, Isolation: dbms.RR},
		{ID: 8, Workload: ioInv, CPUs: 1, Disks: 4, Isolation: dbms.RR},
		{ID: 9, Workload: ioBro, CPUs: 1, Disks: 1, Isolation: dbms.RR},
		{ID: 10, Workload: ioBro, CPUs: 1, Disks: 4, Isolation: dbms.RR},
		{ID: 11, Workload: cpuIO, CPUs: 1, Disks: 1, Isolation: dbms.RR},
		{ID: 12, Workload: cpuIO, CPUs: 2, Disks: 4, Isolation: dbms.RR},
		{ID: 13, Workload: cpuOrd, CPUs: 1, Disks: 1, Isolation: dbms.RR},
		{ID: 14, Workload: cpuOrd, CPUs: 1, Disks: 1, Isolation: dbms.UR},
		{ID: 15, Workload: cpuOrd, CPUs: 2, Disks: 1, Isolation: dbms.RR},
		{ID: 16, Workload: cpuOrd, CPUs: 2, Disks: 1, Isolation: dbms.UR},
		{ID: 17, Workload: cpuInv, CPUs: 1, Disks: 1, Isolation: dbms.UR},
	}
}

// SetupByID returns the Table 2 setup with the given id (1-based).
func SetupByID(id int) (Setup, error) {
	for _, s := range Table2() {
		if s.ID == id {
			return s, nil
		}
	}
	return Setup{}, fmt.Errorf("workload: unknown setup %d", id)
}

// DBOptions customize the engine built for a setup.
type DBOptions struct {
	// LockPolicy orders lock wait queues. Default FIFO.
	LockPolicy lockmgr.Policy
	// POW enables Preempt-on-Wait lock preemption.
	POW bool
	// CPUPriority enables internal CPU prioritization.
	CPUPriority bool
	// GroupCommit batches commit log writes (see dbms.Config).
	GroupCommit bool
	// CPUSpeed scales the CPU cores' speed (0 = 1, nominal) — cluster
	// shards use it to model heterogeneous or degraded replicas.
	CPUSpeed float64
	// Seed drives all of the DB's internal randomness.
	Seed uint64
}

// BuildConfig assembles the dbms.Config for a setup.
func (s Setup) BuildConfig(opts DBOptions) dbms.Config {
	return dbms.Config{
		CPUs:            s.CPUs,
		CPUSpeed:        opts.CPUSpeed,
		Disks:           s.Disks,
		DiskService:     s.Workload.DiskService,
		LogService:      s.Workload.LogService,
		BufferPoolPages: s.Workload.BufferPoolPages,
		Isolation:       s.Isolation,
		LockPolicy:      opts.LockPolicy,
		POW:             opts.POW,
		CPUPriority:     opts.CPUPriority,
		GroupCommit:     opts.GroupCommit,
		Seed:            opts.Seed,
	}
}

// Demands returns the setup's aggregate per-transaction CPU and I/O
// demand estimates (seconds), the inputs to the MVA jump-start model.
func (s Setup) Demands() (cpu, io float64) {
	return s.Workload.MeanCPUDemand(), s.Workload.MeanIODemand()
}

// Prewarm brings db's buffer pool to its steady-state working set
// without consuming simulated time, so measurements don't include the
// cold-start miss storm (the paper measures steady state; a real
// benchmark run warms for minutes first). Fully-cached workloads get
// every page touched once; partially-cached ones get the LRU driven by
// the access pattern until its content distribution stabilizes.
func Prewarm(db *dbms.DB, spec Spec, seed uint64) {
	pool := db.Pool()
	pat := spec.Pattern()
	if uint64(pool.Capacity()) >= spec.DBPages {
		for p := uint64(0); p < spec.DBPages; p++ {
			pool.Access(p)
		}
	} else {
		g := sim.NewRNG(seed, 77)
		n := 5 * pool.Capacity()
		for i := 0; i < n; i++ {
			pool.Access(pat.Sample(g))
		}
	}
	pool.ResetStats()
}

package workload

import (
	"fmt"

	"extsched/internal/dbms"
	"extsched/internal/sim"
	"extsched/internal/trace"
)

// TraceDriver replays a recorded (or synthesized) trace through a
// frontend: each record arrives at its traced timestamp with its
// traced service demand. This is how the production-trace comparison
// of Section 3.2 is exercised end to end, and how a user would feed
// their own transaction logs to the tool to pick an MPL.
//
// Records are scheduled one at a time (the next record's arrival event
// is created when the previous one fires), so replaying a million-row
// trace holds one pending event, and Pause/Resume can shift the
// remaining schedule without touching already-created events: pausing
// freezes the trace clock, resuming shifts the base so inter-arrival
// gaps are preserved across the gap.
type TraceDriver struct {
	eng      *sim.Engine
	fe       Sink
	tr       *trace.Trace
	profiles []dbms.TxnProfile
	stopped  bool
	paused   bool
	pending  sim.Handle
	// base maps trace time to engine time: record i fires at
	// base + (arrival[i] - arrival[0]) / Speedup.
	base    float64
	next    int
	started uint64
	// Speedup divides the trace's inter-arrival times (2.0 = replay
	// twice as fast, stressing the system at twice the traced load).
	// Set it before Start.
	Speedup float64
}

// NewTraceDriver validates the trace and returns a replayer.
func NewTraceDriver(eng *sim.Engine, fe Sink, tr *trace.Trace) (*TraceDriver, error) {
	if tr.Len() == 0 {
		return nil, fmt.Errorf("workload: cannot replay an empty trace")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &TraceDriver{eng: eng, fe: fe, tr: tr, Speedup: 1}, nil
}

// Start schedules the first record's arrival. The trace's first arrival
// is shifted to the engine's current time.
func (d *TraceDriver) Start() {
	if d.Speedup <= 0 {
		panic(fmt.Sprintf("workload: replay speedup %v must be positive", d.Speedup))
	}
	d.base = d.eng.Now()
	d.profiles = d.tr.ToProfiles()
	d.schedule()
}

// Stop suppresses any arrivals not yet fired.
func (d *TraceDriver) Stop() { d.stopped = true }

// Pause freezes the replay after the in-flight record; remaining
// records wait until Resume.
func (d *TraceDriver) Pause() {
	if d.stopped || d.paused {
		return
	}
	d.paused = true
	d.eng.Cancel(d.pending)
}

// Resume continues the replay: the next record fires as if the paused
// interval had not happened (the base shifts by the pause length), so
// the trace's inter-arrival structure is preserved.
func (d *TraceDriver) Resume() {
	if d.stopped || !d.paused {
		return
	}
	d.paused = false
	if at := d.arrivalTime(d.next); at < d.eng.Now() {
		d.base += d.eng.Now() - at
	}
	d.schedule()
}

// Started returns the number of records already submitted.
func (d *TraceDriver) Started() uint64 { return d.started }

// Done reports whether every record has been submitted.
func (d *TraceDriver) Done() bool { return d.next >= d.tr.Len() }

// arrivalTime returns the engine time record i is due at.
func (d *TraceDriver) arrivalTime(i int) float64 {
	return d.base + (d.tr.Records[i].Arrival-d.tr.Records[0].Arrival)/d.Speedup
}

func (d *TraceDriver) schedule() {
	if d.stopped || d.paused || d.next >= d.tr.Len() {
		return
	}
	at := d.arrivalTime(d.next)
	if now := d.eng.Now(); at < now {
		at = now
	}
	d.pending = d.eng.At(at, d.fire)
}

func (d *TraceDriver) fire() {
	if d.stopped || d.paused {
		return
	}
	profile := d.profiles[d.next]
	d.next++
	d.started++
	d.fe.Submit(profile)
	d.schedule()
}

package core

import (
	"math/rand"
	"testing"

	"extsched/internal/sim"
)

// TestFrontendRandomOpsInvariants is a property test over randomized
// operation sequences (seeded math/rand, so a failure replays): any
// interleaving of Submit, Complete, CancelQueued, SetMPL and
// SetQueueLimit across every policy must preserve the gate's core
// invariants:
//
//  1. admission respects the limit — at every dispatch instant,
//     inside <= MPL (when finite);
//  2. conservation — accepted submissions are exactly partitioned into
//     completed + inside + queued + canceled + shed;
//  3. queue-length accounting never goes negative, and cancellations
//     never complete;
//  4. shed items never dispatch, and items never both shed and
//     complete.
//
// The op mix includes the PR 5 additions: per-class admission
// deadlines with clock advancement (lazy dispatch-time shedding),
// eager ShedQueued, and class-limit partitions with work-conserving
// borrowing.
func TestFrontendRandomOpsInvariants(t *testing.T) {
	for _, pol := range []struct {
		name string
		mk   func() Policy
	}{
		{"fifo", func() Policy { return NewFIFO() }},
		{"priority", func() Policy { return NewPriority() }},
		{"sjf", func() Policy { return NewSJF() }},
		{"wfq", func() Policy { return NewWFQ(map[Class]float64{ClassHigh: 4}) }},
	} {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			seeds := int64(5)
			if !testing.Short() {
				seeds = 20 // nightly soak: 4x the op sequences
			}
			for seed := int64(1); seed <= seeds; seed++ {
				runFrontendProperty(t, pol.mk(), seed)
			}
		})
	}
}

func runFrontendProperty(t *testing.T, policy Policy, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	eng := sim.NewEngine()
	mpl := rng.Intn(5) // 0 = unlimited
	var fe *Frontend
	var inflight []*Item
	exec := backendFunc(func(it *Item) {
		// Invariant 1: the gate never dispatches past a finite limit.
		// Inside() already counts this item.
		if m := fe.MPL(); m > 0 && fe.Inside() > m {
			t.Fatalf("seed %d: dispatched with inside=%d > MPL=%d", seed, fe.Inside(), m)
		}
		// Invariant 4: a deadline-expired item never dispatches.
		if it.Deadline > 0 && eng.Now() > it.Deadline {
			t.Fatalf("seed %d: dispatched an item %v past its deadline %v", seed, eng.Now(), it.Deadline)
		}
		inflight = append(inflight, it)
	})
	fe = New(eng.Clock(), exec, mpl, policy)

	var accepted, completed, canceled, shed uint64
	var queued []*Item // accepted, not yet dispatched or canceled (our model)
	completedSet := make(map[*Item]bool)
	canceledSet := make(map[*Item]bool)
	shedSet := make(map[*Item]bool)

	// The shed hook keeps the model in lockstep: a shed item leaves the
	// queue the instant the gate rejects it.
	fe.OnShed = func(it *Item) {
		if shedSet[it] || completedSet[it] || canceledSet[it] {
			t.Fatalf("seed %d: item shed after already finishing", seed)
		}
		shedSet[it] = true
		shed++
		for i, q := range queued {
			if q == it {
				queued = append(queued[:i], queued[i+1:]...)
				break
			}
		}
	}

	// remodel moves items our model thinks are queued but the gate has
	// dispatched (admission happens inside Submit/SetMPL/Complete).
	remodel := func() {
		kept := queued[:0]
		inDispatch := make(map[*Item]bool, len(inflight))
		for _, it := range inflight {
			inDispatch[it] = true
		}
		for _, it := range queued {
			if !inDispatch[it] {
				kept = append(kept, it)
			}
		}
		queued = kept
	}

	check := func(op string) {
		remodel()
		// Invariant 3: externally visible accounting is non-negative
		// and matches our model.
		if fe.QueueLen() != len(queued) {
			t.Fatalf("seed %d after %s: QueueLen=%d, model has %d", seed, op, fe.QueueLen(), len(queued))
		}
		if fe.Inside() != len(inflight) {
			t.Fatalf("seed %d after %s: Inside=%d, model has %d", seed, op, fe.Inside(), len(inflight))
		}
		// Invariant 2: conservation (shed included).
		if got := completed + uint64(len(inflight)) + uint64(len(queued)) + canceled + shed; got != accepted {
			t.Fatalf("seed %d after %s: completed %d + inside %d + queued %d + canceled %d + shed %d != accepted %d",
				seed, op, completed, len(inflight), len(queued), canceled, shed, accepted)
		}
		if fe.Canceled() != canceled {
			t.Fatalf("seed %d after %s: Canceled()=%d, model %d", seed, op, fe.Canceled(), canceled)
		}
		if fe.Shed() != shed {
			t.Fatalf("seed %d after %s: Shed()=%d, model %d", seed, op, fe.Shed(), shed)
		}
	}

	for op := 0; op < 2000; op++ {
		switch r := rng.Float64(); {
		case r < 0.45: // submit (Submit stamps any class deadline)
			it := &Item{Class: Class(rng.Intn(3)), SizeHint: rng.Float64()}
			if fe.Submit(it, nil) {
				accepted++
				queued = append(queued, it) // remodel() fixes immediate dispatch
			}
			check("submit")
		case r < 0.75 && len(inflight) > 0: // complete a random inflight item
			i := rng.Intn(len(inflight))
			it := inflight[i]
			inflight = append(inflight[:i], inflight[i+1:]...)
			if completedSet[it] || canceledSet[it] || shedSet[it] {
				t.Fatalf("seed %d: item finishing twice", seed)
			}
			completedSet[it] = true
			completed++
			fe.Complete(it, Outcome{InsideTime: rng.Float64()})
			check("complete")
		case r < 0.83 && len(queued) > 0: // cancel a random queued item
			i := rng.Intn(len(queued))
			it := queued[i]
			if fe.CancelQueued(it) {
				canceledSet[it] = true
				canceled++
				queued = append(queued[:i], queued[i+1:]...)
			}
			check("cancel")
		case r < 0.86 && len(queued) > 0: // eager-shed a random queued item
			it := queued[rng.Intn(len(queued))]
			fe.ShedQueued(it) // the OnShed hook updates the model
			check("shedqueued")
		case r < 0.89: // advance the clock (expires queued deadlines)
			eng.Run(eng.Now() + rng.Float64())
			check("advance")
		case r < 0.92: // move a class's admission deadline (0 clears)
			fe.SetAdmitDeadline(Class(rng.Intn(3)), float64(rng.Intn(3))*rng.Float64())
			check("setdeadline")
		case r < 0.95: // repartition (or clear) the class limits
			if rng.Intn(3) == 0 {
				fe.SetClassLimits(nil)
			} else {
				fe.SetClassLimits(map[Class]int{
					Class(0): 1 + rng.Intn(3),
					Class(1): 1 + rng.Intn(3),
				})
			}
			check("setclasslimits")
		case r < 0.98: // move the limit
			fe.SetMPL(rng.Intn(6))
			check("setmpl")
		default: // flip admission control
			fe.SetQueueLimit(rng.Intn(20))
			check("setqueuelimit")
		}
	}
	// Drain: complete everything inflight, raising the MPL to flush the
	// queue; every queued item must eventually dispatch, stay canceled,
	// or shed at the gate — nothing may vanish.
	fe.SetQueueLimit(0)
	fe.SetClassLimits(nil)
	fe.SetMPL(0)
	for len(inflight) > 0 {
		it := inflight[0]
		inflight = inflight[1:]
		completed++
		fe.Complete(it, Outcome{})
		remodel()
	}
	check("drain")
	if fe.QueueLen() != 0 {
		t.Fatalf("seed %d: %d items stranded in queue after drain", seed, fe.QueueLen())
	}
	for it := range canceledSet {
		if completedSet[it] {
			t.Fatalf("seed %d: canceled item also completed", seed)
		}
	}
	for it := range shedSet {
		if completedSet[it] || canceledSet[it] {
			t.Fatalf("seed %d: shed item also completed or canceled", seed)
		}
	}
}

// Conservative parallel execution of one simulation run.
//
// A sharded run has a natural decomposition: each shard's
// frontend+backend pair schedules only on its own engine, the drivers
// and the dispatcher schedule only on a coordinator engine, and the
// two sides talk through a narrow boundary (submissions routed to a
// shard; completion/drop/shed notifications coming back). That
// boundary is where classic conservative synchronization
// (Chandy–Misra–Bryant; see Fujimoto's PDES survey) applies: a member
// engine may safely run ahead of the coordinator up to the lookahead
// horizon — the earliest instant at which the coordinator could still
// send it something — and the coordinator may safely consume member
// notifications once every member has advanced past their timestamps.
//
// ParallelEngine implements that as window stepping rather than
// per-link null messages: each pass computes the horizon H, runs every
// member engine (concurrently, on a fixed worker pool) to the
// inclusive bound min(H, until), flushes the member→coordinator
// messages buffered during the window back into the coordinator in
// global timestamp order, and then runs the coordinator itself to the
// bound. Because H is the coordinator's own next event time, every
// coordinator event fires at exactly the bound, where all member
// clocks already stand — so a routed submission can always be injected
// into its member at the coordinator's current time without violating
// the member's clock.
//
// Determinism is the design's acceptance bar, not a side effect: the
// members' event orders are unchanged (each runs its own events in its
// own time order, exactly as they interleave in a single-queue run),
// and the coordinator consumes member messages sorted by (timestamp,
// member index, per-member FIFO order) — a fixed total order that does
// not depend on goroutine scheduling. Runs are therefore bit-identical
// to rerunning the same parallel configuration, and equal to the
// sequential engine whenever no two messages from different members
// share an exact float64 timestamp (with continuous service and
// arrival distributions, ties across members have probability zero;
// the fingerprint equivalence tests verify equality outright).
package sim

import (
	"math"
	"runtime"
)

// MessageSource is the cross-engine boundary the coordinator owns (in
// practice the cluster dispatcher). During member windows, member-side
// hook firings are buffered instead of acted on; Flush replays
// everything buffered so far — all timestamps are <= the window bound
// by construction — into the coordinator in deterministic order,
// advancing the coordinator clock to each message's timestamp before
// delivery. It returns the number of messages delivered.
type MessageSource interface {
	// BeginWindows marks the start of a ParallelEngine.Run: member-side
	// hook effects that touch coordinator state must be buffered from
	// here on. Outside a Run (scenario breakpoints, where every clock
	// stands at the same instant and only the coordinator goroutine is
	// active) hooks take effect inline, exactly as in a sequential run.
	BeginWindows()
	// Flush delivers every buffered message (all <= bound) in global
	// timestamp order and returns how many were delivered.
	Flush(bound float64) int
	// EndWindows marks the end of a Run; hooks act inline again.
	EndWindows()
}

// ParallelEngine advances one coordinator engine and N member engines
// through conservative bounded time windows. It is driven from the
// coordinator's goroutine; the members run on a fixed pool of worker
// goroutines that exists for the engine's lifetime and is parked
// between windows (channel handoffs provide the happens-before edges
// that make member state safely visible to the coordinator and back).
type ParallelEngine struct {
	coord   *Engine
	members []*Engine
	src     MessageSource
	// lockstep widens the horizon rule for phases where members can
	// autonomously trigger coordinator work at member-event times
	// (closed-loop clients cycling on completion): the horizon becomes
	// the global minimum next-event time over every engine, so all
	// replayed messages and all coordinator firings still land exactly
	// on the bound. Zero lookahead, full correctness.
	lockstep bool

	// Worker pool. bound and fired are written by the coordinator
	// before the start signals and by the workers before the done
	// signals, respectively; the channel operations order the accesses.
	nw    int
	bound float64
	start []chan struct{}
	done  chan struct{}
	fired []uint64
}

// NewParallelEngine builds the window coordinator over coord and
// members, with src as the cross-engine message boundary. The worker
// pool is sized min(GOMAXPROCS, len(members)) and fixed for the
// engine's lifetime (members added later share the existing workers).
func NewParallelEngine(coord *Engine, members []*Engine, src MessageSource) *ParallelEngine {
	p := &ParallelEngine{
		coord:   coord,
		members: append([]*Engine(nil), members...),
		src:     src,
	}
	nw := runtime.GOMAXPROCS(0)
	if nw > len(members) {
		nw = len(members)
	}
	if nw < 1 {
		nw = 1
	}
	p.nw = nw
	if nw > 1 {
		p.start = make([]chan struct{}, nw)
		p.done = make(chan struct{}, nw)
		p.fired = make([]uint64, nw)
		for k := 0; k < nw; k++ {
			p.start[k] = make(chan struct{}, 1)
			go p.worker(k)
		}
	}
	return p
}

// Coordinator returns the coordinator engine.
func (p *ParallelEngine) Coordinator() *Engine { return p.coord }

// Members returns the live member engines (shared slice; do not
// mutate).
func (p *ParallelEngine) Members() []*Engine { return p.members }

// AddMember grows the member set mid-run (fleet scale-up). Must be
// called from the coordinator goroutine with the workers parked —
// i.e. from inside a coordinator event or between Run calls — which is
// where every fleet mutation already happens.
func (p *ParallelEngine) AddMember(m *Engine) {
	p.members = append(p.members, m)
}

// SetLockstep selects the horizon rule for the next Run calls: true
// for phases whose completions feed back into the coordinator at
// member-event times (closed-loop phases), false for autonomous-
// arrival phases (open, ramp, burst, trace) where the coordinator's
// own next event bounds the window.
func (p *ParallelEngine) SetLockstep(v bool) { p.lockstep = v }

// worker is one pool goroutine: it owns members k, k+nw, k+2nw, … for
// the window it is signaled into, and reports back on the done
// channel.
func (p *ParallelEngine) worker(k int) {
	for range p.start[k] {
		var fired uint64
		for i := k; i < len(p.members); i += p.nw {
			fired += p.members[i].Run(p.bound)
		}
		p.fired[k] = fired
		p.done <- struct{}{}
	}
}

// horizon returns the earliest instant the coordinator could still
// influence a member (or, in lockstep, any engine could influence any
// other): +Inf when nothing bounds the window.
func (p *ParallelEngine) horizon() float64 {
	h := p.coord.NextEventTime()
	if p.lockstep {
		for _, m := range p.members {
			if t := m.NextEventTime(); t < h {
				h = t
			}
		}
	}
	return h
}

// runMembers advances every member engine to the inclusive bound,
// concurrently when the pool has more than one worker, and returns the
// number of member events fired.
func (p *ParallelEngine) runMembers(bound float64) uint64 {
	var fired uint64
	if p.nw <= 1 {
		for _, m := range p.members {
			fired += m.Run(bound)
		}
		return fired
	}
	p.bound = bound
	for k := 0; k < p.nw; k++ {
		p.start[k] <- struct{}{}
	}
	for k := 0; k < p.nw; k++ {
		<-p.done
	}
	for k := 0; k < p.nw; k++ {
		fired += p.fired[k]
	}
	return fired
}

// Run advances the whole ensemble to the inclusive bound until, firing
// every event — coordinator and member — with timestamp <= until, and
// leaves every clock standing exactly at until. It matches the
// sequential Engine.Run contract (inclusive bound, clock lands on the
// bound, monotone across calls) so the runner can drive it through the
// same breakpoint schedule. until must be finite. It returns the total
// number of events fired across all engines.
func (p *ParallelEngine) Run(until float64) uint64 {
	if math.IsNaN(until) || math.IsInf(until, 0) {
		panic("sim: ParallelEngine.Run needs a finite bound")
	}
	p.src.BeginWindows()
	defer p.src.EndWindows()
	var fired uint64
	for !p.coord.Stopped() {
		bound := until
		if h := p.horizon(); h < bound {
			bound = h
		}
		fired += p.runMembers(bound)
		p.src.Flush(bound)
		fired += p.coord.Run(bound)
		if bound < until {
			continue
		}
		// A full pass at the final bound: everything buffered was
		// flushed, so the ensemble is quiescent iff no engine still
		// holds an event at or before until (coordinator firings at the
		// bound may have injected same-instant member events, which the
		// next pass picks up — matching the sequential engine, where a
		// same-instant cascade at the bound fires within the call).
		if p.coord.NextEventTime() > until && !p.anyMemberEventAtOrBefore(until) {
			break
		}
	}
	return fired
}

// anyMemberEventAtOrBefore reports whether a member still has a live
// event at or before t.
func (p *ParallelEngine) anyMemberEventAtOrBefore(t float64) bool {
	for _, m := range p.members {
		if m.NextEventTime() <= t {
			return true
		}
	}
	return false
}

// Close parks the worker pool permanently (the goroutines exit). The
// engine must not be Run again afterwards; call it when the run that
// owns this ensemble finishes.
func (p *ParallelEngine) Close() {
	for _, c := range p.start {
		close(c)
	}
	p.start = nil
}

// Processed returns the total number of events fired across the
// coordinator and every member — the ensemble-wide analogue of
// Engine.Processed, so reports agree with a sequential run's single
// counter.
func (p *ParallelEngine) Processed() uint64 {
	n := p.coord.Processed()
	for _, m := range p.members {
		n += m.Processed()
	}
	return n
}

package workload

import (
	"fmt"

	"extsched/internal/dbms"
	"extsched/internal/dist"
	"extsched/internal/lockmgr"
)

// TenantMix is one tenant's slice of a generator's arrival stream: a
// class ID, an arrival share, and an optional per-tenant size
// distribution. Installing a mix (SetMix) generalizes the historical
// two-class HighFrac tagging to N tenants — every driver (closed,
// open, ramp, burst, shaped) draws through Generator.Next, so the mix
// applies to every phase kind uniformly. In particular, under
// BurstDriver all tenants share ONE modulating MMPP state: their
// bursts arrive correlated, which is the multi-tenant overload shape
// a fairness controller has to survive.
type TenantMix struct {
	// Class is the tenant's priority class.
	Class lockmgr.Class
	// Share is the tenant's fraction of arrivals. Shares must be > 0
	// and sum to 1 across the mix.
	Share float64
	// SizeMean, when > 0, scales the tenant's transactions by a
	// lognormal multiplier with this mean and squared coefficient of
	// variation SizeC2 (0 = deterministic scaling). A heavy-tailed
	// multiplier (SizeC2 >> 1) gives the tenant the occasional huge
	// transaction of real multi-tenant traffic. Zero leaves the
	// workload's native sizes untouched.
	SizeMean float64
	SizeC2   float64
}

// SetMix installs (or, with nil, clears) an N-tenant arrival mix.
// Shares must each be > 0 and sum to 1 (±0.001); classes must be
// distinct. A generator without a mix behaves exactly as before —
// same RNG draw order, so existing two-class runs stay bit-identical.
func (g *Generator) SetMix(mix []TenantMix) error {
	if len(mix) == 0 {
		g.mix, g.mixCum, g.mixSize = nil, nil, nil
		return nil
	}
	total := 0.0
	seen := make(map[lockmgr.Class]bool, len(mix))
	for _, m := range mix {
		if m.Share <= 0 {
			return fmt.Errorf("workload: tenant class %d share %v must be > 0", m.Class, m.Share)
		}
		if m.SizeMean < 0 || m.SizeC2 < 0 {
			return fmt.Errorf("workload: tenant class %d size dist (mean %v, c2 %v) must be >= 0", m.Class, m.SizeMean, m.SizeC2)
		}
		if seen[m.Class] {
			return fmt.Errorf("workload: duplicate tenant class %d in mix", m.Class)
		}
		seen[m.Class] = true
		total += m.Share
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("workload: tenant shares sum to %v, want 1", total)
	}
	g.mix = make([]TenantMix, len(mix))
	copy(g.mix, mix)
	g.mixCum = make([]float64, len(mix))
	g.mixSize = make([]dist.Distribution, len(mix))
	cum := 0.0
	for i, m := range mix {
		cum += m.Share / total
		g.mixCum[i] = cum
		switch {
		case m.SizeMean <= 0:
			g.mixSize[i] = nil
		case m.SizeC2 <= 0:
			g.mixSize[i] = dist.NewDeterministic(m.SizeMean)
		default:
			g.mixSize[i] = dist.NewLognormal(m.SizeMean, m.SizeC2)
		}
	}
	g.mixCum[len(g.mixCum)-1] = 1
	return nil
}

// Mix returns a copy of the installed tenant mix (nil when none).
func (g *Generator) Mix() []TenantMix {
	if g.mix == nil {
		return nil
	}
	out := make([]TenantMix, len(g.mix))
	copy(out, g.mix)
	return out
}

// nextTenant draws one profile under the tenant mix: one uniform draw
// picks the tenant, the workload's own machinery draws the profile,
// and the tenant's size multiplier (if any) scales the transaction's
// CPU work — with EstimatedDemand recomputed so SJF/WFQ size hints
// stay truthful.
func (g *Generator) nextTenant() dbms.TxnProfile {
	u := g.rng.Float64()
	i := len(g.mix) - 1
	for j, c := range g.mixCum {
		if u < c {
			i = j
			break
		}
	}
	p := g.NextWithClass(g.mix[i].Class)
	if sd := g.mixSize[i]; sd != nil {
		mult := sd.Sample(g.rng)
		if mult < 0 {
			mult = 0
		}
		ioPerPage := g.missEst * g.Spec.DiskService.Mean()
		demand := 0.0
		for k := range p.Ops {
			p.Ops[k].CPUWork *= mult
			demand += p.Ops[k].CPUWork + float64(len(p.Ops[k].Pages))*ioPerPage
		}
		p.EstimatedDemand = demand
	}
	return p
}

package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(out.String(), "\n"); n != 17 {
		t.Errorf("listed %d setups, want 17", n)
	}
}

func TestRunExplicitDemands(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-cpus", "1", "-disks", "4", "-cpu-demand", "0.001", "-io-demand", "0.2", "-max-loss", "0.05"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "recommended MPL:") {
		t.Errorf("missing recommendation in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "throughput criterion") {
		t.Errorf("missing MVA criterion line:\n%s", out.String())
	}
}

func TestRunSetupMode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-setup", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "recommended MPL (CV²-aware jump-start model):") {
		t.Errorf("missing jump-start recommendation:\n%s", out.String())
	}
}

func TestRunRejectsMissingDemands(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no-demand invocation accepted")
	}
}

func TestRunRejectsBadSetup(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-setup", "99"}, &out); err == nil {
		t.Error("unknown setup accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil {
		t.Errorf("-h returned %v, want nil", err)
	}
	if !strings.Contains(out.String(), "Usage") {
		t.Errorf("-h did not print usage:\n%s", out.String())
	}
}

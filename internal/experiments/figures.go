package experiments

import (
	"fmt"

	"extsched/internal/dist"
	"extsched/internal/queueing/mva"
	"extsched/internal/queueing/qbd"
	"extsched/internal/stats"
)

// Figure2 regenerates "Effect of MPL on throughput in CPU bound
// workloads": (a) W_CPU-inventory with 1 vs 2 CPUs (setups 1, 2) and
// (b) W_CPU-browsing with 1 vs 2 CPUs (setups 3, 4).
func Figure2(opts RunOpts) (*Figure, error) {
	f := &Figure{ID: "fig2", Title: "Throughput vs MPL, CPU-bound workloads (setups 1-4)"}
	series, err := throughputGrid([]int{1, 2, 3, 4}, defaultMPLs(30), opts)
	if err != nil {
		return nil, err
	}
	f.Series = series
	f.Notes = append(f.Notes,
		"expect: 1-CPU curves saturate by MPL~5; 2-CPU curves need ~7-10",
		"expect: 2 CPUs roughly double the plateau throughput")
	return f, nil
}

// Figure3 regenerates "Effect of MPL on throughput in I/O bound
// workloads": (a) W_IO-inventory with 1-4 disks (setups 5-8) and (b)
// W_IO-browsing with 1 and 4 disks (setups 9, 10).
func Figure3(opts RunOpts) (*Figure, error) {
	f := &Figure{ID: "fig3", Title: "Throughput vs MPL, IO-bound workloads (setups 5-10)"}
	series, err := throughputGrid([]int{5, 6, 7, 8, 9, 10}, defaultMPLs(30), opts)
	if err != nil {
		return nil, err
	}
	f.Series = series
	f.Notes = append(f.Notes,
		"expect: min MPL for near-max throughput grows ~linearly with the disk count (~2/5/7/10 for 1-4 disks)")
	return f, nil
}

// Figure4 regenerates the balanced CPU+IO workload: setups 11 (1 disk,
// 1 CPU) and 12 (4 disks, 2 CPUs).
func Figure4(opts RunOpts) (*Figure, error) {
	f := &Figure{ID: "fig4", Title: "Throughput vs MPL, balanced CPU+IO workload (setups 11-12)"}
	series, err := throughputGrid([]int{11, 12}, defaultMPLs(35), opts)
	if err != nil {
		return nil, err
	}
	f.Series = series
	f.Notes = append(f.Notes,
		"expect: 1disk/1cpu saturates by MPL~5; 4disks/2cpus needs ~20 (more utilized resources)")
	return f, nil
}

// Figure5 regenerates the lock-contention comparison: RR vs UR
// isolation for W_CPU-inventory (setups 1, 17) and W_CPU-ordering
// (setups 15, 16).
func Figure5(opts RunOpts) (*Figure, error) {
	f := &Figure{ID: "fig5", Title: "Throughput vs MPL under heavy locking: RR vs UR (setups 1/17, 15/16)"}
	series, err := throughputGrid([]int{1, 17, 15, 16}, defaultMPLs(40), opts)
	if err != nil {
		return nil, err
	}
	f.Series = series
	f.Notes = append(f.Notes,
		"expect: more locking (RR) lowers the MPL knee; past it, extra transactions only queue on locks",
		"expect: UR reaches equal or higher plateau throughput")
	return f, nil
}

// Figure7 regenerates the analytic throughput-vs-MPL curves of the
// Section 4.1 closed queueing model for 1-16 disks, marking the
// minimum MPL reaching 80% and 95% of maximum throughput. The paper's
// observation: both loci are perfectly straight lines in the disk
// count.
func Figure7() (*Figure, error) {
	f := &Figure{ID: "fig7", Title: "MVA model: throughput vs MPL for 1-16 disks, with 80%/95% min-MPL loci"}
	const ioDemand = 1.0 // seconds; relative throughput is scale-free
	disks := []int{1, 2, 3, 4, 8, 16}
	maxMPL := 100
	var loci80, loci95 Series
	loci80.Name = "minMPL@80%"
	loci95.Name = "minMPL@95%"
	type diskCurve struct {
		s            Series
		min80, min95 int
	}
	curves, err := Sweep(len(disks), func(i int) (diskCurve, error) {
		d := disks[i]
		nw, err := mva.Balanced(0, d, 0, ioDemand)
		if err != nil {
			return diskCurve{}, err
		}
		res := nw.Solve(maxMPL)
		c := diskCurve{s: Series{Name: fmt.Sprintf("%ddisks", d)}}
		for _, r := range res {
			c.s.X = append(c.s.X, float64(r.Population))
			c.s.Y = append(c.s.Y, r.Throughput)
		}
		c.min80 = nw.MinMPLForFraction(0.80, 2000)
		c.min95 = nw.MinMPLForFraction(0.95, 2000)
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range curves {
		f.Series = append(f.Series, c.s)
		loci80.X = append(loci80.X, float64(disks[i]))
		loci80.Y = append(loci80.Y, float64(c.min80))
		loci95.X = append(loci95.X, float64(disks[i]))
		loci95.Y = append(loci95.Y, float64(c.min95))
	}
	f.Series = append(f.Series, loci80, loci95)
	s80, _, r80 := stats.LinearFit(loci80.X, loci80.Y)
	s95, _, r95 := stats.LinearFit(loci95.X, loci95.Y)
	f.Notes = append(f.Notes,
		fmt.Sprintf("80%% locus: slope %.2f per disk, R²=%.4f (paper: perfectly straight)", s80, r80),
		fmt.Sprintf("95%% locus: slope %.2f per disk, R²=%.4f (paper: perfectly straight)", s95, r95))
	return f, nil
}

// Figure10 regenerates the CTMC evaluation: mean response time vs MPL
// for C² in {2, 5, 10, 15} plus the PS limit, at loads 0.7 and 0.9.
// Job size mean is 100 ms as in the paper (response times in the
// hundreds of ms).
func Figure10() (*Figure, error) {
	f := &Figure{ID: "fig10", Title: "QBD model: mean response time (ms) vs MPL; loads 0.7 and 0.9"}
	const meanSize = 0.1
	mpls := []int{1, 2, 3, 5, 8, 10, 15, 20, 25, 30, 35}
	loads := []float64{0.7, 0.9}
	c2s := []float64{2, 5, 10, 15}
	// One sweep point per (load, C²) curve; the per-MPL QBD solves
	// inside a curve share nothing with the other curves.
	type curvePoint struct{ load, c2 float64 }
	var points []curvePoint
	for _, load := range loads {
		for _, c2 := range c2s {
			points = append(points, curvePoint{load: load, c2: c2})
		}
	}
	curves, err := Sweep(len(points), func(i int) (Series, error) {
		load, c2 := points[i].load, points[i].c2
		lambda := load / meanSize
		job := dist.FitH2(meanSize, c2)
		s := Series{Name: fmt.Sprintf("load%.1f/C2=%g", load, c2)}
		for _, m := range mpls {
			sol, err := qbd.Solve(qbd.Model{Lambda: lambda, Job: job, MPL: m})
			if err != nil {
				return Series{}, fmt.Errorf("load %v C² %v MPL %d: %w", load, c2, m, err)
			}
			s.X = append(s.X, float64(m))
			s.Y = append(s.Y, sol.MeanRT*1000)
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	for li, load := range loads {
		f.Series = append(f.Series, curves[li*len(c2s):(li+1)*len(c2s)]...)
		ps := Series{Name: fmt.Sprintf("load%.1f/PS", load)}
		psRT := meanSize / (1 - load) * 1000
		for _, m := range mpls {
			ps.X = append(ps.X, float64(m))
			ps.Y = append(ps.Y, psRT)
		}
		f.Series = append(f.Series, ps)
	}
	f.Notes = append(f.Notes,
		"expect: C2<=2 flat in MPL (≈PS) from MPL~5",
		"expect: C2=5-15 need MPL ~10 (load .7) to ~30 (load .9) to approach PS")
	return f, nil
}

// Package cluster adds the multi-backend layer on top of the paper's
// single-gate external scheduler: a Dispatcher fans one admitted
// transaction stream out across N shard frontends (each its own MPL
// gate over its own backend), and pluggable dispatch policies decide
// which shard receives the next item. Schroeder et al. tune ONE gate;
// real deployments front replica or shard fleets, where the dispatch
// decision dominates tail latency as much as the MPL itself — a slow
// shard behind a blind round-robin drags the aggregate p95 long before
// it costs throughput.
//
// The policy vocabulary is deliberately tiny and side-effect free
// (Pick reads per-member Load views and returns an index), so the same
// four policies serve the deterministic simulator (Dispatcher, below)
// and live wall-clock traffic (gate.Pool). Ties always break toward
// the lowest index, which is what keeps multi-shard simulation runs
// bit-identical across reruns.
package cluster

import (
	"fmt"

	"extsched/internal/core"
)

// Load is one member's state as seen by a dispatch decision.
type Load struct {
	// Backlog is the number of items at the member: external queue plus
	// admitted-and-executing.
	Backlog int
	// Work is the outstanding size-hint seconds routed to the member
	// and not yet completed (at unit speed).
	Work float64
	// Speed is the member's relative service speed (1 = nominal);
	// work-aware policies normalize Work by it.
	Speed float64
}

// Policy picks the member that receives the next item. Implementations
// may keep state (round-robin's cursor) but must be deterministic:
// equal inputs and history yield equal picks. A Policy instance
// belongs to one dispatcher; do not share.
type Policy interface {
	// Name identifies the policy in reports and scenario files.
	Name() string
	// Pick returns the index of the member to dispatch to. loads is
	// never empty; class and size describe the item (size 0 = unknown).
	Pick(loads []Load, class core.Class, size float64) int
}

// Policy names accepted by NewPolicy (and scenario SetDispatch events).
const (
	// PolicyRoundRobin cycles through members in order, blind to load —
	// the baseline every smarter policy is measured against.
	PolicyRoundRobin = "rr"
	// PolicyJSQ joins the shortest queue: the member with the smallest
	// backlog (queued + executing), ties to the lowest index.
	PolicyJSQ = "jsq"
	// PolicyLeastWork routes to the member with the least outstanding
	// size-hint work, normalized by member speed — JSQ's size-aware
	// sibling, sharper when service demands are highly variable or the
	// fleet is heterogeneous.
	PolicyLeastWork = "lwl"
	// PolicyAffinity pins each priority class to one member
	// (index = class mod members): cache and isolation affinity at the
	// cost of balance.
	PolicyAffinity = "affinity"
)

// NewPolicy builds a built-in dispatch policy by name ("" = round-
// robin). Each call returns a fresh instance.
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "", PolicyRoundRobin:
		return &RoundRobin{}, nil
	case PolicyJSQ:
		return JSQ{}, nil
	case PolicyLeastWork:
		return LeastWork{}, nil
	case PolicyAffinity:
		return Affinity{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown dispatch policy %q (want %s, %s, %s or %s)",
			name, PolicyRoundRobin, PolicyJSQ, PolicyLeastWork, PolicyAffinity)
	}
}

// RoundRobin cycles through members in index order.
type RoundRobin struct {
	next int
}

func (p *RoundRobin) Name() string { return PolicyRoundRobin }

func (p *RoundRobin) Pick(loads []Load, _ core.Class, _ float64) int {
	i := p.next % len(loads)
	p.next = (i + 1) % len(loads)
	return i
}

// JSQ joins the shortest queue.
type JSQ struct{}

func (JSQ) Name() string { return PolicyJSQ }

func (JSQ) Pick(loads []Load, _ core.Class, _ float64) int {
	best := 0
	for i := 1; i < len(loads); i++ {
		if loads[i].Backlog < loads[best].Backlog {
			best = i
		}
	}
	return best
}

// LeastWork routes to the member whose outstanding work, in member-
// local service seconds (Work/Speed), is smallest.
type LeastWork struct{}

func (LeastWork) Name() string { return PolicyLeastWork }

func (LeastWork) Pick(loads []Load, _ core.Class, _ float64) int {
	best, bestW := 0, normWork(loads[0])
	for i := 1; i < len(loads); i++ {
		if w := normWork(loads[i]); w < bestW {
			best, bestW = i, w
		}
	}
	return best
}

// normWork is a member's outstanding work scaled to its speed.
func normWork(l Load) float64 {
	s := l.Speed
	if s <= 0 {
		s = 1
	}
	return l.Work / s
}

// Affinity pins class c to member c mod N.
type Affinity struct{}

func (Affinity) Name() string { return PolicyAffinity }

func (Affinity) Pick(loads []Load, class core.Class, _ float64) int {
	i := int(class) % len(loads)
	if i < 0 {
		i += len(loads)
	}
	return i
}

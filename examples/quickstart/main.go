// Quickstart: build a simulated DBMS for one of the paper's setups,
// put the external scheduler in front of it, and see what the MPL does
// to throughput and response time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"extsched"
)

func main() {
	fmt.Println("External scheduling quickstart (Schroeder et al., ICDE'06)")
	fmt.Println()
	fmt.Println("Sweeping the MPL on setup 1 (TPC-C-like, CPU bound, 1 CPU, 1 disk),")
	fmt.Println("closed system with 100 clients:")
	fmt.Println()
	fmt.Printf("%6s %12s %12s %14s\n", "MPL", "tput (tx/s)", "meanRT (s)", "extWait (s)")

	for _, mpl := range []int{1, 2, 5, 10, 20, 0} {
		// A fresh System per run keeps runs independent and
		// deterministic (same seed, same workload sample path).
		sys, err := extsched.NewSystem(extsched.Config{
			SetupID: 1,
			MPL:     mpl,
			Seed:    7,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.RunClosed(100, 20, 120)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprint(mpl)
		if mpl == 0 {
			label = "none"
		}
		fmt.Printf("%6s %12.1f %12.3f %14.3f\n", label, rep.Throughput, rep.MeanRT, rep.ExternalW)
	}

	fmt.Println()
	fmt.Println("Reading: throughput saturates at a very low MPL (the paper's point),")
	fmt.Println("so nearly all transactions can be held in the external queue where")
	fmt.Println("the application controls their order.")
}

// Package dist provides the service-time and demand distributions the
// simulator and the analytic models share: deterministic, exponential,
// uniform, lognormal, and the two-phase hyperexponential (H2) used to
// match the first two moments of high-variability workloads (the
// paper's C² knob). All sampling is driven by an explicit *sim.RNG so
// runs stay deterministic under a fixed seed.
package dist

import (
	"fmt"
	"math"

	"extsched/internal/sim"
)

// Distribution is a nonnegative random variable with known first two
// moments. C2 is the squared coefficient of variation Var/Mean².
type Distribution interface {
	// Sample draws one variate using g.
	Sample(g *sim.RNG) float64
	// Mean returns the expectation.
	Mean() float64
	// C2 returns the squared coefficient of variation (0 for
	// deterministic, 1 for exponential).
	C2() float64
}

// Deterministic is a point mass.
type Deterministic struct{ v float64 }

// NewDeterministic returns the distribution that always yields v.
func NewDeterministic(v float64) Deterministic {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("dist: deterministic value %v must be finite and >= 0", v))
	}
	return Deterministic{v: v}
}

func (d Deterministic) Sample(*sim.RNG) float64 { return d.v }
func (d Deterministic) Mean() float64           { return d.v }
func (d Deterministic) C2() float64             { return 0 }

// Exponential has the given mean (C² = 1).
type Exponential struct{ mean float64 }

// NewExponential returns an exponential distribution with mean m.
func NewExponential(m float64) Exponential {
	if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
		panic(fmt.Sprintf("dist: exponential mean %v must be finite and > 0", m))
	}
	return Exponential{mean: m}
}

func (d Exponential) Sample(g *sim.RNG) float64 { return d.mean * g.ExpFloat64() }
func (d Exponential) Mean() float64             { return d.mean }
func (d Exponential) C2() float64               { return 1 }

// Uniform is continuous uniform on [Lo, Hi].
type Uniform struct{ lo, hi float64 }

// NewUniform returns a uniform distribution on [lo, hi].
func NewUniform(lo, hi float64) Uniform {
	if lo < 0 || hi < lo || math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(hi, 0) {
		panic(fmt.Sprintf("dist: uniform bounds [%v, %v] invalid", lo, hi))
	}
	return Uniform{lo: lo, hi: hi}
}

func (d Uniform) Sample(g *sim.RNG) float64 { return d.lo + g.Float64()*(d.hi-d.lo) }
func (d Uniform) Mean() float64             { return (d.lo + d.hi) / 2 }
func (d Uniform) C2() float64 {
	m := d.Mean()
	if m == 0 {
		return 0
	}
	v := (d.hi - d.lo) * (d.hi - d.lo) / 12
	return v / (m * m)
}

// Lognormal is parameterized by its mean and C² (not by the underlying
// normal's μ, σ), matching how trace generators specify variability.
type Lognormal struct {
	mean, c2  float64
	mu, sigma float64 // underlying normal parameters
}

// NewLognormal returns a lognormal with the given mean and squared
// coefficient of variation.
func NewLognormal(mean, c2 float64) Lognormal {
	if mean <= 0 || c2 <= 0 {
		panic(fmt.Sprintf("dist: lognormal mean %v and C² %v must be > 0", mean, c2))
	}
	sigma2 := math.Log(1 + c2)
	return Lognormal{
		mean:  mean,
		c2:    c2,
		mu:    math.Log(mean) - sigma2/2,
		sigma: math.Sqrt(sigma2),
	}
}

func (d Lognormal) Sample(g *sim.RNG) float64 {
	return math.Exp(d.mu + d.sigma*g.NormFloat64())
}
func (d Lognormal) Mean() float64 { return d.mean }
func (d Lognormal) C2() float64   { return d.c2 }

// H2 is the two-phase hyperexponential: with probability P the variate
// is exponential with rate Mu1, otherwise rate Mu2. It is the analytic
// models' canonical high-variability (C² > 1) job-size distribution
// (Fig. 9's phase structure), and it also samples, so the simulator
// and the QBD/CTMC solvers consume the identical object.
type H2 struct {
	P        float64 // probability of phase 1
	Mu1, Mu2 float64 // phase rates
}

// NewH2 returns the hyperexponential with the given phase probability
// and rates. P may be 0 or 1 (degenerate single phase).
func NewH2(p, mu1, mu2 float64) H2 {
	if p < 0 || p > 1 || mu1 <= 0 || mu2 <= 0 {
		panic(fmt.Sprintf("dist: H2 parameters p=%v mu1=%v mu2=%v invalid", p, mu1, mu2))
	}
	return H2{P: p, Mu1: mu1, Mu2: mu2}
}

// FitH2 returns the balanced-means H2 matching the given mean and C².
// C² is clamped to be strictly greater than 1 (an H2 cannot represent
// less variability than an exponential), which keeps P strictly inside
// (0,1) as the matrix-geometric solver requires.
func FitH2(mean, c2 float64) H2 {
	if mean <= 0 {
		panic(fmt.Sprintf("dist: H2 mean %v must be > 0", mean))
	}
	const minC2 = 1 + 1e-9
	if c2 < minC2 {
		c2 = minC2
	}
	// Balanced means: each phase contributes half the mean.
	p := 0.5 * (1 + math.Sqrt((c2-1)/(c2+1)))
	return H2{P: p, Mu1: 2 * p / mean, Mu2: 2 * (1 - p) / mean}
}

func (d H2) Sample(g *sim.RNG) float64 {
	if g.Float64() < d.P {
		return g.ExpFloat64() / d.Mu1
	}
	return g.ExpFloat64() / d.Mu2
}

// Mean returns P/Mu1 + (1−P)/Mu2.
func (d H2) Mean() float64 { return d.P/d.Mu1 + (1-d.P)/d.Mu2 }

// C2 returns the squared coefficient of variation.
func (d H2) C2() float64 {
	m := d.Mean()
	if m == 0 {
		return 0
	}
	m2 := 2*d.P/(d.Mu1*d.Mu1) + 2*(1-d.P)/(d.Mu2*d.Mu2)
	return m2/(m*m) - 1
}

package runner

import (
	"context"
	"reflect"
	"testing"

	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/sim"
	"extsched/internal/trace"
	"extsched/internal/workload"
	"extsched/metrics"
)

// testStack assembles a fresh setup-1 stack (the paper's CPU-bound
// TPC-C-like workload on 1 CPU / 1 disk).
func testStack(t *testing.T, mpl int, seed uint64) Stack {
	t.Helper()
	setup, err := workload.SetupByID(1)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	db, err := dbms.New(eng, setup.BuildConfig(workload.DBOptions{Seed: seed}))
	if err != nil {
		t.Fatal(err)
	}
	fe := dbfe.New(eng, db, mpl, nil)
	gen, err := workload.NewGenerator(setup.Workload, seed)
	if err != nil {
		t.Fatal(err)
	}
	workload.Prewarm(db, setup.Workload, seed)
	return Stack{Eng: eng, DB: db, FE: fe, Gen: gen, Seed: seed}
}

func TestSpecValidate(t *testing.T) {
	neg := -1
	zero := 0.0
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"empty", Spec{}, false},
		{"negative warmup", Spec{Warmup: -1, Phases: []Phase{{Kind: KindClosed, Duration: 1}}}, false},
		{"unknown kind", Spec{Phases: []Phase{{Kind: "weird", Duration: 1}}}, false},
		{"open without lambda", Spec{Phases: []Phase{{Kind: KindOpen, Duration: 1}}}, false},
		{"ramp without duration", Spec{Phases: []Phase{{Kind: KindRamp, Lambda: 1, Lambda2: 2}}}, false},
		{"ramp both rates zero", Spec{Phases: []Phase{{Kind: KindRamp, Duration: 1}}}, false},
		{"burst factor below one", Spec{Phases: []Phase{{Kind: KindBurst, Lambda: 5, BurstFactor: 0.5, Duration: 1}}}, false},
		{"trace without trace", Spec{Phases: []Phase{{Kind: KindTrace, Duration: 1}}}, false},
		{"negative event offset", Spec{Phases: []Phase{{Kind: KindClosed, Duration: 1, Events: []Event{{At: -1}}}}}, false},
		{"negative event MPL", Spec{Phases: []Phase{{Kind: KindClosed, Duration: 1, Events: []Event{{SetMPL: &neg}}}}}, false},
		{"controller without reference", Spec{Phases: []Phase{{Kind: KindClosed, Duration: 1,
			Events: []Event{{EnableController: &ControllerSpec{MaxThroughputLoss: 0.05}}}}}}, false},
		{"bad wfq weight", Spec{Phases: []Phase{{Kind: KindClosed, Duration: 1, Events: []Event{{SetWFQHighWeight: &zero}}}}}, false},
		{"valid closed", Spec{Warmup: 1, Phases: []Phase{{Kind: KindClosed, Duration: 1}}}, true},
		{"valid multi", Spec{Phases: []Phase{
			{Kind: KindClosed, Duration: 1},
			{Kind: KindRamp, Lambda: 1, Lambda2: 5, Duration: 2},
			{Kind: KindBurst, Lambda: 5, Duration: 1},
		}}, true},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid spec accepted", tc.name)
		}
	}
}

// TestWindowingRule is the regression test for the unified measurement
// window: an overloaded open run must count exactly the completions
// that happened inside [warmup, warmup+duration] — draining the
// backlog afterwards must not change the report.
func TestWindowingRule(t *testing.T) {
	st := testStack(t, 2, 1)
	// Offered load far above what MPL 2 can serve: a large backlog is
	// guaranteed to be in flight when the window closes.
	out, err := Run(context.Background(), st, Spec{
		Warmup: 5,
		Phases: []Phase{{Kind: KindOpen, Lambda: 300, Duration: 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Total.Window != 30 {
		t.Errorf("window = %v, want 30", out.Total.Window)
	}
	if st.FE.QueueLen() == 0 {
		t.Fatal("test needs a backlog at window close to be meaningful")
	}
	inWindow := out.Total.Completed
	// Drain everything still queued or in flight; the report must not
	// move (the runner's accounting hook is off).
	st.Eng.RunAll()
	after := st.FE.Metrics().Completed
	if after <= inWindow {
		t.Fatalf("drain completed nothing (%d vs %d): backlog assumption broken", after, inWindow)
	}
	if got := out.Total.Completed; got != inWindow {
		t.Errorf("report changed after drain: %d -> %d", inWindow, got)
	}
	// Throughput is in-window completions over the window, and cannot
	// exceed the service capacity at MPL 2 (far below the offered 300/s).
	if tput := out.Total.Throughput(); tput >= 300 {
		t.Errorf("throughput %v includes post-window completions", tput)
	}
}

func TestPhaseSequencingAndReports(t *testing.T) {
	st := testStack(t, 5, 2)
	out, err := Run(context.Background(), st, Spec{
		Warmup: 10,
		Phases: []Phase{
			{Name: "steady", Kind: KindClosed, Clients: 50, Duration: 40},
			{Name: "surge", Kind: KindOpen, Lambda: 60, Duration: 40},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(out.Phases))
	}
	if out.Phases[0].Name != "steady" || out.Phases[1].Name != "surge" {
		t.Errorf("phase names wrong: %q, %q", out.Phases[0].Name, out.Phases[1].Name)
	}
	if out.Phases[0].Window != 40 || out.Phases[1].Window != 40 {
		t.Errorf("phase windows = %v, %v, want 40 each (warmup excluded)",
			out.Phases[0].Window, out.Phases[1].Window)
	}
	if out.Total.Window != 80 {
		t.Errorf("total window = %v, want 80", out.Total.Window)
	}
	if sum := out.Phases[0].Completed + out.Phases[1].Completed; sum != out.Total.Completed {
		t.Errorf("phase completions %d don't sum to total %d", sum, out.Total.Completed)
	}
	if out.Total.Completed == 0 || out.Total.CPUUtil <= 0 {
		t.Errorf("empty total report: %+v", out.Total)
	}
}

func TestSnapshotsAreWindowed(t *testing.T) {
	st := testStack(t, 5, 3)
	var col metrics.Collector
	out, err := Run(context.Background(), st, Spec{
		Warmup:         5,
		SampleInterval: 10,
		Phases:         []Phase{{Kind: KindClosed, Clients: 50, Duration: 100}},
	}, &col)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Snapshots) != 10 {
		t.Fatalf("snapshots = %d, want 10", len(col.Snapshots))
	}
	var sum uint64
	prev := 5.0
	for i, s := range col.Snapshots {
		if s.Window != 10 {
			t.Errorf("snapshot %d window = %v, want 10", i, s.Window)
		}
		if s.Time != prev+10 {
			t.Errorf("snapshot %d at %v, want %v", i, s.Time, prev+10)
		}
		prev = s.Time
		if s.Completed == 0 || s.Throughput <= 0 {
			t.Errorf("snapshot %d empty: %+v", i, s)
		}
		if s.Limit != 5 {
			t.Errorf("snapshot %d limit = %d, want 5", i, s.Limit)
		}
		if s.Phase != "closed" {
			t.Errorf("snapshot %d phase = %q", i, s.Phase)
		}
		sum += s.Completed
	}
	if sum != out.Total.Completed {
		t.Errorf("snapshot completions %d don't sum to total %d", sum, out.Total.Completed)
	}
}

func TestMidPhaseEvents(t *testing.T) {
	st := testStack(t, 2, 4)
	mpl := 20
	var col metrics.Collector
	out, err := Run(context.Background(), st, Spec{
		SampleInterval: 10,
		Phases: []Phase{{
			Kind: KindClosed, Clients: 50, Duration: 100,
			Events: []Event{{At: 50, SetMPL: &mpl}},
		}},
	}, &col)
	if err != nil {
		t.Fatal(err)
	}
	if out.FinalMPL != 20 {
		t.Errorf("final MPL = %d, want 20", out.FinalMPL)
	}
	// Snapshots taken before t=50 see limit 2; after, 20.
	for _, s := range col.Snapshots {
		want := 2
		if s.Time >= 50 {
			want = 20
		}
		if s.Limit != want {
			t.Errorf("snapshot at %v: limit %d, want %d", s.Time, s.Limit, want)
		}
	}
}

func TestControllerEventAndEarlyStop(t *testing.T) {
	// Measure a no-MPL reference, then let the controller tune a fresh
	// stack from a deliberately wrong start.
	ref := testStack(t, 0, 5)
	base, err := Run(context.Background(), ref, Spec{
		Warmup: 20,
		Phases: []Phase{{Kind: KindClosed, Duration: 150}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := testStack(t, 30, 5)
	out, err := Run(context.Background(), st, Spec{
		Warmup:         20,
		SampleInterval: 25,
		Phases: []Phase{{
			Kind: KindClosed, Duration: 4000,
			Events: []Event{{At: 0, EnableController: &ControllerSpec{
				MaxThroughputLoss:   0.05,
				ReferenceThroughput: base.Total.Throughput(),
				StopOnConverge:      true,
			}}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Tune == nil {
		t.Fatal("no tune report")
	}
	if !out.Tune.Converged {
		t.Errorf("controller did not converge: %+v", out.Tune)
	}
	if out.Tune.StartMPL != 30 {
		t.Errorf("start MPL = %d, want 30", out.Tune.StartMPL)
	}
	if out.Tune.FinalMPL < 1 || out.Tune.FinalMPL >= 30 {
		t.Errorf("final MPL = %d, want tuned below the wasteful 30", out.Tune.FinalMPL)
	}
	// Early stop: the run ended well before the 4000-second horizon.
	if out.Total.Window >= 4000 {
		t.Errorf("run used the whole horizon (%v): early stop broken", out.Total.Window)
	}
}

// TestStopOnConvergeWithoutSampling: early stop must not depend on
// snapshot breakpoints — a converging controller halts the engine from
// the completion stream even when the spec has no SampleInterval.
func TestStopOnConvergeWithoutSampling(t *testing.T) {
	ref := testStack(t, 0, 5)
	base, err := Run(context.Background(), ref, Spec{
		Warmup: 20,
		Phases: []Phase{{Kind: KindClosed, Duration: 150}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := testStack(t, 30, 5)
	out, err := Run(context.Background(), st, Spec{
		Warmup: 20,
		Phases: []Phase{{
			Kind: KindClosed, Duration: 100000,
			Events: []Event{{At: 0, EnableController: &ControllerSpec{
				MaxThroughputLoss:   0.05,
				ReferenceThroughput: base.Total.Throughput(),
				StopOnConverge:      true,
			}}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Tune == nil || !out.Tune.Converged {
		t.Fatalf("controller did not converge: %+v", out.Tune)
	}
	if out.Total.Window >= 100000 {
		t.Errorf("run consumed the whole horizon (%v) despite convergence", out.Total.Window)
	}
}

func TestDisableControllerFreezesTuneReport(t *testing.T) {
	ref := testStack(t, 0, 5)
	base, err := Run(context.Background(), ref, Spec{
		Warmup: 20,
		Phases: []Phase{{Kind: KindClosed, Duration: 150}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := testStack(t, 8, 5)
	out, err := Run(context.Background(), st, Spec{
		Warmup:         20,
		SampleInterval: 25,
		Phases: []Phase{
			{Kind: KindClosed, Duration: 600, Events: []Event{{EnableController: &ControllerSpec{
				MaxThroughputLoss:   0.05,
				ReferenceThroughput: base.Total.Throughput(),
			}}}},
			{Kind: KindClosed, Duration: 50, Events: []Event{{DisableController: true}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Tune == nil {
		t.Fatal("tune report lost after DisableController")
	}
	if out.Tune.Iterations == 0 {
		t.Error("tune report recorded no iterations")
	}
	if out.Tune.FinalMPL != out.FinalMPL {
		t.Errorf("disabled controller's MPL %d should be frozen (final %d)",
			out.Tune.FinalMPL, out.FinalMPL)
	}
}

func TestZeroDurationPhase(t *testing.T) {
	st := testStack(t, 5, 6)
	out, err := Run(context.Background(), st, Spec{
		Phases: []Phase{
			{Name: "blip", Kind: KindClosed, Clients: 10, Duration: 0},
			{Name: "main", Kind: KindOpen, Lambda: 40, Duration: 50},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(out.Phases))
	}
	if out.Phases[0].Window != 0 {
		t.Errorf("zero-duration phase window = %v", out.Phases[0].Window)
	}
	// The blip's 10 clients were submitted at the boundary instant and
	// completed during the main phase (stopped clients do not recycle).
	if out.Total.Completed == 0 {
		t.Error("no completions")
	}
	if out.Total.Window != 50 {
		t.Errorf("total window = %v, want 50", out.Total.Window)
	}
}

func TestRunDeterministicAcrossRebuilds(t *testing.T) {
	tr := trace.SyntheticRetailer(2000, 9)
	spec := Spec{
		Warmup:         5,
		SampleInterval: 7,
		Phases: []Phase{
			{Kind: KindClosed, Clients: 30, Duration: 30},
			{Kind: KindRamp, Lambda: 10, Lambda2: 80, Duration: 30},
			{Kind: KindTrace, Trace: tr, TraceSpeedup: 2, Duration: 20},
		},
	}
	do := func() (Outcome, []metrics.Snapshot) {
		st := testStack(t, 4, 7)
		st.PercentileSamples = 1000
		var col metrics.Collector
		out, err := Run(context.Background(), st, spec, &col)
		if err != nil {
			t.Fatal(err)
		}
		return out, col.Snapshots
	}
	o1, s1 := do()
	o2, s2 := do()
	if !reflect.DeepEqual(o1, o2) {
		t.Errorf("same-seed outcomes differ:\n%+v\nvs\n%+v", o1, o2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("same-seed snapshot streams differ")
	}
	if len(s1) == 0 {
		t.Error("no snapshots collected")
	}
	if o1.Total.P95 <= 0 || o1.Total.P95 < o1.Total.P50 {
		t.Errorf("percentiles not populated/ordered: p50 %v p95 %v", o1.Total.P50, o1.Total.P95)
	}
}

func TestRunContextCancellation(t *testing.T) {
	st := testStack(t, 5, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, st, Spec{
		SampleInterval: 1,
		Phases:         []Phase{{Kind: KindClosed, Duration: 100}},
	}); err == nil {
		t.Error("canceled context accepted")
	}
}

// Package ctmc builds and solves finite continuous-time Markov chains.
//
// Its centerpiece is the paper's Fig. 9 chain: the "flexible multiserver
// queue" equivalent of a FIFO queue feeding a processor-sharing server
// that admits at most MPL jobs, with 2-phase hyperexponential (H2) job
// sizes and Poisson arrivals. The chain is truncated at a configurable
// maximum population and solved for its stationary distribution by
// Gauss–Seidel sweeps over the balance equations; mean response time
// follows from Little's law. The companion package qbd solves the same
// chain exactly (unbounded) via matrix-geometric methods; the two
// cross-validate each other in tests.
package ctmc

import (
	"fmt"
	"math"

	"extsched/internal/dist"
)

// transition is one directed rate in the generator.
type transition struct {
	to   int
	rate float64
}

// Chain is a finite CTMC under construction.
type Chain struct {
	n   int
	out [][]transition // outgoing rates per state
}

// NewChain returns a chain with n states and no transitions.
func NewChain(n int) *Chain {
	if n <= 0 {
		panic(fmt.Sprintf("ctmc: chain needs positive state count, got %d", n))
	}
	return &Chain{n: n, out: make([][]transition, n)}
}

// States returns the number of states.
func (c *Chain) States() int { return c.n }

// AddRate adds a transition from → to at the given rate (> 0). Self
// loops are rejected; multiple rates between the same pair accumulate.
func (c *Chain) AddRate(from, to int, rate float64) {
	if from < 0 || from >= c.n || to < 0 || to >= c.n {
		panic(fmt.Sprintf("ctmc: transition %d→%d outside [0,%d)", from, to, c.n))
	}
	if from == to {
		panic("ctmc: self-loop transitions are not allowed")
	}
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		panic(fmt.Sprintf("ctmc: invalid rate %v for %d→%d", rate, from, to))
	}
	c.out[from] = append(c.out[from], transition{to: to, rate: rate})
}

// SolveOptions tunes the Gauss–Seidel stationary solve.
type SolveOptions struct {
	// Tol is the convergence tolerance on the max relative change of
	// any probability between sweeps. Default 1e-10.
	Tol float64
	// MaxIter bounds the number of sweeps. Default 200000.
	MaxIter int
}

// Stationary computes the stationary distribution π (πQ = 0, Σπ = 1) by
// Gauss–Seidel iteration over the balance equations
//
//	π_j · outflow_j = Σ_i π_i · rate(i→j).
//
// The chain must be irreducible (every state reachable); states with no
// outgoing rate make the equations singular and return an error.
func (c *Chain) Stationary(opts SolveOptions) ([]float64, error) {
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200000
	}
	outflow := make([]float64, c.n)
	// Incoming adjacency for Gauss–Seidel sweeps.
	type inEdge struct {
		from int
		rate float64
	}
	in := make([][]inEdge, c.n)
	for from, ts := range c.out {
		for _, t := range ts {
			outflow[from] += t.rate
			in[t.to] = append(in[t.to], inEdge{from: from, rate: t.rate})
		}
	}
	for j, f := range outflow {
		if f <= 0 {
			return nil, fmt.Errorf("ctmc: state %d has no outgoing transitions (absorbing)", j)
		}
	}
	pi := make([]float64, c.n)
	for i := range pi {
		pi[i] = 1 / float64(c.n)
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		maxRel := 0.0
		for j := 0; j < c.n; j++ {
			sum := 0.0
			for _, e := range in[j] {
				sum += pi[e.from] * e.rate
			}
			nv := sum / outflow[j]
			old := pi[j]
			pi[j] = nv
			den := math.Max(old, nv)
			if den > 0 {
				if rel := math.Abs(nv-old) / den; rel > maxRel {
					maxRel = rel
				}
			}
		}
		// Normalize each sweep to keep magnitudes stable.
		total := 0.0
		for _, p := range pi {
			total += p
		}
		if total <= 0 || math.IsNaN(total) {
			return nil, fmt.Errorf("ctmc: Gauss–Seidel diverged at iteration %d", iter)
		}
		for i := range pi {
			pi[i] /= total
		}
		if maxRel < opts.Tol {
			return pi, nil
		}
	}
	return nil, fmt.Errorf("ctmc: Gauss–Seidel did not converge in %d sweeps", opts.MaxIter)
}

// FlexModel is the Fig. 9 flexible multiserver queue: Poisson(Lambda)
// arrivals into a FIFO queue feeding a PS server limited to MPL
// concurrent jobs, H2 job sizes.
type FlexModel struct {
	Lambda  float64 // arrival rate
	Job     dist.H2 // job-size distribution
	MPL     int     // multiprogramming limit (>= 1)
	MaxJobs int     // truncation level (>= MPL); 0 picks automatically
}

// Validate checks stability and parameter sanity.
func (m FlexModel) Validate() error {
	if m.Lambda <= 0 {
		return fmt.Errorf("ctmc: arrival rate %v must be positive", m.Lambda)
	}
	if m.MPL < 1 {
		return fmt.Errorf("ctmc: MPL %d must be >= 1", m.MPL)
	}
	rho := m.Lambda * m.Job.Mean()
	if rho >= 1 {
		return fmt.Errorf("ctmc: unstable system, rho = %v >= 1", rho)
	}
	if m.MaxJobs != 0 && m.MaxJobs < m.MPL {
		return fmt.Errorf("ctmc: truncation %d below MPL %d", m.MaxJobs, m.MPL)
	}
	return nil
}

// autoTruncation picks a truncation level with negligible mass beyond
// it: queue-tail decay is roughly geometric with ratio ρ, so we size
// the buffer from the M/G/1 mean plus a generous multiple of the decay
// scale.
func (m FlexModel) autoTruncation() int {
	rho := m.Lambda * m.Job.Mean()
	// Mean jobs for M/G/1 FIFO (worst case among MPL settings).
	meanJobs := rho + rho*rho*(1+m.Job.C2())/(2*(1-rho))
	n := int(meanJobs*12) + m.MPL + 200
	if n < 400 {
		n = 400
	}
	return n
}

// stateIndex maps (n jobs in system, n1 in-service phase-1 jobs) to a
// dense index. For n <= MPL all n jobs are in service (n1 in 0..n); for
// n > MPL exactly MPL are (n1 in 0..MPL).
type stateIndex struct {
	mpl    int
	max    int
	offset []int // offset[n] = first index of level n
	total  int
}

func newStateIndex(mpl, max int) *stateIndex {
	si := &stateIndex{mpl: mpl, max: max, offset: make([]int, max+1)}
	idx := 0
	for n := 0; n <= max; n++ {
		si.offset[n] = idx
		idx += si.width(n)
	}
	si.total = idx
	return si
}

// width returns the number of phase configurations at level n.
func (si *stateIndex) width(n int) int {
	if n < si.mpl {
		return n + 1
	}
	return si.mpl + 1
}

// id returns the dense index of (n, n1).
func (si *stateIndex) id(n, n1 int) int {
	if n < 0 || n > si.max || n1 < 0 || n1 >= si.width(n) {
		panic(fmt.Sprintf("ctmc: state (%d,%d) out of range", n, n1))
	}
	return si.offset[n] + n1
}

// FlexSolution summarizes the solved flexible multiserver queue.
type FlexSolution struct {
	MeanJobs     float64 // E[number in system] (external queue + in service)
	MeanRT       float64 // E[response time] by Little's law
	MeanInServ   float64 // E[number in service]
	Utilization  float64 // P(system non-empty)
	TruncMass    float64 // probability mass at the truncation boundary
	TruncLevel   int
	Distribution []float64 // P(N = n) for n = 0..TruncLevel
}

// Solve builds and solves the truncated Fig. 9 chain.
func Solve(m FlexModel) (*FlexSolution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	max := m.MaxJobs
	if max == 0 {
		max = m.autoTruncation()
	}
	si := newStateIndex(m.MPL, max)
	c := NewChain(si.total)
	p, q := m.Job.P, 1-m.Job.P
	mu1, mu2 := m.Job.Mu1, m.Job.Mu2
	lam := m.Lambda

	for n := 0; n <= max; n++ {
		k := n // jobs in service
		if k > m.MPL {
			k = m.MPL
		}
		for n1 := 0; n1 < si.width(n); n1++ {
			from := si.id(n, n1)
			// Arrivals.
			if n < max {
				if n < m.MPL {
					// New job enters service immediately with a drawn phase.
					if p > 0 {
						c.AddRate(from, si.id(n+1, n1+1), lam*p)
					}
					if q > 0 {
						c.AddRate(from, si.id(n+1, n1), lam*q)
					}
				} else {
					// New job waits in the external FIFO queue; phases of
					// in-service jobs are unchanged.
					c.AddRate(from, si.id(n+1, n1), lam)
				}
			}
			if n == 0 {
				continue
			}
			// Completions under PS: with k jobs sharing unit capacity, a
			// phase-i job departs at rate μi/k.
			n2 := k - n1
			queued := n > m.MPL // someone is waiting to enter service
			if n1 > 0 {
				r := float64(n1) * mu1 / float64(k)
				if queued {
					// Departing phase-1 job replaced by a queued job whose
					// phase is drawn (p → phase 1 keeps n1, q → n1-1).
					if p > 0 {
						c.AddRate(from, si.id(n-1, n1), r*p)
					}
					if q > 0 {
						c.AddRate(from, si.id(n-1, n1-1), r*q)
					}
				} else {
					c.AddRate(from, si.id(n-1, n1-1), r)
				}
			}
			if n2 > 0 {
				r := float64(n2) * mu2 / float64(k)
				if queued {
					if p > 0 {
						c.AddRate(from, si.id(n-1, n1+1), r*p)
					}
					if q > 0 {
						c.AddRate(from, si.id(n-1, n1), r*q)
					}
				} else {
					c.AddRate(from, si.id(n-1, n1), r)
				}
			}
		}
	}

	pi, err := c.Stationary(SolveOptions{})
	if err != nil {
		return nil, err
	}
	sol := &FlexSolution{TruncLevel: max, Distribution: make([]float64, max+1)}
	for n := 0; n <= max; n++ {
		levelMass := 0.0
		inServ := n
		if inServ > m.MPL {
			inServ = m.MPL
		}
		for n1 := 0; n1 < si.width(n); n1++ {
			levelMass += pi[si.id(n, n1)]
		}
		sol.Distribution[n] = levelMass
		sol.MeanJobs += float64(n) * levelMass
		sol.MeanInServ += float64(inServ) * levelMass
	}
	sol.Utilization = 1 - sol.Distribution[0]
	sol.TruncMass = sol.Distribution[max]
	// Effective arrival rate equals λ·(1 − P(full)) in the truncated
	// chain; the truncation is sized so P(full) is negligible, and we
	// still account for it in Little's law for accuracy.
	lamEff := lam * (1 - sol.TruncMass)
	if lamEff <= 0 {
		return nil, fmt.Errorf("ctmc: truncated chain saturated (mass %v at boundary)", sol.TruncMass)
	}
	sol.MeanRT = sol.MeanJobs / lamEff
	return sol, nil
}

package core

import (
	"testing"

	"extsched/internal/sim"
)

// TestFastPathZeroAlloc pins the lock-free admission path's allocation
// count at zero: both TryAcquire+Complete (the live gate's synchronous
// path) and Submit+Complete on an uncontended frontend must not
// allocate — the whole point of the packed-word fast path.
func TestFastPathZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	fe := New(eng.Clock(), backendFunc(func(it *Item) {}), 0, NewFIFO())

	it := &Item{Class: ClassHigh}
	if n := testing.AllocsPerRun(100, func() {
		if !fe.TryAcquire(it) {
			t.Fatal("TryAcquire failed on an unlimited gate")
		}
		fe.Complete(it, Outcome{})
	}); n != 0 {
		t.Errorf("TryAcquire+Complete allocates %v/op, want 0", n)
	}

	done := false
	exec := backendFunc(func(it *Item) { done = true })
	fe2 := New(eng.Clock(), exec, 0, NewFIFO())
	it2 := &Item{Class: ClassLow}
	if n := testing.AllocsPerRun(100, func() {
		done = false
		if !fe2.Submit(it2, nil) {
			t.Fatal("Submit failed on an unlimited gate")
		}
		if !done {
			t.Fatal("Submit fast path did not Exec synchronously")
		}
		fe2.Complete(it2, Outcome{})
	}); n != 0 {
		t.Errorf("Submit+Complete allocates %v/op, want 0", n)
	}
}

// TestTryAcquireFallsBack enumerates every condition that must push an
// admission off the lock-free path: TryAcquire returns false (leaving
// the item untouched) whenever correctness needs the mutex.
func TestTryAcquireFallsBack(t *testing.T) {
	eng := sim.NewEngine()

	t.Run("gate full", func(t *testing.T) {
		fe := New(eng.Clock(), backendFunc(func(*Item) {}), 1, NewFIFO())
		a := &Item{}
		if !fe.TryAcquire(a) {
			t.Fatal("first TryAcquire should admit")
		}
		if fe.TryAcquire(&Item{}) {
			t.Error("TryAcquire admitted past MPL=1")
		}
		fe.Complete(a, Outcome{})
	})

	t.Run("queued waiter", func(t *testing.T) {
		var execs []*Item
		var fe *Frontend
		fe = New(eng.Clock(), backendFunc(func(it *Item) { execs = append(execs, it) }), 1, NewFIFO())
		a := &Item{}
		if !fe.TryAcquire(a) {
			t.Fatal("first TryAcquire should admit")
		}
		b := &Item{}
		fe.Submit(b, nil) // queues behind a
		if fe.QueueLen() != 1 {
			t.Fatalf("QueueLen=%d, want 1", fe.QueueLen())
		}
		fe.Complete(a, Outcome{})
		if len(execs) != 1 || execs[0] != b {
			t.Fatal("queued item did not dispatch on Complete")
		}
		fe.Complete(b, Outcome{})
		// Queue drained: the slow flag must have cleared, so the fast
		// path works again.
		c := &Item{}
		if !fe.TryAcquire(c) {
			t.Error("TryAcquire still slow after the queue drained")
		}
		fe.Complete(c, Outcome{})
	})

	t.Run("class limits armed", func(t *testing.T) {
		fe := New(eng.Clock(), backendFunc(func(*Item) {}), 4, NewFIFO())
		fe.SetClassLimits(map[Class]int{ClassHigh: 2})
		if fe.TryAcquire(&Item{}) {
			t.Error("TryAcquire bypassed an armed class partition")
		}
		fe.SetClassLimits(nil)
		it := &Item{}
		if !fe.TryAcquire(it) {
			t.Error("TryAcquire still slow after partition cleared")
		}
		fe.Complete(it, Outcome{})
	})

	t.Run("admit deadline armed", func(t *testing.T) {
		fe := New(eng.Clock(), backendFunc(func(*Item) {}), 4, NewFIFO())
		fe.SetAdmitDeadline(ClassHigh, 1.5)
		if fe.TryAcquire(&Item{Class: ClassLow}) {
			t.Error("TryAcquire bypassed an armed admit deadline (any class forces slow)")
		}
		fe.SetAdmitDeadline(ClassHigh, 0)
		it := &Item{}
		if !fe.TryAcquire(it) {
			t.Error("TryAcquire still slow after deadline cleared")
		}
		fe.Complete(it, Outcome{})
	})

	t.Run("pre-set item deadline", func(t *testing.T) {
		fe := New(eng.Clock(), backendFunc(func(*Item) {}), 4, NewFIFO())
		if fe.TryAcquire(&Item{Deadline: 99}) {
			t.Error("TryAcquire admitted an item carrying a deadline")
		}
	})

	t.Run("untracked class", func(t *testing.T) {
		fe := New(eng.Clock(), backendFunc(func(*Item) {}), 4, NewFIFO())
		if fe.TryAcquire(&Item{Class: Class(trackedClasses)}) {
			t.Error("TryAcquire admitted an exotic class outside the tracked array")
		}
		if fe.TryAcquire(&Item{Class: -1}) {
			t.Error("TryAcquire admitted a negative class")
		}
	})
}

// TestSetMPLShrinkBelowInflight verifies the lock-free counter's shrink
// semantics: lowering the limit below the current inflight count must
// not underflow, must not admit anything until the overshoot drains,
// and must not strand queued waiters once it has.
func TestSetMPLShrinkBelowInflight(t *testing.T) {
	eng := sim.NewEngine()
	var execs []*Item
	fe := New(eng.Clock(), backendFunc(func(it *Item) { execs = append(execs, it) }), 4, NewFIFO())

	var inside []*Item
	for i := 0; i < 4; i++ {
		it := &Item{}
		if !fe.TryAcquire(it) {
			t.Fatalf("admit %d failed below MPL", i)
		}
		inside = append(inside, it)
	}
	fe.SetMPL(2)
	if got := fe.Inside(); got != 4 {
		t.Fatalf("Inside=%d after shrink, want 4 (overshoot drains, never truncates)", got)
	}
	if fe.TryAcquire(&Item{}) {
		t.Fatal("TryAcquire admitted while inflight exceeds the shrunken limit")
	}
	q := &Item{}
	fe.Submit(q, nil) // queues: 4 inside >= limit 2
	if len(execs) != 0 || fe.QueueLen() != 1 {
		t.Fatalf("submit during overshoot: execs=%d queued=%d, want 0/1", len(execs), fe.QueueLen())
	}
	fe.Complete(inside[0], Outcome{}) // 3 >= 2: still no room
	fe.Complete(inside[1], Outcome{}) // 2 >= 2: still no room
	if len(execs) != 0 {
		t.Fatalf("queued item dispatched while inside >= limit")
	}
	fe.Complete(inside[2], Outcome{}) // 1 < 2: waiter must wake
	if len(execs) != 1 || execs[0] != q {
		t.Fatalf("queued item stranded after the overshoot drained (execs=%d)", len(execs))
	}
	fe.Complete(inside[3], Outcome{})
	fe.Complete(q, Outcome{})
	if got := fe.Inside(); got != 0 {
		t.Fatalf("Inside=%d after drain, want 0 (underflow check)", got)
	}
	if fe.QueueLen() != 0 {
		t.Fatalf("QueueLen=%d after drain, want 0", fe.QueueLen())
	}
}

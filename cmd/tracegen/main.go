// Command tracegen synthesizes transaction traces shaped like the
// paper's production comparisons (top-10 retailer / auction site,
// C² ≈ 2) or with custom statistics, and writes them as CSV for replay
// by the simulator or analysis elsewhere.
//
// Examples:
//
//	tracegen -preset retailer -n 100000 -o retailer.csv
//	tracegen -n 50000 -mean 0.08 -c2 4 -lambda 30 -burst 2 -o custom.csv
//	tracegen -stats -i retailer.csv          # report a trace's statistics
package main

import (
	"flag"
	"fmt"
	"os"

	"extsched/internal/trace"
)

func main() {
	var (
		preset = flag.String("preset", "", "retailer or auction")
		n      = flag.Int("n", 100000, "number of records")
		mean   = flag.Float64("mean", 0.05, "mean service demand (seconds)")
		c2     = flag.Float64("c2", 2.0, "squared coefficient of variation")
		lambda = flag.Float64("lambda", 50, "mean arrival rate (records/second)")
		burst  = flag.Float64("burst", 1, "arrival burstiness (>= 1; 1 = Poisson)")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("o", "", "output CSV path (default stdout)")
		in     = flag.String("i", "", "with -stats: input CSV to analyze")
		stats  = flag.Bool("stats", false, "report statistics of -i instead of generating")
	)
	flag.Parse()

	if *stats {
		if *in == "" {
			fatal(fmt.Errorf("-stats requires -i"))
		}
		tr, err := trace.LoadFile(*in)
		if err != nil {
			fatal(err)
		}
		ps := tr.Percentiles(50, 90, 99)
		fmt.Printf("source:      %s\n", tr.Source)
		fmt.Printf("records:     %d\n", tr.Len())
		fmt.Printf("mean demand: %.6fs\n", tr.MeanDemand())
		fmt.Printf("demand C²:   %.3f\n", tr.DemandC2())
		fmt.Printf("p50/p90/p99: %.6fs %.6fs %.6fs\n", ps[0], ps[1], ps[2])
		return
	}

	var tr *trace.Trace
	var err error
	switch *preset {
	case "retailer":
		tr = trace.SyntheticRetailer(*n, *seed)
	case "auction":
		tr = trace.SyntheticAuction(*n, *seed)
	case "":
		tr, err = trace.Synthesize(trace.SynthConfig{
			N: *n, MeanDemand: *mean, DemandC2: *c2,
			Lambda: *lambda, Burstiness: *burst, Seed: *seed,
			Source: "tracegen",
		})
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown preset %q", *preset))
	}
	if *out == "" {
		if err := tr.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if err := tr.SaveFile(*out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d records to %s (C²=%.2f)\n", tr.Len(), *out, tr.DemandC2())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

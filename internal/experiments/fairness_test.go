package experiments

import (
	"reflect"
	"testing"
)

// TestFairnessFigureIsolation is the multi-tenant acceptance test: an
// aggressor at ten times a victim's arrival rate must not move any
// victim's p95 past 2x its no-aggressor baseline when the fairness
// controller governs the gate, while the plain shared gate blows far
// past that bound.
func TestFairnessFigureIsolation(t *testing.T) {
	f, err := FairnessFigure(2, RunOpts{Warmup: 20, Measure: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range f.Notes {
		t.Log(n)
	}
	ratios := f.Series[len(f.Series)-1]
	if ratios.Name != "worst victim p95 ratio vs baseline (off, on)" {
		t.Fatalf("last series is %q, want the worst-ratio series", ratios.Name)
	}
	off, on := ratios.Y[0], ratios.Y[1]
	if on > 2 {
		t.Errorf("fairness-on worst victim p95 ratio %.2fx, want <= 2x of the no-aggressor baseline", on)
	}
	if off <= 2 {
		t.Errorf("fairness-off worst victim p95 ratio %.2fx, want the shared gate to blow the 2x bound", off)
	}
	// The contrast is the figure's point: the shared gate is not
	// marginally worse, it is unbounded-queue worse.
	if off < 5*on {
		t.Errorf("fairness-off %.2fx vs fairness-on %.2fx: want a >= 5x contrast", off, on)
	}
}

// TestFairnessFigureDeterministic: the fairness figure reruns
// bit-identically, controller trajectory included, like every other
// figure in the repository.
func TestFairnessFigureDeterministic(t *testing.T) {
	opts := RunOpts{Warmup: 10, Measure: 60, Seed: 7}
	a, err := FairnessFigure(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FairnessFigure(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fairness figure not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

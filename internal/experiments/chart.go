package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders the figure as an ASCII scatter/line chart, one marker
// per series, sized width×height characters — the terminal equivalent
// of the paper's plots for cmd/benchrunner -chart.
func (f *Figure) Chart(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		return b.String()
	}
	markers := []byte("*o+x#@%&")
	// Data bounds over all series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// Plot grid.
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = m
			}
		}
	}
	leftPad := 11
	for r, line := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%10.3g", maxY)
		case height - 1:
			label = fmt.Sprintf("%10.3g", minY)
		case (height - 1) / 2:
			label = fmt.Sprintf("%10.3g", (maxY+minY)/2)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", leftPad-1), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-10.3g%s%10.3g\n", strings.Repeat(" ", leftPad-1),
		minX, strings.Repeat(" ", max(0, width-20)), maxX)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", markers[si%len(markers)], s.Name)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

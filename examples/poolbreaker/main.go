// Pool breaker demo: a self-healing live gate pool surviving the death
// of one of its members.
//
// Three replica backends sit behind a gate.Pool with a fleet-wide MPL
// of 12 and the circuit breaker armed. Mid-run, replica 2 is killed:
// every request it serves starts failing. After a handful of
// consecutive failures its breaker trips — routing skips it, and the
// two survivors absorb its share of the fleet limit, so admitted
// concurrency against the healthy backends is unchanged. Once the
// replica is revived, the next half-open probe succeeds, the breaker
// closes, and the even limit split returns — all without the clients
// doing anything but retrying errors.
//
//	go run ./examples/poolbreaker
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"
)

import (
	"extsched/gate"
)

const (
	members  = 3
	clients  = 24
	holdTime = 2 * time.Millisecond
)

// replica is one fake backend; dead replicas fail every query.
type replica struct {
	dead atomic.Bool
}

func (r *replica) query() error {
	time.Sleep(holdTime)
	if r.dead.Load() {
		return errors.New("replica down")
	}
	return nil
}

func main() {
	p, err := gate.NewPool(gate.PoolConfig{
		Members:  members,
		Dispatch: "jsq",
		Breaker:  &gate.BreakerConfig{Threshold: 5, ProbeInterval: 0.5},
		Member:   gate.Config{Limit: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	backends := make([]*replica, members)
	for i := range backends {
		backends[i] = &replica{}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tk, err := p.Acquire(context.Background())
				if errors.Is(err, gate.ErrMemberDown) {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				if err != nil {
					return
				}
				qerr := backends[tk.Member()].query()
				tk.Release(gate.Result{Err: qerr})
			}
		}()
	}

	show := func(tag string) {
		st := p.Stats()
		fmt.Printf("%-22s", tag)
		for _, s := range st.Shards {
			fmt.Printf("  member %d: %-4s limit %2d avail %4.0f%%",
				s.Shard, s.State, s.Limit, 100*s.Availability)
		}
		fmt.Printf("  errors %d\n", st.Errors)
	}

	fmt.Printf("%d replicas behind one pool, fleet limit %d, breaker threshold 5, probe every 0.5s\n\n",
		members, p.Limit())
	time.Sleep(300 * time.Millisecond)
	show("steady state")

	fmt.Println("\nkilling replica 2 ...")
	backends[2].dead.Store(true)
	// Wait for the breaker to trip: five consecutive failures at a few
	// milliseconds per query arrive almost immediately.
	deadline := time.Now().Add(3 * time.Second)
	for p.MemberState(2) != "down" && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	show("after the trip")
	fmt.Println("  -> routing skips member 2; survivors hold the whole fleet limit")

	// Failed probes keep it down while the replica stays dead.
	time.Sleep(1200 * time.Millisecond)
	show("while down (probing)")

	fmt.Println("\nreviving replica 2 ...")
	backends[2].dead.Store(false)
	deadline = time.Now().Add(3 * time.Second)
	for p.MemberState(2) != "up" && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	show("after recovery")
	fmt.Println("  -> one successful half-open probe closed the breaker and the even split returned")

	close(stop)
	wg.Wait()
}

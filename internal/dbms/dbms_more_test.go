package dbms

import (
	"math"
	"testing"

	"extsched/internal/dist"
	"extsched/internal/lockmgr"
	"extsched/internal/sim"
)

func TestLogDeviceSerializesCommits(t *testing.T) {
	// Two instant transactions committing together still serialize on
	// the 10ms log write without group commit.
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 2, Disks: 1,
		LogService: dist.NewDeterministic(0.01),
	})
	var t1, t2 float64
	db.Exec(TxnProfile{Ops: []Op{{Key: 1, CPUWork: 0.001}}}, func(Result) { t1 = eng.Now() })
	db.Exec(TxnProfile{Ops: []Op{{Key: 2, CPUWork: 0.001}}}, func(Result) { t2 = eng.Now() })
	eng.RunAll()
	first, second := math.Min(t1, t2), math.Max(t1, t2)
	if math.Abs(first-0.011) > 1e-9 {
		t.Errorf("first commit at %v, want 0.011", first)
	}
	if math.Abs(second-0.021) > 1e-9 {
		t.Errorf("second commit at %v, want 0.021 (serial log)", second)
	}
}

func TestGroupCommitParallelizesCommits(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 2, Disks: 1,
		LogService:  dist.NewDeterministic(0.01),
		GroupCommit: true,
	})
	done := 0
	// Stagger starts slightly so the second commit arrives while the
	// first flush is in flight — it must ride the NEXT flush, not wait
	// behind a full serial queue.
	db.Exec(TxnProfile{Ops: []Op{{Key: 1, CPUWork: 0.001}}}, func(Result) { done++ })
	db.Exec(TxnProfile{Ops: []Op{{Key: 2, CPUWork: 0.002}}}, func(Result) { done++ })
	db.Exec(TxnProfile{Ops: []Op{{Key: 3, CPUWork: 0.003}}}, func(Result) { done++ })
	eng.RunAll()
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	// Flush 1 carries txn 1 (commit ~0.011); txns 2 and 3 batch into
	// flush 2 (~0.021). Serial would need 3 flushes ending ~0.031.
	if eng.Now() > 0.0215 {
		t.Errorf("drained at %v, want ~0.021 with batching", eng.Now())
	}
	if db.Log().Flushes() != 2 {
		t.Errorf("flushes = %d, want 2", db.Log().Flushes())
	}
}

func TestRollbackCostCharged(t *testing.T) {
	// A deadlock victim pays RollbackCPU × completed work before
	// restarting; with a large factor the victim's commit is visibly
	// delayed.
	run := func(rollback float64) float64 {
		eng := sim.NewEngine()
		db := mustDB(t, eng, Config{
			CPUs: 2, Disks: 1,
			LogService:     dist.NewDeterministic(0),
			RestartBackoff: dist.NewDeterministic(0.001),
			RollbackCPU:    rollback,
		})
		p1 := TxnProfile{Ops: []Op{
			{Key: 1, Write: true, CPUWork: 0.1},
			{Key: 2, Write: true, CPUWork: 0.1},
		}}
		p2 := TxnProfile{Ops: []Op{
			{Key: 2, Write: true, CPUWork: 0.1},
			{Key: 1, Write: true, CPUWork: 0.1},
		}}
		db.Exec(p1, func(Result) {})
		db.Exec(p2, func(Result) {})
		eng.RunAll()
		return eng.Now()
	}
	cheap := run(0.001)
	costly := run(2.0)
	if costly <= cheap {
		t.Errorf("rollback cost had no effect: %v vs %v", costly, cheap)
	}
}

func TestStriping2DisksBalanced(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 1, Disks: 2,
		BufferPoolPages: 1, // everything misses
		DiskService:     dist.NewDeterministic(0.01),
		LogService:      dist.NewDeterministic(0),
		Seed:            4,
	})
	committed := 0
	for i := 0; i < 50; i++ {
		pages := make([]uint64, 10)
		for p := range pages {
			pages[p] = uint64(i*100 + p)
		}
		db.Exec(TxnProfile{Ops: []Op{{Key: uint64(1000 + i), CPUWork: 0.0001, Pages: pages}}},
			func(Result) { committed++ })
	}
	eng.RunAll()
	if committed != 50 {
		t.Fatalf("committed = %d", committed)
	}
	if u := db.DiskUtilization(); u < 0.5 {
		t.Errorf("disk utilization = %v, want both disks working", u)
	}
}

func TestHonorsURWriteWriteConflict(t *testing.T) {
	// UR removes READ locks only; write-write conflicts still serialize.
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{
		CPUs: 2, Disks: 1, Isolation: UR,
		LogService: dist.NewDeterministic(0),
	})
	w := TxnProfile{Ops: []Op{{Key: 7, Write: true, CPUWork: 0.1}}}
	var times []float64
	db.Exec(w, func(Result) { times = append(times, eng.Now()) })
	db.Exec(w, func(Result) { times = append(times, eng.Now()) })
	eng.RunAll()
	if math.Abs(times[1]-0.2) > 1e-9 {
		t.Errorf("second writer at %v, want 0.2 (still serialized under UR)", times[1])
	}
}

func TestResultCarriesClass(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{CPUs: 1, Disks: 1, LogService: dist.NewDeterministic(0)})
	var got lockmgr.Class
	db.Exec(TxnProfile{
		Ops:   []Op{{Key: 1, CPUWork: 0.01}},
		Class: lockmgr.High,
	}, func(r Result) { got = r.Class })
	eng.RunAll()
	if got != lockmgr.High {
		t.Errorf("result class = %v, want High", got)
	}
}

func TestInsideCountTracksConcurrency(t *testing.T) {
	eng := sim.NewEngine()
	db := mustDB(t, eng, Config{CPUs: 4, Disks: 1, LogService: dist.NewDeterministic(0)})
	for i := 0; i < 4; i++ {
		db.Exec(TxnProfile{Ops: []Op{{Key: uint64(i), CPUWork: 1.0}}}, func(Result) {})
	}
	if db.Inside() != 4 {
		t.Errorf("inside = %d, want 4", db.Inside())
	}
	eng.Run(0.5)
	if db.Inside() != 4 {
		t.Errorf("inside = %d mid-run, want 4", db.Inside())
	}
	eng.RunAll()
	if db.Inside() != 0 {
		t.Errorf("inside = %d after drain", db.Inside())
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, float64) {
		eng := sim.NewEngine()
		db := mustDB(t, eng, Config{
			CPUs: 2, Disks: 2,
			BufferPoolPages: 100,
			DiskService:     dist.NewExponential(0.01),
			LogService:      dist.NewDeterministic(0.001),
			Seed:            99,
		})
		g := sim.NewRNG(5, 5)
		for i := 0; i < 200; i++ {
			prof := TxnProfile{Ops: []Op{{
				Key:     uint64(g.IntN(50)),
				Write:   g.IntN(2) == 0,
				CPUWork: g.Float64() * 0.01,
				Pages:   []uint64{uint64(g.IntN(1000))},
			}}}
			eng.After(g.Float64(), func() { db.Exec(prof, func(Result) {}) })
		}
		eng.RunAll()
		return db.Stats().Committed, eng.Now()
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Errorf("same-seed runs differ: (%d,%v) vs (%d,%v)", c1, t1, c2, t2)
	}
}

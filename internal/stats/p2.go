package stats

import "sort"

// P2 is the Jain–Chlamtac P² (P-squared) streaming quantile estimator:
// one target quantile tracked in O(1) memory — five markers, no stored
// samples, no randomness. It is the bounded-memory alternative to a
// per-stream Reservoir when a fleet carries thousands of streams
// (N>=1000 shards each wanting a p95): a Reservoir costs O(k) floats
// per stream, a P2 costs exactly five.
//
// The estimator is deterministic: equal observation sequences yield
// equal estimates, so it is safe anywhere the simulator's bit-identical
// rerun guarantee applies.
type P2 struct {
	p float64
	// q are the marker heights (estimates of the 0, p/2, p, (1+p)/2, 1
	// quantiles), n their integer positions, np their desired positions,
	// dn the desired-position increments.
	q  [5]float64
	n  [5]int
	np [5]float64
	dn [5]float64
	// count is the number of observations so far; the first five are
	// buffered in q until the markers initialize.
	count int64
}

// NewP2 tracks the q-th quantile, q in (0,1) — e.g. 0.95 for a p95.
func NewP2(quantile float64) *P2 {
	if quantile <= 0 || quantile >= 1 {
		panic("stats: P2 quantile must be in (0,1)")
	}
	e := &P2{p: quantile}
	e.dn = [5]float64{0, quantile / 2, quantile, (1 + quantile) / 2, 1}
	return e
}

// Quantile returns the tracked quantile's current estimate (0 with no
// observations; with fewer than five it is exact, computed from the
// buffered values).
func (e *P2) Quantile() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		buf := make([]float64, e.count)
		copy(buf, e.q[:e.count])
		sort.Float64s(buf)
		return PercentileInPlace(buf, e.p*100)
	}
	return e.q[2]
}

// Count returns the number of observations offered.
func (e *P2) Count() int64 { return e.count }

// Reset clears the estimator, keeping its quantile.
func (e *P2) Reset() {
	q := e.p
	*e = P2{p: q}
	e.dn = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
}

// Add offers one observation.
func (e *P2) Add(x float64) {
	if e.count < 5 {
		e.q[e.count] = x
		e.count++
		if e.count == 5 {
			sort.Float64s(e.q[:])
			for i := range e.n {
				e.n[i] = i
				e.np[i] = float64(i)
			}
			// Desired positions advance by dn per observation from here.
			e.np = [5]float64{0, 2 * e.p, 4 * e.p, 2 + 2*e.p, 4}
		}
		return
	}
	e.count++

	// Find the cell k with q[k] <= x < q[k+1], adjusting extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := range e.np {
		e.np[i] += e.dn[i]
	}

	// Adjust the three interior markers toward their desired positions
	// with the piecewise-parabolic (P²) update, falling back to linear
	// when the parabola would cross a neighbor.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - float64(e.n[i])
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1
			if d < 0 {
				s = -1
			}
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

// parabolic is the P² quadratic interpolation for marker i moving by
// sign s.
func (e *P2) parabolic(i, s int) float64 {
	fs := float64(s)
	ni := float64(e.n[i])
	nm := float64(e.n[i-1])
	np := float64(e.n[i+1])
	return e.q[i] + fs/(np-nm)*((ni-nm+fs)*(e.q[i+1]-e.q[i])/(np-ni)+(np-ni-fs)*(e.q[i]-e.q[i-1])/(ni-nm))
}

// linear is the fallback interpolation toward the neighbor in
// direction s.
func (e *P2) linear(i, s int) float64 {
	return e.q[i] + float64(s)*(e.q[i+s]-e.q[i])/float64(e.n[i+s]-e.n[i])
}

package disk

import (
	"math"
	"testing"

	"extsched/internal/dist"
	"extsched/internal/sim"
)

func TestFCFSOrdering(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, "d0")
	var order []int
	d.Submit(1.0, func() { order = append(order, 1) })
	d.Submit(1.0, func() { order = append(order, 2) })
	d.Submit(1.0, func() { order = append(order, 3) })
	eng.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("completion order %v, want [1 2 3]", order)
	}
	if eng.Now() != 3.0 {
		t.Errorf("drained at %v, want 3.0 (serial service)", eng.Now())
	}
}

func TestDiskSerialService(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, "d0")
	var t1, t2 float64
	d.Submit(0.5, func() { t1 = eng.Now() })
	d.Submit(0.25, func() { t2 = eng.Now() })
	eng.RunAll()
	if math.Abs(t1-0.5) > 1e-12 || math.Abs(t2-0.75) > 1e-12 {
		t.Errorf("completions at (%v, %v), want (0.5, 0.75)", t1, t2)
	}
	if d.Served() != 2 {
		t.Errorf("served = %d, want 2", d.Served())
	}
	if math.Abs(d.BusySeconds()-0.75) > 1e-12 {
		t.Errorf("busy = %v, want 0.75", d.BusySeconds())
	}
}

func TestCancelQueuedRequest(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, "d0")
	fired := false
	var t2 float64
	d.Submit(1.0, func() {})
	r := d.Submit(1.0, func() { fired = true })
	d.Submit(1.0, func() { t2 = eng.Now() })
	d.Cancel(r)
	eng.RunAll()
	if fired {
		t.Error("canceled queued request fired")
	}
	if math.Abs(t2-2.0) > 1e-12 {
		t.Errorf("third request done at %v, want 2.0 (skipped canceled)", t2)
	}
}

func TestCancelInServiceSuppressesCallback(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, "d0")
	fired := false
	r := d.Submit(1.0, func() { fired = true })
	eng.After(0.5, func() { d.Cancel(r) })
	eng.RunAll()
	if fired {
		t.Error("callback of canceled in-service request fired")
	}
	// Device still accounts the service time (the head can't be recalled).
	if math.Abs(d.BusySeconds()-1.0) > 1e-12 {
		t.Errorf("busy = %v, want 1.0", d.BusySeconds())
	}
}

func TestCancelNilNoop(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, "d0")
	d.Cancel(nil)
	_ = eng
}

func TestBusySecondsMidService(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, "d0")
	d.Submit(2.0, func() {})
	var mid float64
	eng.After(1.0, func() { mid = d.BusySeconds() })
	eng.RunAll()
	if math.Abs(mid-1.0) > 1e-12 {
		t.Errorf("busy at t=1 = %v, want 1.0", mid)
	}
}

func TestArrayStriping(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(1, 0)
	a := NewArray(eng, 4, dist.NewDeterministic(0.01), rng)
	if a.Size() != 4 {
		t.Fatalf("size = %d", a.Size())
	}
	done := 0
	const n = 4000
	for i := 0; i < n; i++ {
		a.SubmitIO(func() { done++ })
	}
	eng.RunAll()
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	// Striping should be roughly uniform.
	for _, d := range a.Disks() {
		frac := float64(d.Served()) / n
		if math.Abs(frac-0.25) > 0.03 {
			t.Errorf("disk %s served fraction %v, want ~0.25", d.Name(), frac)
		}
	}
}

func TestArrayParallelism(t *testing.T) {
	// n simultaneous IOs on n disks should finish in ~1 service time,
	// not serially — this is exactly why the paper's min MPL grows with
	// the disk count.
	eng := sim.NewEngine()
	rng := sim.NewRNG(2, 0)
	a := NewArray(eng, 4, dist.NewDeterministic(1.0), rng)
	done := 0
	for i := 0; i < 16; i++ {
		a.SubmitIO(func() { done++ })
	}
	eng.RunAll()
	if done != 16 {
		t.Fatalf("done = %d", done)
	}
	// 16 IOs over 4 disks, deterministic 1s: worst disk gets ≈4.
	// The drain time must be far below the serial 16s.
	if eng.Now() > 9 {
		t.Errorf("drained at %v, want well below serial 16", eng.Now())
	}
}

func TestLogAppend(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(3, 0)
	l := NewLog(eng, dist.NewDeterministic(0.005), rng)
	var doneAt float64
	l.Append(func() { doneAt = eng.Now() })
	eng.RunAll()
	if math.Abs(doneAt-0.005) > 1e-12 {
		t.Errorf("log append done at %v, want 0.005", doneAt)
	}
	if l.Disk().Served() != 1 {
		t.Errorf("served = %d, want 1", l.Disk().Served())
	}
}

func TestInvalidServicePanics(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, "d0")
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("service %v did not panic", bad)
				}
			}()
			d.Submit(bad, func() {})
		}()
	}
}

func TestArrayValidation(t *testing.T) {
	eng := sim.NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("zero-disk array did not panic")
		}
	}()
	NewArray(eng, 0, dist.NewDeterministic(1), sim.NewRNG(1, 0))
}

func TestDiskUtilizationUnderLoad(t *testing.T) {
	// Poisson-ish arrivals at rho=0.5 on a single disk: utilization
	// should approach 0.5.
	eng := sim.NewEngine()
	rng := sim.NewRNG(5, 0)
	d := NewDisk(eng, "d0")
	svc := dist.NewExponential(0.01)
	var arrive func()
	count := 0
	arrive = func() {
		count++
		if count > 50000 {
			return
		}
		d.Submit(svc.Sample(rng), func() {})
		eng.After(rng.ExpFloat64()*0.02, arrive)
	}
	eng.After(0, arrive)
	eng.RunAll()
	util := d.BusySeconds() / eng.Now()
	if math.Abs(util-0.5) > 0.05 {
		t.Errorf("utilization = %v, want ~0.5", util)
	}
}

func TestResubmitFromCallbackStaysSerial(t *testing.T) {
	// Regression: a completion callback that immediately submits a new
	// request to the same disk must not create concurrent service.
	eng := sim.NewEngine()
	d := NewDisk(eng, "d0")
	completions := 0
	mkChain := func() func() {
		remaining := 24 // plus the initial submit = 25 services each
		var chain func()
		chain = func() {
			completions++
			if remaining > 0 {
				remaining--
				d.Submit(1.0, chain)
			}
		}
		return chain
	}
	// Two independent chains competing for the same disk.
	d.Submit(1.0, mkChain())
	d.Submit(1.0, mkChain())
	eng.RunAll()
	if completions != 50 {
		t.Fatalf("completions = %d, want 50", completions)
	}
	// 50 serial 1s services must take exactly 50s; concurrency would
	// finish sooner.
	if math.Abs(eng.Now()-50) > 1e-9 {
		t.Errorf("drained at %v, want 50 (strictly serial)", eng.Now())
	}
	if math.Abs(d.BusySeconds()-50) > 1e-9 {
		t.Errorf("busy = %v, want 50", d.BusySeconds())
	}
}

func TestGroupCommitBatches(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(7, 0)
	l := NewLog(eng, dist.NewDeterministic(0.01), rng)
	l.SetGroupCommit(true)
	done := 0
	// First append starts a flush; nine more arrive during it and must
	// be batched into ONE second flush.
	l.Append(func() { done++ })
	eng.After(0.005, func() {
		for i := 0; i < 9; i++ {
			l.Append(func() { done++ })
		}
	})
	eng.RunAll()
	if done != 10 {
		t.Fatalf("done = %d, want 10", done)
	}
	if l.Flushes() != 2 {
		t.Errorf("flushes = %d, want 2 (1 + batched 9)", l.Flushes())
	}
	if l.MaxGroupSize() != 9 {
		t.Errorf("max group = %d, want 9", l.MaxGroupSize())
	}
	// Two deterministic 10ms flushes: all durable by t=0.02.
	if math.Abs(eng.Now()-0.02) > 1e-12 {
		t.Errorf("drained at %v, want 0.02", eng.Now())
	}
}

func TestGroupCommitOffIsSerial(t *testing.T) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(8, 0)
	l := NewLog(eng, dist.NewDeterministic(0.01), rng)
	for i := 0; i < 5; i++ {
		l.Append(func() {})
	}
	eng.RunAll()
	if l.Flushes() != 5 {
		t.Errorf("flushes = %d, want 5 without group commit", l.Flushes())
	}
	if math.Abs(eng.Now()-0.05) > 1e-12 {
		t.Errorf("drained at %v, want 0.05", eng.Now())
	}
}

func TestGroupCommitThroughputAdvantage(t *testing.T) {
	// Under heavy commit traffic the grouped log sustains a higher
	// append rate than the serial log.
	run := func(group bool) (flushes uint64, drainTime float64) {
		eng := sim.NewEngine()
		l := NewLog(eng, dist.NewDeterministic(0.01), sim.NewRNG(9, 0))
		l.SetGroupCommit(group)
		g := sim.NewRNG(10, 0)
		for i := 0; i < 500; i++ {
			at := g.Float64() * 1.0 // 500 appends over 1 second
			eng.After(at, func() { l.Append(func() {}) })
		}
		eng.RunAll()
		return l.Flushes(), eng.Now()
	}
	gf, gt := run(true)
	sf, st := run(false)
	if gf >= sf {
		t.Errorf("grouped flushes (%d) should be far below serial (%d)", gf, sf)
	}
	if gt >= st {
		t.Errorf("grouped drain (%v) should beat serial (%v)", gt, st)
	}
}

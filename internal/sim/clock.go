package sim

import "time"

// Clock abstracts time for components that must run both under the
// deterministic virtual-time engine and against real time: the
// external-scheduling frontend, the feedback controller, and anything
// else that only needs "what time is it" and "call me later". Simulated
// and wall implementations both measure time in float64 seconds since
// an arbitrary epoch.
type Clock interface {
	// Now returns the current time in seconds since the clock's epoch.
	Now() float64
	// After schedules fn to run once, d seconds from now, and returns a
	// Timer that can withdraw it. Non-positive d fires as soon as
	// possible. Whether fn runs on the caller's goroutine (virtual
	// time) or its own (wall time) is implementation-defined, so fn
	// must be safe for either.
	After(d float64, fn func()) Timer
}

// Timer is a pending Clock callback.
type Timer interface {
	// Cancel stops the callback if it has not fired yet. It is safe to
	// call repeatedly, from any goroutine, and after the timer fired.
	Cancel()
}

// Clock returns the engine's virtual-time view of the Clock interface.
// Callbacks run on the engine's event loop, like any other event.
func (e *Engine) Clock() Clock { return engineClock{e} }

type engineClock struct{ e *Engine }

func (c engineClock) Now() float64 { return c.e.Now() }

func (c engineClock) After(d float64, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return engineTimer{e: c.e, h: c.e.After(d, fn)}
}

type engineTimer struct {
	e *Engine
	h Handle
}

func (t engineTimer) Cancel() { t.e.Cancel(t.h) }

// WallClock is the live-traffic Clock: Now is the seconds elapsed
// since NewWallClock on the runtime's monotonic source (immune to
// system-time steps), and After fires on real timers. It is safe for
// concurrent use by any number of goroutines.
type WallClock struct {
	epoch time.Time
}

// NewWallClock returns a wall clock whose epoch is now.
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} }

func (c *WallClock) Now() float64 { return time.Since(c.epoch).Seconds() }

func (c *WallClock) After(d float64, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return wallTimer{t: time.AfterFunc(time.Duration(d*float64(time.Second)), fn)}
}

type wallTimer struct{ t *time.Timer }

func (t wallTimer) Cancel() { t.t.Stop() }

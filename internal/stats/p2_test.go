package stats

import (
	"math"
	"testing"

	"extsched/internal/sim"
)

// TestP2TracksKnownQuantiles: the estimator must land within a few
// percent (relative) of the exact sample quantile on smooth heavy- and
// light-tailed streams — the accuracy class the original Jain–Chlamtac
// paper reports.
func TestP2TracksKnownQuantiles(t *testing.T) {
	dists := []struct {
		name string
		draw func(rng *sim.RNG) float64
	}{
		{"uniform", func(rng *sim.RNG) float64 { return rng.Float64() }},
		{"exponential", func(rng *sim.RNG) float64 { return rng.ExpFloat64() }},
		{"lognormal", func(rng *sim.RNG) float64 { return math.Exp(rng.NormFloat64()) }},
	}
	for _, dist := range dists {
		for _, q := range []float64{0.5, 0.95, 0.99} {
			rng := sim.NewRNG(7, 99)
			est := NewP2(q)
			all := make([]float64, 0, 50000)
			for i := 0; i < 50000; i++ {
				x := dist.draw(rng)
				est.Add(x)
				all = append(all, x)
			}
			exact := Percentile(all, q*100)
			got := est.Quantile()
			relErr := math.Abs(got-exact) / exact
			if relErr > 0.05 {
				t.Errorf("%s q=%v: P2 %.4f vs exact %.4f (rel err %.3f)", dist.name, q, got, exact, relErr)
			}
		}
	}
}

// TestP2SmallStreams: fewer than five observations are exact, and the
// empty estimator reports zero.
func TestP2SmallStreams(t *testing.T) {
	est := NewP2(0.95)
	if est.Quantile() != 0 || est.Count() != 0 {
		t.Fatalf("empty estimator: q=%v n=%d", est.Quantile(), est.Count())
	}
	est.Add(3)
	if est.Quantile() != 3 {
		t.Errorf("one sample: %v, want 3", est.Quantile())
	}
	est.Add(1)
	est.Add(2)
	// Exact p95 of {1,2,3} by linear interpolation.
	want := Percentile([]float64{1, 2, 3}, 95)
	if got := est.Quantile(); got != want {
		t.Errorf("three samples: %v, want %v", got, want)
	}
}

// TestP2Deterministic: equal streams give equal estimates, and Reset
// restores the initial state.
func TestP2Deterministic(t *testing.T) {
	feed := func(e *P2) {
		rng := sim.NewRNG(11, 3)
		for i := 0; i < 10000; i++ {
			e.Add(rng.ExpFloat64())
		}
	}
	a, b := NewP2(0.95), NewP2(0.95)
	feed(a)
	feed(b)
	if a.Quantile() != b.Quantile() {
		t.Fatalf("same stream diverged: %v vs %v", a.Quantile(), b.Quantile())
	}
	a.Reset()
	if a.Quantile() != 0 || a.Count() != 0 {
		t.Fatalf("reset left state: q=%v n=%d", a.Quantile(), a.Count())
	}
	feed(a)
	if a.Quantile() != b.Quantile() {
		t.Fatalf("post-reset stream diverged: %v vs %v", a.Quantile(), b.Quantile())
	}
}

// TestP2RejectsBadQuantile: out-of-range targets panic loudly at
// construction, not quietly at query time.
func TestP2RejectsBadQuantile(t *testing.T) {
	for _, q := range []float64{-0.1, 0, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2(%v) did not panic", q)
				}
			}()
			NewP2(q)
		}()
	}
}

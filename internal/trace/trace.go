// Package trace synthesizes and replays transaction service-demand
// traces. The paper compares the benchmarks' variability against
// traces from a top-10 online retailer and a top-10 auction site,
// finding C² ≈ 2 for both — between TPC-C (C² ≈ 1–1.5) and TPC-W
// (C² ≈ 15). Those traces are proprietary, so this package generates
// synthetic equivalents: lognormal service demands (the canonical
// shape for web-transaction service times) fit to a target mean and
// C², with Poisson or burst-modulated arrival timestamps. Replay
// converts a trace back into transaction profiles.
package trace

import (
	"fmt"
	"math"
	"sort"

	"extsched/internal/dbms"
	"extsched/internal/dist"
	"extsched/internal/sim"
	"extsched/internal/stats"
)

// Record is one traced transaction.
type Record struct {
	Arrival float64 // seconds since trace start
	Demand  float64 // total service demand in seconds
}

// Trace is an ordered set of records.
type Trace struct {
	Records []Record
	Source  string // provenance label, e.g. "synthetic-retailer"
}

// Len returns the record count.
func (t *Trace) Len() int { return len(t.Records) }

// DemandC2 returns the squared coefficient of variation of demands.
func (t *Trace) DemandC2() float64 {
	var a stats.Accumulator
	for _, r := range t.Records {
		a.Add(r.Demand)
	}
	return a.C2()
}

// MeanDemand returns the mean service demand.
func (t *Trace) MeanDemand() float64 {
	var a stats.Accumulator
	for _, r := range t.Records {
		a.Add(r.Demand)
	}
	return a.Mean()
}

// Validate checks ordering and positivity.
func (t *Trace) Validate() error {
	prev := math.Inf(-1)
	for i, r := range t.Records {
		if r.Arrival < prev {
			return fmt.Errorf("trace: record %d arrival %v out of order", i, r.Arrival)
		}
		if r.Demand <= 0 || math.IsNaN(r.Demand) {
			return fmt.Errorf("trace: record %d invalid demand %v", i, r.Demand)
		}
		prev = r.Arrival
	}
	return nil
}

// SynthConfig parameterizes trace synthesis.
type SynthConfig struct {
	// N is the number of records.
	N int
	// MeanDemand is the target mean service demand (seconds).
	MeanDemand float64
	// DemandC2 is the target C²; the retailer/auction traces show ≈ 2.
	DemandC2 float64
	// Lambda is the mean arrival rate (records/second).
	Lambda float64
	// Burstiness, if > 1, modulates arrivals with alternating high/low
	// rate periods (an on/off modulated Poisson process), mimicking the
	// diurnal/flash-crowd structure of production traffic. 1 = plain
	// Poisson.
	Burstiness float64
	// Source labels the trace.
	Source string
	Seed   uint64
}

// Validate checks the synthesis parameters without generating any
// records — scenario validation uses it to vet large trace_synth
// phases cheaply.
func (cfg SynthConfig) Validate() error {
	if cfg.N <= 0 || cfg.MeanDemand <= 0 || cfg.Lambda <= 0 {
		return fmt.Errorf("trace: invalid synthesis config %+v", cfg)
	}
	if cfg.DemandC2 <= 0 {
		return fmt.Errorf("trace: DemandC2 %v must be positive", cfg.DemandC2)
	}
	if cfg.Burstiness != 0 && cfg.Burstiness < 1 {
		return fmt.Errorf("trace: Burstiness %v must be >= 1", cfg.Burstiness)
	}
	return nil
}

// Synthesize generates a trace.
func Synthesize(cfg SynthConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Burstiness == 0 {
		cfg.Burstiness = 1
	}
	if cfg.Source == "" {
		cfg.Source = "synthetic"
	}
	g := sim.NewRNG(cfg.Seed, 21)
	demand := dist.NewLognormal(cfg.MeanDemand, cfg.DemandC2)
	tr := &Trace{Source: cfg.Source, Records: make([]Record, 0, cfg.N)}
	now := 0.0
	// On/off rate modulation: alternate periods of rate λ·b and λ/b,
	// each lasting ~100 mean interarrivals, keeping the long-run rate
	// close to λ.
	period := 100 / cfg.Lambda
	for i := 0; i < cfg.N; i++ {
		rate := cfg.Lambda
		if cfg.Burstiness > 1 {
			phase := int(now/period) % 2
			if phase == 0 {
				rate = cfg.Lambda * cfg.Burstiness
			} else {
				rate = cfg.Lambda / cfg.Burstiness
			}
		}
		now += g.ExpFloat64() / rate
		tr.Records = append(tr.Records, Record{Arrival: now, Demand: demand.Sample(g)})
	}
	return tr, nil
}

// SyntheticRetailer returns a trace shaped like the paper's top-10
// online retailer: C² ≈ 2.
func SyntheticRetailer(n int, seed uint64) *Trace {
	t, err := Synthesize(SynthConfig{
		N: n, MeanDemand: 0.05, DemandC2: 2.0, Lambda: 50,
		Burstiness: 2, Source: "synthetic-retailer", Seed: seed,
	})
	if err != nil {
		panic(err) // static config cannot fail
	}
	return t
}

// SyntheticAuction returns a trace shaped like the paper's top-10
// auction site: C² ≈ 2, smaller transactions at higher rate.
func SyntheticAuction(n int, seed uint64) *Trace {
	t, err := Synthesize(SynthConfig{
		N: n, MeanDemand: 0.02, DemandC2: 2.2, Lambda: 120,
		Burstiness: 3, Source: "synthetic-auction", Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return t
}

// Percentiles returns selected demand percentiles for reporting.
func (t *Trace) Percentiles(ps ...float64) []float64 {
	demands := make([]float64, len(t.Records))
	for i, r := range t.Records {
		demands[i] = r.Demand
	}
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = stats.Percentile(demands, p)
	}
	return out
}

// ToProfiles converts the trace's demands into CPU-bound transaction
// profiles for replay through the simulator (one op per record, demand
// as CPU work). Lock keys are unique, so replay measures pure
// queueing/scheduling behaviour.
func (t *Trace) ToProfiles() []dbms.TxnProfile {
	out := make([]dbms.TxnProfile, len(t.Records))
	for i, r := range t.Records {
		out[i] = dbms.TxnProfile{
			Ops:             []dbms.Op{{Key: 1<<40 + uint64(i), CPUWork: r.Demand}},
			EstimatedDemand: r.Demand,
		}
	}
	return out
}

// Resample returns a bootstrap resample of the trace's demands with
// fresh Poisson arrivals at the original mean rate — useful for
// sensitivity runs on real traces without reusing identical ordering.
func (t *Trace) Resample(seed uint64) *Trace {
	if len(t.Records) == 0 {
		return &Trace{Source: t.Source + "-resample"}
	}
	g := sim.NewRNG(seed, 23)
	span := t.Records[len(t.Records)-1].Arrival
	rate := float64(len(t.Records)) / math.Max(span, 1e-12)
	out := &Trace{Source: t.Source + "-resample", Records: make([]Record, len(t.Records))}
	now := 0.0
	for i := range out.Records {
		now += g.ExpFloat64() / rate
		out.Records[i] = Record{
			Arrival: now,
			Demand:  t.Records[g.IntN(len(t.Records))].Demand,
		}
	}
	return out
}

// SortByArrival restores arrival order after any external manipulation.
func (t *Trace) SortByArrival() {
	sort.Slice(t.Records, func(i, j int) bool {
		return t.Records[i].Arrival < t.Records[j].Arrival
	})
}

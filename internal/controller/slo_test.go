package controller

import (
	"testing"

	"extsched/internal/core"
	"extsched/internal/sim"
)

// fakeClassGate is a scriptable ClassGate: the test sets the measured
// percentile and completion counts per window and watches the
// partition the loop applies.
type fakeClassGate struct {
	mpl        int
	limits     map[core.Class]int
	percentile float64
	m          core.Metrics
	resets     int
}

func (g *fakeClassGate) MPL() int      { return g.mpl }
func (g *fakeClassGate) SetMPL(n int)  { g.mpl = n }
func (g *fakeClassGate) QueueLen() int { return 1 }
func (g *fakeClassGate) Inside() int   { return g.mpl }
func (g *fakeClassGate) Metrics() core.Metrics {
	return g.m
}
func (g *fakeClassGate) ResetMetrics() { g.resets++ }
func (g *fakeClassGate) SetClassLimits(l map[core.Class]int) {
	g.limits = l
}
func (g *fakeClassGate) ClassLimits() map[core.Class]int { return g.limits }
func (g *fakeClassGate) ClassResponseTimePercentile(c core.Class, p float64) float64 {
	return g.percentile
}

// window primes the fake gate with a closed-window's worth of
// completions (60 total, 12 high) at the given measured percentile.
func (g *fakeClassGate) window(p float64) {
	g.percentile = p
	g.m = core.Metrics{Completed: 60}
	for i := 0; i < 12; i++ {
		g.m.High.Add(p)
	}
	for i := 0; i < 48; i++ {
		g.m.Low.Add(p)
	}
}

// checkPartition asserts the SLO invariant the property tests pin: the
// class limits always sum to the gate's MPL with each side >= 1.
func checkPartition(t *testing.T, g *fakeClassGate) {
	t.Helper()
	h, l := g.limits[core.ClassHigh], g.limits[core.ClassLow]
	if h+l != g.mpl {
		t.Fatalf("partition %d+%d != MPL %d", h, l, g.mpl)
	}
	if h < 1 || l < 1 {
		t.Fatalf("partition %d/%d has a class below 1", h, l)
	}
}

func TestSLOControllerSteersPartition(t *testing.T) {
	g := &fakeClassGate{mpl: 10}
	c, err := NewSLO(sim.NewWallClock(), g, SLOConfig{
		Target:       SLOTarget{Class: core.ClassHigh, Target: 1.0},
		GiveBackHold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g)
	if g.limits[core.ClassHigh] != 5 {
		t.Fatalf("initial high share %d, want even split 5", g.limits[core.ClassHigh])
	}

	// Violated windows pull slots toward the SLO class, one per window.
	for i := 1; i <= 3; i++ {
		g.window(2.0)
		c.Observe()
		checkPartition(t, g)
		if got := g.limits[core.ClassHigh]; got != 5+i {
			t.Fatalf("after %d violated windows: high share %d, want %d", i, got, 5+i)
		}
	}
	// The share cannot push the other class below its floor.
	for i := 0; i < 20; i++ {
		g.window(2.0)
		c.Observe()
		checkPartition(t, g)
	}
	if g.limits[core.ClassLow] != 1 {
		t.Fatalf("low floor violated: %d", g.limits[core.ClassLow])
	}

	// Give-back is paced: it takes GiveBackHold consecutive calm
	// windows per returned slot.
	high := g.limits[core.ClassHigh]
	g.window(0.1)
	c.Observe()
	checkPartition(t, g)
	if g.limits[core.ClassHigh] != high {
		t.Fatal("gave back after a single calm window")
	}
	g.window(0.1)
	c.Observe()
	checkPartition(t, g)
	if g.limits[core.ClassHigh] != high-1 {
		t.Fatalf("high share %d after %d calm windows, want %d", g.limits[core.ClassHigh], 2, high-1)
	}

	// In-band windows (between margin and target) hold AND reset the
	// give-back count.
	g.window(0.8)
	c.Observe()
	g.window(0.1)
	c.Observe()
	checkPartition(t, g)
	if g.limits[core.ClassHigh] != high-1 {
		t.Fatal("give-back pacing not reset by an in-band window")
	}

	// An MPL change re-spreads at the next reaction, invariant intact.
	g.SetMPL(6)
	g.window(0.8)
	c.Observe()
	checkPartition(t, g)

	if c.Iterations() == 0 || len(c.History()) != c.Iterations() {
		t.Fatalf("history bookkeeping broken: %d vs %d", c.Iterations(), len(c.History()))
	}
}

// TestSLOControllerWindowGates: windows without enough traffic —
// overall or from the SLO class — must not trigger a reaction.
func TestSLOControllerWindowGates(t *testing.T) {
	g := &fakeClassGate{mpl: 8}
	c, err := NewSLO(sim.NewWallClock(), g, SLOConfig{
		Target: SLOTarget{Class: core.ClassHigh, Target: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Too few completions overall.
	g.percentile = 5
	g.m = core.Metrics{Completed: 10}
	c.Observe()
	if c.Iterations() != 0 {
		t.Fatal("reacted on an under-observed window")
	}
	// Enough overall, none from the SLO class.
	g.m = core.Metrics{Completed: 100}
	c.Observe()
	if c.Iterations() != 0 {
		t.Fatal("reacted with zero SLO-class completions")
	}
}

func TestSLOControllerValidation(t *testing.T) {
	g := &fakeClassGate{mpl: 8}
	cases := []SLOConfig{
		{Target: SLOTarget{Class: core.ClassHigh}},                             // no target
		{Target: SLOTarget{Class: core.ClassHigh, Target: 1, Percentile: 100}}, // bad percentile
		{Target: SLOTarget{Class: core.ClassHigh, Target: 1}, Margin: 1.5},     // bad margin
	}
	for i, cfg := range cases {
		if _, err := NewSLO(sim.NewWallClock(), g, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	// An unset (or equal) OtherClass defaults to the complement: a
	// low-class SLO partitions against high.
	if _, err := NewSLO(sim.NewWallClock(), &fakeClassGate{mpl: 8}, SLOConfig{
		Target: SLOTarget{Class: core.ClassLow, Target: 1},
	}); err != nil {
		t.Errorf("complement defaulting broken: %v", err)
	}
	// MPL too small to partition.
	if _, err := NewSLO(sim.NewWallClock(), &fakeClassGate{mpl: 1}, SLOConfig{
		Target: SLOTarget{Class: core.ClassHigh, Target: 1},
	}); err == nil {
		t.Error("MPL 1 accepted for a two-sided partition")
	}
}

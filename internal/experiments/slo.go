package experiments

import (
	"fmt"

	"extsched/internal/core"
	"extsched/internal/runner"
	"extsched/internal/workload"
)

// sloOutcome is one scenario run's slice of the SLO comparison.
type sloOutcome struct {
	highP95 float64
	lowTput float64
	shed    uint64
	out     runner.Outcome
}

// SLOFigure is the SLO-driven-admission comparison: under a flash-
// crowd burst that transiently overloads the system, sweep fixed MPLs
// (plain FIFO gate — what the paper's converged controller would hold)
// and pit them against the per-class SLO controller (class-partitioned
// MPL steered to the high class's p95 target, plus a low-class
// admission deadline shedding work that could no longer start in
// time).
//
// The point the figure makes: a single global MPL has no knob that
// protects the high class's tail during overload — every fixed MPL
// shares one queue, so the burst's backlog lands on both classes —
// while the SLO controller holds the high-class p95 at the target and
// gives every slot the SLO does not need to low-class throughput,
// shedding only the low-class work that had already missed its
// deadline. targetP95 <= 0 picks a default of 3/4 of the closed-system
// baseline mean response time — far below the shared-queue overload
// tail, comfortably above the partitioned one.
func SLOFigure(setupID int, targetP95 float64, opts RunOpts) (*Figure, error) {
	setup, err := workload.SetupByID(setupID)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults(setup)
	if opts.PercentileSamples <= 0 {
		opts.PercentileSamples = 4000
	}
	// Reference capacity and baseline response time from a no-MPL
	// closed probe (the same probe every controller figure uses).
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, opts)
	if err != nil {
		return nil, err
	}
	ref := base.Throughput()
	if ref <= 0 {
		return nil, fmt.Errorf("experiments: degenerate baseline throughput")
	}
	if targetP95 <= 0 {
		targetP95 = 0.75 * base.MeanRT()
	}
	seg := opts.Measure
	spec := func(extra []runner.Event) runner.Spec {
		return runner.Spec{
			Warmup: opts.Warmup,
			Phases: []runner.Phase{
				{
					Name: "steady", Kind: runner.KindOpen,
					Lambda: 0.7 * ref, Duration: seg,
					Events: extra,
				},
				{
					Name: "burst", Kind: runner.KindBurst,
					Lambda: 1.1 * ref, BurstFactor: 3, BurstPeriod: seg / 8,
					Duration: seg,
				},
				{
					Name: "recover", Kind: runner.KindOpen,
					Lambda: 0.6 * ref, Duration: seg,
				},
			},
		}
	}
	runOne := func(mpl int, events []runner.Event) (sloOutcome, error) {
		out, err := RunPhases(setup, mpl, nil, workload.DBOptions{}, opts, spec(events))
		if err != nil {
			return sloOutcome{}, err
		}
		var o sloOutcome
		o.out = out
		o.highP95 = out.Total.HighP95
		if w := out.Total.Window; w > 0 {
			o.lowTput = float64(out.Total.Low.Count()) / w
		}
		o.shed = out.Total.Shed
		return o, nil
	}

	mpls := []int{2, 4, 8, 12, 16, 24, 32, 48}
	sloMPL := 16 // the partitioned total the SLO controller steers

	// The SLO run and every fixed-MPL point are independent
	// simulations: fan them out on the sweep pool. Index 0 is the
	// controller, 1..len(mpls) the fixed sweep.
	results, err := SweepContext(opts.ctx(), len(mpls)+1, func(i int) (sloOutcome, error) {
		if i == 0 {
			return runOne(sloMPL, []runner.Event{{
				At: 0,
				SetSLO: &runner.SLOSpec{
					Class:  core.ClassHigh,
					Target: targetP95,
				},
				SetAdmitDeadline: &runner.AdmitDeadline{Low: 3 * targetP95},
			}})
		}
		return runOne(mpls[i-1], nil)
	})
	if err != nil {
		return nil, err
	}
	slo, fixed := results[0], results[1:]

	f := &Figure{
		ID: "slo",
		Title: fmt.Sprintf("SLO-driven admission: high-class p95 target %.3gs under a burst, setup %d (fixed MPL sweep vs SLO controller)",
			targetP95, setupID),
	}
	fp95 := Series{Name: "fixed highP95 (s)"}
	ftput := Series{Name: "fixed low tput (tx/s)"}
	cp95 := Series{Name: "slo highP95 (s)"}
	ctput := Series{Name: "slo low tput (tx/s)"}
	bestFixed := -1
	for i, m := range mpls {
		x := float64(m)
		fp95.X = append(fp95.X, x)
		fp95.Y = append(fp95.Y, fixed[i].highP95)
		ftput.X = append(ftput.X, x)
		ftput.Y = append(ftput.Y, fixed[i].lowTput)
		cp95.X = append(cp95.X, x)
		cp95.Y = append(cp95.Y, slo.highP95)
		ctput.X = append(ctput.X, x)
		ctput.Y = append(ctput.Y, slo.lowTput)
		// A fixed MPL "competes" only if it meets the target without
		// sacrificing >= 20% of the controller's low-class throughput.
		if fixed[i].highP95 <= targetP95 && fixed[i].lowTput >= 0.8*slo.lowTput {
			if bestFixed < 0 {
				bestFixed = m
			}
		}
	}
	f.Series = []Series{fp95, ftput, cp95, ctput}
	f.Notes = append(f.Notes,
		fmt.Sprintf("no-MPL reference: %.2f tx/s; burst phase offers 1.1x mean with 3x on-state surges", ref),
		fmt.Sprintf("SLO controller (total MPL %d): high p95 %.3gs vs target %.3gs (met: %v), low tput %.2f tx/s, shed %d low-class txns",
			sloMPL, slo.highP95, targetP95, slo.highP95 <= targetP95, slo.lowTput, slo.shed))
	if rep := slo.out.SLO; rep != nil {
		f.Notes = append(f.Notes, fmt.Sprintf("final partition: high %d + low %d slots after %d reactions (last window p95 %.3gs)",
			rep.SLOLimit, rep.OtherLimit, rep.Iterations, rep.LastMeasured))
	}
	if bestFixed < 0 {
		f.Notes = append(f.Notes,
			"no fixed MPL in the sweep meets the high-class p95 target without >= 20% low-class throughput loss vs the controller")
	} else {
		f.Notes = append(f.Notes,
			fmt.Sprintf("CAUTION: fixed MPL %d also meets the target with competitive low-class throughput", bestFixed))
	}
	return f, nil
}

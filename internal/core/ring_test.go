package core

import "testing"

// TestRingWrapAround pushes and pops across several growth and wrap
// cycles, checking FIFO order and that popped slots are cleared.
func TestRingWrapAround(t *testing.T) {
	var r ring
	mk := func(seq uint64) *Item { return &Item{seq: seq} }
	next := uint64(0)
	expect := uint64(0)
	// Interleave bursts of pushes and pops so head wraps repeatedly.
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			r.push(mk(next))
			next++
		}
		for i := 0; i < 5; i++ {
			got := r.pop()
			if got == nil || got.seq != expect {
				t.Fatalf("round %d: pop = %v, want seq %d", round, got, expect)
			}
			expect++
		}
	}
	for r.len() > 0 {
		got := r.pop()
		if got == nil || got.seq != expect {
			t.Fatalf("drain: pop seq = %v, want %d", got, expect)
		}
		expect++
	}
	if r.pop() != nil {
		t.Error("pop on empty ring != nil")
	}
	if expect != next {
		t.Errorf("drained %d items, pushed %d", expect, next)
	}
	// All live slots must be nil after draining (no retained references).
	for i, tx := range r.buf {
		if tx != nil {
			t.Errorf("buf[%d] retains a transaction after drain", i)
		}
	}
}

// TestFIFOPolicyRing checks the policy API over the ring backend.
func TestFIFOPolicyRing(t *testing.T) {
	p := NewFIFO()
	if p.Pop() != nil {
		t.Error("Pop on empty FIFO != nil")
	}
	for i := uint64(0); i < 100; i++ {
		p.Push(&Item{seq: i})
	}
	if p.Len() != 100 {
		t.Fatalf("Len = %d, want 100", p.Len())
	}
	for i := uint64(0); i < 100; i++ {
		got := p.Pop()
		if got == nil || got.seq != i {
			t.Fatalf("Pop = %v, want seq %d", got, i)
		}
	}
}

package gate

import (
	"fmt"

	"extsched/internal/controller"
)

// TuneConfig parameterizes the feedback controller (the paper's
// Section 4.3 loop) for a live gate.
type TuneConfig struct {
	// MaxThroughputLoss is the acceptable fractional throughput loss
	// versus the reference (e.g. 0.05 = keep 95%). Required, in [0,1).
	MaxThroughputLoss float64
	// ReferenceThroughput is the no-limit optimum in completions per
	// second — measure it by running the gate unlimited (Limit 0) under
	// representative load and reading Stats().Throughput, or supply a
	// capacity-model estimate. Required.
	ReferenceThroughput float64
	// MaxRTIncrease and ReferenceRT enable the optional response-time
	// criterion: mean response must stay within (1+MaxRTIncrease) ×
	// ReferenceRT. Zero values disable it.
	MaxRTIncrease float64
	ReferenceRT   float64
	// MinObservations gates window close; default 100 completions (the
	// paper's choice). Lower it for quick-converging demos and tests.
	MinObservations int
	// MaxWindow caps a window's completions; default 50×MinObservations.
	MaxWindow int
	// MinLimit / MaxLimit clamp the search range; defaults 1 and 200.
	MinLimit, MaxLimit int
	// HoldWindows is the number of consecutive no-change reactions
	// after which the controller declares convergence; default 2.
	HoldWindows int
}

// TuneStatus reports the controller's progress.
type TuneStatus struct {
	// Enabled is false until EnableAutoTune succeeds.
	Enabled bool
	// Converged reports whether the loop has settled at the lowest
	// feasible limit; Iterations counts completed reactions.
	Converged  bool
	Iterations int
	// Limit is the current (possibly still-moving) MPL.
	Limit int
}

// tuner pairs the controller with its wiring state.
type tuner struct {
	ctl *controller.Controller
}

// EnableAutoTune attaches the feedback controller to the gate's
// completion stream: from now on every Release feeds an observation
// window, and each closed window nudges the limit — up when the
// throughput (or response-time) target is violated, down when both
// are met with margin — converging on the lowest feasible limit. The
// gate's limit must be >= 1 (the controller needs a finite starting
// point; use JumpStart-style estimates or a modest guess — the
// adaptive step recovers from misjudged starts). Enabling twice
// replaces the previous controller and restarts the metrics window.
func (g *Gate) EnableAutoTune(tc TuneConfig) error {
	if g.fe.MPL() < 1 {
		return fmt.Errorf("gate: auto-tune needs a finite starting limit (have %d); set Config.Limit or SetLimit first", g.fe.MPL())
	}
	ctl, err := controller.New(g.clock, g.fe, controller.Config{
		Targets: controller.Targets{
			MaxThroughputLoss: tc.MaxThroughputLoss,
			MaxRTIncrease:     tc.MaxRTIncrease,
		},
		Reference: controller.Reference{
			MaxThroughput: tc.ReferenceThroughput,
			OptimalRT:     tc.ReferenceRT,
		},
		MinObservations: tc.MinObservations,
		MaxWindow:       tc.MaxWindow,
		MinMPL:          tc.MinLimit,
		MaxMPL:          tc.MaxLimit,
		HoldWindows:     tc.HoldWindows,
	})
	if err != nil {
		return err
	}
	g.ctl.Store(&tuner{ctl: ctl})
	return nil
}

// DisableAutoTune detaches the controller; the limit stays where the
// loop left it.
func (g *Gate) DisableAutoTune() { g.ctl.Store(nil) }

// TuneStatus reports the controller's progress (zero value when
// auto-tuning was never enabled).
func (g *Gate) TuneStatus() TuneStatus {
	t := g.ctl.Load()
	if t == nil {
		return TuneStatus{Limit: g.fe.MPL()}
	}
	return TuneStatus{
		Enabled:    true,
		Converged:  t.ctl.Converged(),
		Iterations: t.ctl.Iterations(),
		Limit:      g.fe.MPL(),
	}
}

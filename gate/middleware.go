package gate

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
)

// Middleware wraps next so every request passes through the gate: at
// most Limit requests run concurrently, the rest queue per the gate's
// policy. Requests rejected by admission control (ErrQueueFull) get
// 503 Service Unavailable with a Retry-After header; requests whose
// context dies while queued are abandoned without a response (the
// client is gone). Responses with 5xx status are counted in
// Stats.Errors.
func Middleware(g *Gate, next http.Handler) http.Handler {
	return MiddlewareClassify(g, nil, next)
}

// MiddlewareClassify is Middleware with per-request queue attributes:
// classify maps each request to its priority class and size hint (for
// the priority, SJF and WFQ policies). A nil classify treats every
// request as ClassLow with unknown size.
func MiddlewareClassify(g *Gate, classify func(*http.Request) Request, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if classify != nil {
			req = classify(r)
		}
		tk, err := g.AcquireRequest(r.Context(), req)
		if err != nil {
			if err == ErrQueueFull {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "server overloaded", http.StatusServiceUnavailable)
			}
			// Context errors: the client canceled or timed out while
			// queued; any response would go nowhere.
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				tk.Release(Result{Err: fmt.Errorf("gate: handler panicked: %v", p)})
				panic(p)
			}
			var res Result
			if sw.status >= 500 {
				res.Err = fmt.Errorf("gate: handler returned status %d", sw.status)
			}
			tk.Release(res)
		}()
		next.ServeHTTP(sw, r)
	})
}

// statusWriter records the response status for error accounting. It
// forwards the optional ResponseWriter interfaces (Flusher, Hijacker,
// Unwrap for http.ResponseController) so streaming and websocket
// handlers keep working behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap lets http.NewResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if h, ok := w.ResponseWriter.(http.Hijacker); ok {
		return h.Hijack()
	}
	return nil, nil, fmt.Errorf("gate: underlying ResponseWriter does not implement http.Hijacker")
}

package mva

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSingleStationMachineRepair(t *testing.T) {
	// One queueing station, demand D: X(n) = n/(D·(1+Q(n-1))) and in the
	// limit X → 1/D. For n=1, X = 1/D exactly (no queueing).
	nw, err := NewNetwork([]Station{{Name: "cpu", Demand: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if x := nw.Throughput(1); math.Abs(x-2) > 1e-12 {
		t.Errorf("X(1) = %v, want 2", x)
	}
	// With a single station all customers queue there: X(n) = 1/D for
	// all n >= 1 (each completes every D seconds back-to-back).
	if x := nw.Throughput(10); math.Abs(x-2) > 1e-12 {
		t.Errorf("X(10) = %v, want 2", x)
	}
}

func TestTwoStationKnownValues(t *testing.T) {
	// Classic two-station example: D1 = 1, D2 = 2.
	// n=1: R=3, X=1/3, Q1=1/3, Q2=2/3.
	// n=2: R1=1·(1+1/3)=4/3, R2=2·(1+2/3)=10/3, R=14/3, X=2/(14/3)=3/7.
	nw, err := NewNetwork([]Station{{Demand: 1}, {Demand: 2}})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.Solve(2)
	if math.Abs(res[0].Throughput-1.0/3.0) > 1e-12 {
		t.Errorf("X(1) = %v, want 1/3", res[0].Throughput)
	}
	if math.Abs(res[1].Throughput-3.0/7.0) > 1e-12 {
		t.Errorf("X(2) = %v, want 3/7", res[1].Throughput)
	}
	if math.Abs(res[1].ResponseTime-14.0/3.0) > 1e-12 {
		t.Errorf("R(2) = %v, want 14/3", res[1].ResponseTime)
	}
}

func TestDelayStation(t *testing.T) {
	// Delay station contributes fixed Z to response time; with one
	// queueing station D and think Z: X(n) = n/(Z + D(1+Q)).
	nw, err := NewNetwork([]Station{
		{Name: "think", Demand: 10, Kind: Delay},
		{Name: "cpu", Demand: 1, Kind: Queueing},
	})
	if err != nil {
		t.Fatal(err)
	}
	// n=1: X = 1/11.
	if x := nw.Throughput(1); math.Abs(x-1.0/11.0) > 1e-12 {
		t.Errorf("X(1) = %v, want 1/11", x)
	}
	// Asymptotically X → 1/D = 1.
	if x := nw.Throughput(200); x > 1.0001 || x < 0.95 {
		t.Errorf("X(200) = %v, want ≈1", x)
	}
}

func TestThroughputMonotoneAndBounded(t *testing.T) {
	f := func(d1, d2, d3 uint16, pop uint8) bool {
		ds := []float64{
			0.001 + float64(d1%1000)/100,
			0.001 + float64(d2%1000)/100,
			0.001 + float64(d3%1000)/100,
		}
		nw, err := NewNetwork([]Station{{Demand: ds[0]}, {Demand: ds[1]}, {Demand: ds[2]}})
		if err != nil {
			return false
		}
		n := 1 + int(pop%40)
		res := nw.Solve(n)
		sumD := ds[0] + ds[1] + ds[2]
		maxD := math.Max(ds[0], math.Max(ds[1], ds[2]))
		prev := 0.0
		for _, r := range res {
			// Monotone nondecreasing.
			if r.Throughput < prev-1e-12 {
				return false
			}
			prev = r.Throughput
			// Bounded by min(n/sumD, 1/maxD) — asymptotic bounds.
			bound := math.Min(float64(r.Population)/sumD, 1/maxD)
			if r.Throughput > bound+1e-9 {
				return false
			}
			// Little's law inside the network: ΣQ = X·R = n.
			sumQ := 0.0
			for _, q := range r.QueueLen {
				sumQ += q
			}
			if math.Abs(sumQ-float64(r.Population)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationBounded(t *testing.T) {
	nw, _ := NewNetwork([]Station{{Demand: 0.3}, {Demand: 0.7}})
	res := nw.Solve(50)
	for _, r := range res {
		for i, u := range r.Utilization {
			if u > 1+1e-9 || u < 0 {
				t.Fatalf("utilization[%d] = %v at n=%d", i, u, r.Population)
			}
		}
	}
	// Bottleneck utilization approaches 1.
	last := res[len(res)-1]
	if last.Utilization[1] < 0.99 {
		t.Errorf("bottleneck utilization = %v at n=50, want ≈1", last.Utilization[1])
	}
}

func TestBalancedNetworkShape(t *testing.T) {
	nw, err := Balanced(2, 4, 0.1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Stations) != 6 {
		t.Fatalf("stations = %d, want 6", len(nw.Stations))
	}
	for _, s := range nw.Stations[:2] {
		if math.Abs(s.Demand-0.05) > 1e-12 {
			t.Errorf("cpu demand = %v, want 0.05", s.Demand)
		}
	}
	for _, s := range nw.Stations[2:] {
		if math.Abs(s.Demand-0.1) > 1e-12 {
			t.Errorf("disk demand = %v, want 0.1", s.Demand)
		}
	}
}

func TestBalancedPureIO(t *testing.T) {
	nw, err := Balanced(1, 4, 0, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Stations) != 4 {
		t.Fatalf("stations = %d, want 4 (no CPU station for zero demand)", len(nw.Stations))
	}
	// Max throughput = 4 disks / 0.4 s = 10 tx/s.
	if x := nw.MaxThroughput(); math.Abs(x-10) > 1e-12 {
		t.Errorf("MaxThroughput = %v, want 10", x)
	}
}

func TestBalancedErrors(t *testing.T) {
	if _, err := Balanced(0, 0, 1, 1); err == nil {
		t.Error("zero resources should error")
	}
	if _, err := Balanced(0, 2, 1, 1); err == nil {
		t.Error("cpu demand with zero CPUs should error")
	}
}

func TestMinMPLForFraction(t *testing.T) {
	// Single station: X(n) = 1/D for all n ≥ 1, so min MPL = 1 always.
	nw, _ := NewNetwork([]Station{{Demand: 1}})
	if m := nw.MinMPLForFraction(0.95, 100); m != 1 {
		t.Errorf("min MPL = %d, want 1", m)
	}
	// Balanced k-station network: more stations need more customers.
	nw2, _ := Balanced(0, 4, 0, 1)
	m95 := nw2.MinMPLForFraction(0.95, 200)
	m80 := nw2.MinMPLForFraction(0.80, 200)
	if m80 >= m95 {
		t.Errorf("min MPL at 80%% (%d) should be below 95%% (%d)", m80, m95)
	}
	if m95 < 4 {
		t.Errorf("min MPL for 95%% on 4 balanced disks = %d, want >= 4", m95)
	}
}

func TestBinarySearchMatchesLinear(t *testing.T) {
	for disks := 1; disks <= 16; disks++ {
		nw, _ := Balanced(0, disks, 0, 1)
		for _, frac := range []float64{0.5, 0.8, 0.9, 0.95, 0.99} {
			lin := nw.MinMPLForFraction(frac, 500)
			bin := nw.BinarySearchMinMPL(frac, 500)
			if lin != bin {
				t.Errorf("disks=%d frac=%v: linear=%d binary=%d", disks, frac, lin, bin)
			}
		}
	}
}

// TestFig7LinearLoci verifies the paper's Fig. 7 observation: the
// minimum MPL achieving 80% (and 95%) of max throughput grows as a
// perfectly straight line in the number of disks.
func TestFig7LinearLoci(t *testing.T) {
	for _, frac := range []float64{0.80, 0.95} {
		var xs, ys []float64
		for disks := 1; disks <= 16; disks++ {
			nw, _ := Balanced(0, disks, 0, 1)
			m := nw.MinMPLForFraction(frac, 2000)
			xs = append(xs, float64(disks))
			ys = append(ys, float64(m))
		}
		// Check near-perfect linearity via R² of a least-squares fit.
		slope, _, r2 := fitLine(xs, ys)
		if r2 < 0.995 {
			t.Errorf("frac=%v: min-MPL locus not linear (R²=%v, ys=%v)", frac, r2, ys)
		}
		if slope <= 0 {
			t.Errorf("frac=%v: slope=%v, want positive", frac, slope)
		}
		// Monotone in disks.
		for i := 1; i < len(ys); i++ {
			if ys[i] < ys[i-1] {
				t.Errorf("frac=%v: min MPL decreased from %v to %v at %d disks", frac, ys[i-1], ys[i], i+1)
			}
		}
	}
}

func fitLine(x, y []float64) (slope, intercept, r2 float64) {
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	ssTot := syy - sy*sy/n
	ssRes := 0.0
	for i := range x {
		e := y[i] - (intercept + slope*x[i])
		ssRes += e * e
	}
	if ssTot == 0 {
		return slope, intercept, 1
	}
	return slope, intercept, 1 - ssRes/ssTot
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil); err == nil {
		t.Error("empty network should error")
	}
	if _, err := NewNetwork([]Station{{Demand: -1}}); err == nil {
		t.Error("negative demand should error")
	}
	if _, err := NewNetwork([]Station{{Demand: 0}}); err == nil {
		t.Error("all-zero demands should error")
	}
	if _, err := NewNetwork([]Station{{Demand: math.NaN()}}); err == nil {
		t.Error("NaN demand should error")
	}
}

func TestSolveZeroPopulation(t *testing.T) {
	nw, _ := NewNetwork([]Station{{Demand: 1}})
	if res := nw.Solve(0); res != nil {
		t.Error("Solve(0) should return nil")
	}
	if x := nw.Throughput(0); x != 0 {
		t.Errorf("Throughput(0) = %v, want 0", x)
	}
}

package experiments

import (
	"reflect"
	"testing"

	"extsched/internal/workload"
)

// TestDispatchJSQBeatsRR is the sharded-dispatch acceptance test:
// under 4x heterogeneous shard speeds and heavy offered load, JSQ
// achieves at least round-robin's aggregate throughput with a lower
// p95 — round-robin keeps feeding the 4x-slow shard a full quarter of
// the traffic, which its capacity cannot absorb.
func TestDispatchJSQBeatsRR(t *testing.T) {
	setup, err := workload.SetupByID(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOpts{Warmup: 20, Measure: 120, Seed: 1}
	base, err := RunClosed(setup, 0, nil, workload.DBOptions{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref := base.Throughput()
	speeds := []float64{1, 1, 1, 0.25}
	capacity := 3.25 * ref
	lambda := 0.85 * capacity
	rr, err := RunDispatch(setup, speeds, "rr", 40, lambda, opts)
	if err != nil {
		t.Fatal(err)
	}
	jsq, err := RunDispatch(setup, speeds, "jsq", 40, lambda, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rr:  tput %.2f p95 %.3f", rr.Throughput, rr.P95)
	t.Logf("jsq: tput %.2f p95 %.3f", jsq.Throughput, jsq.P95)
	if jsq.Throughput < rr.Throughput {
		t.Errorf("JSQ throughput %.2f < RR %.2f under heterogeneous shards", jsq.Throughput, rr.Throughput)
	}
	if jsq.P95 >= rr.P95 {
		t.Errorf("JSQ p95 %.3f not below RR p95 %.3f", jsq.P95, rr.P95)
	}
	// The routing imbalance is visible per shard: RR gives the slow
	// shard ~1/4 of arrivals; JSQ gives it less.
	if len(rr.Shards) != 4 || len(jsq.Shards) != 4 {
		t.Fatalf("shard reports: rr=%d jsq=%d, want 4", len(rr.Shards), len(jsq.Shards))
	}
	if rr.Shards[3].Dispatched <= jsq.Shards[3].Dispatched {
		t.Errorf("slow shard arrivals: rr=%d jsq=%d, want rr > jsq",
			rr.Shards[3].Dispatched, jsq.Shards[3].Dispatched)
	}
}

// TestDispatchDeterministic: a sharded dispatch run is bit-identical
// across rebuilds, like every other run in the repository.
func TestDispatchDeterministic(t *testing.T) {
	setup, err := workload.SetupByID(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOpts{Warmup: 5, Measure: 30, Seed: 7}
	a, err := RunDispatch(setup, []float64{1, 0.5}, "lwl", 8, 60, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDispatch(setup, []float64{1, 0.5}, "lwl", 8, 60, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sharded dispatch runs differ:\n%+v\nvs\n%+v", a, b)
	}
}

// Package extsched is a reproduction of Schroeder, Harchol-Balter,
// Iyengar, Nahum and Wierman, "How to determine a good
// multi-programming level for external scheduling" (ICDE 2006).
//
// It provides:
//
//   - a discrete-event-simulated transactional DBMS (multi-core PS
//     CPU, striped disks + group-commit log device, LRU buffer pool
//     with optional checkpointer, strict-2PL lock manager with
//     deadlock detection, wait timeouts and Preempt-on-Wait, plus a
//     PostgreSQL-style snapshot-isolation mode);
//   - the paper's external scheduling front-end: an MPL gate with a
//     reorderable external queue (FIFO / Priority / SJF / WFQ) and an
//     optional admission-control drop mode;
//   - the queueing models of Sections 4.1–4.2 (closed-network MVA and
//     the matrix-geometric solution of the FIFO→PS-with-MPL chain);
//   - the Section 4.3 feedback controller that auto-tunes the MPL to
//     DBA-specified throughput/response-time tolerances; and
//   - drivers that regenerate every figure and table of the paper's
//     evaluation (see the experiments subcommands of cmd/benchrunner
//     and the benchmarks at the repository root).
//
// The System type in this package is the high-level entry point: it
// assembles a simulated DBMS for one of the paper's Table 2 setups (or
// a custom configuration), wraps it with the external scheduler, and
// runs closed or open workloads. Lower-level building blocks live in
// the internal packages and are exercised through System accessors.
package extsched

import (
	"fmt"

	"extsched/internal/controller"
	"extsched/internal/core"
	"extsched/internal/dbfe"
	"extsched/internal/dbms"
	"extsched/internal/dist"
	"extsched/internal/lockmgr"
	"extsched/internal/queueing/mva"
	"extsched/internal/queueing/qbd"
	"extsched/internal/sim"
	"extsched/internal/workload"
)

// Policy names accepted by Config.Policy.
const (
	PolicyFIFO     = "fifo"
	PolicyPriority = "priority"
	PolicySJF      = "sjf"
	PolicyWFQ      = "wfq"
)

// Config assembles a simulated system.
type Config struct {
	// SetupID selects one of the paper's Table 2 setups (1-17).
	// Zero means use the explicit fields below instead.
	SetupID int
	// Workload names a Table 1 workload (e.g. "W_CPU-inventory") when
	// SetupID is zero.
	Workload string
	// CPUs / Disks / Isolation configure the hardware when SetupID is
	// zero. Isolation is "RR" (default) or "UR".
	CPUs, Disks int
	Isolation   string
	// MPL is the multiprogramming limit; 0 = unlimited.
	MPL int
	// Policy orders the external queue: "fifo" (default), "priority",
	// "sjf", or "wfq".
	Policy string
	// InternalLockPriority enables priority lock queues with
	// Preempt-on-Wait (the Shore experiment of Section 5.2).
	InternalLockPriority bool
	// InternalCPUPriority enables renice-style CPU priorities (the DB2
	// experiment of Section 5.2).
	InternalCPUPriority bool
	// HighPriorityFraction tags this fraction of transactions High
	// (default 0.1, the paper's choice).
	HighPriorityFraction float64
	// WFQHighWeight sets the High class's weight for the "wfq" policy
	// (Low gets 1). Default 4.
	WFQHighWeight float64
	// QueueLimit, when > 0, switches the frontend to admission-control
	// mode: arrivals beyond the limit are dropped (the related-work
	// comparison; pure external scheduling never drops).
	QueueLimit int
	// PercentileSamples, when > 0, reservoir-samples response times so
	// Report carries P50/P95/P99.
	PercentileSamples int
	// Seed fixes all randomness (default 1).
	Seed uint64
}

// Validate checks the config's standalone fields up front, before any
// simulation state is built: limits must be non-negative, names must
// be known. NewSystem calls it; call it directly to vet user-supplied
// configs (CLI flags, API payloads) cheaply.
func (c Config) Validate() error {
	if c.SetupID == 0 && c.Workload == "" {
		return fmt.Errorf("extsched: either SetupID or Workload is required")
	}
	if c.MPL < 0 {
		return fmt.Errorf("extsched: MPL %d must be >= 0", c.MPL)
	}
	if c.CPUs < 0 || c.Disks < 0 {
		return fmt.Errorf("extsched: CPUs %d and Disks %d must be >= 0", c.CPUs, c.Disks)
	}
	switch c.Policy {
	case "", PolicyFIFO, PolicyPriority, PolicySJF, PolicyWFQ:
	default:
		return fmt.Errorf("extsched: unknown policy %q (want %s, %s, %s or %s)",
			c.Policy, PolicyFIFO, PolicyPriority, PolicySJF, PolicyWFQ)
	}
	switch c.Isolation {
	case "", "RR", "UR", "SI":
	default:
		return fmt.Errorf("extsched: unknown isolation %q (want RR, UR or SI)", c.Isolation)
	}
	if c.HighPriorityFraction < 0 || c.HighPriorityFraction > 1 {
		return fmt.Errorf("extsched: HighPriorityFraction %v outside [0,1]", c.HighPriorityFraction)
	}
	if c.WFQHighWeight < 0 {
		return fmt.Errorf("extsched: WFQHighWeight %v must be >= 0 (0 = default)", c.WFQHighWeight)
	}
	if c.QueueLimit < 0 {
		return fmt.Errorf("extsched: QueueLimit %d must be >= 0", c.QueueLimit)
	}
	if c.PercentileSamples < 0 {
		return fmt.Errorf("extsched: PercentileSamples %d must be >= 0", c.PercentileSamples)
	}
	return nil
}

// System is an assembled simulated DBMS with its external scheduler.
type System struct {
	cfg    Config
	setup  workload.Setup
	eng    *sim.Engine
	db     *dbms.DB
	fe     *dbfe.Frontend
	gen    *workload.Generator
	closed *workload.ClosedDriver
	open   *workload.OpenDriver
}

// resolveSetup maps a Config to a workload.Setup.
func resolveSetup(cfg Config) (workload.Setup, error) {
	if cfg.SetupID != 0 {
		return workload.SetupByID(cfg.SetupID)
	}
	if cfg.Workload == "" {
		return workload.Setup{}, fmt.Errorf("extsched: either SetupID or Workload is required")
	}
	spec, err := workload.ByName(cfg.Workload)
	if err != nil {
		return workload.Setup{}, err
	}
	cpus, disks := cfg.CPUs, cfg.Disks
	if cpus == 0 {
		cpus = 1
	}
	if disks == 0 {
		disks = 1
	}
	iso := dbms.RR
	switch cfg.Isolation {
	case "", "RR":
	case "UR":
		iso = dbms.UR
	case "SI":
		iso = dbms.SI
	default:
		return workload.Setup{}, fmt.Errorf("extsched: unknown isolation %q (want RR, UR or SI)", cfg.Isolation)
	}
	return workload.Setup{ID: 0, Workload: spec, CPUs: cpus, Disks: disks, Isolation: iso}, nil
}

// NewSystem builds a System from cfg.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	setup, err := resolveSetup(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	w := cfg.WFQHighWeight
	if w <= 0 {
		w = 4
	}
	policy, err := core.NewPolicy(cfg.Policy, map[core.Class]float64{core.ClassHigh: w, core.ClassLow: 1})
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	db, err := dbms.New(eng, setup.BuildConfig(workload.DBOptions{
		LockPolicy:  map[bool]lockmgr.Policy{true: lockmgr.PriorityFIFO, false: lockmgr.FIFO}[cfg.InternalLockPriority],
		POW:         cfg.InternalLockPriority,
		CPUPriority: cfg.InternalCPUPriority,
		Seed:        cfg.Seed,
	}))
	if err != nil {
		return nil, err
	}
	fe := dbfe.New(eng, db, cfg.MPL, policy)
	if cfg.QueueLimit > 0 {
		fe.SetQueueLimit(cfg.QueueLimit)
	}
	if cfg.PercentileSamples > 0 {
		fe.EnablePercentiles(cfg.PercentileSamples, cfg.Seed)
	}
	gen, err := workload.NewGenerator(setup.Workload, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.HighPriorityFraction > 0 {
		gen.HighFrac = cfg.HighPriorityFraction
	}
	workload.Prewarm(db, setup.Workload, cfg.Seed)
	return &System{cfg: cfg, setup: setup, eng: eng, db: db, fe: fe, gen: gen}, nil
}

// Report summarizes a measured run.
type Report struct {
	SimSeconds    float64
	Completed     uint64
	Throughput    float64 // transactions/second
	MeanRT        float64 // overall mean response time (s)
	HighRT        float64 // high-priority class mean RT (s)
	LowRT         float64 // low-priority class mean RT (s)
	MeanInside    float64 // mean time inside the DBMS (s)
	ExternalW     float64 // mean external queue wait (s)
	Restarts      uint64  // abort/restart cycles observed
	CPUUtil       float64
	DiskUtil      float64
	DemandC2      float64 // measured C² of the time spent inside the DBMS
	LockWaits     uint64
	Deadlocks     uint64
	Preemptions   uint64
	Dropped       uint64  // admission-control rejections (QueueLimit mode)
	P50, P95, P99 float64 // response-time percentiles (PercentileSamples mode)
}

func (s *System) report(simSeconds float64) Report {
	m := s.fe.Metrics()
	st := s.db.Stats()
	return Report{
		SimSeconds:  simSeconds,
		Completed:   m.Completed,
		Throughput:  m.Throughput(),
		MeanRT:      m.All.Mean(),
		HighRT:      m.High.Mean(),
		LowRT:       m.Low.Mean(),
		MeanInside:  m.Inside.Mean(),
		ExternalW:   m.ExtWait.Mean(),
		Restarts:    m.Restarts,
		CPUUtil:     s.db.CPUUtilization(),
		DiskUtil:    s.db.DiskUtilization(),
		DemandC2:    m.Inside.C2(),
		LockWaits:   st.Lock.Waits,
		Deadlocks:   st.Lock.Deadlocks,
		Preemptions: st.Lock.Preemptions,
		Dropped:     s.fe.Dropped(),
		P50:         s.fe.ResponseTimePercentile(50),
		P95:         s.fe.ResponseTimePercentile(95),
		P99:         s.fe.ResponseTimePercentile(99),
	}
}

// RunClosed drives the system with a fixed client population (the
// paper's closed system; it uses 100 clients) for measure simulated
// seconds after warmup seconds of warm-up.
func (s *System) RunClosed(clients int, warmup, measure float64) (Report, error) {
	if clients <= 0 {
		clients = 100
	}
	if s.closed != nil || s.open != nil {
		return Report{}, fmt.Errorf("extsched: system already driven; build a fresh System per run")
	}
	s.closed = workload.NewClosedDriver(s.eng, s.fe, s.gen, clients, nil)
	s.closed.Start()
	s.eng.Run(warmup)
	s.fe.ResetMetrics()
	start := s.eng.Now()
	s.eng.Run(start + measure)
	s.closed.Stop()
	return s.report(s.eng.Now() - start), nil
}

// RunOpen drives the system with Poisson arrivals at rate lambda.
func (s *System) RunOpen(lambda, warmup, measure float64) (Report, error) {
	if s.closed != nil || s.open != nil {
		return Report{}, fmt.Errorf("extsched: system already driven; build a fresh System per run")
	}
	s.open = workload.NewOpenDriver(s.eng, s.fe, s.gen, lambda, 0)
	s.open.Start()
	s.eng.Run(warmup)
	s.fe.ResetMetrics()
	start := s.eng.Now()
	s.eng.Run(start + measure)
	s.open.Stop()
	s.eng.RunAll()
	return s.report(measure), nil
}

// SetMPL changes the MPL mid-run (the controller does this live).
func (s *System) SetMPL(mpl int) { s.fe.SetMPL(mpl) }

// MPL returns the current limit.
func (s *System) MPL() int { return s.fe.MPL() }

// Setup describes the resolved Table 2 setup.
func (s *System) Setup() string { return s.setup.String() }

// TuneResult reports an AutoTune run.
type TuneResult struct {
	StartMPL   int
	FinalMPL   int
	Iterations int
	Converged  bool
}

// AutoTune runs the Section 4.3 controller against this system under a
// closed workload until convergence (or until horizon simulated
// seconds elapse). maxLoss is the DBA's acceptable throughput loss
// (e.g. 0.05); referenceTput the no-MPL optimum (measure it with a
// separate unlimited System run, or use RecommendMPL's model).
func (s *System) AutoTune(clients int, maxLoss, referenceTput, horizon float64) (TuneResult, error) {
	if s.closed != nil || s.open != nil {
		return TuneResult{}, fmt.Errorf("extsched: system already driven; build a fresh System per run")
	}
	cpuD, ioD := s.setup.Demands()
	start, err := controller.JumpStart(controller.JumpStartInput{
		CPUs: s.setup.CPUs, Disks: s.setup.Disks,
		CPUDemand: cpuD, IODemand: ioD,
		DiskCV2:            s.setup.Workload.DiskService.C2(),
		ThroughputFraction: 1 - maxLoss,
	})
	if err != nil {
		return TuneResult{}, err
	}
	s.fe.SetMPL(start)
	if clients <= 0 {
		clients = 100
	}
	s.closed = workload.NewClosedDriver(s.eng, s.fe, s.gen, clients, nil)
	s.closed.Start()
	s.eng.Run(horizon / 20) // warmup
	ctl, err := controller.New(s.eng.Clock(), s.fe, controller.Config{
		Targets:   controller.Targets{MaxThroughputLoss: maxLoss},
		Reference: controller.Reference{MaxThroughput: referenceTput},
	})
	if err != nil {
		return TuneResult{}, err
	}
	// Feed the controller the frontend's completion stream.
	prev := s.fe.OnComplete
	s.fe.OnComplete = func(t *dbfe.Txn) {
		if prev != nil {
			prev(t)
		}
		ctl.Observe()
	}
	for s.eng.Now() < horizon && !ctl.Converged() {
		if s.eng.Run(s.eng.Now()+horizon/40) == 0 {
			break
		}
	}
	s.closed.Stop()
	return TuneResult{
		StartMPL:   start,
		FinalMPL:   s.fe.MPL(),
		Iterations: ctl.Iterations(),
		Converged:  ctl.Converged(),
	}, nil
}

// Recommendation is the output of the pure-model MPL tool.
type Recommendation struct {
	// ThroughputMPL is the Section 4.1 MVA bound: the lowest MPL
	// keeping throughput within the loss tolerance.
	ThroughputMPL int
	// ResponseTimeMPL is the Section 4.2 QBD bound (0 when no open-
	// system load was specified).
	ResponseTimeMPL int
	// MPL is the recommendation: the max of the two bounds.
	MPL int
}

// RecommendMPL runs the paper's analytic tool without any simulation:
// given hardware shape, per-transaction demands, and tolerances, it
// returns the lowest MPL the queueing models consider safe.
// lambda/meanDemand/demandC2 describe the open-system load for the
// response-time bound; pass zeros to skip it.
func RecommendMPL(cpus, disks int, cpuDemand, ioDemand, maxTputLoss float64,
	lambda, meanDemand, demandC2, maxRTIncrease float64) (Recommendation, error) {
	nw, err := mva.Balanced(cpus, disks, cpuDemand, ioDemand)
	if err != nil {
		return Recommendation{}, err
	}
	rec := Recommendation{ThroughputMPL: nw.MinMPLForFraction(1-maxTputLoss, 500)}
	rec.MPL = rec.ThroughputMPL
	if lambda > 0 && meanDemand > 0 && demandC2 > 1 {
		if rho := lambda * meanDemand; rho < 1 {
			tol := maxRTIncrease
			if tol <= 0 {
				tol = 0.1
			}
			m, err := qbd.MinMPLForResponseTime(lambda, dist.FitH2(meanDemand, demandC2), tol, 200)
			if err != nil {
				return Recommendation{}, err
			}
			rec.ResponseTimeMPL = m
			if m > rec.MPL {
				rec.MPL = m
			}
		}
	}
	return rec, nil
}

// Setups lists the paper's Table 2 setups as display strings.
func Setups() []string {
	var out []string
	for _, s := range workload.Table2() {
		out = append(out, s.String())
	}
	return out
}

// Workloads lists the paper's Table 1 workload names.
func Workloads() []string {
	var out []string
	for _, s := range workload.Table1() {
		out = append(out, s.Name)
	}
	return out
}

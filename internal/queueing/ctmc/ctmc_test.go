package ctmc

import (
	"math"
	"testing"

	"extsched/internal/dist"
	"extsched/internal/queueing/mg1"
)

func TestTwoStateChain(t *testing.T) {
	// 0 →(a) 1 →(b) 0: π0 = b/(a+b), π1 = a/(a+b).
	c := NewChain(2)
	c.AddRate(0, 1, 3)
	c.AddRate(1, 0, 1)
	pi, err := c.Stationary(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.25) > 1e-8 || math.Abs(pi[1]-0.75) > 1e-8 {
		t.Errorf("pi = %v, want [0.25 0.75]", pi)
	}
}

func TestMM1TruncatedChain(t *testing.T) {
	// Birth-death chain: lambda=0.5, mu=1 truncated at 200 ≈ M/M/1
	// with rho=0.5: pi_n = 0.5^(n+1).
	const n = 200
	c := NewChain(n + 1)
	for i := 0; i < n; i++ {
		c.AddRate(i, i+1, 0.5)
		c.AddRate(i+1, i, 1.0)
	}
	pi, err := c.Stationary(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 5; i++ {
		want := math.Pow(0.5, float64(i)) * 0.5
		if math.Abs(pi[i]-want) > 1e-6 {
			t.Errorf("pi[%d] = %v, want %v", i, pi[i], want)
		}
	}
}

func TestAbsorbingStateRejected(t *testing.T) {
	c := NewChain(2)
	c.AddRate(0, 1, 1)
	if _, err := c.Stationary(SolveOptions{}); err == nil {
		t.Error("absorbing state should cause an error")
	}
}

func TestChainValidation(t *testing.T) {
	c := NewChain(2)
	for _, fn := range []func(){
		func() { c.AddRate(0, 0, 1) },  // self loop
		func() { c.AddRate(0, 5, 1) },  // out of range
		func() { c.AddRate(0, 1, -1) }, // bad rate
		func() { c.AddRate(0, 1, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid AddRate did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestFlexModelValidate(t *testing.T) {
	job := dist.FitH2(1, 5)
	if err := (FlexModel{Lambda: 0.5, Job: job, MPL: 2}).Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := []FlexModel{
		{Lambda: 0, Job: job, MPL: 1},
		{Lambda: 2, Job: job, MPL: 1},               // unstable
		{Lambda: 0.5, Job: job, MPL: 0},             // MPL < 1
		{Lambda: 0.5, Job: job, MPL: 5, MaxJobs: 2}, // truncation < MPL
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

func TestFlexMPL1MatchesPK(t *testing.T) {
	// MPL=1 is plain M/G/1 FIFO: compare against Pollaczek–Khinchine.
	job := dist.FitH2(1, 5)
	lambda := 0.6
	sol, err := Solve(FlexModel{Lambda: lambda, Job: job, MPL: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := mg1.Params{Lambda: lambda, MeanSize: 1, C2: 5}.FIFOResponse()
	if math.Abs(sol.MeanRT-want)/want > 0.01 {
		t.Errorf("E[T] = %v, want PK %v", sol.MeanRT, want)
	}
}

func TestFlexUtilization(t *testing.T) {
	job := dist.FitH2(1, 3)
	sol, err := Solve(FlexModel{Lambda: 0.65, Job: job, MPL: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Utilization-0.65) > 1e-4 {
		t.Errorf("utilization = %v, want 0.65 (=rho)", sol.Utilization)
	}
	if sol.TruncMass > 1e-8 {
		t.Errorf("truncation mass %v too large — truncation level too low", sol.TruncMass)
	}
}

func TestFlexDistributionSums(t *testing.T) {
	job := dist.FitH2(1, 8)
	sol, err := Solve(FlexModel{Lambda: 0.7, Job: job, MPL: 3})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, p := range sol.Distribution {
		if p < -1e-12 {
			t.Fatalf("negative probability %v", p)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-8 {
		t.Errorf("distribution sums to %v, want 1", total)
	}
	// Mean in service can never exceed the MPL or the mean jobs.
	if sol.MeanInServ > float64(3)+1e-9 || sol.MeanInServ > sol.MeanJobs+1e-9 {
		t.Errorf("MeanInServ = %v out of range", sol.MeanInServ)
	}
}

func TestFlexMeanInServiceEqualsRho(t *testing.T) {
	// Work conservation: the expected number of busy "unit-rate server
	// shares" equals rho; since the PS pool serves with total rate 1
	// whenever non-empty, E[#in service]... is NOT rho, but utilization
	// P(N>0) is. Verify both the utilization identity and that mean
	// in-service count lies in (rho, MPL].
	job := dist.FitH2(1, 5)
	sol, err := Solve(FlexModel{Lambda: 0.7, Job: job, MPL: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sol.MeanInServ <= 0.7-1e-9 {
		t.Errorf("MeanInServ = %v, want > rho", sol.MeanInServ)
	}
}

package sim

import (
	"math"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(2.0, func() { got = append(got, 2) })
	e.At(1.0, func() { got = append(got, 1) })
	e.At(3.0, func() { got = append(got, 3) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3.0 {
		t.Errorf("Now() = %v, want 3.0", e.Now())
	}
}

func TestEngineStableTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5.0, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1.0, func() { fired = true })
	if !ev.Pending() {
		t.Error("Pending() = false before Cancel")
	}
	e.Cancel(ev)
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	if ev.Pending() {
		t.Error("Pending() = true after Cancel")
	}
	e.RunAll()
	if fired {
		t.Error("canceled event fired")
	}
}

func TestEngineCancelZeroHandleNoop(t *testing.T) {
	e := NewEngine()
	e.Cancel(Handle{}) // must not panic
	if (Handle{}).Pending() || (Handle{}).Canceled() {
		t.Error("zero handle reports live state")
	}
}

// TestEngineStaleHandleCancel pins the pool-safety contract: after an
// event fires, its record is recycled for new events, and canceling
// the stale handle must not touch the new occupant.
func TestEngineStaleHandleCancel(t *testing.T) {
	e := NewEngine()
	first := e.At(1.0, func() {})
	e.RunAll()
	if first.Pending() || first.Canceled() {
		t.Error("fired handle still reports live state")
	}
	secondFired := false
	second := e.At(2.0, func() { secondFired = true })
	e.Cancel(first) // stale: must be a no-op even though the record was recycled
	if !second.Pending() {
		t.Error("stale Cancel invalidated a recycled event")
	}
	e.RunAll()
	if !secondFired {
		t.Error("recycled event did not fire after stale Cancel")
	}
}

// TestEngineRunClockNeverRegresses pins the Run guard: calling Run
// with a bound in the past fires nothing and leaves the clock alone.
func TestEngineRunClockNeverRegresses(t *testing.T) {
	e := NewEngine()
	e.At(10.0, func() {})
	e.RunAll()
	if e.Now() != 10.0 {
		t.Fatalf("Now() = %v, want 10", e.Now())
	}
	e.At(20.0, func() {})
	if n := e.Run(5.0); n != 0 {
		t.Errorf("Run(5) fired %d events, want 0", n)
	}
	if e.Now() != 10.0 {
		t.Errorf("Now() = %v after Run(5), want 10 (clock must not move backward)", e.Now())
	}
	if n := e.RunAll(); n != 1 {
		t.Errorf("RunAll fired %d events, want 1", n)
	}
}

// TestEngineEventReuse exercises the free list across many
// schedule/fire and schedule/cancel cycles, checking ordering and
// counts survive recycling.
func TestEngineEventReuse(t *testing.T) {
	e := NewEngine()
	var fired int
	for round := 0; round < 1000; round++ {
		keep := e.After(1, func() { fired++ })
		drop := e.After(0.5, func() { t.Error("canceled event fired") })
		e.Cancel(drop)
		if !keep.Pending() {
			t.Fatal("live handle lost pending state")
		}
		e.RunAll()
	}
	if fired != 1000 {
		t.Errorf("fired = %d, want 1000", fired)
	}
	if e.Processed() != 1000 {
		t.Errorf("Processed() = %d, want 1000", e.Processed())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(1.0, tick)
		}
	}
	e.After(1.0, tick)
	e.RunAll()
	if count != 100 {
		t.Errorf("count = %d, want 100", count)
	}
	if e.Now() != 100.0 {
		t.Errorf("Now() = %v, want 100", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []float64
	for i := 1; i <= 10; i++ {
		tm := float64(i)
		e.At(tm, func() { got = append(got, tm) })
	}
	n := e.Run(5.5)
	if n != 5 {
		t.Errorf("fired %d events, want 5", n)
	}
	if e.Now() != 5.5 {
		t.Errorf("Now() = %v, want 5.5 after bounded run", e.Now())
	}
	n = e.RunAll()
	if n != 5 {
		t.Errorf("fired %d more events, want 5", n)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 3 {
		t.Errorf("count = %d, want 3 (stopped)", count)
	}
	if !e.Stopped() {
		t.Error("Stopped() = false")
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(5.0, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1.0, func() {})
	})
	e.RunAll()
}

func TestEngineNonFiniteTimePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("scheduling at NaN did not panic")
		}
	}()
	e.At(math.NaN(), func() {})
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, 1)
	b := NewRNG(42, 1)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed streams diverge")
		}
	}
	c := NewRNG(42, 2)
	same := true
	a2 := NewRNG(42, 1)
	for i := 0; i < 16; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different-stream RNGs produced identical prefix")
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(7, 0)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Errorf("exp mean = %v, want ~1.0", mean)
	}
}

func TestRNGFork(t *testing.T) {
	g := NewRNG(1, 1)
	f1 := g.Fork()
	f2 := g.Fork()
	if f1.Float64() == f2.Float64() && f1.Float64() == f2.Float64() {
		t.Error("forked streams look identical")
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(float64(i), func() {})
	}
	ev := e.At(10, func() {})
	e.Cancel(ev)
	e.RunAll()
	if e.Processed() != 5 {
		t.Errorf("Processed() = %d, want 5", e.Processed())
	}
}
